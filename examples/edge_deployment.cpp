// Example: planning an AIoT deployment — compute, energy, and airtime.
//
// Uses the device cost model and LTE link model to answer the questions an
// engineer sizing a fleet would ask: how long does one round of local
// training take on my device, what does it cost in energy, how long does
// the upload take, and what does a full training campaign cost end to end —
// for FHDnn vs a ResNet-based FedAvg.
//
//   ./edge_deployment [--samples 500] [--epochs 2] [--rounds 50] ...
#include <iostream>

#include "channel/lte.hpp"
#include "perf/device_model.hpp"
#include "perf/model_macs.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  CliFlags flags;
  flags.define_int("samples", 500, "local training examples per client");
  flags.define_int("epochs", 2, "local epochs per round");
  flags.define_int("rounds", 50, "rounds each client participates in");
  flags.define_int("hd-dim", 10000, "hyperdimensional dimensionality d");
  flags.define_int("feature-dim", 512, "feature dimension n");
  flags.define_int("classes", 10, "number of classes");
  if (!flags.parse(argc, argv)) return 0;

  const auto rounds = static_cast<std::uint64_t>(flags.get_int("rounds"));
  perf::ClientWorkload w = perf::ClientWorkload::paper_reference();
  w.samples = static_cast<std::uint64_t>(flags.get_int("samples"));
  w.epochs = static_cast<std::uint64_t>(flags.get_int("epochs"));
  w.hd_ops_per_sample = perf::ClientWorkload::hd_ops(
      static_cast<std::uint64_t>(flags.get_int("feature-dim")),
      static_cast<std::uint64_t>(flags.get_int("hd-dim")),
      static_cast<std::uint64_t>(flags.get_int("classes")));

  const std::uint64_t fhdnn_update =
      static_cast<std::uint64_t>(flags.get_int("classes")) *
      static_cast<std::uint64_t>(flags.get_int("hd-dim")) * 4;
  const std::uint64_t resnet_update = perf::kResNet18UpdateBytes;
  channel::LteLinkModel link;

  std::cout << "Edge deployment planner — per-client campaign of " << rounds
            << " rounds, " << w.samples << " samples, E=" << w.epochs
            << "\n\n";

  TextTable table({"device", "model", "train_s/round", "energy_J/round",
                   "upload_s/round", "campaign_hours", "campaign_kJ"});
  for (const auto& dev : {perf::DeviceProfile::raspberry_pi_3b(),
                          perf::DeviceProfile::jetson()}) {
    const auto cnn = perf::cnn_local_training(dev, w);
    const auto fhd = perf::fhdnn_local_training(dev, w);
    const double cnn_up = link.upload_seconds(resnet_update * 8, false);
    const double fhd_up = link.upload_seconds(fhdnn_update * 8, true);
    auto row = [&](const std::string& model, const perf::CostEstimate& c,
                   double upload_s, double radio_w) {
      const double per_round_s = c.seconds + upload_s;
      const double campaign_h =
          static_cast<double>(rounds) * per_round_s / 3600.0;
      const double campaign_kj =
          static_cast<double>(rounds) *
          (c.energy_joules + upload_s * radio_w) / 1000.0;
      table.add_row({dev.name, model, TextTable::cell(c.seconds),
                     TextTable::cell(c.energy_joules),
                     TextTable::cell(upload_s), TextTable::cell(campaign_h),
                     TextTable::cell(campaign_kj)});
    };
    row("fhdnn", fhd, fhd_up, 1.5);   // LTE radio ~1.5 W while transmitting
    row("resnet", cnn, cnn_up, 1.5);
  }
  table.print(std::cout);

  std::cout << "\nNotes: device constants are calibrated to the paper's "
               "Table 1 (see perf/device_model.hpp); uploads use the LTE "
               "model of §4.4 (coded 1.6 Mb/s for the CNN — it needs "
               "reliable delivery — vs uncoded 5.0 Mb/s for FHDnn, which "
               "admits channel errors).\n";
  return 0;
}
