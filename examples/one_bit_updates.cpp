// Example: shrinking FHDnn updates further — float32 vs AGC-16 vs 1-bit.
//
// FHDnn's 1 MB update is already 22x smaller than ResNet-18's. Because HD
// inference is cosine-based, the *sign pattern* of the prototypes carries
// almost all of the decision information, so the update can be shipped at
// 1 bit per dimension — 32x less again — while staying robust to bit
// errors (a flipped bit toggles one ±1 instead of detonating an exponent).
// This example trains federated FHDnn with three uplink precisions under
// the same bit-error rate and prints accuracy vs per-round traffic.
//
//   ./one_bit_updates [--ber 1e-4] [--dataset mnist] ...
#include <iostream>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  CliFlags flags;
  flags.define_string("dataset", "mnist", "mnist|fashion|cifar");
  flags.define_int("examples", 1000, "total dataset size");
  flags.define_int("clients", 10, "number of federated clients");
  flags.define_int("rounds", 6, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_double("ber", 1e-4, "uplink bit error rate");
  flags.define_int("seed", 5, "experiment seed");
  if (!flags.parse(argc, argv)) return 0;

  set_log_level(LogLevel::Warn);
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double ber = flags.get_double("ber");

  std::cout << "One-bit updates — dataset=" << flags.get_string("dataset")
            << " BER=" << ber << "\n\n";

  const auto exp = core::make_experiment_data(
      flags.get_string("dataset"), flags.get_int("examples"), n_clients,
      core::Distribution::Iid, seed);
  const auto params = core::paper_default_params(
      n_clients, static_cast<int>(flags.get_int("rounds")), seed);
  const auto cfg = core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));
  const auto encoded =
      core::encode_for_fhdnn(cfg, exp.train, exp.parts, exp.test);

  const auto scalars = static_cast<std::uint64_t>(cfg.num_classes) *
                       static_cast<std::uint64_t>(cfg.hd_dim);

  TextTable table({"uplink precision", "bytes/client/round", "final_accuracy"});
  auto run = [&](const std::string& label, const channel::HdUplinkConfig& up,
                 std::uint64_t bytes) {
    const auto hist = core::run_fhdnn_on_encoded(encoded, params, up);
    table.add_row({label, TextTable::cell(static_cast<std::size_t>(bytes)),
                   TextTable::cell(hist.final_accuracy())});
  };

  channel::HdUplinkConfig raw;
  raw.mode = channel::HdUplinkMode::BitErrors;
  raw.ber = ber;
  raw.use_quantizer = false;
  run("float32 (no protection)", raw, scalars * 4);

  channel::HdUplinkConfig agc;
  agc.mode = channel::HdUplinkMode::BitErrors;
  agc.ber = ber;
  agc.quantizer_bits = 16;
  run("AGC 16-bit (paper §3.5.2)", agc, scalars * 2);

  channel::HdUplinkConfig binary;
  binary.mode = channel::HdUplinkMode::BitErrors;
  binary.ber = ber;
  binary.binary_transport = true;
  run("binary sign (1-bit)", binary, scalars / 8);

  table.print(std::cout);
  std::cout << "\nAt equal BER the binary path matches the AGC path to "
               "within a few points at 1/16 the traffic; the raw float path "
               "is the fragile one (exponent-bit flips).\n";
  return 0;
}
