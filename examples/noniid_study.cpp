// Example: how data heterogeneity (non-IID clients) affects FHDnn.
//
// Sweeps the Dirichlet concentration alpha from near-pathological label
// skew (alpha=0.05: most clients see 1-2 classes) to effectively IID
// (alpha=100), and also runs the shard-based pathological split of McMahan
// et al. Prints per-setting label skew and final accuracy for FHDnn.
//
//   ./noniid_study [--dataset mnist] [--clients 12] ...
#include <iostream>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  CliFlags flags;
  flags.define_string("dataset", "mnist", "mnist|fashion|cifar");
  flags.define_int("examples", 1200, "total dataset size");
  flags.define_int("clients", 12, "number of federated clients");
  flags.define_int("rounds", 8, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_int("seed", 21, "experiment seed");
  if (!flags.parse(argc, argv)) return 0;

  set_log_level(LogLevel::Warn);
  const std::string dataset = flags.get_string("dataset");
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::cout << "Non-IID study — dataset=" << dataset
            << " clients=" << n_clients << "\n\n";

  // One shared dataset + test split; vary only the partition.
  Rng rng(seed);
  Rng data_rng = rng.fork("data");
  data::Dataset full;
  if (dataset == "mnist") full = data::synthetic_mnist(flags.get_int("examples"), data_rng);
  else if (dataset == "fashion") full = data::synthetic_fashion(flags.get_int("examples"), data_rng);
  else full = data::synthetic_cifar(flags.get_int("examples"), data_rng);
  Rng split_rng = rng.fork("split");
  auto split = data::train_test_split(full, 0.1, split_rng);

  const auto params = core::paper_default_params(
      n_clients, static_cast<int>(flags.get_int("rounds")), seed);
  const auto cfg =
      core::fhdnn_config_for(split.train, flags.get_int("hd-dim"));

  TextTable table({"partition", "label_skew", "round1_acc", "final_acc"});
  auto run = [&](const std::string& name, const data::ClientIndices& parts) {
    const auto encoded =
        core::encode_for_fhdnn(cfg, split.train, parts, split.test);
    channel::HdUplinkConfig clean;
    const auto hist = core::run_fhdnn_on_encoded(encoded, params, clean);
    table.add_row({name, TextTable::cell(data::label_skew(split.train, parts)),
                   TextTable::cell(hist.rounds().front().test_accuracy),
                   TextTable::cell(hist.final_accuracy())});
  };

  {
    Rng p = rng.fork("iid");
    run("iid", data::partition_iid(split.train, n_clients, p));
  }
  for (const double alpha : {100.0, 1.0, 0.3, 0.05}) {
    Rng p = rng.fork("dir-" + format_double(alpha));
    run("dirichlet a=" + format_double(alpha),
        data::partition_dirichlet(split.train, n_clients, alpha, p));
  }
  {
    Rng p = rng.fork("shards");
    run("2-shards/client", data::partition_shards(split.train, n_clients, 2, p));
  }

  table.print(std::cout);
  std::cout << "\nExpected: accuracy degrades gracefully as skew rises — "
               "class prototypes are additive, so partial views from "
               "different clients merge losslessly at the server (one reason "
               "FHDnn handles non-IID data well in the paper's Fig. 6/8).\n";
  return 0;
}
