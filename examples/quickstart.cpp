// Quickstart: federated FHDnn on a synthetic MNIST-like dataset.
//
// Demonstrates the minimal public-API path:
//   1. build a synthetic federated dataset (20 clients, IID);
//   2. run FHDnn federated bundling over a perfect channel;
//   3. run the FedAvg CNN baseline on the identical setup;
//   4. print accuracy-per-round for both plus the update-size gap.
//
//   ./quickstart [--rounds N] [--clients N] [--hd-dim D] [--dataset mnist]
#include <iostream>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  CliFlags flags;
  flags.define_string("dataset", "mnist", "mnist|fashion|cifar");
  flags.define_int("examples", 2000, "total dataset size");
  flags.define_int("clients", 20, "number of federated clients");
  flags.define_int("rounds", 10, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_int("seed", 7, "experiment seed");
  flags.define_bool("skip-cnn", false, "skip the CNN baseline");
  if (!flags.parse(argc, argv)) return 0;

  set_log_level(LogLevel::Warn);
  const std::string dataset = flags.get_string("dataset");
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const int rounds = static_cast<int>(flags.get_int("rounds"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::cout << "FHDnn quickstart — dataset=" << dataset
            << " clients=" << n_clients << " rounds=" << rounds << "\n";

  auto exp = core::make_experiment_data(dataset, flags.get_int("examples"),
                                        n_clients, core::Distribution::Iid,
                                        seed);
  const auto params = core::paper_default_params(n_clients, rounds, seed);
  const auto model_cfg =
      core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));

  // --- FHDnn over a perfect channel ---
  channel::HdUplinkConfig uplink;  // Perfect by default
  const auto fhdnn_hist = core::run_fhdnn_federated(
      model_cfg, exp.train, exp.parts, exp.test, params, uplink);

  // --- CNN (FedAvg) baseline, identical data & hyperparameters ---
  fl::TrainingHistory cnn_hist;
  const auto cnn = core::cnn_params_for(dataset);
  if (!flags.get_bool("skip-cnn")) {
    cnn_hist = core::run_cnn_federated(cnn, exp.train, exp.parts, exp.test,
                                       params, nullptr);
  }

  TextTable table({"round", "fhdnn_acc", "cnn_acc"});
  for (std::size_t r = 0; r < fhdnn_hist.size(); ++r) {
    const double cnn_acc =
        r < cnn_hist.size() ? cnn_hist.rounds()[r].test_accuracy : 0.0;
    table.add_row({TextTable::cell(static_cast<int>(r + 1)),
                   TextTable::cell(fhdnn_hist.rounds()[r].test_accuracy),
                   TextTable::cell(cnn_acc)});
  }
  table.print(std::cout);

  std::cout << "\nFHDnn update size:  " << core::fhdnn_update_bytes(model_cfg)
            << " bytes\nCNN update size:    "
            << core::cnn_update_bytes(cnn, exp.train) << " bytes\n";
  std::cout << "FHDnn final acc:    " << fhdnn_hist.final_accuracy() << "\n";
  if (!flags.get_bool("skip-cnn")) {
    std::cout << "CNN final acc:      " << cnn_hist.final_accuracy() << "\n";
  }
  return 0;
}
