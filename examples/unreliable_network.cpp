// Example: federated learning over an unreliable IoT uplink.
//
// Scenario from the paper's introduction: battery-powered cameras on a
// LoRa-class LPWAN report over a link with ~20% packet loss and no
// retransmission (retransmitting costs energy; §2.1). This example trains
// FHDnn and the CNN baseline over exactly that link and prints what happens
// to each, plus FHDnn's behaviour under AWGN and bit errors.
//
//   ./unreliable_network [--loss 0.2] [--dataset fashion] ...
#include <iostream>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fhdnn;
  CliFlags flags;
  flags.define_string("dataset", "fashion", "mnist|fashion|cifar");
  flags.define_int("examples", 1200, "total dataset size");
  flags.define_int("clients", 12, "number of federated clients");
  flags.define_int("rounds", 8, "communication rounds");
  flags.define_int("hd-dim", 2000, "hyperdimensional dimensionality d");
  flags.define_double("loss", 0.2, "packet loss rate (paper: 20% is realistic)");
  flags.define_double("snr", 15.0, "AWGN SNR in dB");
  flags.define_double("ber", 1e-4, "bit error rate");
  flags.define_int("seed", 11, "experiment seed");
  flags.define_bool("skip-cnn", false, "skip the CNN baseline");
  if (!flags.parse(argc, argv)) return 0;

  set_log_level(LogLevel::Warn);
  const std::string dataset = flags.get_string("dataset");
  const auto n_clients = static_cast<std::size_t>(flags.get_int("clients"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double loss = flags.get_double("loss");

  std::cout << "Unreliable-network study — dataset=" << dataset
            << " packet loss=" << loss << " snr=" << flags.get_double("snr")
            << "dB ber=" << flags.get_double("ber") << "\n\n";

  const auto exp = core::make_experiment_data(
      dataset, flags.get_int("examples"), n_clients, core::Distribution::Iid,
      seed);
  const auto params = core::paper_default_params(
      n_clients, static_cast<int>(flags.get_int("rounds")), seed);
  const auto cfg = core::fhdnn_config_for(exp.train, flags.get_int("hd-dim"));
  const auto encoded =
      core::encode_for_fhdnn(cfg, exp.train, exp.parts, exp.test);

  TextTable table({"model", "channel", "final_accuracy"});
  auto fhdnn_row = [&](const std::string& label,
                       const channel::HdUplinkConfig& uplink) {
    table.add_row({"fhdnn", label,
                   TextTable::cell(
                       core::run_fhdnn_on_encoded(encoded, params, uplink)
                           .final_accuracy())});
  };

  channel::HdUplinkConfig clean;
  fhdnn_row("clean", clean);
  channel::HdUplinkConfig pkt;
  pkt.mode = channel::HdUplinkMode::PacketLoss;
  pkt.loss_rate = loss;
  fhdnn_row("packet loss " + format_double(loss), pkt);
  channel::HdUplinkConfig awgn;
  awgn.mode = channel::HdUplinkMode::Awgn;
  awgn.snr_db = flags.get_double("snr");
  fhdnn_row("awgn " + format_double(awgn.snr_db) + "dB", awgn);
  channel::HdUplinkConfig ber;
  ber.mode = channel::HdUplinkMode::BitErrors;
  ber.ber = flags.get_double("ber");
  fhdnn_row("bit errors " + format_double(ber.ber), ber);

  if (!flags.get_bool("skip-cnn")) {
    const auto cnn = core::cnn_params_for(dataset);
    table.add_row({"cnn", "clean",
                   TextTable::cell(core::run_cnn_federated(cnn, exp.train,
                                                           exp.parts, exp.test,
                                                           params, nullptr)
                                       .final_accuracy())});
    const auto chan = channel::make_packet_loss(loss, 8192);
    table.add_row({"cnn", "packet loss " + format_double(loss),
                   TextTable::cell(core::run_cnn_federated(cnn, exp.train,
                                                           exp.parts, exp.test,
                                                           params, chan.get())
                                       .final_accuracy())});
  }

  table.print(std::cout);
  std::cout << "\nFHDnn tolerates the lossy uplink because HD prototypes are "
               "holographic: any surviving subset of dimensions carries a "
               "proportional share of the decision information, and the AGC "
               "quantizer bounds per-parameter bit-error damage.\n";
  return 0;
}
