// Tests for src/core: FhdnnModel, pipelines, experiment scaffolding.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/fhdnn.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace fhdnn {
namespace {

class QuietLogs : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::Warn); }
};

core::FhdnnConfig small_config() {
  core::FhdnnConfig cfg;
  cfg.in_channels = 1;
  cfg.image_hw = 28;
  cfg.num_classes = 10;
  cfg.feature_dim = 128;
  cfg.hd_dim = 1024;
  return cfg;
}

using FhdnnModelTest = QuietLogs;

TEST_F(FhdnnModelTest, EndToEndLearnsSyntheticMnist) {
  Rng rng(1);
  auto full = data::synthetic_mnist(400, rng);
  auto split = data::train_test_split(full, 0.25, rng);
  core::FhdnnModel model(small_config());
  model.calibrate(split.train.x);
  const auto enc = model.encode_dataset(split.train);
  model.train_local(enc, 2);
  EXPECT_GT(model.accuracy(split.test), 0.9);
}

TEST_F(FhdnnModelTest, EncodeShapes) {
  core::FhdnnModel model(small_config());
  Rng rng(2);
  const Tensor imgs = Tensor::rand(Shape{3, 1, 28, 28}, rng);
  const Tensor h = model.encode_images(imgs);
  EXPECT_EQ(h.shape(), (Shape{3, 1024}));
  for (const float v : h.data()) EXPECT_TRUE(v == 1.0F || v == -1.0F);
}

TEST_F(FhdnnModelTest, PredictReturnsValidClasses) {
  core::FhdnnModel model(small_config());
  Rng rng(3);
  auto ds = data::synthetic_mnist(50, rng);
  model.train_local(model.encode_dataset(ds), 1);
  const auto preds = model.predict(ds.x);
  EXPECT_EQ(preds.size(), 50U);
  for (const auto p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
  }
}

TEST_F(FhdnnModelTest, UpdateBytes) {
  core::FhdnnModel model(small_config());
  EXPECT_EQ(model.update_bytes(), 10U * 1024U * 4U);
  EXPECT_EQ(core::fhdnn_update_bytes(small_config()), 10U * 1024U * 4U);
}

TEST_F(FhdnnModelTest, TwoModelsShareEncodings) {
  // The no-transmission premise: two independently constructed models with
  // the same config encode identically.
  core::FhdnnModel a(small_config());
  core::FhdnnModel b(small_config());
  Rng rng(4);
  const Tensor imgs = Tensor::rand(Shape{2, 1, 28, 28}, rng);
  EXPECT_EQ(a.encode_images(imgs).vec(), b.encode_images(imgs).vec());
}

TEST_F(FhdnnModelTest, RejectsBadConfig) {
  auto cfg = small_config();
  cfg.num_classes = 1;
  EXPECT_THROW(core::FhdnnModel{cfg}, Error);
}

// ------------------------------------------------------------ experiment

using ExperimentTest = QuietLogs;

TEST_F(ExperimentTest, MakesAllDatasets) {
  for (const std::string name : {"mnist", "fashion", "cifar"}) {
    const auto exp = core::make_experiment_data(name, 300, 5,
                                                core::Distribution::Iid, 1);
    EXPECT_EQ(exp.parts.size(), 5U);
    EXPECT_GT(exp.test.size(), 0);
    EXPECT_EQ(exp.train.num_classes, 10);
  }
  EXPECT_THROW(core::make_experiment_data("imagenet", 100, 2,
                                          core::Distribution::Iid, 1),
               Error);
}

TEST_F(ExperimentTest, NonIidIsSkewed) {
  const auto iid = core::make_experiment_data("mnist", 1000, 10,
                                              core::Distribution::Iid, 2);
  const auto skew = core::make_experiment_data("mnist", 1000, 10,
                                               core::Distribution::NonIid, 2);
  EXPECT_GT(data::label_skew(skew.train, skew.parts),
            data::label_skew(iid.train, iid.parts));
}

TEST_F(ExperimentTest, DistributionParsing) {
  EXPECT_EQ(core::distribution_from_string("iid"), core::Distribution::Iid);
  EXPECT_EQ(core::distribution_from_string("noniid"),
            core::Distribution::NonIid);
  EXPECT_EQ(core::distribution_from_string("non-iid"),
            core::Distribution::NonIid);
  EXPECT_THROW(core::distribution_from_string("banana"), Error);
  EXPECT_EQ(core::to_string(core::Distribution::Iid), "iid");
}

TEST_F(ExperimentTest, ConfigHelpers) {
  Rng rng(3);
  const auto ds = data::synthetic_cifar(20, rng);
  const auto cfg = core::fhdnn_config_for(ds, 2048);
  EXPECT_EQ(cfg.in_channels, 3);
  EXPECT_EQ(cfg.image_hw, 32);
  EXPECT_EQ(cfg.hd_dim, 2048);
  EXPECT_EQ(core::cnn_params_for("mnist").arch, core::CnnArch::Cnn2);
  EXPECT_EQ(core::cnn_params_for("cifar").arch, core::CnnArch::MiniResNet);
  const auto p = core::paper_default_params(100, 50, 9);
  EXPECT_EQ(p.local_epochs, 2);
  EXPECT_DOUBLE_EQ(p.client_fraction, 0.2);
  EXPECT_EQ(p.batch_size, 10U);
}

// ------------------------------------------------------------- pipelines

using PipelineTest = QuietLogs;

TEST_F(PipelineTest, FhdnnFederatedRuns) {
  const auto exp = core::make_experiment_data("mnist", 400, 5,
                                              core::Distribution::Iid, 4);
  auto params = core::paper_default_params(5, 3, 4);
  params.client_fraction = 0.4;
  auto cfg = core::fhdnn_config_for(exp.train, 1024, 128);
  channel::HdUplinkConfig uplink;
  const auto hist = core::run_fhdnn_federated(cfg, exp.train, exp.parts,
                                              exp.test, params, uplink);
  EXPECT_EQ(hist.size(), 3U);
  EXPECT_GT(hist.final_accuracy(), 0.8);
}

TEST_F(PipelineTest, CnnFederatedRuns) {
  const auto exp = core::make_experiment_data("mnist", 400, 5,
                                              core::Distribution::Iid, 5);
  auto params = core::paper_default_params(5, 3, 5);
  params.client_fraction = 0.4;
  params.batch_size = 16;
  const auto cnn = core::cnn_params_for("mnist");
  const auto hist = core::run_cnn_federated(cnn, exp.train, exp.parts,
                                            exp.test, params, nullptr);
  EXPECT_EQ(hist.size(), 3U);
  EXPECT_GT(hist.final_accuracy(), 0.3);
}

TEST_F(PipelineTest, EncodeOnceMatchesOneShotPipeline) {
  // encode_for_fhdnn + run_fhdnn_on_encoded must be bit-identical to the
  // single-call pipeline (the sweep benches rely on this equivalence).
  const auto exp = core::make_experiment_data("mnist", 300, 4,
                                              core::Distribution::Iid, 8);
  auto params = core::paper_default_params(4, 2, 8);
  params.client_fraction = 0.5;
  const auto cfg = core::fhdnn_config_for(exp.train, 512, 64);
  channel::HdUplinkConfig clean;
  const auto one_shot = core::run_fhdnn_federated(cfg, exp.train, exp.parts,
                                                  exp.test, params, clean);
  const auto encoded =
      core::encode_for_fhdnn(cfg, exp.train, exp.parts, exp.test);
  const auto reused = core::run_fhdnn_on_encoded(encoded, params, clean);
  ASSERT_EQ(one_shot.size(), reused.size());
  for (std::size_t i = 0; i < one_shot.size(); ++i) {
    EXPECT_EQ(one_shot.rounds()[i].test_accuracy,
              reused.rounds()[i].test_accuracy);
  }
  // And the encoded data is reusable for a second, different run.
  channel::HdUplinkConfig lossy;
  lossy.mode = channel::HdUplinkMode::PacketLoss;
  lossy.loss_rate = 0.3;
  EXPECT_NO_THROW(core::run_fhdnn_on_encoded(encoded, params, lossy));
}

TEST_F(PipelineTest, RgbConfigAutoSelectsWiderExtractor) {
  Rng rng(9);
  const auto gray = data::synthetic_mnist(12, rng);
  const auto rgb = data::synthetic_cifar(12, rng);
  const auto cg = core::fhdnn_config_for(gray, 1000);
  const auto cr = core::fhdnn_config_for(rgb, 1000);
  EXPECT_GT(cr.conv_width, cg.conv_width);
  EXPECT_GT(cr.feature_dim, cg.feature_dim);
  // Explicit feature_dim overrides the auto choice.
  EXPECT_EQ(core::fhdnn_config_for(rgb, 1000, 128).feature_dim, 128);
}

TEST_F(PipelineTest, UpdateSizeGapMatchesPaperDirection) {
  // FHDnn updates must be much smaller than the CNN's for the CIFAR-scale
  // model (the paper's 22x at full scale).
  Rng rng(6);
  const auto ds = data::synthetic_cifar(20, rng);
  const auto fhdnn_cfg = core::fhdnn_config_for(ds, 2048);
  auto cnn = core::cnn_params_for("cifar");
  cnn.base_width = 16;
  EXPECT_LT(core::fhdnn_update_bytes(fhdnn_cfg),
            core::cnn_update_bytes(cnn, ds));
}

}  // namespace
}  // namespace fhdnn
