// Tests for the bit-packed binary-HD backend (hdc/packed) and the runtime
// SIMD dispatch layer (util/cpu, util/simd): layout invariants, exact
// agreement with the float/scalar oracle, and per-tier bit-exactness of
// the dispatched kernels — including NaN/Inf/-0.0 payloads.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "hdc/binary_model.hpp"
#include "hdc/classifier.hpp"
#include "hdc/ops.hpp"
#include "hdc/packed.hpp"
#include "util/cpu.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace fhdnn {
namespace {

using namespace fhdnn::hdc;

// --------------------------------------------------------------- layout

TEST(PackedLayout, WordsAndTailMask) {
  EXPECT_EQ(words_for_bits(1), 1);
  EXPECT_EQ(words_for_bits(63), 1);
  EXPECT_EQ(words_for_bits(64), 1);
  EXPECT_EQ(words_for_bits(65), 2);
  EXPECT_EQ(words_for_bits(128), 2);
  EXPECT_EQ(tail_mask(64), ~0ULL);
  EXPECT_EQ(tail_mask(128), ~0ULL);
  EXPECT_EQ(tail_mask(1), 1ULL);
  EXPECT_EQ(tail_mask(63), (1ULL << 63) - 1ULL);
  EXPECT_EQ(tail_mask(65), 1ULL);
}

TEST(PackedLayout, TailBitsStayZero) {
  Rng rng(41);
  const std::int64_t d = 70;  // 6 live bits in the second word
  const Tensor v = random_bipolar(d, rng);
  PackedHV p = pack_hv(v);
  EXPECT_EQ(p.words.size(), 2U);
  EXPECT_EQ(p.words[1] & ~tail_mask(d), 0ULL);
  // ... and the invariant survives the packed ops.
  const PackedHV q = pack_hv(random_bipolar(d, rng));
  EXPECT_EQ(xor_bind(p, q).words[1] & ~tail_mask(d), 0ULL);
  EXPECT_EQ(rotate(p, 13).words[1] & ~tail_mask(d), 0ULL);
  EXPECT_EQ(bundle_majority_packed({p, q}).words[1] & ~tail_mask(d), 0ULL);
}

TEST(PackedLayout, PackedModelRowsAreWordAligned) {
  Rng rng(42);
  const Tensor m = sign(Tensor::randn(Shape{3, 70}, rng));
  const PackedModel pm = pack_rows(m);
  EXPECT_EQ(pm.words_per_row(), 2);
  EXPECT_EQ(pm.words.size(), 6U);
  for (std::int64_t r = 0; r < 3; ++r) {
    EXPECT_EQ(pm.row(r)[1] & ~tail_mask(70), 0ULL);
  }
  const Tensor back = unpack_rows(pm);
  for (std::int64_t i = 0; i < m.numel(); ++i) EXPECT_EQ(back.at(i), m.at(i));
}

TEST(PackedLayout, SignZeroConvention) {
  // pack follows the library's sign(0) := +1, and NaN packs as -1
  // (matching the `>= 0` comparison it is defined by).
  Tensor v(Shape{4}, {0.0F, -0.0F, 1.5F, -2.0F});
  const PackedHV p = pack_hv(v);
  EXPECT_EQ(p.element(0), 1.0F);
  EXPECT_EQ(p.element(1), 1.0F);  // -0.0f >= 0.0f
  EXPECT_EQ(p.element(2), 1.0F);
  EXPECT_EQ(p.element(3), -1.0F);
  Tensor w(Shape{2}, {std::numeric_limits<float>::quiet_NaN(),
                      std::numeric_limits<float>::infinity()});
  const PackedHV pw = pack_hv(w);
  EXPECT_EQ(pw.element(0), -1.0F);  // NaN >= 0 is false
  EXPECT_EQ(pw.element(1), 1.0F);
}

// ------------------------------------------------- scalar-oracle parity

TEST(PackedOps, XorBindMatchesFloatBind) {
  Rng rng(43);
  const Tensor a = random_bipolar(1000, rng);
  const Tensor b = random_bipolar(1000, rng);
  const PackedHV got = xor_bind(pack_hv(a), pack_hv(b));
  const PackedHV want = pack_hv(bind(a, b));
  EXPECT_EQ(got.words, want.words);
}

TEST(PackedOps, RotateMatchesPermute) {
  Rng rng(44);
  const std::int64_t d = 200;
  const Tensor v = random_bipolar(d, rng);
  const PackedHV p = pack_hv(v);
  for (const std::int64_t k : {0L, 1L, 37L, 63L, 64L, 65L, d - 1, d, d + 3,
                               -1L, -64L, -129L}) {
    const PackedHV got = rotate(p, k);
    const PackedHV want = pack_hv(permute(v, k));
    EXPECT_EQ(got.words, want.words) << "shift " << k;
  }
}

TEST(PackedOps, HammingAndCosineMatchFloatPath) {
  Rng rng(45);
  const Tensor a = random_bipolar(999, rng);
  const Tensor b = random_bipolar(999, rng);
  const PackedHV pa = pack_hv(a), pb = pack_hv(b);
  // hamming_distance returns differ/d; the packed count divided by d is
  // the same division of the same integers — exactly equal doubles.
  EXPECT_EQ(hamming_norm(pa, pb), hamming_distance(a, b));
  EXPECT_EQ(hamming(pa, pa), 0ULL);
  EXPECT_EQ(cosine(pa, pa), 1.0);
  const double expect_cos = 1.0 - 2.0 * hamming_distance(a, b);
  EXPECT_DOUBLE_EQ(cosine(pa, pb), expect_cos);
}

TEST(PackedOps, BundleMajorityMatchesFloatPath) {
  Rng rng(46);
  for (const int n : {1, 2, 3, 4, 5, 8}) {
    std::vector<Tensor> vs;
    std::vector<PackedHV> ps;
    for (int i = 0; i < n; ++i) {
      vs.push_back(random_bipolar(777, rng));
      ps.push_back(pack_hv(vs.back()));
    }
    const PackedHV got = bundle_majority_packed(ps);
    const PackedHV want = pack_hv(bundle_majority(vs));
    EXPECT_EQ(got.words, want.words) << "n=" << n;
  }
}

TEST(PackedOps, EvenSplitTieBreaksByIndexParity) {
  // Regression for the tie bias: an exact 50/50 split must resolve +1 at
  // even indices and -1 at odd ones — both float and packed paths.
  Rng rng(47);
  const std::int64_t d = 130;
  const Tensor v = random_bipolar(d, rng);
  Tensor nv = v;
  nv.scale(-1.0F);
  const Tensor maj = bundle_majority({v, nv});
  for (std::int64_t i = 0; i < d; ++i) {
    EXPECT_EQ(maj(i), i % 2 == 0 ? 1.0F : -1.0F) << "index " << i;
  }
  const PackedHV pmaj = bundle_majority_packed({pack_hv(v), pack_hv(nv)});
  EXPECT_EQ(pmaj.words, pack_hv(maj).words);
  // No net bias: the tied bundle sums to ~zero, not +d.
  double total = 0.0;
  for (std::int64_t i = 0; i < d; ++i) total += maj(i);
  EXPECT_EQ(total, 0.0);
}

TEST(PackedOps, Validation) {
  EXPECT_THROW(bundle_majority_packed({}), Error);
  PackedHV a(64), b(65);
  EXPECT_THROW(xor_bind(a, b), Error);
  EXPECT_THROW(hamming(a, b), Error);
  EXPECT_THROW(majority_aggregate_packed({}), Error);
}

// ------------------------------------------------- model-level agreement

TEST(PackedModelOps, MajorityAggregateMatchesBinaryModel) {
  Rng rng(48);
  // Odd d: row 1 starts at an odd flat index, exercising the flipped
  // tie-mask phase; even model count so ties actually occur.
  const std::int64_t kk = 3, d = 77;
  std::vector<BinaryModel> binary;
  std::vector<PackedModel> packed;
  for (int m = 0; m < 4; ++m) {
    const Tensor t = sign(Tensor::randn(Shape{kk, d}, rng));
    binary.push_back(binarize(t));
    packed.push_back(pack_rows(t));
  }
  const BinaryModel want = majority_aggregate(binary);
  const PackedModel got = majority_aggregate_packed(packed);
  EXPECT_EQ(binary_from_packed(got).bits, want.bits);
}

TEST(PackedModelOps, BinaryModelBridgeRoundTrips) {
  Rng rng(49);
  const Tensor t = sign(Tensor::randn(Shape{5, 70}, rng));
  const BinaryModel b = binarize(t);
  const PackedModel p = packed_from_binary(b);
  EXPECT_EQ(p.rows, b.classes);
  EXPECT_EQ(p.d, b.hd_dim);
  EXPECT_EQ(binary_from_packed(p).bits, b.bits);
  // Row-aligned content equals a direct pack of the same matrix.
  EXPECT_EQ(p.words, pack_rows(t).words);
}

TEST(PackedModelOps, ClassifyPackedMatchesPredict) {
  Rng rng(50);
  const std::int64_t kk = 7, d = 1000, n = 40;
  const Tensor protos = sign(Tensor::randn(Shape{kk, d}, rng));
  const Tensor queries = sign(Tensor::randn(Shape{n, d}, rng));
  HdClassifier clf(kk, d);
  clf.set_prototypes(protos);
  const auto want = clf.predict(queries);
  const auto got = classify_packed(pack_rows(protos), pack_rows(queries));
  EXPECT_EQ(got, want);
}

// ------------------------------------------------------ runtime dispatch

TEST(SimdDispatch, ParseNames) {
  EXPECT_EQ(util::parse_simd_tier("scalar"), util::SimdTier::Scalar);
  EXPECT_EQ(util::parse_simd_tier("neon"), util::SimdTier::Neon);
  EXPECT_EQ(util::parse_simd_tier("avx2"), util::SimdTier::Avx2);
  EXPECT_EQ(util::parse_simd_tier("avx512"), util::SimdTier::Avx512);
  EXPECT_EQ(util::parse_simd_tier("native"), util::detected_simd());
  EXPECT_THROW(util::parse_simd_tier("sse9"), Error);
  for (const auto t :
       {util::SimdTier::Scalar, util::SimdTier::Neon, util::SimdTier::Avx2,
        util::SimdTier::Avx512}) {
    EXPECT_EQ(util::parse_simd_tier(util::simd_tier_name(t)), t);
  }
}

TEST(SimdDispatch, SetTierClampsToDetected) {
  const util::SimdTier before = util::active_simd();
  // Scalar is always accepted.
  EXPECT_EQ(util::set_simd_tier(util::SimdTier::Scalar),
            util::SimdTier::Scalar);
  EXPECT_EQ(util::active_simd(), util::SimdTier::Scalar);
  // Requesting the detected tier is exact; wider requests clamp down.
  const util::SimdTier det = util::detected_simd();
  EXPECT_EQ(util::set_simd_tier(det), det);
  EXPECT_LE(static_cast<int>(util::set_simd_tier(util::SimdTier::Avx512)),
            static_cast<int>(det));
  util::set_simd_tier(before);
}

/// All tiers the current CPU (and build) can actually run.
std::vector<util::SimdTier> available_tiers() {
  std::vector<util::SimdTier> out{util::SimdTier::Scalar};
  for (const auto t : {util::SimdTier::Neon, util::SimdTier::Avx2,
                       util::SimdTier::Avx512}) {
    if (util::set_simd_tier(t) == t) out.push_back(t);
  }
  util::set_simd_tier(util::detected_simd());
  return out;
}

/// Float payload mixing ordinary values with the IEEE-754 specials that
/// SIMD re-implementations most often mishandle. Specials are scattered so
/// they land in different vector lanes and in the scalar tail.
std::vector<float> special_payload(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  rng.fill_normal(v, 0.0F, 2.0F);
  const float specials[] = {std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            -0.0F,
                            std::numeric_limits<float>::denorm_min(),
                            -1e-38F};
  for (std::size_t i = 0; i < n; i += 7) {
    v[i] = specials[(i / 7) % 6];
  }
  return v;
}

void expect_bits_equal(const std::vector<float>& got,
                       const std::vector<float>& want, const char* what,
                       util::SimdTier tier) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
              std::bit_cast<std::uint32_t>(want[i]))
        << what << " diverges from scalar at i=" << i << " under tier "
        << util::simd_tier_name(tier);
  }
}

TEST(SimdKernels, FloatKernelsBitExactAcrossTiers) {
  Rng rng(51);
  // Odd length: exercises both the full vector body and the scalar tail.
  const std::size_t n = 1013;
  const std::vector<float> x = special_payload(n, rng);
  std::vector<float> y0(n);
  rng.fill_normal(y0, 1.0F, 3.0F);
  const auto& scalar = simd::detail::scalar_table();
  for (const auto tier : available_tiers()) {
    const auto& k = simd::kernels_for(tier);
    for (const float a : {0.5F, -1.25F, 0.0F, 1.0F}) {
      std::vector<float> want = y0, got = y0;
      scalar.axpy_f32(want.data(), a, x.data(), static_cast<std::int64_t>(n));
      k.axpy_f32(got.data(), a, x.data(), static_cast<std::int64_t>(n));
      expect_bits_equal(got, want, "axpy", tier);

      std::vector<float> ws(n), gs(n);
      scalar.scale_f32(ws.data(), x.data(), a, static_cast<std::int64_t>(n));
      k.scale_f32(gs.data(), x.data(), a, static_cast<std::int64_t>(n));
      expect_bits_equal(gs, ws, "scale", tier);
    }
    std::vector<float> w(n), g(n);
    scalar.add_f32(w.data(), x.data(), y0.data(),
                   static_cast<std::int64_t>(n));
    k.add_f32(g.data(), x.data(), y0.data(), static_cast<std::int64_t>(n));
    expect_bits_equal(g, w, "add", tier);
    scalar.sub_f32(w.data(), x.data(), y0.data(),
                   static_cast<std::int64_t>(n));
    k.sub_f32(g.data(), x.data(), y0.data(), static_cast<std::int64_t>(n));
    expect_bits_equal(g, w, "sub", tier);
    scalar.mul_f32(w.data(), x.data(), y0.data(),
                   static_cast<std::int64_t>(n));
    k.mul_f32(g.data(), x.data(), y0.data(), static_cast<std::int64_t>(n));
    expect_bits_equal(g, w, "mul", tier);
  }
}

TEST(SimdKernels, BitKernelsExactAcrossTiers) {
  Rng rng(52);
  const std::int64_t nbits = 1013;
  const std::int64_t nwords = (nbits + 63) / 64;
  const std::vector<float> src = special_payload(
      static_cast<std::size_t>(nbits), rng);
  const auto& scalar = simd::detail::scalar_table();
  std::vector<std::uint64_t> want_bits(static_cast<std::size_t>(nwords));
  scalar.pack_signs(src.data(), want_bits.data(), nbits);
  std::vector<std::uint64_t> other(static_cast<std::size_t>(nwords));
  for (std::size_t w = 0; w < other.size(); ++w) {
    other[w] = rng.next_u64();
  }
  other.back() &= tail_mask(nbits);
  for (const auto tier : available_tiers()) {
    const auto& k = simd::kernels_for(tier);
    std::vector<std::uint64_t> got_bits(static_cast<std::size_t>(nwords));
    k.pack_signs(src.data(), got_bits.data(), nbits);
    EXPECT_EQ(got_bits, want_bits) << util::simd_tier_name(tier);

    std::vector<float> want_f(static_cast<std::size_t>(nbits));
    std::vector<float> got_f(static_cast<std::size_t>(nbits));
    scalar.unpack_signs(want_bits.data(), want_f.data(), nbits);
    k.unpack_signs(want_bits.data(), got_f.data(), nbits);
    expect_bits_equal(got_f, want_f, "unpack_signs", tier);

    std::vector<std::uint64_t> want_x(static_cast<std::size_t>(nwords));
    std::vector<std::uint64_t> got_x(static_cast<std::size_t>(nwords));
    scalar.xor_words(want_bits.data(), other.data(), want_x.data(), nwords);
    k.xor_words(want_bits.data(), other.data(), got_x.data(), nwords);
    EXPECT_EQ(got_x, want_x) << util::simd_tier_name(tier);

    EXPECT_EQ(k.popcount_words(want_bits.data(), nwords),
              scalar.popcount_words(want_bits.data(), nwords))
        << util::simd_tier_name(tier);
    EXPECT_EQ(k.hamming_words(want_bits.data(), other.data(), nwords),
              scalar.hamming_words(want_bits.data(), other.data(), nwords))
        << util::simd_tier_name(tier);
  }
}

TEST(SimdKernels, PackedPipelineIdenticalUnderEveryTier) {
  // End-to-end: the packed classify pipeline produces identical bits and
  // predictions whichever tier is active.
  Rng rng(53);
  const Tensor protos = sign(Tensor::randn(Shape{5, 500}, rng));
  const Tensor queries = sign(Tensor::randn(Shape{11, 500}, rng));
  const util::SimdTier before = util::active_simd();
  std::vector<std::int64_t> first;
  std::vector<std::uint64_t> first_words;
  bool have_first = false;
  for (const auto tier : available_tiers()) {
    util::set_simd_tier(tier);
    const PackedModel pp = pack_rows(protos);
    const auto preds = classify_packed(pp, pack_rows(queries));
    if (!have_first) {
      first = preds;
      first_words = pp.words;
      have_first = true;
    } else {
      EXPECT_EQ(preds, first) << util::simd_tier_name(tier);
      EXPECT_EQ(pp.words, first_words) << util::simd_tier_name(tier);
    }
  }
  util::set_simd_tier(before);
}

}  // namespace
}  // namespace fhdnn
