// Tests for src/nn: layers, batchnorm, residual blocks, loss, optimizer,
// serialization. Gradients are validated against central finite differences
// at the module level.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

using nn::Module;
using nn::Parameter;

/// loss(x) = sum(forward(x) .* g); analytic grads via backward(g).
/// Verifies every parameter gradient (sampled stride for big tensors) and
/// the input gradient against central differences.
void grad_check(Module& model, Tensor x, const Tensor& g, float eps = 1e-2F,
                float tol = 6e-2F, std::int64_t stride = 7) {
  auto loss = [&]() {
    const Tensor y = model.forward(x);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) s += y.at(i) * g.at(i);
    return s;
  };
  model.zero_grad();
  (void)model.forward(x);
  const Tensor gx = model.backward(g);

  for (Parameter* p : model.parameters()) {
    for (std::int64_t i = 0; i < p->value.numel(); i += stride) {
      float& v = p->value.at(i);
      const float orig = v;
      v = orig + eps;
      const double lp = loss();
      v = orig - eps;
      const double lm = loss();
      v = orig;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad.at(i), num, tol)
          << "param grad mismatch at index " << i;
    }
  }
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    float& v = x.at(i);
    const float orig = v;
    v = orig + eps;
    const double lp = loss();
    v = orig - eps;
    const double lm = loss();
    v = orig;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gx.at(i), num, tol) << "input grad mismatch at index " << i;
  }
}

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear lin(3, 2, rng);
  EXPECT_EQ(lin.parameter_count(), 3 * 2 + 2);
  Tensor x = Tensor::randn(Shape{4, 3}, rng);
  const Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 2}));
  EXPECT_THROW(lin.forward(Tensor(Shape{4, 5})), Error);
}

TEST(Linear, GradCheck) {
  Rng rng(2);
  nn::Linear lin(4, 3, rng);
  Tensor x = Tensor::randn(Shape{2, 4}, rng);
  const Tensor g = Tensor::randn(Shape{2, 3}, rng);
  grad_check(lin, x, g, 1e-2F, 5e-2F, 1);
}

TEST(Conv2dLayer, GradCheck) {
  Rng rng(3);
  nn::Conv2d conv(2, 3, 3, 1, 1, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  const Tensor g = Tensor::randn(Shape{1, 3, 4, 4}, rng);
  grad_check(conv, x, g, 1e-2F, 8e-2F, 5);
}

TEST(ReLULayer, GradCheck) {
  Rng rng(4);
  nn::ReLU relu;
  // Keep values away from the kink at 0 for finite differences.
  Tensor x = Tensor::randn(Shape{3, 5}, rng);
  for (auto& v : x.data()) {
    if (std::abs(v) < 0.1F) v = 0.3F;
  }
  const Tensor g = Tensor::randn(Shape{3, 5}, rng);
  grad_check(relu, x, g, 1e-3F, 1e-2F, 1);
}

TEST(MaxPoolLayer, GradCheck) {
  Rng rng(5);
  nn::MaxPool2d pool(2);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  const Tensor g = Tensor::randn(Shape{1, 2, 2, 2}, rng);
  grad_check(pool, x, g, 1e-3F, 1e-2F, 1);
}

TEST(FlattenLayer, RoundTrip) {
  nn::Flatten flat;
  Tensor x(Shape{2, 3, 2, 2});
  x(1, 2, 1, 1) = 5.0F;
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 12}));
  const Tensor gx = flat.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_EQ(gx(1, 2, 1, 1), 5.0F);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  Rng rng(6);
  nn::BatchNorm2d bn(3);
  Tensor x = Tensor::randn(Shape{4, 3, 5, 5}, rng, 4.0F);
  for (auto& v : x.data()) v += 10.0F;
  const Tensor y = bn.forward(x);
  // Per-channel output mean ~0, var ~1 with default gamma/beta.
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t yx = 0; yx < 25; ++yx) {
        const float v = y(i, c, yx / 5, yx % 5);
        sum += v;
        sq += v * v;
        ++n;
      }
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(sq / n - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConverge) {
  Rng rng(7);
  nn::BatchNorm2d bn(1, 1e-5F, 0.5F);
  for (int i = 0; i < 30; ++i) {
    Tensor x = Tensor::randn(Shape{8, 1, 4, 4}, rng, 2.0F);
    for (auto& v : x.data()) v += 3.0F;
    (void)bn.forward(x);
  }
  EXPECT_NEAR(bn.running_mean()(0), 3.0F, 0.4F);
  EXPECT_NEAR(bn.running_var()(0), 4.0F, 1.0F);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(8);
  nn::BatchNorm2d bn(1);
  bn.running_mean()(0) = 2.0F;
  bn.running_var()(0) = 4.0F;
  bn.set_training(false);
  Tensor x(Shape{1, 1, 1, 2}, {2.0F, 4.0F});
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y(0, 0, 0, 0), 0.0F, 1e-3);
  EXPECT_NEAR(y(0, 0, 0, 1), 1.0F, 1e-3);
}

TEST(BatchNorm, GradCheck) {
  Rng rng(9);
  nn::BatchNorm2d bn(2);
  Tensor x = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  const Tensor g = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  grad_check(bn, x, g, 1e-2F, 8e-2F, 3);
}

TEST(BatchNorm, BuffersExposed) {
  nn::BatchNorm2d bn(4);
  EXPECT_EQ(bn.buffers().size(), 2U);
  EXPECT_EQ(bn.buffers()[0]->numel(), 4);
}

TEST(Sequential, ChainsAndCollectsParams) {
  Rng rng(10);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>(4, 8, rng));
  seq.add(std::make_unique<nn::ReLU>());
  seq.add(std::make_unique<nn::Linear>(8, 2, rng));
  EXPECT_EQ(seq.size(), 3U);
  EXPECT_EQ(seq.parameter_count(), 4 * 8 + 8 + 8 * 2 + 2);
  Tensor x = Tensor::randn(Shape{5, 4}, rng);
  EXPECT_EQ(seq.forward(x).shape(), (Shape{5, 2}));
}

TEST(Sequential, GradCheck) {
  Rng rng(11);
  nn::Sequential seq;
  seq.add(std::make_unique<nn::Linear>(3, 6, rng));
  seq.add(std::make_unique<nn::ReLU>());
  seq.add(std::make_unique<nn::Linear>(6, 2, rng));
  Tensor x = Tensor::randn(Shape{2, 3}, rng);
  const Tensor g = Tensor::randn(Shape{2, 2}, rng);
  grad_check(seq, x, g, 1e-2F, 6e-2F, 3);
}

TEST(ResidualBlock, IdentitySkipShape) {
  Rng rng(12);
  nn::ResidualBlock block(4, 4, 1, rng);
  EXPECT_FALSE(block.has_projection());
  Tensor x = Tensor::randn(Shape{2, 4, 6, 6}, rng);
  EXPECT_EQ(block.forward(x).shape(), (Shape{2, 4, 6, 6}));
}

TEST(ResidualBlock, ProjectionSkipShape) {
  Rng rng(13);
  nn::ResidualBlock block(4, 8, 2, rng);
  EXPECT_TRUE(block.has_projection());
  Tensor x = Tensor::randn(Shape{2, 4, 6, 6}, rng);
  EXPECT_EQ(block.forward(x).shape(), (Shape{2, 8, 3, 3}));
  EXPECT_EQ(block.buffers().size(), 6U);  // 3 BN layers x 2 buffers
}

TEST(ResidualBlock, GradCheck) {
  Rng rng(14);
  nn::ResidualBlock block(2, 4, 2, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 4, 4}, rng);
  (void)block.forward(x);  // establish shapes
  const Tensor g = Tensor::randn(Shape{1, 4, 2, 2}, rng);
  grad_check(block, x, g, 1e-2F, 1e-1F, 11);
}

TEST(CrossEntropy, KnownValues) {
  nn::CrossEntropyLoss loss;
  // Uniform logits over 4 classes -> loss = log(4).
  Tensor logits(Shape{2, 4});
  const double l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, GradCheck) {
  Rng rng(15);
  Tensor logits = Tensor::randn(Shape{3, 5}, rng);
  const std::vector<std::int64_t> labels{1, 4, 0};
  nn::CrossEntropyLoss loss;
  (void)loss.forward(logits, labels);
  const Tensor g = loss.backward();
  const float eps = 1e-2F;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    float& v = logits.at(i);
    const float orig = v;
    v = orig + eps;
    nn::CrossEntropyLoss lp;
    const double fp = lp.forward(logits, labels);
    v = orig - eps;
    nn::CrossEntropyLoss lm;
    const double fm = lm.forward(logits, labels);
    v = orig;
    EXPECT_NEAR(g.at(i), (fp - fm) / (2.0 * eps), 1e-3);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  nn::CrossEntropyLoss loss;
  Tensor logits(Shape{1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), Error);
  EXPECT_THROW(loss.forward(logits, {0, 1}), Error);
}

TEST(Accuracy, Computes) {
  Tensor logits(Shape{3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(nn::accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Sgd, DescendsQuadratic) {
  // Minimize ||Wx - y||^2 for a realizable target (y generated by a hidden
  // linear map); SGD must drive the loss near zero.
  Rng rng(16);
  nn::Linear lin(4, 3, rng);
  nn::Sgd opt(lin, {0.02F, 0.9F, 0.0F});
  Tensor x = Tensor::randn(Shape{8, 4}, rng);
  nn::Linear teacher(4, 3, rng);
  const Tensor target = teacher.forward(x);
  auto mse_loss = [&]() {
    const Tensor y = lin.forward(x);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      const double d = y.at(i) - target.at(i);
      s += d * d;
    }
    return s / y.numel();
  };
  const double before = mse_loss();
  for (int it = 0; it < 200; ++it) {
    opt.zero_grad();
    const Tensor y = lin.forward(x);
    Tensor g = y;
    g.axpy(-1.0F, target);
    g.scale(2.0F / static_cast<float>(y.numel()));
    lin.backward(g);
    opt.step();
  }
  EXPECT_LT(mse_loss(), before * 0.05);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Rng rng(17);
  nn::Linear lin(3, 3, rng);
  const double norm0 = lin.weight().value.l2_norm();
  nn::Sgd opt(lin, {0.1F, 0.0F, 0.5F});
  for (int i = 0; i < 10; ++i) {
    opt.zero_grad();  // zero gradient: only decay acts
    opt.step();
  }
  EXPECT_LT(lin.weight().value.l2_norm(), norm0 * 0.7);
}

TEST(Serialize, RoundTrip) {
  Rng rng(18);
  auto net = nn::make_cnn2(1, 8, 4, rng);
  const auto state = nn::get_state(*net);
  EXPECT_EQ(static_cast<std::int64_t>(state.size()), nn::state_size(*net));

  Rng rng2(99);
  auto net2 = nn::make_cnn2(1, 8, 4, rng2);
  nn::set_state(*net2, state);
  EXPECT_EQ(nn::get_state(*net2), state);

  // Identical states -> identical outputs.
  Tensor x = Tensor::randn(Shape{2, 1, 8, 8}, rng);
  net->set_training(false);
  net2->set_training(false);
  const Tensor y1 = net->forward(x);
  const Tensor y2 = net2->forward(x);
  for (std::int64_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1.at(i), y2.at(i));
}

TEST(Serialize, SizeMismatchThrows) {
  Rng rng(19);
  auto net = nn::make_cnn2(1, 8, 4, rng);
  std::vector<float> wrong(3, 0.0F);
  EXPECT_THROW(nn::set_state(*net, wrong), Error);
}

TEST(Serialize, IncludesBatchNormBuffers) {
  Rng rng(20);
  auto net = nn::make_mini_resnet(1, 4, 4, rng);
  std::int64_t param_scalars = 0;
  for (const Parameter* p : net->parameters()) param_scalars += p->value.numel();
  EXPECT_GT(nn::state_size(*net), param_scalars);  // buffers add to state
}

TEST(Factories, Cnn2Shapes) {
  Rng rng(21);
  auto net = nn::make_cnn2(1, 28, 10, rng);
  Tensor x = Tensor::randn(Shape{2, 1, 28, 28}, rng);
  EXPECT_EQ(net->forward(x).shape(), (Shape{2, 10}));
  EXPECT_THROW(nn::make_cnn2(1, 30, 10, rng), Error);
}

TEST(Factories, MiniResNetShapes) {
  Rng rng(22);
  auto net = nn::make_mini_resnet(3, 10, 8, rng);
  Tensor x = Tensor::randn(Shape{2, 3, 32, 32}, rng);
  EXPECT_EQ(net->forward(x).shape(), (Shape{2, 10}));
  // Width scaling grows parameters roughly quadratically.
  auto wide = nn::make_mini_resnet(3, 10, 16, rng);
  EXPECT_GT(wide->parameter_count(), 3 * net->parameter_count());
}

}  // namespace
}  // namespace fhdnn
