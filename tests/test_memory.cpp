// Memory-architecture tests (DESIGN.md §9): workspace arena behaviour,
// bitwise equivalence of every `_into` kernel with its value-returning
// wrapper, view aliasing policy, and the zero-allocation steady state of a
// full CNN training step and HD encode. This target links
// util/alloc_spy.cpp, so operator new/delete are counted process-wide.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "features/extractor.hpp"
#include "hdc/encoder.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "tensor/conv.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "tensor/view.hpp"
#include "util/alloc_spy.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/workspace.hpp"

// Sanitizers interpose the allocator and allocate internally; allocation
// counts are meaningless there, so the strict steady-state tests skip.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FHDNN_SANITIZED 1
#endif
#if !defined(FHDNN_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define FHDNN_SANITIZED 1
#endif
#endif
#ifndef FHDNN_SANITIZED
#define FHDNN_SANITIZED 0
#endif

#define SKIP_IF_SANITIZED()                                               \
  if (FHDNN_SANITIZED) {                                                  \
    GTEST_SKIP() << "allocation counting is unreliable under sanitizers"; \
  }

namespace fhdnn {
namespace {

void expect_bits_eq(std::span<const float> a, std::span<const float> b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << "bitwise mismatch between _into kernel and wrapper";
}

// ---------------------------------------------------------------------------
// Workspace arena
// ---------------------------------------------------------------------------

TEST(Workspace, ScopeRewindsAndStatsTrack) {
  util::Workspace ws;
  {
    const util::Workspace::Scope scope(ws);
    float* a = ws.floats(100);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 16, 0U);
    std::int64_t* idx = ws.indices(50);
    ASSERT_NE(idx, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(idx) % 16, 0U);
    // The ranges are usable end to end.
    for (int i = 0; i < 100; ++i) a[i] = static_cast<float>(i);
    for (int i = 0; i < 50; ++i) idx[i] = i;
    EXPECT_GE(ws.stats().bytes_in_use, 100 * sizeof(float) + 50 * 8);
  }
  EXPECT_EQ(ws.stats().bytes_in_use, 0U);
  EXPECT_EQ(ws.stats().alloc_calls, 2U);
  EXPECT_GE(ws.stats().high_water_bytes, 100 * sizeof(float) + 50 * 8);
}

TEST(Workspace, NestedScopesRewindToTheirMark) {
  util::Workspace ws;
  const util::Workspace::Scope outer(ws);
  (void)ws.floats(10);
  const std::uint64_t at_outer = ws.stats().bytes_in_use;
  {
    const util::Workspace::Scope inner(ws);
    (void)ws.floats(1000);
    EXPECT_GT(ws.stats().bytes_in_use, at_outer);
  }
  EXPECT_EQ(ws.stats().bytes_in_use, at_outer);
}

TEST(Workspace, SteadyStateStopsGrowing) {
  util::Workspace ws;
  auto step = [&ws] {
    const util::Workspace::Scope scope(ws);
    (void)ws.floats(3000);
    (void)ws.indices(500);
    const util::Workspace::Scope inner(ws);
    (void)ws.floats(20000);
  };
  step();  // warmup grows the arena
  ws.reset();
  const auto warm = ws.stats();
  for (int i = 0; i < 5; ++i) step();
  const auto steady = ws.stats();
  EXPECT_EQ(steady.heap_allocations, warm.heap_allocations);
  EXPECT_EQ(steady.capacity_bytes, warm.capacity_bytes);
  EXPECT_EQ(steady.high_water_bytes, warm.high_water_bytes);
}

TEST(Workspace, ResetCoalescesFragmentedGrowthIntoOneBlock) {
  util::Workspace ws;
  {
    const util::Workspace::Scope scope(ws);
    (void)ws.floats(20'000);  // 80 KB: first block
    (void)ws.floats(60'000);  // 240 KB: forces a second block
  }
  const auto grown = ws.stats();
  EXPECT_GE(grown.heap_allocations, 2U);
  ws.reset();
  const auto coalesced = ws.stats();
  // One more backing allocation to merge, then the full former capacity is
  // available contiguously and repeating the pattern allocates nothing.
  EXPECT_EQ(coalesced.heap_allocations, grown.heap_allocations + 1);
  EXPECT_GE(coalesced.capacity_bytes, grown.high_water_bytes);
  {
    const util::Workspace::Scope scope(ws);
    (void)ws.floats(20'000);
    (void)ws.floats(60'000);
  }
  EXPECT_EQ(ws.stats().heap_allocations, coalesced.heap_allocations);
}

TEST(Workspace, TlsWorkspaceIsPerThread) {
  util::Workspace* main_ws = &util::tls_workspace();
  util::Workspace* other_ws = nullptr;
  // Deliberately raw: this test asserts the arena is thread-local, so it
  // must observe a thread the util/parallel pool does not own.
  // fhdnn-lint: allow(raw-thread)
  std::thread t([&other_ws] { other_ws = &util::tls_workspace(); });
  t.join();
  ASSERT_NE(other_ws, nullptr);
  EXPECT_NE(main_ws, other_ws);
  // Same thread, same arena.
  EXPECT_EQ(main_ws, &util::tls_workspace());
}

// ---------------------------------------------------------------------------
// _into kernels are bit-identical to their wrappers
// ---------------------------------------------------------------------------

TEST(IntoKernels, ElementwiseMatchWrappers) {
  Rng rng(101);
  const Tensor a = Tensor::randn(Shape{7, 13}, rng);
  const Tensor b = Tensor::randn(Shape{7, 13}, rng);
  Tensor out(Shape{7, 13});

  ops::add_into(a, b, out);
  expect_bits_eq(out.data(), ops::add(a, b).data());
  ops::sub_into(a, b, out);
  expect_bits_eq(out.data(), ops::sub(a, b).data());
  ops::mul_into(a, b, out);
  expect_bits_eq(out.data(), ops::mul(a, b).data());
  ops::scale_into(a, 0.37F, out);
  expect_bits_eq(out.data(), ops::scale(a, 0.37F).data());
  ops::relu_into(a, out);
  expect_bits_eq(out.data(), ops::relu(a).data());
  ops::relu_backward_into(b, a, out);
  expect_bits_eq(out.data(), ops::relu_backward(b, a).data());
  ops::softmax_rows_into(a, out);
  expect_bits_eq(out.data(), ops::softmax_rows(a).data());

  // accumulate == axpy(1.0F, ·)
  Tensor acc_a = a;
  Tensor acc_b = a;
  ops::accumulate(acc_a, b);
  acc_b.axpy(1.0F, b);
  expect_bits_eq(acc_a.data(), acc_b.data());
}

TEST(IntoKernels, MatmulFamilyMatchesWrappers) {
  Rng rng(202);
  const Tensor a = Tensor::randn(Shape{7, 5}, rng);
  const Tensor b = Tensor::randn(Shape{5, 9}, rng);
  const Tensor bt = Tensor::randn(Shape{9, 5}, rng);
  const Tensor at = Tensor::randn(Shape{5, 7}, rng);
  const Tensor bias = Tensor::randn(Shape{9}, rng);

  Tensor out(Shape{7, 9});
  ops::matmul_into(a, b, out);
  expect_bits_eq(out.data(), ops::matmul(a, b).data());
  ops::matmul_bt_into(a, bt, out);
  expect_bits_eq(out.data(), ops::matmul_bt(a, bt).data());
  ops::matmul_at_into(at, b, out);
  expect_bits_eq(out.data(), ops::matmul_at(at, b).data());
  ops::linear_forward_into(a, bt, bias, out);
  expect_bits_eq(out.data(), ops::linear_forward(a, bt, bias).data());

  Tensor tr(Shape{5, 7});
  ops::transpose_into(a, tr);
  expect_bits_eq(tr.data(), ops::transpose(a).data());

  Tensor rows(Shape{5});
  ops::sum_rows_into(a, rows);
  expect_bits_eq(rows.data(), ops::sum_rows(a).data());
}

TEST(IntoKernels, ConvFamilyMatchesWrappers) {
  Rng rng(303);
  const ops::Conv2dSpec spec{3, 4, 3, 1, 1};
  const Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);
  const Tensor w = Tensor::randn(Shape{4, 3, 3, 3}, rng);
  const Tensor bias = Tensor::randn(Shape{4}, rng);
  util::Workspace ws;

  const Tensor cols_ref = ops::im2col(x, spec);
  Tensor cols(cols_ref.shape());
  ops::im2col_into(x, spec, cols);
  expect_bits_eq(cols.data(), cols_ref.data());

  const Tensor img_ref = ops::col2im(cols_ref, spec, 2, 8, 8);
  Tensor img(img_ref.shape());
  ops::col2im_into(cols_ref, spec, 2, 8, 8, img);
  expect_bits_eq(img.data(), img_ref.data());

  const Tensor y_ref = ops::conv2d_forward(x, w, bias, spec);
  Tensor y(y_ref.shape());
  ops::conv2d_forward_into(x, w, bias, spec, y, ws);
  expect_bits_eq(y.data(), y_ref.data());

  Rng grng(304);
  const Tensor gout = Tensor::randn(y_ref.shape(), grng);
  const auto grads_ref = ops::conv2d_backward(gout, x, w, spec);
  Tensor gi(x.shape());
  Tensor gw(w.shape());
  Tensor gb(Shape{4});
  ops::conv2d_backward_into(gout, x, w, spec, gi, gw, gb, ws);
  expect_bits_eq(gi.data(), grads_ref.grad_input.data());
  expect_bits_eq(gw.data(), grads_ref.grad_weight.data());
  expect_bits_eq(gb.data(), grads_ref.grad_bias.data());
}

TEST(IntoKernels, PoolingMatchesWrappers) {
  Rng rng(405);
  const Tensor x = Tensor::randn(Shape{2, 3, 8, 8}, rng);

  const auto pooled_ref = ops::maxpool2d_forward(x, 2);
  Tensor pooled(pooled_ref.output.shape());
  std::vector<std::int64_t> argmax(
      static_cast<std::size_t>(pooled.numel()));
  ops::maxpool2d_forward_into(x, 2, pooled, argmax);
  expect_bits_eq(pooled.data(), pooled_ref.output.data());
  EXPECT_EQ(argmax, pooled_ref.argmax);

  const Tensor gout = Tensor::randn(pooled_ref.output.shape(), rng);
  const Tensor gx_ref =
      ops::maxpool2d_backward(gout, pooled_ref.argmax, x.shape());
  Tensor gx(x.shape());
  ops::maxpool2d_backward_into(gout, pooled_ref.argmax, gx);
  expect_bits_eq(gx.data(), gx_ref.data());

  const Tensor gap_ref = ops::global_avgpool_forward(x);
  Tensor gap(gap_ref.shape());
  ops::global_avgpool_forward_into(x, gap);
  expect_bits_eq(gap.data(), gap_ref.data());

  const Tensor ggout = Tensor::randn(gap_ref.shape(), rng);
  const Tensor ggx_ref = ops::global_avgpool_backward(ggout, x.shape());
  Tensor ggx(x.shape());
  ops::global_avgpool_backward_into(ggout, ggx);
  expect_bits_eq(ggx.data(), ggx_ref.data());
}

TEST(IntoKernels, EncoderMatchesWrappers) {
  Rng rng(506);
  Rng enc_rng = rng.fork("enc");
  const hdc::RandomProjectionEncoder enc(16, 64, enc_rng);
  const Tensor z = Tensor::randn(Shape{5, 16}, rng);

  Tensor h(Shape{5, 64});
  enc.encode_linear_into(z, h);
  expect_bits_eq(h.data(), enc.encode_linear(z).data());
  enc.encode_into(z, h);
  expect_bits_eq(h.data(), enc.encode(z).data());

  Tensor zr(Shape{5, 16});
  enc.reconstruct_into(h, zr);
  expect_bits_eq(zr.data(), enc.reconstruct(h).data());

  // 1-d (single vector) forms go through the same path.
  const Tensor z1 = Tensor::randn(Shape{16}, rng);
  Tensor h1(Shape{64});
  enc.encode_into(z1, h1);
  expect_bits_eq(h1.data(), enc.encode(z1).data());
}

// ---------------------------------------------------------------------------
// Aliasing policy
// ---------------------------------------------------------------------------

TEST(ViewAliasing, ElementwiseKernelsAcceptOutAliasingInput) {
  Rng rng(607);
  const Tensor a0 = Tensor::randn(Shape{6, 6}, rng);
  const Tensor b = Tensor::randn(Shape{6, 6}, rng);

  Tensor a = a0;
  ops::add_into(a, b, a);
  expect_bits_eq(a.data(), ops::add(a0, b).data());

  a = a0;
  ops::scale_into(a, -2.5F, a);
  expect_bits_eq(a.data(), ops::scale(a0, -2.5F).data());

  a = a0;
  ops::relu_into(a, a);
  expect_bits_eq(a.data(), ops::relu(a0).data());

  a = a0;
  ops::softmax_rows_into(a, a);
  expect_bits_eq(a.data(), ops::softmax_rows(a0).data());
}

TEST(ViewAliasing, ReadAfterWriteKernelsRejectOverlap) {
  Tensor a(Shape{4, 4});
  Tensor b(Shape{4, 4});
  EXPECT_THROW(ops::matmul_into(a, b, a), Error);
  EXPECT_THROW(ops::matmul_bt_into(a, b, b), Error);
  EXPECT_THROW(ops::matmul_at_into(a, b, a), Error);
  EXPECT_THROW(ops::transpose_into(a, a), Error);

  const TensorView row_of_a(a.data().data(), {4});
  EXPECT_THROW(ops::sum_rows_into(a, row_of_a), Error);

  const ops::Conv2dSpec spec{1, 1, 3, 1, 1};
  Tensor buf(Shape{160});  // both views live inside one allocation
  float* p = buf.data().data();
  const ConstTensorView img(p, {1, 1, 4, 4});
  const TensorView cols_over_img(p, {16, 9});
  EXPECT_THROW(ops::im2col_into(img, spec, cols_over_img), Error);
}

TEST(ViewAliasing, OverlapDetectionIsExact) {
  Tensor t(Shape{10});
  float* p = t.data().data();
  EXPECT_TRUE(views_overlap(TensorView(p, {10}), TensorView(p + 5, {5})));
  EXPECT_FALSE(views_overlap(TensorView(p, {5}), TensorView(p + 5, {5})));
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

namespace {

/// One full supervised training step on `net` (forward, loss, backward,
/// SGD). Exactly what fl::FedAvg runs per minibatch.
void training_step(nn::Module& net, nn::CrossEntropyLoss& loss, nn::Sgd& opt,
                   const Tensor& x, const std::vector<std::int64_t>& labels) {
  util::tls_workspace().reset();
  opt.zero_grad();
  const Tensor& logits = net.forward(x);
  (void)loss.forward(logits, labels);
  net.backward(loss.backward());
  opt.step();
}

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(parallel::num_threads()) {
    parallel::set_num_threads(n);
  }
  ~ThreadCountGuard() { parallel::set_num_threads(saved_); }

 private:
  int saved_;
};

void expect_cnn_step_allocation_free(int threads) {
  const ThreadCountGuard guard(threads);
  Rng rng(808);
  auto net = nn::make_mini_resnet(1, 10, 4, rng);
  nn::CrossEntropyLoss loss;
  nn::Sgd opt(*net, {0.05F, 0.9F, 0.0F});
  Rng data_rng(809);
  const Tensor x = Tensor::randn(Shape{8, 1, 16, 16}, data_rng);
  std::vector<std::int64_t> labels(8);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(i) % 10;
  }

  // Warmup: grows layer buffers, the arena, and (threaded) the pool.
  training_step(*net, loss, opt, x, labels);
  training_step(*net, loss, opt, x, labels);

  const auto ws_warm = util::tls_workspace().stats();
  const auto spy0 = util::alloc_spy_snapshot();
  for (int i = 0; i < 3; ++i) training_step(*net, loss, opt, x, labels);
  const auto spy1 = util::alloc_spy_snapshot();
  const auto ws_steady = util::tls_workspace().stats();

  EXPECT_EQ(spy1.count - spy0.count, 0U)
      << "steady-state training step allocated "
      << (spy1.bytes - spy0.bytes) << " bytes in "
      << (spy1.count - spy0.count) << " calls";
  EXPECT_EQ(ws_steady.heap_allocations, ws_warm.heap_allocations);
  EXPECT_EQ(ws_steady.high_water_bytes, ws_warm.high_water_bytes);
}

}  // namespace

TEST(ZeroAlloc, CnnTrainingStepSerial) {
  SKIP_IF_SANITIZED();
  expect_cnn_step_allocation_free(1);
}

TEST(ZeroAlloc, CnnTrainingStepFourThreads) {
  SKIP_IF_SANITIZED();
  expect_cnn_step_allocation_free(4);
}

TEST(ZeroAlloc, HdEncodeSteadyState) {
  SKIP_IF_SANITIZED();
  Rng rng(910);
  Rng enc_rng = rng.fork("enc");
  const hdc::RandomProjectionEncoder enc(64, 1024, enc_rng);
  const Tensor z = Tensor::randn(Shape{16, 64}, rng);
  Tensor h(Shape{16, 1024});
  Tensor zr(Shape{16, 64});
  enc.encode_into(z, h);  // warmup (pool spawn, if any)
  enc.reconstruct_into(h, zr);

  const auto spy0 = util::alloc_spy_snapshot();
  for (int i = 0; i < 5; ++i) {
    enc.encode_into(z, h);
    enc.reconstruct_into(h, zr);
  }
  const auto spy1 = util::alloc_spy_snapshot();
  EXPECT_EQ(spy1.count - spy0.count, 0U);
}

TEST(ZeroAlloc, FeatureExtractSteadyState) {
  SKIP_IF_SANITIZED();
  features::FrozenFeatureExtractor::Config cfg;
  cfg.in_channels = 1;
  cfg.image_hw = 16;
  cfg.conv_width = 4;
  cfg.output_dim = 32;
  const features::FrozenFeatureExtractor ext(cfg);
  Rng rng(911);
  const Tensor imgs = Tensor::randn(Shape{8, 1, 16, 16}, rng);
  Tensor out(Shape{8, 32});
  util::tls_workspace().reset();
  ext.extract_into(imgs, out);  // warmup
  ext.extract_into(imgs, out);

  const auto spy0 = util::alloc_spy_snapshot();
  for (int i = 0; i < 3; ++i) ext.extract_into(imgs, out);
  const auto spy1 = util::alloc_spy_snapshot();
  EXPECT_EQ(spy1.count - spy0.count, 0U);
}

}  // namespace
}  // namespace fhdnn
