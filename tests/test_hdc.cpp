// Tests for src/hdc: random-projection encoder, HD classifier, quantizer.
// Includes property-style TEST_P sweeps for the holographic reconstruction
// error (paper Eq. 5) and quantizer bitwidths.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/quantizer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fhdnn {
namespace {

using hdc::HdClassifier;
using hdc::Quantizer;
using hdc::RandomProjectionEncoder;

TEST(Encoder, RowsOnUnitSphere) {
  Rng rng(1);
  RandomProjectionEncoder enc(16, 64, rng);
  const Tensor& phi = enc.projection();
  for (std::int64_t i = 0; i < 64; ++i) {
    double norm = 0.0;
    for (std::int64_t j = 0; j < 16; ++j) norm += phi(i, j) * phi(i, j);
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(Encoder, OutputsAreSigns) {
  Rng rng(2);
  RandomProjectionEncoder enc(8, 128, rng);
  Rng dr(3);
  const Tensor z = Tensor::randn(Shape{4, 8}, dr);
  const Tensor h = enc.encode(z);
  EXPECT_EQ(h.shape(), (Shape{4, 128}));
  for (const float v : h.data()) EXPECT_TRUE(v == 1.0F || v == -1.0F);
}

TEST(Encoder, SignConventionAtZero) {
  Rng rng(4);
  RandomProjectionEncoder enc(4, 16, rng);
  const Tensor z(Shape{4});  // all zeros -> Phi z = 0 -> sign := +1
  const Tensor h = enc.encode(z);
  for (const float v : h.data()) EXPECT_EQ(v, 1.0F);
}

TEST(Encoder, DeterministicSharedSeed) {
  Rng a(5), b(5);
  RandomProjectionEncoder e1(8, 32, a);
  RandomProjectionEncoder e2(8, 32, b);
  EXPECT_EQ(e1.projection().vec(), e2.projection().vec());
}

TEST(Encoder, SingleAndBatchedAgree) {
  Rng rng(6);
  RandomProjectionEncoder enc(8, 32, rng);
  Rng dr(7);
  const Tensor z = Tensor::randn(Shape{1, 8}, dr);
  const Tensor hb = enc.encode(z);
  const Tensor hs = enc.encode(z.reshaped(Shape{8}));
  EXPECT_EQ(hs.shape(), (Shape{32}));
  for (std::int64_t i = 0; i < 32; ++i) EXPECT_EQ(hb(0, i), hs(i));
}

TEST(Encoder, SimilarInputsSimilarCodes) {
  // Random projection + sign preserves angular similarity: closer feature
  // vectors share more code bits.
  Rng rng(8);
  RandomProjectionEncoder enc(32, 2048, rng);
  Rng dr(9);
  Tensor a = Tensor::randn(Shape{32}, dr);
  Tensor near = a;
  for (auto& v : near.data()) v += static_cast<float>(dr.normal(0.0, 0.1));
  const Tensor far = Tensor::randn(Shape{32}, dr);
  auto hamming_agree = [&](const Tensor& x, const Tensor& y) {
    const Tensor hx = enc.encode(x), hy = enc.encode(y);
    int agree = 0;
    for (std::int64_t i = 0; i < 2048; ++i) agree += (hx(i) == hy(i));
    return agree / 2048.0;
  };
  EXPECT_GT(hamming_agree(a, near), hamming_agree(a, far) + 0.2);
  EXPECT_NEAR(hamming_agree(a, far), 0.5, 0.06);  // random vectors ~orthogonal
}

TEST(Encoder, ReconstructUnbiasedOnLinearCodes) {
  // reconstruct(encode_linear(z)) ~ z with error O(1/sqrt(d)).
  Rng rng(10);
  RandomProjectionEncoder enc(16, 8192, rng);
  Rng dr(11);
  const Tensor z = Tensor::randn(Shape{16}, dr);
  const Tensor zr = enc.reconstruct(enc.encode_linear(z));
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_NEAR(zr(i), z(i), 0.35);
}

TEST(Encoder, DimensionMismatchThrows) {
  Rng rng(12);
  RandomProjectionEncoder enc(8, 32, rng);
  EXPECT_THROW(enc.encode(Tensor(Shape{2, 9})), Error);
  EXPECT_THROW(enc.reconstruct(Tensor(Shape{33})), Error);
  EXPECT_THROW(enc.encode(Tensor(Shape{2, 2, 2})), Error);
}

/// Reconstruction error shrinks as d grows (holographic property, Eq. 5).
class ReconstructionSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ReconstructionSweep, ErrorScalesInverseSqrtD) {
  const std::int64_t d = GetParam();
  Rng rng(13);
  RandomProjectionEncoder enc(16, d, rng);
  Rng dr(14);
  double total_mse = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const Tensor z = Tensor::randn(Shape{16}, dr);
    const Tensor zr = enc.reconstruct(enc.encode_linear(z));
    double mse = 0.0;
    for (std::int64_t i = 0; i < 16; ++i) {
      const double e = zr(i) - z(i);
      mse += e * e;
    }
    total_mse += mse / 16.0;
  }
  const double avg = total_mse / trials;
  // Theory: per-coordinate variance ~ (n/d) * ||z||^2/n = ||z||^2/d; with
  // E||z||^2 = 16 this is ~16/d. Allow generous slack.
  EXPECT_LT(avg, 5.0 * 16.0 / static_cast<double>(d) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(HdDims, ReconstructionSweep,
                         ::testing::Values<std::int64_t>(512, 2048, 8192));

// ------------------------------------------------------------ classifier

/// Two well-separated Gaussian clusters encoded into HD space.
struct ClusterData {
  Tensor h_train, h_test;
  std::vector<std::int64_t> y_train, y_test;
};

ClusterData make_clusters(std::int64_t d, std::uint64_t seed) {
  Rng rng(seed);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 4;
  spec.n = 240;
  spec.separation = 1.5;
  spec.rank = 4;
  const auto ds = data::make_isolet_like(spec, rng);
  Rng enc_rng = rng.fork("enc");
  RandomProjectionEncoder enc(32, d, enc_rng);
  ClusterData out;
  const auto split = data::train_test_split(ds, 0.25, rng);
  out.h_train = enc.encode(split.train.x);
  out.h_test = enc.encode(split.test.x);
  out.y_train = split.train.labels;
  out.y_test = split.test.labels;
  return out;
}

TEST(Classifier, OneShotLearnsSeparableClusters) {
  const auto data = make_clusters(2048, 20);
  HdClassifier clf(4, 2048);
  clf.bundle(data.h_train, data.y_train);
  EXPECT_GT(clf.accuracy(data.h_test, data.y_test), 0.9);
}

TEST(Classifier, RefinementImprovesOrMaintains) {
  const auto data = make_clusters(1024, 21);
  HdClassifier clf(4, 1024);
  clf.bundle(data.h_train, data.y_train);
  const double acc0 = clf.accuracy(data.h_test, data.y_test);
  for (int e = 0; e < 3; ++e) clf.refine_epoch(data.h_train, data.y_train);
  EXPECT_GE(clf.accuracy(data.h_test, data.y_test), acc0 - 0.05);
}

TEST(Classifier, RefineReportsUpdates) {
  const auto data = make_clusters(1024, 22);
  HdClassifier clf(4, 1024);
  // Empty model: everything mispredicted or tied, many updates.
  const auto updates = clf.refine_epoch(data.h_train, data.y_train);
  EXPECT_GT(updates, 0);
  // After convergence, updates should drop.
  std::int64_t last = updates;
  for (int e = 0; e < 5; ++e) last = clf.refine_epoch(data.h_train, data.y_train);
  EXPECT_LT(last, updates);
}

TEST(Classifier, SimilaritiesInCosineRange) {
  const auto data = make_clusters(512, 23);
  HdClassifier clf(4, 512);
  clf.bundle(data.h_train, data.y_train);
  const Tensor sim = clf.similarities(data.h_test);
  for (const float v : sim.data()) {
    EXPECT_GE(v, -1.0001F);
    EXPECT_LE(v, 1.0001F);
  }
}

TEST(Classifier, MaskedSimilarityFullMaskMatches) {
  const auto data = make_clusters(512, 24);
  HdClassifier clf(4, 512);
  clf.bundle(data.h_train, data.y_train);
  const std::vector<bool> all(512, true);
  const Tensor s1 = clf.similarities(data.h_test);
  const Tensor s2 = clf.masked_similarities(data.h_test, all);
  for (std::int64_t i = 0; i < s1.numel(); ++i) {
    EXPECT_NEAR(s1.at(i), s2.at(i), 1e-5);
  }
}

TEST(Classifier, PartialDimensionsRetainAccuracy) {
  // The Fig. 5(b) property: large fractions of dimensions can be dropped
  // with modest accuracy loss.
  const auto data = make_clusters(4096, 25);
  HdClassifier clf(4, 4096);
  clf.bundle(data.h_train, data.y_train);
  for (int e = 0; e < 2; ++e) clf.refine_epoch(data.h_train, data.y_train);
  const double full = clf.accuracy(data.h_test, data.y_test);

  Rng rng(26);
  std::vector<bool> mask(4096, false);
  const auto keep = rng.sample_without_replacement(4096, 4096 / 5);  // keep 20%
  for (const auto i : keep) mask[i] = true;
  const Tensor sim = clf.masked_similarities(data.h_test, mask);
  std::size_t correct = 0;
  for (std::int64_t i = 0; i < sim.dim(0); ++i) {
    std::int64_t best = 0;
    for (std::int64_t k = 1; k < 4; ++k) {
      if (sim(i, k) > sim(i, best)) best = k;
    }
    correct += (best == data.y_test[static_cast<std::size_t>(i)]);
  }
  const double partial =
      static_cast<double>(correct) / static_cast<double>(sim.dim(0));
  EXPECT_GT(partial, full - 0.15);
}

TEST(Classifier, ValidatesInputs) {
  HdClassifier clf(3, 64);
  EXPECT_THROW(clf.bundle(Tensor(Shape{2, 32}), {0, 1}), Error);
  EXPECT_THROW(clf.bundle(Tensor(Shape{2, 64}), {0}), Error);
  EXPECT_THROW(clf.bundle(Tensor(Shape{2, 64}), {0, 3}), Error);
  EXPECT_THROW(clf.set_prototypes(Tensor(Shape{2, 64})), Error);
  EXPECT_THROW(HdClassifier(1, 64), Error);
  std::vector<bool> short_mask(32, true);
  EXPECT_THROW(clf.masked_similarities(Tensor(Shape{1, 64}), short_mask), Error);
}

// ------------------------------------------------------------ quantizer

TEST(Quantizer, RoundTripBoundedError) {
  Rng rng(30);
  Quantizer q(16);
  std::vector<float> v(500);
  rng.fill_normal(v, 0.0F, 10.0F);
  const auto qv = q.quantize(v);
  const auto back = q.dequantize(qv);
  float max_abs = 0.0F;
  for (const float x : v) max_abs = std::max(max_abs, std::abs(x));
  const double bound = q.max_roundtrip_error(max_abs) * 1.001;
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - v[i]), bound);
  }
}

TEST(Quantizer, GainSaturatesMaxElement) {
  Quantizer q(8);
  const std::vector<float> v{1.0F, -4.0F, 2.0F};
  const auto qv = q.quantize(v);
  EXPECT_EQ(qv.values[1], -q.max_level());
  EXPECT_NEAR(qv.gain, q.max_level() / 4.0, 1e-9);
}

TEST(Quantizer, AllZeroVector) {
  Quantizer q(8);
  const std::vector<float> v(10, 0.0F);
  const auto qv = q.quantize(v);
  EXPECT_EQ(qv.gain, 1.0);
  const auto back = q.dequantize(qv);
  for (const float x : back) EXPECT_EQ(x, 0.0F);
}

TEST(Quantizer, RejectsNonFiniteValues) {
  // NaN/Inf reaching llround is UB, and an Inf max_abs would silently zero
  // the gain for every other element — both must fail loudly instead.
  Quantizer q(8);
  EXPECT_THROW(
      q.quantize(std::vector<float>{1.0F,
                                    std::numeric_limits<float>::quiet_NaN()}),
      Error);
  EXPECT_THROW(
      q.quantize(std::vector<float>{std::numeric_limits<float>::infinity()}),
      Error);
  EXPECT_THROW(
      q.quantize(std::vector<float>{-std::numeric_limits<float>::infinity(),
                                    2.0F}),
      Error);
}

TEST(Quantizer, RowsIndependentGains) {
  Quantizer q(12);
  Tensor m(Shape{2, 3}, {1, 2, 3, 100, 200, 300});
  const auto rows = q.quantize_rows(m);
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_NEAR(rows[0].gain * 3.0, q.max_level(), 1e-6);
  EXPECT_NEAR(rows[1].gain * 300.0, q.max_level(), 1e-3);
  const Tensor back = q.dequantize_rows(rows, 3);
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(back.at(i), m.at(i), m.at(i) * 0.01 + 0.1);
  }
}

TEST(Quantizer, RejectsBadBitwidth) {
  EXPECT_THROW(Quantizer(1), Error);
  EXPECT_THROW(Quantizer(32), Error);
  EXPECT_NO_THROW(Quantizer(2));
  EXPECT_NO_THROW(Quantizer(31));
}

/// Round-trip error shrinks as bitwidth grows.
class QuantizerSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerSweep, ErrorHalvesPerBit) {
  const int bits = GetParam();
  Rng rng(31);
  std::vector<float> v(200);
  rng.fill_normal(v, 0.0F, 5.0F);
  Quantizer q(bits);
  const auto back = q.dequantize(q.quantize(v));
  double max_err = 0.0;
  float max_abs = 0.0F;
  for (std::size_t i = 0; i < v.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::abs(back[i] - v[i])));
    max_abs = std::max(max_abs, std::abs(v[i]));
  }
  EXPECT_LE(max_err, q.max_roundtrip_error(max_abs) * 1.001);
  // And the theoretical bound itself halves per bit.
  if (bits > 2) {
    EXPECT_LT(q.max_roundtrip_error(1.0),
              Quantizer(bits - 1).max_roundtrip_error(1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Bitwidths, QuantizerSweep,
                         ::testing::Values(4, 8, 12, 16, 24));

}  // namespace
}  // namespace fhdnn
