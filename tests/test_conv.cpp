// Tests for src/tensor/conv.hpp: im2col/col2im, conv2d forward/backward,
// pooling. Convolution correctness is checked against a naive reference and
// gradients against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/conv.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

using ops::Conv2dSpec;

/// Naive direct convolution for cross-checking.
Tensor conv2d_reference(const Tensor& x, const Tensor& w, const Tensor& b,
                        const Conv2dSpec& spec) {
  const std::int64_t n = x.dim(0), h = x.dim(2), ww = x.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(ww);
  Tensor y(Shape{n, spec.out_channels, oh, ow});
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t oc = 0; oc < spec.out_channels; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = b(oc);
          for (std::int64_t ic = 0; ic < spec.in_channels; ++ic) {
            for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
              for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
                const std::int64_t iy = oy * spec.stride + ky - spec.padding;
                const std::int64_t ix = ox * spec.stride + kx - spec.padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
                acc += static_cast<double>(x(in, ic, iy, ix)) *
                       w(oc, ic, ky, kx);
              }
            }
          }
          y(in, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

TEST(Conv2dSpec, OutSize) {
  Conv2dSpec s{1, 1, 3, 1, 1};
  EXPECT_EQ(s.out_size(8), 8);
  s.stride = 2;
  EXPECT_EQ(s.out_size(8), 4);
  EXPECT_EQ(s.out_size(7), 4);
  s.padding = 0;
  EXPECT_EQ(s.out_size(7), 3);
}

TEST(Im2col, KnownSmallCase) {
  // 1x1x2x2 input, kernel 2, stride 1, no padding -> single column row.
  Conv2dSpec spec{1, 1, 2, 1, 0};
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor cols = ops::im2col(x, spec);
  EXPECT_EQ(cols.shape(), (Shape{1, 4}));
  EXPECT_EQ(cols(0, 0), 1.0F);
  EXPECT_EQ(cols(0, 3), 4.0F);
}

TEST(Im2col, PaddingZeros) {
  Conv2dSpec spec{1, 1, 3, 1, 1};
  Tensor x(Shape{1, 1, 1, 1}, {5});
  const Tensor cols = ops::im2col(x, spec);
  EXPECT_EQ(cols.shape(), (Shape{1, 9}));
  // Center element is the value, all others padding zeros.
  EXPECT_EQ(cols(0, 4), 5.0F);
  for (std::int64_t j = 0; j < 9; ++j) {
    if (j != 4) {
      EXPECT_EQ(cols(0, j), 0.0F);
    }
  }
}

TEST(Im2colCol2im, AdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint pair).
  Rng rng(1);
  Conv2dSpec spec{2, 3, 3, 2, 1};
  const Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng);
  const Tensor cols = ops::im2col(x, spec);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = ops::col2im(y, spec, 2, 5, 5);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols.at(i) * y.at(i);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.at(i) * back.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Conv2d, MatchesReferenceStride1) {
  Rng rng(2);
  Conv2dSpec spec{2, 4, 3, 1, 1};
  const Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng);
  const Tensor w = Tensor::randn(Shape{4, 2, 3, 3}, rng);
  const Tensor b = Tensor::randn(Shape{4}, rng);
  const Tensor got = ops::conv2d_forward(x, w, b, spec);
  const Tensor want = conv2d_reference(x, w, b, spec);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got.at(i), want.at(i), 1e-3);
  }
}

TEST(Conv2d, MatchesReferenceStride2NoPad) {
  Rng rng(3);
  Conv2dSpec spec{1, 2, 2, 2, 0};
  const Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  const Tensor w = Tensor::randn(Shape{2, 1, 2, 2}, rng);
  const Tensor b(Shape{2});
  const Tensor got = ops::conv2d_forward(x, w, b, spec);
  const Tensor want = conv2d_reference(x, w, b, spec);
  ASSERT_EQ(got.shape(), (Shape{1, 2, 2, 2}));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got.at(i), want.at(i), 1e-4);
  }
}

TEST(Conv2d, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Conv2dSpec spec{1, 1, 1, 1, 0};
  Rng rng(4);
  const Tensor x = Tensor::randn(Shape{1, 1, 3, 3}, rng);
  const Tensor w = Tensor::ones(Shape{1, 1, 1, 1});
  const Tensor b(Shape{1});
  const Tensor y = ops::conv2d_forward(x, w, b, spec);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y.at(i), x.at(i));
}

/// Central-difference gradient of sum(conv(x) * g) w.r.t. one scalar.
double numeric_grad(const std::function<double()>& loss, float& param,
                    float eps = 1e-2F) {
  const float orig = param;
  param = orig + eps;
  const double lp = loss();
  param = orig - eps;
  const double lm = loss();
  param = orig;
  return (lp - lm) / (2.0 * eps);
}

TEST(Conv2dBackward, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  Conv2dSpec spec{2, 3, 3, 2, 1};
  Tensor x = Tensor::randn(Shape{1, 2, 5, 5}, rng);
  Tensor w = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  Tensor b = Tensor::randn(Shape{3}, rng);
  const Tensor g = Tensor::randn(Shape{1, 3, 3, 3}, rng);

  auto loss = [&]() {
    const Tensor y = ops::conv2d_forward(x, w, b, spec);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) s += y.at(i) * g.at(i);
    return s;
  };
  const auto grads = ops::conv2d_backward(g, x, w, spec);

  // Spot-check a sample of coordinates in each gradient tensor.
  for (const std::int64_t idx : {0L, 7L, 23L}) {
    const double num = numeric_grad(loss, w.at(idx % w.numel()));
    EXPECT_NEAR(grads.grad_weight.at(idx % w.numel()), num, 5e-2)
        << "weight idx " << idx;
  }
  for (const std::int64_t idx : {0L, 1L, 2L}) {
    const double num = numeric_grad(loss, b.at(idx));
    EXPECT_NEAR(grads.grad_bias.at(idx), num, 5e-2) << "bias idx " << idx;
  }
  for (const std::int64_t idx : {0L, 11L, 37L}) {
    const double num = numeric_grad(loss, x.at(idx % x.numel()));
    EXPECT_NEAR(grads.grad_input.at(idx % x.numel()), num, 5e-2)
        << "input idx " << idx;
  }
}

TEST(MaxPool, ForwardAndArgmax) {
  Tensor x(Shape{1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 7});
  const auto res = ops::maxpool2d_forward(x, 2);
  EXPECT_EQ(res.output.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_EQ(res.output(0, 0, 0, 0), 5.0F);
  EXPECT_EQ(res.output(0, 0, 0, 1), 8.0F);
  EXPECT_EQ(res.argmax[0], 1);
  EXPECT_EQ(res.argmax[1], 6);
}

TEST(MaxPool, BackwardScattersToArgmax) {
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 9});
  const auto res = ops::maxpool2d_forward(x, 2);
  Tensor g(Shape{1, 1, 1, 1}, {2.5F});
  const Tensor gx = ops::maxpool2d_backward(g, res.argmax, x.shape());
  EXPECT_EQ(gx(0, 0, 1, 1), 2.5F);
  EXPECT_EQ(gx.sum(), 2.5);
}

TEST(MaxPool, RequiresDivisibleShape) {
  Tensor x(Shape{1, 1, 3, 4});
  EXPECT_THROW(ops::maxpool2d_forward(x, 2), Error);
}

TEST(GlobalAvgPool, ForwardBackward) {
  Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor y = ops::global_avgpool_forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_NEAR(y(0, 0), 2.5F, 1e-6);
  EXPECT_NEAR(y(0, 1), 10.0F, 1e-6);
  Tensor g(Shape{1, 2}, {4.0F, 8.0F});
  const Tensor gx = ops::global_avgpool_backward(g, x.shape());
  EXPECT_NEAR(gx(0, 0, 0, 0), 1.0F, 1e-6);
  EXPECT_NEAR(gx(0, 1, 1, 1), 2.0F, 1e-6);
}

TEST(Conv2d, RejectsBadShapes) {
  Conv2dSpec spec{2, 3, 3, 1, 1};
  Tensor x3(Shape{2, 5, 5});
  Tensor w(Shape{3, 2, 3, 3});
  Tensor b(Shape{3});
  EXPECT_THROW(ops::conv2d_forward(x3, w, b, spec), Error);
  Tensor x(Shape{1, 2, 5, 5});
  Tensor wbad(Shape{3, 1, 3, 3});
  EXPECT_THROW(ops::conv2d_forward(x, wbad, b, spec), Error);
  Tensor bbad(Shape{2});
  EXPECT_THROW(ops::conv2d_forward(x, w, bbad, spec), Error);
}

}  // namespace
}  // namespace fhdnn
