// Integration tests asserting the paper's headline claims end-to-end, at
// test scale: SNR bundling gain (Eq. 4), FHDnn's robustness vs the CNN's
// fragility under unreliable uplinks, and the communication-efficiency gap.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "fl/fedhd.hpp"
#include "hdc/encoder.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace fhdnn {
namespace {

class Integration : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::Warn); }
};

TEST_F(Integration, BundlingSnrGainMatchesEq4) {
  // Aggregate N identical-signal, independent-noise models; empirical SNR
  // of the aggregate should be ~N x per-client SNR (paper Eq. 4).
  Rng rng(1);
  const std::size_t dim = 20000;
  std::vector<float> signal(dim);
  rng.fill_normal(signal, 0.0F, 1.0F);
  const double snr_single = 4.0;  // linear
  const double sigma = std::sqrt(1.0 / snr_single);

  for (const std::size_t n_clients : {4U, 16U}) {
    std::vector<double> agg(dim, 0.0);
    for (std::size_t k = 0; k < n_clients; ++k) {
      for (std::size_t i = 0; i < dim; ++i) {
        agg[i] += signal[i] + rng.normal(0.0, sigma);
      }
    }
    // SNR of aggregate: signal power N^2 P vs noise power N sigma^2.
    double sig_p = 0.0, noise_p = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double s = static_cast<double>(n_clients) * signal[i];
      sig_p += s * s;
      const double n = agg[i] - s;
      noise_p += n * n;
    }
    const double snr_measured = sig_p / noise_p;
    const double expected = snr_single * static_cast<double>(n_clients);
    EXPECT_NEAR(snr_measured / expected, 1.0, 0.25)
        << "N=" << n_clients;
  }
}

TEST_F(Integration, HolographicReconstructionDenoises) {
  // Paper Fig. 4: noise added in HD space washes out after reconstruction,
  // compared to adding the same noise in sample space.
  Rng rng(2);
  const std::int64_t n = 64, d = 8192;
  hdc::RandomProjectionEncoder enc(n, d, rng);
  Tensor x = Tensor::randn(Shape{n}, rng);
  const Tensor h = enc.encode_linear(x);

  // Same per-element noise stddev in both domains.
  const float sigma = static_cast<float>(h.l2_norm() / std::sqrt(d) * 0.5);
  Tensor h_noisy = h;
  for (auto& v : h_noisy.data()) v += static_cast<float>(rng.normal(0, sigma));
  const Tensor x_from_hd = enc.reconstruct(h_noisy);

  Tensor x_noisy = x;
  for (auto& v : x_noisy.data()) v += static_cast<float>(rng.normal(0, sigma));

  const double mse_hd = stats::mse(x.data(), x_from_hd.data());
  const double mse_sample = stats::mse(x.data(), x_noisy.data());
  EXPECT_LT(mse_hd, mse_sample / 5.0)
      << "HD-space noise should average out over d dimensions";
}

struct SmallWorld {
  core::ExperimentData exp;
  core::FederatedParams params;
  core::FhdnnConfig fhdnn_cfg;
  core::CnnParams cnn;

  explicit SmallWorld(core::Distribution dist, std::uint64_t seed)
      : exp(core::make_experiment_data("mnist", 600, 5, dist, seed)),
        params(core::paper_default_params(5, 4, seed)),
        fhdnn_cfg(core::fhdnn_config_for(exp.train, 1024, 128)),
        cnn(core::cnn_params_for("mnist")) {
    params.client_fraction = 0.4;
    params.batch_size = 16;
  }
};

TEST_F(Integration, FhdnnSurvivesPacketLossCnnDegrades) {
  SmallWorld w(core::Distribution::Iid, 3);

  channel::HdUplinkConfig clean;
  const double fhdnn_clean =
      core::run_fhdnn_federated(w.fhdnn_cfg, w.exp.train, w.exp.parts,
                                w.exp.test, w.params, clean)
          .final_accuracy();

  channel::HdUplinkConfig lossy;
  lossy.mode = channel::HdUplinkMode::PacketLoss;
  lossy.loss_rate = 0.2;
  const double fhdnn_lossy =
      core::run_fhdnn_federated(w.fhdnn_cfg, w.exp.train, w.exp.parts,
                                w.exp.test, w.params, lossy)
          .final_accuracy();

  // FHDnn: near-zero accuracy cost at 20% loss (paper Fig. 8).
  EXPECT_GT(fhdnn_lossy, fhdnn_clean - 0.08);
  EXPECT_GT(fhdnn_lossy, 0.8);

  const double cnn_clean =
      core::run_cnn_federated(w.cnn, w.exp.train, w.exp.parts, w.exp.test,
                              w.params, nullptr)
          .final_accuracy();
  const auto chan = channel::make_packet_loss(0.2, 8192);
  const double cnn_lossy =
      core::run_cnn_federated(w.cnn, w.exp.train, w.exp.parts, w.exp.test,
                              w.params, chan.get())
          .final_accuracy();
  // CNN must lose clearly more than FHDnn did.
  EXPECT_LT(cnn_lossy, cnn_clean - 0.1);
}

TEST_F(Integration, BitErrorsKillCnnNotQuantizedFhdnn) {
  SmallWorld w(core::Distribution::Iid, 4);

  channel::HdUplinkConfig bits;
  bits.mode = channel::HdUplinkMode::BitErrors;
  bits.ber = 1e-4;
  const double fhdnn_acc =
      core::run_fhdnn_federated(w.fhdnn_cfg, w.exp.train, w.exp.parts,
                                w.exp.test, w.params, bits)
          .final_accuracy();
  EXPECT_GT(fhdnn_acc, 0.75) << "AGC quantizer should bound bit-error damage";

  const auto chan = channel::make_bit_error(1e-4);
  const double cnn_acc =
      core::run_cnn_federated(w.cnn, w.exp.train, w.exp.parts, w.exp.test,
                              w.params, chan.get())
          .final_accuracy();
  EXPECT_LT(cnn_acc, 0.4)
      << "IEEE-754 weights should collapse under bit errors";
  EXPECT_LT(cnn_acc, fhdnn_acc);
}

TEST_F(Integration, QuantizerAblationHelps) {
  SmallWorld w(core::Distribution::Iid, 5);
  channel::HdUplinkConfig with_q;
  with_q.mode = channel::HdUplinkMode::BitErrors;
  with_q.ber = 3e-4;
  auto without_q = with_q;
  without_q.use_quantizer = false;

  const double acc_q =
      core::run_fhdnn_federated(w.fhdnn_cfg, w.exp.train, w.exp.parts,
                                w.exp.test, w.params, with_q)
          .final_accuracy();
  const double acc_raw =
      core::run_fhdnn_federated(w.fhdnn_cfg, w.exp.train, w.exp.parts,
                                w.exp.test, w.params, without_q)
          .final_accuracy();
  EXPECT_GE(acc_q, acc_raw - 0.02);
}

TEST_F(Integration, FhdnnConvergesInFewerRoundsThanCnn) {
  SmallWorld w(core::Distribution::Iid, 6);
  channel::HdUplinkConfig clean;
  const auto fhdnn_hist = core::run_fhdnn_federated(
      w.fhdnn_cfg, w.exp.train, w.exp.parts, w.exp.test, w.params, clean);
  const auto cnn_hist = core::run_cnn_federated(
      w.cnn, w.exp.train, w.exp.parts, w.exp.test, w.params, nullptr);
  const double target = 0.7;
  const auto r_fhdnn = fhdnn_hist.rounds_to_accuracy(target);
  const auto r_cnn = cnn_hist.rounds_to_accuracy(target);
  ASSERT_TRUE(r_fhdnn.has_value());
  if (r_cnn.has_value()) {
    EXPECT_LE(*r_fhdnn, *r_cnn);
  }  // else: CNN never reached the target within budget — also consistent.
}

TEST_F(Integration, NonIidStillWorksForFhdnn) {
  SmallWorld w(core::Distribution::NonIid, 7);
  channel::HdUplinkConfig clean;
  const double acc =
      core::run_fhdnn_federated(w.fhdnn_cfg, w.exp.train, w.exp.parts,
                                w.exp.test, w.params, clean)
          .final_accuracy();
  EXPECT_GT(acc, 0.75);
}

}  // namespace
}  // namespace fhdnn
