// Tests for src/perf: MAC counting and the calibrated device cost model.
// The calibrated profiles must regenerate the paper's Table 1 numbers.
#include <gtest/gtest.h>

#include "perf/device_model.hpp"
#include "perf/model_macs.hpp"
#include "util/error.hpp"

namespace fhdnn {
namespace {

using namespace fhdnn::perf;

TEST(ModelMacs, Conv2dFormula) {
  // oc * ic * k^2 MACs per output pixel.
  EXPECT_EQ(conv2d_macs(3, 16, 3, 32, 32), 32ULL * 32 * 16 * 3 * 9);
  EXPECT_EQ(conv2d_macs(1, 1, 1, 1, 1), 1ULL);
  EXPECT_THROW(conv2d_macs(0, 16, 3, 32, 32), Error);
}

TEST(ModelMacs, LinearFormula) {
  EXPECT_EQ(linear_macs(128, 10), 1280ULL);
  EXPECT_THROW(linear_macs(0, 10), Error);
}

TEST(ModelMacs, Cnn2Breakdown) {
  // conv1: 16*1*9*28^2, conv2: 32*16*9*14^2, fc1: 32*7*7*128, fc2: 128*10.
  const std::uint64_t expected = 16ULL * 1 * 9 * 28 * 28 +
                                 32ULL * 16 * 9 * 14 * 14 +
                                 32ULL * 7 * 7 * 128 + 128ULL * 10;
  EXPECT_EQ(cnn2_fwd_macs(1, 28, 10), expected);
  EXPECT_THROW(cnn2_fwd_macs(1, 30, 10), Error);
}

TEST(ModelMacs, MiniResNetScalesWithWidth) {
  const auto w8 = mini_resnet_fwd_macs(3, 32, 10, 8);
  const auto w16 = mini_resnet_fwd_macs(3, 32, 10, 16);
  EXPECT_GT(w8, 0ULL);
  // Conv MACs are quadratic in width.
  EXPECT_GT(w16, 3 * w8);
  EXPECT_LT(w16, 5 * w8);
}

TEST(ClientWorkload, HdOpsFormula) {
  EXPECT_EQ(ClientWorkload::hd_ops(512, 10'000, 10),
            512ULL * 10'000 + 10ULL * 10'000);
  const auto ref = ClientWorkload::paper_reference();
  EXPECT_EQ(ref.samples, 500ULL);
  EXPECT_EQ(ref.epochs, 2ULL);
  EXPECT_EQ(ref.hd_ops_per_sample, ClientWorkload::hd_ops(512, 10'000, 10));
}

TEST(DeviceModel, ReproducesPaperTable1) {
  const auto w = ClientWorkload::paper_reference();
  struct Expected {
    DeviceProfile dev;
    double t_fhdnn, t_cnn, e_fhdnn, e_cnn;
  };
  const Expected cases[] = {
      {DeviceProfile::raspberry_pi_3b(), 858.72, 1328.04, 4418.4, 6742.8},
      {DeviceProfile::jetson(), 15.96, 90.55, 96.17, 497.572},
  };
  for (const auto& c : cases) {
    const auto cnn = cnn_local_training(c.dev, w);
    const auto fhd = fhdnn_local_training(c.dev, w);
    EXPECT_NEAR(cnn.seconds, c.t_cnn, c.t_cnn * 0.002) << c.dev.name;
    EXPECT_NEAR(fhd.seconds, c.t_fhdnn, c.t_fhdnn * 0.002) << c.dev.name;
    EXPECT_NEAR(cnn.energy_joules, c.e_cnn, c.e_cnn * 0.002) << c.dev.name;
    EXPECT_NEAR(fhd.energy_joules, c.e_fhdnn, c.e_fhdnn * 0.002) << c.dev.name;
  }
}

TEST(DeviceModel, SpeedupRatiosMatchPaperBand) {
  // Paper: 1.5-6x, largest on the GPU device.
  const auto w = ClientWorkload::paper_reference();
  const auto pi = DeviceProfile::raspberry_pi_3b();
  const auto jet = DeviceProfile::jetson();
  const double pi_ratio =
      cnn_local_training(pi, w).seconds / fhdnn_local_training(pi, w).seconds;
  const double jet_ratio = cnn_local_training(jet, w).seconds /
                           fhdnn_local_training(jet, w).seconds;
  EXPECT_GT(pi_ratio, 1.4);
  EXPECT_LT(pi_ratio, 1.7);
  EXPECT_GT(jet_ratio, 5.0);
  EXPECT_LT(jet_ratio, 6.5);
  EXPECT_GT(jet_ratio, pi_ratio);
}

TEST(DeviceModel, CostsLinearInWorkload) {
  const auto dev = DeviceProfile::jetson();
  auto w = ClientWorkload::paper_reference();
  const auto base = cnn_local_training(dev, w);
  const auto base_f = fhdnn_local_training(dev, w);
  w.samples *= 3;
  EXPECT_NEAR(cnn_local_training(dev, w).seconds, 3.0 * base.seconds, 1e-6);
  EXPECT_NEAR(fhdnn_local_training(dev, w).seconds, 3.0 * base_f.seconds,
              1e-6);
  w.samples /= 3;
  w.epochs *= 2;
  EXPECT_NEAR(cnn_local_training(dev, w).seconds, 2.0 * base.seconds, 1e-6);
}

TEST(DeviceModel, FhdnnAlwaysCheaperAtReferenceWorkload) {
  const auto w = ClientWorkload::paper_reference();
  for (const auto& dev :
       {DeviceProfile::raspberry_pi_3b(), DeviceProfile::jetson()}) {
    EXPECT_LT(fhdnn_local_training(dev, w).seconds,
              cnn_local_training(dev, w).seconds);
    EXPECT_LT(fhdnn_local_training(dev, w).energy_joules,
              cnn_local_training(dev, w).energy_joules);
  }
}

TEST(DeviceModel, ValidatesRates) {
  DeviceProfile broken;
  broken.name = "broken";
  const auto w = ClientWorkload::paper_reference();
  EXPECT_THROW(cnn_local_training(broken, w), Error);
  EXPECT_THROW(fhdnn_local_training(broken, w), Error);
}

}  // namespace
}  // namespace fhdnn
