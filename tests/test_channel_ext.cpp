// Tests for the extended channels (Gilbert-Elliott burst loss, Rayleigh
// fading), the binary-sign HD uplink, and file I/O for tensors/NN states.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "channel/fading.hpp"
#include "channel/hd_uplink.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "tensor/io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fhdnn {
namespace {

using namespace fhdnn::channel;

// ------------------------------------------------------- Gilbert-Elliott

GilbertElliottChannel::Params ge_params() {
  GilbertElliottChannel::Params p;
  p.p_good_to_bad = 0.05;
  p.p_bad_to_good = 0.2;
  p.loss_good = 0.001;
  p.loss_bad = 0.7;
  p.packet_bits = 32 * 32;  // 32 floats per packet
  return p;
}

TEST(GilbertElliott, AverageLossMatchesStationary) {
  const GilbertElliottChannel ch(ge_params());
  // pi_bad = 0.05/0.25 = 0.2 -> avg = 0.8*0.001 + 0.2*0.7 = 0.1408
  EXPECT_NEAR(ch.average_loss_rate(), 0.1408, 1e-6);

  Rng rng(1);
  std::size_t lost = 0, total = 0;
  for (int t = 0; t < 30; ++t) {
    std::vector<float> payload(32 * 500, 1.0F);
    const auto stats = ch.apply(payload, rng);
    lost += stats.packets_lost;
    total += stats.packets_total;
  }
  EXPECT_NEAR(static_cast<double>(lost) / static_cast<double>(total),
              ch.average_loss_rate(), 0.02);
}

TEST(GilbertElliott, LossesAreBursty) {
  // With the same average loss, the burst channel's lost packets should be
  // far more temporally clustered than i.i.d. loss: compare the number of
  // loss "runs" (maximal consecutive lost stretches) — fewer runs for the
  // same number of losses = burstier.
  const GilbertElliottChannel ge(ge_params());
  const PacketLossChannel iid(ge.average_loss_rate(), 32 * 32);
  auto runs_per_loss = [](const std::vector<bool>& lost) {
    std::size_t runs = 0, losses = 0;
    for (std::size_t i = 0; i < lost.size(); ++i) {
      losses += lost[i];
      if (lost[i] && (i == 0 || !lost[i - 1])) ++runs;
    }
    return losses ? static_cast<double>(runs) / static_cast<double>(losses)
                  : 1.0;
  };
  auto measure = [&](const Channel& ch, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<float> payload(32 * 4000, 1.0F);
    ch.apply(payload, rng);
    std::vector<bool> lost(4000);
    for (std::size_t p = 0; p < 4000; ++p) lost[p] = payload[32 * p] == 0.0F;
    return runs_per_loss(lost);
  };
  // i.i.d.: runs/losses ~ (1-p) ~ 0.86; bursty: much lower.
  EXPECT_LT(measure(ge, 2), measure(iid, 2) - 0.2);
}

TEST(GilbertElliott, Validation) {
  auto p = ge_params();
  p.p_good_to_bad = 0.0;
  EXPECT_THROW(GilbertElliottChannel{p}, Error);
  p = ge_params();
  p.loss_bad = 1.5;
  EXPECT_THROW(GilbertElliottChannel{p}, Error);
  p = ge_params();
  p.packet_bits = 8;
  EXPECT_THROW(GilbertElliottChannel{p}, Error);
}

// --------------------------------------------------------------- Rayleigh

TEST(Rayleigh, AverageSnrInRightRegime) {
  // Equalized Rayleigh noise is heavier-tailed than AWGN; with the deep-
  // fade clamp the average realized SNR lands below the configured average
  // but within a few dB.
  const RayleighFadingChannel ch(15.0, 64);
  Rng rng(3);
  std::vector<float> payload(64 * 600, 1.0F);
  const auto orig = payload;
  ch.apply(payload, rng);
  double noise = 0.0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const double d = payload[i] - orig[i];
    noise += d * d;
  }
  const double snr_db =
      10.0 * std::log10(static_cast<double>(payload.size()) / noise);
  EXPECT_LT(snr_db, 15.0);
  EXPECT_GT(snr_db, 2.0);
}

TEST(Rayleigh, BlockStructure) {
  // Noise variance is constant within a block but varies across blocks:
  // per-block noise power should have a much larger spread than AWGN's.
  const std::size_t block = 128;
  auto block_power_cv = [&](const Channel& ch, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<float> payload(block * 200, 1.0F);
    const auto orig = payload;
    ch.apply(payload, rng);
    stats::Accumulator acc;
    for (std::size_t b = 0; b < 200; ++b) {
      double p = 0.0;
      for (std::size_t i = 0; i < block; ++i) {
        const double d = payload[b * block + i] - orig[b * block + i];
        p += d * d;
      }
      acc.add(p / block);
    }
    return acc.stddev() / acc.mean();  // coefficient of variation
  };
  const RayleighFadingChannel ray(10.0, block);
  const AwgnChannel awgn(10.0);
  EXPECT_GT(block_power_cv(ray, 4), 3.0 * block_power_cv(awgn, 4));
}

TEST(Rayleigh, SilentPayloadUntouched) {
  const RayleighFadingChannel ch(10.0);
  Rng rng(5);
  std::vector<float> payload(64, 0.0F);
  ch.apply(payload, rng);
  for (const float v : payload) EXPECT_EQ(v, 0.0F);
}

// ----------------------------------------------------- HD uplink (extended)

Tensor protos(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(Shape{4, 512}, rng, 3.0F);
}

TEST(HdUplinkExt, BurstLossZeroFills) {
  Tensor m = protos(10);
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::BurstLoss;
  cfg.burst_loss_bad = 0.9;
  cfg.packet_bits = 1024;
  Rng rng(11);
  const auto stats = transmit_hd_model(m, cfg, rng);
  EXPECT_GT(stats.packets_total, 0U);
  std::size_t zeros = 0;
  for (const float v : m.vec()) zeros += (v == 0.0F);
  EXPECT_EQ(zeros, stats.packets_lost * (1024 / 32));
}

TEST(HdUplinkExt, RayleighPerturbs) {
  Tensor m = protos(12);
  const auto orig = m.vec();
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::Rayleigh;
  cfg.snr_db = 10.0;
  Rng rng(13);
  transmit_hd_model(m, cfg, rng);
  EXPECT_NE(m.vec(), orig);
}

TEST(HdUplinkExt, BinaryTransportPerfect) {
  Tensor m = protos(14);
  HdUplinkConfig cfg;
  cfg.binary_transport = true;
  Rng rng(15);
  const auto stats = transmit_hd_model(m, cfg, rng);
  EXPECT_EQ(stats.bits_on_air, 4U * 512U);  // 1 bit per scalar
  for (const float v : m.vec()) EXPECT_TRUE(v == 1.0F || v == -1.0F);
}

TEST(HdUplinkExt, BinaryTransportBitErrorsBounded) {
  Tensor m = protos(16);
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::BitErrors;
  cfg.binary_transport = true;
  cfg.ber = 0.01;
  Rng rng(17);
  const auto stats = transmit_hd_model(m, cfg, rng);
  EXPECT_GT(stats.bit_flips, 0U);
  for (const float v : m.vec()) EXPECT_TRUE(v == 1.0F || v == -1.0F);
}

TEST(HdUplinkExt, DescribeNewModes) {
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::BurstLoss;
  EXPECT_NE(describe(cfg).find("burst"), std::string::npos);
  cfg.mode = HdUplinkMode::Rayleigh;
  EXPECT_NE(describe(cfg).find("rayleigh"), std::string::npos);
  cfg.mode = HdUplinkMode::BitErrors;
  cfg.binary_transport = true;
  EXPECT_NE(describe(cfg).find("binary"), std::string::npos);
}

// --------------------------------------------------------------- file I/O

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TensorIo, RoundTrip) {
  Rng rng(20);
  const Tensor t = Tensor::randn(Shape{3, 4, 5}, rng);
  const auto path = temp_path("roundtrip.fhdt");
  io::save_tensor(t, path);
  const Tensor back = io::load_tensor(path);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(back.vec(), t.vec());
  std::remove(path.c_str());
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(io::load_tensor("/nonexistent/nope.fhdt"), Error);
}

TEST(TensorIo, CorruptMagicThrows) {
  const auto path = temp_path("corrupt.fhdt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATENSOR", f);
    std::fclose(f);
  }
  EXPECT_THROW(io::load_tensor(path), Error);
  std::remove(path.c_str());
}

TEST(TensorIo, TruncatedDataThrows) {
  Rng rng(21);
  const Tensor t = Tensor::randn(Shape{100}, rng);
  const auto path = temp_path("truncated.fhdt");
  io::save_tensor(t, path);
  // Chop the file short.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(fileno(f), 40), 0);
    std::fclose(f);
  }
  EXPECT_THROW(io::load_tensor(path), Error);
  std::remove(path.c_str());
}

TEST(ModelCheckpoint, SaveLoadRestoresBehaviour) {
  Rng rng(22);
  auto net = nn::make_cnn2(1, 8, 4, rng);
  const auto path = temp_path("cnn2.fhdt");
  nn::save_state(*net, path);

  Rng rng2(99);
  auto other = nn::make_cnn2(1, 8, 4, rng2);
  nn::load_state(*other, path);
  net->set_training(false);
  other->set_training(false);
  const Tensor x = Tensor::rand(Shape{2, 1, 8, 8}, rng);
  const Tensor y1 = net->forward(x);
  const Tensor y2 = other->forward(x);
  EXPECT_EQ(y1.vec(), y2.vec());
  std::remove(path.c_str());
}

TEST(ModelCheckpoint, ArchitectureMismatchThrows) {
  Rng rng(23);
  auto net = nn::make_cnn2(1, 8, 4, rng);
  const auto path = temp_path("mismatch.fhdt");
  nn::save_state(*net, path);
  auto bigger = nn::make_cnn2(1, 8, 6, rng);
  EXPECT_THROW(nn::load_state(*bigger, path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fhdnn
