// Tests for src/features: the frozen SimCLR stand-in extractor.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "features/extractor.hpp"
#include "hdc/classifier.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

using features::FrozenFeatureExtractor;

FrozenFeatureExtractor::Config mnist_config() {
  FrozenFeatureExtractor::Config c;
  c.in_channels = 1;
  c.image_hw = 28;
  c.output_dim = 128;
  return c;
}

TEST(Extractor, OutputShape) {
  FrozenFeatureExtractor ext(mnist_config());
  Rng rng(1);
  const Tensor imgs = Tensor::rand(Shape{5, 1, 28, 28}, rng);
  const Tensor z = ext.extract(imgs);
  EXPECT_EQ(z.shape(), (Shape{5, 128}));
}

TEST(Extractor, DeterministicAcrossInstances) {
  // Two parties constructing the extractor from the same config get
  // identical features — the "shared pretrained model" property.
  FrozenFeatureExtractor a(mnist_config());
  FrozenFeatureExtractor b(mnist_config());
  Rng rng(2);
  const Tensor imgs = Tensor::rand(Shape{3, 1, 28, 28}, rng);
  EXPECT_EQ(a.extract(imgs).vec(), b.extract(imgs).vec());
}

TEST(Extractor, SeedChangesFeatures) {
  auto cfg2 = mnist_config();
  cfg2.seed = 999;
  FrozenFeatureExtractor a(mnist_config());
  FrozenFeatureExtractor b(cfg2);
  Rng rng(3);
  const Tensor imgs = Tensor::rand(Shape{2, 1, 28, 28}, rng);
  EXPECT_NE(a.extract(imgs).vec(), b.extract(imgs).vec());
}

TEST(Extractor, ExtractIsStateless) {
  FrozenFeatureExtractor ext(mnist_config());
  Rng rng(4);
  const Tensor imgs = Tensor::rand(Shape{2, 1, 28, 28}, rng);
  const auto z1 = ext.extract(imgs).vec();
  const auto z2 = ext.extract(imgs).vec();
  EXPECT_EQ(z1, z2);
}

TEST(Extractor, BatchSplitInvariant) {
  // Internal batching must not change results: extracting 70 images at once
  // equals extracting them in two chunks (covers the kExtractBatch seam).
  FrozenFeatureExtractor ext(mnist_config());
  Rng rng(5);
  const Tensor imgs = Tensor::rand(Shape{70, 1, 28, 28}, rng);
  const Tensor all = ext.extract(imgs);
  Tensor first(Shape{64, 1, 28, 28});
  std::copy_n(imgs.data().begin(), first.numel(), first.data().begin());
  const Tensor zf = ext.extract(first);
  for (std::int64_t i = 0; i < zf.numel(); ++i) {
    EXPECT_EQ(zf.at(i), all.at(i));
  }
}

TEST(Extractor, StandardizationNormalizes) {
  FrozenFeatureExtractor ext(mnist_config());
  Rng rng(6);
  const auto ds = data::synthetic_mnist(300, rng);
  ext.fit_standardization(ds.x);
  EXPECT_TRUE(ext.standardized());
  const Tensor z = ext.extract(ds.x);
  // Per-dimension mean ~0 and variance ~1 on the calibration set itself.
  for (std::int64_t j = 0; j < 16; ++j) {  // spot-check some dims
    double sum = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < z.dim(0); ++i) {
      sum += z(i, j);
      sq += static_cast<double>(z(i, j)) * z(i, j);
    }
    const double mean = sum / z.dim(0);
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(sq / z.dim(0) - mean * mean, 1.0, 0.2);
  }
  EXPECT_THROW(ext.fit_standardization(ds.x), Error);  // fit-once contract
}

TEST(Extractor, FeaturesAreClassInformative) {
  // A nearest-class-mean readout on frozen features must far exceed chance;
  // this is the property FHDnn's whole premise rests on.
  FrozenFeatureExtractor ext(mnist_config());
  Rng rng(7);
  auto full = data::synthetic_mnist(400, rng);
  ext.fit_standardization(full.x);
  auto split = data::train_test_split(full, 0.25, rng);
  const Tensor ztr = ext.extract(split.train.x);
  const Tensor zte = ext.extract(split.test.x);
  hdc::HdClassifier ncm(10, 128);
  ncm.bundle(ztr, split.train.labels);
  EXPECT_GT(ncm.accuracy(zte, split.test.labels), 0.8);
}

TEST(Extractor, RejectsWrongGeometry) {
  FrozenFeatureExtractor ext(mnist_config());
  EXPECT_THROW(ext.extract(Tensor(Shape{1, 3, 28, 28})), Error);
  EXPECT_THROW(ext.extract(Tensor(Shape{1, 1, 32, 32})), Error);
  EXPECT_THROW(ext.extract(Tensor(Shape{28, 28})), Error);
}

TEST(Extractor, MacsPositiveAndScaleWithImage) {
  FrozenFeatureExtractor small(mnist_config());
  auto big_cfg = mnist_config();
  big_cfg.image_hw = 32;
  big_cfg.in_channels = 3;
  FrozenFeatureExtractor big(big_cfg);
  EXPECT_GT(small.macs_per_image(), 0U);
  EXPECT_GT(big.macs_per_image(), small.macs_per_image());
}

TEST(Extractor, ConfigValidation) {
  auto cfg = mnist_config();
  cfg.image_hw = 4;
  EXPECT_THROW(FrozenFeatureExtractor{cfg}, Error);
  cfg = mnist_config();
  cfg.output_dim = 0;
  EXPECT_THROW(FrozenFeatureExtractor{cfg}, Error);
}

}  // namespace
}  // namespace fhdnn
