// Tests for the crash-consistent snapshot subsystem (util/snapshot):
// writer/reader round-trips for every typed field, eager whole-file
// validation (magic / version / CRC / truncation / trailing bytes), the
// atomic-commit + previous-generation fallback protocol, and the
// Snapshotable round-trips of the engine components (EventQueue,
// TrainingHistory, ExactSumVector, PackedVoteAccumulator, RngState).
#include "util/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fl/events.hpp"
#include "fl/hierarchy.hpp"
#include "fl/history.hpp"
#include "hdc/ops.hpp"
#include "hdc/packed.hpp"
#include "tensor/tensor.hpp"
#include "util/exactsum.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "fhdnn_snap_" + name;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  return {std::istreambuf_iterator<char>(is), {}};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

void remove_generations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());
}

/// One chunk with every typed field, committed to a temp file.
std::string write_sample(const std::string& name) {
  const std::string path = tmp_path(name);
  remove_generations(path);
  util::SnapshotWriter w;
  w.begin_chunk("TEST");
  w.write_u8(7);
  w.write_u32(0xDEADBEEFU);
  w.write_u64(1ULL << 60);
  w.write_i64(-42);
  w.write_f32(1.5F);
  w.write_f64(-0.1);
  w.write_str("hello snapshot");
  w.write_floats({1.0F, -2.0F, 3.25F});
  w.write_doubles({0.5, -0.5});
  w.write_u64s({1, 2, 3});
  w.write_sizes({9, 8});
  w.write_flags({1, 0, 1});
  w.end_chunk();
  w.commit(path);
  return path;
}

// ------------------------------------------------------------ round-trip

TEST(Snapshot, WriterReaderRoundTripsEveryType) {
  const std::string path = write_sample("roundtrip.snap");
  auto r = util::SnapshotReader::from_file(path);
  EXPECT_EQ(r.version(), util::kSnapshotVersion);
  EXPECT_EQ(r.peek_tag(), "TEST");
  r.enter_chunk("TEST");
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFU);
  EXPECT_EQ(r.read_u64(), 1ULL << 60);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f32(), 1.5F);
  EXPECT_EQ(r.read_f64(), -0.1);
  EXPECT_EQ(r.read_str(), "hello snapshot");
  EXPECT_EQ(r.read_floats(), (std::vector<float>{1.0F, -2.0F, 3.25F}));
  EXPECT_EQ(r.read_doubles(), (std::vector<double>{0.5, -0.5}));
  EXPECT_EQ(r.read_u64s(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.read_sizes(), (std::vector<std::size_t>{9, 8}));
  EXPECT_EQ(r.read_flags(), (std::vector<char>{1, 0, 1}));
  r.leave_chunk();
  EXPECT_EQ(r.peek_tag(), "END ");
}

TEST(Snapshot, CommitIsDeterministic) {
  const auto a = slurp(write_sample("det_a.snap"));
  const auto b = slurp(write_sample("det_b.snap"));
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------ eager validation

TEST(Snapshot, RejectsBadMagic) {
  const std::string path = write_sample("magic.snap");
  auto bytes = slurp(path);
  bytes[0] ^= 0xFFU;
  spit(path, bytes);
  try {
    (void)util::SnapshotReader::from_file(path);
    FAIL() << "bad magic accepted";
  } catch (const util::SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::SnapshotErrorKind::kFormat);
  }
}

TEST(Snapshot, RejectsUnknownVersion) {
  const std::string path = write_sample("version.snap");
  auto bytes = slurp(path);
  bytes[8] = 0xEE;  // version u32 follows the 8-byte magic
  spit(path, bytes);
  try {
    (void)util::SnapshotReader::from_file(path);
    FAIL() << "future version accepted";
  } catch (const util::SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::SnapshotErrorKind::kVersion);
  }
}

TEST(Snapshot, BitFlipAnywhereInPayloadFailsCrc) {
  const std::string path = write_sample("crc.snap");
  const auto clean = slurp(path);
  // Flip one bit in the middle of the TEST chunk payload (past the 12-byte
  // header and 16-byte chunk frame).
  for (const std::size_t at : {std::size_t{30}, clean.size() / 2}) {
    auto bytes = clean;
    bytes[at] ^= 0x01U;
    spit(path, bytes);
    try {
      (void)util::SnapshotReader::from_file(path);
      FAIL() << "bit flip at " << at << " accepted";
    } catch (const util::SnapshotError& e) {
      EXPECT_EQ(e.kind(), util::SnapshotErrorKind::kCrc) << "at " << at;
      EXPECT_GT(e.byte_offset(), 0U);
    }
  }
}

TEST(Snapshot, TruncationAtAnyLengthIsRejected) {
  const std::string path = write_sample("trunc.snap");
  const auto clean = slurp(path);
  // Every proper prefix must be rejected (torn write without rename).
  for (std::size_t len = 0; len < clean.size(); len += 7) {
    spit(path, {clean.begin(), clean.begin() + static_cast<long>(len)});
    EXPECT_THROW((void)util::SnapshotReader::from_file(path),
                 util::SnapshotError)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(Snapshot, TrailingBytesAreRejected) {
  const std::string path = write_sample("trailing.snap");
  auto bytes = slurp(path);
  bytes.push_back(0);
  spit(path, bytes);
  try {
    (void)util::SnapshotReader::from_file(path);
    FAIL() << "trailing byte accepted";
  } catch (const util::SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::SnapshotErrorKind::kFormat);
  }
}

TEST(Snapshot, SchemaMismatchesAreTypedStateErrors) {
  const std::string path = write_sample("schema.snap");
  {
    auto r = util::SnapshotReader::from_file(path);
    try {
      r.enter_chunk("NOPE");
      FAIL() << "wrong tag accepted";
    } catch (const util::SnapshotError& e) {
      EXPECT_EQ(e.kind(), util::SnapshotErrorKind::kState);
    }
  }
  {
    auto r = util::SnapshotReader::from_file(path);
    r.enter_chunk("TEST");
    (void)r.read_u8();
    EXPECT_THROW(r.leave_chunk(), util::SnapshotError);  // unconsumed payload
  }
}

// ------------------------------------------- durability + fallback

TEST(Snapshot, CommitRotatesThePreviousGeneration) {
  const std::string path = tmp_path("rotate.snap");
  remove_generations(path);
  {
    util::SnapshotWriter w;
    w.begin_chunk("GEN ");
    w.write_u32(1);
    w.end_chunk();
    w.commit(path);
  }
  {
    util::SnapshotWriter w;
    w.begin_chunk("GEN ");
    w.write_u32(2);
    w.end_chunk();
    w.commit(path);
  }
  auto cur = util::SnapshotReader::from_file(path);
  cur.enter_chunk("GEN ");
  EXPECT_EQ(cur.read_u32(), 2U);
  auto prev = util::SnapshotReader::from_file(path + ".prev");
  prev.enter_chunk("GEN ");
  EXPECT_EQ(prev.read_u32(), 1U);
}

TEST(Snapshot, FallbackReadsPreviousGenerationWhenPrimaryIsTorn) {
  const std::string path = tmp_path("fallback.snap");
  remove_generations(path);
  for (const std::uint32_t gen : {1U, 2U}) {
    util::SnapshotWriter w;
    w.begin_chunk("GEN ");
    w.write_u32(gen);
    w.end_chunk();
    w.commit(path);
  }
  // Tear the primary: truncate it mid-file.
  const auto bytes = slurp(path);
  spit(path, {bytes.begin(), bytes.begin() + 9});
  auto r = util::SnapshotReader::open_with_fallback(path);
  EXPECT_EQ(r.source_path(), path + ".prev");
  r.enter_chunk("GEN ");
  EXPECT_EQ(r.read_u32(), 1U);
  // Both generations gone: a typed error naming the path.
  remove_generations(path);
  EXPECT_THROW((void)util::SnapshotReader::open_with_fallback(path),
               util::SnapshotError);
}

TEST(Snapshot, AtomicWriteTextReplacesWholeFile) {
  const std::string path = tmp_path("artifact.json");
  remove_generations(path);
  util::atomic_write_text(path, "{\"a\": 1}\n");
  util::atomic_write_text(path, "{\"b\": 2}\n");
  const auto bytes = slurp(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "{\"b\": 2}\n");
}

// ------------------------------------------- component round-trips

template <typename T>
void roundtrip(const T& src, T& dst) {
  util::SnapshotWriter w;
  w.begin_chunk("OBJ ");
  src.save(w);
  w.end_chunk();
  const std::string path = tmp_path("component.snap");
  remove_generations(path);
  w.commit(path);
  auto r = util::SnapshotReader::from_file(path);
  r.enter_chunk("OBJ ");
  dst.load(r);
  r.leave_chunk();
}

TEST(SnapshotComponents, RngStateResumesTheStreamExactly) {
  Rng a(1234);
  (void)a.normal();  // populate the cached-normal slot
  for (int i = 0; i < 17; ++i) (void)a.next_u64();
  Rng b(1);
  b.set_state(a.state());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_EQ(a.normal(), b.normal());  // exact doubles, cache included
  }
}

TEST(SnapshotComponents, EventQueueRestoresPendingEventsAndClock) {
  fl::EventQueue q;
  Rng rng(5);
  for (std::uint64_t i = 0; i < 40; ++i) {
    fl::Event e;
    e.time = rng.uniform(0.0, 100.0);
    e.client = static_cast<std::size_t>(rng.next_u64() % 16);
    e.seq = i;
    e.kind = static_cast<fl::EventKind>(i % 3);
    e.slot = static_cast<std::size_t>(i % 5);
    q.push(e);
  }
  for (int i = 0; i < 10; ++i) (void)q.pop();

  fl::EventQueue restored;
  roundtrip(q, restored);
  EXPECT_EQ(restored.size(), q.size());
  EXPECT_EQ(restored.now(), q.now());
  EXPECT_EQ(restored.processed(), q.processed());
  while (!q.empty()) {
    const auto a = q.pop();
    const auto b = restored.pop();
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.slot, b.slot);
  }
  EXPECT_TRUE(restored.empty());
}

TEST(SnapshotComponents, EventQueueSnapshotIsCanonical) {
  // Same pending set pushed in different orders must serialize identically
  // (save() sorts; the heap layout depends on push order).
  std::vector<fl::Event> events;
  Rng rng(9);
  for (std::uint64_t i = 0; i < 12; ++i) {
    fl::Event e;
    e.time = rng.uniform(0.0, 10.0);
    e.client = static_cast<std::size_t>(i);
    events.push_back(e);
  }
  fl::EventQueue fwd;
  for (const auto& e : events) fwd.push(e);
  fl::EventQueue rev;
  for (auto it = events.rbegin(); it != events.rend(); ++it) rev.push(*it);
  util::SnapshotWriter wa;
  wa.begin_chunk("EVTQ");
  fwd.save(wa);
  wa.end_chunk();
  util::SnapshotWriter wb;
  wb.begin_chunk("EVTQ");
  rev.save(wb);
  wb.end_chunk();
  const std::string pa = tmp_path("canon_a.snap");
  const std::string pb = tmp_path("canon_b.snap");
  remove_generations(pa);
  remove_generations(pb);
  wa.commit(pa);
  wb.commit(pb);
  EXPECT_EQ(slurp(pa), slurp(pb));
}

TEST(SnapshotComponents, TrainingHistoryRoundTripsEveryField) {
  fl::TrainingHistory h;
  Rng rng(3);
  for (int i = 1; i <= 5; ++i) {
    fl::RoundMetrics m;
    m.round = i;
    m.test_accuracy = rng.uniform();
    m.train_loss = rng.uniform();
    m.clients = i;
    m.sampled = i + 2;
    m.dropped = 1;
    m.timed_out = 1;
    m.stale_accepted = static_cast<std::uint64_t>(i % 2);
    m.bytes_uplink = 1000ULL * static_cast<std::uint64_t>(i);
    m.bits_on_air = 8000ULL * static_cast<std::uint64_t>(i);
    m.bit_flips = 3;
    m.packets_lost = 2;
    m.retransmissions = 4;
    m.residual_errors = 1;
    m.simulated_round_seconds = rng.uniform(1.0, 5.0);
    m.events = 20 + static_cast<std::uint64_t>(i);
    m.wall_seconds = rng.uniform();
    h.add(m);
  }
  fl::TrainingHistory restored;
  roundtrip(h, restored);
  ASSERT_EQ(restored.size(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    const auto& a = h.rounds()[i];
    const auto& b = restored.rounds()[i];
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.test_accuracy, b.test_accuracy);
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.clients, b.clients);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.stale_accepted, b.stale_accepted);
    EXPECT_EQ(a.bytes_uplink, b.bytes_uplink);
    EXPECT_EQ(a.bits_on_air, b.bits_on_air);
    EXPECT_EQ(a.bit_flips, b.bit_flips);
    EXPECT_EQ(a.packets_lost, b.packets_lost);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.residual_errors, b.residual_errors);
    EXPECT_EQ(a.simulated_round_seconds, b.simulated_round_seconds);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  }
}

TEST(SnapshotComponents, ExactSumVectorResumesMidAggregation) {
  util::ExactSumVector acc(64);
  Rng rng(11);
  std::vector<float> update(64);
  for (int k = 0; k < 7; ++k) {
    for (auto& v : update) v = static_cast<float>(rng.normal() * 1e6);
    acc.add(update);
  }
  util::ExactSumVector restored;
  roundtrip(acc, restored);
  ASSERT_EQ(restored.size(), acc.size());
  // One more fold on both, then identical rounding.
  for (auto& v : update) v = static_cast<float>(rng.normal());
  acc.add(update);
  restored.add(update);
  std::vector<float> a(64);
  std::vector<float> b(64);
  acc.round_to(a);
  restored.round_to(b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SnapshotComponents, PackedVoteAccumulatorResumesMidBundle) {
  const std::int64_t rows = 3;
  const std::int64_t d = 200;
  fl::PackedVoteAccumulator acc(rows, d);
  Rng rng(17);
  std::vector<hdc::PackedModel> models;
  for (int k = 0; k < 5; ++k) {
    const Tensor m = hdc::sign(Tensor::randn(Shape{rows, d}, rng));
    models.push_back(hdc::pack_rows(m));
    acc.add(models.back());
  }
  fl::PackedVoteAccumulator restored;
  roundtrip(acc, restored);
  EXPECT_EQ(restored.members(), acc.members());
  // Vote in one more model on both sides; identical majorities.
  const Tensor extra = hdc::sign(Tensor::randn(Shape{rows, d}, rng));
  acc.add(hdc::pack_rows(extra));
  restored.add(hdc::pack_rows(extra));
  EXPECT_EQ(acc.finalize().words, restored.finalize().words);
}

}  // namespace
}  // namespace fhdnn
