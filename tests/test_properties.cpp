// Cross-module property tests: mathematical invariants checked over
// parameterized sweeps (TEST_P). These pin down the *mechanisms* the paper's
// claims rest on, not specific configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>
#include <tuple>
#include <vector>

#include "channel/channel.hpp"
#include "channel/fading.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/events.hpp"
#include "fl/hierarchy.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/ops.hpp"
#include "hdc/packed.hpp"
#include "hdc/quantizer.hpp"
#include "nn/batchnorm.hpp"
#include "tensor/conv.hpp"
#include "tensor/ops.hpp"
#include "util/exactsum.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fhdnn {
namespace {

// ----------------------------------------------------------------------
// Convolution: im2col-based forward equals the direct definition for every
// geometry in the sweep, and col2im is its exact adjoint.
// Param: (in_channels, out_channels, kernel, stride, padding, hw)
using ConvCase = std::tuple<int, int, int, int, int, int>;

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, ForwardMatchesDirectDefinition) {
  const auto [ic, oc, k, s, p, hw] = GetParam();
  ops::Conv2dSpec spec{ic, oc, k, s, p};
  if (spec.out_size(hw) <= 0) GTEST_SKIP() << "degenerate geometry";
  Rng rng(static_cast<std::uint64_t>(ic * 31 + oc * 7 + k + s + p + hw));
  const Tensor x = Tensor::randn(Shape{2, ic, hw, hw}, rng);
  const Tensor w = Tensor::randn(Shape{oc, ic, k, k}, rng);
  const Tensor b = Tensor::randn(Shape{oc}, rng);
  const Tensor got = ops::conv2d_forward(x, w, b, spec);

  const std::int64_t oh = spec.out_size(hw);
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t o = 0; o < oc; ++o) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < oh; ++ox) {
          double acc = b(o);
          for (std::int64_t c = 0; c < ic; ++c) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy = oy * s + ky - p;
                const std::int64_t ix = ox * s + kx - p;
                if (iy < 0 || iy >= hw || ix < 0 || ix >= hw) continue;
                acc += static_cast<double>(x(n, c, iy, ix)) * w(o, c, ky, kx);
              }
            }
          }
          ASSERT_NEAR(got(n, o, oy, ox), acc, 1e-3)
              << "at (" << n << "," << o << "," << oy << "," << ox << ")";
        }
      }
    }
  }
}

TEST_P(ConvGeometry, Col2imIsAdjointOfIm2col) {
  const auto [ic, oc, k, s, p, hw] = GetParam();
  (void)oc;
  ops::Conv2dSpec spec{ic, 1, k, s, p};
  if (spec.out_size(hw) <= 0) GTEST_SKIP() << "degenerate geometry";
  Rng rng(static_cast<std::uint64_t>(ic + k + s + p + hw));
  const Tensor x = Tensor::randn(Shape{1, ic, hw, hw}, rng);
  const Tensor cols = ops::im2col(x, spec);
  const Tensor y = Tensor::randn(cols.shape(), rng);
  const Tensor back = ops::col2im(y, spec, 1, hw, hw);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) lhs += cols.at(i) * y.at(i);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x.at(i) * back.at(i);
  EXPECT_NEAR(lhs, rhs, std::abs(lhs) * 1e-4 + 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometry,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 5}, ConvCase{1, 2, 3, 1, 1, 6},
                      ConvCase{2, 3, 3, 2, 1, 7}, ConvCase{3, 4, 5, 1, 2, 8},
                      ConvCase{2, 2, 3, 3, 0, 9}, ConvCase{4, 1, 2, 2, 0, 8}));

// ----------------------------------------------------------------------
// Random projection + sign is an angle-preserving hash (Goemans-Williamson):
// P[signs disagree at a dimension] = angle(x, y) / pi. This is the precise
// sense in which HD encodings preserve similarity.
class AngleHash : public ::testing::TestWithParam<double> {};

TEST_P(AngleHash, DisagreementMatchesAngleOverPi) {
  const double angle = GetParam();
  const std::int64_t d = 20000;
  Rng rng(99);
  hdc::RandomProjectionEncoder enc(8, d, rng);
  // Two unit vectors at the requested angle in a fixed 2-d subspace.
  Tensor x(Shape{8}), y(Shape{8});
  x(0) = 1.0F;
  y(0) = static_cast<float>(std::cos(angle));
  y(1) = static_cast<float>(std::sin(angle));
  const Tensor hx = enc.encode(x);
  const Tensor hy = enc.encode(y);
  std::int64_t differ = 0;
  for (std::int64_t i = 0; i < d; ++i) differ += (hx(i) != hy(i));
  const double measured = static_cast<double>(differ) / static_cast<double>(d);
  EXPECT_NEAR(measured, angle / std::numbers::pi, 0.02) << "angle " << angle;
}

INSTANTIATE_TEST_SUITE_P(Angles, AngleHash,
                         ::testing::Values(0.1, 0.5, 1.0, 1.5707963, 2.5,
                                           3.0));

// ----------------------------------------------------------------------
// HD classifier accuracy is non-decreasing (within noise) in d — more
// dimensions, more information capacity.
class DimensionSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DimensionSweep, AccuracyReasonableAtEveryD) {
  const std::int64_t d = GetParam();
  Rng rng(7);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 5;
  spec.n = 300;
  const auto ds = data::make_isolet_like(spec, rng);
  const auto split = data::train_test_split(ds, 0.25, rng);
  Rng er = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(32, d, er);
  hdc::HdClassifier clf(5, d);
  clf.bundle(enc.encode(split.train.x), split.train.labels);
  const double acc =
      clf.accuracy(enc.encode(split.test.x), split.test.labels);
  // Even d=256 should beat chance handily on separable clusters; larger d
  // should be near-perfect.
  EXPECT_GT(acc, d >= 2048 ? 0.9 : 0.6) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Dims, DimensionSweep,
                         ::testing::Values<std::int64_t>(256, 1024, 4096));

// ----------------------------------------------------------------------
// Packet loss: zeroed fraction concentrates on the configured rate.
class LossRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossRateSweep, ZeroedFractionMatchesRate) {
  const double rate = GetParam();
  channel::PacketLossChannel ch(rate, 32 * 16);  // 16 floats per packet
  Rng rng(11);
  std::vector<float> payload(16 * 2000, 1.0F);
  ch.apply(payload, rng);
  std::size_t zeros = 0;
  for (const float v : payload) zeros += (v == 0.0F);
  const double measured =
      static_cast<double>(zeros) / static_cast<double>(payload.size());
  EXPECT_NEAR(measured, rate, 0.03 + rate * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Rates, LossRateSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.3, 0.5));

// ----------------------------------------------------------------------
// BSC: measured flip rate matches p_e across orders of magnitude.
class BerSweep : public ::testing::TestWithParam<double> {};

TEST_P(BerSweep, FlipRateMatches) {
  const double ber = GetParam();
  channel::BitErrorChannel ch(ber);
  Rng rng(13);
  std::vector<float> payload(200000, 1.0F);
  const auto stats = ch.apply(payload, rng);
  const double expected = ber * 32.0 * static_cast<double>(payload.size());
  EXPECT_NEAR(static_cast<double>(stats.bit_flips), expected,
              6.0 * std::sqrt(expected) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Bers, BerSweep,
                         ::testing::Values(1e-5, 1e-4, 1e-3, 1e-2));

// ----------------------------------------------------------------------
// Dirichlet partitioning: label skew decreases monotonically (on average)
// as alpha grows.
class AlphaSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(AlphaSweep, SkewOrderedByAlpha) {
  const auto [small_alpha, big_alpha] = GetParam();
  Rng rng(17);
  const auto ds = data::synthetic_mnist(800, rng);
  double skew_small = 0.0, skew_big = 0.0;
  for (int t = 0; t < 3; ++t) {
    Rng r1 = rng.fork("s" + std::to_string(t));
    Rng r2 = rng.fork("b" + std::to_string(t));
    skew_small +=
        data::label_skew(ds, data::partition_dirichlet(ds, 8, small_alpha, r1));
    skew_big +=
        data::label_skew(ds, data::partition_dirichlet(ds, 8, big_alpha, r2));
  }
  EXPECT_GT(skew_small, skew_big);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(std::pair{0.05, 1.0},
                                           std::pair{0.1, 10.0},
                                           std::pair{0.3, 100.0}));

// ----------------------------------------------------------------------
// AWGN at SNR s then AGC quantization round trip: total perturbation is
// dominated by the channel, not the quantizer, for B >= 8.
class QuantizerNoiseInteraction : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerNoiseInteraction, QuantizerErrorBelowChannelNoise) {
  const int bits = GetParam();
  Rng rng(19);
  std::vector<float> v(5000);
  rng.fill_normal(v, 0.0F, 2.0F);
  // Channel noise at 20 dB SNR: sigma = rms / 10.
  const double sigma = 0.2;
  hdc::Quantizer q(bits);
  const auto back = q.dequantize(q.quantize(v));
  double qerr = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    qerr += (back[i] - v[i]) * (back[i] - v[i]);
  }
  qerr /= static_cast<double>(v.size());
  EXPECT_LT(qerr, sigma * sigma / 4.0)
      << "B=" << bits << " quantization should be sub-channel-noise";
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerNoiseInteraction,
                         ::testing::Values(8, 12, 16));

// ----------------------------------------------------------------------
// Gilbert-Elliott: measured loss matches the stationary rate for several
// parameterizations.
using GeCase = std::tuple<double, double, double>;
class GeSweep : public ::testing::TestWithParam<GeCase> {};

TEST_P(GeSweep, StationaryLossRate) {
  const auto [gb, bg, bad] = GetParam();
  channel::GilbertElliottChannel::Params p;
  p.p_good_to_bad = gb;
  p.p_bad_to_good = bg;
  p.loss_good = 0.0;
  p.loss_bad = bad;
  p.packet_bits = 32 * 8;
  const channel::GilbertElliottChannel ch(p);
  Rng rng(23);
  std::size_t lost = 0, total = 0;
  for (int t = 0; t < 40; ++t) {
    std::vector<float> payload(8 * 500, 1.0F);
    const auto stats = ch.apply(payload, rng);
    lost += stats.packets_lost;
    total += stats.packets_total;
  }
  EXPECT_NEAR(static_cast<double>(lost) / static_cast<double>(total),
              ch.average_loss_rate(), 0.025);
}

INSTANTIATE_TEST_SUITE_P(Chains, GeSweep,
                         ::testing::Values(GeCase{0.05, 0.2, 0.7},
                                           GeCase{0.01, 0.5, 0.9},
                                           GeCase{0.2, 0.2, 0.5}));

// ----------------------------------------------------------------------
// BatchNorm normalizes every channel count in the sweep.
class BnChannels : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BnChannels, OutputsStandardized) {
  const std::int64_t c = GetParam();
  Rng rng(29);
  nn::BatchNorm2d bn(c);
  Tensor x = Tensor::randn(Shape{6, c, 4, 4}, rng, 3.0F);
  for (auto& v : x.data()) v -= 5.0F;
  const Tensor y = bn.forward(x);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    stats::Accumulator acc;
    for (std::int64_t n = 0; n < 6; ++n) {
      for (std::int64_t i = 0; i < 4; ++i) {
        for (std::int64_t j = 0; j < 4; ++j) acc.add(y(n, ch, i, j));
      }
    }
    EXPECT_NEAR(acc.mean(), 0.0, 1e-3);
    EXPECT_NEAR(acc.variance(), 1.0, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Channels, BnChannels,
                         ::testing::Values<std::int64_t>(1, 3, 8));

// ----------------------------------------------------------------------
// Softmax + cross-entropy invariance: adding a constant to every logit of a
// row changes nothing.
class LogitShift : public ::testing::TestWithParam<float> {};

TEST_P(LogitShift, SoftmaxShiftInvariant) {
  const float shift = GetParam();
  Rng rng(31);
  const Tensor logits = Tensor::randn(Shape{4, 6}, rng, 2.0F);
  Tensor shifted = logits;
  for (auto& v : shifted.data()) v += shift;
  const Tensor p1 = ops::softmax_rows(logits);
  const Tensor p2 = ops::softmax_rows(shifted);
  for (std::int64_t i = 0; i < p1.numel(); ++i) {
    EXPECT_NEAR(p1.at(i), p2.at(i), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, LogitShift,
                         ::testing::Values(-100.0F, -1.0F, 3.0F, 50.0F));

// ----------------------------------------------------------------------
// Packed binary-HD backend: bit-for-bit agreement with the float/scalar
// oracle at dimensions straddling the 64-bit word boundary and at the
// paper-scale d = 10k (tail-mask handling is where packed code breaks).
class PackedDim : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PackedDim, PackUnpackRoundTrip) {
  const std::int64_t d = GetParam();
  Rng rng(61);
  const Tensor v = hdc::random_bipolar(d, rng);
  const hdc::PackedHV p = hdc::pack_hv(v);
  const Tensor back = hdc::unpack_hv(p);
  for (std::int64_t i = 0; i < d; ++i) ASSERT_EQ(back(i), v(i)) << "i=" << i;
  // Idempotent: repacking the unpacked vector reproduces the exact words.
  EXPECT_EQ(hdc::pack_hv(back).words, p.words);
}

TEST_P(PackedDim, BindBundlePermuteHammingMatchScalar) {
  const std::int64_t d = GetParam();
  Rng rng(62);
  const Tensor a = hdc::random_bipolar(d, rng);
  const Tensor b = hdc::random_bipolar(d, rng);
  const Tensor c = hdc::random_bipolar(d, rng);
  const hdc::PackedHV pa = hdc::pack_hv(a), pb = hdc::pack_hv(b),
                      pc = hdc::pack_hv(c);
  EXPECT_EQ(hdc::xor_bind(pa, pb).words, hdc::pack_hv(hdc::bind(a, b)).words);
  EXPECT_EQ(hdc::bundle_majority_packed({pa, pb, pc}).words,
            hdc::pack_hv(hdc::bundle_majority({a, b, c})).words);
  EXPECT_EQ(hdc::bundle_majority_packed({pa, pb}).words,
            hdc::pack_hv(hdc::bundle_majority({a, b})).words);
  for (const std::int64_t k : {1L, 63L, 64L, 65L, d / 2, d - 1, -7L}) {
    EXPECT_EQ(hdc::rotate(pa, k).words, hdc::pack_hv(hdc::permute(a, k)).words)
        << "shift " << k;
  }
  EXPECT_EQ(hdc::hamming_norm(pa, pb), hdc::hamming_distance(a, b));
}

TEST_P(PackedDim, ClassifyMatchesFloatPredict) {
  const std::int64_t d = GetParam();
  Rng rng(63);
  const std::int64_t kk = 6, n = 30;
  const Tensor protos = hdc::sign(Tensor::randn(Shape{kk, d}, rng));
  const Tensor queries = hdc::sign(Tensor::randn(Shape{n, d}, rng));
  hdc::HdClassifier clf(kk, d);
  clf.set_prototypes(protos);
  EXPECT_EQ(hdc::classify_packed(hdc::pack_rows(protos),
                                 hdc::pack_rows(queries)),
            clf.predict(queries));
}

INSTANTIATE_TEST_SUITE_P(Dims, PackedDim,
                         ::testing::Values<std::int64_t>(63, 64, 65, 1000,
                                                         10000));

// ----------------------------------------------------------------------
// Event queue: the pop sequence is the (time, client, seq, kind, slot)
// total order for EVERY insertion order — the determinism the engine's
// timed rounds rest on. Param: shuffle seed.
class EventShuffle : public ::testing::TestWithParam<int> {};

TEST_P(EventShuffle, PopOrderIndependentOfPushOrder) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  // Dense collisions: few distinct times and clients, unique (client, seq).
  std::vector<fl::Event> events;
  for (std::size_t client = 0; client < 6; ++client) {
    for (std::uint64_t seq = 0; seq < 5; ++seq) {
      events.push_back({static_cast<double>(rng.randint(0, 2)), client, seq,
                        fl::EventKind::kUploadArrival, events.size()});
    }
  }
  std::vector<fl::Event> reference = events;
  std::sort(reference.begin(), reference.end(), fl::event_before);

  // Seeded Fisher–Yates shuffle, then push in that order.
  for (std::size_t i = events.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(i)));
    std::swap(events[i], events[j]);
  }
  fl::EventQueue q;
  for (const auto& e : events) q.push(e);
  for (const auto& want : reference) {
    const fl::Event got = q.pop();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.client, want.client);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.slot, want.slot);
  }
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Shuffles, EventShuffle, ::testing::Range(0, 8));

// ----------------------------------------------------------------------
// Hierarchical aggregation: a fan-in tree of edge aggregators produces
// the BIT-IDENTICAL result of flat aggregation — for the float path
// (exact fixed-point summation, single rounding) and the packed binary
// path (associative vote counts, one majority threshold). Param: fan-in.
class FanInTree : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FanInTree, FloatTreeSumMatchesFlatBitExact) {
  const std::size_t fan_in = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(fan_in));
  for (const std::size_t parts_n : {1UL, 2UL, 5UL, 17UL, 48UL}) {
    // Adversarial magnitudes: catastrophic cancellation and wide exponent
    // spread, where naive float trees diverge from flat sums.
    std::vector<Tensor> parts;
    for (std::size_t p = 0; p < parts_n; ++p) {
      Tensor t(Shape{257});
      for (auto& v : t.data()) {
        v = static_cast<float>(rng.uniform(-1.0, 1.0) *
                               std::ldexp(1.0, static_cast<int>(
                                                   rng.randint(-40, 40))));
      }
      parts.push_back(std::move(t));
    }
    util::ExactSumVector flat(257);
    for (const auto& t : parts) flat.add(t.data());
    Tensor flat_out(Shape{257});
    flat.round_to(flat_out.data());

    const Tensor tree_out = fl::hierarchical_sum(parts, fan_in);
    for (std::int64_t i = 0; i < 257; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(flat_out(i)),
                std::bit_cast<std::uint32_t>(tree_out(i)))
          << "fan_in=" << fan_in << " parts=" << parts_n << " i=" << i;
    }
  }
}

TEST_P(FanInTree, PackedTreeMajorityMatchesFlatKernel) {
  const std::size_t fan_in = GetParam();
  Rng rng(300 + static_cast<std::uint64_t>(fan_in));
  // Both tie parities (even member counts exercise the index-parity rule)
  // and a dimension with a ragged tail word.
  for (const std::size_t members : {1UL, 2UL, 4UL, 9UL, 16UL, 31UL}) {
    std::vector<hdc::PackedModel> models;
    for (std::size_t m = 0; m < members; ++m) {
      models.push_back(
          hdc::pack_rows(hdc::sign(Tensor::randn(Shape{3, 131}, rng))));
    }
    const hdc::PackedModel flat = hdc::majority_aggregate_packed(models);
    const hdc::PackedModel tree = fl::hierarchical_majority(models, fan_in);
    ASSERT_EQ(tree.rows, flat.rows);
    ASSERT_EQ(tree.d, flat.d);
    ASSERT_EQ(tree.words, flat.words)
        << "fan_in=" << fan_in << " members=" << members;
  }
}

INSTANTIATE_TEST_SUITE_P(FanIns, FanInTree,
                         ::testing::Values<std::size_t>(2, 3, 16));

}  // namespace
}  // namespace fhdnn
