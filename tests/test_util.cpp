// Tests for src/util: rng, stats, csv, table, cli, error macro.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fhdnn {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkIsDeterministicAndLabelSensitive) {
  const Rng root(7);
  Rng f1 = root.fork("alpha");
  Rng f2 = root.fork("alpha");
  Rng f3 = root.fork("beta");
  EXPECT_EQ(f1.next_u64(), f2.next_u64());
  Rng f4 = root.fork("alpha");
  EXPECT_NE(f4.next_u64(), f3.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(9), b(9);
  (void)a.fork("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanVariance) {
  Rng rng(4);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  stats::Accumulator acc;
  for (int i = 0; i < 40000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.03);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.03);
}

TEST(Rng, RandintBoundsInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.randint(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6U);  // all values hit
}

TEST(Rng, RandintSingleton) {
  Rng rng(6);
  EXPECT_EQ(rng.randint(5, 5), 5);
}

TEST(Rng, RandintRejectsBadRange) {
  Rng rng(6);
  EXPECT_THROW(rng.randint(2, 1), Error);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(10);
  const auto s = rng.sample_without_replacement(20, 7);
  EXPECT_EQ(s.size(), 7U);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 7U);
  for (const auto v : s) EXPECT_LT(v, 20U);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, SampleAll) {
  Rng rng(10);
  const auto s = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5U);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(11);
  for (const double alpha : {0.1, 1.0, 10.0}) {
    const auto p = rng.dirichlet(alpha, 8);
    EXPECT_EQ(p.size(), 8U);
    double sum = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletConcentration) {
  // Small alpha concentrates mass: max component much larger on average.
  Rng rng(12);
  double max_small = 0.0, max_large = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto a = rng.dirichlet(0.1, 10);
    const auto b = rng.dirichlet(50.0, 10);
    max_small += *std::max_element(a.begin(), a.end());
    max_large += *std::max_element(b.begin(), b.end());
  }
  EXPECT_GT(max_small / trials, max_large / trials + 0.2);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
  EXPECT_THROW(rng.categorical({}), Error);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), Error);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, FillHelpers) {
  Rng rng(15);
  std::vector<float> a(5000);
  rng.fill_uniform(a, -1.0F, 1.0F);
  for (const float v : a) {
    EXPECT_GE(v, -1.0F);
    EXPECT_LT(v, 1.0F);
  }
  std::vector<float> b(5000);
  rng.fill_normal(b, 2.0F, 0.5F);
  double mean = 0;
  for (const float v : b) mean += v;
  EXPECT_NEAR(mean / 5000.0, 2.0, 0.05);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_NEAR(stats::variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptyAndDegenerate) {
  const std::vector<double> empty;
  EXPECT_EQ(stats::mean(empty), 0.0);
  EXPECT_EQ(stats::variance(empty), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_EQ(stats::variance(one), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  EXPECT_EQ(stats::min(xs), -1.0);
  EXPECT_EQ(stats::max(xs), 3.0);
  const std::vector<double> empty;
  EXPECT_THROW(stats::min(empty), Error);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, MseAndPsnr) {
  const std::vector<float> a{0.0F, 1.0F};
  const std::vector<float> b{0.0F, 0.0F};
  EXPECT_NEAR(stats::mse(a, b), 0.5, 1e-12);
  EXPECT_NEAR(stats::psnr(a, b, 1.0), 10.0 * std::log10(2.0), 1e-9);
  EXPECT_GT(stats::psnr(a, a, 1.0), 1e8);  // identical => huge PSNR
}

TEST(Stats, AccumulatorMatchesBatch) {
  Rng rng(16);
  std::vector<double> xs;
  stats::Accumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 2.0);
    xs.push_back(v);
    acc.add(v);
  }
  EXPECT_NEAR(acc.mean(), stats::mean(xs), 1e-9);
  EXPECT_NEAR(acc.variance(), stats::variance(xs), 1e-9);
  EXPECT_EQ(acc.min(), stats::min(xs));
  EXPECT_EQ(acc.max(), stats::max(xs));
}

// ---------------------------------------------------------------- csv

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.add(1).add("x").end_row();
  w.add(2.5).add(std::string("he,llo")).end_row();
  EXPECT_EQ(os.str(), "a,b\n1,x\n2.5,\"he,llo\"\n");
  EXPECT_EQ(w.rows_written(), 2U);
}

TEST(Csv, EscapesQuotes) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, RowArityEnforced) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.add(1);
  EXPECT_THROW(w.end_row(), Error);
  w.add(2);
  EXPECT_NO_THROW(w.end_row());
  w.add(1).add(2);
  EXPECT_THROW(w.add(3), Error);
}

TEST(Csv, FormatDouble) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumns) {
  std::ostringstream os;
  TextTable t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2U);
}

TEST(Table, RejectsBadRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

// ---------------------------------------------------------------- cli

TEST(Cli, ParsesAllKinds) {
  CliFlags f;
  f.define_int("n", 1, "int");
  f.define_double("x", 0.5, "double");
  f.define_bool("flag", false, "bool");
  f.define_string("s", "d", "string");
  const char* argv[] = {"prog", "--n=5", "--x", "2.5", "--flag", "--s=hello"};
  ASSERT_TRUE(f.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_int("n"), 5);
  EXPECT_DOUBLE_EQ(f.get_double("x"), 2.5);
  EXPECT_TRUE(f.get_bool("flag"));
  EXPECT_EQ(f.get_string("s"), "hello");
}

TEST(Cli, DefaultsSurvive) {
  CliFlags f;
  f.define_int("n", 7, "int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(f.get_int("n"), 7);
}

TEST(Cli, RejectsUnknownAndBadValues) {
  CliFlags f;
  f.define_int("n", 1, "int");
  const char* bad1[] = {"prog", "--unknown=1"};
  EXPECT_THROW(f.parse(2, const_cast<char**>(bad1)), Error);
  const char* bad2[] = {"prog", "--n=abc"};
  EXPECT_THROW(f.parse(2, const_cast<char**>(bad2)), Error);
  const char* bad3[] = {"prog", "--n"};
  EXPECT_THROW(f.parse(2, const_cast<char**>(bad3)), Error);
}

TEST(Cli, HelpReturnsFalse) {
  CliFlags f;
  f.define_int("n", 1, "int");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(f.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, TypeMismatchThrows) {
  CliFlags f;
  f.define_int("n", 1, "int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, const_cast<char**>(argv)));
  EXPECT_THROW(f.get_double("n"), Error);
  EXPECT_THROW(f.get_int("missing"), Error);
}

// ---------------------------------------------------------------- error

TEST(ErrorMacro, ThrowsWithMessage) {
  try {
    FHDNN_CHECK(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorMacro, NoMessageForm) {
  EXPECT_THROW(FHDNN_CHECK(false), Error);
  EXPECT_NO_THROW(FHDNN_CHECK(true));
}

}  // namespace
}  // namespace fhdnn
