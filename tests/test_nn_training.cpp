// End-to-end training tests for the NN substrate: small models must
// actually learn synthetic tasks (this is what the FedAvg baseline rests on).
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

/// Train `net` centrally for `epochs` over ds with batch size 16.
double train_and_eval(nn::Module& net, const data::Dataset& train,
                      const data::Dataset& test, int epochs, float lr,
                      Rng& rng) {
  nn::Sgd opt(net, {lr, 0.9F, 0.0F});
  nn::CrossEntropyLoss loss;
  net.set_training(true);
  for (int e = 0; e < epochs; ++e) {
    data::BatchIterator it(static_cast<std::size_t>(train.size()), 16, rng);
    while (!it.done()) {
      const auto idx = it.next();
      const auto batch = train.gather(idx);
      opt.zero_grad();
      const Tensor logits = net.forward(batch.x);
      (void)loss.forward(logits, batch.labels);
      net.backward(loss.backward());
      opt.step();
    }
  }
  net.set_training(false);
  const auto all = test.all();
  const Tensor logits = net.forward(all.x);
  return nn::accuracy(logits, all.labels);
}

TEST(CentralTraining, Cnn2LearnsSyntheticMnist) {
  Rng rng(1);
  auto full = data::synthetic_mnist(400, rng);
  auto split = data::train_test_split(full, 0.25, rng);
  Rng init(2);
  auto net = nn::make_cnn2(1, 28, 10, init);
  Rng train_rng(3);
  const double acc =
      train_and_eval(*net, split.train, split.test, 6, 0.05F, train_rng);
  EXPECT_GT(acc, 0.8) << "CNN2 failed to learn an easy synthetic task";
}

TEST(CentralTraining, MiniResNetLearnsSyntheticCifar) {
  Rng rng(4);
  auto full = data::synthetic_cifar(300, rng);
  auto split = data::train_test_split(full, 0.25, rng);
  Rng init(5);
  auto net = nn::make_mini_resnet(3, 10, 8, init);
  Rng train_rng(6);
  const double acc =
      train_and_eval(*net, split.train, split.test, 8, 0.05F, train_rng);
  EXPECT_GT(acc, 0.5) << "MiniResNet failed to learn";
}

TEST(CentralTraining, DeterministicGivenSeeds) {
  // Identical seeds end-to-end must produce bit-identical accuracy — the
  // reproducibility contract every experiment in this repo relies on.
  auto run_once = [] {
    Rng rng(7);
    auto full = data::synthetic_mnist(200, rng);
    auto split = data::train_test_split(full, 0.25, rng);
    Rng init(8);
    auto net = nn::make_cnn2(1, 28, 10, init);
    Rng train_rng(9);
    return train_and_eval(*net, split.train, split.test, 2, 0.05F, train_rng);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fhdnn
