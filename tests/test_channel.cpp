// Tests for src/channel: AWGN, BSC bit errors, packet loss, HD uplink,
// LTE link model. Channel statistics are validated against closed forms.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "channel/bits.hpp"
#include "channel/channel.hpp"
#include "channel/hd_uplink.hpp"
#include "channel/lte.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fhdnn {
namespace {

using namespace fhdnn::channel;

TEST(PerfectChannel, NoOp) {
  PerfectChannel ch;
  Rng rng(1);
  std::vector<float> payload{1.0F, -2.0F, 3.0F};
  const auto orig = payload;
  const auto stats = ch.apply(payload, rng);
  EXPECT_EQ(payload, orig);
  EXPECT_EQ(stats.payload_scalars, 3U);
  EXPECT_EQ(stats.bits_on_air, 96U);
  EXPECT_EQ(stats.bit_flips, 0U);
}

TEST(Awgn, EmpiricalSnrMatchesTarget) {
  Rng rng(2);
  for (const double snr_db : {5.0, 15.0, 25.0}) {
    AwgnChannel ch(snr_db);
    std::vector<float> payload(20000);
    Rng pr(3);
    pr.fill_normal(payload, 0.0F, 2.0F);
    const auto orig = payload;
    const auto stats = ch.apply(payload, rng);
    double signal = 0.0, noise = 0.0;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      signal += static_cast<double>(orig[i]) * orig[i];
      const double n = payload[i] - orig[i];
      noise += n * n;
    }
    const double measured_db = 10.0 * std::log10(signal / noise);
    EXPECT_NEAR(measured_db, snr_db, 0.3) << "target " << snr_db;
    EXPECT_GT(stats.noise_power, 0.0);
  }
}

TEST(Awgn, SilentPayloadUntouched) {
  AwgnChannel ch(10.0);
  Rng rng(4);
  std::vector<float> payload(16, 0.0F);
  ch.apply(payload, rng);
  for (const float v : payload) EXPECT_EQ(v, 0.0F);
}

TEST(Awgn, LowerSnrMoreNoise) {
  std::vector<float> base(5000, 1.0F);
  auto noise_for = [&](double snr_db) {
    Rng rng(5);
    auto p = base;
    AwgnChannel ch(snr_db);
    ch.apply(p, rng);
    double n = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double d = p[i] - base[i];
      n += d * d;
    }
    return n;
  };
  EXPECT_GT(noise_for(5.0), 10.0 * noise_for(25.0));
}

TEST(GeometricGap, MeanMatchesInverseP) {
  Rng rng(6);
  const double p = 0.01;
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    acc.add(static_cast<double>(geometric_gap(p, rng)));
  }
  EXPECT_NEAR(acc.mean(), 1.0 / p, 3.0);
  EXPECT_GE(acc.min(), 1.0);
}

TEST(GeometricGap, ClampsOvershootingBer) {
  // A deadline-scaled BER can exceed 1.0; the gap must clamp to "every
  // bit flips" (gap 1) rather than tripping Rng::geometric's domain check.
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(geometric_gap(1.0, rng), 1ULL);
    EXPECT_EQ(geometric_gap(2.5, rng), 1ULL);
  }
}

TEST(GeometricGap, FlipDensityTracksBer) {
  // Statistical pin: measured flips over the geometric-gap walk match the
  // configured BER to within sampling noise (binomial sd).
  Rng rng(8);
  std::vector<float> payload(20000, 1.0F);
  const double ber = 0.01;
  const double total_bits = 32.0 * static_cast<double>(payload.size());
  const auto flips = flip_float_bits(payload, ber, rng);
  const double expected = ber * total_bits;
  EXPECT_NEAR(static_cast<double>(flips), expected,
              6.0 * std::sqrt(expected * (1.0 - ber)));
}

TEST(GeometricGap, BerOneFlipsEveryBit) {
  Rng rng(9);
  std::vector<float> payload(50, 0.0F);
  const auto flips = flip_float_bits(payload, 1.0, rng);
  EXPECT_EQ(flips, 32U * 50U);
  // Every bit of every float toggled: 0x00000000 -> 0xFFFFFFFF.
  for (const float v : payload) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(v), 0xFFFFFFFFU);
  }
}

TEST(BitErrors, FlipCountMatchesRate) {
  Rng rng(7);
  const double ber = 1e-3;
  BitErrorChannel ch(ber);
  std::vector<float> payload(100000, 1.5F);
  const auto stats = ch.apply(payload, rng);
  const double expected = ber * 32.0 * 100000.0;  // 3200
  EXPECT_NEAR(static_cast<double>(stats.bit_flips), expected,
              5.0 * std::sqrt(expected));
}

TEST(BitErrors, ZeroRateNoChange) {
  Rng rng(8);
  BitErrorChannel ch(0.0);
  std::vector<float> payload{1.0F, 2.0F};
  const auto stats = ch.apply(payload, rng);
  EXPECT_EQ(stats.bit_flips, 0U);
  EXPECT_EQ(payload[0], 1.0F);
}

TEST(BitErrors, ExponentFlipIsCatastrophic) {
  // The paper's §3.5.2 example: one exponent-bit flip can inflate a weight
  // by ~38 orders of magnitude. Verify our bit layout reproduces it.
  float w = 0.15625F;
  auto u = std::bit_cast<std::uint32_t>(w);
  u ^= (1U << 30);  // highest exponent bit
  const float corrupted = std::bit_cast<float>(u);
  EXPECT_GT(std::abs(corrupted), 1e37F);
}

TEST(BitErrors, HighRateCorruptsEverything) {
  Rng rng(9);
  BitErrorChannel ch(0.5);
  std::vector<float> payload(64, 1.0F);
  ch.apply(payload, rng);
  int changed = 0;
  for (const float v : payload) changed += (v != 1.0F);
  EXPECT_GT(changed, 56);
}

TEST(PacketLoss, LossFractionMatches) {
  Rng rng(10);
  PacketLossChannel ch(0.2, 32 * 32);  // 32 floats per packet
  std::vector<float> payload(32 * 1000, 1.0F);
  const auto stats = ch.apply(payload, rng);
  EXPECT_EQ(stats.packets_total, 1000U);
  EXPECT_NEAR(static_cast<double>(stats.packets_lost), 200.0, 60.0);
  // Zero-filled scalars == lost packets * 32.
  std::size_t zeros = 0;
  for (const float v : payload) zeros += (v == 0.0F);
  EXPECT_EQ(zeros, stats.packets_lost * 32);
}

TEST(PacketLoss, ContiguousZeroRuns) {
  Rng rng(11);
  PacketLossChannel ch(0.5, 4 * 32);
  std::vector<float> payload(40, 1.0F);
  ch.apply(payload, rng);
  // Zeros come in aligned runs of 4.
  for (std::size_t p = 0; p < 10; ++p) {
    const bool z0 = payload[4 * p] == 0.0F;
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_EQ(payload[4 * p + i] == 0.0F, z0);
    }
  }
}

TEST(PacketLoss, RateZeroAndOne) {
  Rng rng(12);
  std::vector<float> payload(128, 2.0F);
  PacketLossChannel none(0.0);
  none.apply(payload, rng);
  for (const float v : payload) EXPECT_EQ(v, 2.0F);
  PacketLossChannel all(1.0);
  const auto stats = all.apply(payload, rng);
  EXPECT_EQ(stats.packets_lost, stats.packets_total);
  for (const float v : payload) EXPECT_EQ(v, 0.0F);
}

TEST(PacketErrorRate, MatchesEq8) {
  // p_p = 1 - (1-p_e)^Np
  EXPECT_NEAR(packet_error_rate(0.0, 1000), 0.0, 1e-12);
  EXPECT_NEAR(packet_error_rate(1e-4, 10000),
              1.0 - std::pow(1.0 - 1e-4, 10000.0), 1e-12);
  EXPECT_NEAR(packet_error_rate(1.0, 10), 1.0, 1e-12);
}

TEST(ChannelFactories, ProduceRightTypes) {
  EXPECT_EQ(make_perfect()->name(), "perfect");
  EXPECT_NE(make_awgn(10)->name().find("awgn"), std::string::npos);
  EXPECT_NE(make_bit_error(0.1)->name().find("bsc"), std::string::npos);
  EXPECT_NE(make_packet_loss(0.1)->name().find("packet"), std::string::npos);
}

TEST(ChannelValidation, RejectsBadParams) {
  EXPECT_THROW(BitErrorChannel(-0.1), Error);
  EXPECT_THROW(BitErrorChannel(1.1), Error);
  EXPECT_THROW(PacketLossChannel(2.0), Error);
  EXPECT_THROW(PacketLossChannel(0.1, 16), Error);  // < 32 bits
}

// ------------------------------------------------------- quantized flips

TEST(QuantizedFlips, StayInRange) {
  Rng rng(13);
  hdc::Quantizer quant(8);
  std::vector<float> v(1000);
  rng.fill_normal(v, 0.0F, 3.0F);
  auto q = quant.quantize(v);
  const auto flips = flip_quantized_bits(q, 0.05, rng);
  EXPECT_GT(flips, 0U);
  for (const auto x : q.values) {
    EXPECT_LE(x, quant.max_level());
    EXPECT_GE(x, -quant.max_level());
  }
}

TEST(QuantizedFlips, BoundedRelativeDamage) {
  // After AGC quantization, a single bit flip changes a value by at most
  // 2^(B-1)/G in real units — bounded by the row's max magnitude.
  Rng rng(14);
  hdc::Quantizer quant(16);
  std::vector<float> v(2000);
  rng.fill_normal(v, 0.0F, 1.0F);
  float max_abs = 0.0F;
  for (const float x : v) max_abs = std::max(max_abs, std::abs(x));
  auto q = quant.quantize(v);
  flip_quantized_bits(q, 1e-3, rng);
  const auto back = quant.dequantize(q);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - v[i]), 2.0F * max_abs + 1e-4F);
  }
}

// ------------------------------------------------------------- hd uplink

Tensor proto_matrix(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(Shape{4, 256}, rng, 5.0F);
}

TEST(HdUplink, PerfectKeepsModel) {
  Tensor m = proto_matrix(20);
  const auto orig = m.vec();
  HdUplinkConfig cfg;  // Perfect
  Rng rng(21);
  const auto stats = transmit_hd_model(m, cfg, rng);
  EXPECT_EQ(m.vec(), orig);
  EXPECT_EQ(stats.bits_on_air, 4U * 256U * 16U);  // quantized accounting
}

TEST(HdUplink, AwgnPerturbsAtSnr) {
  Tensor m = proto_matrix(22);
  const auto orig = m.vec();
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::Awgn;
  cfg.snr_db = 10.0;
  Rng rng(23);
  transmit_hd_model(m, cfg, rng);
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    signal += static_cast<double>(orig[i]) * orig[i];
    const double d = m.vec()[i] - orig[i];
    noise += d * d;
  }
  EXPECT_NEAR(10.0 * std::log10(signal / noise), 10.0, 1.0);
}

TEST(HdUplink, BitErrorsWithQuantizerBounded) {
  Tensor m = proto_matrix(24);
  const auto orig = m.vec();
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::BitErrors;
  cfg.ber = 1e-3;
  cfg.quantizer_bits = 16;
  Rng rng(25);
  const auto stats = transmit_hd_model(m, cfg, rng);
  EXPECT_EQ(stats.bits_on_air, 4U * 256U * 16U);
  float max_abs = 0.0F;
  for (const float v : orig) max_abs = std::max(max_abs, std::abs(v));
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_LE(std::abs(m.vec()[i] - orig[i]), 2.0F * max_abs + 1e-3F);
  }
}

TEST(HdUplink, BitErrorsRawFloatCanExplode) {
  // Ablation path: without the quantizer, flips hit IEEE-754 floats and can
  // produce astronomically large values — run enough trials to observe one.
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::BitErrors;
  cfg.ber = 2e-2;
  cfg.use_quantizer = false;
  Rng rng(26);
  float worst = 0.0F;
  for (int t = 0; t < 30; ++t) {
    Tensor m = proto_matrix(27 + static_cast<std::uint64_t>(t));
    transmit_hd_model(m, cfg, rng);
    for (const float v : m.vec()) {
      if (std::isfinite(v)) worst = std::max(worst, std::abs(v));
    }
  }
  EXPECT_GT(worst, 1e10F);
}

TEST(HdUplink, PacketLossZeroes) {
  Tensor m = proto_matrix(28);
  HdUplinkConfig cfg;
  cfg.mode = HdUplinkMode::PacketLoss;
  cfg.loss_rate = 0.5;
  cfg.packet_bits = 1024;
  Rng rng(29);
  const auto stats = transmit_hd_model(m, cfg, rng);
  EXPECT_GT(stats.packets_lost, 0U);
  std::size_t zeros = 0;
  for (const float v : m.vec()) zeros += (v == 0.0F);
  EXPECT_EQ(zeros, stats.packets_lost * (1024 / 32));
}

TEST(HdUplink, Describe) {
  HdUplinkConfig cfg;
  EXPECT_EQ(describe(cfg), "perfect");
  cfg.mode = HdUplinkMode::BitErrors;
  EXPECT_NE(describe(cfg).find("AGC"), std::string::npos);
  cfg.use_quantizer = false;
  EXPECT_NE(describe(cfg).find("raw float"), std::string::npos);
}

// ------------------------------------------------------------------ lte

TEST(Lte, UploadTimes) {
  LteLinkModel link;
  // 22 MB at 1.6 Mb/s = 110 s; 1 MB at 5 Mb/s = 1.6 s.
  EXPECT_NEAR(link.upload_seconds(22ULL * 8'000'000, false), 110.0, 1e-6);
  EXPECT_NEAR(link.upload_seconds(8'000'000, true), 1.6, 1e-6);
}

TEST(Lte, TrainingTimeScalesWithRounds) {
  LteLinkModel link;
  const double one = link.training_seconds(1'000'000, 1, true);
  EXPECT_NEAR(link.training_seconds(1'000'000, 50, true), 50.0 * one, 1e-9);
}

TEST(Lte, ConfiguredRatesBelowShannon) {
  LteLinkModel link;
  EXPECT_LT(link.coded_rate_bps, link.shannon_capacity_bps());
  // The uncoded rate intentionally exceeds the *reliable* coded rate.
  EXPECT_GT(link.uncoded_rate_bps, link.coded_rate_bps);
}

TEST(Lte, TotalUploadBytes) {
  EXPECT_EQ(total_upload_bytes(1'000'000, 75), 75'000'000ULL);
}

TEST(Lte, SharedMediumScalesUploadTime) {
  // §3.5: per-client throughput scales 1/N when N clients share the medium.
  LteLinkModel link;
  const double solo = link.upload_seconds(8'000'000, true);
  link.shared_clients = 100;
  EXPECT_NEAR(link.upload_seconds(8'000'000, true), 100.0 * solo, 1e-9);
  // Paper §4.4 headline: 25 rounds x 1 MB at 5 Mb/s / 100 = 1.11 h.
  EXPECT_NEAR(link.training_seconds(8'000'000, 25, true) / 3600.0, 1.11, 0.01);
}

}  // namespace
}  // namespace fhdnn
