// Tests for src/fl: sampler, history, FedAvg and FedHd trainers.
#include <gtest/gtest.h>

#include <set>

#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedhd.hpp"
#include "fl/history.hpp"
#include "fl/sampler.hpp"
#include "hdc/encoder.hpp"
#include "nn/resnet.hpp"
#include "util/error.hpp"

namespace fhdnn {
namespace {

// ---------------------------------------------------------------- sampler

TEST(Sampler, FractionRounding) {
  EXPECT_EQ(fl::ClientSampler(100, 0.2).clients_per_round(), 20U);
  EXPECT_EQ(fl::ClientSampler(10, 0.01).clients_per_round(), 1U);  // min 1
  EXPECT_EQ(fl::ClientSampler(7, 1.0).clients_per_round(), 7U);
  EXPECT_THROW(fl::ClientSampler(0, 0.5), Error);
  EXPECT_THROW(fl::ClientSampler(10, 0.0), Error);
  EXPECT_THROW(fl::ClientSampler(10, 1.5), Error);
}

TEST(Sampler, DistinctSortedInRange) {
  fl::ClientSampler s(50, 0.3);
  Rng rng(1);
  for (int t = 0; t < 20; ++t) {
    const auto picks = s.sample(rng);
    EXPECT_EQ(picks.size(), 15U);
    EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
    std::set<std::size_t> uniq(picks.begin(), picks.end());
    EXPECT_EQ(uniq.size(), picks.size());
    for (const auto c : picks) EXPECT_LT(c, 50U);
  }
}

TEST(Sampler, ExplicitCountZeroDrawsNothing) {
  // Regression: sample(rng, 0) used to clamp k to 1 and return one
  // participant; an empty draw must stay empty (the engine's timed modes
  // compute k themselves and rely on exact counts). Oversized k still
  // clamps to the fleet.
  fl::ClientSampler s(8, 0.5);
  Rng rng(4);
  EXPECT_TRUE(s.sample(rng, 0).empty());
  EXPECT_EQ(s.sample(rng, 3).size(), 3U);
  EXPECT_EQ(s.sample(rng, 100).size(), 8U);  // clamped to n_clients
}

TEST(Sampler, SameSeedSameParticipantsEveryRound) {
  fl::ClientSampler s(40, 0.25);
  Rng a(123);
  Rng b(123);
  for (int r = 1; r <= 10; ++r) {
    Rng fa = a.fork("round-" + std::to_string(r)).fork("sample");
    Rng fb = b.fork("round-" + std::to_string(r)).fork("sample");
    EXPECT_EQ(s.sample(fa), s.sample(fb)) << "round " << r;
  }
}

TEST(Sampler, DeliveryFlagsMatchTrainerDropoutCoins) {
  // draw_delivery_flags is the engine's dropout primitive: coins are drawn
  // serially in participant order from the round's "dropout" fork, so the
  // outcome depends only on (seed, round, participant count).
  Rng a(9);
  Rng b(9);
  Rng fa = a.fork("round-3").fork("dropout");
  Rng fb = b.fork("round-3").fork("dropout");
  EXPECT_EQ(fl::draw_delivery_flags(12, 0.35, fa),
            fl::draw_delivery_flags(12, 0.35, fb));
}

TEST(Sampler, EventuallyCoversAllClients) {
  fl::ClientSampler s(10, 0.2);
  Rng rng(2);
  std::set<std::size_t> seen;
  for (int t = 0; t < 100; ++t) {
    for (const auto c : s.sample(rng)) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 10U);
}

// ---------------------------------------------------------------- history

TEST(History, RoundsToAccuracy) {
  fl::TrainingHistory h;
  EXPECT_EQ(h.final_accuracy(), 0.0);
  fl::RoundMetrics m;
  m.round = 1;
  m.test_accuracy = 0.5;
  m.bytes_uplink = 100;
  h.add(m);
  m.round = 2;
  m.test_accuracy = 0.8;
  h.add(m);
  m.round = 3;
  m.test_accuracy = 0.7;
  h.add(m);
  EXPECT_EQ(h.final_accuracy(), 0.7);
  EXPECT_EQ(h.best_accuracy(), 0.8);
  ASSERT_TRUE(h.rounds_to_accuracy(0.75).has_value());
  EXPECT_EQ(*h.rounds_to_accuracy(0.75), 2);
  EXPECT_FALSE(h.rounds_to_accuracy(0.9).has_value());
  EXPECT_EQ(h.total_uplink_bytes(), 300U);
}

// ---------------------------------------------------------------- fedavg

struct FedAvgFixture {
  data::Dataset train, test;
  data::ClientIndices parts;

  explicit FedAvgFixture(std::uint64_t seed) {
    Rng rng(seed);
    auto full = data::synthetic_mnist(500, rng);
    auto split = data::train_test_split(full, 0.2, rng);
    train = std::move(split.train);
    test = std::move(split.test);
    parts = data::partition_iid(train, 5, rng);
  }

  fl::ModelFactory factory() const {
    return [](Rng& rng) { return nn::make_cnn2(1, 28, 10, rng); };
  }
};

TEST(FedAvg, LearnsOverRounds) {
  FedAvgFixture fx(1);
  fl::FedAvgConfig cfg;
  cfg.n_clients = 5;
  cfg.client_fraction = 0.4;
  cfg.local_epochs = 2;
  cfg.batch_size = 16;
  cfg.rounds = 8;
  cfg.lr = 0.05F;
  cfg.seed = 2;
  fl::FedAvgTrainer trainer(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const auto hist = trainer.run();
  EXPECT_EQ(hist.size(), 8U);
  EXPECT_GT(hist.final_accuracy(), 0.55);
  EXPECT_GT(hist.final_accuracy(), hist.rounds().front().test_accuracy);
}

TEST(FedAvg, DeterministicGivenSeed) {
  FedAvgFixture fx(3);
  fl::FedAvgConfig cfg;
  cfg.n_clients = 5;
  cfg.client_fraction = 0.4;
  cfg.local_epochs = 1;
  cfg.batch_size = 32;
  cfg.rounds = 2;
  cfg.seed = 7;
  fl::FedAvgTrainer t1(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  fl::FedAvgTrainer t2(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const auto h1 = t1.run();
  const auto h2 = t2.run();
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1.rounds()[i].test_accuracy, h2.rounds()[i].test_accuracy);
  }
}

TEST(FedAvg, TracksUplinkBytes) {
  FedAvgFixture fx(4);
  fl::FedAvgConfig cfg;
  cfg.n_clients = 5;
  cfg.client_fraction = 0.4;  // 2 clients/round
  cfg.local_epochs = 1;
  cfg.batch_size = 64;
  cfg.rounds = 2;
  cfg.seed = 5;
  fl::FedAvgTrainer trainer(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const auto hist = trainer.run();
  const auto scalars = static_cast<std::uint64_t>(trainer.update_scalars());
  EXPECT_EQ(hist.rounds()[0].bytes_uplink, 2 * scalars * 4);
  EXPECT_EQ(hist.rounds()[0].clients, 2U);
}

TEST(FedAvg, CorruptedUplinkDegrades) {
  FedAvgFixture fx(6);
  fl::FedAvgConfig cfg;
  cfg.n_clients = 5;
  cfg.client_fraction = 0.4;
  cfg.local_epochs = 1;
  cfg.batch_size = 16;
  cfg.rounds = 4;
  cfg.seed = 8;
  fl::FedAvgTrainer clean(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const double clean_acc = clean.run().final_accuracy();

  const auto chan = channel::make_packet_loss(0.3, 1024);
  fl::FedAvgTrainer lossy(fx.factory(), fx.train, fx.parts, fx.test, cfg,
                          chan.get());
  const auto lossy_hist = lossy.run();
  EXPECT_LT(lossy_hist.final_accuracy(), clean_acc);
  EXPECT_GT(lossy_hist.rounds()[0].packets_lost, 0U);
}

TEST(FedAvg, ValidatesPartitionSize) {
  FedAvgFixture fx(9);
  fl::FedAvgConfig cfg;
  cfg.n_clients = 6;  // but partition has 5
  EXPECT_THROW(fl::FedAvgTrainer(fx.factory(), fx.train, fx.parts, fx.test,
                                 cfg),
               Error);
}

// ---------------------------------------------------------------- fedhd

struct FedHdFixture {
  std::vector<fl::HdClientData> clients;
  fl::HdClientData test;
  static constexpr std::int64_t kDim = 1024;
  static constexpr std::int64_t kClasses = 4;

  explicit FedHdFixture(std::uint64_t seed, std::size_t n_clients = 6) {
    Rng rng(seed);
    data::IsoletSpec spec;
    spec.dims = 32;
    spec.classes = kClasses;
    spec.n = 600;
    spec.separation = 1.4;
    const auto ds = data::make_isolet_like(spec, rng);
    Rng enc_rng = rng.fork("enc");
    hdc::RandomProjectionEncoder enc(32, kDim, enc_rng);
    auto split = data::train_test_split(ds, 0.2, rng);
    test = fl::HdClientData{enc.encode(split.test.x), split.test.labels};
    const auto parts = data::partition_iid(split.train, n_clients, rng);
    for (const auto& part : parts) {
      const auto sub = split.train.subset(part);
      clients.push_back(fl::HdClientData{enc.encode(sub.x), sub.labels});
    }
  }

  fl::FedHdConfig config(std::uint64_t seed) const {
    fl::FedHdConfig cfg;
    cfg.n_clients = clients.size();
    cfg.client_fraction = 0.5;
    cfg.local_epochs = 2;
    cfg.rounds = 5;
    cfg.num_classes = kClasses;
    cfg.hd_dim = kDim;
    cfg.seed = seed;
    return cfg;
  }
};

TEST(FedHd, ConvergesOnSeparableData) {
  FedHdFixture fx(10);
  fl::FedHdTrainer trainer(fx.clients, fx.test, fx.config(11));
  const auto hist = trainer.run();
  EXPECT_EQ(hist.size(), 5U);
  EXPECT_GT(hist.final_accuracy(), 0.9);
  // One-shot bundling gives high accuracy immediately (fast convergence).
  EXPECT_GT(hist.rounds().front().test_accuracy, 0.8);
}

TEST(FedHd, DeterministicGivenSeed) {
  FedHdFixture fx(12);
  fl::FedHdTrainer t1(fx.clients, fx.test, fx.config(13));
  fl::FedHdTrainer t2(fx.clients, fx.test, fx.config(13));
  const auto h1 = t1.run();
  const auto h2 = t2.run();
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1.rounds()[i].test_accuracy, h2.rounds()[i].test_accuracy);
  }
}

TEST(FedHd, SumAggregationAlsoConverges) {
  FedHdFixture fx(14);
  auto cfg = fx.config(15);
  cfg.average_aggregation = false;  // literal paper Eq. 1
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  EXPECT_GT(trainer.run().final_accuracy(), 0.9);
}

TEST(FedHd, UpdateBytesAccounting) {
  FedHdFixture fx(16);
  auto cfg = fx.config(17);
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  // Perfect mode with quantizer: B=16 bits per scalar.
  EXPECT_EQ(trainer.update_bytes(),
            static_cast<std::uint64_t>(FedHdFixture::kClasses) *
                FedHdFixture::kDim * 2);
}

TEST(FedHd, RobustToPacketLoss) {
  FedHdFixture fx(18);
  auto cfg = fx.config(19);
  cfg.uplink.mode = channel::HdUplinkMode::PacketLoss;
  cfg.uplink.loss_rate = 0.2;
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  const auto hist = trainer.run();
  EXPECT_GT(hist.final_accuracy(), 0.85) << "HD should tolerate 20% loss";
  EXPECT_GT(hist.rounds()[0].packets_lost, 0U);
}

TEST(FedHd, RobustToBitErrorsWithQuantizer) {
  FedHdFixture fx(20);
  auto cfg = fx.config(21);
  cfg.uplink.mode = channel::HdUplinkMode::BitErrors;
  cfg.uplink.ber = 1e-4;
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  const auto hist = trainer.run();
  EXPECT_GT(hist.final_accuracy(), 0.8);
  EXPECT_GT(hist.rounds()[0].bit_flips, 0U);
}

TEST(FedHd, NoisyDownlinkTolerated) {
  // Relax the paper's error-free broadcast assumption: FHDnn should also
  // tolerate a moderately noisy downlink, by the same holographic argument.
  FedHdFixture fx(50);
  auto cfg = fx.config(51);
  cfg.downlink.mode = channel::HdUplinkMode::Awgn;
  cfg.downlink.snr_db = 15.0;
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  EXPECT_GT(trainer.run().final_accuracy(), 0.85);
}

TEST(FedHd, PerfectDownlinkUnchangedBehaviour) {
  // Default downlink must reproduce the original (uplink-only) results
  // bit-for-bit — the RNG fork for the downlink only fires when enabled.
  FedHdFixture fx(52);
  auto cfg = fx.config(53);
  fl::FedHdTrainer a(fx.clients, fx.test, cfg);
  cfg.downlink.snr_db = 3.0;  // parameters differ but mode stays Perfect
  fl::FedHdTrainer b(fx.clients, fx.test, cfg);
  const auto ha = a.run();
  const auto hb = b.run();
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha.rounds()[i].test_accuracy, hb.rounds()[i].test_accuracy);
  }
}

TEST(FedHd, AdaptiveRefineConverges) {
  FedHdFixture fx(40);
  auto cfg = fx.config(41);
  cfg.adaptive_refine = true;
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  EXPECT_GT(trainer.run().final_accuracy(), 0.9);
}

TEST(FedHd, BinaryTransportStillConverges) {
  FedHdFixture fx(30);
  auto cfg = fx.config(31);
  cfg.uplink.binary_transport = true;
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  const auto hist = trainer.run();
  EXPECT_GT(hist.final_accuracy(), 0.85);
  // 1 bit per scalar.
  EXPECT_EQ(trainer.update_bytes(),
            static_cast<std::uint64_t>(FedHdFixture::kClasses) *
                FedHdFixture::kDim / 8);
}

TEST(FedHd, SurvivesClientDropout) {
  FedHdFixture fx(32);
  auto cfg = fx.config(33);
  cfg.dropout_prob = 0.5;
  cfg.rounds = 6;
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  const auto hist = trainer.run();
  EXPECT_GT(hist.final_accuracy(), 0.85);
  // Some rounds must have had fewer than the sampled 3 participants.
  bool saw_reduced = false;
  for (const auto& m : hist.rounds()) saw_reduced |= (m.clients < 3);
  EXPECT_TRUE(saw_reduced);
}

TEST(FedAvg, SurvivesModerateDropout) {
  FedAvgFixture fx(33);
  fl::FedAvgConfig cfg;
  cfg.n_clients = 5;
  cfg.client_fraction = 0.8;  // 4 sampled per round
  cfg.local_epochs = 1;
  cfg.batch_size = 16;
  cfg.rounds = 6;
  cfg.dropout_prob = 0.25;
  cfg.seed = 34;
  fl::FedAvgTrainer trainer(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const auto hist = trainer.run();
  EXPECT_GT(hist.final_accuracy(), 0.4);
  bool saw_reduced = false;
  for (const auto& m : hist.rounds()) saw_reduced |= (m.clients < 4);
  EXPECT_TRUE(saw_reduced);
}

TEST(FedHd, BurstLossToleratedLikeIidLoss) {
  FedHdFixture fx(35);
  auto cfg = fx.config(36);
  cfg.uplink.mode = channel::HdUplinkMode::BurstLoss;
  cfg.uplink.packet_bits = 1024;
  fl::FedHdTrainer trainer(fx.clients, fx.test, cfg);
  EXPECT_GT(trainer.run().final_accuracy(), 0.85);
}

TEST(FedHd, ValidatesInputs) {
  FedHdFixture fx(22);
  auto cfg = fx.config(23);
  cfg.n_clients = fx.clients.size() + 1;
  EXPECT_THROW(fl::FedHdTrainer(fx.clients, fx.test, cfg), Error);
  cfg = fx.config(23);
  cfg.hd_dim = 999;  // mismatched d
  EXPECT_THROW(fl::FedHdTrainer(fx.clients, fx.test, cfg), Error);
}

}  // namespace
}  // namespace fhdnn
