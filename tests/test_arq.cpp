// Tests for the reliable-delivery layer (channel/arq.hpp): CRC-32 known-
// answer vectors, backoff schedule, ARQ framing/retransmission/residual
// behavior and its determinism, plus the channel/LTE edge cases that the
// deadline-round machinery leans on (packet_error_rate, LteLinkModel).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "channel/arq.hpp"
#include "channel/channel.hpp"
#include "channel/lte.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhdnn::channel {
namespace {

// ------------------------------------------------------------ CRC-32 KATs

TEST(Crc32, MatchesStandardCheckValues) {
  // The IEEE 802.3 reflected CRC-32 check value and friends.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926U);
  EXPECT_EQ(crc32("", 0), 0x00000000U);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43U);
  EXPECT_EQ(crc32("abc", 3), 0x352441C2U);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog", 43),
            0x414FA339U);
}

TEST(Crc32, FloatOverloadHashesTheByteRepresentation) {
  const std::vector<float> payload{1.5F, -2.25F, 0.0F, 3.0e7F};
  EXPECT_EQ(crc32(payload.data(), payload.size()),
            crc32(static_cast<const void*>(payload.data()),
                  payload.size() * sizeof(float)));
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<float> payload(64, 1.0F);
  const std::uint32_t clean = crc32(payload.data(), payload.size());
  std::uint32_t bits = 0;
  std::memcpy(&bits, &payload[17], sizeof(bits));
  bits ^= 1U << 13U;
  std::memcpy(&payload[17], &bits, sizeof(bits));
  EXPECT_NE(crc32(payload.data(), payload.size()), clean);
}

// -------------------------------------------------------- backoff schedule

TEST(ArqBackoff, GrowsExponentiallyAndCaps) {
  ArqConfig cfg;
  cfg.initial_backoff_seconds = 0.05;
  cfg.backoff_factor = 2.0;
  cfg.max_backoff_seconds = 0.3;
  EXPECT_DOUBLE_EQ(arq_backoff_seconds(cfg, 1), 0.05);
  EXPECT_DOUBLE_EQ(arq_backoff_seconds(cfg, 2), 0.1);
  EXPECT_DOUBLE_EQ(arq_backoff_seconds(cfg, 3), 0.2);
  EXPECT_DOUBLE_EQ(arq_backoff_seconds(cfg, 4), 0.3);  // capped
  EXPECT_DOUBLE_EQ(arq_backoff_seconds(cfg, 40), 0.3);
  EXPECT_THROW(arq_backoff_seconds(cfg, 0), Error);
}

// ------------------------------------------------------- ReliableChannel

TEST(ReliableChannel, RejectsInvalidConfig) {
  ArqConfig tiny;
  tiny.packet_bits = 16;  // smaller than one float
  EXPECT_THROW(ReliableChannel(nullptr, tiny), Error);
  ArqConfig negative;
  negative.max_retries = -1;
  EXPECT_THROW(ReliableChannel(nullptr, negative), Error);
  ArqConfig shrink;
  shrink.backoff_factor = 0.5;
  EXPECT_THROW(ReliableChannel(nullptr, shrink), Error);
}

TEST(ReliableChannel, PerfectLinkChargesFramingOverheadOnly) {
  ArqConfig cfg;
  cfg.packet_bits = 128;  // 4 floats per frame
  const ReliableChannel arq(nullptr, cfg);
  std::vector<float> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<float>(i);
  }
  const auto original = payload;
  Rng rng(7);
  const auto stats = arq.apply(payload, rng);
  EXPECT_EQ(payload, original);
  EXPECT_EQ(stats.payload_scalars, 100U);
  EXPECT_EQ(stats.packets_total, 25U);  // ceil(100 / 4)
  // 100 floats + one 32-bit CRC per frame, each sent exactly once.
  EXPECT_EQ(stats.bits_on_air, 100U * 32U + 25U * 32U);
  EXPECT_EQ(stats.retransmissions, 0U);
  EXPECT_EQ(stats.residual_errors, 0U);
  EXPECT_DOUBLE_EQ(stats.backoff_seconds, 0.0);  // selective repeat, no NAKs
}

TEST(ReliableChannel, StopAndWaitPaysAckRttPerAttempt) {
  ArqConfig cfg;
  cfg.mode = ArqMode::StopAndWait;
  cfg.packet_bits = 128;
  cfg.ack_rtt_seconds = 0.01;
  const ReliableChannel arq(nullptr, cfg);
  std::vector<float> payload(16, 1.0F);  // 4 frames, one attempt each
  Rng rng(7);
  const auto stats = arq.apply(payload, rng);
  EXPECT_EQ(stats.retransmissions, 0U);
  EXPECT_DOUBLE_EQ(stats.backoff_seconds, 4 * 0.01);
}

TEST(ReliableChannel, EmptyPayloadIsFree) {
  const ReliableChannel arq(nullptr, {});
  std::vector<float> payload;
  Rng rng(3);
  const auto stats = arq.apply(payload, rng);
  EXPECT_EQ(stats.bits_on_air, 0U);
  EXPECT_EQ(stats.packets_total, 0U);
}

TEST(ReliableChannel, RetransmitsCorruptedFramesUntilClean) {
  // BER high enough that most frames need at least one retransmission, with
  // retries to spare: delivery ends up clean and every extra attempt is
  // charged on the air and in backoff time.
  const auto inner = make_bit_error(1e-3);
  ArqConfig cfg;
  cfg.packet_bits = 1024;  // 32 floats per frame
  cfg.max_retries = 64;
  const ReliableChannel arq(inner.get(), cfg);
  std::vector<float> payload(256, 1.25F);
  const auto original = payload;
  Rng rng(11);
  const auto stats = arq.apply(payload, rng);
  EXPECT_EQ(payload, original);  // clean delivery
  EXPECT_EQ(stats.residual_errors, 0U);
  EXPECT_GT(stats.retransmissions, 0U);
  // Nominal traffic is 256 floats + 8 CRCs; retransmissions exceed it.
  EXPECT_GT(stats.bits_on_air, 256U * 32U + 8U * 32U);
  EXPECT_GT(stats.backoff_seconds, 0.0);
  EXPECT_GT(stats.bit_flips, 0U);  // the inner channel really did corrupt
}

TEST(ReliableChannel, DeliversResidualErrorsWhenRetriesExhausted) {
  // Half the bits flip on every attempt and no retries are allowed: each
  // frame is delivered corrupted and counted as a residual error.
  const auto inner = make_bit_error(0.5);
  ArqConfig cfg;
  cfg.packet_bits = 1024;
  cfg.max_retries = 0;
  const ReliableChannel arq(inner.get(), cfg);
  std::vector<float> payload(128, 1.0F);
  const auto original = payload;
  Rng rng(13);
  const auto stats = arq.apply(payload, rng);
  EXPECT_EQ(stats.retransmissions, 0U);
  EXPECT_EQ(stats.residual_errors, stats.packets_total);
  EXPECT_NE(payload, original);  // corrupted copy delivered anyway
  EXPECT_EQ(stats.bits_on_air, 128U * 32U + stats.packets_total * 32U);
}

TEST(ReliableChannel, DeterministicGivenTheCallerStream) {
  const auto inner = make_bit_error(5e-4);
  const ReliableChannel arq(inner.get(), {});
  std::vector<float> a(200, 2.0F);
  std::vector<float> b(200, 2.0F);
  Rng ra(21);
  Rng rb(21);
  const auto sa = arq.apply(a, ra);
  const auto sb = arq.apply(b, rb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.bits_on_air, sb.bits_on_air);
  EXPECT_EQ(sa.retransmissions, sb.retransmissions);
  EXPECT_EQ(sa.residual_errors, sb.residual_errors);
  EXPECT_EQ(sa.bit_flips, sb.bit_flips);
  EXPECT_DOUBLE_EQ(sa.backoff_seconds, sb.backoff_seconds);
}

TEST(ReliableChannel, ApplyIsApplyScaledAtOne) {
  const auto inner = make_bit_error(5e-4);
  const ReliableChannel arq(inner.get(), {});
  std::vector<float> a(200, 2.0F);
  std::vector<float> b(200, 2.0F);
  Rng ra(33);
  Rng rb(33);
  const auto sa = arq.apply(a, ra);
  const auto sb = arq.apply_scaled(b, rb, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.bits_on_air, sb.bits_on_air);
  EXPECT_EQ(sa.retransmissions, sb.retransmissions);
}

TEST(ReliableChannel, ErrorScaleRaisesTheRetransmissionCost) {
  // The fault model's per-client link multiplier reaches the inner channel
  // through the decorator: a much worse link costs many more attempts.
  const auto inner = make_bit_error(1e-4);
  ArqConfig cfg;
  cfg.max_retries = 64;
  const ReliableChannel arq(inner.get(), cfg);
  std::vector<float> nominal(512, 1.0F);
  std::vector<float> degraded(512, 1.0F);
  Rng ra(5);
  Rng rb(5);
  const auto s1 = arq.apply_scaled(nominal, ra, 1.0);
  const auto s50 = arq.apply_scaled(degraded, rb, 50.0);
  EXPECT_GT(s50.retransmissions, s1.retransmissions);
  EXPECT_GT(s50.bits_on_air, s1.bits_on_air);
}

TEST(ReliableChannel, NameDescribesModeAndInner) {
  const auto inner = make_bit_error(1e-3);
  const ReliableChannel arq(inner.get(), {});
  EXPECT_NE(arq.name().find("selective-repeat"), std::string::npos);
  const ReliableChannel bare(nullptr, {});
  EXPECT_NE(bare.name().find("perfect"), std::string::npos);
}

// --------------------------------------- packet_error_rate / LTE edge cases

TEST(PacketErrorRate, MonotoneInBerAndPacketSize) {
  EXPECT_DOUBLE_EQ(packet_error_rate(0.0, 8192), 0.0);
  EXPECT_DOUBLE_EQ(packet_error_rate(1.0, 8), 1.0);
  EXPECT_LT(packet_error_rate(1e-5, 1024), packet_error_rate(1e-4, 1024));
  EXPECT_LT(packet_error_rate(1e-4, 1024), packet_error_rate(1e-4, 8192));
  // Small-p limit: 1 - (1-p)^n ~= n*p.
  EXPECT_NEAR(packet_error_rate(1e-8, 1000), 1e-5, 1e-8);
}

TEST(LteLinkModel, UploadSecondsEdgeCases) {
  LteLinkModel link;
  EXPECT_DOUBLE_EQ(link.upload_seconds(0, true), 0.0);
  EXPECT_DOUBLE_EQ(link.upload_seconds(0, false), 0.0);
  // Exact rate arithmetic, including the 1/N medium share charged as N x
  // the dedicated-link time.
  EXPECT_DOUBLE_EQ(link.upload_seconds(5'000'000, true), 1.0);
  EXPECT_DOUBLE_EQ(link.upload_seconds(1'600'000, false), 1.0);
  link.shared_clients = 10;
  EXPECT_DOUBLE_EQ(link.upload_seconds(1'600'000, false), 10.0);
  link.shared_clients = 0;
  EXPECT_THROW(link.upload_seconds(1, true), Error);
  LteLinkModel dead;
  dead.uncoded_rate_bps = 0.0;
  EXPECT_THROW(dead.upload_seconds(1, true), Error);
}

TEST(LteLinkModel, ValidateEnforcesPhysicalConfigurations) {
  LteLinkModel link;
  EXPECT_NO_THROW(link.validate());  // paper defaults are feasible
  LteLinkModel shared_zero;
  shared_zero.shared_clients = 0;
  EXPECT_THROW(shared_zero.validate(), Error);
  LteLinkModel negative;
  negative.coded_rate_bps = -1.0;
  EXPECT_THROW(negative.validate(), Error);
  // At -30 dB the Shannon capacity of 5 MHz is ~7 kbit/s: neither default
  // rate is achievable.
  LteLinkModel impossible;
  impossible.snr_db = -30.0;
  EXPECT_THROW(impossible.validate(), Error);
  EXPECT_LT(impossible.shannon_capacity_bps(), 1e4);
  EXPECT_GT(impossible.shannon_capacity_bps(), 0.0);
}

}  // namespace
}  // namespace fhdnn::channel
