// End-to-end serving tests over real processes and real sockets: fork/exec
// the fhdnnd and fhdnn-client binaries (paths injected by CMake as
// FHDNND_BIN / FHDNN_CLIENT_BIN), run golden workloads over TCP, and diff
// the --history-out artifact against an in-process run of the identical
// workload — hexfloat, byte-for-byte.
//
// The crash test is the real thing: SIGKILL the server once its first
// round-boundary snapshot is durable, restart it with --resume on the same
// port, and require the client to ride out the restart and the final
// history to match an uninterrupted run.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>  // fhdnn-lint: allow(raw-thread) — sleep_for only
#include <vector>

#include "workload.hpp"

namespace fhdnn {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

pid_t spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

struct Exit {
  bool done = false;
  int status = 0;  ///< raw waitpid status
};

Exit wait_exit(pid_t pid, int timeout_ms) {
  Exit e;
  for (int waited = 0; waited <= timeout_ms; waited += 20) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) {
      e.done = true;
      e.status = status;
      return e;
    }
    sleep_ms(20);
  }
  return e;
}

void kill_and_reap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  (void)::waitpid(pid, &status, 0);
}

int read_port(const std::string& port_file, int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; waited += 20) {
    if (file_exists(port_file)) {
      int port = 0;
      std::sscanf(read_file(port_file).c_str(), "%d", &port);
      if (port > 0) return port;
    }
    sleep_ms(20);
  }
  return 0;
}

/// The reference string every served run must reproduce: the same workload
/// run in process, rendered by the same formatter the server uses for
/// --history-out.
std::string golden_history(const std::string& proto, int rounds) {
  workload::Options opt;
  opt.protocol = proto;
  opt.rounds = rounds;
  return workload::format_history(workload::make_workload(opt)->run());
}

std::string tmp(const std::string& name) {
  return testing::TempDir() + "fhdnn_e2e_" + name;
}

void clean(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

// ---------------------------------------------------------------- plain runs

TEST(ServingE2e, FedAvgTwoWorkersOverTcpMatchesInProcess) {
  const std::string port_file = tmp("fedavg.port");
  const std::string history = tmp("fedavg.hist");
  clean(port_file);
  clean(history);

  const pid_t server = spawn({FHDNND_BIN, "--protocol", "fedavg", "--rounds",
                              "3", "--workers", "2", "--port-file", port_file,
                              "--history-out", history});
  ASSERT_GT(server, 0);
  std::vector<pid_t> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(spawn({FHDNN_CLIENT_BIN, "--protocol", "fedavg",
                             "--rounds", "3", "--port-file", port_file}));
    ASSERT_GT(clients.back(), 0);
  }

  const Exit se = wait_exit(server, 300000);
  if (!se.done) kill_and_reap(server);
  ASSERT_TRUE(se.done) << "fhdnnd did not finish";
  EXPECT_EQ(se.status, 0) << "fhdnnd exit status " << se.status;
  for (const pid_t c : clients) {
    const Exit ce = wait_exit(c, 60000);
    if (!ce.done) kill_and_reap(c);
    ASSERT_TRUE(ce.done) << "fhdnn-client did not finish";
    EXPECT_EQ(ce.status, 0);
  }

  const std::string served = read_file(history);
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served, golden_history("fedavg", 3));
}

TEST(ServingE2e, FedHdSingleWorkerOverTcpMatchesInProcess) {
  const std::string port_file = tmp("fedhd.port");
  const std::string history = tmp("fedhd.hist");
  clean(port_file);
  clean(history);

  const pid_t server = spawn({FHDNND_BIN, "--protocol", "fedhd", "--rounds",
                              "3", "--workers", "1", "--port-file", port_file,
                              "--history-out", history});
  ASSERT_GT(server, 0);
  const pid_t client = spawn({FHDNN_CLIENT_BIN, "--protocol", "fedhd",
                              "--rounds", "3", "--port-file", port_file});
  ASSERT_GT(client, 0);

  const Exit se = wait_exit(server, 300000);
  if (!se.done) kill_and_reap(server);
  ASSERT_TRUE(se.done) << "fhdnnd did not finish";
  EXPECT_EQ(se.status, 0);
  const Exit ce = wait_exit(client, 60000);
  if (!ce.done) kill_and_reap(client);
  ASSERT_TRUE(ce.done);
  EXPECT_EQ(ce.status, 0);

  const std::string served = read_file(history);
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served, golden_history("fedhd", 3));
}

// ------------------------------------------------------------ kill -9 resume

TEST(ServingE2e, SigkilledServerRestartsFromCheckpointAndFinishes) {
  const int rounds = 8;  // wide window between first snapshot and run end
  const std::string port_file = tmp("kill.port");
  const std::string history = tmp("kill.hist");
  const std::string ckpt = tmp("kill.snap");
  clean(port_file);
  clean(history);
  clean(ckpt);

  const pid_t victim =
      spawn({FHDNND_BIN, "--protocol", "fedhd", "--rounds",
             std::to_string(rounds), "--workers", "1", "--port-file",
             port_file, "--checkpoint", ckpt});
  ASSERT_GT(victim, 0);
  const int port = read_port(port_file, 60000);
  ASSERT_GT(port, 0) << "fhdnnd never published its port";

  const pid_t client =
      spawn({FHDNN_CLIENT_BIN, "--protocol", "fedhd", "--rounds",
             std::to_string(rounds), "--port", std::to_string(port)});
  ASSERT_GT(client, 0);

  // SIGKILL the server the moment its first round-boundary snapshot is
  // durable — no shutdown frames, no flushes, exactly the failure the
  // checkpoint protocol exists for.
  bool snapshot_seen = false;
  for (int waited = 0; waited <= 120000; waited += 5) {
    if (file_exists(ckpt)) {
      snapshot_seen = true;
      break;
    }
    sleep_ms(5);
  }
  if (!snapshot_seen) {
    kill_and_reap(victim);
    kill_and_reap(client);
    FAIL() << "no snapshot appeared at " << ckpt;
  }
  ::kill(victim, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Restart on the same port (SO_REUSEADDR) with --resume; the client's
  // reconnect loop is already dialing it.
  const pid_t revived =
      spawn({FHDNND_BIN, "--protocol", "fedhd", "--rounds",
             std::to_string(rounds), "--workers", "1", "--port",
             std::to_string(port), "--checkpoint", ckpt, "--resume",
             "--history-out", history});
  ASSERT_GT(revived, 0);

  const Exit se = wait_exit(revived, 300000);
  if (!se.done) kill_and_reap(revived);
  const Exit ce = wait_exit(client, se.done ? 60000 : 0);
  if (!ce.done) kill_and_reap(client);
  ASSERT_TRUE(se.done) << "restarted fhdnnd did not finish";
  EXPECT_EQ(se.status, 0) << "restarted fhdnnd exit status " << se.status;
  ASSERT_TRUE(ce.done) << "fhdnn-client did not finish";
  EXPECT_EQ(ce.status, 0);

  const std::string served = read_file(history);
  ASSERT_FALSE(served.empty());
  // The one equality the whole subsystem answers to: a kill -9'd server
  // restarted from its snapshot produces the exact history an
  // uninterrupted in-process run produces.
  EXPECT_EQ(served, golden_history("fedhd", rounds));
}

}  // namespace
}  // namespace fhdnn
