// Tests for the per-client fault layer (fl/faults.hpp) and the engine's
// deadline-based rounds (fl/engine.hpp): fault determinism, the
// sampled == clients + dropped + timed_out invariant, over-selection,
// first-K/deadline acceptance, and bit-identical histories across thread
// counts with every robustness knob turned ON.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "channel/arq.hpp"
#include "channel/channel.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/engine.hpp"
#include "fl/faults.hpp"
#include "fl/fedavg.hpp"
#include "fl/timeline.hpp"
#include "nn/resnet.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fhdnn {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel::num_threads()) {}
  ~ThreadGuard() { parallel::set_num_threads(saved_); }

 private:
  int saved_;
};

// ------------------------------------------------------------ FaultModel

TEST(FaultModel, DisabledByDefault) {
  const fl::FaultModel model;
  EXPECT_FALSE(model.enabled());
  EXPECT_TRUE(model.available(3, 7));
  EXPECT_DOUBLE_EQ(model.slowdown(3), 1.0);
  EXPECT_DOUBLE_EQ(model.error_scale(3), 1.0);
  EXPECT_TRUE(model.error_scales().empty());

  fl::FaultConfig off;
  EXPECT_FALSE(off.any());
  const fl::FaultModel built(off, 8, Rng(1));
  EXPECT_FALSE(built.enabled());
  EXPECT_TRUE(built.available(0, 1));
}

TEST(FaultModel, RejectsInvalidConfig) {
  const Rng root(1);
  fl::FaultConfig bad;
  bad.crash_prob = 1.0;
  EXPECT_THROW(fl::FaultModel(bad, 4, root), Error);
  bad = {};
  bad.straggler_slowdown = 0.5;
  bad.straggler_fraction = 0.5;
  EXPECT_THROW(fl::FaultModel(bad, 4, root), Error);
  bad = {};
  bad.outage_rounds = 0;
  bad.outage_prob = 0.1;
  EXPECT_THROW(fl::FaultModel(bad, 4, root), Error);
  bad = {};
  bad.error_multiplier_max = 0.5;
  EXPECT_THROW(fl::FaultModel(bad, 4, root), Error);
}

TEST(FaultModel, DeterministicInSeedClientAndRound) {
  fl::FaultConfig cfg;
  cfg.crash_prob = 0.3;
  cfg.straggler_fraction = 0.5;
  cfg.straggler_slowdown = 4.0;
  cfg.outage_prob = 0.2;
  cfg.error_multiplier_max = 10.0;
  const fl::FaultModel a(cfg, 16, Rng(42));
  const fl::FaultModel b(cfg, 16, Rng(42));
  EXPECT_EQ(a.error_scales(), b.error_scales());
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_DOUBLE_EQ(a.slowdown(c), b.slowdown(c));
    for (int r = 1; r <= 10; ++r) {
      EXPECT_EQ(a.crashed(c, r), b.crashed(c, r)) << "c=" << c << " r=" << r;
      EXPECT_EQ(a.in_outage(c, r), b.in_outage(c, r));
      // Pure functions: asking twice gives the same answer.
      EXPECT_EQ(a.crashed(c, r), a.crashed(c, r));
      EXPECT_EQ(a.available(c, r), !a.crashed(c, r) && !a.in_outage(c, r));
    }
  }
}

TEST(FaultModel, StaticTraitsRespectTheConfiguredRanges) {
  fl::FaultConfig cfg;
  cfg.straggler_fraction = 0.5;
  cfg.straggler_slowdown = 8.0;
  cfg.error_multiplier_max = 5.0;
  const fl::FaultModel model(cfg, 64, Rng(7));
  ASSERT_EQ(model.error_scales().size(), 64U);
  bool saw_straggler = false;
  bool saw_healthy = false;
  bool saw_scaled = false;
  for (std::size_t c = 0; c < 64; ++c) {
    const double s = model.slowdown(c);
    EXPECT_TRUE(s == 1.0 || s == 8.0);
    saw_straggler = saw_straggler || s == 8.0;
    saw_healthy = saw_healthy || s == 1.0;
    const double e = model.error_scale(c);
    EXPECT_GE(e, 1.0);
    EXPECT_LE(e, 5.0);
    saw_scaled = saw_scaled || e > 1.0;
  }
  EXPECT_TRUE(saw_straggler);  // fraction 0.5 over 64 clients
  EXPECT_TRUE(saw_healthy);
  EXPECT_TRUE(saw_scaled);
}

TEST(FaultModel, OutageWindowsPersistForConfiguredRounds) {
  fl::FaultConfig cfg;
  cfg.outage_prob = 0.15;
  cfg.outage_rounds = 3;
  const fl::FaultModel model(cfg, 8, Rng(9));
  bool saw_outage = false;
  for (std::size_t c = 0; c < 8; ++c) {
    for (int r = 1; r <= 40; ++r) {
      // A round that *starts* an outage (not in one at r, in one at r+1)
      // keeps the client out for the full window length.
      if (!model.in_outage(c, r) && model.in_outage(c, r + 1)) {
        saw_outage = true;
        EXPECT_TRUE(model.in_outage(c, r + 2));
        EXPECT_TRUE(model.in_outage(c, r + 3));
      }
    }
  }
  EXPECT_TRUE(saw_outage);
}

// ----------------------------------------------- engine + faults (mock)

/// Minimal protocol whose transport stats scale with the client id, so
/// deadline acceptance sees heterogeneous delivery times.
class MockProtocol final : public fl::RoundProtocol {
 public:
  void begin_round(const Rng& /*round_rng*/, std::size_t n) override {
    last_slots = n;
  }

  fl::ClientReport run_client(std::size_t /*slot*/, std::size_t client,
                              const Rng& /*round_rng*/,
                              bool delivered) override {
    fl::ClientReport r;
    r.loss = 1.0;
    if (delivered) {
      r.stats.payload_bytes = 100;
      r.stats.bits_on_air = 800 * (client + 1);
      r.stats.retransmissions = client;
      r.stats.residual_errors = client % 2;
      r.stats.backoff_seconds = 0.001 * static_cast<double>(client);
    }
    return r;
  }

  void reduce(const std::vector<std::size_t>& participants,
              const std::vector<char>& delivered) override {
    last_participants = participants;
    last_delivered = delivered;
  }

  double evaluate() override { return 0.5; }

  std::size_t last_slots = 0;
  std::vector<std::size_t> last_participants;
  std::vector<char> last_delivered;
};

fl::TimelineConfig small_timeline() {
  fl::TimelineConfig t;
  t.update_bits = 1'000'000;
  t.fhdnn = false;
  t.compute_jitter = 0.1;
  return t;
}

TEST(EngineFaults, CrashesAndOutagesFoldIntoDropped) {
  MockProtocol protocol;
  fl::EngineConfig cfg;
  cfg.n_clients = 10;
  cfg.client_fraction = 1.0;
  cfg.rounds = 10;
  cfg.seed = 3;
  cfg.faults.crash_prob = 0.3;
  cfg.faults.outage_prob = 0.1;
  fl::RoundEngine engine(cfg, protocol);
  EXPECT_TRUE(engine.faults().enabled());
  const auto h = engine.run();
  EXPECT_GT(h.total_dropped(), 0U);
  EXPECT_EQ(h.total_timed_out(), 0U);  // no deadline configured
  for (const auto& m : h.rounds()) {
    EXPECT_EQ(m.clients + m.dropped + m.timed_out, m.sampled);
    EXPECT_DOUBLE_EQ(m.simulated_round_seconds, 0.0);
  }
}

TEST(EngineDeadline, OverSelectsAndAcceptsFirstK) {
  MockProtocol protocol;
  fl::EngineConfig cfg;
  cfg.n_clients = 20;
  cfg.client_fraction = 0.4;  // K = 8
  cfg.rounds = 3;
  cfg.seed = 5;
  cfg.deadline.enabled = true;
  cfg.deadline.timeline = small_timeline();
  cfg.deadline.over_selection = 0.5;   // draw ceil(8 * 1.5) = 12
  cfg.deadline.deadline_factor = 50.0; // generous: nobody misses the cutoff
  fl::RoundEngine engine(cfg, protocol);
  EXPECT_GT(engine.deadline_seconds(), 0.0);
  const auto h = engine.run();
  for (const auto& m : h.rounds()) {
    EXPECT_EQ(m.sampled, 12U);
    EXPECT_EQ(m.clients, 8U);  // exactly K accepted
    EXPECT_EQ(m.dropped, 0U);
    EXPECT_EQ(m.timed_out, 4U);  // the over-selection surplus is discarded
    EXPECT_GT(m.simulated_round_seconds, 0.0);
    EXPECT_LE(m.simulated_round_seconds, engine.deadline_seconds());
    // ARQ counters flow from transport stats into the round metrics.
    EXPECT_GT(m.retransmissions, 0U);
  }
  // Only accepted slots reach the aggregator.
  std::size_t accepted = 0;
  for (const char f : protocol.last_delivered) accepted += (f != 0) ? 1U : 0U;
  EXPECT_EQ(accepted, 8U);
}

TEST(EngineDeadline, TightDeadlineTimesOutStragglers) {
  MockProtocol protocol;
  fl::EngineConfig cfg;
  cfg.n_clients = 16;
  cfg.client_fraction = 0.5;  // K = 8
  cfg.rounds = 5;
  cfg.seed = 11;
  cfg.faults.straggler_fraction = 0.5;
  cfg.faults.straggler_slowdown = 100.0;  // way past any sane deadline
  cfg.deadline.enabled = true;
  cfg.deadline.timeline = small_timeline();
  cfg.deadline.over_selection = 0.0;
  cfg.deadline.deadline_factor = 3.0;
  fl::RoundEngine engine(cfg, protocol);
  const auto h = engine.run();
  EXPECT_GT(h.total_timed_out(), 0U);
  for (const auto& m : h.rounds()) {
    EXPECT_EQ(m.clients + m.dropped + m.timed_out, m.sampled);
    if (m.timed_out > 0) {
      // A short round waits out the full deadline.
      EXPECT_DOUBLE_EQ(m.simulated_round_seconds, engine.deadline_seconds());
    }
  }
  // Traffic is still charged for timed-out deliveries.
  EXPECT_GT(h.total_bits_on_air(), 0U);
}

TEST(EngineDeadline, RejectsInvalidConfig) {
  MockProtocol protocol;
  fl::EngineConfig cfg;
  cfg.n_clients = 4;
  cfg.client_fraction = 0.5;
  cfg.rounds = 1;
  cfg.deadline.enabled = true;
  cfg.deadline.timeline = small_timeline();
  cfg.deadline.over_selection = -0.1;
  EXPECT_THROW(fl::RoundEngine(cfg, protocol), Error);
  cfg.deadline.over_selection = 0.25;
  cfg.deadline.deadline_factor = 0.0;
  EXPECT_THROW(fl::RoundEngine(cfg, protocol), Error);
  cfg.deadline.deadline_factor = 1.5;
  cfg.deadline.timeline.update_bits = 0;  // FlTimeline requires a payload
  EXPECT_THROW(fl::RoundEngine(cfg, protocol), Error);
  cfg.deadline.timeline.update_bits = 1'000'000;
  cfg.deadline.timeline.link.snr_db = -30.0;  // rates exceed capacity
  EXPECT_THROW(fl::RoundEngine(cfg, protocol), Error);
}

// ------------------------------------------- FlTimeline deadline helpers

TEST(FlTimeline, ClientRoundSecondsChargesMeasuredDelivery) {
  const fl::FlTimeline timeline(small_timeline());
  channel::TransportStats stats;
  // No traffic, healthy client, no jitter: pure base compute.
  const double base = timeline.client_round_seconds(stats, 1.0, 1.0);
  EXPECT_GT(base, 0.0);
  // Slowdown and jitter multiply compute.
  EXPECT_DOUBLE_EQ(timeline.client_round_seconds(stats, 2.0, 1.0), 2.0 * base);
  EXPECT_DOUBLE_EQ(timeline.client_round_seconds(stats, 1.0, 1.5), 1.5 * base);
  // Bits on the air add the coded-link upload; backoff adds directly.
  stats.bits_on_air = 1'600'000;  // exactly 1 s at the coded rate
  EXPECT_DOUBLE_EQ(timeline.client_round_seconds(stats, 1.0, 1.0), base + 1.0);
  stats.backoff_seconds = 0.25;
  EXPECT_DOUBLE_EQ(timeline.client_round_seconds(stats, 1.0, 1.0),
                   base + 1.25);
  EXPECT_THROW(timeline.client_round_seconds(stats, 0.5, 1.0), Error);
  EXPECT_THROW(timeline.client_round_seconds(stats, 1.0, 0.0), Error);
}

TEST(FlTimeline, NominalRoundSecondsIsComputePlusConfiguredUpload) {
  auto cfg = small_timeline();
  const fl::FlTimeline timeline(cfg);
  channel::TransportStats nominal;
  nominal.bits_on_air = cfg.update_bits;
  EXPECT_DOUBLE_EQ(timeline.nominal_round_seconds(),
                   timeline.client_round_seconds(nominal, 1.0, 1.0));
}

// --------------------------- knobs-ON determinism across thread counts

/// FedAvg with *every* robustness knob on: ARQ uplink, crashes, stragglers,
/// outages, per-client link multipliers, deadline rounds with
/// over-selection. Histories must be bit-identical at any thread count.
fl::TrainingHistory run_full_robustness_fedavg() {
  Rng rng(51);
  auto full = data::synthetic_mnist(240, rng);
  auto split = data::train_test_split(full, 0.2, rng);
  auto parts = data::partition_iid(split.train, 6, rng);
  fl::ModelFactory factory = [](Rng& r) { return nn::make_cnn2(1, 28, 10, r); };

  fl::FedAvgConfig cfg;
  cfg.n_clients = 6;
  cfg.client_fraction = 0.5;
  cfg.local_epochs = 1;
  cfg.batch_size = 16;
  cfg.rounds = 3;
  cfg.seed = 52;
  cfg.dropout_prob = 0.2;
  cfg.faults.crash_prob = 0.1;
  cfg.faults.straggler_fraction = 0.3;
  cfg.faults.straggler_slowdown = 3.0;
  cfg.faults.outage_prob = 0.05;
  cfg.faults.error_multiplier_max = 4.0;
  cfg.deadline.enabled = true;
  cfg.deadline.over_selection = 0.5;
  cfg.deadline.deadline_factor = 3.0;
  cfg.deadline.timeline.fhdnn = false;
  cfg.deadline.timeline.update_bits = 1'000'000;

  const auto inner = channel::make_bit_error(1e-4);
  channel::ArqConfig arq;
  arq.max_retries = 4;
  const auto reliable = channel::make_reliable(inner.get(), arq);
  fl::FedAvgTrainer trainer(factory, split.train, parts, split.test, cfg,
                            reliable.get());
  return trainer.run();
}

TEST(EngineDeadline, FullRobustnessHistoryIsThreadCountInvariant) {
  ThreadGuard guard;
  parallel::set_num_threads(1);
  const auto serial = run_full_robustness_fedavg();
  parallel::set_num_threads(4);
  const auto parallel_hist = run_full_robustness_fedavg();

  ASSERT_EQ(serial.size(), parallel_hist.size());
  bool saw_arq_traffic = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial.rounds()[i];
    const auto& b = parallel_hist.rounds()[i];
    SCOPED_TRACE("round " + std::to_string(i + 1));
    EXPECT_EQ(a.test_accuracy, b.test_accuracy);  // exact doubles
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.clients, b.clients);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.bytes_uplink, b.bytes_uplink);
    EXPECT_EQ(a.bits_on_air, b.bits_on_air);
    EXPECT_EQ(a.bit_flips, b.bit_flips);
    EXPECT_EQ(a.packets_lost, b.packets_lost);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.residual_errors, b.residual_errors);
    EXPECT_EQ(a.simulated_round_seconds, b.simulated_round_seconds);
    EXPECT_EQ(a.clients + a.dropped + a.timed_out, a.sampled);
    saw_arq_traffic = saw_arq_traffic || a.bits_on_air > 0;
  }
  EXPECT_TRUE(saw_arq_traffic);
}

}  // namespace
}  // namespace fhdnn
