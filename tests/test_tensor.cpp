// Tests for src/tensor: Tensor container + ops.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

TEST(Shape, Numel) {
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({3}), 3);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_THROW(shape_numel({2, 0}), Error);
  EXPECT_THROW(shape_numel({-1}), Error);
}

TEST(Shape, NumelOverflowThrows) {
  // 2^31 * 2^31 * 4 overflows int64; the multiply must be checked, not wrap.
  const std::int64_t big = std::int64_t{1} << 31;
  EXPECT_THROW(shape_numel({big, big, 4}), Error);
  EXPECT_THROW(shape_numel({std::numeric_limits<std::int64_t>::max(), 2}),
               Error);
  // Near-limit but representable products are fine.
  EXPECT_EQ(shape_numel({big, 2}), big * 2);
}

TEST(Shape, ToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.at(0), 0.0F);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, FromValuesAndIndexing) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t(0, 0), 1.0F);
  EXPECT_EQ(t(0, 2), 3.0F);
  EXPECT_EQ(t(1, 0), 4.0F);
  EXPECT_EQ(t(1, 2), 6.0F);
  t(1, 1) = 9.0F;
  EXPECT_EQ(t.at(4), 9.0F);
}

TEST(Tensor, FourDimIndexing) {
  Tensor t(Shape{2, 2, 2, 2});
  t(1, 0, 1, 0) = 7.0F;
  // Row-major flat index: ((1*2+0)*2+1)*2+0 = 10.
  EXPECT_EQ(t.at(10), 7.0F);
}

TEST(Tensor, BoundsChecked) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t(2, 0), Error);
  EXPECT_THROW(t(0, 3), Error);
  EXPECT_THROW(t(-1, 0), Error);
  EXPECT_THROW(t.at(6), Error);
  EXPECT_THROW(t(0), Error);  // wrong arity
}

TEST(Tensor, ShapeValueMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, DimNegativeIndex) {
  Tensor t(Shape{2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), Error);
}

TEST(Tensor, Factories) {
  EXPECT_EQ(Tensor::ones(Shape{3}).sum(), 3.0);
  EXPECT_EQ(Tensor::full(Shape{2}, 2.5F).sum(), 5.0);
  const Tensor f = Tensor::from({1.0F, -1.0F});
  EXPECT_EQ(f.dim(0), 2);
  EXPECT_EQ(f(1), -1.0F);
}

TEST(Tensor, RandnStats) {
  Rng rng(1);
  const Tensor t = Tensor::randn(Shape{10000}, rng, 2.0F);
  EXPECT_NEAR(t.mean(), 0.0, 0.1);
  double var = 0.0;
  for (const float v : t.data()) var += v * v;
  EXPECT_NEAR(var / 10000.0, 4.0, 0.3);
}

TEST(Tensor, RandBounds) {
  Rng rng(2);
  const Tensor t = Tensor::rand(Shape{1000}, rng, -2.0F, -1.0F);
  EXPECT_GE(t.min(), -2.0F);
  EXPECT_LT(t.max(), -1.0F);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r(2, 1), 6.0F);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), Error);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape{4}, {1, -2, 3, 0});
  EXPECT_EQ(t.sum(), 2.0);
  EXPECT_EQ(t.mean(), 0.5);
  EXPECT_EQ(t.min(), -2.0F);
  EXPECT_EQ(t.max(), 3.0F);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(14.0), 1e-6);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {1, 1, 1});
  a.axpy(2.0F, b);
  EXPECT_EQ(a(0), 3.0F);
  EXPECT_EQ(a(2), 5.0F);
  a.scale(0.5F);
  EXPECT_EQ(a(0), 1.5F);
  Tensor c(Shape{2});
  EXPECT_THROW(a.axpy(1.0F, c), Error);
}

TEST(Tensor, EnsureShapeReusesCapacityAndChecksDims) {
  Tensor t(Shape{4, 8});
  const float* before = t.data().data();
  t.ensure_shape({8, 2});  // smaller: must reuse the existing buffer
  EXPECT_EQ(t.shape(), (Shape{8, 2}));
  EXPECT_EQ(t.numel(), 16);
  EXPECT_EQ(t.data().data(), before);
  t.ensure_shape(Shape{4, 8});  // back to the original size: still no growth
  EXPECT_EQ(t.data().data(), before);
  // Same shape is a no-op that preserves contents.
  t.fill(3.0F);
  t.ensure_shape({4, 8});
  EXPECT_EQ(t.at(0), 3.0F);
  // Invalid dims go through shape_numel's checks.
  EXPECT_THROW(t.ensure_shape({0, 3}), Error);
  EXPECT_THROW(t.ensure_shape({-2}), Error);
}

TEST(Tensor, AssertInvariantDetectsResizedBuffer) {
  Tensor t(Shape{2, 3});
  t.assert_invariant();  // healthy tensor passes
  // vec() exposes the raw vector for serialization; resizing it behind the
  // shape's back breaks the invariant that assert_invariant guards.
  t.vec().resize(5);
  EXPECT_THROW(t.assert_invariant(), Error);
  t.vec().resize(6);
  t.assert_invariant();
}

// ---------------------------------------------------------------- ops

TEST(Ops, AddSubMul) {
  const Tensor a(Shape{2}, {1, 2});
  const Tensor b(Shape{2}, {3, 5});
  EXPECT_EQ(ops::add(a, b)(1), 7.0F);
  EXPECT_EQ(ops::sub(b, a)(0), 2.0F);
  EXPECT_EQ(ops::mul(a, b)(1), 10.0F);
  EXPECT_EQ(ops::scale(a, 3.0F)(0), 3.0F);
  const Tensor c(Shape{3});
  EXPECT_THROW(ops::add(a, c), Error);
}

TEST(Ops, MatmulSmall) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c(0, 0), 58.0F);
  EXPECT_EQ(c(0, 1), 64.0F);
  EXPECT_EQ(c(1, 0), 139.0F);
  EXPECT_EQ(c(1, 1), 154.0F);
}

TEST(Ops, MatmulShapeMismatch) {
  const Tensor a(Shape{2, 3});
  const Tensor b(Shape{2, 2});
  EXPECT_THROW(ops::matmul(a, b), Error);
}

TEST(Ops, MatmulVariantsAgree) {
  Rng rng(3);
  const Tensor a = Tensor::randn(Shape{4, 6}, rng);
  const Tensor b = Tensor::randn(Shape{6, 5}, rng);
  const Tensor c = ops::matmul(a, b);
  // matmul_bt(a, b^T) == a b
  const Tensor bt = ops::transpose(b);
  const Tensor c2 = ops::matmul_bt(a, bt);
  // matmul_at(a^T, b) == a b
  const Tensor at = ops::transpose(a);
  const Tensor c3 = ops::matmul_at(at, b);
  for (std::int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.at(i), c2.at(i), 1e-4);
    EXPECT_NEAR(c.at(i), c3.at(i), 1e-4);
  }
}

TEST(Ops, TransposeRoundTrip) {
  Rng rng(4);
  const Tensor a = Tensor::rand(Shape{3, 5}, rng);
  const Tensor t = ops::transpose(ops::transpose(a));
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), t.at(i));
}

TEST(Ops, LinearForward) {
  const Tensor x(Shape{1, 2}, {1, 2});
  const Tensor w(Shape{3, 2}, {1, 0, 0, 1, 1, 1});
  const Tensor b(Shape{3}, {0.5F, -0.5F, 0});
  const Tensor y = ops::linear_forward(x, w, b);
  EXPECT_EQ(y(0, 0), 1.5F);
  EXPECT_EQ(y(0, 1), 1.5F);
  EXPECT_EQ(y(0, 2), 3.0F);
}

TEST(Ops, ArgmaxRows) {
  const Tensor t(Shape{2, 3}, {0, 5, 2, 7, 1, 3});
  const auto idx = ops::argmax_rows(t);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  const Tensor t(Shape{2, 3}, {1, 2, 3, 1000, 1000, 1000});
  const Tensor p = ops::softmax_rows(t);
  for (std::int64_t i = 0; i < 2; ++i) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 3; ++j) {
      s += p(i, j);
      EXPECT_GE(p(i, j), 0.0F);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
  // Large logits don't overflow (stabilized).
  EXPECT_NEAR(p(1, 0), 1.0 / 3.0, 1e-5);
}

TEST(Ops, SumRows) {
  const Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor s = ops::sum_rows(t);
  EXPECT_EQ(s(0), 5.0F);
  EXPECT_EQ(s(1), 7.0F);
  EXPECT_EQ(s(2), 9.0F);
}

TEST(Ops, DotAndCosine) {
  const Tensor a(Shape{3}, {1, 0, 1});
  const Tensor b(Shape{3}, {1, 1, 0});
  EXPECT_EQ(ops::dot(a, b), 1.0);
  EXPECT_NEAR(ops::cosine_similarity(a, b), 0.5, 1e-6);
  EXPECT_NEAR(ops::cosine_similarity(a, a), 1.0, 1e-6);
  const Tensor z(Shape{3});
  EXPECT_EQ(ops::cosine_similarity(a, z), 0.0);
}

TEST(Ops, ReluAndBackward) {
  const Tensor x(Shape{4}, {-1, 0, 2, -3});
  const Tensor y = ops::relu(x);
  EXPECT_EQ(y(0), 0.0F);
  EXPECT_EQ(y(2), 2.0F);
  const Tensor g(Shape{4}, {1, 1, 1, 1});
  const Tensor gx = ops::relu_backward(g, x);
  EXPECT_EQ(gx(0), 0.0F);
  EXPECT_EQ(gx(1), 0.0F);  // sign(0) treated as non-positive for grad
  EXPECT_EQ(gx(2), 1.0F);
}

TEST(Ops, MatmulRandomAgainstNaive) {
  Rng rng(5);
  const std::int64_t m = 7, k = 9, n = 8;
  const Tensor a = Tensor::randn(Shape{m, k}, rng);
  const Tensor b = Tensor::randn(Shape{k, n}, rng);
  const Tensor c = ops::matmul(a, b);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a(i, kk) * b(kk, j);
      EXPECT_NEAR(c(i, j), acc, 1e-4);
    }
  }
}

}  // namespace
}  // namespace fhdnn
