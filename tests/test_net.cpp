// Tests for the src/net transport layer: loopback pipe semantics
// (FIFO, backpressure, EOF), MessageChannel framing over both transports,
// TCP socket + Reactor basics, and the cross-thread behaviour the serving
// loop depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>  // fhdnn-lint: allow(raw-thread) — test harness drives both pipe ends
#include <vector>

#include "net/connection.hpp"
#include "net/loopback.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "wire/messages.hpp"
#include "wire/wire.hpp"

namespace fhdnn {
namespace {

using net::Connection;
using net::MessageChannel;
using net::NetError;

wire::Frame hello_frame(std::uint32_t fp) {
  wire::HelloMsg m;
  m.config_fingerprint = fp;
  m.protocol = "fedhd";
  return m.to_frame();
}

// ---------------------------------------------------------------- loopback

TEST(Loopback, BytesFlowBothWaysFifo) {
  auto [a, b] = net::make_loopback_pair();
  const std::uint8_t out[4] = {1, 2, 3, 4};
  EXPECT_EQ(a->write_some(out, 4), 4U);
  std::uint8_t in[4] = {};
  EXPECT_EQ(b->read_some(in, 2), 2U);
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(in[1], 2);
  EXPECT_EQ(b->read_some(in, 4), 2U);  // remainder, FIFO order
  EXPECT_EQ(in[0], 3);
  EXPECT_EQ(in[1], 4);
  EXPECT_EQ(b->read_some(in, 4), 0U);  // drained
  EXPECT_EQ(b->write_some(out, 1), 1U);
  EXPECT_EQ(a->read_some(in, 4), 1U);
}

TEST(Loopback, BackpressureAtCapacity) {
  net::LoopbackOptions opt;
  opt.capacity_bytes = 8;
  auto [a, b] = net::make_loopback_pair(opt);
  const std::vector<std::uint8_t> out(16, 0xAB);
  EXPECT_EQ(a->write_some(out.data(), 16), 8U);   // capacity cap
  EXPECT_EQ(a->write_some(out.data(), 1), 0U);    // full: backpressure
  std::uint8_t in[8];
  EXPECT_EQ(b->read_some(in, 3), 3U);             // drain a little
  EXPECT_EQ(a->write_some(out.data(), 16), 3U);   // freed space accepted
}

TEST(Loopback, CloseGivesEofAfterDrain) {
  auto [a, b] = net::make_loopback_pair();
  const std::uint8_t out[2] = {7, 8};
  ASSERT_EQ(a->write_some(out, 2), 2U);
  a->close();
  EXPECT_FALSE(b->peer_closed());  // buffered bytes still readable
  std::uint8_t in[4];
  EXPECT_EQ(b->read_some(in, 4), 2U);
  EXPECT_TRUE(b->peer_closed());
  EXPECT_THROW((void)b->write_some(out, 1), NetError);
}

TEST(Loopback, WaitReadableSeesCrossThreadWrites) {
  auto [a, b] = net::make_loopback_pair();
  EXPECT_FALSE(b->wait_readable(1));  // nothing yet
  std::thread writer([&a] {  // fhdnn-lint: allow(raw-thread)
    const std::uint8_t byte = 42;
    (void)a->write_some(&byte, 1);
  });
  EXPECT_TRUE(b->wait_readable(5000));
  writer.join();
  std::uint8_t in = 0;
  EXPECT_EQ(b->read_some(&in, 1), 1U);
  EXPECT_EQ(in, 42);
}

TEST(Loopback, HasNoFd) {
  auto [a, b] = net::make_loopback_pair();
  EXPECT_EQ(a->fd(), -1);
  EXPECT_EQ(b->fd(), -1);
}

// --------------------------------------------------------- message channel

TEST(MessageChannelTest, FramesRoundTripOverLoopback) {
  auto [a, b] = net::make_loopback_pair();
  MessageChannel tx(*a);
  MessageChannel rx(*b);
  tx.send(hello_frame(0x11111111));
  tx.send(hello_frame(0x22222222));
  ASSERT_TRUE(tx.flush());
  const auto f1 = rx.poll();
  const auto f2 = rx.poll();
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(wire::HelloMsg::from_frame(*f1).config_fingerprint, 0x11111111U);
  EXPECT_EQ(wire::HelloMsg::from_frame(*f2).config_fingerprint, 0x22222222U);
  EXPECT_FALSE(rx.poll().has_value());
  EXPECT_EQ(tx.bytes_sent(), rx.bytes_received());
  EXPECT_GT(tx.bytes_sent(), 0U);
}

TEST(MessageChannelTest, BackpressureQueuesAndFlushDrains) {
  net::LoopbackOptions opt;
  opt.capacity_bytes = 32;  // smaller than one frame
  auto [a, b] = net::make_loopback_pair(opt);
  MessageChannel tx(*a);
  MessageChannel rx(*b);
  tx.send(hello_frame(0xDEADBEEF));
  EXPECT_GT(tx.tx_pending(), 0U);  // only part fit
  // Drain by alternating reads with flushes.
  std::optional<wire::Frame> got;
  for (int i = 0; i < 64 && !got; ++i) {
    (void)tx.flush();
    got = rx.poll();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(wire::HelloMsg::from_frame(*got).config_fingerprint, 0xDEADBEEFU);
  EXPECT_EQ(tx.tx_pending(), 0U);
}

TEST(MessageChannelTest, RecvTimesOut) {
  auto [a, b] = net::make_loopback_pair();
  MessageChannel rx(*b);
  EXPECT_THROW((void)rx.recv(10), NetError);
}

TEST(MessageChannelTest, PeerCloseMidFrameThrows) {
  auto [a, b] = net::make_loopback_pair();
  const auto bytes = wire::encode_frame(wire::MsgType::kHello, {1, 2, 3});
  ASSERT_EQ(a->write_some(bytes.data(), bytes.size() - 1), bytes.size() - 1);
  a->close();
  MessageChannel rx(*b);
  EXPECT_THROW((void)rx.recv(1000), NetError);
}

TEST(MessageChannelTest, CorruptStreamSurfacesWireError) {
  auto [a, b] = net::make_loopback_pair();
  auto bytes = wire::encode_frame(wire::MsgType::kHello, {1, 2, 3});
  bytes[0] = 'Z';
  ASSERT_EQ(a->write_some(bytes.data(), bytes.size()), bytes.size());
  MessageChannel rx(*b);
  EXPECT_THROW((void)rx.poll(), wire::WireError);
}

// --------------------------------------------------------------- tcp + epoll

TEST(Tcp, ConnectAcceptRoundTrip) {
  net::TcpListener listener("127.0.0.1", 0);
  ASSERT_GT(listener.port(), 0);
  auto client = net::connect_tcp("127.0.0.1", listener.port(), 5000);
  ASSERT_TRUE(listener.wait_pending(5000));
  auto served = listener.accept();
  ASSERT_NE(served, nullptr);
  EXPECT_GE(served->fd(), 0);
  EXPECT_GE(client->fd(), 0);

  MessageChannel tx(*client);
  MessageChannel rx(*served);
  tx.send(hello_frame(0xFEEDFACE));
  for (int i = 0; i < 1000 && !tx.flush(); ++i) {
  }
  const wire::Frame f = rx.recv(5000);
  EXPECT_EQ(wire::HelloMsg::from_frame(f).config_fingerprint, 0xFEEDFACEU);
}

TEST(Tcp, ConnectTimesOutWhenNobodyListens) {
  // Bind a listener to learn a free port, then close it again.
  std::uint16_t dead_port = 0;
  {
    net::TcpListener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }
  EXPECT_THROW((void)net::connect_tcp("127.0.0.1", dead_port, 50), NetError);
}

TEST(Reactor, ReportsReadableAndHangup) {
  net::TcpListener listener("127.0.0.1", 0);
  auto client = net::connect_tcp("127.0.0.1", listener.port(), 5000);
  ASSERT_TRUE(listener.wait_pending(5000));
  auto served = listener.accept();
  ASSERT_NE(served, nullptr);

  net::Reactor reactor;
  reactor.add(served->fd(), /*tag=*/7, /*want_read=*/true,
              /*want_write=*/false);
  EXPECT_EQ(reactor.watched(), 1U);
  EXPECT_TRUE(reactor.wait(0).empty());  // idle: nothing readable

  const std::uint8_t byte = 1;
  ASSERT_EQ(client->write_some(&byte, 1), 1U);
  auto events = reactor.wait(5000);
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].tag, 7U);
  EXPECT_TRUE(events[0].readable);

  std::uint8_t in = 0;
  ASSERT_EQ(served->read_some(&in, 1), 1U);
  client->close();
  events = reactor.wait(5000);
  ASSERT_EQ(events.size(), 1U);
  EXPECT_TRUE(events[0].hangup || events[0].readable);
  reactor.remove(served->fd());
  EXPECT_EQ(reactor.watched(), 0U);
}

}  // namespace
}  // namespace fhdnn
