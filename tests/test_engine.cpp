// Tests for the generic federated round engine (fl/engine.hpp) and the
// transport seam (channel/transport.hpp).
//
// The golden-history tests pin the exact per-round metrics both trainers
// produced *before* they were rewritten on top of RoundEngine (captured
// from the pre-refactor implementations at FHDNN_THREADS=1 and 4, which
// agreed bit-for-bit). They are the refactor's no-behavior-change proof:
// every double is compared exactly, every counter exactly, at two thread
// counts. wall_seconds is deliberately NOT compared — it is the one
// RoundMetrics field outside the determinism contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "channel/transport.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/engine.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedhd.hpp"
#include "hdc/encoder.hpp"
#include "nn/resnet.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fhdnn {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel::num_threads()) {}
  ~ThreadGuard() { parallel::set_num_threads(saved_); }

 private:
  int saved_;
};

// ------------------------------------------------------- golden histories

struct GoldenRound {
  double acc;
  double loss;
  std::size_t clients;
  std::uint64_t bytes;
  std::uint64_t bits;
  std::uint64_t flips;
  std::uint64_t lost;
};

/// FedAvg fixture: 4 clients on synthetic MNIST, C=0.75, dropout 0.4,
/// update subsampling 0.5, lossy packet channel — exercises the "mask" and
/// "channel" client-stream forks, delivery coins, and weighted averaging.
fl::TrainingHistory run_golden_fedavg(const channel::Channel* chan) {
  Rng rng(21);
  auto full = data::synthetic_mnist(300, rng);
  auto split = data::train_test_split(full, 0.2, rng);
  auto parts = data::partition_iid(split.train, 4, rng);
  fl::ModelFactory factory = [](Rng& r) { return nn::make_cnn2(1, 28, 10, r); };
  fl::FedAvgConfig cfg;
  cfg.n_clients = 4;
  cfg.client_fraction = 0.75;
  cfg.local_epochs = 1;
  cfg.batch_size = 16;
  cfg.rounds = 3;
  cfg.seed = 22;
  cfg.dropout_prob = 0.4;
  cfg.update_fraction = 0.5;
  fl::FedAvgTrainer trainer(factory, split.train, parts, split.test, cfg,
                            chan);
  return trainer.run();
}

/// FedHd fixture: 6 clients on isolet-like data (separation low enough that
/// refinement keeps making mistakes, so train_loss is nonzero), C=0.5,
/// dropout 0.3, bit-error uplink, AWGN downlink — exercises the "downlink"
/// round fork, the "channel-<id>" per-client forks, and bundling.
fl::TrainingHistory run_golden_fedhd() {
  Rng rng(31);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 4;
  spec.n = 400;
  spec.separation = 0.5;
  const auto ds = data::make_isolet_like(spec, rng);
  Rng enc_rng = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(32, 512, enc_rng);
  const auto split = data::train_test_split(ds, 0.2, rng);
  const fl::HdClientData test{enc.encode(split.test.x), split.test.labels};
  const auto parts = data::partition_iid(split.train, 6, rng);
  std::vector<fl::HdClientData> clients;
  for (const auto& part : parts) {
    const auto sub = split.train.subset(part);
    clients.push_back({enc.encode(sub.x), sub.labels});
  }
  fl::FedHdConfig cfg;
  cfg.n_clients = 6;
  cfg.client_fraction = 0.5;
  cfg.local_epochs = 2;
  cfg.rounds = 3;
  cfg.num_classes = 4;
  cfg.hd_dim = 512;
  cfg.seed = 32;
  cfg.dropout_prob = 0.3;
  cfg.uplink.mode = channel::HdUplinkMode::BitErrors;
  cfg.uplink.ber = 1e-4;
  cfg.downlink.mode = channel::HdUplinkMode::Awgn;
  cfg.downlink.snr_db = 15.0;
  fl::FedHdTrainer trainer(clients, test, cfg);
  return trainer.run();
}

void expect_matches_golden(const fl::TrainingHistory& h,
                           const std::vector<GoldenRound>& golden) {
  ASSERT_EQ(h.rounds().size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const auto& m = h.rounds()[i];
    const auto& g = golden[i];
    SCOPED_TRACE("round " + std::to_string(i + 1));
    EXPECT_EQ(m.test_accuracy, g.acc);  // exact: hexfloat-pinned doubles
    EXPECT_EQ(m.train_loss, g.loss);
    EXPECT_EQ(m.clients, g.clients);
    EXPECT_EQ(m.bytes_uplink, g.bytes);
    EXPECT_EQ(m.bits_on_air, g.bits);
    EXPECT_EQ(m.bit_flips, g.flips);
    EXPECT_EQ(m.packets_lost, g.lost);
  }
}

TEST(GoldenHistory, FedAvgMatchesPreRefactorRunAtEveryThreadCount) {
  const std::vector<GoldenRound> golden = {
      {0x1.1111111111111p-2, 0x1.577e9c6aaaaabp+1, 3, 1240608, 19864512, 0,
       3925},
      {0x1.7777777777777p-3, 0x1.1feab830e38e3p+1, 3, 1241768, 19864512, 0,
       3876},
      {0x1.3333333333333p-2, 0x1.227d686d55556p+1, 2, 828192, 13243008, 0,
       2544},
  };
  ThreadGuard guard;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    const auto chan = channel::make_packet_loss(0.2, 1024);
    expect_matches_golden(run_golden_fedavg(chan.get()), golden);
  }
}

TEST(GoldenHistory, FedHdMatchesPreRefactorRunAtEveryThreadCount) {
  const std::vector<GoldenRound> golden = {
      {0x1.6666666666666p-1, 0x1.948b0fcd6e9ep-8, 3, 12288, 98304, 12, 0},
      {0x1.8666666666666p-1, 0x1.68a7725080ce1p-5, 3, 12288, 98304, 11, 0},
      {0x1.8p-1, 0x1.cfb2b78c13522p-6, 2, 8192, 65536, 9, 0},
  };
  ThreadGuard guard;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    expect_matches_golden(run_golden_fedhd(), golden);
  }
}

// ------------------------------------- sampling/dropout stream prediction

/// Replays the engine's named-fork layout by hand: participants come from
/// root.fork("round-r").fork("sample"), delivery coins from .fork("dropout")
/// in participant order. Both trainers must match this prediction exactly
/// (same engine, same streams), at every thread count.
struct RoundPrediction {
  std::vector<std::size_t> participants;
  std::size_t delivered;
};

std::vector<RoundPrediction> predict_rounds(std::uint64_t seed,
                                            std::size_t n_clients,
                                            double fraction, double dropout,
                                            int rounds) {
  Rng root(seed);
  fl::ClientSampler sampler(n_clients, fraction);
  std::vector<RoundPrediction> out;
  for (int r = 1; r <= rounds; ++r) {
    Rng round_rng = root.fork("round-" + std::to_string(r));
    Rng sample_rng = round_rng.fork("sample");
    RoundPrediction p;
    p.participants = sampler.sample(sample_rng);
    Rng dropout_rng = round_rng.fork("dropout");
    const auto flags =
        fl::draw_delivery_flags(p.participants.size(), dropout, dropout_rng);
    p.delivered = 0;
    for (const char f : flags) p.delivered += (f != 0) ? 1U : 0U;
    out.push_back(std::move(p));
  }
  return out;
}

TEST(EngineStreams, FedHdSamplingAndDropoutMatchPredictionAcrossThreads) {
  const auto predicted = predict_rounds(32, 6, 0.5, 0.3, 3);
  ThreadGuard guard;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    const auto h = run_golden_fedhd();
    ASSERT_EQ(h.rounds().size(), predicted.size());
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      const auto& m = h.rounds()[i];
      EXPECT_EQ(m.sampled, predicted[i].participants.size());
      EXPECT_EQ(m.clients, predicted[i].delivered);
      EXPECT_EQ(m.dropped,
                predicted[i].participants.size() - predicted[i].delivered);
    }
  }
}

TEST(EngineStreams, FedAvgSamplingAndDropoutMatchPredictionAcrossThreads) {
  const auto predicted = predict_rounds(22, 4, 0.75, 0.4, 3);
  ThreadGuard guard;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    const auto chan = channel::make_packet_loss(0.2, 1024);
    const auto h = run_golden_fedavg(chan.get());
    ASSERT_EQ(h.rounds().size(), predicted.size());
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      const auto& m = h.rounds()[i];
      EXPECT_EQ(m.sampled, predicted[i].participants.size());
      EXPECT_EQ(m.clients, predicted[i].delivered);
      EXPECT_EQ(m.dropped,
                predicted[i].participants.size() - predicted[i].delivered);
    }
  }
}

TEST(EngineStreams, DeliveryFlagsAreSeedDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork("dropout");
  Rng fb = b.fork("dropout");
  const auto x = fl::draw_delivery_flags(64, 0.5, fa);
  const auto y = fl::draw_delivery_flags(64, 0.5, fb);
  EXPECT_EQ(x, y);
  std::size_t kept = 0;
  for (const char f : x) kept += (f != 0) ? 1U : 0U;
  EXPECT_GT(kept, 0U);   // p=0.5 over 64 coins: both outcomes present
  EXPECT_LT(kept, 64U);
}

TEST(EngineStreams, ZeroDropoutDeliversEveryone) {
  Rng rng(7);
  const auto flags = fl::draw_delivery_flags(16, 0.0, rng);
  for (const char f : flags) EXPECT_EQ(f, 1);
}

// -------------------------------------------------- engine unit (mock)

/// Minimal protocol: counts calls, reports fixed losses/stats, and records
/// the exact (participants, delivered) pair reduce() saw.
class MockProtocol final : public fl::RoundProtocol {
 public:
  void begin_round(const Rng& /*round_rng*/, std::size_t n) override {
    ++begin_calls;
    last_slots = n;
  }

  fl::ClientReport run_client(std::size_t /*slot*/, std::size_t client,
                              const Rng& /*round_rng*/,
                              bool delivered) override {
    fl::ClientReport r;
    r.loss = static_cast<double>(client) + 1.0;
    if (delivered) {
      r.stats.payload_bytes = 100;
      r.stats.bits_on_air = 800;
      r.stats.bit_flips = 3;
      r.stats.packets_lost = 1;
    }
    return r;
  }

  void reduce(const std::vector<std::size_t>& participants,
              const std::vector<char>& delivered) override {
    ++reduce_calls;
    last_participants = participants;
    last_delivered = delivered;
  }

  double evaluate() override {
    ++eval_calls;
    return 0.5 * static_cast<double>(eval_calls);
  }

  int begin_calls = 0;
  int reduce_calls = 0;
  int eval_calls = 0;
  std::size_t last_slots = 0;
  std::vector<std::size_t> last_participants;
  std::vector<char> last_delivered;
};

fl::EngineConfig small_engine_config() {
  fl::EngineConfig cfg;
  cfg.n_clients = 8;
  cfg.client_fraction = 0.5;
  cfg.rounds = 4;
  cfg.eval_every = 2;
  cfg.dropout_prob = 0.0;
  cfg.seed = 5;
  cfg.name = "mock";
  return cfg;
}

TEST(RoundEngine, AccountsTrafficLossAndCountsPerRound) {
  MockProtocol protocol;
  fl::RoundEngine engine(small_engine_config(), protocol);
  const auto m = engine.round(1);
  EXPECT_EQ(m.round, 1);
  EXPECT_EQ(m.sampled, 4U);  // 0.5 * 8
  EXPECT_EQ(m.clients, 4U);  // no dropout
  EXPECT_EQ(m.dropped, 0U);
  EXPECT_EQ(m.bytes_uplink, 400U);
  EXPECT_EQ(m.bits_on_air, 3200U);
  EXPECT_EQ(m.bit_flips, 12U);
  EXPECT_EQ(m.packets_lost, 4U);
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_EQ(protocol.begin_calls, 1);
  EXPECT_EQ(protocol.reduce_calls, 1);
  EXPECT_EQ(protocol.last_slots, 4U);
  // Loss averages over delivered participants: mean of (client_id + 1).
  double expected = 0.0;
  for (const std::size_t c : protocol.last_participants) {
    expected += static_cast<double>(c) + 1.0;
  }
  expected /= static_cast<double>(protocol.last_participants.size());
  EXPECT_DOUBLE_EQ(m.train_loss, expected);
}

TEST(RoundEngine, EvalScheduleCarriesAccuracyForward) {
  MockProtocol protocol;
  fl::RoundEngine engine(small_engine_config(), protocol);
  const auto h = engine.run();  // eval_every=2, rounds=4
  ASSERT_EQ(h.rounds().size(), 4U);
  // Rounds 2 and 4 evaluate; 1 and 3 carry the previous value forward
  // (round 1 has nothing to carry -> 0).
  EXPECT_EQ(protocol.eval_calls, 2);
  EXPECT_EQ(h.rounds()[0].test_accuracy, 0.0);
  EXPECT_EQ(h.rounds()[1].test_accuracy, 0.5);
  EXPECT_EQ(h.rounds()[2].test_accuracy, 0.5);
  EXPECT_EQ(h.rounds()[3].test_accuracy, 1.0);
}

TEST(RoundEngine, AllDroppedRoundSkipsCommitButStillReduces) {
  // dropout_prob can't reach 1.0, but the engine must tolerate every coin
  // landing on "dropped" — emulate by checking the reduce contract with
  // high dropout over many rounds until an all-dropped round occurs.
  MockProtocol protocol;
  auto cfg = small_engine_config();
  cfg.dropout_prob = 0.9;
  cfg.rounds = 30;
  fl::RoundEngine engine(cfg, protocol);
  bool saw_all_dropped = false;
  for (int r = 1; r <= cfg.rounds; ++r) {
    const auto m = engine.round(r);
    EXPECT_EQ(m.sampled, 4U);
    EXPECT_EQ(m.clients + m.dropped, m.sampled);
    if (m.clients == 0) {
      saw_all_dropped = true;
      EXPECT_EQ(m.train_loss, 0.0);
      EXPECT_EQ(m.bytes_uplink, 0U);
    }
  }
  EXPECT_TRUE(saw_all_dropped);  // p=0.9^4 per round over 30 rounds
  EXPECT_EQ(protocol.reduce_calls, cfg.rounds);
}

TEST(RoundEngine, RejectsInvalidConfig) {
  MockProtocol protocol;
  auto bad_rounds = small_engine_config();
  bad_rounds.rounds = 0;
  EXPECT_THROW(fl::RoundEngine(bad_rounds, protocol), Error);
  auto bad_dropout = small_engine_config();
  bad_dropout.dropout_prob = 1.0;
  EXPECT_THROW(fl::RoundEngine(bad_dropout, protocol), Error);
}

TEST(RoundEngine, HistoryTotalsAccumulateNewFields) {
  MockProtocol protocol;
  fl::RoundEngine engine(small_engine_config(), protocol);
  const auto h = engine.run();
  EXPECT_EQ(h.total_sampled(), 16U);  // 4 rounds x 4 participants
  EXPECT_EQ(h.total_dropped(), 0U);
  EXPECT_GT(h.total_wall_seconds(), 0.0);
  EXPECT_EQ(h.total_uplink_bytes(), 4U * 400U);
}

// ------------------------------------------------- transport accounting

TEST(Transport, HdUpdateBytesFollowsTheSharedRule) {
  channel::HdUplinkConfig cfg;  // Perfect + quantizer (16-bit default)
  EXPECT_EQ(channel::hd_bits_per_scalar(cfg), 16U);
  cfg.use_quantizer = false;
  EXPECT_EQ(channel::hd_bits_per_scalar(cfg), 32U);
  cfg.binary_transport = true;  // takes precedence
  EXPECT_EQ(channel::hd_bits_per_scalar(cfg), 1U);
  EXPECT_EQ(channel::hd_update_bytes(cfg, 10), 2U);  // ceil(10/8)
  cfg.binary_transport = false;
  cfg.mode = channel::HdUplinkMode::Awgn;  // analog: always 32
  EXPECT_EQ(channel::hd_bits_per_scalar(cfg), 32U);
}

TEST(Transport, FedHdUpdateBytesRoutesThroughTransport) {
  // One rule, three payload encodings: float32, AGC-quantized, binary.
  Rng rng(1);
  data::IsoletSpec spec;
  spec.dims = 8;
  spec.classes = 2;
  spec.n = 40;
  spec.rank = 4;
  const auto ds = data::make_isolet_like(spec, rng);
  hdc::RandomProjectionEncoder enc(8, 128, rng);
  fl::HdClientData test{enc.encode(ds.x), ds.labels};
  std::vector<fl::HdClientData> clients(2, test);
  fl::FedHdConfig cfg;
  cfg.n_clients = 2;
  cfg.client_fraction = 1.0;
  cfg.rounds = 1;
  cfg.num_classes = 2;
  cfg.hd_dim = 128;
  const std::uint64_t scalars = 2 * 128;

  cfg.uplink.use_quantizer = false;
  EXPECT_EQ(fl::FedHdTrainer(clients, test, cfg).update_bytes(), scalars * 4);
  cfg.uplink.use_quantizer = true;
  cfg.uplink.quantizer_bits = 16;
  EXPECT_EQ(fl::FedHdTrainer(clients, test, cfg).update_bytes(), scalars * 2);
  cfg.uplink.binary_transport = true;
  EXPECT_EQ(fl::FedHdTrainer(clients, test, cfg).update_bytes(), scalars / 8);
}

TEST(Transport, FloatStateTransportValidatesFractionAtConstruction) {
  EXPECT_THROW(channel::FloatStateTransport(0.0, nullptr), Error);
  EXPECT_THROW(channel::FloatStateTransport(1.5, nullptr), Error);
}

TEST(Transport, SubsamplingWithoutBroadcastFailsLoudly) {
  // Regression: update_fraction < 1 needs the round's broadcast snapshot to
  // fall back to for untransmitted scalars. Transmitting without
  // set_broadcast used to be a silent nullptr hazard; it must throw with a
  // message naming the missing call.
  channel::FloatStateTransport transport(0.5, nullptr);
  std::vector<float> update(32, 1.0F);
  Rng client_rng(1);
  const Rng round_rng(2);
  try {
    transport.transmit(update, 0, client_rng, round_rng);
    FAIL() << "expected transmit without a broadcast snapshot to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("set_broadcast"), std::string::npos);
  }
  // With the snapshot installed (or with full updates) it works.
  const std::vector<float> broadcast(32, 0.0F);
  transport.set_broadcast(&broadcast);
  EXPECT_NO_THROW(transport.transmit(update, 0, client_rng, round_rng));
  channel::FloatStateTransport full(1.0, nullptr);
  std::vector<float> update2(32, 1.0F);
  EXPECT_NO_THROW(full.transmit(update2, 0, client_rng, round_rng));
}

}  // namespace
}  // namespace fhdnn
