// Tests for src/data: dataset container, synthetic generators, partitioners.
#include <gtest/gtest.h>

#include <set>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace fhdnn {
namespace {

using data::Dataset;

Dataset tiny_feature_dataset() {
  Dataset ds;
  ds.x = Tensor(Shape{6, 2}, {0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5});
  ds.labels = {0, 1, 0, 1, 0, 1};
  ds.num_classes = 2;
  ds.name = "tiny";
  return ds;
}

TEST(Dataset, CheckValidates) {
  Dataset ds = tiny_feature_dataset();
  EXPECT_NO_THROW(ds.check());
  ds.labels[0] = 5;
  EXPECT_THROW(ds.check(), Error);
  ds.labels[0] = 0;
  ds.labels.pop_back();
  EXPECT_THROW(ds.check(), Error);
}

TEST(Dataset, GatherPreservesRowsAndLabels) {
  Dataset ds = tiny_feature_dataset();
  const auto b = ds.gather({2, 5});
  EXPECT_EQ(b.x.shape(), (Shape{2, 2}));
  EXPECT_EQ(b.x(0, 0), 2.0F);
  EXPECT_EQ(b.x(1, 1), 5.0F);
  EXPECT_EQ(b.labels[0], 0);
  EXPECT_EQ(b.labels[1], 1);
  EXPECT_THROW(ds.gather({6}), Error);
  EXPECT_THROW(ds.gather({}), Error);
}

TEST(Dataset, SubsetAndHistogram) {
  Dataset ds = tiny_feature_dataset();
  const Dataset sub = ds.subset({0, 2, 4});
  EXPECT_EQ(sub.size(), 3);
  const auto hist = sub.label_histogram();
  EXPECT_EQ(hist[0], 3);
  EXPECT_EQ(hist[1], 0);
}

TEST(Dataset, TrainTestSplitPartitions) {
  Dataset ds = tiny_feature_dataset();
  Rng rng(1);
  const auto split = data::train_test_split(ds, 0.34, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  EXPECT_GE(split.test.size(), 1);
  EXPECT_THROW(data::train_test_split(ds, 0.0, rng), Error);
  EXPECT_THROW(data::train_test_split(ds, 1.0, rng), Error);
}

TEST(BatchIterator, CoversEveryIndexOnce) {
  Rng rng(2);
  data::BatchIterator it(10, 3, rng);
  std::multiset<std::size_t> seen;
  std::size_t batches = 0;
  while (!it.done()) {
    const auto b = it.next();
    EXPECT_LE(b.size(), 3U);
    seen.insert(b.begin(), b.end());
    ++batches;
  }
  EXPECT_EQ(batches, 4U);  // 3+3+3+1
  EXPECT_EQ(seen.size(), 10U);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1U);
  EXPECT_TRUE(it.next().empty());
  it.reset(rng);
  EXPECT_FALSE(it.done());
}

// ------------------------------------------------------------ synthetic

TEST(SyntheticImages, ShapesAndRanges) {
  Rng rng(3);
  const auto ds = data::synthetic_mnist(100, rng);
  EXPECT_EQ(ds.x.shape(), (Shape{100, 1, 28, 28}));
  EXPECT_EQ(ds.num_classes, 10);
  EXPECT_GE(ds.x.min(), 0.0F);
  EXPECT_LE(ds.x.max(), 1.0F);
}

TEST(SyntheticImages, BalancedLabels) {
  Rng rng(4);
  const auto ds = data::synthetic_fashion(200, rng);
  const auto hist = ds.label_histogram();
  for (const auto h : hist) EXPECT_EQ(h, 20);
}

TEST(SyntheticImages, DeterministicInSeed) {
  Rng a(5), b(5), c(6);
  const auto d1 = data::synthetic_cifar(20, a);
  const auto d2 = data::synthetic_cifar(20, b);
  const auto d3 = data::synthetic_cifar(20, c);
  EXPECT_EQ(d1.x.vec(), d2.x.vec());
  EXPECT_NE(d1.x.vec(), d3.x.vec());
}

TEST(SyntheticImages, CifarIsRgb) {
  Rng rng(7);
  const auto ds = data::synthetic_cifar(10, rng);
  EXPECT_EQ(ds.x.shape(), (Shape{10, 3, 32, 32}));
}

TEST(SyntheticImages, SameClassMoreSimilarThanCrossClass) {
  // Class structure: intra-class distance should be below inter-class
  // distance on average.
  Rng rng(8);
  data::ImageSpec spec;
  spec.n = 60;
  spec.classes = 3;
  spec.noise = 0.05;
  const auto ds = data::make_synthetic_images(spec, rng);
  auto dist = [&](std::int64_t i, std::int64_t j) {
    double s = 0.0;
    const std::int64_t per = ds.example_numel();
    for (std::int64_t k = 0; k < per; ++k) {
      const double d = ds.x.at(i * per + k) - ds.x.at(j * per + k);
      s += d * d;
    }
    return s;
  };
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (std::int64_t i = 0; i < 30; ++i) {
    for (std::int64_t j = i + 1; j < 30; ++j) {
      if (ds.labels[i] == ds.labels[j]) {
        intra += dist(i, j);
        ++n_intra;
      } else {
        inter += dist(i, j);
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(SyntheticImages, RejectsBadSpec) {
  Rng rng(9);
  data::ImageSpec spec;
  spec.n = 5;
  spec.classes = 10;  // n < classes
  EXPECT_THROW(data::make_synthetic_images(spec, rng), Error);
}

TEST(IsoletLike, ShapeAndClasses) {
  Rng rng(10);
  data::IsoletSpec spec;
  spec.n = 260;
  const auto ds = data::make_isolet_like(spec, rng);
  EXPECT_EQ(ds.x.shape(), (Shape{260, 617}));
  EXPECT_EQ(ds.num_classes, 26);
  const auto hist = ds.label_histogram();
  for (const auto h : hist) EXPECT_EQ(h, 10);
}

TEST(IsoletLike, SeparationKnobWorks) {
  // Higher separation => higher nearest-class-mean accuracy.
  auto ncm_accuracy = [](double sep, std::uint64_t seed) {
    Rng rng(seed);
    data::IsoletSpec spec;
    spec.n = 520;
    spec.separation = sep;
    const auto ds = data::make_isolet_like(spec, rng);
    // Split halves: fit means on first half, evaluate on second.
    std::vector<std::vector<double>> means(
        26, std::vector<double>(617, 0.0));
    std::vector<int> counts(26, 0);
    for (std::int64_t i = 0; i < 260; ++i) {
      const auto y = ds.labels[static_cast<std::size_t>(i)];
      for (std::int64_t d = 0; d < 617; ++d) {
        means[static_cast<std::size_t>(y)][static_cast<std::size_t>(d)] +=
            ds.x(i, d);
      }
      ++counts[static_cast<std::size_t>(y)];
    }
    for (std::size_t k = 0; k < 26; ++k) {
      for (auto& v : means[k]) v /= counts[k];
    }
    int correct = 0;
    for (std::int64_t i = 260; i < 520; ++i) {
      double best = 1e300;
      std::size_t arg = 0;
      for (std::size_t k = 0; k < 26; ++k) {
        double d2 = 0.0;
        for (std::int64_t d = 0; d < 617; ++d) {
          const double diff = ds.x(i, d) - means[k][static_cast<std::size_t>(d)];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          arg = k;
        }
      }
      correct += (static_cast<std::int64_t>(arg) ==
                  ds.labels[static_cast<std::size_t>(i)]);
    }
    return correct / 260.0;
  };
  EXPECT_GT(ncm_accuracy(2.0, 11), ncm_accuracy(0.2, 11));
  EXPECT_GT(ncm_accuracy(2.0, 11), 0.8);
}

// ------------------------------------------------------------ partitioning

TEST(Partition, IidCoversAllDisjoint) {
  Rng rng(12);
  const auto ds = data::synthetic_mnist(103, rng);
  const auto parts = data::partition_iid(ds, 10, rng);
  ASSERT_EQ(parts.size(), 10U);
  std::set<std::size_t> seen;
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 10U);
    for (const auto i : p) {
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), 103U);
}

TEST(Partition, IidNearlyUniformLabels) {
  Rng rng(13);
  const auto ds = data::synthetic_mnist(1000, rng);
  const auto parts = data::partition_iid(ds, 5, rng);
  EXPECT_LT(data::label_skew(ds, parts), 0.2);  // 1/10 ideal
}

TEST(Partition, DirichletSkewOrdering) {
  Rng rng(14);
  const auto ds = data::synthetic_mnist(1000, rng);
  Rng r1 = rng.fork("a"), r2 = rng.fork("b");
  const auto skewed = data::partition_dirichlet(ds, 10, 0.1, r1);
  const auto mild = data::partition_dirichlet(ds, 10, 100.0, r2);
  EXPECT_GT(data::label_skew(ds, skewed), data::label_skew(ds, mild));
  // All clients non-empty; indices disjoint and complete.
  std::set<std::size_t> seen;
  for (const auto& p : skewed) {
    EXPECT_FALSE(p.empty());
    for (const auto i : p) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 1000U);
}

TEST(Partition, ShardsLimitLabelsPerClient) {
  Rng rng(15);
  const auto ds = data::synthetic_mnist(1000, rng);
  const auto parts = data::partition_shards(ds, 10, 2, rng);
  ASSERT_EQ(parts.size(), 10U);
  for (const auto& p : parts) {
    std::set<std::int64_t> labels;
    for (const auto i : p) labels.insert(ds.labels[i]);
    EXPECT_LE(labels.size(), 3U);  // 2 shards -> at most ~2-3 labels
  }
  EXPECT_GT(data::label_skew(ds, parts), 0.4);
}

TEST(Partition, ErrorsOnBadArgs) {
  Rng rng(16);
  const auto ds = data::synthetic_mnist(20, rng);
  EXPECT_THROW(data::partition_iid(ds, 0, rng), Error);
  EXPECT_THROW(data::partition_iid(ds, 21, rng), Error);
  EXPECT_THROW(data::partition_dirichlet(ds, 5, 0.0, rng), Error);
  EXPECT_THROW(data::partition_shards(ds, 10, 3, rng), Error);
}

}  // namespace
}  // namespace fhdnn
