// FHDNN_CHECKED contract-build tests (DESIGN.md §10).
//
// Proves the checked-build instrumentation actually fires: workspace Scope
// leaks are caught by reset(), broken Tensor invariants are caught at
// at()/kernel entry, and the FP-environment guard accepts a clean process.
// The CHECKED-only assertions skip (not silently pass) in plain builds so
// the same test binary is honest in both configurations; CI runs it with
// -DFHDNN_CHECKED=ON plus ASan/UBSan.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/fpenv.hpp"
#include "util/workspace.hpp"

namespace fhdnn {
namespace {

TEST(Checked, BuildFlagMatchesMacro) {
#ifdef FHDNN_CHECKED
  EXPECT_TRUE(util::checked_build());
#else
  EXPECT_FALSE(util::checked_build());
#endif
}

// ---- workspace Scope leak detection --------------------------------------

TEST(Checked, WorkspaceResetThrowsWithOpenScope) {
  if (!util::checked_build()) {
    GTEST_SKIP() << "Scope-leak detection is FHDNN_CHECKED-only";
  }
  util::Workspace ws;
  auto leaked = std::make_unique<util::Workspace::Scope>(ws);
  EXPECT_EQ(ws.scope_depth(), 1);
  EXPECT_THROW(ws.reset(), Error);
  // Closing the Scope restores the contract; reset() works again.
  leaked.reset();
  EXPECT_EQ(ws.scope_depth(), 0);
  EXPECT_NO_THROW(ws.reset());
}

TEST(Checked, WorkspaceResetThrowsUnderNestedScopes) {
  if (!util::checked_build()) {
    GTEST_SKIP() << "Scope-leak detection is FHDNN_CHECKED-only";
  }
  util::Workspace ws;
  const util::Workspace::Scope outer(ws);
  {
    const util::Workspace::Scope inner(ws);
    EXPECT_EQ(ws.scope_depth(), 2);
    EXPECT_THROW(ws.reset(), Error);
  }
  // Still one open Scope: still a contract violation.
  EXPECT_EQ(ws.scope_depth(), 1);
  EXPECT_THROW(ws.reset(), Error);
}

TEST(Checked, ScopeDepthTracksNestingInEveryBuild) {
  // scope_depth() itself is always maintained — only the reset() throw is
  // gated on FHDNN_CHECKED.
  util::Workspace ws;
  EXPECT_EQ(ws.scope_depth(), 0);
  {
    const util::Workspace::Scope a(ws);
    EXPECT_EQ(ws.scope_depth(), 1);
    {
      const util::Workspace::Scope b(ws);
      EXPECT_EQ(ws.scope_depth(), 2);
      (void)ws.floats(128);
    }
    EXPECT_EQ(ws.scope_depth(), 1);
  }
  EXPECT_EQ(ws.scope_depth(), 0);
  EXPECT_NO_THROW(ws.reset());
}

TEST(Checked, CheckedAssertThrowsOnlyInCheckedBuilds) {
  bool evaluated = false;
  const auto probe = [&] {
    evaluated = true;
    return false;
  };
  if (util::checked_build()) {
    EXPECT_THROW(FHDNN_CHECKED_ASSERT(probe(), "must fire"), Error);
    EXPECT_TRUE(evaluated);
  } else {
    // Compiled out: the condition must not even be evaluated.
    FHDNN_CHECKED_ASSERT(probe(), "must not fire");
    EXPECT_FALSE(evaluated);
  }
}

// ---- bounds-checked Tensor access ----------------------------------------

TEST(Checked, TensorAtOutOfBoundsThrows) {
  // The bounds FHDNN_CHECK is always on, in every build type.
  Tensor t(Shape{2, 3});
  EXPECT_NO_THROW(t.at(0));
  EXPECT_NO_THROW(t.at(5));
  EXPECT_THROW(t.at(6), Error);
  EXPECT_THROW(t.at(-1), Error);
  const Tensor& ct = t;
  EXPECT_THROW(ct.at(6), Error);
  EXPECT_THROW((void)t(2, 0), Error);
  EXPECT_THROW((void)t(0, 3), Error);
}

TEST(Checked, BrokenInvariantCaughtAtAccess) {
  if (!util::checked_build()) {
    GTEST_SKIP() << "invariant re-validation on at() needs FHDNN_CHECKED "
                    "(or a debug build)";
  }
  // vec() can resize the buffer behind the shape's back (serialization
  // layers do); checked builds re-validate on every at().
  Tensor t(Shape{2, 3});
  t.vec().resize(4);
  EXPECT_THROW(t.assert_invariant(), Error);
  EXPECT_THROW((void)t.at(0), Error);
  const Tensor& ct = t;
  EXPECT_THROW((void)ct.at(0), Error);
}

// ---- FP-environment guard ------------------------------------------------

TEST(Checked, FpEnvironmentIsStrictInTests) {
  // The test process runs without fast-math/FTZ, so the guard must agree —
  // this is the same call the engines make via checked_startup().
  EXPECT_EQ(util::fp_environment_issues(), "");
  EXPECT_TRUE(util::fp_environment_strict());
  EXPECT_NO_THROW(util::assert_fp_environment());
  EXPECT_NO_THROW(util::checked_startup());
}

TEST(Checked, SubnormalsSurviveArithmetic) {
  // Behavioural cross-check of what fp_environment_issues() probes: FTZ
  // would flush these to zero and silently fork the golden histories.
  volatile float min_norm = 1.17549435e-38F;
  volatile float half = 0.5F;
  const float sub = min_norm * half;
  EXPECT_GT(sub, 0.0F);
  volatile float denorm = sub;
  volatile float two = 2.0F;
  EXPECT_EQ(denorm * two, min_norm);
}

}  // namespace
}  // namespace fhdnn
