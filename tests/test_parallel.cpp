// Tests for util/parallel.hpp and the determinism guarantee of every
// parallel path: tensor kernels and full FL training runs must be
// bit-identical at FHDNN_THREADS=1 and FHDNN_THREADS=4.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedhd.hpp"
#include "hdc/encoder.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "tensor/conv.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"

namespace fhdnn {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel::num_threads()) {}
  ~ThreadGuard() { parallel::set_num_threads(saved_); }

 private:
  int saved_;
};

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

// ------------------------------------------------------------ parallel_for

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  int calls = 0;
  parallel::parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  parallel::parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, RangeSmallerThanGrainRunsInlineAsOneChunk) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  int calls = 0;
  std::int64_t seen_begin = -1, seen_end = -1;
  parallel::parallel_for(2, 9, 100, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 2);
  EXPECT_EQ(seen_end, 9);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (const int threads : {1, 2, 4}) {
    parallel::set_num_threads(threads);
    constexpr std::int64_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    parallel::parallel_for(0, kN, 64, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  for (const int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    // Trigger on range coverage, not chunk begin: at 1 thread the body is
    // invoked once with the whole [0, 1000) range.
    EXPECT_THROW(
        parallel::parallel_for(0, 1000, 10,
                               [&](std::int64_t, std::int64_t e) {
                                 if (e > 500) {
                                   throw std::runtime_error("chunk failed");
                                 }
                               }),
        std::runtime_error)
        << "at " << threads << " threads";
  }
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  std::atomic<int> inner_chunks{0};
  parallel::parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    EXPECT_TRUE(parallel::in_parallel_region());
    // A nested call must collapse to a single inline chunk.
    int calls = 0;
    parallel::parallel_for(0, 100, 1,
                           [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 1);
    inner_chunks.fetch_add(calls);
  });
  EXPECT_EQ(inner_chunks.load(), 8);
  EXPECT_FALSE(parallel::in_parallel_region());
}

TEST(ParallelFor, GrainForBoundsChunkWork) {
  EXPECT_EQ(parallel::grain_for(1, 1 << 10), 1 << 10);
  EXPECT_EQ(parallel::grain_for(1 << 10, 1 << 10), 1);
  EXPECT_EQ(parallel::grain_for(1 << 20, 1 << 10), 1);  // never below 1
  EXPECT_EQ(parallel::grain_for(0, 1 << 10), 1 << 10);  // zero-cost items
}

// -------------------------------------------------- kernel determinism

TEST(ParallelKernels, MatmulBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{64, 128}, rng);
  const Tensor b = Tensor::randn(Shape{128, 96}, rng);
  parallel::set_num_threads(1);
  const Tensor c1 = ops::matmul(a, b);
  const Tensor bt1 = ops::matmul_bt(a, ops::transpose(b));
  const Tensor at1 = ops::matmul_at(ops::transpose(a), b);
  parallel::set_num_threads(4);
  EXPECT_TRUE(bit_identical(c1, ops::matmul(a, b)));
  EXPECT_TRUE(bit_identical(bt1, ops::matmul_bt(a, ops::transpose(b))));
  EXPECT_TRUE(bit_identical(at1, ops::matmul_at(ops::transpose(a), b)));
}

TEST(ParallelKernels, ConvForwardBackwardBitIdentical) {
  ThreadGuard guard;
  Rng rng(12);
  const ops::Conv2dSpec spec{3, 8, 3, 1, 1};
  const Tensor x = Tensor::randn(Shape{4, 3, 16, 16}, rng);
  const Tensor w = Tensor::randn(Shape{8, 3, 3, 3}, rng);
  const Tensor bias = Tensor::randn(Shape{8}, rng);
  parallel::set_num_threads(1);
  const Tensor y1 = ops::conv2d_forward(x, w, bias, spec);
  const Tensor g = Tensor::randn(y1.shape(), rng);
  const auto grads1 = ops::conv2d_backward(g, x, w, spec);
  parallel::set_num_threads(4);
  const Tensor y4 = ops::conv2d_forward(x, w, bias, spec);
  const auto grads4 = ops::conv2d_backward(g, x, w, spec);
  EXPECT_TRUE(bit_identical(y1, y4));
  EXPECT_TRUE(bit_identical(grads1.grad_weight, grads4.grad_weight));
  EXPECT_TRUE(bit_identical(grads1.grad_bias, grads4.grad_bias));
  EXPECT_TRUE(bit_identical(grads1.grad_input, grads4.grad_input));
}

TEST(ParallelKernels, Im2ColBitIdentical) {
  ThreadGuard guard;
  Rng rng(13);
  const ops::Conv2dSpec spec{2, 4, 3, 2, 1};
  const Tensor x = Tensor::randn(Shape{3, 2, 15, 15}, rng);
  parallel::set_num_threads(1);
  const Tensor cols1 = ops::im2col(x, spec);
  const Tensor folded1 = ops::col2im(cols1, spec, 3, 15, 15);
  parallel::set_num_threads(4);
  EXPECT_TRUE(bit_identical(cols1, ops::im2col(x, spec)));
  EXPECT_TRUE(bit_identical(folded1, ops::col2im(cols1, spec, 3, 15, 15)));
}

// ------------------------------------------------- IEEE NaN propagation

TEST(ParallelKernels, MatmulPropagatesNanAgainstZero) {
  // Regression: the old kernels skipped a == 0 entries, silently swallowing
  // 0 * NaN and 0 * Inf. IEEE-754 requires both to produce NaN.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const Tensor a(Shape{2, 2}, {0.0F, 0.0F, 1.0F, 1.0F});
  const Tensor b_nan(Shape{2, 2}, {nan, 1.0F, 2.0F, 3.0F});
  const Tensor c_nan = ops::matmul(a, b_nan);
  EXPECT_TRUE(std::isnan(c_nan(0, 0)));  // 0*NaN + 0*2
  EXPECT_FALSE(std::isnan(c_nan(0, 1)));

  const Tensor b_inf(Shape{2, 2}, {inf, 1.0F, 2.0F, 3.0F});
  const Tensor c_inf = ops::matmul(a, b_inf);
  EXPECT_TRUE(std::isnan(c_inf(0, 0)));  // 0*Inf = NaN

  // matmul_at: a^T has the zero column in the same position.
  const Tensor at = ops::transpose(a);
  const Tensor c_at = ops::matmul_at(at, b_nan);
  EXPECT_TRUE(std::isnan(c_at(0, 0)));
}

// ---------------------------------------------- FL training determinism

struct FedAvgFixture {
  data::Dataset train, test;
  data::ClientIndices parts;

  FedAvgFixture() {
    Rng rng(21);
    auto full = data::synthetic_mnist(300, rng);
    auto split = data::train_test_split(full, 0.2, rng);
    train = std::move(split.train);
    test = std::move(split.test);
    parts = data::partition_iid(train, 4, rng);
  }

  fl::FedAvgConfig config() const {
    fl::FedAvgConfig cfg;
    cfg.n_clients = 4;
    cfg.client_fraction = 0.75;  // 3 clients/round
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg.rounds = 2;
    cfg.seed = 22;
    return cfg;
  }

  fl::ModelFactory factory() const {
    return [](Rng& rng) { return nn::make_cnn2(1, 28, 10, rng); };
  }
};

void expect_identical_histories(const fl::TrainingHistory& a,
                                const fl::TrainingHistory& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ma = a.rounds()[i];
    const auto& mb = b.rounds()[i];
    EXPECT_EQ(ma.test_accuracy, mb.test_accuracy) << "round " << i;
    EXPECT_EQ(ma.train_loss, mb.train_loss) << "round " << i;
    EXPECT_EQ(ma.clients, mb.clients) << "round " << i;
    EXPECT_EQ(ma.sampled, mb.sampled) << "round " << i;
    EXPECT_EQ(ma.dropped, mb.dropped) << "round " << i;
    EXPECT_EQ(ma.bytes_uplink, mb.bytes_uplink) << "round " << i;
    EXPECT_EQ(ma.bits_on_air, mb.bits_on_air) << "round " << i;
    EXPECT_EQ(ma.bit_flips, mb.bit_flips) << "round " << i;
    EXPECT_EQ(ma.packets_lost, mb.packets_lost) << "round " << i;
    // wall_seconds is intentionally not compared: it is the one
    // RoundMetrics field outside the bit-identical contract.
  }
}

TEST(ParallelFl, FedAvgRunBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  FedAvgFixture fx;
  auto cfg = fx.config();
  cfg.dropout_prob = 0.3;
  cfg.update_fraction = 0.5;

  parallel::set_num_threads(1);
  fl::FedAvgTrainer serial(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const auto h1 = serial.run();
  const auto state1 = nn::get_state(serial.global_model());

  parallel::set_num_threads(4);
  fl::FedAvgTrainer threaded(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const auto h4 = threaded.run();
  const auto state4 = nn::get_state(threaded.global_model());

  expect_identical_histories(h1, h4);
  ASSERT_EQ(state1.size(), state4.size());
  EXPECT_EQ(std::memcmp(state1.data(), state4.data(),
                        state1.size() * sizeof(float)),
            0);
}

TEST(ParallelFl, FedAvgWithChannelBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  FedAvgFixture fx;
  const auto cfg = fx.config();
  const auto chan = channel::make_packet_loss(0.2, 1024);

  parallel::set_num_threads(1);
  fl::FedAvgTrainer serial(fx.factory(), fx.train, fx.parts, fx.test, cfg,
                           chan.get());
  const auto h1 = serial.run();

  parallel::set_num_threads(4);
  fl::FedAvgTrainer threaded(fx.factory(), fx.train, fx.parts, fx.test, cfg,
                             chan.get());
  const auto h4 = threaded.run();
  expect_identical_histories(h1, h4);
}

TEST(ParallelFl, SubsampledUplinkCountsRealScalars) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  FedAvgFixture fx;
  auto cfg = fx.config();
  cfg.rounds = 1;
  cfg.update_fraction = 0.5;
  fl::FedAvgTrainer trainer(fx.factory(), fx.train, fx.parts, fx.test, cfg);
  const auto hist = trainer.run();
  const auto& m = hist.rounds()[0];
  const auto full_bytes = 3ULL *  // 3 delivered clients
                          static_cast<std::uint64_t>(trainer.update_scalars()) *
                          sizeof(float);
  // The Bernoulli mask transmits ~half the scalars; the exact count is what
  // must be charged (within a few sigma of the mean), and bits_on_air must
  // reflect the same count, not the full vector.
  EXPECT_GT(m.bytes_uplink, static_cast<std::uint64_t>(0.45 * full_bytes));
  EXPECT_LT(m.bytes_uplink, static_cast<std::uint64_t>(0.55 * full_bytes));
  EXPECT_EQ(m.bits_on_air, 8 * m.bytes_uplink);
  EXPECT_NE(m.bytes_uplink, full_bytes / 2);  // expected-value accounting
}

TEST(ParallelFl, FedHdRunBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(31);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 4;
  spec.n = 400;
  spec.separation = 1.0;
  const auto ds = data::make_isolet_like(spec, rng);
  Rng enc_rng = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(32, 512, enc_rng);
  const auto split = data::train_test_split(ds, 0.2, rng);
  const fl::HdClientData test{enc.encode(split.test.x), split.test.labels};
  const auto parts = data::partition_iid(split.train, 6, rng);
  std::vector<fl::HdClientData> clients;
  for (const auto& part : parts) {
    const auto sub = split.train.subset(part);
    clients.push_back({enc.encode(sub.x), sub.labels});
  }
  fl::FedHdConfig cfg;
  cfg.n_clients = 6;
  cfg.client_fraction = 0.5;
  cfg.local_epochs = 2;
  cfg.rounds = 3;
  cfg.num_classes = 4;
  cfg.hd_dim = 512;
  cfg.seed = 32;
  cfg.dropout_prob = 0.3;
  cfg.uplink.mode = channel::HdUplinkMode::BitErrors;
  cfg.uplink.ber = 1e-4;

  parallel::set_num_threads(1);
  fl::FedHdTrainer serial(clients, test, cfg);
  const auto h1 = serial.run();
  const Tensor proto1 = serial.global().prototypes();

  parallel::set_num_threads(4);
  fl::FedHdTrainer threaded(clients, test, cfg);
  const auto h4 = threaded.run();

  expect_identical_histories(h1, h4);
  EXPECT_TRUE(bit_identical(proto1, threaded.global().prototypes()));
}

}  // namespace
}  // namespace fhdnn
