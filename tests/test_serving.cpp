// Loopback integration tests for the fhdnnd serving seam (fl/serving.hpp):
// a ServerRoundDriver driving a WorkerLoop over an in-process loopback pipe
// must reproduce the in-process golden histories BIT-FOR-BIT — every
// double, every byte counter — at 1 and 4 threads, for both trainers.
// Plus: checkpoint/restart mid-run with a fresh worker, wire-level
// accounting equality, and rejection of protocol violations.
//
// This test runs under TSan in CI (the `serving` job): the worker thread
// and the server thread pump opposite ends of the same pipe concurrently.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>  // fhdnn-lint: allow(raw-thread) — test harness hosts the worker thread
#include <utility>
#include <vector>

#include "fl/serving.hpp"
#include "net/connection.hpp"
#include "net/loopback.hpp"
#include "util/parallel.hpp"
#include "wire/messages.hpp"
#include "workload.hpp"

namespace fhdnn {
namespace {

class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel::num_threads()) {}
  ~ThreadGuard() { parallel::set_num_threads(saved_); }

 private:
  int saved_;
};

/// Everything outside the determinism contract is wall_seconds; compare
/// the rest exactly.
void expect_same_history(const fl::TrainingHistory& a,
                         const fl::TrainingHistory& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i + 1));
    const auto& x = a.rounds()[i];
    const auto& y = b.rounds()[i];
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.test_accuracy, y.test_accuracy);
    EXPECT_EQ(x.train_loss, y.train_loss);
    EXPECT_EQ(x.clients, y.clients);
    EXPECT_EQ(x.sampled, y.sampled);
    EXPECT_EQ(x.dropped, y.dropped);
    EXPECT_EQ(x.bytes_uplink, y.bytes_uplink);
    EXPECT_EQ(x.bits_on_air, y.bits_on_air);
    EXPECT_EQ(x.bit_flips, y.bit_flips);
    EXPECT_EQ(x.packets_lost, y.packets_lost);
    EXPECT_EQ(x.retransmissions, y.retransmissions);
    EXPECT_EQ(x.residual_errors, y.residual_errors);
  }
}

/// One loopback worker serving a dedicated trainer replica on its own
/// thread; join() after the driver shuts down (or the pipe closes).
class LoopbackWorker {
 public:
  LoopbackWorker(const std::string& proto,
                 std::unique_ptr<net::Connection> end)
      : wl_(workload::make_workload({proto, 3, "", 0, false, 0})),
        conn_(std::move(end)),
        thread_([this, proto] {
          fl::WorkerLoop loop(*conn_, wl_->protocol(),
                              wl_->config_fingerprint(), proto);
          loop.handshake();
          (void)loop.serve();
        }) {}

  ~LoopbackWorker() {
    if (thread_.joinable()) thread_.join();
  }

  void join() { thread_.join(); }

 private:
  std::unique_ptr<workload::Workload> wl_;
  std::unique_ptr<net::Connection> conn_;
  std::thread thread_;  // fhdnn-lint: allow(raw-thread)
};

fl::TrainingHistory run_served(const std::string& proto, int threads) {
  parallel::set_num_threads(threads);
  workload::Options opt;
  opt.protocol = proto;
  auto server = workload::make_workload(opt);
  auto [worker_end, server_end] = net::make_loopback_pair();
  fl::ServerRoundDriver driver(server->config_fingerprint(), proto);
  LoopbackWorker worker(proto, std::move(worker_end));
  driver.add_worker(std::move(server_end));
  server->set_round_driver(&driver);
  const auto history = server->run();
  driver.shutdown(static_cast<std::int64_t>(history.rounds().size()));
  worker.join();
  EXPECT_GT(driver.wire_bytes_sent(), 0U);
  EXPECT_GT(driver.wire_bytes_received(), 0U);
  return history;
}

fl::TrainingHistory run_in_process(const std::string& proto, int threads) {
  parallel::set_num_threads(threads);
  workload::Options opt;
  opt.protocol = proto;
  return workload::make_workload(opt)->run();
}

// --------------------------------------------------- golden bit-identity

TEST(Serving, FedHdLoopbackMatchesInProcessAtEveryThreadCount) {
  ThreadGuard guard;
  const auto golden = run_in_process("fedhd", 1);
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_history(golden, run_served("fedhd", threads));
  }
}

TEST(Serving, FedAvgLoopbackMatchesInProcessAtEveryThreadCount) {
  ThreadGuard guard;
  const auto golden = run_in_process("fedavg", 1);
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_history(golden, run_served("fedavg", threads));
  }
}

// ----------------------------------------- accounting over the wire

TEST(Serving, WallSecondsAndTrafficAccountedOnServedRounds) {
  ThreadGuard guard;
  parallel::set_num_threads(1);
  const auto served = run_served("fedhd", 1);
  const auto local = run_in_process("fedhd", 1);
  ASSERT_EQ(served.size(), local.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    // The regression this pins: bytes-on-air accounting over the wire must
    // equal the in-process channel accounting EXACTLY — the worker runs
    // the same transport with the same RNG forks, and the stats travel in
    // full (all ten TransportStats fields).
    EXPECT_EQ(served.rounds()[i].bytes_uplink, local.rounds()[i].bytes_uplink);
    EXPECT_EQ(served.rounds()[i].bits_on_air, local.rounds()[i].bits_on_air);
    // wall_seconds stays engine-measured (not zero, not negative) even
    // though training happened on the worker thread.
    EXPECT_GE(served.rounds()[i].wall_seconds, 0.0);
  }
  EXPECT_EQ(served.total_uplink_bytes(), local.total_uplink_bytes());
}

// --------------------------------------------------- checkpoint + restart

TEST(Serving, ServerRestartsFromCheckpointWithFreshWorker) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  const auto golden = run_in_process("fedhd", 2);
  const std::string path = testing::TempDir() + "fhdnn_serving_ck.snap";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  workload::Options opt;
  opt.protocol = "fedhd";
  opt.checkpoint_path = path;

  // First server life: a checkpointing run over a loopback worker. Boundary
  // snapshots rotate through <path> / <path>.prev, so afterwards .prev
  // holds the round-2 boundary image — exactly what survives a server
  // killed while committing the round-3 snapshot.
  {
    auto victim = workload::make_workload(opt);
    auto [worker_end, server_end] = net::make_loopback_pair();
    fl::ServerRoundDriver driver(victim->config_fingerprint(), "fedhd");
    LoopbackWorker worker("fedhd", std::move(worker_end));
    driver.add_worker(std::move(server_end));
    victim->set_round_driver(&driver);
    (void)victim->run();
    driver.shutdown(3);
  }

  // Second life: a brand-new server process-equivalent resumes from the
  // round-2 boundary snapshot with a brand-new worker replica and re-drives
  // round 3 over the wire. The finished history must match end to end.
  auto survivor = workload::make_workload(opt);
  survivor->resume(path + ".prev");
  EXPECT_EQ(survivor->history().size(), 2U);
  auto [worker_end, server_end] = net::make_loopback_pair();
  fl::ServerRoundDriver driver(survivor->config_fingerprint(), "fedhd");
  LoopbackWorker worker("fedhd", std::move(worker_end));
  driver.add_worker(std::move(server_end));
  survivor->set_round_driver(&driver);
  const auto resumed = survivor->run();
  driver.shutdown(static_cast<std::int64_t>(resumed.rounds().size()));
  worker.join();
  expect_same_history(golden, resumed);
}

// --------------------------------------------------- protocol violations

TEST(Serving, HandshakeRejectsFingerprintMismatch) {
  workload::Options opt;
  opt.protocol = "fedhd";
  auto server = workload::make_workload(opt);
  auto [worker_end, server_end] = net::make_loopback_pair();
  fl::ServerRoundDriver driver(server->config_fingerprint(), "fedhd");

  std::thread bad([&worker_end] {  // fhdnn-lint: allow(raw-thread)
    net::MessageChannel chan(*worker_end);
    wire::HelloMsg hello;
    hello.config_fingerprint = 0xBADBAD;  // wrong config
    hello.protocol = "fedhd";
    chan.send(hello.to_frame());
    while (!chan.flush()) {
    }
    // The server closes on us; drain until then.
    try {
      (void)chan.recv(10000);
    } catch (const Error&) {
    }
  });
  EXPECT_THROW((void)driver.add_worker(std::move(server_end)),
               net::NetError);
  bad.join();
}

TEST(Serving, DriveRejectsUpdateForWrongRound) {
  ThreadGuard guard;
  parallel::set_num_threads(1);
  workload::Options opt;
  opt.protocol = "fedhd";
  auto server = workload::make_workload(opt);
  auto [worker_end, server_end] = net::make_loopback_pair();
  const std::uint32_t fp = server->config_fingerprint();
  fl::ServerRoundDriver driver(fp, "fedhd");

  // A compliant handshake, then a lie about the round index.
  std::thread malicious([&worker_end, fp] {  // fhdnn-lint: allow(raw-thread)
    net::MessageChannel chan(*worker_end);
    wire::HelloMsg hello;
    hello.protocol = "fedhd";
    hello.config_fingerprint = fp;
    chan.send(hello.to_frame());
    while (!chan.flush()) {
    }
    try {
      const wire::Frame ack = chan.recv(10000);
      (void)wire::HelloAckMsg::from_frame(ack);
      const wire::Frame assign_frame = chan.recv(30000);
      const auto assign = wire::RoundAssignMsg::from_frame(assign_frame);
      wire::UpdateMsg bad;
      bad.round_index = assign.round_index + 1;  // wrong round
      bad.slot = assign.slots.empty() ? 0 : assign.slots[0].slot;
      bad.client = assign.slots.empty() ? 0 : assign.slots[0].client;
      bad.update_blob = {};
      chan.send(bad.to_frame());
      while (!chan.flush()) {
      }
    } catch (const Error&) {
      // Server tore the pipe down on rejection — also a pass.
    }
  });
  (void)driver.add_worker(std::move(server_end));
  server->set_round_driver(&driver);
  EXPECT_THROW((void)server->round(1), net::NetError);
  malicious.join();
}

}  // namespace
}  // namespace fhdnn
