// Adversarial tests for the fhdnnd wire format (src/wire), mirroring
// test_snapshot.cpp's discipline: every message type round-trips
// bit-exactly, every single-bit flip of an encoded frame is caught with a
// typed WireError, truncation fails at EVERY prefix length, version skew
// is rejected before anything else is trusted, and trailing bytes are
// never silently ignored.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "channel/arq.hpp"
#include "channel/channel.hpp"
#include "util/rng.hpp"
#include "wire/messages.hpp"
#include "wire/wire.hpp"

namespace fhdnn {
namespace {

using wire::Frame;
using wire::MsgType;
using wire::WireError;
using wire::WireErrorKind;

std::vector<std::uint8_t> encode(const Frame& f) {
  return wire::encode_frame(f.type, f.payload);
}

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

/// A RoundAssign with every field exercised: mid-stream RNG (cached
/// normal), several slots, and a nontrivial blob.
wire::RoundAssignMsg sample_assign() {
  Rng rng(1234);
  (void)rng.normal();  // populate the cached Box-Muller half
  wire::RoundAssignMsg m;
  m.round_index = 7;
  m.n_participants = 5;
  m.rng = rng.state();
  m.slots = {{0, 3}, {2, 1}, {4, 4}};
  m.state_blob = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  return m;
}

channel::TransportStats sample_stats() {
  channel::TransportStats s;
  s.payload_scalars = 11;
  s.payload_bytes = 22;
  s.bits_on_air = 33;
  s.bit_flips = 44;
  s.packets_total = 55;
  s.packets_lost = 66;
  s.retransmissions = 77;
  s.residual_errors = 88;
  s.backoff_seconds = 0.125;
  s.noise_power = -3.5e-7;
  return s;
}

// ------------------------------------------------------------ frame layer

TEST(WireFrame, HeaderLayoutConstants) {
  EXPECT_EQ(wire::kFrameHeaderSize, 20U);
  const auto bytes = wire::encode_frame(MsgType::kHello, {1, 2, 3});
  ASSERT_EQ(bytes.size(), wire::kFrameHeaderSize + 3);
  EXPECT_EQ(bytes[0], 'F');
  EXPECT_EQ(bytes[1], 'H');
  EXPECT_EQ(bytes[2], 'D');
  EXPECT_EQ(bytes[3], 'W');
}

TEST(WireFrame, EmptyAndNonEmptyPayloadRoundTrip) {
  for (const std::vector<std::uint8_t>& payload :
       {std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{9, 8, 7}}) {
    const auto bytes = wire::encode_frame(MsgType::kUpdate, payload);
    const Frame f = wire::decode_frame(bytes.data(), bytes.size());
    EXPECT_EQ(f.type, MsgType::kUpdate);
    EXPECT_EQ(f.payload, payload);
  }
}

TEST(WireFrame, TruncationAtEveryPrefixFails) {
  const auto bytes = wire::encode_frame(MsgType::kRoundDone, {1, 2, 3, 4, 5});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)wire::decode_frame(bytes.data(), len), WireError)
        << "prefix " << len << " decoded";
  }
}

TEST(WireFrame, TrailingBytesRejected) {
  auto bytes = wire::encode_frame(MsgType::kShutdown, {1});
  bytes.push_back(0);
  try {
    (void)wire::decode_frame(bytes.data(), bytes.size());
    FAIL() << "trailing byte accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kSchema);
    EXPECT_EQ(e.byte_offset(), bytes.size() - 1);
  }
}

TEST(WireFrame, EveryBitFlipDetected) {
  // Flip every bit of an encoded Hello; either the frame layer or the
  // message decoder must reject it (a flip inside the type field can
  // produce another *valid* frame type — the typed from_frame catches
  // that as a schema error).
  wire::HelloMsg hello;
  hello.config_fingerprint = 0xC0FFEE42;
  hello.protocol = "fedhd";
  hello.capabilities = 0;
  const auto bytes = encode(hello.to_frame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      auto copy = bytes;
      copy[i] = static_cast<std::uint8_t>(copy[i] ^ (1U << b));
      EXPECT_THROW(
          {
            const Frame f = wire::decode_frame(copy.data(), copy.size());
            (void)wire::HelloMsg::from_frame(f);
          },
          WireError)
          << "flip at byte " << i << " bit " << b << " went undetected";
    }
  }
}

TEST(WireFrame, BadMagicReportsFormatAtOffsetZero) {
  auto bytes = wire::encode_frame(MsgType::kHello, {});
  bytes[0] = 'X';
  try {
    (void)wire::decode_frame(bytes.data(), bytes.size());
    FAIL();
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kFormat);
    EXPECT_EQ(e.byte_offset(), 0U);
  }
}

TEST(WireFrame, VersionSkewReportsTypedError) {
  auto bytes = wire::encode_frame(MsgType::kHello, {1, 2});
  // Patch the u16 version field (bytes 4..5) to kWireVersion + 1.
  const std::uint16_t skew = wire::kWireVersion + 1;
  std::memcpy(bytes.data() + 4, &skew, 2);
  try {
    (void)wire::decode_frame(bytes.data(), bytes.size());
    FAIL() << "version skew accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kVersion);
    EXPECT_EQ(e.byte_offset(), 4U);
  }
}

TEST(WireFrame, UnknownTypeRejected) {
  auto bytes = wire::encode_frame(MsgType::kHello, {});
  const std::uint16_t bogus = 999;
  std::memcpy(bytes.data() + 6, &bogus, 2);
  try {
    (void)wire::decode_frame(bytes.data(), bytes.size());
    FAIL();
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kType);
    EXPECT_EQ(e.byte_offset(), 6U);
  }
  EXPECT_TRUE(wire::msg_type_known(1));
  EXPECT_TRUE(wire::msg_type_known(7));
  EXPECT_FALSE(wire::msg_type_known(0));
  EXPECT_FALSE(wire::msg_type_known(8));
}

TEST(WireFrame, PayloadCorruptionReportsCrc) {
  auto bytes = wire::encode_frame(MsgType::kUpdate, {10, 20, 30});
  bytes[wire::kFrameHeaderSize + 1] ^= 0x40;
  try {
    (void)wire::decode_frame(bytes.data(), bytes.size());
    FAIL();
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kCrc);
  }
}

TEST(WireFrame, HostileLengthDoesNotAllocate) {
  auto bytes = wire::encode_frame(MsgType::kHello, {});
  const std::uint64_t huge = wire::kMaxFrameBytes + 1;
  std::memcpy(bytes.data() + 8, &huge, 8);
  EXPECT_THROW((void)wire::decode_frame(bytes.data(), bytes.size()),
               WireError);
}

// ------------------------------------------------------- frame assembler

TEST(WireAssembler, ReassemblesByteByByte) {
  wire::HelloAckMsg a;
  a.config_fingerprint = 77;
  a.worker_id = 3;
  wire::ShutdownMsg s;
  s.rounds_completed = 12;
  auto stream = encode(a.to_frame());
  const auto second = encode(s.to_frame());
  stream.insert(stream.end(), second.begin(), second.end());

  wire::FrameAssembler asm_;
  std::vector<Frame> out;
  for (const std::uint8_t byte : stream) {
    asm_.feed(&byte, 1);
    while (auto f = asm_.next()) out.push_back(std::move(*f));
  }
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(wire::HelloAckMsg::from_frame(out[0]).worker_id, 3U);
  EXPECT_EQ(wire::ShutdownMsg::from_frame(out[1]).rounds_completed, 12);
  EXPECT_EQ(asm_.buffered(), 0U);
}

TEST(WireAssembler, RejectsCorruptStreamEagerly) {
  auto bytes = wire::encode_frame(MsgType::kHello, {1, 2, 3});
  bytes[1] = '!';  // magic broken: must throw as soon as the header arrives
  wire::FrameAssembler asm_;
  asm_.feed(bytes.data(), wire::kFrameHeaderSize);
  EXPECT_THROW((void)asm_.next(), WireError);
}

TEST(WireAssembler, PartialFrameYieldsNothing) {
  const auto bytes = wire::encode_frame(MsgType::kUpdate, {1, 2, 3, 4});
  wire::FrameAssembler asm_;
  asm_.feed(bytes.data(), bytes.size() - 1);
  EXPECT_FALSE(asm_.next().has_value());
  EXPECT_EQ(asm_.buffered(), bytes.size() - 1);
  asm_.feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_TRUE(asm_.next().has_value());
}

// ------------------------------------------------------- payload strictness

TEST(WirePayload, TrailingPayloadBytesRejected) {
  wire::PayloadWriter w;
  w.u32(5);
  w.u8(1);  // one extra byte the reader will not consume
  const auto payload = w.take();
  wire::PayloadReader r(payload);
  EXPECT_EQ(r.u32(), 5U);
  try {
    r.finish();
    FAIL() << "trailing payload byte accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kSchema);
    EXPECT_EQ(e.byte_offset(), 4U);
  }
}

TEST(WirePayload, HostileFloatCountFailsCleanly) {
  // A length prefix of 2^62 floats must fail as truncation, not overflow
  // into a tiny allocation.
  wire::PayloadWriter w;
  w.u64(std::uint64_t{1} << 62);
  const auto payload = w.take();
  wire::PayloadReader r(payload);
  try {
    (void)r.floats();
    FAIL();
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kTruncated);
  }
}

TEST(WirePayload, StringAndBlobRoundTrip) {
  wire::PayloadWriter w;
  w.str("fedavg");
  w.blob({0, 255, 128});
  w.floats({1.5F, -0.0F, std::numeric_limits<float>::infinity()});
  const auto payload = w.take();
  wire::PayloadReader r(payload);
  EXPECT_EQ(r.str(), "fedavg");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{0, 255, 128}));
  const auto f = r.floats();
  ASSERT_EQ(f.size(), 3U);
  EXPECT_EQ(f[0], 1.5F);
  EXPECT_TRUE(std::signbit(f[1]));
  EXPECT_TRUE(std::isinf(f[2]));
  r.finish();
}

// ------------------------------------------------------ message round-trips

TEST(WireMessages, HelloRoundTrip) {
  wire::HelloMsg m;
  m.config_fingerprint = 0xABCD1234;
  m.protocol = "fedavg";
  m.capabilities = 0;
  const auto back = wire::HelloMsg::from_frame(m.to_frame());
  EXPECT_EQ(back.config_fingerprint, m.config_fingerprint);
  EXPECT_EQ(back.protocol, m.protocol);
  EXPECT_EQ(back.capabilities, m.capabilities);
}

TEST(WireMessages, HelloAckRoundTrip) {
  wire::HelloAckMsg m;
  m.config_fingerprint = 42;
  m.worker_id = 17;
  const auto back = wire::HelloAckMsg::from_frame(m.to_frame());
  EXPECT_EQ(back.config_fingerprint, 42U);
  EXPECT_EQ(back.worker_id, 17U);
}

TEST(WireMessages, RoundAssignRoundTripIsRngExact) {
  const auto m = sample_assign();
  const auto back = wire::RoundAssignMsg::from_frame(m.to_frame());
  EXPECT_EQ(back.round_index, m.round_index);
  EXPECT_EQ(back.n_participants, m.n_participants);
  ASSERT_EQ(back.slots.size(), m.slots.size());
  for (std::size_t i = 0; i < m.slots.size(); ++i) {
    EXPECT_EQ(back.slots[i].slot, m.slots[i].slot);
    EXPECT_EQ(back.slots[i].client, m.slots[i].client);
  }
  EXPECT_EQ(back.state_blob, m.state_blob);

  // The decoded RNG state must continue the exact stream, including the
  // cached Box-Muller normal.
  Rng original(0);
  original.set_state(m.rng);
  Rng decoded(0);
  decoded.set_state(back.rng);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(bits_equal(original.normal(), decoded.normal()));
    EXPECT_EQ(original.next_u64(), decoded.next_u64());
  }
}

TEST(WireMessages, RoundAssignRejectsInconsistentSlots) {
  // slot index >= n_participants: structurally valid, semantically broken.
  auto m = sample_assign();
  m.slots[1].slot = m.n_participants;
  try {
    (void)wire::RoundAssignMsg::from_frame(m.to_frame());
    FAIL() << "out-of-range slot accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kSchema);
  }
  auto too_many = sample_assign();
  too_many.n_participants = 2;  // fewer than the 3 assigned slots
  too_many.slots[0].slot = 0;
  too_many.slots[1].slot = 1;
  too_many.slots[2].slot = 1;
  EXPECT_THROW((void)wire::RoundAssignMsg::from_frame(too_many.to_frame()),
               WireError);
}

TEST(WireMessages, UpdateRoundTripCarriesAllTenStatFields) {
  wire::UpdateMsg m;
  m.round_index = 3;
  m.slot = 1;
  m.client = 9;
  m.loss = 0.0625;
  m.stats = sample_stats();
  m.update_blob = {1, 2, 3};
  const auto back = wire::UpdateMsg::from_frame(m.to_frame());
  EXPECT_EQ(back.round_index, 3);
  EXPECT_EQ(back.slot, 1U);
  EXPECT_EQ(back.client, 9U);
  EXPECT_TRUE(bits_equal(back.loss, m.loss));
  EXPECT_EQ(back.stats.payload_scalars, 11U);
  EXPECT_EQ(back.stats.payload_bytes, 22U);
  EXPECT_EQ(back.stats.bits_on_air, 33U);
  EXPECT_EQ(back.stats.bit_flips, 44U);
  EXPECT_EQ(back.stats.packets_total, 55U);
  EXPECT_EQ(back.stats.packets_lost, 66U);
  EXPECT_EQ(back.stats.retransmissions, 77U);
  EXPECT_EQ(back.stats.residual_errors, 88U);
  EXPECT_TRUE(bits_equal(back.stats.backoff_seconds, 0.125));
  EXPECT_TRUE(bits_equal(back.stats.noise_power, -3.5e-7));
  EXPECT_EQ(back.update_blob, m.update_blob);
}

TEST(WireMessages, RoundDoneRoundTripPreservesNaN) {
  wire::RoundDoneMsg m;
  m.round_index = 2;
  m.accepted = 4;
  m.bytes_uplink = 12288;
  m.test_accuracy = std::numeric_limits<double>::quiet_NaN();
  const auto back = wire::RoundDoneMsg::from_frame(m.to_frame());
  EXPECT_EQ(back.round_index, 2);
  EXPECT_EQ(back.accepted, 4U);
  EXPECT_EQ(back.bytes_uplink, 12288U);
  EXPECT_TRUE(std::isnan(back.test_accuracy));
}

TEST(WireMessages, ShutdownRoundTrip) {
  wire::ShutdownMsg m;
  m.rounds_completed = 20;
  EXPECT_EQ(wire::ShutdownMsg::from_frame(m.to_frame()).rounds_completed, 20);
}

TEST(WireMessages, ArqFrameRoundTrip) {
  wire::ArqFrameMsg m;
  m.seq = 5;
  m.is_last = 1;
  m.payload = {0.25F, -1.0F, 3.5F};
  m.payload_crc = channel::crc32(m.payload.data(), m.payload.size());
  const auto back = wire::ArqFrameMsg::from_frame(m.to_frame());
  EXPECT_EQ(back.seq, 5U);
  EXPECT_EQ(back.is_last, 1);
  EXPECT_EQ(back.payload, m.payload);
  EXPECT_EQ(back.payload_crc,
            channel::crc32(back.payload.data(), back.payload.size()));
}

TEST(WireMessages, FromFrameRejectsWrongType) {
  wire::HelloMsg hello;
  hello.protocol = "fedhd";
  const Frame f = hello.to_frame();
  try {
    (void)wire::ShutdownMsg::from_frame(f);
    FAIL() << "type confusion accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.kind(), WireErrorKind::kSchema);
  }
}

TEST(WireMessages, RngStateFlagValidated) {
  // has_cached_normal travels as a u8 that must be 0 or 1.
  wire::PayloadWriter w;
  w.u64(1);
  w.u64(2);
  w.u64(3);
  w.u64(4);
  w.u8(2);  // invalid flag
  w.f64(0.0);
  const auto payload = w.take();
  wire::PayloadReader r(payload);
  EXPECT_THROW((void)wire::get_rng_state(r), WireError);
}

}  // namespace
}  // namespace fhdnn
