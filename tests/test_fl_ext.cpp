// Tests for the extended FL components: convergence diagnostics, the
// wall-clock timeline, update-subsampling compression, and adaptive HD
// refinement.
#include <gtest/gtest.h>

#include <cmath>

#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/convergence.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedhd.hpp"
#include "fl/timeline.hpp"
#include "hdc/encoder.hpp"
#include "nn/resnet.hpp"
#include "util/error.hpp"

namespace fhdnn {
namespace {

// ----------------------------------------------------------- power-law fit

TEST(PowerLaw, RecoversKnownExponent) {
  std::vector<double> ys;
  for (int t = 1; t <= 40; ++t) {
    ys.push_back(5.0 / std::pow(static_cast<double>(t), 1.3));
  }
  const auto fit = fl::fit_power_law(ys);
  EXPECT_NEAR(fit.exponent, 1.3, 1e-6);
  EXPECT_NEAR(fit.log_c, std::log(5.0), 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_EQ(fit.points, 40U);
}

TEST(PowerLaw, SkipsNonPositiveValues) {
  // y = 1/t^2 at t = 1, 3, 5, 6; zeros/negatives at t = 2, 4 are skipped.
  std::vector<double> ys{1.0, 0.0, 1.0 / 9.0, -1.0, 1.0 / 25.0, 1.0 / 36.0};
  const auto fit = fl::fit_power_law(ys);
  EXPECT_EQ(fit.points, 4U);
  EXPECT_NEAR(fit.exponent, 2.0, 0.05);
}

TEST(PowerLaw, RequiresEnoughPoints) {
  const std::vector<double> ys{1.0, 0.5};
  EXPECT_THROW(fl::fit_power_law(ys), Error);
}

TEST(PowerLaw, FlatSeriesFitsZeroExponent) {
  const std::vector<double> ys(10, 0.7);
  const auto fit = fl::fit_power_law(ys);
  EXPECT_NEAR(fit.exponent, 0.0, 1e-9);
}

TEST(Trajectory, DistancesAndFit) {
  fl::ModelTrajectory traj;
  // Models converging like 1/t toward (1, 1).
  for (int t = 1; t <= 20; ++t) {
    const float off = 1.0F / static_cast<float>(t);
    traj.record(Tensor(Shape{2}, {1.0F + off, 1.0F - off}));
  }
  traj.record(Tensor(Shape{2}, {1.0F, 1.0F}));
  const auto d = traj.distances_to_final();
  EXPECT_EQ(d.size(), 20U);
  EXPECT_NEAR(d[0], std::sqrt(2.0), 1e-5);
  const auto fit = traj.fit();
  EXPECT_NEAR(fit.exponent, 1.0, 0.05);
}

TEST(Trajectory, RequiresSnapshots) {
  fl::ModelTrajectory traj;
  traj.record(Tensor(Shape{2}));
  EXPECT_THROW(traj.distances_to_final(), Error);
}

TEST(Convergence, FedHdModelTrajectoryDecays) {
  // Record the global prototype matrix across a FedHd run: the distance to
  // the final model must shrink with a clearly positive power-law exponent
  // (the empirical counterpart of the paper's §3.6 O(1/T) claim).
  Rng rng(1);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 4;
  spec.n = 400;
  spec.separation = 0.5;  // hard enough that refinement keeps updating
  const auto ds = data::make_isolet_like(spec, rng);
  Rng er = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(32, 1024, er);
  const auto split = data::train_test_split(ds, 0.2, rng);
  const auto parts = data::partition_iid(split.train, 6, rng);
  std::vector<fl::HdClientData> clients;
  for (const auto& p : parts) {
    const auto sub = split.train.subset(p);
    clients.push_back({enc.encode(sub.x), sub.labels});
  }
  fl::FedHdConfig cfg;
  cfg.n_clients = 6;
  cfg.client_fraction = 0.5;
  cfg.local_epochs = 1;
  cfg.rounds = 12;
  cfg.num_classes = 4;
  cfg.hd_dim = 1024;
  cfg.seed = 2;
  fl::FedHdTrainer trainer(std::move(clients),
                           {enc.encode(split.test.x), split.test.labels}, cfg);
  fl::ModelTrajectory traj;
  for (int r = 1; r <= cfg.rounds; ++r) {
    (void)trainer.round(r);
    traj.record(trainer.global().prototypes());
  }
  const auto fit = traj.fit();
  EXPECT_GT(fit.exponent, 0.3) << "trajectory should decay toward the fixpoint";
}

// --------------------------------------------------------------- timeline

fl::TimelineConfig fhdnn_timeline() {
  fl::TimelineConfig cfg;
  cfg.workload = perf::ClientWorkload::paper_reference();
  cfg.update_bits = 8'000'000;  // 1 MB
  cfg.fhdnn = true;
  return cfg;
}

TEST(Timeline, RoundCostsComposeComputeAndUpload) {
  auto cfg = fhdnn_timeline();
  cfg.compute_jitter = 0.0;
  const fl::FlTimeline tl(cfg);
  Rng rng(3);
  const auto rounds = tl.simulate(5, 4, rng);
  ASSERT_EQ(rounds.size(), 5U);
  const auto base = perf::fhdnn_local_training(cfg.device, cfg.workload);
  const double upload = cfg.link.upload_seconds(cfg.update_bits, true);
  for (const auto& r : rounds) {
    EXPECT_NEAR(r.compute_seconds, base.seconds, 1e-9);
    EXPECT_NEAR(r.upload_seconds, upload, 1e-9);
    EXPECT_NEAR(r.total_seconds, base.seconds + upload, 1e-9);
  }
  EXPECT_NEAR(fl::FlTimeline::campaign_seconds(rounds),
              5.0 * (base.seconds + upload), 1e-6);
}

TEST(Timeline, JitterMakesSlowestParticipantDominate) {
  auto cfg = fhdnn_timeline();
  cfg.compute_jitter = 0.3;
  const fl::FlTimeline tl(cfg);
  Rng rng(4);
  const auto solo = tl.simulate(40, 1, rng);
  Rng rng2(4);
  const auto crowd = tl.simulate(40, 16, rng2);
  double solo_mean = 0.0, crowd_mean = 0.0;
  for (const auto& r : solo) solo_mean += r.compute_seconds;
  for (const auto& r : crowd) crowd_mean += r.compute_seconds;
  // Max of 16 jittered draws is systematically larger than a single draw.
  EXPECT_GT(crowd_mean, solo_mean * 1.1);
}

TEST(Timeline, CnnSlowerPerRoundThanFhdnn) {
  auto fhdnn_cfg = fhdnn_timeline();
  auto cnn_cfg = fhdnn_cfg;
  cnn_cfg.fhdnn = false;
  cnn_cfg.update_bits = 22ULL * 8'000'000;  // 22 MB at the coded rate
  Rng r1(5), r2(5);
  // On the Pi the Table-1 compute gap is ~1.55x; on the Jetson ~5.7x.
  const auto f = fl::FlTimeline(fhdnn_cfg).simulate(3, 4, r1);
  const auto c = fl::FlTimeline(cnn_cfg).simulate(3, 4, r2);
  EXPECT_GT(c[0].total_seconds, 1.2 * f[0].total_seconds);

  fhdnn_cfg.device = perf::DeviceProfile::jetson();
  cnn_cfg.device = perf::DeviceProfile::jetson();
  Rng r3(5), r4(5);
  const auto fj = fl::FlTimeline(fhdnn_cfg).simulate(3, 4, r3);
  const auto cj = fl::FlTimeline(cnn_cfg).simulate(3, 4, r4);
  EXPECT_GT(cj[0].total_seconds, 3.0 * fj[0].total_seconds);
}

TEST(Timeline, SecondsToAccuracy) {
  auto cfg = fhdnn_timeline();
  cfg.compute_jitter = 0.0;
  const fl::FlTimeline tl(cfg);
  Rng rng(6);
  const auto rounds = tl.simulate(5, 2, rng);
  fl::TrainingHistory hist;
  for (int r = 1; r <= 5; ++r) {
    fl::RoundMetrics m;
    m.round = r;
    m.test_accuracy = 0.2 * r;  // hits 0.6 at round 3
    hist.add(m);
  }
  const double t = tl.seconds_to_accuracy(hist, 0.6, rounds);
  EXPECT_NEAR(t, 3.0 * rounds[0].total_seconds, 1e-6);
  EXPECT_LT(tl.seconds_to_accuracy(hist, 1.5, rounds), 0.0);
}

TEST(Timeline, Validation) {
  auto cfg = fhdnn_timeline();
  cfg.update_bits = 0;
  EXPECT_THROW(fl::FlTimeline{cfg}, Error);
  cfg = fhdnn_timeline();
  cfg.compute_jitter = 1.5;
  EXPECT_THROW(fl::FlTimeline{cfg}, Error);
}

// ------------------------------------------------- update subsampling

TEST(UpdateSubsampling, ReducesTrafficAndStillLearns) {
  Rng rng(7);
  auto full = data::synthetic_mnist(400, rng);
  auto split = data::train_test_split(full, 0.2, rng);
  const auto parts = data::partition_iid(split.train, 4, rng);
  fl::ModelFactory factory = [](Rng& r) { return nn::make_cnn2(1, 28, 10, r); };

  fl::FedAvgConfig cfg;
  cfg.n_clients = 4;
  cfg.client_fraction = 0.5;
  cfg.local_epochs = 2;
  cfg.batch_size = 16;
  cfg.rounds = 6;
  cfg.seed = 8;

  fl::FedAvgTrainer full_tr(factory, split.train, parts, split.test, cfg);
  const auto full_hist = full_tr.run();

  cfg.update_fraction = 0.5;
  fl::FedAvgTrainer sub_tr(factory, split.train, parts, split.test, cfg);
  const auto sub_hist = sub_tr.run();

  // Uplink bytes count the scalars actually transmitted by each client's
  // Bernoulli(q) mask, so the ratio matches q only up to sampling noise
  // (a few sigma of a Binomial over ~10^4 scalars per client).
  const auto full_bytes = static_cast<double>(full_hist.rounds()[0].bytes_uplink);
  const auto sub_bytes = static_cast<double>(sub_hist.rounds()[0].bytes_uplink);
  EXPECT_NEAR(sub_bytes, 0.5 * full_bytes, 0.02 * full_bytes);
  // Compression slows but must not destroy learning.
  EXPECT_GT(sub_hist.final_accuracy(), 0.35);
  EXPECT_GE(full_hist.final_accuracy() + 0.05, sub_hist.final_accuracy());
}

TEST(UpdateSubsampling, ValidatesFraction) {
  Rng rng(9);
  auto full = data::synthetic_mnist(50, rng);
  const auto parts = data::partition_iid(full, 2, rng);
  fl::ModelFactory factory = [](Rng& r) { return nn::make_cnn2(1, 28, 10, r); };
  fl::FedAvgConfig cfg;
  cfg.n_clients = 2;
  cfg.update_fraction = 0.0;
  EXPECT_THROW(fl::FedAvgTrainer(factory, full, parts, full, cfg), Error);
}

// ----------------------------------------------- adaptive HD refinement

TEST(AdaptiveRefine, LearnsAtLeastAsWellOnHardData) {
  Rng rng(10);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 6;
  spec.n = 600;
  spec.separation = 0.6;  // hard
  const auto ds = data::make_isolet_like(spec, rng);
  const auto split = data::train_test_split(ds, 0.25, rng);
  Rng er = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(32, 2048, er);
  const Tensor htr = enc.encode(split.train.x);
  const Tensor hte = enc.encode(split.test.x);

  hdc::HdClassifier plain(6, 2048), adaptive(6, 2048);
  plain.bundle(htr, split.train.labels);
  adaptive.bundle(htr, split.train.labels);
  for (int e = 0; e < 4; ++e) {
    plain.refine_epoch(htr, split.train.labels);
    adaptive.refine_epoch_adaptive(htr, split.train.labels);
  }
  const double acc_plain = plain.accuracy(hte, split.test.labels);
  const double acc_adaptive = adaptive.accuracy(hte, split.test.labels);
  EXPECT_GE(acc_adaptive, acc_plain - 0.03);
  EXPECT_GT(acc_adaptive, 0.6);
}

TEST(AdaptiveRefine, UpdateCountDropsOverEpochs) {
  Rng rng(11);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 4;
  spec.n = 300;
  const auto ds = data::make_isolet_like(spec, rng);
  Rng er = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(32, 1024, er);
  const Tensor h = enc.encode(ds.x);
  hdc::HdClassifier clf(4, 1024);
  const auto first = clf.refine_epoch_adaptive(h, ds.labels);
  std::int64_t last = first;
  for (int e = 0; e < 4; ++e) last = clf.refine_epoch_adaptive(h, ds.labels);
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace fhdnn
