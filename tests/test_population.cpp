// Tests for the discrete-event federation layer (DESIGN.md §12): the
// EventQueue total order and clock contract (fl/events.hpp), the sparse
// ClientPopulation profile/availability/sampling model (fl/population.hpp),
// and the engine's population and buffered-async round modes
// (fl/engine.hpp) — including the FedBuff-style staleness buffer in
// ProtocolAdapter and thread-count invariance of the new modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "channel/transport.hpp"
#include "fl/engine.hpp"
#include "fl/events.hpp"
#include "fl/population.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel::num_threads()) {}
  ~ThreadGuard() { parallel::set_num_threads(saved_); }

 private:
  int saved_;
};

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsInTimeOrderRegardlessOfInsertionOrder) {
  const std::vector<fl::Event> events = {
      {3.0, 1, 0, fl::EventKind::kUploadArrival, 0},
      {1.0, 2, 0, fl::EventKind::kTrainDone, 1},
      {2.0, 0, 0, fl::EventKind::kUploadArrival, 2},
      {1.5, 9, 0, fl::EventKind::kTrainDone, 3},
  };
  // Every permutation of pushes yields the same pop sequence.
  std::vector<std::size_t> order = {0, 1, 2, 3};
  std::vector<double> reference;
  do {
    fl::EventQueue q;
    for (const auto i : order) q.push(events[i]);
    std::vector<double> times;
    while (!q.empty()) times.push_back(q.pop().time);
    if (reference.empty()) {
      reference = times;
      EXPECT_TRUE(std::is_sorted(reference.begin(), reference.end()));
    } else {
      EXPECT_EQ(times, reference);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(EventQueue, TiesBreakByClientThenSeq) {
  fl::EventQueue q;
  q.push({1.0, 7, 1, fl::EventKind::kUploadArrival, 0});
  q.push({1.0, 7, 0, fl::EventKind::kTrainDone, 1});
  q.push({1.0, 2, 5, fl::EventKind::kUploadArrival, 2});
  EXPECT_EQ(q.pop().client, 2U);
  const fl::Event second = q.pop();
  EXPECT_EQ(second.client, 7U);
  EXPECT_EQ(second.seq, 0U);
  EXPECT_EQ(q.pop().seq, 1U);
}

TEST(EventQueue, DeadlineSortsAfterSameInstantArrivals) {
  // kDeadline carries client = SIZE_MAX, so an upload landing exactly at
  // the deadline still pops first — the engine's `<=` acceptance rule.
  fl::EventQueue q;
  q.push({5.0, std::numeric_limits<std::size_t>::max(), 0,
          fl::EventKind::kDeadline, 0});
  q.push({5.0, 3, 1, fl::EventKind::kUploadArrival, 0});
  EXPECT_EQ(q.pop().kind, fl::EventKind::kUploadArrival);
  EXPECT_EQ(q.pop().kind, fl::EventKind::kDeadline);
}

TEST(EventQueue, ClockAdvancesAndRejectsThePast) {
  fl::EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.push({2.0, 0, 0, fl::EventKind::kTrainDone, 0});
  q.push({4.0, 0, 1, fl::EventKind::kTrainDone, 0});
  EXPECT_EQ(q.size(), 2U);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  // Scheduling before now() is a contract violation...
  EXPECT_THROW(q.push({1.0, 0, 2, fl::EventKind::kTrainDone, 0}),
               Error);
  // ...as are non-finite instants.
  EXPECT_THROW(
      q.push({std::numeric_limits<double>::quiet_NaN(), 0, 2,
              fl::EventKind::kTrainDone, 0}),
      Error);
  (void)q.pop();
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
  EXPECT_EQ(q.processed(), 2U);
  EXPECT_THROW(q.pop(), Error);
  q.clear(1.5);
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
  EXPECT_EQ(q.processed(), 0U);
  EXPECT_THROW(q.push({1.0, 0, 0, fl::EventKind::kTrainDone, 0}),
               Error);
}

TEST(EventQueue, ThreadedPushesPopDeterministically) {
  // The pop order must not depend on which thread pushed what.
  ThreadGuard guard;
  std::vector<std::uint64_t> reference;
  for (const int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    fl::EventQueue q;
    parallel::parallel_for(0, 64, 1, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const auto c = static_cast<std::size_t>((i * 37) % 64);
        q.push({static_cast<double>(i % 7), c,
                static_cast<std::uint64_t>(i), fl::EventKind::kTrainDone,
                static_cast<std::size_t>(i)});
      }
    });
    std::vector<std::uint64_t> seqs;
    while (!q.empty()) seqs.push_back(q.pop().seq);
    if (reference.empty()) {
      reference = seqs;
    } else {
      EXPECT_EQ(seqs, reference) << "at " << threads << " threads";
    }
  }
}

// ------------------------------------------------------- ClientPopulation

fl::PopulationConfig big_population() {
  fl::PopulationConfig cfg;
  cfg.n_registered = 1'000'000;
  cfg.mean_availability = 0.5;
  cfg.window_seconds = 600.0;
  cfg.straggler_fraction = 0.2;
  cfg.straggler_slowdown = 4.0;
  cfg.compute_spread = 0.5;
  cfg.link_spread_max = 3.0;
  return cfg;
}

TEST(ClientPopulation, ProfilesArePureFunctionsOfSeedAndClient) {
  const Rng root(99);
  const fl::ClientPopulation pop(big_population(), root);
  const fl::ClientPopulation again(big_population(), root);
  for (const std::size_t c : {0UL, 1UL, 123'456UL, 999'999UL}) {
    const auto p1 = pop.profile(c);
    const auto p2 = pop.profile(c);      // same object, repeated query
    const auto p3 = again.profile(c);    // fresh object, same seed
    EXPECT_DOUBLE_EQ(p1.availability, p2.availability);
    EXPECT_DOUBLE_EQ(p1.availability, p3.availability);
    EXPECT_DOUBLE_EQ(p1.period_seconds, p3.period_seconds);
    EXPECT_DOUBLE_EQ(p1.phase_seconds, p3.phase_seconds);
    EXPECT_DOUBLE_EQ(p1.compute_factor, p3.compute_factor);
    EXPECT_DOUBLE_EQ(p1.link_factor, p3.link_factor);
    // Bounds from the config.
    EXPECT_GT(p1.availability, 0.0);
    EXPECT_LE(p1.availability, 1.0);
    EXPECT_GE(p1.period_seconds, 300.0);
    EXPECT_LE(p1.period_seconds, 900.0);
    EXPECT_GE(p1.phase_seconds, 0.0);
    EXPECT_LE(p1.phase_seconds, p1.period_seconds);
    EXPECT_GE(p1.compute_factor, 1.0);
    EXPECT_LE(p1.compute_factor, 4.0 * 1.5);
    EXPECT_GE(p1.link_factor, 1.0);
    EXPECT_LE(p1.link_factor, 3.0);
  }
  EXPECT_THROW(pop.profile(1'000'000), Error);
}

TEST(ClientPopulation, DutyFactorsAverageToMeanAvailability) {
  const Rng root(7);
  const fl::ClientPopulation pop(big_population(), root);
  double sum = 0.0;
  const std::size_t n = 20'000;
  for (std::size_t c = 0; c < n; ++c) sum += pop.profile(c).availability;
  // E[u^((1-a)/a)] = a exactly; 20k draws put the sample mean well within
  // a few percent of 0.5.
  EXPECT_NEAR(sum / static_cast<double>(n), 0.5, 0.02);
}

TEST(ClientPopulation, AvailabilityWindowsMatchTheProfile) {
  const Rng root(11);
  const fl::ClientPopulation pop(big_population(), root);
  for (std::size_t c = 0; c < 200; ++c) {
    const auto p = pop.profile(c);
    // The predicate must agree with the closed-form window arithmetic at
    // arbitrary instants, and an always-on client is always available.
    for (const double t : {0.0, 17.3, 599.9, 12'345.6}) {
      const double pos = std::fmod(t + p.phase_seconds, p.period_seconds);
      const bool expected =
          p.availability >= 1.0 || pos < p.availability * p.period_seconds;
      EXPECT_EQ(pop.available_at(c, t), expected) << "client " << c << " t "
                                                  << t;
    }
    // Awake fraction over a full period ~ availability.
    int awake = 0;
    const int steps = 1000;
    for (int s = 0; s < steps; ++s) {
      const double t = p.period_seconds * static_cast<double>(s) /
                       static_cast<double>(steps);
      if (pop.available_at(c, t)) ++awake;
    }
    EXPECT_NEAR(static_cast<double>(awake) / steps, p.availability, 0.01);
  }
}

TEST(ClientPopulation, AlwaysOnFleetIsAlwaysAvailable) {
  fl::PopulationConfig cfg;
  cfg.n_registered = 1000;
  cfg.mean_availability = 1.0;
  const fl::ClientPopulation pop(cfg, Rng(3));
  for (std::size_t c = 0; c < 1000; c += 97) {
    EXPECT_TRUE(pop.available_at(c, 1e9));
  }
}

TEST(ClientPopulation, SampleDrawsSortedDistinctIdsInOkMemory) {
  const fl::ClientPopulation pop(big_population(), Rng(5));
  Rng rng(42);
  const auto picks = pop.sample(rng, 10'000);
  ASSERT_EQ(picks.size(), 10'000U);
  EXPECT_TRUE(std::is_sorted(picks.begin(), picks.end()));
  EXPECT_EQ(std::adjacent_find(picks.begin(), picks.end()), picks.end());
  EXPECT_LT(picks.back(), 1'000'000U);
  // Deterministic given the rng stream.
  Rng rng2(42);
  EXPECT_EQ(pop.sample(rng2, 10'000), picks);
  // Empty draw is empty, not clamped to 1.
  Rng rng3(1);
  EXPECT_TRUE(pop.sample(rng3, 0).empty());
  EXPECT_THROW(pop.sample(rng3, 1'000'001), Error);
}

TEST(ClientPopulation, SampleCoversTheWholeIdSpace) {
  // k == n must terminate and return every id exactly once.
  fl::PopulationConfig cfg;
  cfg.n_registered = 512;
  const fl::ClientPopulation pop(cfg, Rng(8));
  Rng rng(9);
  const auto picks = pop.sample(rng, 512);
  ASSERT_EQ(picks.size(), 512U);
  for (std::size_t i = 0; i < picks.size(); ++i) EXPECT_EQ(picks[i], i);
}

// ------------------------------------------- engine: population rounds

/// Minimal protocol whose per-client transport stats are a pure function
/// of the client id, so event times are deterministic and distinct.
class StatsProtocol : public fl::RoundProtocol {
 public:
  void begin_round(const Rng& /*round_rng*/, std::size_t n) override {
    last_slots = n;
  }

  fl::ClientReport run_client(std::size_t /*slot*/, std::size_t client,
                              const Rng& /*round_rng*/,
                              bool delivered) override {
    ++clients_run;
    fl::ClientReport r;
    r.loss = 1.0;
    if (delivered) {
      r.stats.payload_bytes = 100;
      r.stats.bits_on_air = 100'000 + 10'000 * (client % 17);
    }
    return r;
  }

  void reduce(const std::vector<std::size_t>& participants,
              const std::vector<char>& accepted) override {
    ++reduce_calls;
    last_participants = participants;
    last_accepted = accepted;
  }

  double evaluate() override { return 0.5; }

  std::atomic<int> clients_run{0};  // run_client is concurrent
  int reduce_calls = 0;
  std::size_t last_slots = 0;
  std::vector<std::size_t> last_participants;
  std::vector<char> last_accepted;
};

fl::TimelineConfig bench_timeline() {
  fl::TimelineConfig t;
  t.update_bits = 1'000'000;
  t.fhdnn = false;
  t.compute_jitter = 0.1;
  return t;
}

fl::EngineConfig million_config() {
  fl::EngineConfig cfg;
  cfg.n_clients = 0;  // ignored: the population provides the fleet
  cfg.client_fraction = 0.00001;  // 10 of 1M
  cfg.rounds = 3;
  cfg.seed = 77;
  cfg.name = "pop";
  cfg.population.n_registered = 1'000'000;
  cfg.population.mean_availability = 0.6;
  cfg.population.straggler_fraction = 0.1;
  cfg.population.compute_spread = 0.3;
  cfg.population.link_spread_max = 2.0;
  cfg.deadline.enabled = true;
  cfg.deadline.timeline = bench_timeline();
  cfg.deadline.deadline_factor = 3.0;
  return cfg;
}

TEST(EnginePopulation, RequiresATimedMode) {
  StatsProtocol protocol;
  fl::EngineConfig cfg = million_config();
  cfg.deadline.enabled = false;
  EXPECT_THROW(fl::RoundEngine(cfg, protocol), Error);
}

TEST(EnginePopulation, SamplesFromTheRegisteredFleet) {
  StatsProtocol protocol;
  fl::RoundEngine engine(million_config(), protocol);
  ASSERT_NE(engine.population(), nullptr);
  EXPECT_EQ(engine.population()->n_registered(), 1'000'000U);
  const auto m = engine.round(1);
  EXPECT_EQ(m.sampled, 13U);  // ceil(10 * 1.25) over-selection
  EXPECT_EQ(m.clients + m.dropped + m.timed_out, m.sampled);
  EXPECT_GT(m.events, 0U);
  EXPECT_GT(m.simulated_round_seconds, 0.0);
  EXPECT_GT(engine.sim_seconds(), 0.0);
  // Participant ids span the registered space, far beyond any dense range.
  EXPECT_EQ(protocol.last_slots, 13U);
  for (const auto id : protocol.last_participants) EXPECT_LT(id, 1'000'000U);
}

TEST(EnginePopulation, AsleepClientsNeverTrainAndCountDropped) {
  StatsProtocol protocol;
  fl::EngineConfig cfg = million_config();
  // Nearly-always-off fleet: most sampled clients are asleep at t = 0.
  cfg.population.mean_availability = 0.05;
  fl::RoundEngine engine(cfg, protocol);
  const auto m = engine.round(1);
  EXPECT_EQ(m.clients + m.dropped + m.timed_out, m.sampled);
  EXPECT_GT(m.dropped, 0U);
  // run_client was skipped for the asleep majority.
  EXPECT_LT(protocol.clients_run, static_cast<int>(m.sampled));
}

TEST(EnginePopulation, HistoryIsThreadCountInvariant) {
  ThreadGuard guard;
  std::vector<fl::RoundMetrics> reference;
  for (const int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    StatsProtocol protocol;
    fl::RoundEngine engine(million_config(), protocol);
    const auto h = engine.run();
    if (reference.empty()) {
      reference = h.rounds();
      continue;
    }
    ASSERT_EQ(h.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto& a = reference[i];
      const auto& b = h.rounds()[i];
      EXPECT_EQ(a.clients, b.clients);
      EXPECT_EQ(a.dropped, b.dropped);
      EXPECT_EQ(a.timed_out, b.timed_out);
      EXPECT_EQ(a.events, b.events);
      EXPECT_EQ(a.bits_on_air, b.bits_on_air);
      EXPECT_EQ(a.simulated_round_seconds, b.simulated_round_seconds);
    }
  }
}

// ---------------------------------------- engine: buffered-async rounds

/// Typed seams over a trivial `double` update so the ProtocolAdapter's
/// staleness buffer is observable: the aggregator records every
/// (client, weight) fold.
class EchoLearner final : public fl::LocalLearner<double> {
 public:
  TrainResult train(std::size_t client, Rng& /*client_rng*/) override {
    return {static_cast<double>(client), 0.25};
  }
  double evaluate() override { return 0.5; }
};

class IdTransport final : public channel::Transport<double> {
 public:
  channel::TransportStats transmit(double& update, std::size_t client,
                                   Rng& /*client_rng*/,
                                   const Rng& /*round_rng*/) const override {
    (void)update;
    channel::TransportStats s;
    s.payload_bytes = 8;
    // Upload time grows with the client id: low ids arrive first.
    s.bits_on_air = 100'000 * (client + 1);
    return s;
  }
  std::uint64_t update_bytes(std::uint64_t scalars) const override {
    return scalars * 8;
  }
  std::string name() const override { return "id"; }
};

class RecordingAggregator final : public fl::Aggregator<double> {
 public:
  struct Fold {
    std::size_t client;
    double weight;
  };

  void begin_round() override { folds.emplace_back(); }
  void accumulate(std::size_t client, double&& update) override {
    accumulate_weighted(client, std::move(update), 1.0);
  }
  void accumulate_weighted(std::size_t client, double&& /*update*/,
                           double weight) override {
    folds.back().push_back({client, weight});
  }
  void commit(std::size_t /*delivered*/) override { ++commits; }
  void commit_weighted(std::size_t n_updates, double total_weight) override {
    ++commits;
    last_n = n_updates;
    last_weight = total_weight;
  }

  std::vector<std::vector<Fold>> folds;
  int commits = 0;
  std::size_t last_n = 0;
  double last_weight = 0.0;
};

fl::EngineConfig async_config() {
  fl::EngineConfig cfg;
  cfg.n_clients = 12;
  cfg.client_fraction = 0.5;  // K = 6
  cfg.rounds = 4;
  cfg.seed = 13;
  cfg.name = "async";
  cfg.async.enabled = true;
  cfg.async.timeline = bench_timeline();
  // No compute jitter: arrival order is then strictly the IdTransport's
  // per-client upload time, i.e. ascending client id.
  cfg.async.timeline.compute_jitter = 0.0;
  cfg.async.over_selection = 0.5;  // draw 9
  cfg.async.staleness_exponent = 0.5;
  cfg.async.max_staleness = 2;
  return cfg;
}

TEST(EngineAsync, FirstKArrivalsCloseTheRoundLateOnesBuffer) {
  EchoLearner learner;
  IdTransport transport;
  RecordingAggregator aggregator;
  fl::ProtocolAdapter<double> adapter(learner, transport, aggregator);
  fl::RoundEngine engine(async_config(), adapter);

  const auto m1 = engine.round(1);
  EXPECT_EQ(m1.sampled, 9U);
  EXPECT_EQ(m1.clients, 6U);               // buffer size = K = 6
  EXPECT_EQ(m1.timed_out, 3U);             // late, buffered for round 2
  EXPECT_EQ(m1.stale_accepted, 0U);
  EXPECT_EQ(m1.clients + m1.dropped + m1.timed_out, m1.sampled);
  ASSERT_EQ(aggregator.folds.size(), 1U);
  ASSERT_EQ(aggregator.folds[0].size(), 6U);
  for (const auto& fold : aggregator.folds[0]) {
    EXPECT_DOUBLE_EQ(fold.weight, 1.0);  // all fresh in round 1
  }
  // Uploads scale with client id, so the accepted six are the six
  // smallest sampled ids.
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_LT(aggregator.folds[0][i - 1].client,
              aggregator.folds[0][i].client);
  }

  const auto m2 = engine.round(2);
  EXPECT_EQ(m2.stale_accepted, 3U);  // round 1's late arrivals fold in
  EXPECT_EQ(m2.clients + m2.dropped + m2.timed_out, m2.sampled);
  ASSERT_EQ(aggregator.folds.size(), 2U);
  // Stale folds come first, discounted by (1 + staleness)^-0.5.
  const double stale_w = std::pow(2.0, -0.5);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(aggregator.folds[1][i].weight, stale_w);
  }
  for (std::size_t i = 3; i < aggregator.folds[1].size(); ++i) {
    EXPECT_DOUBLE_EQ(aggregator.folds[1][i].weight, 1.0);
  }
  EXPECT_NEAR(aggregator.last_weight,
              3.0 * stale_w +
                  static_cast<double>(aggregator.folds[1].size() - 3),
              1e-12);
}

TEST(EngineAsync, ExpiresUpdatesPastMaxStaleness) {
  EchoLearner learner;
  IdTransport transport;
  RecordingAggregator aggregator;
  fl::ProtocolAdapter<double> adapter(learner, transport, aggregator);
  fl::EngineConfig cfg = async_config();
  cfg.async.max_staleness = 0;  // anything buffered expires next round
  fl::RoundEngine engine(cfg, adapter);
  (void)engine.round(1);
  const auto m2 = engine.round(2);
  EXPECT_EQ(m2.stale_accepted, 0U);  // all buffered updates expired
  // Round 2 still folds its own fresh cohort.
  ASSERT_EQ(aggregator.folds.size(), 2U);
  for (const auto& fold : aggregator.folds[1]) {
    EXPECT_DOUBLE_EQ(fold.weight, 1.0);
  }
}

TEST(EngineAsync, MutuallyExclusiveWithDeadlineRounds) {
  EchoLearner learner;
  IdTransport transport;
  RecordingAggregator aggregator;
  fl::ProtocolAdapter<double> adapter(learner, transport, aggregator);
  fl::EngineConfig cfg = async_config();
  cfg.deadline.enabled = true;
  cfg.deadline.timeline = bench_timeline();
  EXPECT_THROW(fl::RoundEngine(cfg, adapter), Error);
}

TEST(EngineAsync, HistoryIsThreadCountInvariant) {
  ThreadGuard guard;
  std::vector<fl::RoundMetrics> reference;
  for (const int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    EchoLearner learner;
    IdTransport transport;
    RecordingAggregator aggregator;
    fl::ProtocolAdapter<double> adapter(learner, transport, aggregator);
    fl::RoundEngine engine(async_config(), adapter);
    const auto h = engine.run();
    if (reference.empty()) {
      reference = h.rounds();
      continue;
    }
    ASSERT_EQ(h.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto& a = reference[i];
      const auto& b = h.rounds()[i];
      EXPECT_EQ(a.clients, b.clients);
      EXPECT_EQ(a.timed_out, b.timed_out);
      EXPECT_EQ(a.stale_accepted, b.stale_accepted);
      EXPECT_EQ(a.events, b.events);
      EXPECT_EQ(a.simulated_round_seconds, b.simulated_round_seconds);
    }
  }
}

}  // namespace
}  // namespace fhdnn
