// Unit tests for the whole-program phase of fhdnn-lint (tools/lint/graph):
// every graph rule gets at least one positive (violating) fixture and one
// suppressed fixture, plus a deliberate include cycle, a hidden transitive
// allocation reached from an `_into` kernel, and the --json schema.
//
// Fixtures are (path, content) pairs fed through lint_program_sources, so
// the include resolver sees a synthetic repo layout; paths are chosen to
// land in real manifest modules (util, fl, nn, hdc, ...).
#include "graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace lint = fhdnn::lint;

namespace {

using Sources = std::vector<std::pair<std::string, std::string>>;

std::vector<lint::Diagnostic> run(const Sources& sources) {
  static const auto rules = lint::default_graph_rules();
  return lint::lint_program_sources(sources, rules);
}

int count_rule(const std::vector<lint::Diagnostic>& diags,
               std::string_view rule) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const lint::Diagnostic& d) { return d.rule == rule; }));
}

const lint::Diagnostic* find_rule(const std::vector<lint::Diagnostic>& diags,
                                  std::string_view rule) {
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [&](const lint::Diagnostic& d) { return d.rule == rule; });
  return it == diags.end() ? nullptr : &*it;
}

}  // namespace

// ---- layer-dag -----------------------------------------------------------

TEST(LayerDag, LowerLayerIncludingHigherIsViolation) {
  const auto diags = run({
      {"src/util/timing.hpp",
       "#pragma once\n"
       "#include \"fl/loop.hpp\"\n"
       "namespace fhdnn::util { int tick(); }\n"},
      {"src/fl/loop.hpp",
       "#pragma once\n"
       "namespace fhdnn::fl { int spin(); }\n"},
  });
  ASSERT_EQ(count_rule(diags, "layer-dag"), 1);
  const auto* d = find_rule(diags, "layer-dag");
  EXPECT_EQ(d->path, "src/util/timing.hpp");
  EXPECT_EQ(d->line, 2);
  EXPECT_NE(d->message.find("layering violation"), std::string::npos);
}

TEST(LayerDag, HigherLayerIncludingLowerIsFine) {
  const auto diags = run({
      {"src/fl/loop.hpp",
       "#pragma once\n"
       "#include \"util/timing.hpp\"\n"
       "namespace fhdnn::fl { int spin() { return fhdnn::util::tick(); } }\n"},
      {"src/util/timing.hpp",
       "#pragma once\n"
       "namespace fhdnn::util { int tick(); }\n"},
  });
  EXPECT_EQ(count_rule(diags, "layer-dag"), 0);
}

TEST(LayerDag, ConsumerDirectoriesAreUnconstrained) {
  const auto diags = run({
      {"tests/test_widget.cpp",
       "#include \"fl/loop.hpp\"\n"
       "int main() { return 0; }\n"},
      {"src/fl/loop.hpp", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(diags, "layer-dag"), 0);
}

TEST(LayerDag, SuppressedViolationIsSilent) {
  const auto diags = run({
      {"src/util/timing.hpp",
       "#pragma once\n"
       "// fhdnn-lint: allow(layer-dag)\n"
       "#include \"fl/loop.hpp\"\n"},
      {"src/fl/loop.hpp", "#pragma once\n"},
  });
  EXPECT_EQ(count_rule(diags, "layer-dag"), 0);
}

TEST(LayerDag, SameBandCycleIsReportedOnce) {
  // nn and hdc sit in the same layer band, so neither include edge is an
  // ordering violation — but together they close a cycle, which is.
  const auto diags = run({
      {"src/nn/a.hpp",
       "#pragma once\n"
       "#include \"hdc/b.hpp\"\n"
       "namespace fhdnn::nn { fhdnn::hdc::B make_b(); }\n"},
      {"src/hdc/b.hpp",
       "#pragma once\n"
       "#include \"nn/a.hpp\"\n"
       "namespace fhdnn::hdc { struct B { int make_b; }; }\n"},
  });
  ASSERT_EQ(count_rule(diags, "layer-dag"), 1);
  const auto* d = find_rule(diags, "layer-dag");
  EXPECT_NE(d->message.find("include cycle"), std::string::npos);
  EXPECT_NE(d->message.find("src/nn/a.hpp"), std::string::npos);
  EXPECT_NE(d->message.find("src/hdc/b.hpp"), std::string::npos);
}

TEST(LayerDag, UnknownModuleIsReported) {
  const auto diags = run({
      {"src/mystery/x.hpp",
       "#pragma once\n"
       "#include \"util/timing.hpp\"\n"},
      {"src/util/timing.hpp", "#pragma once\n"},
  });
  ASSERT_EQ(count_rule(diags, "layer-dag"), 1);
  EXPECT_NE(find_rule(diags, "layer-dag")->message.find("layering manifest"),
            std::string::npos);
}

// ---- det-effects ---------------------------------------------------------

TEST(DetEffects, RoundRootReachingWallClockIsViolation) {
  const auto diags = run({
      {"src/fl/eng.cpp",
       "void helper_time() {\n"
       "  auto t = std::chrono::steady_clock::now();\n"
       "}\n"
       "void RoundEngine::round(int r) {\n"
       "  helper_time();\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(diags, "det-effects"), 1);
  const auto* d = find_rule(diags, "det-effects");
  EXPECT_EQ(d->path, "src/fl/eng.cpp");
  EXPECT_EQ(d->line, 2);
  EXPECT_NE(d->message.find("wall-clock"), std::string::npos);
  EXPECT_NE(d->message.find("round path"), std::string::npos);
  EXPECT_NE(d->message.find("RoundEngine::round -> helper_time"),
            std::string::npos);
}

TEST(DetEffects, HiddenTransitiveAllocationInIntoKernel) {
  // The allocation hides two hops below the `_into` entry point; only the
  // transitive traversal can see it.
  const auto diags = run({
      {"src/hdc/enc.cpp",
       "static float* grow(unsigned n) {\n"
       "  return static_cast<float*>(malloc(n * 4));\n"
       "}\n"
       "static float* scratch(unsigned n) {\n"
       "  return grow(n);\n"
       "}\n"
       "void encode_batch_into(float* dst, unsigned n) {\n"
       "  float* tmp = scratch(n);\n"
       "  dst[0] = tmp[0];\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(diags, "det-effects"), 1);
  const auto* d = find_rule(diags, "det-effects");
  EXPECT_EQ(d->line, 2);
  EXPECT_NE(d->message.find("alloc"), std::string::npos);
  EXPECT_NE(d->message.find("_into kernel"), std::string::npos);
  EXPECT_NE(d->message.find("encode_batch_into -> scratch -> grow"),
            std::string::npos);
}

TEST(DetEffects, UnreachableEffectIsSilent) {
  // An effect in a function no root can reach is per-file rules' business,
  // not det-effects'.
  const auto diags = run({
      {"src/hdc/enc.cpp",
       "void offline_setup() {\n"
       "  void* p = malloc(64);\n"
       "  (void)p;\n"
       "}\n"
       "void encode_batch_into(float* dst) {\n"
       "  dst[0] = 0.0f;\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(diags, "det-effects"), 0);
}

TEST(DetEffects, RoundPathAllowsAllocationButNotNondet) {
  // Per-round allocation is legitimate on the round path (only `_into`
  // kernels ban alloc); nondeterminism is not.
  const auto diags = run({
      {"src/fl/eng.cpp",
       "void run_client(int cid) {\n"
       "  void* arena = malloc(1024);\n"
       "  (void)arena;\n"
       "  unsigned seed = std::random_device{}();\n"
       "  (void)seed;\n"
       "}\n"},
  });
  ASSERT_EQ(count_rule(diags, "det-effects"), 1);
  const auto* d = find_rule(diags, "det-effects");
  EXPECT_EQ(d->line, 4);
  EXPECT_NE(d->message.find("nondet"), std::string::npos);
}

TEST(DetEffects, WorkspaceAllocationIsExempt) {
  const auto diags = run({
      {"src/util/workspace.cpp",
       "void* workspace_grow(unsigned n) {\n"
       "  return malloc(n);\n"
       "}\n"},
      {"src/hdc/enc.cpp",
       "void encode_batch_into(float* dst, unsigned n) {\n"
       "  dst[0] = *static_cast<float*>(workspace_grow(n));\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(diags, "det-effects"), 0);
}

TEST(DetEffects, SuppressedViolationIsSilent) {
  const auto diags = run({
      {"src/fl/eng.cpp",
       "void RoundEngine::round(int r) {\n"
       "  // fhdnn-lint: allow(det-effects)\n"
       "  auto t = std::chrono::steady_clock::now();\n"
       "}\n"},
  });
  EXPECT_EQ(count_rule(diags, "det-effects"), 0);
}

// ---- include-graph-hygiene -----------------------------------------------

TEST(IncludeGraphHygiene, UnusedHeaderIsViolation) {
  const auto diags = run({
      {"src/fl/a.cpp",
       "#include \"util/helpers.hpp\"\n"
       "int local_work() { return 7; }\n"},
      {"src/util/helpers.hpp",
       "#pragma once\n"
       "int helper_fn();\n"
       "struct HelperState { int x; };\n"},
  });
  ASSERT_EQ(count_rule(diags, "include-graph-hygiene"), 1);
  const auto* d = find_rule(diags, "include-graph-hygiene");
  EXPECT_EQ(d->path, "src/fl/a.cpp");
  EXPECT_EQ(d->line, 1);
  EXPECT_NE(d->message.find("none of its"), std::string::npos);
}

TEST(IncludeGraphHygiene, QualifiedUseCounts) {
  // `util::HelperState` must register as a use of HelperState even though
  // the per-file token matcher rejects ':' on the left boundary.
  const auto diags = run({
      {"src/fl/a.cpp",
       "#include \"util/helpers.hpp\"\n"
       "int local_work() { util::HelperState s{3}; return s.x; }\n"},
      {"src/util/helpers.hpp",
       "#pragma once\n"
       "int helper_fn();\n"
       "struct HelperState { int x; };\n"},
  });
  EXPECT_EQ(count_rule(diags, "include-graph-hygiene"), 0);
}

TEST(IncludeGraphHygiene, OwnHeaderIsNeverUnused) {
  const auto diags = run({
      {"src/fl/a.cpp",
       "#include \"fl/a.hpp\"\n"
       "int local_work() { return 7; }\n"},
      {"src/fl/a.hpp",
       "#pragma once\n"
       "int exported_entry();\n"},
  });
  EXPECT_EQ(count_rule(diags, "include-graph-hygiene"), 0);
}

TEST(IncludeGraphHygiene, TuPrivateHeaderCrossingModuleIsViolation) {
  const auto diags = run({
      {"src/fl/b.cpp",
       "#include \"hdc/detail/simd.hpp\"\n"
       "int local_work() { return simd_width(); }\n"},
      {"src/hdc/detail/simd.hpp",
       "#pragma once\n"
       "int simd_width();\n"},
  });
  ASSERT_EQ(count_rule(diags, "include-graph-hygiene"), 1);
  const auto* d = find_rule(diags, "include-graph-hygiene");
  EXPECT_NE(d->message.find("TU-private"), std::string::npos);
  EXPECT_NE(d->message.find("module boundary"), std::string::npos);
}

TEST(IncludeGraphHygiene, TuPrivateHeaderWithinModuleIsFine) {
  const auto diags = run({
      {"src/hdc/encoder.cpp",
       "#include \"hdc/detail/simd.hpp\"\n"
       "int local_work() { return simd_width(); }\n"},
      {"src/hdc/detail/simd.hpp",
       "#pragma once\n"
       "int simd_width();\n"},
  });
  EXPECT_EQ(count_rule(diags, "include-graph-hygiene"), 0);
}

TEST(IncludeGraphHygiene, SuppressedViolationIsSilent) {
  const auto diags = run({
      {"src/fl/a.cpp",
       "// umbrella forward, on purpose\n"
       "// fhdnn-lint: allow(include-graph-hygiene)\n"
       "#include \"util/helpers.hpp\"\n"
       "int local_work() { return 7; }\n"},
      {"src/util/helpers.hpp",
       "#pragma once\n"
       "int helper_fn();\n"},
  });
  EXPECT_EQ(count_rule(diags, "include-graph-hygiene"), 0);
}

// ---- --json schema -------------------------------------------------------

TEST(LintJson, SchemaAndEscaping) {
  std::vector<lint::Diagnostic> diags;
  diags.push_back({"src/util/timing.hpp", 2, "layer-dag",
                   "layering violation: \"quoted\" and \\slash"});
  const std::string json = lint::diagnostics_json(diags, 5);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"files\":5"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/util/timing.hpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"layer-dag\""), std::string::npos);
  // Quotes and backslashes inside messages must be escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\slash"), std::string::npos);
}

TEST(LintJson, EmptyDiagnostics) {
  const std::string json = lint::diagnostics_json({}, 3);
  EXPECT_NE(json.find("\"files\":3"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":[]"), std::string::npos);
}

TEST(LintJson, EndToEndFromFixtures) {
  const auto diags = run({
      {"src/util/timing.hpp",
       "#pragma once\n"
       "#include \"fl/loop.hpp\"\n"},
      {"src/fl/loop.hpp", "#pragma once\n"},
  });
  const std::string json = lint::diagnostics_json(diags, 2);
  EXPECT_NE(json.find("\"rule\":\"layer-dag\""), std::string::npos);
  EXPECT_NE(json.find("\"files\":2"), std::string::npos);
}
