// Kill-and-resume equivalence for the round engine (DESIGN.md §13).
//
// For each trainer fixture (FedAvg and FedHd, in deadline and
// buffered-async modes) a golden uninterrupted run pins the history; the
// sweep then kills the aggregator at EVERY event boundary k (CrashPlan,
// with a checkpoint after every event), resumes a fresh trainer from the
// surviving snapshot, and requires the completed history to match the
// golden bit-for-bit (exact doubles — the hexfloat contract), at 1 and 4
// threads. Also covered: boundary-checkpoint resume via run(), the
// snapshot -> restore -> snapshot byte-identity property, and fallback to
// the previous generation when the primary checkpoint is corrupted.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/engine.hpp"
#include "fl/faults.hpp"
#include "fl/fedavg.hpp"
#include "fl/fedhd.hpp"
#include "hdc/encoder.hpp"
#include "nn/resnet.hpp"
#include "util/parallel.hpp"
#include "util/snapshot.hpp"

namespace fhdnn {
namespace {

/// Restores the configured thread count when a test exits.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(parallel::num_threads()) {}
  ~ThreadGuard() { parallel::set_num_threads(saved_); }

 private:
  int saved_;
};

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "fhdnn_resume_" + name;
}

void remove_generations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  return {std::istreambuf_iterator<char>(is), {}};
}

void expect_same_history(const fl::TrainingHistory& golden,
                         const fl::TrainingHistory& resumed) {
  ASSERT_EQ(resumed.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const auto& a = golden.rounds()[i];
    const auto& b = resumed.rounds()[i];
    SCOPED_TRACE("round " + std::to_string(i + 1));
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.test_accuracy, b.test_accuracy);  // exact doubles
    EXPECT_EQ(a.train_loss, b.train_loss);
    EXPECT_EQ(a.clients, b.clients);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.stale_accepted, b.stale_accepted);
    EXPECT_EQ(a.bytes_uplink, b.bytes_uplink);
    EXPECT_EQ(a.bits_on_air, b.bits_on_air);
    EXPECT_EQ(a.bit_flips, b.bit_flips);
    EXPECT_EQ(a.packets_lost, b.packets_lost);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.residual_errors, b.residual_errors);
    EXPECT_EQ(a.simulated_round_seconds, b.simulated_round_seconds);
    EXPECT_EQ(a.events, b.events);
    // wall_seconds is the one non-contract field: real time, not simulated.
  }
}

/// A fixture hands the sweep a factory: build a trainer with the given
/// checkpoint + crash plan. Returned object must own all its data.
template <typename Trainer>
struct Fixture {
  std::function<std::unique_ptr<Trainer>(fl::CheckpointConfig,
                                         fl::CrashPlan)>
      make;
};

/// The sweep itself: golden run, then kill at every event boundary and
/// resume from the surviving checkpoint.
template <typename Trainer>
void kill_resume_sweep(const Fixture<Trainer>& fx, const std::string& tag) {
  const std::string path = tmp_path(tag + ".snap");

  auto golden_trainer = fx.make({}, {});
  const auto golden = golden_trainer->run();
  const std::uint64_t total = golden_trainer->engine().total_events();
  ASSERT_GT(total, 0U) << tag << ": fixture produced no events";

  for (std::uint64_t k = 1; k <= total; ++k) {
    SCOPED_TRACE(tag + " killed at event " + std::to_string(k));
    remove_generations(path);
    auto victim = fx.make({path, 1}, {true, k});
    bool crashed = false;
    try {
      victim->run();
    } catch (const fl::AggregatorCrash& e) {
      crashed = true;
      EXPECT_EQ(e.at_event(), k);
    }
    ASSERT_TRUE(crashed);

    auto survivor = fx.make({}, {});
    survivor->resume(path);
    const auto resumed = survivor->run();
    expect_same_history(golden, resumed);
  }
}

// ------------------------------------------------------------- fixtures

/// FedAvg on synthetic MNIST, deliberately tiny (the sweep runs the full
/// training once per event boundary). Every robustness knob that shapes
/// the event stream is on: dropout, crashes, stragglers, link multipliers.
struct FedAvgFixtureData {
  data::Dataset train;
  data::Dataset test;
  data::ClientIndices parts;
  std::unique_ptr<channel::Channel> uplink;
};

Fixture<fl::FedAvgTrainer> fedavg_fixture(
    std::shared_ptr<FedAvgFixtureData> data, bool async) {
  Fixture<fl::FedAvgTrainer> fx;
  fx.make = [data, async](fl::CheckpointConfig ck, fl::CrashPlan crash) {
    fl::ModelFactory factory = [](Rng& r) {
      return nn::make_cnn2(1, 28, 10, r);
    };
    fl::FedAvgConfig cfg;
    cfg.n_clients = 4;
    cfg.client_fraction = 0.5;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg.rounds = 2;
    cfg.seed = 77;
    cfg.dropout_prob = 0.2;
    cfg.faults.crash_prob = 0.1;
    cfg.faults.straggler_fraction = 0.25;
    cfg.faults.straggler_slowdown = 2.0;
    cfg.faults.error_multiplier_max = 3.0;
    if (async) {
      cfg.async.enabled = true;
      cfg.async.over_selection = 0.5;
      cfg.async.staleness_exponent = 0.5;
      cfg.async.max_staleness = 2;
      cfg.async.timeline.update_bits = 1'000'000;
      cfg.async.timeline.fhdnn = false;
      cfg.async.timeline.compute_jitter = 0.1;
    } else {
      cfg.deadline.enabled = true;
      cfg.deadline.over_selection = 0.5;
      cfg.deadline.deadline_factor = 3.0;
      cfg.deadline.timeline.update_bits = 1'000'000;
      cfg.deadline.timeline.fhdnn = false;
      cfg.deadline.timeline.compute_jitter = 0.1;
    }
    cfg.checkpoint = std::move(ck);
    cfg.crash = crash;
    return std::make_unique<fl::FedAvgTrainer>(factory, data->train,
                                               data->parts, data->test, cfg,
                                               data->uplink.get());
  };
  return fx;
}

std::shared_ptr<FedAvgFixtureData> make_fedavg_data() {
  auto data = std::make_shared<FedAvgFixtureData>();
  Rng rng(71);
  auto full = data::synthetic_mnist(120, rng);
  auto split = data::train_test_split(full, 0.25, rng);
  data->parts = data::partition_iid(split.train, 4, rng);
  data->train = std::move(split.train);
  data->test = std::move(split.test);
  data->uplink = channel::make_bit_error(1e-4);
  return data;
}

/// FedHd on isolet-like data with a corrupting uplink.
struct FedHdFixtureData {
  std::vector<fl::HdClientData> clients;
  fl::HdClientData test;
};

Fixture<fl::FedHdTrainer> fedhd_fixture(std::shared_ptr<FedHdFixtureData> data,
                                        bool async) {
  Fixture<fl::FedHdTrainer> fx;
  fx.make = [data, async](fl::CheckpointConfig ck, fl::CrashPlan crash) {
    fl::FedHdConfig cfg;
    cfg.n_clients = 6;
    cfg.client_fraction = 0.5;
    cfg.local_epochs = 1;
    cfg.rounds = 2;
    cfg.num_classes = 4;
    cfg.hd_dim = 256;
    cfg.seed = 78;
    cfg.dropout_prob = 0.2;
    cfg.uplink.mode = channel::HdUplinkMode::BitErrors;
    cfg.uplink.ber = 1e-4;
    cfg.faults.crash_prob = 0.1;
    cfg.faults.error_multiplier_max = 2.0;
    if (async) {
      cfg.async.enabled = true;
      cfg.async.over_selection = 0.5;
      cfg.async.staleness_exponent = 0.5;
      cfg.async.max_staleness = 2;
      cfg.async.timeline.update_bits = 256;
      cfg.async.timeline.fhdnn = true;
      cfg.async.timeline.compute_jitter = 0.1;
    } else {
      cfg.deadline.enabled = true;
      cfg.deadline.over_selection = 0.5;
      cfg.deadline.deadline_factor = 3.0;
      cfg.deadline.timeline.update_bits = 256;
      cfg.deadline.timeline.fhdnn = true;
      cfg.deadline.timeline.compute_jitter = 0.1;
    }
    cfg.checkpoint = std::move(ck);
    cfg.crash = crash;
    return std::make_unique<fl::FedHdTrainer>(data->clients, data->test, cfg);
  };
  return fx;
}

std::shared_ptr<FedHdFixtureData> make_fedhd_data() {
  auto data = std::make_shared<FedHdFixtureData>();
  Rng rng(72);
  data::IsoletSpec spec;
  spec.dims = 16;
  spec.classes = 4;
  spec.n = 120;
  spec.separation = 0.5;
  const auto ds = data::make_isolet_like(spec, rng);
  Rng enc_rng = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(16, 256, enc_rng);
  const auto split = data::train_test_split(ds, 0.25, rng);
  data->test = {enc.encode(split.test.x), split.test.labels};
  const auto parts = data::partition_iid(split.train, 6, rng);
  for (const auto& part : parts) {
    const auto sub = split.train.subset(part);
    data->clients.push_back({enc.encode(sub.x), sub.labels});
  }
  return data;
}

// ------------------------------------------------------- the full sweeps

TEST(KillResume, FedAvgDeadlineEveryBoundary) {
  ThreadGuard guard;
  auto data = make_fedavg_data();
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    kill_resume_sweep(fedavg_fixture(data, false), "fedavg_deadline");
  }
}

TEST(KillResume, FedAvgAsyncEveryBoundary) {
  ThreadGuard guard;
  auto data = make_fedavg_data();
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    kill_resume_sweep(fedavg_fixture(data, true), "fedavg_async");
  }
}

TEST(KillResume, FedHdDeadlineEveryBoundary) {
  ThreadGuard guard;
  auto data = make_fedhd_data();
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    kill_resume_sweep(fedhd_fixture(data, false), "fedhd_deadline");
  }
}

TEST(KillResume, FedHdAsyncEveryBoundary) {
  ThreadGuard guard;
  auto data = make_fedhd_data();
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    parallel::set_num_threads(threads);
    kill_resume_sweep(fedhd_fixture(data, true), "fedhd_async");
  }
}

// ------------------------------------------------ protocol-level checks

TEST(KillResume, BoundaryCheckpointResumesAcrossRounds) {
  // Checkpoint only at round boundaries (every_n_events = 0): kill the
  // aggregator in the middle of round 2, resume from the round-1 boundary
  // snapshot (which is what survives), and finish identically.
  auto data = make_fedhd_data();
  const auto fx = fedhd_fixture(data, false);
  const std::string path = tmp_path("boundary.snap");
  remove_generations(path);

  auto golden_trainer = fx.make({}, {});
  const auto golden = golden_trainer->run();

  std::uint64_t round1_events = 0;
  {
    auto probe = fx.make({}, {});
    (void)probe->round(1);
    round1_events = probe->engine().total_events();
  }
  auto victim = fx.make({path, 0}, {true, round1_events + 1});
  bool crashed = false;
  try {
    victim->run();
  } catch (const fl::AggregatorCrash&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  auto survivor = fx.make({}, {});
  survivor->resume(path);  // the round-1 boundary checkpoint
  const auto resumed = survivor->run();
  expect_same_history(golden, resumed);
}

TEST(KillResume, SnapshotRestoreSnapshotIsByteIdentical) {
  auto data = make_fedhd_data();
  const auto fx = fedhd_fixture(data, false);
  const std::string path = tmp_path("property.snap");
  const std::string again = tmp_path("property_again.snap");
  remove_generations(path);
  remove_generations(again);

  auto victim = fx.make({path, 1}, {true, 5});
  try {
    victim->run();
  } catch (const fl::AggregatorCrash&) {
  }

  auto survivor = fx.make({}, {});
  survivor->resume(path);
  survivor->checkpoint(again);
  EXPECT_EQ(slurp(path), slurp(again));
}

TEST(KillResume, CorruptPrimaryFallsBackToPreviousGeneration) {
  auto data = make_fedhd_data();
  const auto fx = fedhd_fixture(data, false);
  const std::string path = tmp_path("fallback.snap");
  remove_generations(path);

  auto golden_trainer = fx.make({}, {});
  const auto golden = golden_trainer->run();

  // Checkpoint after every event, kill at event 6: primary holds event 6,
  // .prev holds event 5. Corrupt the primary; resume must fall back and
  // still reach the identical final history (event 5 replays event 6).
  auto victim = fx.make({path, 1}, {true, 6});
  try {
    victim->run();
  } catch (const fl::AggregatorCrash&) {
  }
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('\xFF');
  }
  auto survivor = fx.make({}, {});
  survivor->resume(path);
  const auto resumed = survivor->run();
  expect_same_history(golden, resumed);

  // Both generations corrupt: typed SnapshotError, nothing silently wrong.
  {
    std::fstream f(path + ".prev",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('\xFF');
  }
  auto doomed = fx.make({}, {});
  EXPECT_THROW(doomed->resume(path), util::SnapshotError);
}

TEST(KillResume, ResumeRejectsMismatchedConfig) {
  auto data = make_fedhd_data();
  const std::string path = tmp_path("fingerprint.snap");
  remove_generations(path);
  {
    const auto fx = fedhd_fixture(data, false);
    auto t = fx.make({}, {});
    (void)t->round(1);
    t->checkpoint(path);
  }
  // Async-mode fixture has a different config fingerprint.
  const auto other = fedhd_fixture(data, true);
  auto t = other.make({}, {});
  try {
    t->resume(path);
    FAIL() << "mismatched config accepted";
  } catch (const util::SnapshotError& e) {
    EXPECT_EQ(e.kind(), util::SnapshotErrorKind::kState);
  }
}

}  // namespace
}  // namespace fhdnn
