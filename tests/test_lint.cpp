// Unit tests for fhdnn-lint (tools/lint): every built-in rule is exercised
// against embedded fixture sources with at least one positive (violating)
// case and one suppressed case, plus scanner/token-matcher edge cases.
//
// Fixtures are raw string literals; the linter's own comment/string
// stripper blanks literal contents before token matching, which is also
// why this file does not flag itself when the tree lint runs over tests/.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace lint = fhdnn::lint;

namespace {

std::vector<lint::Diagnostic> run(std::string path, std::string_view src) {
  static const auto rules = lint::default_rules();
  return lint::lint_source(std::move(path), src, rules);
}

int count_rule(const std::vector<lint::Diagnostic>& diags,
               std::string_view rule) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const lint::Diagnostic& d) { return d.rule == rule; }));
}

}  // namespace

TEST(LintScanner, StripsCommentsAndStrings) {
  const auto f = lint::scan_source("src/fl/x.cpp",
                                   "int a; // std::thread in comment\n"
                                   "const char* s = \"std::thread\";\n"
                                   "std::thread t;\n");
  EXPECT_FALSE(lint::has_token(f.code[0], "std::thread"));
  EXPECT_FALSE(lint::has_token(f.code[1], "std::thread"));
  EXPECT_TRUE(lint::has_token(f.code[2], "std::thread"));
  // Comment text is preserved separately for doc-comment rules.
  EXPECT_NE(f.comment[0].find("comment"), std::string::npos);
}

TEST(LintScanner, HandlesBlockCommentsAndRawStrings) {
  const auto f = lint::scan_source("src/fl/x.cpp",
                                   "/* std::thread\n"
                                   "   still comment */ int a;\n"
                                   "auto s = R\"(std::thread)\";\n");
  EXPECT_FALSE(lint::has_token(f.code[0], "std::thread"));
  EXPECT_FALSE(lint::has_token(f.code[1], "std::thread"));
  EXPECT_TRUE(lint::has_token(f.code[1], "int"));
  EXPECT_FALSE(lint::has_token(f.code[2], "std::thread"));
}

TEST(LintScanner, TokenBoundaries) {
  // `Tensor::rand` must not match a ban on `rand`; `srand` must not match
  // `rand` either, but a standalone `rand` does.
  EXPECT_FALSE(lint::has_token("Tensor::rand(shape)", "rand"));
  EXPECT_FALSE(lint::has_token("srand(1)", "rand"));
  EXPECT_FALSE(lint::has_token("randint(0, 5)", "rand"));
  EXPECT_TRUE(lint::has_token("rand()", "rand"));
  EXPECT_TRUE(lint::has_token("std::thread t;", "std::thread"));
  EXPECT_FALSE(lint::has_token("mystd::thread t;", "std::thread"));
}

// ---- raw-thread ----------------------------------------------------------

TEST(LintRules, RawThreadPositive) {
  const auto d = run("src/fl/worker.cpp", "std::thread t([] {});\n");
  EXPECT_EQ(count_rule(d, "raw-thread"), 1);
  const auto a = run("src/core/x.cpp", "auto f = std::async(g);\n");
  EXPECT_EQ(count_rule(a, "raw-thread"), 1);
}

TEST(LintRules, RawThreadSuppressedAndExempt) {
  const auto d = run("src/fl/worker.cpp",
                     "// fhdnn-lint: allow(raw-thread)\n"
                     "std::thread t([] {});\n");
  EXPECT_EQ(count_rule(d, "raw-thread"), 0);
  const auto same_line = run("src/fl/worker.cpp",
                             "std::thread t;  // fhdnn-lint: allow(raw-thread)\n");
  EXPECT_EQ(count_rule(same_line, "raw-thread"), 0);
  // util/parallel is the one place raw threads are the point.
  const auto exempt = run("src/util/parallel.cpp", "std::thread t([] {});\n");
  EXPECT_EQ(count_rule(exempt, "raw-thread"), 0);
}

TEST(LintRules, AllowAboveMultiLineDeclarationCoversEveryLine) {
  // The diagnostic lands on the std::thread line, two lines below the
  // allow() comment; the suppression must walk up to the declaration's
  // first line instead of stranding at line - 1.
  const auto d = run("src/fl/worker.cpp",
                     "// fhdnn-lint: allow(raw-thread)\n"
                     "auto worker =\n"
                     "    std::make_unique<\n"
                     "        std::thread>([] {});\n");
  EXPECT_EQ(count_rule(d, "raw-thread"), 0);
  // A terminated statement above fences the walk: the same comment must
  // NOT leak past a ';' onto an unrelated later declaration.
  const auto fenced = run("src/fl/worker.cpp",
                          "// fhdnn-lint: allow(raw-thread)\n"
                          "int unrelated = 0;\n"
                          "std::thread t([] {});\n");
  EXPECT_EQ(count_rule(fenced, "raw-thread"), 1);
}

// ---- nondet-rng ----------------------------------------------------------

TEST(LintRules, NondetRngPositive) {
  const auto d = run("src/data/x.cpp",
                     "std::random_device rd;\n"
                     "std::mt19937 gen(rd());\n"
                     "srand(42);\n");
  EXPECT_EQ(count_rule(d, "nondet-rng"), 3);
}

TEST(LintRules, NondetRngSuppressedAndExempt) {
  const auto d = run("src/data/x.cpp",
                     "// fhdnn-lint: allow(nondet-rng)\n"
                     "std::random_device rd;\n");
  EXPECT_EQ(count_rule(d, "nondet-rng"), 0);
  const auto exempt = run("src/util/rng.cpp", "std::mt19937 gen;\n");
  EXPECT_EQ(count_rule(exempt, "nondet-rng"), 0);
  // Tensor::rand and fhdnn::Rng draws are fine.
  const auto ok = run("src/data/x.cpp",
                      "auto t = Tensor::rand(shape, rng);\n"
                      "auto i = rng.randint(0, 5);\n");
  EXPECT_EQ(count_rule(ok, "nondet-rng"), 0);
}

// ---- unordered-container -------------------------------------------------

TEST(LintRules, UnorderedContainerPositive) {
  const auto d = run("src/fl/agg.cpp",
                     "std::unordered_map<int, float> acc;\n");
  EXPECT_EQ(count_rule(d, "unordered-container"), 1);
  const auto h = run("src/hdc/x.hpp", "std::unordered_set<int> seen;\n");
  EXPECT_EQ(count_rule(h, "unordered-container"), 1);
}

TEST(LintRules, UnorderedContainerSuppressedAndOutOfScope) {
  const auto d = run("src/fl/agg.cpp",
                     "// lookup only, never iterated\n"
                     "// fhdnn-lint: allow(unordered-container)\n"
                     "std::unordered_map<int, float> acc;\n");
  EXPECT_EQ(count_rule(d, "unordered-container"), 0);
  // Outside the deterministic aggregation dirs the rule does not apply.
  const auto ok = run("src/util/x.cpp", "std::unordered_map<int, int> m;\n");
  EXPECT_EQ(count_rule(ok, "unordered-container"), 0);
}

// ---- simd-isolation ------------------------------------------------------

TEST(LintRules, SimdIsolationPositive) {
  const auto d = run("src/hdc/packed.cpp", "#include <immintrin.h>\n");
  EXPECT_EQ(count_rule(d, "simd-isolation"), 1);
  const auto n = run("bench/micro_packed_hd.cpp", "#include <arm_neon.h>\n");
  EXPECT_EQ(count_rule(n, "simd-isolation"), 1);
}

TEST(LintRules, SimdIsolationExemptAndSuppressed) {
  // The per-tier TUs are where intrinsics belong.
  const auto avx = run("src/util/simd_avx2.cpp", "#include <immintrin.h>\n");
  EXPECT_EQ(count_rule(avx, "simd-isolation"), 0);
  const auto neon = run("src/util/simd_neon.cpp", "#include <arm_neon.h>\n");
  EXPECT_EQ(count_rule(neon, "simd-isolation"), 0);
  const auto allowed = run("src/hdc/packed.cpp",
                           "// fhdnn-lint: allow(simd-isolation)\n"
                           "#include <immintrin.h>\n");
  EXPECT_EQ(count_rule(allowed, "simd-isolation"), 0);
}

// ---- arena-discipline ----------------------------------------------------

TEST(LintRules, ArenaDisciplinePositive) {
  const auto d = run("src/tensor/x.cpp",
                     "void scale_into(ConstTensorView a, TensorView out) {\n"
                     "  Tensor tmp(a_shape);\n"
                     "  auto p = std::make_unique<float[]>(8);\n"
                     "}\n");
  EXPECT_EQ(count_rule(d, "arena-discipline"), 2);
}

TEST(LintRules, ArenaDisciplineForwardBodies) {
  const auto d = run("src/nn/x.cpp",
                     "const Tensor& Linear::forward(const Tensor& x) {\n"
                     "  float* raw = new float[16];\n"
                     "  return out_;\n"
                     "}\n");
  EXPECT_EQ(count_rule(d, "arena-discipline"), 1);
  // forward/backward bodies outside src/nn/ are not in scope.
  const auto ok = run("src/core/x.cpp",
                      "double forward(const Tensor& x) {\n"
                      "  Tensor tmp(x.shape());\n"
                      "  return tmp.sum();\n"
                      "}\n");
  EXPECT_EQ(count_rule(ok, "arena-discipline"), 0);
}

TEST(LintRules, ArenaDisciplineAllowsReferencesAndWrappers) {
  // References, view params, and calls are not constructions; and the
  // value-returning wrapper (no _into suffix) may allocate by design.
  const auto ok = run("src/tensor/x.cpp",
                      "void relu_into(ConstTensorView x, TensorView out) {\n"
                      "  const Tensor& ref = cache_;\n"
                      "  other_into(x, out);\n"
                      "}\n"
                      "Tensor relu(const Tensor& x) {\n"
                      "  Tensor y(x.shape());\n"
                      "  relu_into(x, y);\n"
                      "  return y;\n"
                      "}\n");
  EXPECT_EQ(count_rule(ok, "arena-discipline"), 0);
}

TEST(LintRules, ArenaDisciplineSuppressed) {
  const auto d = run("src/tensor/x.cpp",
                     "void warmup_into(ConstTensorView a, TensorView out) {\n"
                     "  // one-time warmup growth, measured by test_memory\n"
                     "  // fhdnn-lint: allow(arena-discipline)\n"
                     "  Tensor tmp(a_shape);\n"
                     "}\n");
  EXPECT_EQ(count_rule(d, "arena-discipline"), 0);
}

// ---- into-alias-doc ------------------------------------------------------

TEST(LintRules, IntoAliasDocPositive) {
  const auto d = run("src/tensor/x.hpp",
                     "#pragma once\n"
                     "\n"
                     "/// c = a + b.\n"
                     "void add_into(ConstTensorView a, TensorView out);\n");
  EXPECT_EQ(count_rule(d, "into-alias-doc"), 1);
}

TEST(LintRules, IntoAliasDocSatisfiedAndSuppressed) {
  const auto ok = run("src/tensor/x.hpp",
                      "#pragma once\n"
                      "\n"
                      "/// c = a + b. Aliasing: out may alias a.\n"
                      "Tensor add(const Tensor& a);\n"
                      "void add_into(ConstTensorView a, TensorView out);\n");
  EXPECT_EQ(count_rule(ok, "into-alias-doc"), 0);
  const auto sup = run("src/tensor/x.hpp",
                       "#pragma once\n"
                       "\n"
                       "// fhdnn-lint: allow(into-alias-doc)\n"
                       "void add_into(ConstTensorView a, TensorView out);\n");
  EXPECT_EQ(count_rule(sup, "into-alias-doc"), 0);
  // Definitions in .cpp files need no doc comment.
  const auto cpp = run("src/tensor/x.cpp",
                       "void add_into(ConstTensorView a, TensorView out) {\n"
                       "}\n");
  EXPECT_EQ(count_rule(cpp, "into-alias-doc"), 0);
}

// ---- pragma-once ---------------------------------------------------------

TEST(LintRules, PragmaOncePositive) {
  const auto d = run("src/util/x.hpp", "#include <vector>\nint a;\n");
  EXPECT_EQ(count_rule(d, "pragma-once"), 1);
  const auto empty = run("src/util/y.hpp", "// only a comment\n");
  EXPECT_EQ(count_rule(empty, "pragma-once"), 1);
}

TEST(LintRules, PragmaOnceSatisfiedAndSuppressed) {
  const auto ok = run("src/util/x.hpp",
                      "// leading comment is fine\n"
                      "#pragma once\n"
                      "#include <vector>\n");
  EXPECT_EQ(count_rule(ok, "pragma-once"), 0);
  const auto sup = run("src/util/x.hpp",
                       "// fhdnn-lint: allow(pragma-once)\n"
                       "#include <vector>\n");
  EXPECT_EQ(count_rule(sup, "pragma-once"), 0);
  const auto cpp = run("src/util/x.cpp", "#include <vector>\n");
  EXPECT_EQ(count_rule(cpp, "pragma-once"), 0);
}

// ---- include-style -------------------------------------------------------

TEST(LintRules, IncludeStylePositive) {
  const auto d = run("src/fl/x.cpp", "#include <tensor/ops.hpp>\n");
  EXPECT_EQ(count_rule(d, "include-style"), 1);
}

TEST(LintRules, IncludeStyleSatisfiedAndSuppressed) {
  const auto ok = run("src/fl/x.cpp",
                      "#include \"tensor/ops.hpp\"\n"
                      "#include <vector>\n");
  EXPECT_EQ(count_rule(ok, "include-style"), 0);
  const auto sup = run("src/fl/x.cpp",
                       "// fhdnn-lint: allow(include-style)\n"
                       "#include <tensor/ops.hpp>\n");
  EXPECT_EQ(count_rule(sup, "include-style"), 0);
}

// ---- self-include-first --------------------------------------------------

TEST(LintRules, SelfIncludeFirstPositive) {
  const auto d = run("src/tensor/ops.cpp",
                     "#include <vector>\n"
                     "#include \"tensor/ops.hpp\"\n");
  EXPECT_EQ(count_rule(d, "self-include-first"), 1);
}

TEST(LintRules, SelfIncludeFirstSatisfiedAndSuppressed) {
  const auto ok = run("src/tensor/ops.cpp",
                      "#include \"tensor/ops.hpp\"\n"
                      "\n"
                      "#include <vector>\n");
  EXPECT_EQ(count_rule(ok, "self-include-first"), 0);
  const auto sup = run("src/tensor/ops.cpp",
                       "#include <vector>\n"
                       "// fhdnn-lint: allow(self-include-first)\n"
                       "#include \"tensor/ops.hpp\"\n");
  EXPECT_EQ(count_rule(sup, "self-include-first"), 0);
  // Files that never include their own header are out of scope.
  const auto none = run("tests/test_x.cpp", "#include <vector>\n");
  EXPECT_EQ(count_rule(none, "self-include-first"), 0);
}

// ---- sim-clock -----------------------------------------------------------

TEST(LintRules, SimClockPositive) {
  const auto d = run("src/fl/engine.cpp",
                     "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(d, "sim-clock"), 1);
  const auto sys = run("src/fl/timeline.cpp",
                       "auto t = std::chrono::system_clock::now();\n"
                       "auto h = std::chrono::high_resolution_clock::now();\n");
  EXPECT_EQ(count_rule(sys, "sim-clock"), 2);
}

TEST(LintRules, SimClockSuppressedAndOutOfScope) {
  // The sanctioned wall_seconds measurement sites carry inline allow()s.
  const auto sup = run("src/fl/engine.cpp",
                       "// fhdnn-lint: allow(sim-clock)\n"
                       "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(sup, "sim-clock"), 0);
  // Outside src/fl/ wall clocks are fine (benches, kernels, tests).
  const auto bench = run("bench/micro_memory.cpp",
                         "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(bench, "sim-clock"), 0);
  const auto util = run("src/util/log.cpp",
                        "auto t = std::chrono::system_clock::now();\n");
  EXPECT_EQ(count_rule(util, "sim-clock"), 0);
  // Durations and chrono types that read no clock are fine even in fl/.
  const auto dur = run("src/fl/engine.cpp",
                       "std::chrono::duration<double> d(seconds);\n");
  EXPECT_EQ(count_rule(dur, "sim-clock"), 0);
}

// ---- io-isolation --------------------------------------------------------

TEST(LintRules, IoIsolationPositive) {
  const auto d = run("src/fl/engine.cpp",
                     "std::ofstream os(path);\n"
                     "FILE* f = fopen(path.c_str(), \"wb\");\n"
                     "fwrite(buf, 1, n, f);\n");
  EXPECT_EQ(count_rule(d, "io-isolation"), 3);
  const auto fs = run("src/fl/history.cpp", "std::fstream io(path);\n");
  EXPECT_EQ(count_rule(fs, "io-isolation"), 1);
}

TEST(LintRules, IoIsolationSuppressedAndOutOfScope) {
  // A documented site may carry an inline allow().
  const auto sup = run("src/fl/engine.cpp",
                       "// fhdnn-lint: allow(io-isolation)\n"
                       "std::ofstream os(path);\n");
  EXPECT_EQ(count_rule(sup, "io-isolation"), 0);
  // The snapshot writer itself and everything outside src/fl/ are free to
  // open files (tensor/io, bench JSON, tests).
  const auto util = run("src/util/snapshot.cpp", "std::ofstream os(tmp);\n");
  EXPECT_EQ(count_rule(util, "io-isolation"), 0);
  const auto bench = run("bench/micro_memory.cpp",
                         "std::ofstream json(json_path);\n");
  EXPECT_EQ(count_rule(bench, "io-isolation"), 0);
  // Reads are not writes: ifstream stays legal inside src/fl/.
  const auto read = run("src/fl/engine.cpp", "std::ifstream is(path);\n");
  EXPECT_EQ(count_rule(read, "io-isolation"), 0);
}

TEST(LintRules, NetIsolationPositive) {
  // OS networking headers and epoll syscalls outside src/net/.
  const auto d = run("src/fl/serving.cpp",
                     "#include <sys/socket.h>\n"
                     "#include <netinet/tcp.h>\n"
                     "int e = epoll_create1(0);\n");
  EXPECT_EQ(count_rule(d, "net-isolation"), 3);
  const auto tool = run("tools/fhdnnd/fhdnnd.cpp",
                        "#include <sys/epoll.h>\n");
  EXPECT_EQ(count_rule(tool, "net-isolation"), 1);
  const auto hdr = run("src/channel/arq.cpp", "#include <poll.h>\n");
  EXPECT_EQ(count_rule(hdr, "net-isolation"), 1);
}

TEST(LintRules, NetIsolationSuppressedAndExempt) {
  // src/net/ is the one place OS networking lives.
  const auto net = run("src/net/socket.cpp",
                       "#include <sys/socket.h>\n"
                       "#include <arpa/inet.h>\n"
                       "int c = accept4(fd, nullptr, nullptr, 0);\n");
  EXPECT_EQ(count_rule(net, "net-isolation"), 0);
  const auto sup = run("src/fl/x.cpp",
                       "// fhdnn-lint: allow(net-isolation)\n"
                       "#include <sys/socket.h>\n");
  EXPECT_EQ(count_rule(sup, "net-isolation"), 0);
  // Token boundaries: <netinet/in.h> must not double-report for the
  // "netdb.h" or "poll.h" tokens; "epoll.h" inside sys/epoll.h must not
  // also match "poll.h".
  const auto one = run("src/fl/x.cpp", "#include <sys/epoll.h>\n");
  EXPECT_EQ(count_rule(one, "net-isolation"), 1);
}

TEST(LintRules, IncludeStyleCoversWireAndNet) {
  const auto d = run("src/fl/serving.cpp",
                     "#include <wire/messages.hpp>\n"
                     "#include <net/connection.hpp>\n"
                     "#include <netinet/in.h>  // fhdnn-lint: allow(net-isolation)\n");
  EXPECT_EQ(count_rule(d, "include-style"), 2);
}

// ---- framework behaviour -------------------------------------------------

TEST(LintFramework, SuppressionIsPerRule) {
  // An allow() for one rule must not silence another on the same line.
  const auto d = run("src/fl/x.cpp",
                     "// fhdnn-lint: allow(nondet-rng)\n"
                     "std::thread t;\n");
  EXPECT_EQ(count_rule(d, "raw-thread"), 1);
}

TEST(LintFramework, DiagnosticCarriesLocation) {
  const auto d = run("src/fl/x.cpp", "int a;\nstd::thread t;\n");
  ASSERT_EQ(d.size(), 1U);
  EXPECT_EQ(d[0].path, "src/fl/x.cpp");
  EXPECT_EQ(d[0].line, 2);
  EXPECT_EQ(d[0].rule, "raw-thread");
}

TEST(LintFramework, DefaultRulesCatalog) {
  const auto rules = lint::default_rules();
  EXPECT_GE(rules.size(), 6U);
  for (const auto& r : rules) {
    EXPECT_FALSE(r->name().empty());
    EXPECT_FALSE(r->description().empty());
  }
}

TEST(LintFramework, AbsolutePathsMapToRepoPaths) {
  // The tree lint passes absolute paths; path-scoped rules must still fire.
  const auto d = run("/root/repo/src/fl/x.cpp",
                     "std::unordered_map<int, int> m;\n");
  EXPECT_EQ(count_rule(d, "unordered-container"), 1);
}
