// Tests for the extended HDC components: classic HD algebra (bind/bundle/
// permute), the ID-level encoder, and the binarized transmission model.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "hdc/binary_model.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/id_level_encoder.hpp"
#include "hdc/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fhdnn {
namespace {

using namespace fhdnn::hdc;

// ---------------------------------------------------------------- algebra

TEST(HdAlgebra, RandomBipolarBalanced) {
  Rng rng(1);
  const Tensor v = random_bipolar(10000, rng);
  double sum = 0.0;
  for (const float x : v.data()) {
    EXPECT_TRUE(x == 1.0F || x == -1.0F);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.05);
}

TEST(HdAlgebra, BindIsInvolutionForBipolar) {
  Rng rng(2);
  const Tensor a = random_bipolar(512, rng);
  const Tensor b = random_bipolar(512, rng);
  const Tensor ab = bind(a, b);
  const Tensor back = bind(ab, b);
  for (std::int64_t i = 0; i < 512; ++i) EXPECT_EQ(back(i), a(i));
}

TEST(HdAlgebra, BindDissimilarToOperands) {
  Rng rng(3);
  const Tensor a = random_bipolar(4096, rng);
  const Tensor b = random_bipolar(4096, rng);
  const Tensor ab = bind(a, b);
  // bound vector ~orthogonal to both operands (Hamming ~0.5).
  EXPECT_NEAR(hamming_distance(ab, a), 0.5, 0.05);
  EXPECT_NEAR(hamming_distance(ab, b), 0.5, 0.05);
}

TEST(HdAlgebra, BundleSimilarToMembers) {
  Rng rng(4);
  std::vector<Tensor> members;
  for (int i = 0; i < 5; ++i) members.push_back(random_bipolar(4096, rng));
  const Tensor maj = bundle_majority(members);
  const Tensor stranger = random_bipolar(4096, rng);
  for (const auto& m : members) {
    EXPECT_LT(hamming_distance(maj, m), 0.35);
  }
  EXPECT_NEAR(hamming_distance(maj, stranger), 0.5, 0.05);
}

TEST(HdAlgebra, BundleSums) {
  const Tensor a = Tensor::from({1, -1, 1});
  const Tensor b = Tensor::from({1, 1, -1});
  const Tensor s = bundle({a, b});
  EXPECT_EQ(s(0), 2.0F);
  EXPECT_EQ(s(1), 0.0F);
  EXPECT_THROW(bundle({}), Error);
}

TEST(HdAlgebra, PermuteRoundTripAndDistancePreserving) {
  Rng rng(5);
  const Tensor a = random_bipolar(1024, rng);
  const Tensor b = random_bipolar(1024, rng);
  const Tensor pa = permute(a, 37);
  const Tensor pb = permute(b, 37);
  // Invertible.
  const Tensor back = permute(pa, -37);
  for (std::int64_t i = 0; i < 1024; ++i) EXPECT_EQ(back(i), a(i));
  // Distance preserving.
  EXPECT_EQ(hamming_distance(a, b), hamming_distance(pa, pb));
  // Permutation decorrelates from the original.
  EXPECT_NEAR(hamming_distance(a, pa), 0.5, 0.06);
  // Wrap-around equivalence.
  const Tensor p1 = permute(a, 1024 + 3);
  const Tensor p2 = permute(a, 3);
  for (std::int64_t i = 0; i < 1024; ++i) EXPECT_EQ(p1(i), p2(i));
}

TEST(HdAlgebra, SignConvention) {
  const Tensor v = Tensor::from({-0.5F, 0.0F, 2.0F});
  const Tensor s = sign(v);
  EXPECT_EQ(s(0), -1.0F);
  EXPECT_EQ(s(1), 1.0F);  // sign(0) := +1
  EXPECT_EQ(s(2), 1.0F);
}

TEST(HdAlgebra, HammingValidatesBipolar) {
  const Tensor a = Tensor::from({1, -1});
  const Tensor b = Tensor::from({1, 0.5F});
  EXPECT_THROW(hamming_distance(a, b), Error);
}

// ---------------------------------------------------------------- id-level

TEST(IdLevelEncoder, QuantizeEdges) {
  Rng rng(6);
  IdLevelEncoder enc(4, 256, 8, 0.0F, 1.0F, rng);
  EXPECT_EQ(enc.quantize(-5.0F), 0);
  EXPECT_EQ(enc.quantize(0.0F), 0);
  EXPECT_EQ(enc.quantize(0.999F), 7);
  EXPECT_EQ(enc.quantize(1.0F), 7);
  EXPECT_EQ(enc.quantize(9.0F), 7);
  EXPECT_EQ(enc.quantize(0.5F), 4);
}

TEST(IdLevelEncoder, LevelSimilarityDecaysWithDistance) {
  Rng rng(7);
  IdLevelEncoder enc(4, 8192, 16, 0.0F, 1.0F, rng);
  // Adjacent levels very similar, extreme levels ~orthogonal.
  EXPECT_GT(enc.level_similarity(0, 1), 0.8);
  EXPECT_GT(enc.level_similarity(0, 4), enc.level_similarity(0, 12));
  EXPECT_LT(enc.level_similarity(0, 15), 0.2);
  EXPECT_DOUBLE_EQ(enc.level_similarity(3, 3), 1.0);
}

TEST(IdLevelEncoder, OutputsBipolar) {
  Rng rng(8);
  IdLevelEncoder enc(16, 512, 8, -1.0F, 1.0F, rng);
  Rng dr(9);
  const Tensor z = Tensor::randn(Shape{5, 16}, dr);
  const Tensor h = enc.encode(z);
  EXPECT_EQ(h.shape(), (Shape{5, 512}));
  for (const float v : h.data()) EXPECT_TRUE(v == 1.0F || v == -1.0F);
}

TEST(IdLevelEncoder, SimilarInputsSimilarCodes) {
  Rng rng(10);
  IdLevelEncoder enc(32, 4096, 16, -3.0F, 3.0F, rng);
  Rng dr(11);
  Tensor a = Tensor::randn(Shape{32}, dr);
  Tensor near = a;
  for (auto& v : near.data()) v += static_cast<float>(dr.normal(0.0, 0.05));
  const Tensor far = Tensor::randn(Shape{32}, dr);
  const Tensor ha = enc.encode(a), hn = enc.encode(near), hf = enc.encode(far);
  EXPECT_LT(hamming_distance(ha, hn), hamming_distance(ha, hf) - 0.1);
}

TEST(IdLevelEncoder, ClassifiesIsoletLikeData) {
  // End-to-end: ID-level encoding + HD classifier learns clustered data.
  Rng rng(12);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 4;
  spec.n = 240;
  spec.rank = 4;
  const auto ds = data::make_isolet_like(spec, rng);
  const auto split = data::train_test_split(ds, 0.25, rng);
  Rng er = rng.fork("enc");
  IdLevelEncoder enc(32, 2048, 16, -6.0F, 6.0F, er);
  const Tensor htr = enc.encode(split.train.x);
  const Tensor hte = enc.encode(split.test.x);
  HdClassifier clf(4, 2048);
  clf.bundle(htr, split.train.labels);
  for (int e = 0; e < 2; ++e) clf.refine_epoch(htr, split.train.labels);
  EXPECT_GT(clf.accuracy(hte, split.test.labels), 0.8);
}

TEST(IdLevelEncoder, Validation) {
  Rng rng(13);
  EXPECT_THROW(IdLevelEncoder(0, 256, 8, 0, 1, rng), Error);
  EXPECT_THROW(IdLevelEncoder(4, 256, 1, 0, 1, rng), Error);
  EXPECT_THROW(IdLevelEncoder(4, 256, 8, 1, 1, rng), Error);
  IdLevelEncoder enc(4, 256, 8, 0, 1, rng);
  EXPECT_THROW(enc.encode(Tensor(Shape{2, 5})), Error);
  EXPECT_THROW(enc.level_similarity(0, 8), Error);
}

// ---------------------------------------------------------------- binary

TEST(BinaryModel, RoundTripSigns) {
  Rng rng(14);
  const Tensor protos = Tensor::randn(Shape{3, 100}, rng);
  const BinaryModel m = binarize(protos);
  EXPECT_EQ(m.payload_bits(), 300U);
  const Tensor back = expand(m);
  for (std::int64_t i = 0; i < protos.numel(); ++i) {
    EXPECT_EQ(back.at(i), protos.at(i) >= 0.0F ? 1.0F : -1.0F);
  }
}

TEST(BinaryModel, FlipCountMatchesRate) {
  Rng rng(15);
  Tensor protos = Tensor::randn(Shape{10, 10000}, rng);
  BinaryModel m = binarize(protos);
  const Tensor before = expand(m);
  const auto flips = flip_binary_model_bits(m, 0.01, rng);
  EXPECT_NEAR(static_cast<double>(flips), 1000.0, 150.0);
  const Tensor after = expand(m);
  std::size_t changed = 0;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    changed += (before.at(i) != after.at(i));
  }
  EXPECT_EQ(changed, flips);
}

TEST(BinaryModel, FlipsNeverExplodeValues) {
  // The binary-transport motivation: a flipped bit toggles one ±1, so the
  // worst-case per-element damage is bounded by 2 — no float32 blowups.
  Rng rng(16);
  Tensor protos = Tensor::randn(Shape{4, 1000}, rng, 100.0F);
  BinaryModel m = binarize(protos);
  flip_binary_model_bits(m, 0.2, rng);
  const Tensor t = expand(m);
  for (const float v : t.data()) EXPECT_TRUE(v == 1.0F || v == -1.0F);
}

TEST(BinaryModel, MajorityAggregate) {
  // Three models voting elementwise.
  Tensor a(Shape{1, 4}, {1, 1, -1, -1});
  Tensor b(Shape{1, 4}, {1, -1, -1, 1});
  Tensor c(Shape{1, 4}, {1, -1, -1, -1});
  const auto agg =
      majority_aggregate({binarize(a), binarize(b), binarize(c)});
  const Tensor t = expand(agg);
  EXPECT_EQ(t(0, 0), 1.0F);
  EXPECT_EQ(t(0, 1), -1.0F);
  EXPECT_EQ(t(0, 2), -1.0F);
  EXPECT_EQ(t(0, 3), -1.0F);
}

TEST(BinaryModel, MajorityTieBreaksByIndexParity) {
  // An even split resolves by the flat bit index's parity: +1 at even
  // indices, -1 at odd — not a blanket +1, which would bias aggregates.
  Tensor a(Shape{1, 4}, {1, 1, -1, -1});
  Tensor b(Shape{1, 4}, {-1, -1, 1, 1});
  const auto agg = majority_aggregate({binarize(a), binarize(b)});
  const Tensor t = expand(agg);
  EXPECT_EQ(t(0, 0), 1.0F);
  EXPECT_EQ(t(0, 1), -1.0F);
  EXPECT_EQ(t(0, 2), 1.0F);
  EXPECT_EQ(t(0, 3), -1.0F);
}

TEST(BinaryModel, FlipWithOvershootingBerFlipsEverything) {
  // Deadline scaling can push the effective BER past 1.0; the flip walk
  // clamps to "every payload bit flips" instead of throwing.
  Rng rng(23);
  Tensor protos(Shape{2, 5}, {1, 1, 1, 1, 1, -1, -1, -1, -1, -1});
  BinaryModel m = binarize(protos);
  const auto flips = flip_binary_model_bits(m, 1.7, rng);
  EXPECT_EQ(flips, 10U);
  const Tensor t = expand(m);
  for (std::int64_t j = 0; j < 5; ++j) {
    EXPECT_EQ(t(0, j), -1.0F);
    EXPECT_EQ(t(1, j), 1.0F);
  }
}

TEST(BinaryModel, BinarizedClassifierRetainsAccuracy) {
  // Sign-compressing a trained prototype matrix costs little accuracy —
  // the justification for 1-bit transmission.
  Rng rng(17);
  data::IsoletSpec spec;
  spec.dims = 32;
  spec.classes = 4;
  spec.n = 240;
  const auto ds = data::make_isolet_like(spec, rng);
  const auto split = data::train_test_split(ds, 0.25, rng);
  Rng er = rng.fork("enc");
  hdc::RandomProjectionEncoder enc(32, 2048, er);
  const Tensor htr = enc.encode(split.train.x);
  const Tensor hte = enc.encode(split.test.x);
  HdClassifier clf(4, 2048);
  clf.bundle(htr, split.train.labels);
  const double full = clf.accuracy(hte, split.test.labels);
  clf.set_prototypes(expand(binarize(clf.prototypes())));
  const double binary = clf.accuracy(hte, split.test.labels);
  EXPECT_GT(binary, full - 0.1);
}

TEST(BinaryModel, Validation) {
  EXPECT_THROW(binarize(Tensor(Shape{4})), Error);
  EXPECT_THROW(majority_aggregate({}), Error);
  Tensor a(Shape{1, 4});
  Tensor b(Shape{1, 5});
  EXPECT_THROW(majority_aggregate({binarize(a), binarize(b)}), Error);
}

}  // namespace
}  // namespace fhdnn
