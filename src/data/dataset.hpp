// Labeled dataset container and batching utilities.
//
// A Dataset owns one tensor of examples — (N, C, H, W) for images or
// (N, F) for feature vectors — plus integer labels. Federated partitioners
// (data/partition.hpp) produce per-client index lists; `gather` materializes
// a batch tensor from such indices.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fhdnn::data {

struct Dataset {
  Tensor x;                          ///< (N, C, H, W) or (N, F)
  std::vector<std::int64_t> labels;  ///< N entries in [0, num_classes)
  std::int64_t num_classes = 0;
  std::string name;

  std::int64_t size() const { return static_cast<std::int64_t>(labels.size()); }
  bool is_image() const { return x.ndim() == 4; }

  /// Validate internal consistency; throws on violation.
  void check() const;

  /// Per-example scalar count (C*H*W or F).
  std::int64_t example_numel() const;

  /// Materialize the examples at `indices` as a batch tensor, plus labels.
  struct Batch {
    Tensor x;
    std::vector<std::int64_t> labels;
  };
  Batch gather(const std::vector<std::size_t>& indices) const;

  /// The whole dataset as one batch.
  Batch all() const;

  /// Subset copy (used to build per-client shards and train/test splits).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Histogram of labels (size num_classes).
  std::vector<std::int64_t> label_histogram() const;
};

/// Split a dataset into train/test by a deterministic shuffle.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit train_test_split(const Dataset& ds, double test_fraction,
                                Rng& rng);

/// Iterates shuffled mini-batches of indices over [0, n).
class BatchIterator {
 public:
  /// One pass (epoch) over n examples in batches of `batch_size`; the final
  /// partial batch is included.
  BatchIterator(std::size_t n, std::size_t batch_size, Rng& rng);

  /// Next batch of indices; empty when the epoch is exhausted.
  std::vector<std::size_t> next();

  bool done() const { return cursor_ >= order_.size(); }
  void reset(Rng& rng);

 private:
  std::size_t batch_size_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace fhdnn::data
