#include "data/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace fhdnn::data {

namespace {

void check_args(const Dataset& ds, std::size_t n_clients) {
  FHDNN_CHECK(n_clients > 0, "need at least one client");
  FHDNN_CHECK(static_cast<std::size_t>(ds.size()) >= n_clients,
              "dataset of " << ds.size() << " cannot feed " << n_clients
                            << " clients");
}

}  // namespace

ClientIndices partition_iid(const Dataset& ds, std::size_t n_clients,
                            Rng& rng) {
  check_args(ds, n_clients);
  const auto n = static_cast<std::size_t>(ds.size());
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  ClientIndices parts(n_clients);
  const std::size_t base = n / n_clients;
  const std::size_t extra = n % n_clients;
  std::size_t cursor = 0;
  for (std::size_t c = 0; c < n_clients; ++c) {
    const std::size_t take = base + (c < extra ? 1 : 0);
    parts[c].assign(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                    order.begin() + static_cast<std::ptrdiff_t>(cursor + take));
    cursor += take;
  }
  return parts;
}

ClientIndices partition_dirichlet(const Dataset& ds, std::size_t n_clients,
                                  double alpha, Rng& rng) {
  check_args(ds, n_clients);
  FHDNN_CHECK(alpha > 0.0, "dirichlet alpha " << alpha);
  // Bucket indices by class, shuffled.
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(ds.num_classes));
  for (std::size_t i = 0; i < ds.labels.size(); ++i) {
    by_class[static_cast<std::size_t>(ds.labels[i])].push_back(i);
  }
  for (auto& bucket : by_class) rng.shuffle(bucket);

  ClientIndices parts(n_clients);
  for (auto& bucket : by_class) {
    if (bucket.empty()) continue;
    const std::vector<double> props = rng.dirichlet(alpha, n_clients);
    // Convert proportions to cumulative cut points over the bucket.
    std::size_t start = 0;
    double cum = 0.0;
    for (std::size_t c = 0; c < n_clients; ++c) {
      cum += props[c];
      const auto end = (c + 1 == n_clients)
                           ? bucket.size()
                           : std::min(bucket.size(),
                                      static_cast<std::size_t>(
                                          cum * static_cast<double>(bucket.size())));
      for (std::size_t i = start; i < end; ++i) parts[c].push_back(bucket[i]);
      start = end;
    }
  }
  // Top up empty clients so everyone can train.
  for (std::size_t c = 0; c < n_clients; ++c) {
    if (!parts[c].empty()) continue;
    // Steal one example from the largest client.
    std::size_t donor = 0;
    for (std::size_t d = 1; d < n_clients; ++d) {
      if (parts[d].size() > parts[donor].size()) donor = d;
    }
    FHDNN_CHECK(parts[donor].size() > 1, "cannot top up empty client");
    parts[c].push_back(parts[donor].back());
    parts[donor].pop_back();
  }
  return parts;
}

ClientIndices partition_shards(const Dataset& ds, std::size_t n_clients,
                               std::size_t shards_per_client, Rng& rng) {
  check_args(ds, n_clients);
  FHDNN_CHECK(shards_per_client > 0, "shards_per_client must be positive");
  const auto n = static_cast<std::size_t>(ds.size());
  const std::size_t n_shards = n_clients * shards_per_client;
  FHDNN_CHECK(n >= n_shards, "dataset of " << n << " too small for "
                                           << n_shards << " shards");
  // Sort indices by label (stable w.r.t. original order).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ds.labels[a] < ds.labels[b];
                   });
  // Deal shards randomly to clients.
  std::vector<std::size_t> shard_ids(n_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), 0);
  rng.shuffle(shard_ids);
  const std::size_t shard_size = n / n_shards;
  ClientIndices parts(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    for (std::size_t s = 0; s < shards_per_client; ++s) {
      const std::size_t shard = shard_ids[c * shards_per_client + s];
      const std::size_t begin = shard * shard_size;
      const std::size_t end =
          (shard + 1 == n_shards) ? n : begin + shard_size;
      for (std::size_t i = begin; i < end; ++i) parts[c].push_back(order[i]);
    }
  }
  return parts;
}

double label_skew(const Dataset& ds, const ClientIndices& parts) {
  FHDNN_CHECK(!parts.empty(), "label_skew with no clients");
  double total = 0.0;
  std::size_t counted = 0;
  for (const auto& part : parts) {
    if (part.empty()) continue;
    std::vector<std::size_t> hist(static_cast<std::size_t>(ds.num_classes), 0);
    for (const std::size_t i : part) {
      ++hist[static_cast<std::size_t>(ds.labels[i])];
    }
    const std::size_t mx = *std::max_element(hist.begin(), hist.end());
    total += static_cast<double>(mx) / static_cast<double>(part.size());
    ++counted;
  }
  FHDNN_CHECK(counted > 0, "label_skew: all clients empty");
  return total / static_cast<double>(counted);
}

}  // namespace fhdnn::data
