// Federated data partitioners.
//
// Produce per-client index lists over a central dataset. Three schemes:
//   * IID — global shuffle, equal contiguous chunks;
//   * Dirichlet non-IID — per-class proportions drawn from Dir(alpha); small
//     alpha = heavy label skew (alpha -> inf recovers IID);
//   * Shard non-IID — sort by label, split into shards, deal a fixed number
//     of shards per client (the McMahan et al. pathological non-IID split).
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace fhdnn::data {

using ClientIndices = std::vector<std::vector<std::size_t>>;

/// Equal-size IID partition. Leftover examples (n % clients) go to the first
/// clients; every client receives at least one example.
ClientIndices partition_iid(const Dataset& ds, std::size_t n_clients, Rng& rng);

/// Label-skewed partition: for each class, client shares are drawn from
/// Dirichlet(alpha). Clients left empty are topped up with one random
/// example so every client can train.
ClientIndices partition_dirichlet(const Dataset& ds, std::size_t n_clients,
                                  double alpha, Rng& rng);

/// Shard-based pathological non-IID split: each client sees
/// `shards_per_client` label-sorted shards (typically 2 labels per client).
ClientIndices partition_shards(const Dataset& ds, std::size_t n_clients,
                               std::size_t shards_per_client, Rng& rng);

/// Diagnostics: average over clients of the fraction of the client's data in
/// its single most frequent class. 1/num_classes for perfectly uniform data,
/// 1.0 for single-class clients.
double label_skew(const Dataset& ds, const ClientIndices& parts);

}  // namespace fhdnn::data
