// Procedural synthetic datasets standing in for the paper's benchmarks.
//
// The paper evaluates on MNIST, FashionMNIST, CIFAR-10 and (for the partial-
// information demo) ISOLET. Those corpora are not available offline, so we
// synthesize class-structured data with the same tensor shapes and class
// counts (see DESIGN.md §3 for why this preserves the experiments' shape):
//
//   * Images: each class owns a smooth random "template" (a sum of low-
//     frequency 2-d sinusoids); samples are circularly shifted, amplitude-
//     jittered, noisy copies of their class template, clipped to [0, 1].
//     Difficulty is controlled by noise level, shift range and template
//     separation, and the three presets are ordered MNIST < Fashion < CIFAR
//     in difficulty like their real counterparts.
//   * ISOLET-like: 617-dimensional Gaussian clusters, 26 classes, with a
//     shared low-rank within-class covariance.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace fhdnn::data {

/// Knobs for the procedural image generator.
struct ImageSpec {
  std::int64_t channels = 1;
  std::int64_t hw = 28;        ///< square image side
  std::int64_t classes = 10;
  std::int64_t n = 1000;       ///< total examples (balanced across classes)
  std::int64_t waves = 6;      ///< sinusoids per class template
  double max_frequency = 3.0;  ///< cycles across the image
  double shift = 2.0;          ///< max circular shift in pixels (each axis)
  double amp_jitter = 0.2;     ///< multiplicative amplitude jitter (+-)
  double noise = 0.08;         ///< additive Gaussian noise stddev
  std::string name = "synthetic-images";
};

/// Generate a balanced synthetic image dataset. Deterministic in (spec, rng).
Dataset make_synthetic_images(const ImageSpec& spec, Rng& rng);

/// Presets mirroring the paper's datasets (shape, classes, difficulty order).
Dataset synthetic_mnist(std::int64_t n, Rng& rng);
Dataset synthetic_fashion(std::int64_t n, Rng& rng);
Dataset synthetic_cifar(std::int64_t n, Rng& rng);

/// Knobs for the ISOLET-like feature dataset (speech letters: 617 dims, 26
/// classes in the original).
struct IsoletSpec {
  std::int64_t dims = 617;
  std::int64_t classes = 26;
  std::int64_t n = 2600;
  double separation = 1.6;  ///< distance scale between class means
  double noise = 1.0;       ///< isotropic within-class noise stddev
  std::int64_t rank = 16;   ///< rank of the shared structured covariance
};

Dataset make_isolet_like(const IsoletSpec& spec, Rng& rng);

}  // namespace fhdnn::data
