#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/error.hpp"

namespace fhdnn::data {

namespace {

/// One sinusoidal component of a class template.
struct Wave {
  double fx, fy, phase, amp;
};

/// Per-class template: channels x waves.
std::vector<std::vector<Wave>> make_template(const ImageSpec& spec, Rng& rng) {
  std::vector<std::vector<Wave>> chans(static_cast<std::size_t>(spec.channels));
  for (auto& waves : chans) {
    waves.resize(static_cast<std::size_t>(spec.waves));
    for (auto& w : waves) {
      w.fx = rng.uniform(0.5, spec.max_frequency);
      w.fy = rng.uniform(0.5, spec.max_frequency);
      if (rng.bernoulli(0.5)) w.fx = -w.fx;
      if (rng.bernoulli(0.5)) w.fy = -w.fy;
      w.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      w.amp = rng.uniform(0.5, 1.0);
    }
  }
  return chans;
}

/// Evaluate a template at (y, x) with a circular shift.
float eval_template(const std::vector<Wave>& waves, double y, double x,
                    double hw) {
  double v = 0.0;
  for (const auto& w : waves) {
    v += w.amp * std::sin(2.0 * std::numbers::pi *
                              (w.fx * x / hw + w.fy * y / hw) +
                          w.phase);
  }
  return static_cast<float>(v);
}

}  // namespace

Dataset make_synthetic_images(const ImageSpec& spec, Rng& rng) {
  FHDNN_CHECK(spec.channels > 0 && spec.hw > 0 && spec.classes > 1 &&
                  spec.n >= spec.classes,
              "ImageSpec invalid: n=" << spec.n << " classes=" << spec.classes);
  Rng tmpl_rng = rng.fork("templates");
  Rng sample_rng = rng.fork("samples");

  std::vector<std::vector<std::vector<Wave>>> templates;
  templates.reserve(static_cast<std::size_t>(spec.classes));
  for (std::int64_t c = 0; c < spec.classes; ++c) {
    templates.push_back(make_template(spec, tmpl_rng));
  }

  Dataset ds;
  ds.num_classes = spec.classes;
  ds.name = spec.name;
  ds.x = Tensor(Shape{spec.n, spec.channels, spec.hw, spec.hw});
  ds.labels.resize(static_cast<std::size_t>(spec.n));

  const double hw = static_cast<double>(spec.hw);
  for (std::int64_t i = 0; i < spec.n; ++i) {
    const std::int64_t c = i % spec.classes;  // balanced
    ds.labels[static_cast<std::size_t>(i)] = c;
    const double dy = sample_rng.uniform(-spec.shift, spec.shift);
    const double dx = sample_rng.uniform(-spec.shift, spec.shift);
    const double amp =
        1.0 + sample_rng.uniform(-spec.amp_jitter, spec.amp_jitter);
    for (std::int64_t ch = 0; ch < spec.channels; ++ch) {
      const auto& waves = templates[static_cast<std::size_t>(c)]
                                   [static_cast<std::size_t>(ch)];
      for (std::int64_t y = 0; y < spec.hw; ++y) {
        for (std::int64_t x = 0; x < spec.hw; ++x) {
          // Circular shift via phase offsets (periodic sinusoid templates).
          double v = amp * eval_template(waves, static_cast<double>(y) + dy,
                                         static_cast<double>(x) + dx, hw);
          // Map roughly [-waves, waves] into [0, 1] then perturb.
          v = 0.5 + 0.5 * v / static_cast<double>(spec.waves);
          v += sample_rng.normal(0.0, spec.noise);
          ds.x(i, ch, y, x) =
              static_cast<float>(std::clamp(v, 0.0, 1.0));
        }
      }
    }
  }
  ds.check();
  return ds;
}

Dataset synthetic_mnist(std::int64_t n, Rng& rng) {
  ImageSpec spec;
  spec.channels = 1;
  spec.hw = 28;
  spec.classes = 10;
  spec.n = n;
  spec.waves = 5;
  spec.max_frequency = 2.5;
  spec.shift = 1.5;
  spec.noise = 0.06;
  spec.name = "synthetic-mnist";
  return make_synthetic_images(spec, rng);
}

Dataset synthetic_fashion(std::int64_t n, Rng& rng) {
  ImageSpec spec;
  spec.channels = 1;
  spec.hw = 28;
  spec.classes = 10;
  spec.n = n;
  spec.waves = 7;
  spec.max_frequency = 3.5;
  spec.shift = 2.0;
  spec.noise = 0.10;
  spec.name = "synthetic-fashion";
  return make_synthetic_images(spec, rng);
}

Dataset synthetic_cifar(std::int64_t n, Rng& rng) {
  ImageSpec spec;
  spec.channels = 3;
  spec.hw = 32;
  spec.classes = 10;
  spec.n = n;
  spec.waves = 8;
  spec.max_frequency = 4.0;
  spec.shift = 3.0;
  spec.noise = 0.14;
  spec.name = "synthetic-cifar";
  return make_synthetic_images(spec, rng);
}

Dataset make_isolet_like(const IsoletSpec& spec, Rng& rng) {
  FHDNN_CHECK(spec.dims > 0 && spec.classes > 1 && spec.n >= spec.classes &&
                  spec.rank > 0 && spec.rank <= spec.dims,
              "IsoletSpec invalid");
  Rng mean_rng = rng.fork("means");
  Rng cov_rng = rng.fork("cov");
  Rng sample_rng = rng.fork("samples");

  // Class means: random directions scaled by `separation * sqrt(dims)` so
  // pairwise distances stay O(separation) relative to unit noise.
  std::vector<std::vector<float>> means(static_cast<std::size_t>(spec.classes));
  for (auto& mu : means) {
    mu.resize(static_cast<std::size_t>(spec.dims));
    mean_rng.fill_normal(mu, 0.0F, static_cast<float>(spec.separation));
  }

  // Shared low-rank loading matrix (dims x rank), entries N(0, 1/sqrt(rank)).
  std::vector<float> loading(
      static_cast<std::size_t>(spec.dims * spec.rank));
  cov_rng.fill_normal(loading, 0.0F,
                      1.0F / std::sqrt(static_cast<float>(spec.rank)));

  Dataset ds;
  ds.num_classes = spec.classes;
  ds.name = "synthetic-isolet";
  ds.x = Tensor(Shape{spec.n, spec.dims});
  ds.labels.resize(static_cast<std::size_t>(spec.n));

  std::vector<float> u(static_cast<std::size_t>(spec.rank));
  for (std::int64_t i = 0; i < spec.n; ++i) {
    const std::int64_t c = i % spec.classes;
    ds.labels[static_cast<std::size_t>(i)] = c;
    sample_rng.fill_normal(u, 0.0F, 1.0F);
    const auto& mu = means[static_cast<std::size_t>(c)];
    for (std::int64_t d = 0; d < spec.dims; ++d) {
      double v = mu[static_cast<std::size_t>(d)];
      for (std::int64_t r = 0; r < spec.rank; ++r) {
        v += loading[static_cast<std::size_t>(d * spec.rank + r)] *
             u[static_cast<std::size_t>(r)];
      }
      v += sample_rng.normal(0.0, spec.noise);
      ds.x(i, d) = static_cast<float>(v);
    }
  }
  ds.check();
  return ds;
}

}  // namespace fhdnn::data
