#include "data/dataset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fhdnn::data {

void Dataset::check() const {
  FHDNN_CHECK(x.ndim() == 2 || x.ndim() == 4,
              "dataset tensor must be (N,F) or (N,C,H,W), got "
                  << shape_to_string(x.shape()));
  FHDNN_CHECK(x.dim(0) == size(),
              "dataset has " << x.dim(0) << " examples but " << labels.size()
                             << " labels");
  FHDNN_CHECK(num_classes > 0, "dataset num_classes " << num_classes);
  for (const auto y : labels) {
    FHDNN_CHECK(y >= 0 && y < num_classes,
                "label " << y << " out of range " << num_classes);
  }
}

std::int64_t Dataset::example_numel() const {
  FHDNN_CHECK(size() > 0, "empty dataset");
  return x.numel() / size();
}

Dataset::Batch Dataset::gather(const std::vector<std::size_t>& indices) const {
  FHDNN_CHECK(!indices.empty(), "gather with no indices");
  const std::int64_t per = example_numel();
  Shape shape = x.shape();
  shape[0] = static_cast<std::int64_t>(indices.size());
  Batch b{Tensor(shape), {}};
  b.labels.reserve(indices.size());
  const auto src = x.data();
  auto dst = b.x.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    FHDNN_CHECK(idx < labels.size(), "gather index " << idx << " out of range");
    std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(idx * per), per,
                dst.begin() + static_cast<std::ptrdiff_t>(i * per));
    b.labels.push_back(labels[idx]);
  }
  return b;
}

Dataset::Batch Dataset::all() const {
  std::vector<std::size_t> idx(static_cast<std::size_t>(size()));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return gather(idx);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Batch b = gather(indices);
  return Dataset{std::move(b.x), std::move(b.labels), num_classes, name};
}

std::vector<std::int64_t> Dataset::label_histogram() const {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(num_classes), 0);
  for (const auto y : labels) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

TrainTestSplit train_test_split(const Dataset& ds, double test_fraction,
                                Rng& rng) {
  FHDNN_CHECK(test_fraction > 0.0 && test_fraction < 1.0,
              "test_fraction " << test_fraction);
  const auto n = static_cast<std::size_t>(ds.size());
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  const auto n_test = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) * test_fraction));
  FHDNN_CHECK(n_test < n, "test split consumes the whole dataset");
  std::vector<std::size_t> test_idx(order.begin(),
                                    order.begin() + static_cast<std::ptrdiff_t>(n_test));
  std::vector<std::size_t> train_idx(order.begin() + static_cast<std::ptrdiff_t>(n_test),
                                     order.end());
  return TrainTestSplit{ds.subset(train_idx), ds.subset(test_idx)};
}

BatchIterator::BatchIterator(std::size_t n, std::size_t batch_size, Rng& rng)
    : batch_size_(batch_size), order_(n) {
  FHDNN_CHECK(batch_size > 0, "batch size must be positive");
  for (std::size_t i = 0; i < n; ++i) order_[i] = i;
  rng.shuffle(order_);
}

std::vector<std::size_t> BatchIterator::next() {
  if (done()) return {};
  const std::size_t end = std::min(cursor_ + batch_size_, order_.size());
  std::vector<std::size_t> batch(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                 order_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  return batch;
}

void BatchIterator::reset(Rng& rng) {
  rng.shuffle(order_);
  cursor_ = 0;
}

}  // namespace fhdnn::data
