#include "channel/channel.hpp"

#include <algorithm>
#include <cmath>

#include "channel/bits.hpp"
#include "util/error.hpp"

namespace fhdnn::channel {

TransportStats PerfectChannel::apply(std::vector<float>& payload,
                                     Rng& /*rng*/) const {
  TransportStats stats;
  stats.payload_scalars = payload.size();
  stats.bits_on_air = payload.size() * 32;
  return stats;
}

AwgnChannel::AwgnChannel(double snr_db)
    : snr_db_(snr_db), snr_linear_(std::pow(10.0, snr_db / 10.0)) {
  FHDNN_CHECK(std::isfinite(snr_db), "AWGN snr_db " << snr_db);
}

TransportStats AwgnChannel::apply_scaled(std::vector<float>& payload, Rng& rng,
                                         double error_scale) const {
  FHDNN_CHECK(error_scale > 0.0, "AWGN error_scale " << error_scale);
  TransportStats stats;
  stats.payload_scalars = payload.size();
  // Uncoded analog transmission: one channel use per scalar; report the
  // equivalent digital size for accounting.
  stats.bits_on_air = payload.size() * 32;
  if (payload.empty()) return stats;
  double power = 0.0;
  for (const float v : payload) power += static_cast<double>(v) * v;
  power /= static_cast<double>(payload.size());
  if (power <= 0.0) return stats;  // silent payload: SNR undefined, no noise
  // A fault multiplier of m scales the noise power by m (SNR drops by m).
  const double sigma = std::sqrt(power * error_scale / snr_linear_);
  double noise_power = 0.0;
  for (auto& v : payload) {
    const double n = rng.normal(0.0, sigma);
    v += static_cast<float>(n);
    noise_power += n * n;
  }
  stats.noise_power = noise_power / static_cast<double>(payload.size());
  return stats;
}

TransportStats AwgnChannel::apply(std::vector<float>& payload, Rng& rng) const {
  return apply_scaled(payload, rng, 1.0);
}

std::string AwgnChannel::name() const {
  return "awgn(" + std::to_string(snr_db_) + "dB)";
}

BitErrorChannel::BitErrorChannel(double bit_error_rate) : ber_(bit_error_rate) {
  FHDNN_CHECK(ber_ >= 0.0 && ber_ <= 1.0, "BER " << ber_);
}

TransportStats BitErrorChannel::apply_scaled(std::vector<float>& payload,
                                             Rng& rng,
                                             double error_scale) const {
  FHDNN_CHECK(error_scale >= 0.0, "BSC error_scale " << error_scale);
  TransportStats stats;
  stats.payload_scalars = payload.size();
  stats.bits_on_air = payload.size() * 32;
  stats.bit_flips = flip_float_bits(payload, std::min(1.0, ber_ * error_scale),
                                    rng);
  return stats;
}

TransportStats BitErrorChannel::apply(std::vector<float>& payload,
                                      Rng& rng) const {
  return apply_scaled(payload, rng, 1.0);
}

std::string BitErrorChannel::name() const {
  return "bsc(pe=" + std::to_string(ber_) + ")";
}

PacketLossChannel::PacketLossChannel(double loss_rate, std::size_t packet_bits)
    : loss_rate_(loss_rate), packet_bits_(packet_bits) {
  FHDNN_CHECK(loss_rate_ >= 0.0 && loss_rate_ <= 1.0, "loss rate " << loss_rate_);
  FHDNN_CHECK(packet_bits_ >= 32, "packet size " << packet_bits_ << " bits");
}

TransportStats PacketLossChannel::apply_scaled(std::vector<float>& payload,
                                               Rng& rng,
                                               double error_scale) const {
  FHDNN_CHECK(error_scale >= 0.0, "packet-loss error_scale " << error_scale);
  const double loss = std::min(1.0, loss_rate_ * error_scale);
  TransportStats stats;
  stats.payload_scalars = payload.size();
  stats.bits_on_air = payload.size() * 32;
  if (payload.empty()) return stats;
  const std::size_t floats_per_packet = packet_bits_ / 32;
  const std::size_t n_packets =
      (payload.size() + floats_per_packet - 1) / floats_per_packet;
  stats.packets_total = n_packets;
  for (std::size_t p = 0; p < n_packets; ++p) {
    if (!rng.bernoulli(loss)) continue;
    ++stats.packets_lost;
    const std::size_t begin = p * floats_per_packet;
    const std::size_t end = std::min(payload.size(), begin + floats_per_packet);
    for (std::size_t i = begin; i < end; ++i) payload[i] = 0.0F;
  }
  return stats;
}

TransportStats PacketLossChannel::apply(std::vector<float>& payload,
                                        Rng& rng) const {
  return apply_scaled(payload, rng, 1.0);
}

std::string PacketLossChannel::name() const {
  return "packet-loss(p=" + std::to_string(loss_rate_) + ")";
}

double packet_error_rate(double bit_error_rate, std::size_t packet_bits) {
  FHDNN_CHECK(bit_error_rate >= 0.0 && bit_error_rate <= 1.0,
              "BER " << bit_error_rate);
  return 1.0 - std::pow(1.0 - bit_error_rate,
                        static_cast<double>(packet_bits));
}

std::unique_ptr<Channel> make_perfect() {
  return std::make_unique<PerfectChannel>();
}
std::unique_ptr<Channel> make_awgn(double snr_db) {
  return std::make_unique<AwgnChannel>(snr_db);
}
std::unique_ptr<Channel> make_bit_error(double ber) {
  return std::make_unique<BitErrorChannel>(ber);
}
std::unique_ptr<Channel> make_packet_loss(double loss_rate,
                                          std::size_t packet_bits) {
  return std::make_unique<PacketLossChannel>(loss_rate, packet_bits);
}

}  // namespace fhdnn::channel
