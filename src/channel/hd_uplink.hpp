// The HD model's uplink transmission pipeline (paper §3.5.2).
//
// CNN updates go through a Channel as raw float32. HD prototype matrices
// instead take the AGC path for digital channels: each class hypervector is
// quantized to B-bit integers with its own gain (hdc::Quantizer), bit errors
// hit the integer representation, and the receiver scales back down. For
// analog (AWGN) and erasure (packet-loss) channels the corruption applies to
// the real-valued representation as in the paper.
#pragma once

#include <cstdint>
#include <string>

#include "channel/channel.hpp"
#include "tensor/tensor.hpp"

namespace fhdnn::channel {

/// How an HD prototype matrix is corrupted on the uplink.
enum class HdUplinkMode {
  Perfect,     ///< error-free
  Awgn,        ///< analog uncoded, Gaussian noise at `snr_db`
  BitErrors,   ///< BSC at `ber` over B-bit AGC-quantized integers
  PacketLoss,  ///< packet erasures at `loss_rate`, zero-filled
  BurstLoss,   ///< Gilbert-Elliott bursty packet erasures (channel/fading.hpp)
  Rayleigh,    ///< block-Rayleigh fading at average `snr_db`
};

struct HdUplinkConfig {
  HdUplinkMode mode = HdUplinkMode::Perfect;
  double snr_db = 25.0;
  double ber = 0.0;
  double loss_rate = 0.0;
  int quantizer_bits = 16;       ///< B for the AGC path
  bool use_quantizer = true;     ///< ablation switch: false = raw float bits
  /// Ship only the sign pattern of the prototypes (1 bit/dimension — 32x
  /// smaller than float32). Applies to the digital modes (Perfect,
  /// BitErrors); takes precedence over the AGC quantizer. The receiver sees
  /// a bipolar model. See hdc/binary_model.hpp.
  bool binary_transport = false;
  std::size_t packet_bits = 8192;
  /// BurstLoss parameters; `loss_bad`/transition rates tune burstiness.
  double burst_p_good_to_bad = 0.05;
  double burst_p_bad_to_good = 0.2;
  double burst_loss_bad = 0.7;
  /// Rayleigh coherence-block length in scalars.
  std::size_t fading_block_len = 256;
};

/// Corrupt `prototypes` (K x d) in place according to `config`.
/// Returns transmission statistics in the uniform channel::TransportStats
/// (bits_on_air reflects the B-bit integer encoding for digital modes with
/// quantization, 32-bit floats otherwise). `error_scale` is the fault
/// model's per-client link-quality multiplier: BER/loss rates scale up by
/// it, analog SNR scales down (1.0 = the configured link, bit-identical to
/// the unscaled call).
TransportStats transmit_hd_model(Tensor& prototypes,
                                 const HdUplinkConfig& config, Rng& rng,
                                 double error_scale = 1.0);

/// Bits one model scalar costs on the uplink under `config` — the single
/// accounting rule shared by transmit_hd_model's statistics and closed-form
/// update-size reporting: 1 for binary-sign transport, B for the AGC
/// quantizer (digital modes), 32 for raw-float and analog paths.
std::uint64_t hd_bits_per_scalar(const HdUplinkConfig& config);

/// Closed-form uplink payload of one delivered model of `scalars` scalars,
/// in bytes: ceil(scalars * hd_bits_per_scalar / 8).
std::uint64_t hd_update_bytes(const HdUplinkConfig& config,
                              std::uint64_t scalars);

/// Human-readable description, for experiment logs.
std::string describe(const HdUplinkConfig& config);

}  // namespace fhdnn::channel
