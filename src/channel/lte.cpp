#include "channel/lte.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fhdnn::channel {

double LteLinkModel::upload_seconds(std::uint64_t update_bits,
                                    bool admit_errors) const {
  const double rate = admit_errors ? uncoded_rate_bps : coded_rate_bps;
  FHDNN_CHECK(rate > 0.0, "link rate must be positive");
  FHDNN_CHECK(shared_clients >= 1, "shared_clients must be >= 1");
  return static_cast<double>(update_bits) * static_cast<double>(shared_clients) /
         rate;
}

double LteLinkModel::training_seconds(std::uint64_t update_bits,
                                      std::uint64_t rounds,
                                      bool admit_errors) const {
  return static_cast<double>(rounds) * upload_seconds(update_bits, admit_errors);
}

double LteLinkModel::shannon_capacity_bps() const {
  const double snr_linear = std::pow(10.0, snr_db / 10.0);
  return bandwidth_hz * std::log2(1.0 + snr_linear);
}

void LteLinkModel::validate() const {
  FHDNN_CHECK(coded_rate_bps > 0.0 && uncoded_rate_bps > 0.0,
              "link rates must be positive");
  FHDNN_CHECK(shared_clients >= 1, "shared_clients must be >= 1");
  const double capacity = shannon_capacity_bps();
  FHDNN_CHECK(coded_rate_bps <= capacity,
              "coded rate " << coded_rate_bps << " bps exceeds Shannon capacity "
                            << capacity << " bps at " << snr_db << " dB");
  FHDNN_CHECK(uncoded_rate_bps <= capacity,
              "uncoded rate " << uncoded_rate_bps
                              << " bps exceeds Shannon capacity " << capacity
                              << " bps at " << snr_db << " dB");
}

std::uint64_t total_upload_bytes(std::uint64_t update_bytes,
                                 std::uint64_t rounds) {
  return update_bytes * rounds;
}

}  // namespace fhdnn::channel
