#include "channel/fading.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::channel {

GilbertElliottChannel::GilbertElliottChannel(Params params)
    : params_(params) {
  FHDNN_CHECK(params_.p_good_to_bad > 0.0 && params_.p_good_to_bad <= 1.0 &&
                  params_.p_bad_to_good > 0.0 && params_.p_bad_to_good <= 1.0,
              "GE transition probabilities");
  FHDNN_CHECK(params_.loss_good >= 0.0 && params_.loss_good <= 1.0 &&
                  params_.loss_bad >= 0.0 && params_.loss_bad <= 1.0,
              "GE loss probabilities");
  FHDNN_CHECK(params_.packet_bits >= 32, "GE packet size");
}

double GilbertElliottChannel::average_loss_rate() const {
  // Stationary distribution: pi_bad = p_gb / (p_gb + p_bg).
  const double pi_bad = params_.p_good_to_bad /
                        (params_.p_good_to_bad + params_.p_bad_to_good);
  return (1.0 - pi_bad) * params_.loss_good + pi_bad * params_.loss_bad;
}

TransportStats GilbertElliottChannel::apply_scaled(std::vector<float>& payload,
                                                   Rng& rng,
                                                   double error_scale) const {
  FHDNN_CHECK(error_scale >= 0.0, "GE error_scale " << error_scale);
  TransportStats stats;
  stats.payload_scalars = payload.size();
  stats.bits_on_air = payload.size() * 32;
  if (payload.empty()) return stats;
  const std::size_t floats_per_packet = params_.packet_bits / 32;
  const std::size_t n_packets =
      (payload.size() + floats_per_packet - 1) / floats_per_packet;
  stats.packets_total = n_packets;
  // Start in the stationary state.
  const double pi_bad = params_.p_good_to_bad /
                        (params_.p_good_to_bad + params_.p_bad_to_good);
  bool bad = rng.bernoulli(pi_bad);
  for (std::size_t p = 0; p < n_packets; ++p) {
    const double loss = std::min(
        1.0, (bad ? params_.loss_bad : params_.loss_good) * error_scale);
    if (rng.bernoulli(loss)) {
      ++stats.packets_lost;
      const std::size_t begin = p * floats_per_packet;
      const std::size_t end =
          std::min(payload.size(), begin + floats_per_packet);
      for (std::size_t i = begin; i < end; ++i) payload[i] = 0.0F;
    }
    bad = bad ? !rng.bernoulli(params_.p_bad_to_good)
              : rng.bernoulli(params_.p_good_to_bad);
  }
  return stats;
}

TransportStats GilbertElliottChannel::apply(std::vector<float>& payload,
                                            Rng& rng) const {
  return apply_scaled(payload, rng, 1.0);
}

std::string GilbertElliottChannel::name() const {
  return "gilbert-elliott(avg=" + std::to_string(average_loss_rate()) + ")";
}

RayleighFadingChannel::RayleighFadingChannel(double avg_snr_db,
                                             std::size_t block_len)
    : avg_snr_db_(avg_snr_db),
      snr_linear_(std::pow(10.0, avg_snr_db / 10.0)),
      block_len_(block_len) {
  FHDNN_CHECK(std::isfinite(avg_snr_db), "Rayleigh snr_db");
  FHDNN_CHECK(block_len_ >= 1, "Rayleigh block length");
}

TransportStats RayleighFadingChannel::apply_scaled(std::vector<float>& payload,
                                                   Rng& rng,
                                                   double error_scale) const {
  FHDNN_CHECK(error_scale > 0.0, "Rayleigh error_scale " << error_scale);
  TransportStats stats;
  stats.payload_scalars = payload.size();
  stats.bits_on_air = payload.size() * 32;
  if (payload.empty()) return stats;
  double power = 0.0;
  for (const float v : payload) power += static_cast<double>(v) * v;
  power /= static_cast<double>(payload.size());
  if (power <= 0.0) return stats;
  const double sigma = std::sqrt(power * error_scale / snr_linear_);
  double noise_power = 0.0;
  for (std::size_t begin = 0; begin < payload.size(); begin += block_len_) {
    // |h|^2 ~ Exp(1): -log(U). Clamp away from zero to model the receiver
    // discarding unusably deep fades rather than dividing by ~0.
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    const double gain_sq = std::max(1e-3, -std::log(u));
    const double eff_sigma = sigma / std::sqrt(gain_sq);
    const std::size_t end = std::min(payload.size(), begin + block_len_);
    for (std::size_t i = begin; i < end; ++i) {
      const double n = rng.normal(0.0, eff_sigma);
      payload[i] += static_cast<float>(n);
      noise_power += n * n;
    }
  }
  stats.noise_power = noise_power / static_cast<double>(payload.size());
  return stats;
}

TransportStats RayleighFadingChannel::apply(std::vector<float>& payload,
                                            Rng& rng) const {
  return apply_scaled(payload, rng, 1.0);
}

std::string RayleighFadingChannel::name() const {
  return "rayleigh(" + std::to_string(avg_snr_db_) + "dB)";
}

}  // namespace fhdnn::channel
