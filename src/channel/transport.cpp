#include "channel/transport.hpp"

#include <sstream>

#include "util/error.hpp"

namespace fhdnn::channel {

namespace {

/// Per-client link multiplier lookup: missing table or missing entry = 1.0.
double scale_for(const std::vector<double>* scales, std::size_t client) {
  if (scales == nullptr || client >= scales->size()) return 1.0;
  return (*scales)[client];
}

}  // namespace

FloatStateTransport::FloatStateTransport(double update_fraction,
                                         const Channel* uplink)
    : update_fraction_(update_fraction), uplink_(uplink) {
  FHDNN_CHECK(update_fraction_ > 0.0 && update_fraction_ <= 1.0,
              "update_fraction " << update_fraction_);
}

TransportStats FloatStateTransport::transmit(std::vector<float>& update,
                                             std::size_t client,
                                             Rng& client_rng,
                                             const Rng& round_rng) const {
  (void)round_rng;
  // Update-subsampling compression: untransmitted scalars fall back to the
  // broadcast global value at the server. Accounting counts the scalars the
  // Bernoulli mask actually transmitted, not the expected fraction.
  std::uint64_t sent = update.size();
  if (update_fraction_ < 1.0) {
    FHDNN_CHECK(broadcast_ != nullptr,
                "FloatStateTransport: update_fraction "
                    << update_fraction_
                    << " < 1 requires the round's broadcast snapshot — call "
                       "set_broadcast() before transmitting");
    FHDNN_CHECK(broadcast_->size() == update.size(),
                "FloatStateTransport: broadcast snapshot has "
                    << broadcast_->size() << " scalars, update has "
                    << update.size());
    Rng mask_rng = client_rng.fork("mask");
    sent = 0;
    for (std::size_t i = 0; i < update.size(); ++i) {
      if (mask_rng.bernoulli(update_fraction_)) {
        ++sent;
      } else {
        update[i] = (*broadcast_)[i];
      }
    }
  }
  TransportStats stats;
  if (uplink_ != nullptr) {
    Rng chan_rng = client_rng.fork("channel");
    stats = uplink_->apply_scaled(update, chan_rng,
                                  scale_for(error_scales_, client));
  } else {
    stats.bits_on_air = sent * 32;
  }
  stats.payload_scalars = sent;
  stats.payload_bytes = sent * sizeof(float);
  return stats;
}

std::string FloatStateTransport::name() const {
  std::ostringstream os;
  os << "float32";
  if (update_fraction_ < 1.0) os << " subsample=" << update_fraction_;
  os << " via " << (uplink_ != nullptr ? uplink_->name() : "perfect");
  return os.str();
}

TransportStats HdModelTransport::transmit(Tensor& update, std::size_t client,
                                          Rng& client_rng,
                                          const Rng& round_rng) const {
  (void)client_rng;
  Rng chan_rng = round_rng.fork("channel-" + std::to_string(client));
  const std::uint64_t scalars = static_cast<std::uint64_t>(update.numel());
  TransportStats stats = transmit_hd_model(update, config_, chan_rng,
                                           scale_for(error_scales_, client));
  stats.payload_scalars = scalars;
  stats.payload_bytes = hd_update_bytes(config_, scalars);
  return stats;
}

}  // namespace fhdnn::channel
