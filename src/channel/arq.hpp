// Reliable-delivery layer: CRC-32 framing + ARQ retransmission (the coded,
// ACK/retransmit link the paper's CNN baseline *requires*, §3.5/§4.4).
//
// FHDnn transmits uncoded and absorbs corruption holographically; a CNN
// cannot — one flipped exponent bit destroys the model — so its uplink
// needs error detection and retransmission. This file makes that cost
// measurable instead of asserted: ReliableChannel wraps any Channel, splits
// the payload into frames, appends a CRC-32 per frame, retransmits frames
// whose received CRC mismatches (up to max_retries, with capped exponential
// backoff in *simulated* seconds), and delivers the last corrupted copy
// when retries are exhausted (residual-error delivery). Every
// retransmission is charged into TransportStats (retransmissions,
// backoff_seconds, residual_errors, bits_on_air), so benches can measure
// bytes-on-air and seconds-to-accuracy for CNN+ARQ vs FHDnn-uncoded
// (bench/fig8_arq_cost.cpp) rather than relying on the fixed
// coded_rate_bps constant of channel/lte.hpp.
//
// Determinism: attempt a of frame p draws from rng.fork("arq-p<p>-t<a>"),
// so outcomes depend only on the caller's stream, never on iteration
// interleaving. Error detection uses the real CRC-32 comparison (an
// undetected corruption needs a 2^-32 CRC collision) — not an oracle
// compare against the sent data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/channel.hpp"

namespace fhdnn::channel {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over raw bytes.
/// crc32("123456789") == 0xCBF43926 (the standard check value).
std::uint32_t crc32(const void* data, std::size_t len);

/// CRC-32 over the IEEE-754 byte representation of a float span.
std::uint32_t crc32(const float* data, std::size_t count);

/// How the sender schedules retransmissions.
enum class ArqMode {
  StopAndWait,      ///< one frame in flight; every frame waits for its ACK
  SelectiveRepeat,  ///< pipelined; only NAK'd frames pay a turnaround
};

struct ArqConfig {
  ArqMode mode = ArqMode::SelectiveRepeat;
  std::size_t packet_bits = 8192;  ///< frame payload bits (excl. 32-bit CRC)
  int max_retries = 8;             ///< retransmissions per frame before giving up
  /// Simulated ACK/NAK turnaround charged per frame attempt (StopAndWait)
  /// or per retransmission (SelectiveRepeat).
  double ack_rtt_seconds = 0.02;
  /// Capped exponential backoff before retransmission k (1-based):
  /// min(initial * factor^(k-1), max).
  double initial_backoff_seconds = 0.05;
  double backoff_factor = 2.0;
  double max_backoff_seconds = 2.0;
};

/// Backoff charged before the k-th retransmission of a frame (k >= 1).
double arq_backoff_seconds(const ArqConfig& config, int retry);

/// ARQ decorator over any Channel. Not a Channel subclass' "perfect" link:
/// the inner channel still corrupts every attempt; reliability comes from
/// detection + retransmission, and fails over to residual-error delivery.
class ReliableChannel final : public Channel {
 public:
  /// `inner` may be null (an error-free link: framing overhead only, no
  /// retransmissions) and must outlive the decorator.
  explicit ReliableChannel(const Channel* inner, ArqConfig config = {});

  TransportStats apply(std::vector<float>& payload, Rng& rng) const override;
  TransportStats apply_scaled(std::vector<float>& payload, Rng& rng,
                              double error_scale) const override;
  std::string name() const override;

  const ArqConfig& config() const { return config_; }
  const Channel* inner() const { return inner_; }

 private:
  const Channel* inner_;
  ArqConfig config_;
};

std::unique_ptr<Channel> make_reliable(const Channel* inner,
                                       ArqConfig config = {});

}  // namespace fhdnn::channel
