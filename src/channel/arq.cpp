#include "channel/arq.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/error.hpp"
#include "util/snapshot.hpp"

namespace fhdnn::channel {

std::uint32_t crc32(const void* data, std::size_t len) {
  // One CRC-32 in the codebase: the snapshot subsystem owns the table
  // (util/snapshot.cpp); ARQ frames and snapshot chunks share it.
  return util::crc32(data, len);
}

std::uint32_t crc32(const float* data, std::size_t count) {
  return crc32(static_cast<const void*>(data), count * sizeof(float));
}

double arq_backoff_seconds(const ArqConfig& config, int retry) {
  FHDNN_CHECK(retry >= 1, "ARQ backoff retry " << retry);
  double backoff = config.initial_backoff_seconds;
  for (int k = 1; k < retry; ++k) {
    backoff *= config.backoff_factor;
    if (backoff >= config.max_backoff_seconds) break;
  }
  return std::min(backoff, config.max_backoff_seconds);
}

ReliableChannel::ReliableChannel(const Channel* inner, ArqConfig config)
    : inner_(inner), config_(config) {
  FHDNN_CHECK(config_.packet_bits >= 32,
              "ARQ frame payload " << config_.packet_bits << " bits");
  FHDNN_CHECK(config_.max_retries >= 0,
              "ARQ max_retries " << config_.max_retries);
  FHDNN_CHECK(config_.initial_backoff_seconds >= 0.0 &&
                  config_.backoff_factor >= 1.0 &&
                  config_.max_backoff_seconds >= 0.0 &&
                  config_.ack_rtt_seconds >= 0.0,
              "ARQ backoff configuration");
}

TransportStats ReliableChannel::apply_scaled(std::vector<float>& payload,
                                             Rng& rng,
                                             double error_scale) const {
  TransportStats stats;
  stats.payload_scalars = payload.size();
  if (payload.empty()) return stats;
  const std::size_t floats_per_frame = config_.packet_bits / 32;
  const std::size_t n_frames =
      (payload.size() + floats_per_frame - 1) / floats_per_frame;
  stats.packets_total = n_frames;

  std::vector<float> frame;
  for (std::size_t p = 0; p < n_frames; ++p) {
    const std::size_t begin = p * floats_per_frame;
    const std::size_t end =
        std::min(payload.size(), begin + floats_per_frame);
    const std::size_t len = end - begin;
    const std::uint32_t sent_crc = crc32(payload.data() + begin, len);
    const std::uint64_t frame_bits = len * 32 + 32;  // payload + CRC field

    for (int attempt = 0;; ++attempt) {
      frame.assign(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                   payload.begin() + static_cast<std::ptrdiff_t>(end));
      stats.bits_on_air += frame_bits;
      if (config_.mode == ArqMode::StopAndWait) {
        // One frame in flight: every attempt waits out the ACK round trip.
        stats.backoff_seconds += config_.ack_rtt_seconds;
      }
      if (inner_ != nullptr) {
        Rng try_rng = rng.fork("arq-p" + std::to_string(p) + "-t" +
                               std::to_string(attempt));
        const TransportStats s = inner_->apply_scaled(frame, try_rng,
                                                      error_scale);
        stats.bit_flips += s.bit_flips;
        stats.packets_lost += s.packets_lost;
        stats.noise_power += s.noise_power;
      }
      // The receiver only has the CRC: a corrupted frame whose CRC happens
      // to collide is accepted corrupted (probability ~2^-32 per frame).
      const bool accepted = crc32(frame.data(), len) == sent_crc;
      const bool out_of_retries = attempt >= config_.max_retries;
      if (accepted || out_of_retries) {
        if (!accepted) ++stats.residual_errors;  // delivered corrupted
        std::copy(frame.begin(), frame.end(),
                  payload.begin() + static_cast<std::ptrdiff_t>(begin));
        break;
      }
      ++stats.retransmissions;
      if (config_.mode == ArqMode::SelectiveRepeat) {
        // Pipelined ACKs: only a NAK'd frame pays the turnaround.
        stats.backoff_seconds += config_.ack_rtt_seconds;
      }
      stats.backoff_seconds += arq_backoff_seconds(config_, attempt + 1);
    }
  }
  return stats;
}

TransportStats ReliableChannel::apply(std::vector<float>& payload,
                                      Rng& rng) const {
  return apply_scaled(payload, rng, 1.0);
}

std::string ReliableChannel::name() const {
  std::ostringstream os;
  os << "arq("
     << (config_.mode == ArqMode::StopAndWait ? "stop-and-wait"
                                              : "selective-repeat")
     << " retries=" << config_.max_retries << ") over "
     << (inner_ != nullptr ? inner_->name() : "perfect");
  return os.str();
}

std::unique_ptr<Channel> make_reliable(const Channel* inner, ArqConfig config) {
  return std::make_unique<ReliableChannel>(inner, config);
}

}  // namespace fhdnn::channel
