#include "channel/hd_uplink.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "channel/bits.hpp"
#include "channel/fading.hpp"
#include "hdc/binary_model.hpp"
#include "hdc/quantizer.hpp"
#include "util/error.hpp"

namespace fhdnn::channel {

namespace {

/// Route the float-valued matrix through a float channel.
TransportStats apply_float_channel(Tensor& prototypes, const Channel& ch,
                                   Rng& rng, double error_scale) {
  std::vector<float> payload(prototypes.data().begin(),
                             prototypes.data().end());
  const TransportStats s = ch.apply_scaled(payload, rng, error_scale);
  auto dst = prototypes.data();
  for (std::size_t i = 0; i < payload.size(); ++i) dst[i] = payload[i];
  TransportStats out;
  out.bits_on_air = s.bits_on_air;
  out.bit_flips = s.bit_flips;
  out.packets_lost = s.packets_lost;
  out.packets_total = s.packets_total;
  return out;
}

}  // namespace

TransportStats transmit_hd_model(Tensor& prototypes,
                                 const HdUplinkConfig& config, Rng& rng,
                                 double error_scale) {
  FHDNN_CHECK(prototypes.ndim() == 2,
              "transmit_hd_model expects (K, d), got "
                  << shape_to_string(prototypes.shape()));
  FHDNN_CHECK(error_scale > 0.0, "hd uplink error_scale " << error_scale);
  switch (config.mode) {
    case HdUplinkMode::Perfect: {
      TransportStats s;
      if (config.binary_transport) {
        prototypes = hdc::expand(hdc::binarize(prototypes));
      }
      s.bits_on_air = static_cast<std::size_t>(prototypes.numel()) *
                      static_cast<std::size_t>(hd_bits_per_scalar(config));
      return s;
    }
    case HdUplinkMode::Awgn: {
      const AwgnChannel ch(config.snr_db);
      return apply_float_channel(prototypes, ch, rng, error_scale);
    }
    case HdUplinkMode::PacketLoss: {
      const PacketLossChannel ch(config.loss_rate, config.packet_bits);
      return apply_float_channel(prototypes, ch, rng, error_scale);
    }
    case HdUplinkMode::BurstLoss: {
      GilbertElliottChannel::Params p;
      p.p_good_to_bad = config.burst_p_good_to_bad;
      p.p_bad_to_good = config.burst_p_bad_to_good;
      p.loss_bad = config.burst_loss_bad;
      p.packet_bits = config.packet_bits;
      const GilbertElliottChannel ch(p);
      return apply_float_channel(prototypes, ch, rng, error_scale);
    }
    case HdUplinkMode::Rayleigh: {
      const RayleighFadingChannel ch(config.snr_db, config.fading_block_len);
      return apply_float_channel(prototypes, ch, rng, error_scale);
    }
    case HdUplinkMode::BitErrors: {
      const double ber = std::min(1.0, config.ber * error_scale);
      if (config.binary_transport) {
        // Binary sign transport rides the packed backend: binarize/expand
        // dispatch to the SIMD pack/unpack kernels, while the bit flips
        // walk the same contiguous payload with the same rng draw sequence
        // as always — transmit results stay bit-identical across tiers.
        auto binary = hdc::binarize(prototypes);
        TransportStats s;
        s.bits_on_air = binary.payload_bits();
        s.bit_flips = hdc::flip_binary_model_bits(binary, ber, rng);
        prototypes = hdc::expand(binary);
        return s;
      }
      if (!config.use_quantizer) {
        // Ablation: raw IEEE-754 transmission, same as the CNN path.
        const BitErrorChannel ch(config.ber);
        return apply_float_channel(prototypes, ch, rng, error_scale);
      }
      const hdc::Quantizer quant(config.quantizer_bits);
      auto rows = quant.quantize_rows(prototypes);
      TransportStats s;
      for (auto& row : rows) {
        s.bits_on_air += row.values.size() *
                         static_cast<std::size_t>(config.quantizer_bits);
        s.bit_flips += flip_quantized_bits(row, ber, rng);
      }
      prototypes = quant.dequantize_rows(rows, prototypes.dim(1));
      return s;
    }
  }
  throw Error("unreachable HdUplinkMode");
}

std::uint64_t hd_bits_per_scalar(const HdUplinkConfig& config) {
  const bool digital = config.mode == HdUplinkMode::BitErrors ||
                       config.mode == HdUplinkMode::Perfect;
  if (digital && config.binary_transport) return 1;
  if (digital && config.use_quantizer) {
    return static_cast<std::uint64_t>(config.quantizer_bits);
  }
  return 32;
}

std::uint64_t hd_update_bytes(const HdUplinkConfig& config,
                              std::uint64_t scalars) {
  return (scalars * hd_bits_per_scalar(config) + 7) / 8;
}

std::string describe(const HdUplinkConfig& config) {
  std::ostringstream os;
  switch (config.mode) {
    case HdUplinkMode::Perfect:
      os << "perfect";
      break;
    case HdUplinkMode::Awgn:
      os << "awgn snr=" << config.snr_db << "dB";
      break;
    case HdUplinkMode::BitErrors:
      os << "bit-errors pe=" << config.ber;
      if (config.binary_transport) {
        os << " (binary sign)";
      } else {
        os << " B=" << config.quantizer_bits
           << (config.use_quantizer ? " (AGC)" : " (raw float)");
      }
      break;
    case HdUplinkMode::PacketLoss:
      os << "packet-loss p=" << config.loss_rate << " Np=" << config.packet_bits;
      break;
    case HdUplinkMode::BurstLoss:
      os << "burst-loss bad=" << config.burst_loss_bad << " gb="
         << config.burst_p_good_to_bad << " bg=" << config.burst_p_bad_to_good;
      break;
    case HdUplinkMode::Rayleigh:
      os << "rayleigh avg-snr=" << config.snr_db << "dB block="
         << config.fading_block_len;
      break;
  }
  return os.str();
}

}  // namespace fhdnn::channel
