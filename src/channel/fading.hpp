// Extended channel models beyond the paper's three basic ones.
//
//   * GilbertElliottChannel — bursty packet loss. LPWAN packet drops are
//     correlated (interference, duty-cycle collisions; the paper's refs
//     [19][20]); a two-state Markov chain (Good/Bad) with per-state loss
//     probabilities is the standard model. With the same *average* loss
//     rate as an i.i.d. channel, bursts wipe out contiguous stretches of a
//     model update — a strictly harsher test of HD's holographic claim.
//   * RayleighFadingChannel — block-fading analog channel. The AWGN model
//     of §3.5.1 assumes a static link; in mobile IoT the gain fades. Each
//     coherence block of `block_len` scalars gets an independent Rayleigh
//     amplitude; the receiver equalizes perfectly, so deep fades amplify
//     the effective noise of whole blocks.
#pragma once

#include <cstddef>

#include "channel/channel.hpp"

namespace fhdnn::channel {

/// Two-state Markov (Gilbert-Elliott) packet-loss channel.
class GilbertElliottChannel final : public Channel {
 public:
  struct Params {
    double p_good_to_bad = 0.05;  ///< per-packet transition G->B
    double p_bad_to_good = 0.2;   ///< per-packet transition B->G
    double loss_good = 0.001;     ///< loss probability in Good
    double loss_bad = 0.7;        ///< loss probability in Bad
    std::size_t packet_bits = 8192;
  };

  explicit GilbertElliottChannel(Params params);

  TransportStats apply(std::vector<float>& payload, Rng& rng) const override;
  TransportStats apply_scaled(std::vector<float>& payload, Rng& rng,
                              double error_scale) const override;
  std::string name() const override;

  /// Long-run average loss rate implied by the chain (stationary mix of the
  /// two per-state loss rates).
  double average_loss_rate() const;
  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// Block-Rayleigh fading with perfect channel-state equalization.
/// Average SNR is `avg_snr_db`; within each block the effective per-element
/// noise variance is sigma^2 / |h|^2 with |h|^2 ~ Exp(1).
class RayleighFadingChannel final : public Channel {
 public:
  RayleighFadingChannel(double avg_snr_db, std::size_t block_len = 256);

  TransportStats apply(std::vector<float>& payload, Rng& rng) const override;
  TransportStats apply_scaled(std::vector<float>& payload, Rng& rng,
                              double error_scale) const override;
  std::string name() const override;
  double avg_snr_db() const { return avg_snr_db_; }

 private:
  double avg_snr_db_;
  double snr_linear_;
  std::size_t block_len_;
};

}  // namespace fhdnn::channel
