// LTE link-budget model for federated-learning clock time (paper §4.4).
//
// The paper assumes FL over LTE: each client occupies one 5 MHz, 10 ms LTE
// frame in TDD. An error-free (coded) system sustains 1.6 Mbit/s per client;
// admitting errors (uncoded, as FHDnn can) raises the usable rate to
// 5.0 Mbit/s. Wall-clock training time is then
//   time = rounds x (update_bits / rate + server_latency)
// with the downlink assumed free (server broadcast at arbitrary rate).
#pragma once

#include <cstdint>

namespace fhdnn::channel {

struct LteLinkModel {
  double bandwidth_hz = 5e6;       ///< one LTE frame's bandwidth
  double frame_seconds = 0.01;     ///< LTE frame duration (10 ms)
  double coded_rate_bps = 1.6e6;   ///< reliable (error-free) link rate
  double uncoded_rate_bps = 5.0e6; ///< rate when channel errors are admitted
  double snr_db = 5.0;             ///< assumed uplink SNR
  /// Clients sharing the medium in TDD; per-client throughput scales 1/N
  /// (paper §3.5: "the volume of data that can be conveyed reliably ...
  /// scales by 1/N"). 1 = dedicated link.
  std::uint64_t shared_clients = 1;

  /// Seconds to push one update of `update_bits` at the given rate,
  /// including the 1/shared_clients medium share.
  double upload_seconds(std::uint64_t update_bits, bool admit_errors) const;

  /// Wall-clock seconds for `rounds` rounds of `update_bits` uploads,
  /// ignoring local compute (communication-bound regime, as in the paper).
  double training_seconds(std::uint64_t update_bits, std::uint64_t rounds,
                          bool admit_errors) const;

  /// Shannon capacity (bits/s) of this link at the configured SNR — a
  /// sanity upper bound the configured rates must respect.
  double shannon_capacity_bps() const;

  /// Throws when a configured rate is non-positive or exceeds the Shannon
  /// capacity of the link — a physically impossible configuration.
  void validate() const;
};

/// Bytes transmitted by one client over a whole training run:
///   rounds x update_bytes   (paper §4.4 data_transmitted formula).
std::uint64_t total_upload_bytes(std::uint64_t update_bytes,
                                 std::uint64_t rounds);

}  // namespace fhdnn::channel
