// Unreliable uplink channel models (paper §3.5).
//
// The FL simulator pushes every client's serialized model update through a
// Channel before aggregation. Three error models from the paper:
//   * AWGN "noisy aggregation" (§3.5.1) — uncoded analog transmission; zero-
//     mean Gaussian noise added directly to parameter values at a target
//     SNR;
//   * bit errors (§3.5.2) — a binary symmetric channel flipping bits of the
//     digital representation (IEEE-754 float32 words for CNNs, B-bit
//     integers for quantized HD models) with probability p_e each;
//   * packet loss (§3.5.3) — UDP-style transport; payload is split into
//     N_p-bit packets, each dropped i.i.d. with probability p_p; dropped
//     packets are zero-filled (no retransmission).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fhdnn::channel {

/// Statistics of one delivery — the single accounting struct shared by
/// Channel::apply (raw channel level) and Transport::transmit (payload
/// level). A channel fills the air-interface counters; a transport adds the
/// payload accounting on top; the ARQ decorator (channel/arq.hpp) adds the
/// reliability counters.
struct TransportStats {
  std::uint64_t payload_scalars = 0;   ///< model scalars in the payload
  std::uint64_t payload_bytes = 0;     ///< uplink payload charged to the client
  std::uint64_t bits_on_air = 0;       ///< channel-level bits transmitted
  std::uint64_t bit_flips = 0;         ///< corruption events (BSC)
  std::uint64_t packets_total = 0;     ///< frames sent (packet channels / ARQ)
  std::uint64_t packets_lost = 0;      ///< erasures (packet channels)
  std::uint64_t retransmissions = 0;   ///< ARQ: frames sent again after NAK
  std::uint64_t residual_errors = 0;   ///< ARQ: frames delivered corrupted
  double backoff_seconds = 0.0;        ///< ARQ: simulated backoff + ACK wait
  double noise_power = 0.0;            ///< AWGN only (empirical per-element)
};

/// A channel corrupts a float payload (one client's serialized model) in
/// place. Implementations must be deterministic given the Rng.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual TransportStats apply(std::vector<float>& payload, Rng& rng) const = 0;

  /// Fault-model hook: like apply(), but with the channel's error parameter
  /// (BER, loss rate, noise power) scaled by `error_scale` — the per-client
  /// link-quality multiplier of fl::FaultModel. Channels without a tunable
  /// error knob ignore the scale. apply(p, rng) and apply_scaled(p, rng, 1.0)
  /// must consume the stream identically and produce identical results.
  virtual TransportStats apply_scaled(std::vector<float>& payload, Rng& rng,
                                      double error_scale) const {
    (void)error_scale;
    return apply(payload, rng);
  }

  virtual std::string name() const = 0;
};

/// Error-free link (the broadcast/downlink assumption, and the baseline).
class PerfectChannel final : public Channel {
 public:
  TransportStats apply(std::vector<float>& payload, Rng& rng) const override;
  std::string name() const override { return "perfect"; }
};

/// Additive white Gaussian noise at a fixed SNR (dB). The noise variance is
/// set from the *empirical* signal power of the payload:
///   sigma^2 = P / SNR_linear, P = ||payload||^2 / n   (paper Eq. 3).
class AwgnChannel final : public Channel {
 public:
  explicit AwgnChannel(double snr_db);
  TransportStats apply(std::vector<float>& payload, Rng& rng) const override;
  TransportStats apply_scaled(std::vector<float>& payload, Rng& rng,
                              double error_scale) const override;
  std::string name() const override;
  double snr_db() const { return snr_db_; }

 private:
  double snr_db_;
  double snr_linear_;
};

/// Binary symmetric channel over the IEEE-754 float32 bit representation of
/// each payload element (paper Eq. 6-7). NaN/Inf results are kept as-is —
/// exactly the catastrophic behaviour the paper describes for CNN weights.
class BitErrorChannel final : public Channel {
 public:
  explicit BitErrorChannel(double bit_error_rate);
  TransportStats apply(std::vector<float>& payload, Rng& rng) const override;
  TransportStats apply_scaled(std::vector<float>& payload, Rng& rng,
                              double error_scale) const override;
  std::string name() const override;
  double ber() const { return ber_; }

 private:
  double ber_;
};

/// UDP-style packet erasure: the float payload is serialized at 32 bits per
/// element and split into packets of `packet_bits`; each packet is dropped
/// independently with probability `loss_rate` and its scalars zero-filled.
class PacketLossChannel final : public Channel {
 public:
  PacketLossChannel(double loss_rate, std::size_t packet_bits = 8192);
  TransportStats apply(std::vector<float>& payload, Rng& rng) const override;
  TransportStats apply_scaled(std::vector<float>& payload, Rng& rng,
                              double error_scale) const override;
  std::string name() const override;
  double loss_rate() const { return loss_rate_; }
  std::size_t packet_bits() const { return packet_bits_; }

 private:
  double loss_rate_;
  std::size_t packet_bits_;
};

/// Packet error probability from bit error probability (paper Eq. 8):
///   p_p = 1 - (1 - p_e)^{N_p}.
double packet_error_rate(double bit_error_rate, std::size_t packet_bits);

/// Factory helpers.
std::unique_ptr<Channel> make_perfect();
std::unique_ptr<Channel> make_awgn(double snr_db);
std::unique_ptr<Channel> make_bit_error(double ber);
std::unique_ptr<Channel> make_packet_loss(double loss_rate,
                                          std::size_t packet_bits = 8192);

}  // namespace fhdnn::channel
