// Unreliable uplink channel models (paper §3.5).
//
// The FL simulator pushes every client's serialized model update through a
// Channel before aggregation. Three error models from the paper:
//   * AWGN "noisy aggregation" (§3.5.1) — uncoded analog transmission; zero-
//     mean Gaussian noise added directly to parameter values at a target
//     SNR;
//   * bit errors (§3.5.2) — a binary symmetric channel flipping bits of the
//     digital representation (IEEE-754 float32 words for CNNs, B-bit
//     integers for quantized HD models) with probability p_e each;
//   * packet loss (§3.5.3) — UDP-style transport; payload is split into
//     N_p-bit packets, each dropped i.i.d. with probability p_p; dropped
//     packets are zero-filled (no retransmission).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fhdnn::channel {

/// Statistics of one transmission, for logging/asserting in experiments.
struct TransmitStats {
  std::size_t payload_scalars = 0;
  std::size_t bits_on_air = 0;
  std::size_t bit_flips = 0;       ///< BSC only
  std::size_t packets_total = 0;   ///< packet channel only
  std::size_t packets_lost = 0;    ///< packet channel only
  double noise_power = 0.0;        ///< AWGN only (empirical per-element)
};

/// A channel corrupts a float payload (one client's serialized model) in
/// place. Implementations must be deterministic given the Rng.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual TransmitStats apply(std::vector<float>& payload, Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Error-free link (the broadcast/downlink assumption, and the baseline).
class PerfectChannel final : public Channel {
 public:
  TransmitStats apply(std::vector<float>& payload, Rng& rng) const override;
  std::string name() const override { return "perfect"; }
};

/// Additive white Gaussian noise at a fixed SNR (dB). The noise variance is
/// set from the *empirical* signal power of the payload:
///   sigma^2 = P / SNR_linear, P = ||payload||^2 / n   (paper Eq. 3).
class AwgnChannel final : public Channel {
 public:
  explicit AwgnChannel(double snr_db);
  TransmitStats apply(std::vector<float>& payload, Rng& rng) const override;
  std::string name() const override;
  double snr_db() const { return snr_db_; }

 private:
  double snr_db_;
  double snr_linear_;
};

/// Binary symmetric channel over the IEEE-754 float32 bit representation of
/// each payload element (paper Eq. 6-7). NaN/Inf results are kept as-is —
/// exactly the catastrophic behaviour the paper describes for CNN weights.
class BitErrorChannel final : public Channel {
 public:
  explicit BitErrorChannel(double bit_error_rate);
  TransmitStats apply(std::vector<float>& payload, Rng& rng) const override;
  std::string name() const override;
  double ber() const { return ber_; }

 private:
  double ber_;
};

/// UDP-style packet erasure: the float payload is serialized at 32 bits per
/// element and split into packets of `packet_bits`; each packet is dropped
/// independently with probability `loss_rate` and its scalars zero-filled.
class PacketLossChannel final : public Channel {
 public:
  PacketLossChannel(double loss_rate, std::size_t packet_bits = 8192);
  TransmitStats apply(std::vector<float>& payload, Rng& rng) const override;
  std::string name() const override;
  double loss_rate() const { return loss_rate_; }
  std::size_t packet_bits() const { return packet_bits_; }

 private:
  double loss_rate_;
  std::size_t packet_bits_;
};

/// Packet error probability from bit error probability (paper Eq. 8):
///   p_p = 1 - (1 - p_e)^{N_p}.
double packet_error_rate(double bit_error_rate, std::size_t packet_bits);

/// Factory helpers.
std::unique_ptr<Channel> make_perfect();
std::unique_ptr<Channel> make_awgn(double snr_db);
std::unique_ptr<Channel> make_bit_error(double ber);
std::unique_ptr<Channel> make_packet_loss(double loss_rate,
                                          std::size_t packet_bits = 8192);

}  // namespace fhdnn::channel
