// Bit-level utilities shared by the channel models.
#pragma once

#include <cstdint>
#include <vector>

#include "hdc/quantizer.hpp"
#include "util/rng.hpp"

namespace fhdnn::channel {

/// Draw the gap (>= 1, always) to the next flipped bit for a BSC with flip
/// probability p. p is clamped to 1.0 from above (a deadline-scaled BER
/// may overshoot; p >= 1 means every bit flips), and p <= 0 is an error —
/// the flip_* callers return early for ber <= 0 before drawing.
std::uint64_t geometric_gap(double p, Rng& rng);

/// Flip each of the 32 bits of every float in `payload` independently with
/// probability `ber`. Returns the number of flips performed.
std::size_t flip_float_bits(std::vector<float>& payload, double ber, Rng& rng);

/// Flip bits within the B-bit two's-complement representation of each
/// quantized value with probability `ber` per bit; values are re-clamped to
/// the signed B-bit range (the receiver's integer parser cannot produce
/// out-of-range values). Returns the number of flips.
std::size_t flip_quantized_bits(hdc::QuantizedVector& q, double ber, Rng& rng);

}  // namespace fhdnn::channel
