// Transport seam of the federated round engine (fl/engine.hpp).
//
// A Transport owns everything between a client's trained update and the
// server's aggregator: serialization to the on-air representation, the
// unreliable channel, deserialization, and the *uniform* byte/bit
// accounting both trainers report through fl::RoundMetrics. Two payload
// shapes exist today:
//   * FloatStateTransport — the CNN float-state path (paper §3.5): an
//     optional Bernoulli update-subsampling mask against the round's
//     broadcast snapshot, then an optional channel::Channel over the raw
//     float32 words;
//   * HdModelTransport — the HD prototype path: AGC quantization, 1-bit
//     binary-sign transport, or analog transmission via
//     channel::transmit_hd_model (hd_uplink.hpp).
//
// Implementations are deterministic given the caller-provided RNG streams
// and thread-safe across concurrent clients: transmit() is const, keeps no
// per-call state, and draws randomness only from its Rng arguments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "channel/hd_uplink.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fhdnn::channel {

/// Serializes one client update, pushes it through the (possibly
/// unreliable) uplink in place, and accounts for the traffic in the uniform
/// channel::TransportStats (channel.hpp) — the same struct Channel::apply
/// fills, so ARQ/reliability counters exist in exactly one place.
template <typename Update>
class Transport {
 public:
  virtual ~Transport() = default;

  /// Corrupt `update` in place as the uplink would and return the
  /// delivery's accounting. `client_rng` continues the client's own stream
  /// (its state reflects local training); `round_rng` is the round stream,
  /// for round-scoped forks named by `client`. Called concurrently for
  /// distinct clients.
  virtual TransportStats transmit(Update& update, std::size_t client,
                                  Rng& client_rng,
                                  const Rng& round_rng) const = 0;

  /// Closed-form uplink payload of one full delivered update of `scalars`
  /// model scalars, in bytes — the same accounting rule transmit() charges
  /// (before any per-delivery subsampling).
  virtual std::uint64_t update_bytes(std::uint64_t scalars) const = 0;

  /// Human-readable description, for experiment logs.
  virtual std::string name() const = 0;
};

/// CNN float-state path. With update_fraction < 1, each delivery draws a
/// fresh Bernoulli mask from client_rng.fork("mask") and untransmitted
/// scalars fall back to the round's broadcast snapshot (set_broadcast);
/// payload accounting charges the scalars the mask actually transmitted.
/// The channel (client_rng.fork("channel")) may be null for a perfect
/// link, which still costs 32 bits per transmitted scalar on the air.
class FloatStateTransport final : public Transport<std::vector<float>> {
 public:
  /// `uplink` may be null (perfect link) and must outlive the transport.
  FloatStateTransport(double update_fraction, const Channel* uplink);

  /// Install the broadcast reference the subsampling mask falls back to.
  /// Required before transmitting whenever update_fraction < 1; the vector
  /// must outlive the round's transmit calls.
  void set_broadcast(const std::vector<float>* broadcast) {
    broadcast_ = broadcast;
  }

  /// Install the fault model's per-client link-quality multipliers (indexed
  /// by client id; may be null or shorter than the client range — missing
  /// entries mean 1.0). The vector must outlive the transmit calls.
  void set_error_scales(const std::vector<double>* scales) {
    error_scales_ = scales;
  }

  TransportStats transmit(std::vector<float>& update, std::size_t client,
                          Rng& client_rng, const Rng& round_rng) const override;
  std::uint64_t update_bytes(std::uint64_t scalars) const override {
    return scalars * sizeof(float);
  }
  std::string name() const override;

  double update_fraction() const { return update_fraction_; }
  const Channel* uplink() const { return uplink_; }

 private:
  double update_fraction_;
  const Channel* uplink_;
  const std::vector<float>* broadcast_ = nullptr;
  const std::vector<double>* error_scales_ = nullptr;
};

/// HD prototype path: the (K, d) matrix goes through transmit_hd_model
/// under the round-scoped channel fork round_rng.fork("channel-<client>").
/// Payload accounting uses hd_update_bytes — the one rule shared with
/// closed-form update-size reporting (binary sign = 1 bit/scalar, AGC = B
/// bits, raw float = 32).
class HdModelTransport final : public Transport<Tensor> {
 public:
  explicit HdModelTransport(HdUplinkConfig config) : config_(config) {}

  /// Fault model's per-client link multipliers; see
  /// FloatStateTransport::set_error_scales.
  void set_error_scales(const std::vector<double>* scales) {
    error_scales_ = scales;
  }

  TransportStats transmit(Tensor& update, std::size_t client, Rng& client_rng,
                          const Rng& round_rng) const override;
  std::uint64_t update_bytes(std::uint64_t scalars) const override {
    return hd_update_bytes(config_, scalars);
  }
  std::string name() const override { return describe(config_); }

  const HdUplinkConfig& config() const { return config_; }

 private:
  HdUplinkConfig config_;
  const std::vector<double>* error_scales_ = nullptr;
};

}  // namespace fhdnn::channel
