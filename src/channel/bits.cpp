#include "channel/bits.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::channel {

std::uint64_t geometric_gap(double p, Rng& rng) {
  // A scaled BER can overshoot 1.0 (deadline-driven error_scale multiplies
  // the configured rate); clamp instead of tripping Rng::geometric's
  // domain check — at p == 1.0 every bit flips, i.e. every gap is 1.
  const double clamped = std::min(p, 1.0);
  FHDNN_CHECK(clamped > 0.0, "geometric_gap p=" << p);
  // Rng::geometric guarantees a result >= 1; the max() is a defensive
  // backstop so a zero gap can never underflow the callers' `gap - 1`
  // first-position arithmetic into a huge unsigned offset.
  return std::max<std::uint64_t>(1, rng.geometric(clamped));
}

std::size_t flip_float_bits(std::vector<float>& payload, double ber, Rng& rng) {
  if (ber <= 0.0 || payload.empty()) return 0;
  const std::uint64_t total_bits = payload.size() * 32ULL;
  std::size_t flips = 0;
  std::uint64_t pos = geometric_gap(ber, rng) - 1;
  while (pos < total_bits) {
    const std::size_t word = static_cast<std::size_t>(pos / 32ULL);
    const unsigned bit = static_cast<unsigned>(pos % 32ULL);
    auto u = std::bit_cast<std::uint32_t>(payload[word]);
    u ^= (1U << bit);
    payload[word] = std::bit_cast<float>(u);
    ++flips;
    pos += geometric_gap(ber, rng);
  }
  return flips;
}

std::size_t flip_quantized_bits(hdc::QuantizedVector& q, double ber, Rng& rng) {
  if (ber <= 0.0 || q.values.empty()) return 0;
  const unsigned bits = static_cast<unsigned>(q.bitwidth);
  const std::uint64_t total_bits = q.values.size() * static_cast<std::uint64_t>(bits);
  const std::int32_t max_level = static_cast<std::int32_t>((1U << (bits - 1)) - 1U);
  std::size_t flips = 0;
  std::uint64_t pos = geometric_gap(ber, rng) - 1;
  while (pos < total_bits) {
    const std::size_t idx = static_cast<std::size_t>(pos / bits);
    const unsigned bit = static_cast<unsigned>(pos % bits);
    // Two's-complement B-bit view: mask to B bits, flip, sign-extend back.
    const std::uint32_t mask = (bits >= 32) ? 0xFFFFFFFFU : ((1U << bits) - 1U);
    std::uint32_t raw = static_cast<std::uint32_t>(q.values[idx]) & mask;
    raw ^= (1U << bit);
    // Sign-extend from bit B-1.
    std::int32_t v;
    if (raw & (1U << (bits - 1))) {
      v = static_cast<std::int32_t>(raw | ~mask);
    } else {
      v = static_cast<std::int32_t>(raw);
    }
    // The AGC receiver clamps to the representable range.
    if (v > max_level) v = max_level;
    if (v < -max_level) v = -max_level;
    q.values[idx] = v;
    ++flips;
    pos += geometric_gap(ber, rng);
  }
  return flips;
}

}  // namespace fhdnn::channel
