#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fhdnn::net {
namespace {

[[noreturn]] void fail_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

std::uint32_t interest_mask(bool want_read, bool want_write) {
  std::uint32_t mask = EPOLLRDHUP;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) fail_errno("epoll_create1");
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::add(int fd, std::uint64_t tag, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    fail_errno("epoll_ctl(ADD)");
  }
  ++watched_;
}

void Reactor::update(int fd, std::uint64_t tag, bool want_read,
                     bool want_write) {
  epoll_event ev{};
  ev.events = interest_mask(want_read, want_write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    fail_errno("epoll_ctl(MOD)");
  }
}

void Reactor::remove(int fd) {
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    fail_errno("epoll_ctl(DEL)");
  }
  --watched_;
}

std::vector<Reactor::Event> Reactor::wait(int timeout_ms) {
  epoll_event raw[64];
  int n = 0;
  for (;;) {
    n = ::epoll_wait(epoll_fd_, raw, 64, timeout_ms);
    if (n >= 0) break;
    if (errno != EINTR) fail_errno("epoll_wait");
  }
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.tag = raw[i].data.u64;
    e.readable = (raw[i].events & EPOLLIN) != 0;
    e.writable = (raw[i].events & EPOLLOUT) != 0;
    e.hangup = (raw[i].events & (EPOLLHUP | EPOLLRDHUP | EPOLLERR)) != 0;
    events.push_back(e);
  }
  return events;
}

}  // namespace fhdnn::net
