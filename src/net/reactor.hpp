// Non-blocking event loop (epoll on Linux).
//
// The Reactor owns an epoll instance; callers register pollable fds with an
// opaque tag and ask for readiness events with a timeout.  It reports
// readiness only — all reading/writing stays in the per-connection state
// machines (MessageChannel), which keeps the reactor free of protocol
// knowledge and trivially testable.
//
// Loopback connections have no fd (Connection::fd() == -1); drivers that
// mix transports fall back to Connection::wait_readable polling for those.
#pragma once

#include <cstdint>
#include <vector>

#include "net/connection.hpp"

namespace fhdnn::net {

class Reactor {
 public:
  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  struct Event {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< peer closed or error; drain then close
  };

  /// Register `fd` with interest in read and/or write readiness.
  void add(int fd, std::uint64_t tag, bool want_read, bool want_write);

  /// Change the interest set of a registered fd.
  void update(int fd, std::uint64_t tag, bool want_read, bool want_write);

  void remove(int fd);

  /// Block up to `timeout_ms` (0 = poll, negative = wait indefinitely) and
  /// return the ready events; empty on timeout.
  std::vector<Event> wait(int timeout_ms);

  [[nodiscard]] std::size_t watched() const noexcept { return watched_; }

 private:
  int epoll_fd_ = -1;
  std::size_t watched_ = 0;
};

}  // namespace fhdnn::net
