// Non-blocking TCP sockets implementing the Connection seam.
//
// TcpListener binds a host:port (port 0 asks the kernel for an ephemeral
// port — tools/fhdnnd publishes the result via --port-file so tests never
// race on a fixed port) and accepts ready connections without blocking.
// connect_tcp dials with a timeout and retries refusals until the deadline,
// which is what lets fhdnn-client workers start before the server, or
// reconnect after a kill -9'd server restarts from its checkpoint.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/connection.hpp"

namespace fhdnn::net {

class TcpListener {
 public:
  /// Bind and listen on `host:port`; port 0 picks an ephemeral port.
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually-bound port (resolves ephemeral requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Listening fd, pollable by a Reactor for accept-readiness.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Accept one pending connection without blocking; nullptr when none is
  /// pending.
  std::unique_ptr<Connection> accept();

  /// Block up to `timeout_ms` for a pending connection.
  bool wait_pending(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Dial `host:port`, retrying refused/unreachable attempts until
/// `timeout_ms` elapses.  Throws NetError on timeout.
std::unique_ptr<Connection> connect_tcp(const std::string& host,
                                        std::uint16_t port, int timeout_ms);

}  // namespace fhdnn::net
