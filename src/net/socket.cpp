#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>  // fhdnn-lint: allow(raw-thread) — sleep_for only, no spawning

namespace fhdnn::net {
namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad IPv4 address: " + host);
  }
  return addr;
}

class TcpConnection final : public Connection {
 public:
  TcpConnection(int fd, std::string label)
      : fd_(fd), label_(std::move(label)) {
    set_nonblocking(fd_);
    const int one = 1;
    // Frames are latency-sensitive and already batched; disable Nagle.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override { TcpConnection::close(); }

  std::size_t read_some(std::uint8_t* out, std::size_t len) override {
    if (fd_ < 0) return 0;
    const ssize_t n = ::recv(fd_, out, len, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) {  // orderly EOF
      eof_ = true;
      return 0;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    if (errno == ECONNRESET || errno == EPIPE) {
      eof_ = true;
      return 0;
    }
    fail_errno("recv on " + label_);
  }

  std::size_t write_some(const std::uint8_t* data, std::size_t len) override {
    if (fd_ < 0) throw NetError("write on closed " + label_);
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    if (errno == ECONNRESET || errno == EPIPE) {
      eof_ = true;
      throw NetError("peer closed on " + label_);
    }
    fail_errno("send on " + label_);
  }

  [[nodiscard]] bool peer_closed() const override { return eof_; }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  [[nodiscard]] int fd() const override { return fd_; }

  bool wait_readable(int timeout_ms) override {
    if (fd_ < 0) return true;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0 && errno != EINTR) fail_errno("poll on " + label_);
    return r > 0;
  }

  [[nodiscard]] std::string describe() const override { return label_; }

 private:
  int fd_;
  std::string label_;
  bool eof_ = false;
};

}  // namespace

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 128) != 0) fail_errno("listen");
  set_nonblocking(fd_);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (client < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return nullptr;
    }
    fail_errno("accept");
  }
  return std::make_unique<TcpConnection>(
      client, "tcp:accepted#" + std::to_string(client));
}

bool TcpListener::wait_pending(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0 && errno != EINTR) fail_errno("poll on listener");
  return r > 0;
}

std::unique_ptr<Connection> connect_tcp(const std::string& host,
                                        std::uint16_t port, int timeout_ms) {
  const std::string label = "tcp:" + host + ":" + std::to_string(port);
  // Connect timeouts are real-time by nature; net/ sits outside the
  // simulated-clock contract (the round path only reaches here through the
  // linker's name-level over-approximation).
  // fhdnn-lint: allow(det-effects)
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) fail_errno("socket");
    sockaddr_in addr = make_addr(host, port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return std::make_unique<TcpConnection>(fd, label);
    }
    ::close(fd);
    if (errno != ECONNREFUSED && errno != ENETUNREACH && errno != ETIMEDOUT &&
        errno != EINTR) {
      fail_errno("connect " + label);
    }
    // fhdnn-lint: allow(det-effects) -- same timeout deadline as above
    if (std::chrono::steady_clock::now() >= deadline) {
      throw NetError("connect " + label + " timed out after " +
                     std::to_string(timeout_ms) + " ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace fhdnn::net
