#include "net/connection.hpp"

#include "util/workspace.hpp"

namespace fhdnn::net {

void MessageChannel::send(const wire::Frame& frame) {
  const std::vector<std::uint8_t> encoded =
      wire::encode_frame(frame.type, frame.payload);
  bytes_sent_ += encoded.size();
  tx_.insert(tx_.end(), encoded.begin(), encoded.end());
  flush();
}

bool MessageChannel::flush() {
  while (tx_off_ < tx_.size()) {
    const std::size_t n =
        conn_.write_some(tx_.data() + tx_off_, tx_.size() - tx_off_);
    if (n == 0) break;  // peer backpressure; retry on the next pump
    tx_off_ += n;
  }
  if (tx_off_ == tx_.size()) {
    tx_.clear();
    tx_off_ = 0;
    return true;
  }
  if (tx_off_ >= 65536) {  // reclaim drained prefix of a long queue
    tx_.erase(tx_.begin(), tx_.begin() + static_cast<std::ptrdiff_t>(tx_off_));
    tx_off_ = 0;
  }
  return false;
}

void MessageChannel::pump_rx() {
  // Stage reads through the per-thread workspace arena: one 16 KiB block
  // borrowed per pump, released by the Scope — no steady-state allocation.
  util::Workspace& ws = util::tls_workspace();
  const util::Workspace::Scope scope(ws);
  constexpr std::int64_t kStageFloats = 4096;
  auto* stage = reinterpret_cast<std::uint8_t*>(ws.floats(kStageFloats));
  const std::size_t stage_bytes = static_cast<std::size_t>(kStageFloats) * 4;
  for (;;) {
    const std::size_t got = conn_.read_some(stage, stage_bytes);
    if (got == 0) break;
    bytes_received_ += got;
    rx_.feed(stage, got);
  }
}

std::optional<wire::Frame> MessageChannel::poll() {
  flush();
  pump_rx();
  std::optional<wire::Frame> frame = rx_.next();
  if (!frame && conn_.peer_closed() && rx_.buffered() > 0) {
    throw NetError("peer closed mid-frame (" +
                   std::to_string(rx_.buffered()) + " bytes buffered) on " +
                   conn_.describe());
  }
  return frame;
}

wire::Frame MessageChannel::recv(int timeout_ms) {
  int remaining_ms = timeout_ms;
  for (;;) {
    if (std::optional<wire::Frame> f = poll()) return std::move(*f);
    if (conn_.peer_closed()) {
      throw NetError("peer closed on " + conn_.describe());
    }
    if (remaining_ms <= 0) {
      throw NetError("recv timed out after " + std::to_string(timeout_ms) +
                     " ms on " + conn_.describe());
    }
    const int slice_ms = remaining_ms < 50 ? remaining_ms : 50;
    conn_.wait_readable(slice_ms);
    remaining_ms -= slice_ms;
  }
}

}  // namespace fhdnn::net
