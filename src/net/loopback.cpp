#include "net/loopback.hpp"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>

namespace fhdnn::net {
namespace {

// One direction of the pipe: a bounded FIFO of bytes.
struct Queue {
  std::vector<std::uint8_t> data;
  std::size_t head = 0;

  [[nodiscard]] std::size_t readable() const { return data.size() - head; }
};

struct Pipe {
  std::mutex mu;
  std::condition_variable cv;
  Queue dir[2];         // dir[s]: bytes written by side s
  bool closed[2] = {false, false};
  std::size_t capacity;
  std::string name;
};

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<Pipe> pipe, int side)
      : pipe_(std::move(pipe)), side_(side) {}

  ~LoopbackConnection() override { LoopbackConnection::close(); }

  std::size_t read_some(std::uint8_t* out, std::size_t len) override {
    const std::scoped_lock lock(pipe_->mu);
    Queue& in = pipe_->dir[1 - side_];
    const std::size_t n = len < in.readable() ? len : in.readable();
    if (n == 0) return 0;
    std::memcpy(out, in.data.data() + in.head, n);
    in.head += n;
    if (in.head == in.data.size()) {
      in.data.clear();
      in.head = 0;
    }
    // Draining frees writer capacity; wake a peer blocked in wait_readable
    // only matters for readers, but capacity changes matter to pollers too.
    pipe_->cv.notify_all();
    return n;
  }

  std::size_t write_some(const std::uint8_t* data, std::size_t len) override {
    const std::scoped_lock lock(pipe_->mu);
    if (pipe_->closed[side_]) {
      throw NetError("write on closed " + describe_locked());
    }
    if (pipe_->closed[1 - side_]) {
      throw NetError("peer closed on " + describe_locked());
    }
    Queue& out = pipe_->dir[side_];
    const std::size_t used = out.data.size() - out.head;
    const std::size_t avail =
        used < pipe_->capacity ? pipe_->capacity - used : 0;
    const std::size_t n = len < avail ? len : avail;
    if (n == 0) return 0;  // backpressure
    out.data.insert(out.data.end(), data, data + n);
    pipe_->cv.notify_all();
    return n;
  }

  [[nodiscard]] bool peer_closed() const override {
    const std::scoped_lock lock(pipe_->mu);
    const Queue& in = pipe_->dir[1 - side_];
    return pipe_->closed[1 - side_] && in.readable() == 0;
  }

  void close() override {
    const std::scoped_lock lock(pipe_->mu);
    pipe_->closed[side_] = true;
    pipe_->cv.notify_all();
  }

  bool wait_readable(int timeout_ms) override {
    std::unique_lock lock(pipe_->mu);
    const auto ready = [this] {
      return pipe_->dir[1 - side_].readable() > 0 || pipe_->closed[1 - side_];
    };
    if (timeout_ms <= 0) return ready();
    pipe_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready);
    return ready();
  }

  [[nodiscard]] std::string describe() const override {
    const std::scoped_lock lock(pipe_->mu);
    return describe_locked();
  }

 private:
  [[nodiscard]] std::string describe_locked() const {
    return pipe_->name + (side_ == 0 ? ":client" : ":server");
  }

  std::shared_ptr<Pipe> pipe_;
  int side_;
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_loopback_pair(const LoopbackOptions& options) {
  FHDNN_CHECK(options.capacity_bytes > 0, "loopback capacity must be > 0");
  auto pipe = std::make_shared<Pipe>();
  pipe->capacity = options.capacity_bytes;
  pipe->name = options.name;
  return {std::make_unique<LoopbackConnection>(pipe, 0),
          std::make_unique<LoopbackConnection>(pipe, 1)};
}

}  // namespace fhdnn::net
