// Deterministic in-process loopback: a pair of Connection endpoints joined
// by two byte queues, for tests and the single-process serving path.
//
// Semantics match a healthy TCP stream: writes are accepted up to a
// capacity cap (then backpressure: write_some returns 0), reads drain in
// FIFO order, closing one end makes the other's reads hit EOF once the
// queue drains.  Fully thread-safe — the server pumps one end from its
// round-driver thread while a worker thread pumps the other — and carries
// no timing or randomness, so loopback integration runs are bit-identical
// across machines and under TSan.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "net/connection.hpp"

namespace fhdnn::net {

struct LoopbackOptions {
  /// Per-direction queue capacity before write_some reports backpressure.
  std::size_t capacity_bytes = 1 << 20;
  std::string name = "loopback";
};

/// Create a connected pair (first = "client" end, second = "server" end).
/// Either endpoint may outlive the other; the shared pipe state is
/// reference-counted.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_loopback_pair(const LoopbackOptions& options = {});

}  // namespace fhdnn::net
