// Byte-stream connections and frame pumping for the fhdnnd serving seam.
//
// `Connection` is the seam both transports implement: non-blocking TCP
// sockets (src/net/socket.*, driven by the epoll Reactor) and the
// deterministic in-process loopback pipe (src/net/loopback.*, used by tests
// and the single-process integration path).  All reads and writes are
// non-blocking; `wait_readable` is the only blocking call, and it always
// takes a timeout.
//
// `MessageChannel` layers wire framing on a Connection with explicit
// read/write buffering: sends queue into a tx buffer flushed as the peer
// drains it (backpressure shows up as `tx_pending() > 0`), and receives pump
// bytes through a per-thread workspace-arena staging block into a
// FrameAssembler, so steady-state pumping costs no allocation beyond the
// frames themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "wire/wire.hpp"

namespace fhdnn::net {

/// Networking failure (connect/accept/read/write/timeout/peer-closed).
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error("net error: " + what) {}
};

/// A bidirectional, non-blocking byte stream.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Read up to `len` bytes without blocking.  Returns the number of bytes
  /// read; 0 means no bytes are currently available (check peer_closed()
  /// to distinguish EOF).  Throws NetError on transport failure.
  virtual std::size_t read_some(std::uint8_t* out, std::size_t len) = 0;

  /// Write up to `len` bytes without blocking.  Returns the number of bytes
  /// accepted (0 when the peer's buffer is full — backpressure).  Throws
  /// NetError when the peer is gone.
  virtual std::size_t write_some(const std::uint8_t* data,
                                 std::size_t len) = 0;

  /// True once the peer has closed and all readable bytes were drained.
  [[nodiscard]] virtual bool peer_closed() const = 0;

  /// Close this end; further reads/writes fail or report peer_closed.
  virtual void close() = 0;

  /// Pollable file descriptor for the Reactor, or -1 (loopback pipes have
  /// no fd; callers fall back to wait_readable).
  [[nodiscard]] virtual int fd() const { return -1; }

  /// Block up to `timeout_ms` for readability (or peer close).  Returns
  /// true when bytes are available or the peer closed, false on timeout.
  virtual bool wait_readable(int timeout_ms) = 0;

  /// Human-readable endpoint label for logs ("tcp:127.0.0.1:4242", ...).
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Wire frames over a Connection, with tx buffering + rx assembly.
/// Not thread-safe: one MessageChannel belongs to one pumping thread.
class MessageChannel {
 public:
  explicit MessageChannel(Connection& conn) : conn_(conn) {}

  /// Queue one frame and opportunistically flush.
  void send(const wire::Frame& frame);

  /// Push queued tx bytes to the peer; true when the queue drained.
  bool flush();

  /// Pump readable bytes and return the next complete frame, if any.
  /// Non-blocking.  Throws WireError on stream corruption, NetError when
  /// the peer closed mid-frame.
  std::optional<wire::Frame> poll();

  /// Blocking receive with timeout: pumps until a frame arrives.  Throws
  /// NetError on timeout or peer close.
  wire::Frame recv(int timeout_ms);

  /// Bytes queued but not yet accepted by the peer (backpressure gauge).
  [[nodiscard]] std::size_t tx_pending() const noexcept {
    return tx_.size() - tx_off_;
  }

  [[nodiscard]] Connection& connection() noexcept { return conn_; }

  /// Cumulative framed-byte counters (serving accounting + bench).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_;
  }

 private:
  void pump_rx();

  Connection& conn_;
  std::vector<std::uint8_t> tx_;
  std::size_t tx_off_ = 0;
  wire::FrameAssembler rx_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace fhdnn::net
