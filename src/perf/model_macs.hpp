// Analytic MAC counts for the model architectures in this repo, used to
// feed the device cost model and to report communication/compute tables.
#pragma once

#include <cstdint>

namespace fhdnn::perf {

/// Forward multiply-accumulates of one conv layer.
std::uint64_t conv2d_macs(std::int64_t in_channels, std::int64_t out_channels,
                          std::int64_t kernel, std::int64_t out_h,
                          std::int64_t out_w);

/// Forward MACs of one linear layer.
std::uint64_t linear_macs(std::int64_t in_features, std::int64_t out_features);

/// Forward MACs per image of the CNN-2conv/2fc MNIST baseline
/// (nn::make_cnn2 with the given geometry).
std::uint64_t cnn2_fwd_macs(std::int64_t in_channels, std::int64_t image_hw,
                            std::int64_t num_classes);

/// Forward MACs per image of nn::make_mini_resnet.
std::uint64_t mini_resnet_fwd_macs(std::int64_t in_channels,
                                   std::int64_t image_hw,
                                   std::int64_t num_classes,
                                   std::int64_t base_width);

/// Parameter counts for communication accounting at paper scale.
constexpr std::uint64_t kResNet18Params = 11'000'000;  ///< paper §4.4
constexpr std::uint64_t kResNet18UpdateBytes = 22'000'000;  ///< 22 MB
constexpr std::uint64_t kFhdnnUpdateBytes = 1'000'000;      ///< 1 MB (d=10k HD model)

}  // namespace fhdnn::perf
