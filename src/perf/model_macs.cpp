#include "perf/model_macs.hpp"

#include "util/error.hpp"

namespace fhdnn::perf {

std::uint64_t conv2d_macs(std::int64_t in_channels, std::int64_t out_channels,
                          std::int64_t kernel, std::int64_t out_h,
                          std::int64_t out_w) {
  FHDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && out_h > 0 &&
                  out_w > 0,
              "conv2d_macs args");
  return static_cast<std::uint64_t>(out_h) * static_cast<std::uint64_t>(out_w) *
         static_cast<std::uint64_t>(out_channels) *
         static_cast<std::uint64_t>(in_channels) *
         static_cast<std::uint64_t>(kernel) * static_cast<std::uint64_t>(kernel);
}

std::uint64_t linear_macs(std::int64_t in_features, std::int64_t out_features) {
  FHDNN_CHECK(in_features > 0 && out_features > 0, "linear_macs args");
  return static_cast<std::uint64_t>(in_features) *
         static_cast<std::uint64_t>(out_features);
}

std::uint64_t cnn2_fwd_macs(std::int64_t in_channels, std::int64_t image_hw,
                            std::int64_t num_classes) {
  FHDNN_CHECK(image_hw % 4 == 0, "cnn2 geometry");
  std::uint64_t macs = 0;
  macs += conv2d_macs(in_channels, 16, 3, image_hw, image_hw);
  const std::int64_t h2 = image_hw / 2;
  macs += conv2d_macs(16, 32, 3, h2, h2);
  const std::int64_t h4 = image_hw / 4;
  macs += linear_macs(32 * h4 * h4, 128);
  macs += linear_macs(128, num_classes);
  return macs;
}

std::uint64_t mini_resnet_fwd_macs(std::int64_t in_channels,
                                   std::int64_t image_hw,
                                   std::int64_t num_classes,
                                   std::int64_t base_width) {
  std::uint64_t macs = 0;
  const std::int64_t w1 = base_width, w2 = 2 * base_width, w3 = 4 * base_width;
  auto stride2 = [](std::int64_t hw) { return (hw + 2 - 3) / 2 + 1; };
  // Stem.
  macs += conv2d_macs(in_channels, w1, 3, image_hw, image_hw);
  // Block 1 (stride 1, identity skip): two 3x3 convs at full resolution.
  macs += 2 * conv2d_macs(w1, w1, 3, image_hw, image_hw);
  // Block 2 (stride 2, projection): conv w1->w2 s2, conv w2->w2, 1x1 proj.
  const std::int64_t hw2 = stride2(image_hw);
  macs += conv2d_macs(w1, w2, 3, hw2, hw2);
  macs += conv2d_macs(w2, w2, 3, hw2, hw2);
  macs += conv2d_macs(w1, w2, 1, hw2, hw2);
  // Block 3 (stride 2, projection).
  const std::int64_t hw3 = stride2(hw2);
  macs += conv2d_macs(w2, w3, 3, hw3, hw3);
  macs += conv2d_macs(w3, w3, 3, hw3, hw3);
  macs += conv2d_macs(w2, w3, 1, hw3, hw3);
  // Head.
  macs += linear_macs(w3, num_classes);
  return macs;
}

}  // namespace fhdnn::perf
