// Analytical edge-device cost model (paper Table 1).
//
// We do not have a Raspberry Pi 3b or a Jetson, so client-side training
// time and energy are estimated from operation counts and per-device
// effective throughputs:
//
//   t_cnn   = E * S * (fwd + bwd MACs) / R_train
//   t_fhdnn = E * S * fwd MACs / R_fwd  +  E * S * hd_ops / R_hd
//   energy  = t * P(workload)
//
// The structure (op counting) is principled; the throughput and power
// constants of the two calibrated profiles are *fitted to the paper's own
// Table 1 measurements* under the documented reference workload (S=500
// local samples, E=2 epochs, ResNet-18 at 32x32: 557 MMACs forward,
// backward = 2x forward; HD: n=512, d=10,000, K=10). This reproduces the
// paper's absolute numbers by construction and lets the model extrapolate
// to other workloads. See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <string>

namespace fhdnn::perf {

/// Per-device effective throughputs and powers.
struct DeviceProfile {
  std::string name;
  double train_macs_per_sec = 0;  ///< forward+backward workloads (CNN training)
  double fwd_macs_per_sec = 0;    ///< forward-only workloads (feature extraction)
  double hd_ops_per_sec = 0;      ///< HD encode/bundle/similarity ops
  double power_train_w = 0;       ///< draw during CNN training
  double power_fwd_w = 0;         ///< draw during FHDnn training

  /// Calibrated to the paper's Raspberry Pi 3b measurements.
  static DeviceProfile raspberry_pi_3b();
  /// Calibrated to the paper's NVIDIA Jetson measurements.
  static DeviceProfile jetson();
};

/// One client's local-training workload for a whole FL experiment
/// (per-round costs scale linearly in samples and epochs).
struct ClientWorkload {
  std::uint64_t samples = 500;              ///< local dataset size
  std::uint64_t epochs = 2;                 ///< local epochs E
  std::uint64_t cnn_fwd_macs = 557'000'000; ///< per-sample forward MACs
  double cnn_bwd_factor = 2.0;              ///< backward MACs / forward MACs
  std::uint64_t hd_ops_per_sample = 0;      ///< encode + refine ops

  /// hd_ops for random-projection encode (n*d) + prototype update (K*d).
  static std::uint64_t hd_ops(std::uint64_t feature_dim, std::uint64_t hd_dim,
                              std::uint64_t classes);

  /// The paper's reference workload (ResNet-18, n=512, d=10k, K=10).
  static ClientWorkload paper_reference();
};

struct CostEstimate {
  double seconds = 0;
  double energy_joules = 0;
};

/// Cost of CNN-based local training (backprop every epoch).
CostEstimate cnn_local_training(const DeviceProfile& dev,
                                const ClientWorkload& w);

/// Cost of FHDnn local training (frozen forward + HD ops).
CostEstimate fhdnn_local_training(const DeviceProfile& dev,
                                  const ClientWorkload& w);

}  // namespace fhdnn::perf
