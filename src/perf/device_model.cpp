#include "perf/device_model.hpp"

#include "util/error.hpp"

namespace fhdnn::perf {

DeviceProfile DeviceProfile::raspberry_pi_3b() {
  // Fitted to Table 1: CNN 1328.04 s / 6742.8 J, FHDnn 858.72 s / 4418.4 J
  // under ClientWorkload::paper_reference().
  DeviceProfile d;
  d.name = "Raspberry Pi 3b";
  d.train_macs_per_sec = 1.2583e9;  // 1.671e12 MACs / 1328.04 s
  d.fwd_macs_per_sec = 1.8875e9;    // forward-only ~1.5x more efficient
  d.hd_ops_per_sec = 9.262e6;       // residual of the measured FHDnn time
  d.power_train_w = 5.0773;         // 6742.8 J / 1328.04 s
  d.power_fwd_w = 5.1452;           // 4418.4 J / 858.72 s
  return d;
}

DeviceProfile DeviceProfile::jetson() {
  // Fitted to Table 1: CNN 90.55 s / 497.572 J, FHDnn 15.96 s / 96.17 J.
  DeviceProfile d;
  d.name = "Nvidia Jetson";
  d.train_macs_per_sec = 1.8454e10;  // 1.671e12 MACs / 90.55 s
  d.fwd_macs_per_sec = 7.3815e10;    // inference ~4x training efficiency (GPU)
  d.hd_ops_per_sec = 6.204e8;
  d.power_train_w = 5.4950;  // 497.572 J / 90.55 s
  d.power_fwd_w = 6.0257;    // 96.17 J / 15.96 s
  return d;
}

std::uint64_t ClientWorkload::hd_ops(std::uint64_t feature_dim,
                                     std::uint64_t hd_dim,
                                     std::uint64_t classes) {
  return feature_dim * hd_dim + classes * hd_dim;
}

ClientWorkload ClientWorkload::paper_reference() {
  ClientWorkload w;
  w.samples = 500;
  w.epochs = 2;
  w.cnn_fwd_macs = 557'000'000;  // ResNet-18 at 32x32
  w.cnn_bwd_factor = 2.0;
  w.hd_ops_per_sample = hd_ops(512, 10'000, 10);
  return w;
}

CostEstimate cnn_local_training(const DeviceProfile& dev,
                                const ClientWorkload& w) {
  FHDNN_CHECK(dev.train_macs_per_sec > 0, "device " << dev.name
                                                    << " train rate");
  const double macs = static_cast<double>(w.epochs) *
                      static_cast<double>(w.samples) *
                      static_cast<double>(w.cnn_fwd_macs) *
                      (1.0 + w.cnn_bwd_factor);
  CostEstimate c;
  c.seconds = macs / dev.train_macs_per_sec;
  c.energy_joules = c.seconds * dev.power_train_w;
  return c;
}

CostEstimate fhdnn_local_training(const DeviceProfile& dev,
                                  const ClientWorkload& w) {
  FHDNN_CHECK(dev.fwd_macs_per_sec > 0 && dev.hd_ops_per_sec > 0,
              "device " << dev.name << " rates");
  const double fwd_macs = static_cast<double>(w.epochs) *
                          static_cast<double>(w.samples) *
                          static_cast<double>(w.cnn_fwd_macs);
  const double hd_ops = static_cast<double>(w.epochs) *
                        static_cast<double>(w.samples) *
                        static_cast<double>(w.hd_ops_per_sample);
  CostEstimate c;
  c.seconds = fwd_macs / dev.fwd_macs_per_sec + hd_ops / dev.hd_ops_per_sec;
  c.energy_joules = c.seconds * dev.power_fwd_w;
  return c;
}

}  // namespace fhdnn::perf
