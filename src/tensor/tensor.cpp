#include "tensor/tensor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace fhdnn {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    FHDNN_CHECK(d > 0, "shape dim " << d << " must be positive");
    std::int64_t next = 0;
    FHDNN_CHECK(!__builtin_mul_overflow(n, d, &next),
                "shape " << shape_to_string(shape)
                         << " element count overflows int64");
    n = next;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() : shape_{}, data_(1, 0.0F) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  FHDNN_CHECK(shape_numel(shape_) == static_cast<std::int64_t>(data_.size()),
              "shape " << shape_to_string(shape_) << " does not match "
                       << data_.size() << " values");
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0F); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  rng.fill_normal(t.vec(), 0.0F, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t.vec(), lo, hi);
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor(Shape{static_cast<std::int64_t>(values.size())},
                std::vector<float>(values));
}

std::int64_t Tensor::dim(std::int64_t i) const {
  const auto n = ndim();
  if (i < 0) i += n;
  FHDNN_CHECK(i >= 0 && i < n,
              "dim " << i << " out of range for " << shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i) {
// Re-validated in debug and in FHDNN_CHECKED contract builds; plain
// release builds keep only the bounds FHDNN_CHECK below.
#if !defined(NDEBUG) || defined(FHDNN_CHECKED)
  assert_invariant();
#endif
  FHDNN_CHECK(i >= 0 && i < numel(), "flat index " << i << " out of range "
                                                   << numel());
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
// Re-validated in debug and in FHDNN_CHECKED contract builds; plain
// release builds keep only the bounds FHDNN_CHECK below.
#if !defined(NDEBUG) || defined(FHDNN_CHECKED)
  assert_invariant();
#endif
  FHDNN_CHECK(i >= 0 && i < numel(), "flat index " << i << " out of range "
                                                   << numel());
  return data_[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::flat_index(std::span<const std::int64_t> idx) const {
// Re-validated in debug and in FHDNN_CHECKED contract builds; plain
// release builds keep only the bounds FHDNN_CHECK below.
#if !defined(NDEBUG) || defined(FHDNN_CHECKED)
  assert_invariant();
#endif
  FHDNN_CHECK(static_cast<std::int64_t>(idx.size()) == ndim(),
              "indexing " << shape_to_string(shape_) << " with " << idx.size()
                          << " indices");
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    FHDNN_CHECK(idx[d] >= 0 && idx[d] < shape_[d],
                "index " << idx[d] << " out of range for dim " << d << " of "
                         << shape_to_string(shape_));
    flat = flat * shape_[d] + idx[d];
  }
  return flat;
}

float& Tensor::operator()(std::int64_t i0) {
  const std::array<std::int64_t, 1> idx{i0};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1) {
  const std::array<std::int64_t, 2> idx{i0, i1};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
  const std::array<std::int64_t, 3> idx{i0, i1, i2};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float& Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                          std::int64_t i3) {
  const std::array<std::int64_t, 4> idx{i0, i1, i2, i3};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::operator()(std::int64_t i0) const {
  const std::array<std::int64_t, 1> idx{i0};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1) const {
  const std::array<std::int64_t, 2> idx{i0, i1};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1,
                         std::int64_t i2) const {
  const std::array<std::int64_t, 3> idx{i0, i1, i2};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                         std::int64_t i3) const {
  const std::array<std::int64_t, 4> idx{i0, i1, i2, i3};
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  FHDNN_CHECK(shape_numel(new_shape) == numel(),
              "cannot reshape " << shape_to_string(shape_) << " to "
                                << shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::ensure_shape(std::initializer_list<std::int64_t> dims) {
  if (shape_.size() == dims.size() &&
      std::equal(shape_.begin(), shape_.end(), dims.begin())) {
    return;
  }
  shape_.assign(dims.begin(), dims.end());
  data_.resize(static_cast<std::size_t>(shape_numel(shape_)));
}

void Tensor::ensure_shape(const Shape& shape) {
  if (shape_ == shape) return;
  shape_ = shape;
  data_.resize(static_cast<std::size_t>(shape_numel(shape_)));
}

void Tensor::assert_invariant() const {
  FHDNN_CHECK(static_cast<std::int64_t>(data_.size()) == shape_numel(shape_),
              "tensor invariant broken: shape " << shape_to_string(shape_)
                                                << " vs " << data_.size()
                                                << " elements");
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Tensor::sum() const {
  double s = 0.0;
  for (const float v : data_) s += v;
  return s;
}

double Tensor::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

float Tensor::min() const {
  FHDNN_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  FHDNN_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (const float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

void Tensor::axpy(float alpha, const Tensor& b) {
  FHDNN_CHECK(same_shape(b), "axpy shape mismatch: " << shape_to_string(shape_)
                                                     << " vs "
                                                     << shape_to_string(b.shape_));
  simd::kernels().axpy_f32(data_.data(), alpha, b.data_.data(),
                           static_cast<std::int64_t>(data_.size()));
}

void Tensor::scale(float alpha) {
  simd::kernels().scale_f32(data_.data(), data_.data(), alpha,
                            static_cast<std::int64_t>(data_.size()));
}

}  // namespace fhdnn
