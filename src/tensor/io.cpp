#include "tensor/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace fhdnn::io {

namespace {

constexpr char kMagic[4] = {'F', 'H', 'D', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Streaming reader that knows where it is, so every failure is reported
/// with the byte offset of the first undecodable byte.
class OffsetReader {
 public:
  OffsetReader(std::ifstream& is, const std::string& path)
      : is_(is), path_(path) {}

  void read_bytes(void* dst, std::size_t len, const char* what) {
    is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
    if (!is_) {
      const auto got = is_.gcount() < 0
                           ? std::size_t{0}
                           : static_cast<std::size_t>(is_.gcount());
      fail(what, offset_ + got);
    }
    offset_ += len;
  }

  template <typename T>
  T read_pod(const char* what) {
    T v{};
    read_bytes(&v, sizeof(T), what);
    return v;
  }

  [[noreturn]] void fail(const std::string& what, std::size_t at) const {
    std::ostringstream os;
    os << "'" << path_ << "': " << what << " at byte " << at;
    throw TensorIoError(os.str(), at);
  }

  std::size_t offset() const { return offset_; }

 private:
  std::ifstream& is_;
  const std::string& path_;
  std::size_t offset_ = 0;
};

}  // namespace

void save_tensor(const Tensor& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  FHDNN_CHECK(os.is_open(), "cannot open '" << path << "' for writing");
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(t.ndim()));
  for (const auto d : t.shape()) write_pod(os, d);
  os.write(reinterpret_cast<const char*>(t.data().data()),
           static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  FHDNN_CHECK(static_cast<bool>(os), "failed writing '" << path << "'");
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FHDNN_CHECK(is.is_open(), "cannot open '" << path << "'");
  OffsetReader r(is, path);
  char magic[4];
  r.read_bytes(magic, sizeof(magic), "truncated magic");
  if (!std::equal(magic, magic + 4, kMagic)) {
    r.fail("not an FHDnn tensor file (bad magic)", 0);
  }
  const auto version = r.read_pod<std::uint32_t>("truncated version field");
  if (version != kVersion) {
    std::ostringstream os;
    os << "unsupported version " << version;
    r.fail(os.str(), r.offset() - sizeof(std::uint32_t));
  }
  const auto ndim = r.read_pod<std::uint32_t>("truncated rank field");
  if (ndim > 8) {
    std::ostringstream os;
    os << "implausible rank " << ndim;
    r.fail(os.str(), r.offset() - sizeof(std::uint32_t));
  }
  Shape shape;
  for (std::uint32_t i = 0; i < ndim; ++i) {
    shape.push_back(r.read_pod<std::int64_t>("truncated shape header"));
    if (shape.back() <= 0 || shape.back() >= (1LL << 40)) {
      std::ostringstream os;
      os << "implausible dim " << shape.back();
      r.fail(os.str(), r.offset() - sizeof(std::int64_t));
    }
  }
  Tensor t(shape);
  r.read_bytes(t.data().data(), t.data().size() * sizeof(float),
               "truncated tensor data");
  // A well-formed container ends exactly after the payload; trailing bytes
  // mean the header lies about the shape, which must not load silently.
  if (is.peek() != std::ifstream::traits_type::eof()) {
    r.fail("trailing bytes after tensor data", r.offset());
  }
  t.assert_invariant();
  return t;
}

}  // namespace fhdnn::io
