#include "tensor/io.hpp"

#include <cstdint>
#include <fstream>

#include "util/error.hpp"

namespace fhdnn::io {

namespace {

constexpr char kMagic[4] = {'F', 'H', 'D', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  FHDNN_CHECK(static_cast<bool>(is), "truncated tensor file");
  return v;
}

}  // namespace

void save_tensor(const Tensor& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  FHDNN_CHECK(os.is_open(), "cannot open '" << path << "' for writing");
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(t.ndim()));
  for (const auto d : t.shape()) write_pod(os, d);
  os.write(reinterpret_cast<const char*>(t.data().data()),
           static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  FHDNN_CHECK(static_cast<bool>(os), "failed writing '" << path << "'");
}

Tensor load_tensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FHDNN_CHECK(is.is_open(), "cannot open '" << path << "'");
  char magic[4];
  is.read(magic, sizeof(magic));
  FHDNN_CHECK(static_cast<bool>(is) && std::equal(magic, magic + 4, kMagic),
              "'" << path << "' is not an FHDnn tensor file");
  const auto version = read_pod<std::uint32_t>(is);
  FHDNN_CHECK(version == kVersion,
              "'" << path << "' has unsupported version " << version);
  const auto ndim = read_pod<std::uint32_t>(is);
  FHDNN_CHECK(ndim <= 8, "'" << path << "' has implausible rank " << ndim);
  Shape shape;
  for (std::uint32_t i = 0; i < ndim; ++i) {
    shape.push_back(read_pod<std::int64_t>(is));
    FHDNN_CHECK(shape.back() > 0 && shape.back() < (1LL << 40),
                "'" << path << "' has implausible dim " << shape.back());
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data().data()),
          static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  FHDNN_CHECK(static_cast<bool>(is), "truncated tensor data in '" << path << "'");
  t.assert_invariant();
  return t;
}

}  // namespace fhdnn::io
