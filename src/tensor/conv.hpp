// Convolution and pooling primitives (im2col based).
//
// Layouts: activations are (N, C, H, W); conv weights are
// (out_channels, in_channels, kh, kw); pooling is per-channel.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fhdnn::ops {

struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;

  std::int64_t out_size(std::int64_t in) const {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// Unfold x (N,C,H,W) into columns: result is
/// (N * out_h * out_w, C * kh * kw); each row is one receptive field.
Tensor im2col(const Tensor& x, const Conv2dSpec& spec);

/// Fold columns back, accumulating overlaps — adjoint of im2col. `n`, `h`,
/// `w` give the original input geometry.
Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::int64_t n,
              std::int64_t h, std::int64_t w);

/// y = conv2d(x, weight) + bias. weight is (OC, IC, k, k), bias is (OC).
Tensor conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec);

struct Conv2dGrads {
  Tensor grad_input;
  Tensor grad_weight;
  Tensor grad_bias;
};

/// Gradients of conv2d given upstream grad_out (N, OC, oh, ow) and the
/// forward input x.
Conv2dGrads conv2d_backward(const Tensor& grad_out, const Tensor& x,
                            const Tensor& weight, const Conv2dSpec& spec);

/// 2x2 (or kxk) max pooling with stride == kernel.
/// Returns pooled output and the flat argmax index per output element
/// (into the input tensor) for the backward pass.
struct MaxPoolResult {
  Tensor output;
  std::vector<std::int64_t> argmax;  // size == output.numel()
};
MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t kernel);

/// Scatter upstream grads through the recorded argmax indices.
Tensor maxpool2d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape);

/// Global average pool: (N, C, H, W) -> (N, C).
Tensor global_avgpool_forward(const Tensor& x);

/// Backward of global average pool.
Tensor global_avgpool_backward(const Tensor& grad_out,
                               const Shape& input_shape);

}  // namespace fhdnn::ops
