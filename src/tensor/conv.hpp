// Convolution and pooling primitives (im2col based).
//
// Layouts: activations are (N, C, H, W); conv weights are
// (out_channels, in_channels, kh, kw); pooling is per-channel.
//
// Like tensor/ops.hpp, every kernel has an explicit-output `_into` variant
// (allocation-free: scratch comes from the caller's util::Workspace arena)
// and a value-returning wrapper that allocates results and borrows the
// calling thread's arena for scratch. Both forms run identical loops with
// identical parallel grains, so they are bit-for-bit interchangeable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/view.hpp"

namespace fhdnn::util {
class Workspace;
}  // namespace fhdnn::util

namespace fhdnn::ops {

struct Conv2dSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 1;

  std::int64_t out_size(std::int64_t in) const {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// Unfold x (N,C,H,W) into columns: result is
/// (N * out_h * out_w, C * kh * kw); each row is one receptive field.
/// Aliasing: cols must not overlap x (throws on overlap).
Tensor im2col(const Tensor& x, const Conv2dSpec& spec);
void im2col_into(ConstTensorView x, const Conv2dSpec& spec, TensorView cols);

/// Fold columns back, accumulating overlaps — adjoint of im2col. `n`, `h`,
/// `w` give the original input geometry. The `_into` form zero-fills the
/// output image first.
/// Aliasing: x must not overlap cols (throws on overlap).
Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::int64_t n,
              std::int64_t h, std::int64_t w);
void col2im_into(ConstTensorView cols, const Conv2dSpec& spec, std::int64_t n,
                 std::int64_t h, std::int64_t w, TensorView x);

/// y = conv2d(x, weight) + bias. weight is (OC, IC, k, k), bias is (OC).
/// The `_into` form draws its im2col/matmul scratch from `ws` (rewound on
/// return via a Workspace::Scope).
/// Aliasing: y must not overlap x, weight, or bias.
Tensor conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec);
void conv2d_forward_into(ConstTensorView x, ConstTensorView weight,
                         ConstTensorView bias, const Conv2dSpec& spec,
                         TensorView y, util::Workspace& ws);

struct Conv2dGrads {
  Tensor grad_input;
  Tensor grad_weight;
  Tensor grad_bias;
};

/// Gradients of conv2d given upstream grad_out (N, OC, oh, ow) and the
/// forward input x. The `_into` form overwrites all three outputs
/// (zero-fill + accumulate, matching the wrapper's fresh tensors bit for
/// bit); callers that accumulate across steps add the results into their
/// parameter grads themselves (ops::accumulate).
/// Aliasing: the three grad outputs must not overlap the inputs or each
/// other.
Conv2dGrads conv2d_backward(const Tensor& grad_out, const Tensor& x,
                            const Tensor& weight, const Conv2dSpec& spec);
void conv2d_backward_into(ConstTensorView grad_out, ConstTensorView x,
                          ConstTensorView weight, const Conv2dSpec& spec,
                          TensorView grad_input, TensorView grad_weight,
                          TensorView grad_bias, util::Workspace& ws);

/// 2x2 (or kxk) max pooling with stride == kernel.
/// Returns pooled output and the flat argmax index per output element
/// (into the input tensor) for the backward pass.
/// Aliasing: out must not overlap x.
struct MaxPoolResult {
  Tensor output;
  std::vector<std::int64_t> argmax;  // size == output.numel()
};
MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t kernel);
void maxpool2d_forward_into(ConstTensorView x, std::int64_t kernel,
                            TensorView out, std::span<std::int64_t> argmax);

/// Scatter upstream grads through the recorded argmax indices. The `_into`
/// form zero-fills gx (whose dims give the input geometry) first.
/// Aliasing: gx must not overlap grad_out.
Tensor maxpool2d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape);
void maxpool2d_backward_into(ConstTensorView grad_out,
                             std::span<const std::int64_t> argmax,
                             TensorView gx);

/// Global average pool: (N, C, H, W) -> (N, C).
/// Aliasing: y must not overlap x.
Tensor global_avgpool_forward(const Tensor& x);
void global_avgpool_forward_into(ConstTensorView x, TensorView y);

/// Backward of global average pool; gx carries the input geometry.
/// Aliasing: gx must not overlap grad_out.
Tensor global_avgpool_backward(const Tensor& grad_out,
                               const Shape& input_shape);
void global_avgpool_backward_into(ConstTensorView grad_out, TensorView gx);

}  // namespace fhdnn::ops
