// Free-function math on tensors: elementwise ops, matmul, reductions.
//
// Conventions: 2-d tensors are (rows, cols) row-major; batched activations
// are (N, features) or (N, C, H, W). Functions validate shapes and throw
// fhdnn::Error on mismatch.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fhdnn::ops {

/// c = a + b (elementwise, same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// c = a * b (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * alpha.
Tensor scale(const Tensor& a, float alpha);

/// Matrix product of a (m x k) and b (k x n) -> (m x n). Cache-blocked ikj
/// loop order; the NN layers route all their heavy lifting through here.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Matrix product with b transposed: a (m x k) * b^T where b is (n x k).
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// Matrix product with a transposed: a^T * b where a is (k x m), b is (k x n).
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// Transpose of a 2-d tensor.
Tensor transpose(const Tensor& a);

/// y = x * W^T + bias for batched rows: x (N x in), W (out x in), bias (out).
Tensor linear_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias);

/// Row-wise argmax of a 2-d tensor -> one index per row.
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// Row-wise softmax of a 2-d tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Sum over dimension 0 of a 2-d tensor -> 1-d of size cols.
Tensor sum_rows(const Tensor& a);

/// Dot product of two 1-d tensors (or equal-numel tensors, flattened).
double dot(const Tensor& a, const Tensor& b);

/// Cosine similarity of two flattened tensors; 0 if either is all-zero.
double cosine_similarity(const Tensor& a, const Tensor& b);

/// Elementwise ReLU (out of place) and its mask-based backward.
Tensor relu(const Tensor& x);
/// grad_in = grad_out where x > 0 else 0.
Tensor relu_backward(const Tensor& grad_out, const Tensor& x);

}  // namespace fhdnn::ops
