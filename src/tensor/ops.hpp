// Free-function math on tensors: elementwise ops, matmul, reductions.
//
// Conventions: 2-d tensors are (rows, cols) row-major; batched activations
// are (N, features) or (N, C, H, W). Functions validate shapes and throw
// fhdnn::Error on mismatch.
//
// Every heavy kernel exists in two forms:
//   * an explicit-output `_into` variant taking non-owning views — the
//     allocation-free primitive (outputs come from a caller-owned Tensor
//     buffer or a util::Workspace arena);
//   * a value-returning wrapper that allocates the result and delegates to
//     the `_into` core, preserved so call sites migrate incrementally.
// Both run the same loops in the same order with the same parallel grain,
// so results are bit-identical between the two forms and across thread
// counts (see util/parallel.hpp).
//
// Aliasing: elementwise `_into` kernels (add/sub/mul/scale/relu family,
// softmax_rows) read each element before writing it and therefore accept
// out aliasing an input. The matmul family, transpose, and sum_rows read
// inputs after writing out and CHECK that out does not overlap an input.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/view.hpp"

namespace fhdnn::ops {

/// c = a + b (elementwise, same shape).
/// Aliasing: out may alias a and/or b (each element is read before written).
Tensor add(const Tensor& a, const Tensor& b);
void add_into(ConstTensorView a, ConstTensorView b, TensorView out);
/// c = a - b.
/// Aliasing: out may alias a and/or b.
Tensor sub(const Tensor& a, const Tensor& b);
void sub_into(ConstTensorView a, ConstTensorView b, TensorView out);
/// c = a * b (Hadamard).
/// Aliasing: out may alias a and/or b.
Tensor mul(const Tensor& a, const Tensor& b);
void mul_into(ConstTensorView a, ConstTensorView b, TensorView out);
/// c = a * alpha.
/// Aliasing: out may alias a (in-place scale).
Tensor scale(const Tensor& a, float alpha);
void scale_into(ConstTensorView a, float alpha, TensorView out);

/// y += x elementwise (same numel). The parameter-gradient accumulation
/// primitive; bit-identical to Tensor::axpy(1.0F, x).
void accumulate(TensorView y, ConstTensorView x);

/// Matrix product of a (m x k) and b (k x n) -> (m x n). Cache-blocked ikj
/// loop order; the NN layers route all their heavy lifting through here.
/// The `_into` form zero-fills out first (the accumulation identity).
/// Aliasing: out must not overlap a or b (throws on overlap).
Tensor matmul(const Tensor& a, const Tensor& b);
void matmul_into(ConstTensorView a, ConstTensorView b, TensorView out);

/// Matrix product with b transposed: a (m x k) * b^T where b is (n x k).
/// Aliasing: out must not overlap a or b (throws on overlap).
Tensor matmul_bt(const Tensor& a, const Tensor& b);
void matmul_bt_into(ConstTensorView a, ConstTensorView b, TensorView out);

/// Matrix product with a transposed: a^T * b where a is (k x m), b is (k x n).
/// The `_into` form zero-fills out first.
/// Aliasing: out must not overlap a or b (throws on overlap).
Tensor matmul_at(const Tensor& a, const Tensor& b);
void matmul_at_into(ConstTensorView a, ConstTensorView b, TensorView out);

/// Transpose of a 2-d tensor.
/// Aliasing: out must not overlap a (throws on overlap).
Tensor transpose(const Tensor& a);
void transpose_into(ConstTensorView a, TensorView out);

/// y = x * W^T + bias for batched rows: x (N x in), W (out x in), bias (out).
/// Aliasing: out must not overlap x, weight, or bias (throws on overlap).
Tensor linear_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias);
void linear_forward_into(ConstTensorView x, ConstTensorView weight,
                         ConstTensorView bias, TensorView out);

/// Row-wise argmax of a 2-d tensor -> one index per row.
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// Row-wise softmax of a 2-d tensor (numerically stabilized).
/// Aliasing: out may alias logits (row max is taken before any write).
Tensor softmax_rows(const Tensor& logits);
void softmax_rows_into(ConstTensorView logits, TensorView out);

/// Sum over dimension 0 of a 2-d tensor -> 1-d of size cols.
/// The `_into` form zero-fills out first.
/// Aliasing: out must not overlap a (throws on overlap).
Tensor sum_rows(const Tensor& a);
void sum_rows_into(ConstTensorView a, TensorView out);

/// Dot product of two 1-d tensors (or equal-numel tensors, flattened).
double dot(const Tensor& a, const Tensor& b);

/// Cosine similarity of two flattened tensors; 0 if either is all-zero.
double cosine_similarity(const Tensor& a, const Tensor& b);

/// Elementwise ReLU (out of place) and its mask-based backward.
/// Aliasing: out may alias x.
Tensor relu(const Tensor& x);
void relu_into(ConstTensorView x, TensorView out);
/// grad_in = grad_out where x > 0 else 0.
/// Aliasing: out may alias grad_out and/or x.
Tensor relu_backward(const Tensor& grad_out, const Tensor& x);
void relu_backward_into(ConstTensorView grad_out, ConstTensorView x,
                        TensorView out);

}  // namespace fhdnn::ops
