// Dense row-major float32 tensor.
//
// This is the numeric substrate for the CNN baselines and the HD encoder.
// Scope is deliberately small: contiguous storage, up to 4 dimensions in
// practice (N, C, H, W), value semantics, and bounds-checked indexing.
// Heavy math lives in tensor/ops.hpp and tensor/conv.hpp as free functions.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace fhdnn {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (1 for the empty shape). Throws
/// fhdnn::Error on non-positive dims and on int64 overflow of the product.
std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" style rendering for diagnostics.
std::string shape_to_string(const Shape& shape);

class Rng;

/// Contiguous row-major float tensor with value semantics.
class Tensor {
 public:
  /// Empty 0-d tensor holding a single zero. (Convenient as a default.)
  Tensor();

  /// Zero-initialized tensor of the given shape. All dims must be positive.
  explicit Tensor(Shape shape);

  /// Tensor with the given shape adopting `values` (size must match).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// I.i.d. N(0, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0F);
  /// I.i.d. U[lo, hi).
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0F, float hi = 1.0F);
  /// 1-d tensor from an explicit list.
  static Tensor from(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t ndim() const { return static_cast<std::int64_t>(shape_.size()); }
  /// Size of dimension i; negative i counts from the back.
  std::int64_t dim(std::int64_t i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  /// Mutable raw vector access (for serialization layers).
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  /// Flat element access, bounds-checked.
  float& at(std::int64_t i);
  float at(std::int64_t i) const;

  /// Multi-dimensional access, bounds-checked, up to 4 indices.
  float& operator()(std::int64_t i0);
  float& operator()(std::int64_t i0, std::int64_t i1);
  float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2);
  float& operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                    std::int64_t i3);
  float operator()(std::int64_t i0) const;
  float operator()(std::int64_t i0, std::int64_t i1) const;
  float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
  float operator()(std::int64_t i0, std::int64_t i1, std::int64_t i2,
                   std::int64_t i3) const;

  /// Return a tensor with the same data and a new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  /// Resize this tensor's buffer to the given shape, reusing existing
  /// capacity when possible (no heap traffic once capacity suffices —
  /// layers use this for their steady-state output/cache buffers).
  /// Contents are unspecified after a shape change and untouched when the
  /// shape already matches.
  void ensure_shape(std::initializer_list<std::int64_t> dims);
  void ensure_shape(const Shape& shape);

  /// Check the shape↔data invariant (`data_.size() == shape_numel(shape_)`)
  /// and throw fhdnn::Error if it is broken. `vec()` hands out the raw
  /// vector for serialization layers, which could resize it behind the
  /// shape's back — deserialization paths call this after touching it.
  void assert_invariant() const;

  /// In-place fills.
  void fill(float value);
  void zero() { fill(0.0F); }

  /// Sum of all elements / mean / min / max / L2 norm.
  double sum() const;
  double mean() const;
  float min() const;
  float max() const;
  double l2_norm() const;

  /// a += alpha * b elementwise (shapes must match).
  void axpy(float alpha, const Tensor& b);
  /// a *= alpha.
  void scale(float alpha);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::int64_t flat_index(std::span<const std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fhdnn
