#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fhdnn::ops {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FHDNN_CHECK(a.same_shape(b), op << " shape mismatch: "
                                  << shape_to_string(a.shape()) << " vs "
                                  << shape_to_string(b.shape()));
}

void check_2d(const Tensor& a, const char* op) {
  FHDNN_CHECK(a.ndim() == 2, op << " expects a 2-d tensor, got "
                                << shape_to_string(a.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor c = a;
  c.axpy(1.0F, b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor c = a;
  c.axpy(-1.0F, b);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] *= bd[i];
  return c;
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor c = a;
  c.scale(alpha);
  return c;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul");
  check_2d(b, "matmul");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FHDNN_CHECK(b.dim(0) == k, "matmul inner dims: " << shape_to_string(a.shape())
                                                   << " x "
                                                   << shape_to_string(b.shape()));
  Tensor c(Shape{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // ikj order: unit-stride inner loop over both b and c rows. Each output
  // row is owned by exactly one chunk, so the parallel schedule is
  // bit-identical to the serial one. No zero-skip: 0 * Inf and 0 * NaN must
  // propagate NaN per IEEE-754 (the channel models rely on it).
  parallel::parallel_for(0, m, parallel::grain_for(k * n),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = pb + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_bt");
  check_2d(b, "matmul_bt");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FHDNN_CHECK(b.dim(1) == k,
              "matmul_bt inner dims: " << shape_to_string(a.shape()) << " x "
                                       << shape_to_string(b.shape()) << "^T");
  Tensor c(Shape{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  parallel::parallel_for(0, m, parallel::grain_for(k * n),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        double acc = 0.0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<double>(arow[kk]) * brow[kk];
        }
        crow[j] = static_cast<float>(acc);
      }
    }
  });
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_at");
  check_2d(b, "matmul_at");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  FHDNN_CHECK(b.dim(0) == k,
              "matmul_at inner dims: " << shape_to_string(a.shape()) << "^T x "
                                       << shape_to_string(b.shape()));
  Tensor c(Shape{m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // i-outer so each output row is owned by one chunk; the per-element
  // accumulation order (kk ascending) matches the serial kk-outer loop, so
  // results are bit-identical. No zero-skip (IEEE NaN/Inf propagation).
  parallel::parallel_for(0, m, parallel::grain_for(k * n),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = pa[kk * m + i];
        const float* brow = pb + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor transpose(const Tensor& a) {
  check_2d(a, "transpose");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor t(Shape{n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) t(j, i) = a(i, j);
  }
  return t;
}

Tensor linear_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias) {
  check_2d(x, "linear_forward");
  check_2d(weight, "linear_forward");
  FHDNN_CHECK(bias.ndim() == 1 && bias.dim(0) == weight.dim(0),
              "linear bias shape " << shape_to_string(bias.shape()));
  Tensor y = matmul_bt(x, weight);
  const std::int64_t n = y.dim(0), out = y.dim(1);
  parallel::parallel_for(0, n, parallel::grain_for(out),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t j = 0; j < out; ++j) y(i, j) += bias(j);
    }
  });
  return y;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  check_2d(logits, "argmax_rows");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    float best_v = logits(i, 0);
    for (std::int64_t j = 1; j < c; ++j) {
      if (logits(i, j) > best_v) {
        best_v = logits(i, j);
        best = j;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  check_2d(logits, "softmax_rows");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor p(logits.shape());
  parallel::parallel_for(0, n, parallel::grain_for(4 * c),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float mx = logits(i, 0);
      for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, logits(i, j));
      double z = 0.0;
      for (std::int64_t j = 0; j < c; ++j) {
        const float e = std::exp(logits(i, j) - mx);
        p(i, j) = e;
        z += e;
      }
      const float inv = static_cast<float>(1.0 / z);
      for (std::int64_t j = 0; j < c; ++j) p(i, j) *= inv;
    }
  });
  return p;
}

Tensor sum_rows(const Tensor& a) {
  check_2d(a, "sum_rows");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  Tensor out(Shape{c});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) out(j) += a(i, j);
  }
  return out;
}

double dot(const Tensor& a, const Tensor& b) {
  FHDNN_CHECK(a.numel() == b.numel(), "dot numel mismatch");
  double s = 0.0;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    s += static_cast<double>(ad[i]) * bd[i];
  }
  return s;
}

double cosine_similarity(const Tensor& a, const Tensor& b) {
  const double na = a.l2_norm();
  const double nb = b.l2_norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

Tensor relu(const Tensor& x) {
  Tensor y = x;
  auto yd = y.data();
  parallel::parallel_for(0, static_cast<std::int64_t>(yd.size()),
                         parallel::grain_for(1),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      yd[static_cast<std::size_t>(i)] =
          std::max(yd[static_cast<std::size_t>(i)], 0.0F);
    }
  });
  return y;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& x) {
  FHDNN_CHECK(grad_out.same_shape(x), "relu_backward shape mismatch");
  Tensor g = grad_out;
  auto gd = g.data();
  auto xd = x.data();
  parallel::parallel_for(0, static_cast<std::int64_t>(gd.size()),
                         parallel::grain_for(1),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      if (xd[static_cast<std::size_t>(i)] <= 0.0F) {
        gd[static_cast<std::size_t>(i)] = 0.0F;
      }
    }
  });
  return g;
}

}  // namespace fhdnn::ops
