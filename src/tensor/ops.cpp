#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace fhdnn::ops {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FHDNN_CHECK(a.same_shape(b), op << " shape mismatch: "
                                  << shape_to_string(a.shape()) << " vs "
                                  << shape_to_string(b.shape()));
}

void check_2d(ConstTensorView a, const char* op) {
  FHDNN_CHECK(a.ndim() == 2, op << " expects a 2-d tensor, got "
                                << a.shape_string());
}

void check_same_dims(ConstTensorView a, ConstTensorView b, const char* op) {
  bool same = a.ndim() == b.ndim();
  for (std::int64_t i = 0; same && i < a.ndim(); ++i) {
    same = a.dim(i) == b.dim(i);
  }
  FHDNN_CHECK(same, op << " shape mismatch: " << a.shape_string() << " vs "
                       << b.shape_string());
}

void check_no_alias(TensorView out, ConstTensorView in, const char* op) {
  FHDNN_CHECK(!views_overlap(out, in),
              op << " output must not alias an input");
}


/// FHDNN_CHECKED entry guard for `_into` kernels: views must be live (a
/// moved-from or default-constructed Tensor yields a null data pointer the
/// shape checks alone cannot distinguish from a valid buffer).
template <typename... Views>
void checked_entry(const char* op, const Views&... views) {
  (void)op;
  FHDNN_CHECKED_ASSERT(((views.data() != nullptr) && ...),
                       op << "_into kernel received a null view");
}

}  // namespace

void add_into(ConstTensorView a, ConstTensorView b, TensorView out) {
  checked_entry("add", a, b, out);
  check_same_dims(a, b, "add");
  check_same_dims(a, out, "add");
  simd::kernels().add_f32(out.data(), a.data(), b.data(), a.numel());
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor c(a.shape());
  add_into(a, b, c);
  return c;
}

void sub_into(ConstTensorView a, ConstTensorView b, TensorView out) {
  checked_entry("sub", a, b, out);
  check_same_dims(a, b, "sub");
  check_same_dims(a, out, "sub");
  simd::kernels().sub_f32(out.data(), a.data(), b.data(), a.numel());
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor c(a.shape());
  sub_into(a, b, c);
  return c;
}

void mul_into(ConstTensorView a, ConstTensorView b, TensorView out) {
  checked_entry("mul", a, b, out);
  check_same_dims(a, b, "mul");
  check_same_dims(a, out, "mul");
  simd::kernels().mul_f32(out.data(), a.data(), b.data(), a.numel());
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor c(a.shape());
  mul_into(a, b, c);
  return c;
}

void scale_into(ConstTensorView a, float alpha, TensorView out) {
  checked_entry("scale", a, out);
  check_same_dims(a, out, "scale");
  simd::kernels().scale_f32(out.data(), a.data(), alpha, a.numel());
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor c(a.shape());
  scale_into(a, alpha, c);
  return c;
}

void accumulate(TensorView y, ConstTensorView x) {
  checked_entry("accumulate", y, x);
  FHDNN_CHECK(y.numel() == x.numel(),
              "accumulate numel mismatch: " << y.shape_string() << " vs "
                                            << x.shape_string());
  // y += 1.0f * x via the dispatched axpy: the multiply by 1.0f is exact
  // for every float (including NaN/Inf), so this is the same op sequence
  // the plain += loop performed.
  simd::kernels().axpy_f32(y.data(), 1.0F, x.data(), y.numel());
}

namespace {

/// c += a * b, ikj order. Callers must pre-zero c for a plain product.
void matmul_accumulate(const float* pa, const float* pb, float* pc,
                       std::int64_t m, std::int64_t k, std::int64_t n) {
  // ikj order: unit-stride inner loop over both b and c rows, dispatched
  // to the SIMD axpy (crow[j] += av * brow[j] lane-by-lane, no FMA — see
  // util/simd.hpp), so results stay bit-identical across tiers. Each
  // output row is owned by exactly one chunk, so the parallel schedule is
  // bit-identical to the serial one. No zero-skip: 0 * Inf and 0 * NaN
  // must propagate NaN per IEEE-754 (the channel models rely on it).
  const auto axpy = simd::kernels().axpy_f32;
  parallel::parallel_for(0, m, parallel::grain_for(k * n),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        axpy(crow, arow[kk], pb + kk * n, n);
      }
    }
  });
}

}  // namespace

void matmul_into(ConstTensorView a, ConstTensorView b, TensorView out) {
  checked_entry("matmul", a, b, out);
  check_2d(a, "matmul");
  check_2d(b, "matmul");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FHDNN_CHECK(b.dim(0) == k, "matmul inner dims: " << a.shape_string() << " x "
                                                   << b.shape_string());
  FHDNN_CHECK(out.ndim() == 2 && out.dim(0) == m && out.dim(1) == n,
              "matmul output shape " << out.shape_string());
  check_no_alias(out, a, "matmul");
  check_no_alias(out, b, "matmul");
  std::fill(out.data(), out.data() + out.numel(), 0.0F);
  matmul_accumulate(a.data(), b.data(), out.data(), m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul");
  check_2d(b, "matmul");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FHDNN_CHECK(b.dim(0) == k, "matmul inner dims: " << shape_to_string(a.shape())
                                                   << " x "
                                                   << shape_to_string(b.shape()));
  Tensor c(Shape{m, n});  // zero-initialized
  matmul_accumulate(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  return c;
}

void matmul_bt_into(ConstTensorView a, ConstTensorView b, TensorView out) {
  checked_entry("matmul_bt", a, b, out);
  check_2d(a, "matmul_bt");
  check_2d(b, "matmul_bt");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FHDNN_CHECK(b.dim(1) == k, "matmul_bt inner dims: " << a.shape_string()
                                                      << " x "
                                                      << b.shape_string()
                                                      << "^T");
  FHDNN_CHECK(out.ndim() == 2 && out.dim(0) == m && out.dim(1) == n,
              "matmul_bt output shape " << out.shape_string());
  check_no_alias(out, a, "matmul_bt");
  check_no_alias(out, b, "matmul_bt");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // Deliberately NOT dispatched: each output element is one sequential
  // double-precision accumulation, and no lane-parallel kernel can
  // reproduce that op-for-op (any widening splits the sum order). The
  // hexfloat goldens pin this exact reduction, so it stays scalar.
  parallel::parallel_for(0, m, parallel::grain_for(k * n),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        double acc = 0.0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<double>(arow[kk]) * brow[kk];
        }
        crow[j] = static_cast<float>(acc);
      }
    }
  });
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_bt");
  check_2d(b, "matmul_bt");
  Tensor c(Shape{a.dim(0), b.dim(0)});
  matmul_bt_into(a, b, c);
  return c;
}

void matmul_at_into(ConstTensorView a, ConstTensorView b, TensorView out) {
  checked_entry("matmul_at", a, b, out);
  check_2d(a, "matmul_at");
  check_2d(b, "matmul_at");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  FHDNN_CHECK(b.dim(0) == k, "matmul_at inner dims: " << a.shape_string()
                                                      << "^T x "
                                                      << b.shape_string());
  FHDNN_CHECK(out.ndim() == 2 && out.dim(0) == m && out.dim(1) == n,
              "matmul_at output shape " << out.shape_string());
  check_no_alias(out, a, "matmul_at");
  check_no_alias(out, b, "matmul_at");
  std::fill(out.data(), out.data() + out.numel(), 0.0F);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // i-outer so each output row is owned by one chunk; the per-element
  // accumulation order (kk ascending) matches the serial kk-outer loop, so
  // results are bit-identical — and the dispatched axpy preserves that
  // order lane-by-lane. No zero-skip (IEEE NaN/Inf propagation).
  const auto axpy = simd::kernels().axpy_f32;
  parallel::parallel_for(0, m, parallel::grain_for(k * n),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        axpy(crow, pa[kk * m + i], pb + kk * n, n);
      }
    }
  });
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  check_2d(a, "matmul_at");
  check_2d(b, "matmul_at");
  Tensor c(Shape{a.dim(1), b.dim(1)});
  matmul_at_into(a, b, c);
  return c;
}

void transpose_into(ConstTensorView a, TensorView out) {
  checked_entry("transpose", a, out);
  check_2d(a, "transpose");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  FHDNN_CHECK(out.ndim() == 2 && out.dim(0) == n && out.dim(1) == m,
              "transpose output shape " << out.shape_string());
  check_no_alias(out, a, "transpose");
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
}

Tensor transpose(const Tensor& a) {
  check_2d(a, "transpose");
  Tensor t(Shape{a.dim(1), a.dim(0)});
  transpose_into(a, t);
  return t;
}

void linear_forward_into(ConstTensorView x, ConstTensorView weight,
                         ConstTensorView bias, TensorView out) {
  checked_entry("linear_forward", x, weight, bias, out);
  check_2d(x, "linear_forward");
  check_2d(weight, "linear_forward");
  FHDNN_CHECK(bias.ndim() == 1 && bias.dim(0) == weight.dim(0),
              "linear bias shape " << bias.shape_string());
  check_no_alias(out, bias, "linear_forward");
  matmul_bt_into(x, weight, out);
  const std::int64_t n = out.dim(0), cols = out.dim(1);
  float* py = out.data();
  const float* pb = bias.data();
  const auto axpy = simd::kernels().axpy_f32;
  parallel::parallel_for(0, n, parallel::grain_for(cols),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      // row += 1.0f * bias — the 1.0f multiply is exact, so this matches
      // the former plain += loop bit-for-bit.
      axpy(py + i * cols, 1.0F, pb, cols);
    }
  });
}

Tensor linear_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias) {
  check_2d(x, "linear_forward");
  check_2d(weight, "linear_forward");
  Tensor y(Shape{x.dim(0), weight.dim(0)});
  linear_forward_into(x, weight, bias, y);
  return y;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  check_2d(logits, "argmax_rows");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    float best_v = logits(i, 0);
    for (std::int64_t j = 1; j < c; ++j) {
      if (logits(i, j) > best_v) {
        best_v = logits(i, j);
        best = j;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

void softmax_rows_into(ConstTensorView logits, TensorView out) {
  checked_entry("softmax_rows", logits, out);
  check_2d(logits, "softmax_rows");
  check_same_dims(logits, out, "softmax_rows");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  const float* pl = logits.data();
  float* pp = out.data();
  parallel::parallel_for(0, n, parallel::grain_for(4 * c),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* lrow = pl + i * c;
      float* prow = pp + i * c;
      float mx = lrow[0];
      for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, lrow[j]);
      double z = 0.0;
      for (std::int64_t j = 0; j < c; ++j) {
        const float e = std::exp(lrow[j] - mx);
        prow[j] = e;
        z += e;
      }
      const float inv = static_cast<float>(1.0 / z);
      for (std::int64_t j = 0; j < c; ++j) prow[j] *= inv;
    }
  });
}

Tensor softmax_rows(const Tensor& logits) {
  check_2d(logits, "softmax_rows");
  Tensor p(logits.shape());
  softmax_rows_into(logits, p);
  return p;
}

void sum_rows_into(ConstTensorView a, TensorView out) {
  checked_entry("sum_rows", a, out);
  check_2d(a, "sum_rows");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  FHDNN_CHECK(out.ndim() == 1 && out.dim(0) == c,
              "sum_rows output shape " << out.shape_string());
  check_no_alias(out, a, "sum_rows");
  std::fill(out.data(), out.data() + out.numel(), 0.0F);
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = pa + i * c;
    for (std::int64_t j = 0; j < c; ++j) po[j] += row[j];
  }
}

Tensor sum_rows(const Tensor& a) {
  check_2d(a, "sum_rows");
  Tensor out(Shape{a.dim(1)});
  sum_rows_into(a, out);
  return out;
}

double dot(const Tensor& a, const Tensor& b) {
  FHDNN_CHECK(a.numel() == b.numel(), "dot numel mismatch");
  double s = 0.0;
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    s += static_cast<double>(ad[i]) * bd[i];
  }
  return s;
}

double cosine_similarity(const Tensor& a, const Tensor& b) {
  const double na = a.l2_norm();
  const double nb = b.l2_norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

// relu is deliberately excluded from SIMD dispatch: vector max
// instructions (e.g. _mm256_max_ps) pick the *second* operand when either
// input is NaN and order -0.0F/+0.0F by operand position, which does not
// match std::max(px[i], 0.0F) — the scalar loop is the semantics.
void relu_into(ConstTensorView x, TensorView out) {
  checked_entry("relu", x, out);
  FHDNN_CHECK(x.numel() == out.numel(),
              "relu output shape " << out.shape_string());
  const float* px = x.data();
  float* po = out.data();
  parallel::parallel_for(0, x.numel(), parallel::grain_for(1),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) po[i] = std::max(px[i], 0.0F);
  });
}

Tensor relu(const Tensor& x) {
  Tensor y(x.shape());
  relu_into(x, y);
  return y;
}

void relu_backward_into(ConstTensorView grad_out, ConstTensorView x,
                        TensorView out) {
  checked_entry("relu_backward", grad_out, x, out);
  check_same_dims(grad_out, x, "relu_backward");
  FHDNN_CHECK(grad_out.numel() == out.numel(),
              "relu_backward output shape " << out.shape_string());
  const float* pg = grad_out.data();
  const float* px = x.data();
  float* po = out.data();
  parallel::parallel_for(0, grad_out.numel(), parallel::grain_for(1),
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      po[i] = px[i] <= 0.0F ? 0.0F : pg[i];
    }
  });
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& x) {
  FHDNN_CHECK(grad_out.same_shape(x), "relu_backward shape mismatch");
  Tensor g(grad_out.shape());
  relu_backward_into(grad_out, x, g);
  return g;
}

}  // namespace fhdnn::ops
