// Non-owning tensor views over contiguous row-major float storage.
//
// `TensorView` / `ConstTensorView` are the explicit-output ("_into") kernel
// currency: a raw pointer plus an inline fixed-capacity shape. They hold the
// dims in a `std::array` rather than a `Shape` (std::vector) on purpose —
// constructing or copying a view must never touch the heap, or the
// zero-allocation steady-state contract (DESIGN.md §9) would leak right back
// in at every kernel call.
//
// Views alias; they do not own. The caller guarantees the backing storage
// (a Tensor or a Workspace block) outlives the view. Kernels that cannot
// tolerate aliased inputs/outputs (the matmul family, im2col/col2im) check
// for pointer-range overlap and throw.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>

#include "tensor/tensor.hpp"
#include "util/error.hpp"

namespace fhdnn {

/// Views carry at most 4 dims — the library's (N, C, H, W) ceiling.
inline constexpr std::int64_t kMaxViewDims = 4;

namespace detail {

/// Inline shape for views: fixed-capacity dims + ndim + cached numel.
struct ViewDims {
  std::array<std::int64_t, kMaxViewDims> d{};
  std::int64_t n = 0;
  std::int64_t numel = 1;
};

template <typename It>
ViewDims make_view_dims(It begin, It end) {
  ViewDims out;
  for (It it = begin; it != end; ++it) {
    FHDNN_CHECK(out.n < kMaxViewDims,
                "tensor view supports at most " << kMaxViewDims << " dims");
    FHDNN_CHECK(*it > 0, "view dim " << *it << " must be positive");
    out.d[static_cast<std::size_t>(out.n++)] = *it;
    out.numel *= *it;
  }
  return out;
}

inline ViewDims make_view_dims(std::initializer_list<std::int64_t> dims) {
  return make_view_dims(dims.begin(), dims.end());
}

inline ViewDims make_view_dims(const Shape& shape) {
  return make_view_dims(shape.begin(), shape.end());
}

inline std::string view_dims_to_string(const ViewDims& dims) {
  std::ostringstream os;
  os << '[';
  for (std::int64_t i = 0; i < dims.n; ++i) {
    if (i) os << ", ";
    os << dims.d[static_cast<std::size_t>(i)];
  }
  os << ']';
  return os.str();
}

}  // namespace detail

/// Read-only non-owning view of contiguous row-major float data.
class ConstTensorView {
 public:
  ConstTensorView(const float* data, std::initializer_list<std::int64_t> dims)
      : data_(data), dims_(detail::make_view_dims(dims)) {}

  ConstTensorView(const float* data, const detail::ViewDims& dims)
      : data_(data), dims_(dims) {}

  /// Implicit: a Tensor is viewable wherever a view is expected.
  ConstTensorView(const Tensor& t)  // NOLINT(google-explicit-constructor)
      : data_(t.data().data()), dims_(detail::make_view_dims(t.shape())) {}

  const float* data() const { return data_; }
  std::int64_t ndim() const { return dims_.n; }
  std::int64_t numel() const { return dims_.numel; }
  std::int64_t dim(std::int64_t i) const {
    FHDNN_CHECK(i >= 0 && i < dims_.n,
                "view dim " << i << " out of range " << dims_.n);
    return dims_.d[static_cast<std::size_t>(i)];
  }
  const detail::ViewDims& dims() const { return dims_; }
  std::string shape_string() const {
    return detail::view_dims_to_string(dims_);
  }

 private:
  const float* data_;
  detail::ViewDims dims_;
};

/// Mutable non-owning view of contiguous row-major float data.
class TensorView {
 public:
  TensorView(float* data, std::initializer_list<std::int64_t> dims)
      : data_(data), dims_(detail::make_view_dims(dims)) {}

  TensorView(float* data, const detail::ViewDims& dims)
      : data_(data), dims_(dims) {}

  /// Implicit: a mutable Tensor is viewable wherever an output is expected.
  TensorView(Tensor& t)  // NOLINT(google-explicit-constructor)
      : data_(t.data().data()), dims_(detail::make_view_dims(t.shape())) {}

  operator ConstTensorView() const {  // NOLINT(google-explicit-constructor)
    return {data_, dims_};
  }

  float* data() const { return data_; }
  std::int64_t ndim() const { return dims_.n; }
  std::int64_t numel() const { return dims_.numel; }
  std::int64_t dim(std::int64_t i) const {
    FHDNN_CHECK(i >= 0 && i < dims_.n,
                "view dim " << i << " out of range " << dims_.n);
    return dims_.d[static_cast<std::size_t>(i)];
  }
  const detail::ViewDims& dims() const { return dims_; }
  std::string shape_string() const {
    return detail::view_dims_to_string(dims_);
  }

 private:
  float* data_;
  detail::ViewDims dims_;
};

/// True when the two views' element ranges intersect. Used by kernels whose
/// loops read inputs after writing outputs and therefore forbid aliasing.
inline bool views_overlap(ConstTensorView a, ConstTensorView b) {
  const float* a0 = a.data();
  const float* a1 = a.data() + a.numel();
  const float* b0 = b.data();
  const float* b1 = b.data() + b.numel();
  return a0 < b1 && b0 < a1;
}

}  // namespace fhdnn
