// Tensor persistence: a minimal, versioned binary container so trained
// HD prototypes and NN states can be checkpointed and shipped.
//
// Format (little-endian): magic "FHDT", u32 version, u32 ndim,
// i64 dims[ndim], f32 data[numel].
#pragma once

#include <string>

#include "tensor/tensor.hpp"

namespace fhdnn::io {

/// Write `t` to `path`; throws fhdnn::Error on I/O failure.
void save_tensor(const Tensor& t, const std::string& path);

/// Read a tensor written by save_tensor; throws on missing/corrupt files.
Tensor load_tensor(const std::string& path);

}  // namespace fhdnn::io
