// Tensor persistence: a minimal, versioned binary container so trained
// HD prototypes and NN states can be checkpointed and shipped.
//
// Format (little-endian): magic "FHDT", u32 version, u32 ndim,
// i64 dims[ndim], f32 data[numel].
#pragma once

#include <cstddef>
#include <string>

#include "tensor/tensor.hpp"
#include "util/error.hpp"

namespace fhdnn::io {

/// Thrown by load_tensor on a malformed or truncated container. Carries the
/// byte offset at which decoding failed so a corrupted checkpoint can be
/// localized ("truncated tensor data at byte 52428812"), not just rejected.
/// Derives from fhdnn::Error so existing catch sites keep working.
class TensorIoError : public Error {
 public:
  TensorIoError(const std::string& message, std::size_t byte_offset)
      : Error(message), byte_offset_(byte_offset) {}

  /// Offset of the first byte that could not be decoded.
  std::size_t byte_offset() const noexcept { return byte_offset_; }

 private:
  std::size_t byte_offset_;
};

/// Write `t` to `path`; throws fhdnn::Error on I/O failure.
void save_tensor(const Tensor& t, const std::string& path);

/// Read a tensor written by save_tensor. Throws TensorIoError (with the
/// failing byte offset) on a short read, bad magic/version, implausible
/// header, or trailing bytes; the loaded tensor is invariant-checked.
Tensor load_tensor(const std::string& path);

}  // namespace fhdnn::io
