#include "tensor/conv.hpp"

#include <algorithm>
#include <limits>

#include "tensor/ops.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fhdnn::ops {

namespace {

void check_nchw(const Tensor& x, const char* op) {
  FHDNN_CHECK(x.ndim() == 4, op << " expects (N,C,H,W), got "
                                << shape_to_string(x.shape()));
}

}  // namespace

Tensor im2col(const Tensor& x, const Conv2dSpec& spec) {
  check_nchw(x, "im2col");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  FHDNN_CHECK(c == spec.in_channels, "im2col channels " << c << " != spec "
                                                        << spec.in_channels);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  FHDNN_CHECK(oh > 0 && ow > 0, "conv output collapsed to zero");
  const std::int64_t k = spec.kernel;
  Tensor cols(Shape{n * oh * ow, c * k * k});
  const float* px = x.data().data();
  float* pc = cols.data().data();
  const std::int64_t row_len = c * k * k;
  // One chunk owns a contiguous span of output rows (each row is one
  // (image, oy, ox) patch), so the parallel fill is race-free.
  parallel::parallel_for(0, n * oh * ow, parallel::grain_for(row_len),
                         [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t in = r / (oh * ow);
      const std::int64_t oy = (r / ow) % oh;
      const std::int64_t ox = r % ow;
      float* row = pc + r * row_len;
      std::int64_t col_idx = 0;
      for (std::int64_t ic = 0; ic < c; ++ic) {
        const float* chan = px + (in * c + ic) * h * w;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * spec.stride + ky - spec.padding;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * spec.stride + kx - spec.padding;
            row[col_idx++] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                 ? chan[iy * w + ix]
                                 : 0.0F;
          }
        }
      }
    }
  });
  return cols;
}

Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::int64_t n,
              std::int64_t h, std::int64_t w) {
  const std::int64_t c = spec.in_channels;
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t k = spec.kernel;
  FHDNN_CHECK(cols.ndim() == 2 && cols.dim(0) == n * oh * ow &&
                  cols.dim(1) == c * k * k,
              "col2im shape " << shape_to_string(cols.shape()));
  Tensor x(Shape{n, c, h, w});
  const float* pc = cols.data().data();
  float* px = x.data().data();
  const std::int64_t row_len = c * k * k;
  // Patches overlap within one image, so the accumulation is parallel over
  // images only — each image's scatter region is disjoint.
  parallel::parallel_for(0, n, parallel::grain_for(oh * ow * row_len),
                         [&](std::int64_t n0, std::int64_t n1) {
  for (std::int64_t in = n0; in < n1; ++in) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float* row = pc + ((in * oh + oy) * ow + ox) * row_len;
        std::int64_t col_idx = 0;
        for (std::int64_t ic = 0; ic < c; ++ic) {
          float* chan = px + (in * c + ic) * h * w;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = oy * spec.stride + ky - spec.padding;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = ox * spec.stride + kx - spec.padding;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                chan[iy * w + ix] += row[col_idx];
              }
              ++col_idx;
            }
          }
        }
      }
    }
  }
  });
  return x;
}

Tensor conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec) {
  check_nchw(x, "conv2d");
  FHDNN_CHECK(weight.ndim() == 4 && weight.dim(0) == spec.out_channels &&
                  weight.dim(1) == spec.in_channels &&
                  weight.dim(2) == spec.kernel && weight.dim(3) == spec.kernel,
              "conv2d weight shape " << shape_to_string(weight.shape()));
  FHDNN_CHECK(bias.ndim() == 1 && bias.dim(0) == spec.out_channels,
              "conv2d bias shape " << shape_to_string(bias.shape()));
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const Tensor cols = im2col(x, spec);  // (n*oh*ow, ic*k*k)
  const Tensor wmat = weight.reshaped(
      Shape{spec.out_channels, spec.in_channels * spec.kernel * spec.kernel});
  // (n*oh*ow, oc)
  Tensor out_rows = matmul_bt(cols, wmat);
  // Rearrange to (n, oc, oh, ow) and add bias; each image is private.
  Tensor y(Shape{n, spec.out_channels, oh, ow});
  parallel::parallel_for(
      0, n, parallel::grain_for(spec.out_channels * oh * ow),
      [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t in = n0; in < n1; ++in) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t r = (in * oh + oy) * ow + ox;
          for (std::int64_t oc = 0; oc < spec.out_channels; ++oc) {
            y(in, oc, oy, ox) = out_rows(r, oc) + bias(oc);
          }
        }
      }
    }
  });
  return y;
}

Conv2dGrads conv2d_backward(const Tensor& grad_out, const Tensor& x,
                            const Tensor& weight, const Conv2dSpec& spec) {
  check_nchw(grad_out, "conv2d_backward");
  check_nchw(x, "conv2d_backward");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  FHDNN_CHECK(grad_out.dim(0) == n && grad_out.dim(1) == spec.out_channels &&
                  grad_out.dim(2) == oh && grad_out.dim(3) == ow,
              "conv2d_backward grad shape " << shape_to_string(grad_out.shape()));

  // grad_out as rows: (n*oh*ow, oc); row blocks per image are disjoint.
  Tensor grows(Shape{n * oh * ow, spec.out_channels});
  parallel::parallel_for(
      0, n, parallel::grain_for(spec.out_channels * oh * ow),
      [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t in = n0; in < n1; ++in) {
      for (std::int64_t oc = 0; oc < spec.out_channels; ++oc) {
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            grows((in * oh + oy) * ow + ox, oc) = grad_out(in, oc, oy, ox);
          }
        }
      }
    }
  });

  const Tensor cols = im2col(x, spec);  // (n*oh*ow, ic*k*k)
  // grad_wmat = grows^T * cols : (oc, ic*k*k)
  Tensor grad_wmat = matmul_at(grows, cols);
  Conv2dGrads grads;
  grads.grad_weight = grad_wmat.reshaped(weight.shape());

  grads.grad_bias = Tensor(Shape{spec.out_channels});
  for (std::int64_t r = 0; r < grows.dim(0); ++r) {
    for (std::int64_t oc = 0; oc < spec.out_channels; ++oc) {
      grads.grad_bias(oc) += grows(r, oc);
    }
  }

  // grad_cols = grows * wmat : (n*oh*ow, ic*k*k); then fold back.
  const Tensor wmat = weight.reshaped(
      Shape{spec.out_channels, spec.in_channels * spec.kernel * spec.kernel});
  const Tensor grad_cols = matmul(grows, wmat);
  grads.grad_input = col2im(grad_cols, spec, n, h, w);
  return grads;
}

MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t kernel) {
  check_nchw(x, "maxpool2d");
  FHDNN_CHECK(kernel >= 1, "pool kernel " << kernel);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  FHDNN_CHECK(h % kernel == 0 && w % kernel == 0,
              "maxpool2d requires H,W divisible by kernel; got "
                  << shape_to_string(x.shape()) << " kernel " << kernel);
  const std::int64_t oh = h / kernel, ow = w / kernel;
  MaxPoolResult res{Tensor(Shape{n, c, oh, ow}), {}};
  res.argmax.resize(static_cast<std::size_t>(res.output.numel()));
  const float* px = x.data().data();
  // Parallel over (image, channel) planes; each plane writes a private
  // slice of output and argmax.
  parallel::parallel_for(0, n * c, parallel::grain_for(h * w),
                         [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t plane = p0; plane < p1; ++plane) {
      const std::int64_t in = plane / c;
      const std::int64_t ic = plane % c;
      const float* chan = px + plane * h * w;
      const std::int64_t chan_base = plane * h * w;
      std::size_t out_i = static_cast<std::size_t>(plane * oh * ow);
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t iy = oy * kernel + ky;
              const std::int64_t ix = ox * kernel + kx;
              const float v = chan[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = chan_base + iy * w + ix;
              }
            }
          }
          res.output(in, ic, oy, ox) = best;
          res.argmax[out_i++] = best_idx;
        }
      }
    }
  });
  return res;
}

Tensor maxpool2d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape) {
  FHDNN_CHECK(static_cast<std::int64_t>(argmax.size()) == grad_out.numel(),
              "maxpool backward argmax size mismatch");
  Tensor gx(input_shape);
  auto gd = grad_out.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    gx.at(argmax[i]) += gd[i];
  }
  return gx;
}

Tensor global_avgpool_forward(const Tensor& x) {
  check_nchw(x, "global_avgpool");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor y(Shape{n, c});
  const float inv = 1.0F / static_cast<float>(h * w);
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      double s = 0.0;
      for (std::int64_t iy = 0; iy < h; ++iy) {
        for (std::int64_t ix = 0; ix < w; ++ix) s += x(in, ic, iy, ix);
      }
      y(in, ic) = static_cast<float>(s) * inv;
    }
  }
  return y;
}

Tensor global_avgpool_backward(const Tensor& grad_out,
                               const Shape& input_shape) {
  FHDNN_CHECK(input_shape.size() == 4, "global_avgpool_backward input shape");
  const std::int64_t n = input_shape[0], c = input_shape[1],
                     h = input_shape[2], w = input_shape[3];
  FHDNN_CHECK(grad_out.ndim() == 2 && grad_out.dim(0) == n &&
                  grad_out.dim(1) == c,
              "global_avgpool_backward grad shape "
                  << shape_to_string(grad_out.shape()));
  Tensor gx(input_shape);
  const float inv = 1.0F / static_cast<float>(h * w);
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const float g = grad_out(in, ic) * inv;
      for (std::int64_t iy = 0; iy < h; ++iy) {
        for (std::int64_t ix = 0; ix < w; ++ix) gx(in, ic, iy, ix) = g;
      }
    }
  }
  return gx;
}

}  // namespace fhdnn::ops
