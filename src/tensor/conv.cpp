#include "tensor/conv.hpp"

#include <algorithm>
#include <limits>

#include "tensor/ops.hpp"

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/workspace.hpp"

namespace fhdnn::ops {

namespace {

void check_nchw(ConstTensorView x, const char* op) {
  FHDNN_CHECK(x.ndim() == 4, op << " expects (N,C,H,W), got "
                                << x.shape_string());
}


/// FHDNN_CHECKED entry guard (same contract as ops.cpp): `_into` kernels
/// must receive live views.
template <typename... Views>
void checked_entry(const char* op, const Views&... views) {
  (void)op;
  FHDNN_CHECKED_ASSERT(((views.data() != nullptr) && ...),
                       op << "_into kernel received a null view");
}

}  // namespace

void im2col_into(ConstTensorView x, const Conv2dSpec& spec, TensorView cols) {
  checked_entry("im2col", x, cols);
  check_nchw(x, "im2col");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  FHDNN_CHECK(c == spec.in_channels, "im2col channels " << c << " != spec "
                                                        << spec.in_channels);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  FHDNN_CHECK(oh > 0 && ow > 0, "conv output collapsed to zero");
  const std::int64_t k = spec.kernel;
  const std::int64_t row_len = c * k * k;
  FHDNN_CHECK(cols.ndim() == 2 && cols.dim(0) == n * oh * ow &&
                  cols.dim(1) == row_len,
              "im2col output shape " << cols.shape_string());
  FHDNN_CHECK(!views_overlap(cols, x),
              "im2col output must not alias the input");
  const float* px = x.data();
  float* pc = cols.data();
  // One chunk owns a contiguous span of output rows (each row is one
  // (image, oy, ox) patch), so the parallel fill is race-free.
  parallel::parallel_for(0, n * oh * ow, parallel::grain_for(row_len),
                         [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t in = r / (oh * ow);
      const std::int64_t oy = (r / ow) % oh;
      const std::int64_t ox = r % ow;
      float* row = pc + r * row_len;
      std::int64_t col_idx = 0;
      for (std::int64_t ic = 0; ic < c; ++ic) {
        const float* chan = px + (in * c + ic) * h * w;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = oy * spec.stride + ky - spec.padding;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ox * spec.stride + kx - spec.padding;
            row[col_idx++] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                 ? chan[iy * w + ix]
                                 : 0.0F;
          }
        }
      }
    }
  });
}

Tensor im2col(const Tensor& x, const Conv2dSpec& spec) {
  check_nchw(x, "im2col");
  const std::int64_t h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  FHDNN_CHECK(oh > 0 && ow > 0, "conv output collapsed to zero");
  Tensor cols(Shape{x.dim(0) * oh * ow,
                    spec.in_channels * spec.kernel * spec.kernel});
  im2col_into(x, spec, cols);
  return cols;
}

void col2im_into(ConstTensorView cols, const Conv2dSpec& spec, std::int64_t n,
                 std::int64_t h, std::int64_t w, TensorView x) {
  checked_entry("col2im", cols, x);
  const std::int64_t c = spec.in_channels;
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t k = spec.kernel;
  FHDNN_CHECK(cols.ndim() == 2 && cols.dim(0) == n * oh * ow &&
                  cols.dim(1) == c * k * k,
              "col2im shape " << cols.shape_string());
  FHDNN_CHECK(x.ndim() == 4 && x.dim(0) == n && x.dim(1) == c &&
                  x.dim(2) == h && x.dim(3) == w,
              "col2im output shape " << x.shape_string());
  FHDNN_CHECK(!views_overlap(x, cols),
              "col2im output must not alias the input");
  std::fill(x.data(), x.data() + x.numel(), 0.0F);
  const float* pc = cols.data();
  float* px = x.data();
  const std::int64_t row_len = c * k * k;
  // Patches overlap within one image, so the accumulation is parallel over
  // images only — each image's scatter region is disjoint.
  parallel::parallel_for(0, n, parallel::grain_for(oh * ow * row_len),
                         [&](std::int64_t n0, std::int64_t n1) {
  for (std::int64_t in = n0; in < n1; ++in) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float* row = pc + ((in * oh + oy) * ow + ox) * row_len;
        std::int64_t col_idx = 0;
        for (std::int64_t ic = 0; ic < c; ++ic) {
          float* chan = px + (in * c + ic) * h * w;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = oy * spec.stride + ky - spec.padding;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = ox * spec.stride + kx - spec.padding;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                chan[iy * w + ix] += row[col_idx];
              }
              ++col_idx;
            }
          }
        }
      }
    }
  }
  });
}

Tensor col2im(const Tensor& cols, const Conv2dSpec& spec, std::int64_t n,
              std::int64_t h, std::int64_t w) {
  Tensor x(Shape{n, spec.in_channels, h, w});
  col2im_into(cols, spec, n, h, w, x);
  return x;
}

void conv2d_forward_into(ConstTensorView x, ConstTensorView weight,
                         ConstTensorView bias, const Conv2dSpec& spec,
                         TensorView y, util::Workspace& ws) {
  checked_entry("conv2d_forward", x, weight, bias, y);
  check_nchw(x, "conv2d");
  FHDNN_CHECK(weight.ndim() == 4 && weight.dim(0) == spec.out_channels &&
                  weight.dim(1) == spec.in_channels &&
                  weight.dim(2) == spec.kernel && weight.dim(3) == spec.kernel,
              "conv2d weight shape " << weight.shape_string());
  FHDNN_CHECK(bias.ndim() == 1 && bias.dim(0) == spec.out_channels,
              "conv2d bias shape " << bias.shape_string());
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t oc = spec.out_channels;
  const std::int64_t ckk = spec.in_channels * spec.kernel * spec.kernel;
  FHDNN_CHECK(y.ndim() == 4 && y.dim(0) == n && y.dim(1) == oc &&
                  y.dim(2) == oh && y.dim(3) == ow,
              "conv2d output shape " << y.shape_string());
  const util::Workspace::Scope scope(ws);
  TensorView cols(ws.floats(n * oh * ow * ckk), {n * oh * ow, ckk});
  im2col_into(x, spec, cols);
  // The (OC, IC, k, k) weight viewed as its (OC, IC*k*k) matrix — same
  // bytes, no reshape copy.
  const ConstTensorView wmat(weight.data(), {oc, ckk});
  TensorView out_rows(ws.floats(n * oh * ow * oc), {n * oh * ow, oc});
  ops::matmul_bt_into(cols, wmat, out_rows);
  // Rearrange to (n, oc, oh, ow) and add bias; each image is private.
  const float* prow = out_rows.data();
  const float* pb = bias.data();
  float* py = y.data();
  parallel::parallel_for(
      0, n, parallel::grain_for(oc * oh * ow),
      [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t in = n0; in < n1; ++in) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t r = (in * oh + oy) * ow + ox;
          for (std::int64_t c = 0; c < oc; ++c) {
            py[((in * oc + c) * oh + oy) * ow + ox] = prow[r * oc + c] + pb[c];
          }
        }
      }
    }
  });
}

Tensor conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias,
                      const Conv2dSpec& spec) {
  check_nchw(x, "conv2d");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Tensor y(Shape{n, spec.out_channels, spec.out_size(h), spec.out_size(w)});
  conv2d_forward_into(x, weight, bias, spec, y, util::tls_workspace());
  return y;
}

void conv2d_backward_into(ConstTensorView grad_out, ConstTensorView x,
                          ConstTensorView weight, const Conv2dSpec& spec,
                          TensorView grad_input, TensorView grad_weight,
                          TensorView grad_bias, util::Workspace& ws) {
  checked_entry("conv2d_backward", grad_out, x, weight, grad_input,
                grad_weight, grad_bias);
  check_nchw(grad_out, "conv2d_backward");
  check_nchw(x, "conv2d_backward");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = spec.out_size(h), ow = spec.out_size(w);
  const std::int64_t oc = spec.out_channels;
  const std::int64_t ckk = spec.in_channels * spec.kernel * spec.kernel;
  FHDNN_CHECK(grad_out.dim(0) == n && grad_out.dim(1) == oc &&
                  grad_out.dim(2) == oh && grad_out.dim(3) == ow,
              "conv2d_backward grad shape " << grad_out.shape_string());
  FHDNN_CHECK(grad_weight.numel() == weight.numel(),
              "conv2d_backward grad_weight shape "
                  << grad_weight.shape_string());
  FHDNN_CHECK(grad_bias.numel() == oc, "conv2d_backward grad_bias shape "
                                           << grad_bias.shape_string());
  const util::Workspace::Scope scope(ws);

  // grad_out as rows: (n*oh*ow, oc); row blocks per image are disjoint.
  TensorView grows(ws.floats(n * oh * ow * oc), {n * oh * ow, oc});
  const float* pg = grad_out.data();
  float* pgr = grows.data();
  parallel::parallel_for(
      0, n, parallel::grain_for(oc * oh * ow),
      [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t in = n0; in < n1; ++in) {
      for (std::int64_t c = 0; c < oc; ++c) {
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            pgr[((in * oh + oy) * ow + ox) * oc + c] =
                pg[((in * oc + c) * oh + oy) * ow + ox];
          }
        }
      }
    }
  });

  TensorView cols(ws.floats(n * oh * ow * ckk), {n * oh * ow, ckk});
  im2col_into(x, spec, cols);
  // grad_wmat = grows^T * cols : (oc, ic*k*k), written through a 2-d view
  // of the caller's (OC, IC, k, k) buffer.
  ops::matmul_at_into(grows, cols, TensorView(grad_weight.data(), {oc, ckk}));

  std::fill(grad_bias.data(), grad_bias.data() + oc, 0.0F);
  float* pgb = grad_bias.data();
  const std::int64_t rows = n * oh * ow;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < oc; ++c) pgb[c] += pgr[r * oc + c];
  }

  // grad_cols = grows * wmat : (n*oh*ow, ic*k*k); then fold back.
  const ConstTensorView wmat(weight.data(), {oc, ckk});
  TensorView grad_cols(ws.floats(n * oh * ow * ckk), {n * oh * ow, ckk});
  ops::matmul_into(grows, wmat, grad_cols);
  col2im_into(grad_cols, spec, n, h, w, grad_input);
}

Conv2dGrads conv2d_backward(const Tensor& grad_out, const Tensor& x,
                            const Tensor& weight, const Conv2dSpec& spec) {
  check_nchw(x, "conv2d_backward");
  Conv2dGrads grads;
  grads.grad_input = Tensor(x.shape());
  grads.grad_weight = Tensor(weight.shape());
  grads.grad_bias = Tensor(Shape{spec.out_channels});
  conv2d_backward_into(grad_out, x, weight, spec, grads.grad_input,
                       grads.grad_weight, grads.grad_bias,
                       util::tls_workspace());
  return grads;
}

void maxpool2d_forward_into(ConstTensorView x, std::int64_t kernel,
                            TensorView out, std::span<std::int64_t> argmax) {
  checked_entry("maxpool2d_forward", x, out);
  check_nchw(x, "maxpool2d");
  FHDNN_CHECK(kernel >= 1, "pool kernel " << kernel);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  FHDNN_CHECK(h % kernel == 0 && w % kernel == 0,
              "maxpool2d requires H,W divisible by kernel; got "
                  << x.shape_string() << " kernel " << kernel);
  const std::int64_t oh = h / kernel, ow = w / kernel;
  FHDNN_CHECK(out.ndim() == 4 && out.dim(0) == n && out.dim(1) == c &&
                  out.dim(2) == oh && out.dim(3) == ow,
              "maxpool2d output shape " << out.shape_string());
  FHDNN_CHECK(static_cast<std::int64_t>(argmax.size()) == out.numel(),
              "maxpool2d argmax size " << argmax.size());
  const float* px = x.data();
  float* po = out.data();
  std::int64_t* pam = argmax.data();
  // Parallel over (image, channel) planes; each plane writes a private
  // slice of output and argmax.
  parallel::parallel_for(0, n * c, parallel::grain_for(h * w),
                         [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t plane = p0; plane < p1; ++plane) {
      const float* chan = px + plane * h * w;
      const std::int64_t chan_base = plane * h * w;
      std::int64_t out_i = plane * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t iy = oy * kernel + ky;
              const std::int64_t ix = ox * kernel + kx;
              const float v = chan[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = chan_base + iy * w + ix;
              }
            }
          }
          po[out_i] = best;
          pam[out_i] = best_idx;
          ++out_i;
        }
      }
    }
  });
}

MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t kernel) {
  check_nchw(x, "maxpool2d");
  FHDNN_CHECK(kernel >= 1, "pool kernel " << kernel);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  FHDNN_CHECK(h % kernel == 0 && w % kernel == 0,
              "maxpool2d requires H,W divisible by kernel; got "
                  << shape_to_string(x.shape()) << " kernel " << kernel);
  MaxPoolResult res{Tensor(Shape{n, c, h / kernel, w / kernel}), {}};
  res.argmax.resize(static_cast<std::size_t>(res.output.numel()));
  maxpool2d_forward_into(x, kernel, res.output, res.argmax);
  return res;
}

void maxpool2d_backward_into(ConstTensorView grad_out,
                             std::span<const std::int64_t> argmax,
                             TensorView gx) {
  checked_entry("maxpool2d_backward", grad_out, gx);
  FHDNN_CHECK(static_cast<std::int64_t>(argmax.size()) == grad_out.numel(),
              "maxpool backward argmax size mismatch");
  std::fill(gx.data(), gx.data() + gx.numel(), 0.0F);
  const float* pg = grad_out.data();
  float* px = gx.data();
  const std::int64_t total = gx.numel();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    const std::int64_t idx = argmax[i];
    FHDNN_CHECK(idx >= 0 && idx < total,
                "maxpool backward argmax " << idx << " out of range " << total);
    px[idx] += pg[i];
  }
}

Tensor maxpool2d_backward(const Tensor& grad_out,
                          const std::vector<std::int64_t>& argmax,
                          const Shape& input_shape) {
  Tensor gx(input_shape);
  maxpool2d_backward_into(grad_out, argmax, gx);
  return gx;
}

void global_avgpool_forward_into(ConstTensorView x, TensorView y) {
  checked_entry("global_avgpool_forward", x, y);
  check_nchw(x, "global_avgpool");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  FHDNN_CHECK(y.ndim() == 2 && y.dim(0) == n && y.dim(1) == c,
              "global_avgpool output shape " << y.shape_string());
  const float* px = x.data();
  float* py = y.data();
  const float inv = 1.0F / static_cast<float>(h * w);
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const float* chan = px + (in * c + ic) * h * w;
      double s = 0.0;
      for (std::int64_t i = 0; i < h * w; ++i) s += chan[i];
      py[in * c + ic] = static_cast<float>(s) * inv;
    }
  }
}

Tensor global_avgpool_forward(const Tensor& x) {
  check_nchw(x, "global_avgpool");
  Tensor y(Shape{x.dim(0), x.dim(1)});
  global_avgpool_forward_into(x, y);
  return y;
}

void global_avgpool_backward_into(ConstTensorView grad_out, TensorView gx) {
  checked_entry("global_avgpool_backward", grad_out, gx);
  check_nchw(gx, "global_avgpool_backward");
  const std::int64_t n = gx.dim(0), c = gx.dim(1), h = gx.dim(2),
                     w = gx.dim(3);
  FHDNN_CHECK(grad_out.ndim() == 2 && grad_out.dim(0) == n &&
                  grad_out.dim(1) == c,
              "global_avgpool_backward grad shape "
                  << grad_out.shape_string());
  const float* pg = grad_out.data();
  float* px = gx.data();
  const float inv = 1.0F / static_cast<float>(h * w);
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const float g = pg[in * c + ic] * inv;
      float* chan = px + (in * c + ic) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) chan[i] = g;
    }
  }
}

Tensor global_avgpool_backward(const Tensor& grad_out,
                               const Shape& input_shape) {
  FHDNN_CHECK(input_shape.size() == 4, "global_avgpool_backward input shape");
  Tensor gx(input_shape);
  global_avgpool_backward_into(grad_out, gx);
  return gx;
}

}  // namespace fhdnn::ops
