#include "nn/batchnorm.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace fhdnn::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::ones(Shape{channels})),
      beta_(Tensor(Shape{channels})),
      running_mean_(Shape{channels}),
      running_var_(Tensor::ones(Shape{channels})) {
  FHDNN_CHECK(channels > 0, "BatchNorm2d channels " << channels);
}

const Tensor& BatchNorm2d::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  FHDNN_CHECK(x.ndim() == 4 && x.dim(1) == channels_,
              "BatchNorm2d expects (N," << channels_ << ",H,W), got "
                                        << shape_to_string(x.shape()));
  const std::int64_t n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  const std::int64_t per_chan = n * h * w;
  cached_shape_ = x.shape();
  y_.ensure_shape(x.shape());
  Tensor& y = y_;

  if (training_) {
    // Every element of both caches is overwritten below, so resizing in
    // place (instead of fresh zeroed tensors) changes no arithmetic.
    cached_xhat_.ensure_shape(x.shape());
    cached_inv_std_.ensure_shape({c});
    // Channels are fully independent (stats, running buffers, and the
    // output slice), so the channel loop parallelizes deterministically.
    parallel::parallel_for(0, c, parallel::grain_for(3 * per_chan),
                           [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ic = c0; ic < c1; ++ic) {
      double sum = 0.0, sum_sq = 0.0;
      for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t iy = 0; iy < h; ++iy) {
          for (std::int64_t ix = 0; ix < w; ++ix) {
            const double v = x(in, ic, iy, ix);
            sum += v;
            sum_sq += v * v;
          }
        }
      }
      const double mu = sum / static_cast<double>(per_chan);
      // Biased variance (matches the normalization denominator).
      const double var =
          std::max(0.0, sum_sq / static_cast<double>(per_chan) - mu * mu);
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
      cached_inv_std_(ic) = inv_std;
      running_mean_(ic) =
          (1.0F - momentum_) * running_mean_(ic) + momentum_ * static_cast<float>(mu);
      running_var_(ic) =
          (1.0F - momentum_) * running_var_(ic) + momentum_ * static_cast<float>(var);
      const float g = gamma_.value(ic), b = beta_.value(ic);
      for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t iy = 0; iy < h; ++iy) {
          for (std::int64_t ix = 0; ix < w; ++ix) {
            const float xh =
                (x(in, ic, iy, ix) - static_cast<float>(mu)) * inv_std;
            cached_xhat_(in, ic, iy, ix) = xh;
            y(in, ic, iy, ix) = g * xh + b;
          }
        }
      }
    }
    });
  } else {
    parallel::parallel_for(0, c, parallel::grain_for(per_chan),
                           [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t ic = c0; ic < c1; ++ic) {
      const float inv_std =
          1.0F / std::sqrt(running_var_(ic) + eps_);
      const float mu = running_mean_(ic);
      const float g = gamma_.value(ic), b = beta_.value(ic);
      for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t iy = 0; iy < h; ++iy) {
          for (std::int64_t ix = 0; ix < w; ++ix) {
            y(in, ic, iy, ix) = g * (x(in, ic, iy, ix) - mu) * inv_std + b;
          }
        }
      }
    }
    });
  }
  return y;
}

const Tensor& BatchNorm2d::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  FHDNN_CHECK(training_, "BatchNorm2d backward requires training mode");
  FHDNN_CHECK(grad_out.shape() == cached_shape_,
              "BatchNorm2d backward grad shape "
                  << shape_to_string(grad_out.shape()));
  const std::int64_t n = cached_shape_[0], c = channels_, h = cached_shape_[2],
                     w = cached_shape_[3];
  const double m = static_cast<double>(n * h * w);
  gx_.ensure_shape(cached_shape_);
  Tensor& gx = gx_;
  parallel::parallel_for(0, c,
                         parallel::grain_for(4 * static_cast<std::int64_t>(m)),
                         [&](std::int64_t c0, std::int64_t c1) {
  for (std::int64_t ic = c0; ic < c1; ++ic) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t in = 0; in < n; ++in) {
      for (std::int64_t iy = 0; iy < h; ++iy) {
        for (std::int64_t ix = 0; ix < w; ++ix) {
          const double g = grad_out(in, ic, iy, ix);
          sum_g += g;
          sum_gx += g * cached_xhat_(in, ic, iy, ix);
        }
      }
    }
    gamma_.grad(ic) += static_cast<float>(sum_gx);
    beta_.grad(ic) += static_cast<float>(sum_g);
    const double mean_g = sum_g / m;
    const double mean_gx = sum_gx / m;
    const float scale = gamma_.value(ic) * cached_inv_std_(ic);
    for (std::int64_t in = 0; in < n; ++in) {
      for (std::int64_t iy = 0; iy < h; ++iy) {
        for (std::int64_t ix = 0; ix < w; ++ix) {
          const double g = grad_out(in, ic, iy, ix);
          const double xh = cached_xhat_(in, ic, iy, ix);
          gx(in, ic, iy, ix) =
              static_cast<float>(scale * (g - mean_g - xh * mean_gx));
        }
      }
    }
  }
  });
  return gx;
}

}  // namespace fhdnn::nn
