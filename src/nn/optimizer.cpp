#include "nn/optimizer.hpp"

#include "util/error.hpp"

namespace fhdnn::nn {

Sgd::Sgd(Module& model, Options options)
    : params_(model.parameters()), options_(options) {
  FHDNN_CHECK(options_.lr > 0.0F, "SGD lr " << options_.lr);
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    auto pv = p.value.data();
    auto pg = p.grad.data();
    auto vd = v.data();
    for (std::size_t j = 0; j < pv.size(); ++j) {
      const float g = pg[j] + options_.weight_decay * pv[j];
      vd[j] = options_.momentum * vd[j] + g;
      pv[j] -= options_.lr * vd[j];
    }
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace fhdnn::nn
