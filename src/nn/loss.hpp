// Losses for the CNN baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fhdnn::nn {

/// Softmax cross-entropy over a batch.
///
/// forward() returns the mean negative log-likelihood; backward() returns
/// d(loss)/d(logits), already divided by the batch size.
class CrossEntropyLoss {
 public:
  /// logits: (N, classes); labels: N entries in [0, classes).
  double forward(const Tensor& logits, const std::vector<std::int64_t>& labels);

  /// Gradient w.r.t. logits for the last forward() call. Returns a
  /// reference to a reused internal buffer, valid until the next call.
  const Tensor& backward();

 private:
  Tensor cached_probs_;
  std::vector<std::int64_t> cached_labels_;
  Tensor grad_;
};

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace fhdnn::nn
