// Optimizers for local client training.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace fhdnn::nn {

/// SGD with classical momentum and L2 weight decay.
///
/// v <- momentum * v + (grad + weight_decay * w); w <- w - lr * v
class Sgd {
 public:
  struct Options {
    float lr = 0.01F;
    float momentum = 0.0F;
    float weight_decay = 0.0F;
  };

  /// Binds to the parameters of `model`; the model must outlive the
  /// optimizer and its parameter set must not change.
  Sgd(Module& model, Options options);

  /// Apply one update using the gradients currently accumulated.
  void step();

  /// Zero the bound parameters' gradients.
  void zero_grad();

  const Options& options() const { return options_; }
  void set_lr(float lr) { options_.lr = lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  Options options_;
};

}  // namespace fhdnn::nn
