// Residual networks and the paper's CNN baselines.
//
// The paper trains ResNet-18 (11M params) on CIFAR10/FashionMNIST and a
// 2-conv/2-fc CNN on MNIST. This module provides:
//   * ResidualBlock — conv/BN/ReLU x2 with identity or projection skip,
//     full backward;
//   * make_mini_resnet — a 3-stage residual network, width-configurable
//     (the scaled-down stand-in for ResNet-18; see DESIGN.md §3);
//   * make_cnn2 — the paper's MNIST baseline (2 conv + 2 fc).
#pragma once

#include <cstdint>
#include <memory>

#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace fhdnn::nn {

/// Basic residual block: y = ReLU(BN(conv(ReLU(BN(conv(x))))) + skip(x)).
/// When stride != 1 or channel counts differ, the skip path is a 1x1
/// strided convolution followed by BatchNorm (the standard projection
/// shortcut from He et al.).
class ResidualBlock : public Module {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Tensor*> buffers() override;
  void set_training(bool training) override;
  std::string name() const override { return "ResidualBlock"; }

  bool has_projection() const { return proj_conv_ != nullptr; }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  std::unique_ptr<Conv2d> proj_conv_;  // null for identity skip
  std::unique_ptr<BatchNorm2d> proj_bn_;

  Tensor cached_sum_;  // pre-activation of the output ReLU
  Tensor g_sum_;       // grad through the output ReLU
  Tensor y_;
  Tensor gx_;
};

/// 3-stage residual classifier for (C, H, W) inputs.
/// Stage widths are (base, 2*base, 4*base); each stage is one block; stages
/// 2 and 3 downsample by 2. Head is GlobalAvgPool + Linear.
std::unique_ptr<Sequential> make_mini_resnet(std::int64_t in_channels,
                                             std::int64_t num_classes,
                                             std::int64_t base_width, Rng& rng);

/// The paper's MNIST baseline: 2 convolution layers + 2 fully connected
/// layers. `image_hw` is the (square) input spatial size, which must be
/// divisible by 4 (two 2x2 max pools).
std::unique_ptr<Sequential> make_cnn2(std::int64_t in_channels,
                                      std::int64_t image_hw,
                                      std::int64_t num_classes, Rng& rng);

}  // namespace fhdnn::nn
