#include "nn/layers.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace fhdnn::nn {

namespace {

Tensor kaiming_uniform(Shape shape, std::int64_t fan_in, Rng& rng) {
  const float bound = std::sqrt(6.0F / static_cast<float>(fan_in));
  return Tensor::rand(std::move(shape), rng, -bound, bound);
}

Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, stddev);
}

}  // namespace

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(kaiming_uniform(Shape{out_features, in_features}, in_features,
                              rng)),
      bias_(Tensor(Shape{out_features})) {
  FHDNN_CHECK(in_features > 0 && out_features > 0,
              "Linear(" << in_features << ", " << out_features << ")");
}

Tensor Linear::forward(const Tensor& x) {
  FHDNN_CHECK(x.ndim() == 2 && x.dim(1) == in_,
              "Linear expects (N, " << in_ << "), got "
                                    << shape_to_string(x.shape()));
  cached_input_ = x;
  return ops::linear_forward(x, weight_.value, bias_.value);
}

Tensor Linear::backward(const Tensor& grad_out) {
  FHDNN_CHECK(grad_out.ndim() == 2 && grad_out.dim(1) == out_ &&
                  grad_out.dim(0) == cached_input_.dim(0),
              "Linear backward grad shape " << shape_to_string(grad_out.shape()));
  // dW = g^T x, db = sum_rows(g), dx = g W
  weight_.grad.axpy(1.0F, ops::matmul_at(grad_out, cached_input_));
  bias_.grad.axpy(1.0F, ops::sum_rows(grad_out));
  return ops::matmul(grad_out, weight_.value);
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng)
    : spec_{in_channels, out_channels, kernel, stride, padding},
      weight_(kaiming_normal(Shape{out_channels, in_channels, kernel, kernel},
                             in_channels * kernel * kernel, rng)),
      bias_(Tensor(Shape{out_channels})) {
  FHDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 &&
                  padding >= 0,
              "Conv2d spec invalid");
}

Tensor Conv2d::forward(const Tensor& x) {
  cached_input_ = x;
  return ops::conv2d_forward(x, weight_.value, bias_.value, spec_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  auto grads = ops::conv2d_backward(grad_out, cached_input_, weight_.value,
                                    spec_);
  weight_.grad.axpy(1.0F, grads.grad_weight);
  bias_.grad.axpy(1.0F, grads.grad_bias);
  return std::move(grads.grad_input);
}

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  return ops::relu(x);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  return ops::relu_backward(grad_out, cached_input_);
}

Tensor MaxPool2d::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  auto res = ops::maxpool2d_forward(x, kernel_);
  cached_argmax_ = std::move(res.argmax);
  return std::move(res.output);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  return ops::maxpool2d_backward(grad_out, cached_argmax_, cached_shape_);
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  return ops::global_avgpool_forward(x);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  return ops::global_avgpool_backward(grad_out, cached_shape_);
}

Tensor Flatten::forward(const Tensor& x) {
  FHDNN_CHECK(x.ndim() >= 2, "Flatten expects batched input");
  cached_shape_ = x.shape();
  const std::int64_t n = x.dim(0);
  return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

std::unique_ptr<Linear> make_linear(std::int64_t in, std::int64_t out,
                                    Rng& rng) {
  return std::make_unique<Linear>(in, out, rng);
}

std::unique_ptr<Conv2d> make_conv(std::int64_t ic, std::int64_t oc,
                                  std::int64_t k, std::int64_t stride,
                                  std::int64_t pad, Rng& rng) {
  return std::make_unique<Conv2d>(ic, oc, k, stride, pad, rng);
}

}  // namespace fhdnn::nn
