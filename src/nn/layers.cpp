#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace fhdnn::nn {

namespace {

Tensor kaiming_uniform(Shape shape, std::int64_t fan_in, Rng& rng) {
  const float bound = std::sqrt(6.0F / static_cast<float>(fan_in));
  return Tensor::rand(std::move(shape), rng, -bound, bound);
}

Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, stddev);
}

}  // namespace

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(kaiming_uniform(Shape{out_features, in_features}, in_features,
                              rng)),
      bias_(Tensor(Shape{out_features})) {
  FHDNN_CHECK(in_features > 0 && out_features > 0,
              "Linear(" << in_features << ", " << out_features << ")");
}

const Tensor& Linear::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  FHDNN_CHECK(x.ndim() == 2 && x.dim(1) == in_,
              "Linear expects (N, " << in_ << "), got "
                                    << shape_to_string(x.shape()));
  cached_input_ = x;
  y_.ensure_shape({x.dim(0), out_});
  ops::linear_forward_into(x, weight_.value, bias_.value, y_);
  return y_;
}

const Tensor& Linear::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  FHDNN_CHECK(grad_out.ndim() == 2 && grad_out.dim(1) == out_ &&
                  grad_out.dim(0) == cached_input_.dim(0),
              "Linear backward grad shape " << shape_to_string(grad_out.shape()));
  // dW = g^T x, db = sum_rows(g), dx = g W
  util::Workspace& ws = util::tls_workspace();
  const util::Workspace::Scope scope(ws);
  TensorView gw(ws.floats(out_ * in_), {out_, in_});
  ops::matmul_at_into(grad_out, cached_input_, gw);
  ops::accumulate(weight_.grad, gw);
  TensorView gb(ws.floats(out_), {out_});
  ops::sum_rows_into(grad_out, gb);
  ops::accumulate(bias_.grad, gb);
  gx_.ensure_shape({grad_out.dim(0), in_});
  ops::matmul_into(grad_out, weight_.value, gx_);
  return gx_;
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng)
    : spec_{in_channels, out_channels, kernel, stride, padding},
      weight_(kaiming_normal(Shape{out_channels, in_channels, kernel, kernel},
                             in_channels * kernel * kernel, rng)),
      bias_(Tensor(Shape{out_channels})) {
  FHDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0 &&
                  padding >= 0,
              "Conv2d spec invalid");
}

const Tensor& Conv2d::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  FHDNN_CHECK(x.ndim() == 4, "Conv2d expects (N,C,H,W), got "
                                 << shape_to_string(x.shape()));
  cached_input_ = x;
  y_.ensure_shape({x.dim(0), spec_.out_channels, spec_.out_size(x.dim(2)),
                   spec_.out_size(x.dim(3))});
  ops::conv2d_forward_into(x, weight_.value, bias_.value, spec_, y_,
                           util::tls_workspace());
  return y_;
}

const Tensor& Conv2d::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  util::Workspace& ws = util::tls_workspace();
  const util::Workspace::Scope scope(ws);
  TensorView gw(ws.floats(weight_.value.numel()),
                {spec_.out_channels, spec_.in_channels, spec_.kernel,
                 spec_.kernel});
  TensorView gb(ws.floats(spec_.out_channels), {spec_.out_channels});
  gx_.ensure_shape(cached_input_.shape());
  ops::conv2d_backward_into(grad_out, cached_input_, weight_.value, spec_, gx_,
                            gw, gb, ws);
  ops::accumulate(weight_.grad, gw);
  ops::accumulate(bias_.grad, gb);
  return gx_;
}

const Tensor& ReLU::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  cached_input_ = x;
  y_.ensure_shape(x.shape());
  ops::relu_into(x, y_);
  return y_;
}

const Tensor& ReLU::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  gx_.ensure_shape(cached_input_.shape());
  ops::relu_backward_into(grad_out, cached_input_, gx_);
  return gx_;
}

const Tensor& MaxPool2d::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  FHDNN_CHECK(x.ndim() == 4, "MaxPool2d expects (N,C,H,W), got "
                                 << shape_to_string(x.shape()));
  cached_shape_ = x.shape();
  y_.ensure_shape({x.dim(0), x.dim(1), x.dim(2) / kernel_, x.dim(3) / kernel_});
  cached_argmax_.resize(static_cast<std::size_t>(y_.numel()));
  ops::maxpool2d_forward_into(x, kernel_, y_, cached_argmax_);
  return y_;
}

const Tensor& MaxPool2d::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  gx_.ensure_shape(cached_shape_);
  ops::maxpool2d_backward_into(grad_out, cached_argmax_, gx_);
  return gx_;
}

const Tensor& GlobalAvgPool::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  FHDNN_CHECK(x.ndim() == 4, "GlobalAvgPool expects (N,C,H,W), got "
                                 << shape_to_string(x.shape()));
  cached_shape_ = x.shape();
  y_.ensure_shape({x.dim(0), x.dim(1)});
  ops::global_avgpool_forward_into(x, y_);
  return y_;
}

const Tensor& GlobalAvgPool::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  gx_.ensure_shape(cached_shape_);
  ops::global_avgpool_backward_into(grad_out, gx_);
  return gx_;
}

const Tensor& Flatten::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  FHDNN_CHECK(x.ndim() >= 2, "Flatten expects batched input");
  cached_shape_ = x.shape();
  const std::int64_t n = x.dim(0);
  y_.ensure_shape({n, x.numel() / n});
  const auto src = x.data();
  std::copy(src.begin(), src.end(), y_.data().begin());
  return y_;
}

const Tensor& Flatten::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  gx_.ensure_shape(cached_shape_);
  const auto src = grad_out.data();
  std::copy(src.begin(), src.end(), gx_.data().begin());
  return gx_;
}

std::unique_ptr<Linear> make_linear(std::int64_t in, std::int64_t out,
                                    Rng& rng) {
  return std::make_unique<Linear>(in, out, rng);
}

std::unique_ptr<Conv2d> make_conv(std::int64_t ic, std::int64_t oc,
                                  std::int64_t k, std::int64_t stride,
                                  std::int64_t pad, Rng& rng) {
  return std::make_unique<Conv2d>(ic, oc, k, stride, pad, rng);
}

}  // namespace fhdnn::nn
