#include "nn/serialize.hpp"

#include <algorithm>

#include "tensor/io.hpp"
#include "util/error.hpp"

namespace fhdnn::nn {

std::int64_t state_size(Module& model) {
  std::int64_t n = 0;
  for (const Parameter* p : model.parameters()) n += p->value.numel();
  for (Tensor* b : model.buffers()) n += b->numel();
  return n;
}

std::vector<float> get_state(Module& model) {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(state_size(model)));
  for (Parameter* p : model.parameters()) {
    const auto d = p->value.data();
    out.insert(out.end(), d.begin(), d.end());
  }
  for (Tensor* b : model.buffers()) {
    const auto d = b->data();
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

void set_state(Module& model, const std::vector<float>& state) {
  FHDNN_CHECK(static_cast<std::int64_t>(state.size()) == state_size(model),
              "set_state size " << state.size() << " != model state "
                                << state_size(model));
  std::size_t off = 0;
  for (Parameter* p : model.parameters()) {
    auto d = p->value.data();
    std::copy_n(state.begin() + static_cast<std::ptrdiff_t>(off), d.size(),
                d.begin());
    off += d.size();
  }
  for (Tensor* b : model.buffers()) {
    auto d = b->data();
    std::copy_n(state.begin() + static_cast<std::ptrdiff_t>(off), d.size(),
                d.begin());
    off += d.size();
  }
}

void copy_state(Module& src, Module& dst) {
  set_state(dst, get_state(src));
}

void save_state(Module& model, const std::string& path) {
  auto state = get_state(model);
  const auto n = static_cast<std::int64_t>(state.size());
  io::save_tensor(Tensor(Shape{n}, std::move(state)), path);
}

void load_state(Module& model, const std::string& path) {
  const Tensor t = io::load_tensor(path);
  FHDNN_CHECK(t.ndim() == 1, "checkpoint '" << path << "' is not a flat state");
  t.assert_invariant();
  set_state(model, t.vec());
}

}  // namespace fhdnn::nn
