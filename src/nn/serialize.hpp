// Flattening of model state for federated aggregation and channel transport.
//
// A model's transmissible state is the concatenation of all parameter values
// followed by all buffers, in traversal order. Two models built by the same
// factory with the same configuration have identical layouts, so flat
// vectors can be averaged elementwise (FedAvg) or corrupted bit-by-bit
// (channel models) and loaded back.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"

namespace fhdnn::nn {

/// Total scalars serialized for `model` (parameters + buffers).
std::int64_t state_size(Module& model);

/// Copy parameters + buffers into one flat vector.
std::vector<float> get_state(Module& model);

/// Load a flat vector produced by get_state (layout must match).
void set_state(Module& model, const std::vector<float>& state);

/// Copy all parameters/buffers from `src` into `dst` (same architecture).
void copy_state(Module& src, Module& dst);

/// Checkpoint the flat state to disk (tensor/io.hpp container).
void save_state(Module& model, const std::string& path);

/// Restore a checkpoint written by save_state; the model architecture must
/// match (size-checked).
void load_state(Module& model, const std::string& path);

}  // namespace fhdnn::nn
