#include "nn/resnet.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fhdnn::nn {

ResidualBlock::ResidualBlock(std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t stride,
                             Rng& rng)
    : conv1_(in_channels, out_channels, 3, stride, 1, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, rng),
      bn2_(out_channels) {
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ =
        std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

const Tensor& ResidualBlock::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  const Tensor& main = bn2_.forward(
      conv2_.forward(relu1_.forward(bn1_.forward(conv1_.forward(x)))));
  const Tensor& skip =
      proj_conv_ ? proj_bn_->forward(proj_conv_->forward(x)) : x;
  cached_sum_.ensure_shape(main.shape());
  ops::add_into(main, skip, cached_sum_);
  y_.ensure_shape(main.shape());
  ops::relu_into(cached_sum_, y_);
  return y_;
}

const Tensor& ResidualBlock::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  // Through the output ReLU.
  g_sum_.ensure_shape(cached_sum_.shape());
  ops::relu_backward_into(grad_out, cached_sum_, g_sum_);
  // Main path. The chain's result lives in conv1_'s buffer; copy it into
  // ours so the skip-path accumulation doesn't clobber conv1_'s state.
  gx_ = conv1_.backward(bn1_.backward(
      relu1_.backward(conv2_.backward(bn2_.backward(g_sum_)))));
  // Skip path.
  if (proj_conv_) {
    gx_.axpy(1.0F, proj_conv_->backward(proj_bn_->backward(g_sum_)));
  } else {
    gx_.axpy(1.0F, g_sum_);
  }
  return gx_;
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> out;
  for (Module* m : std::initializer_list<Module*>{&conv1_, &bn1_, &conv2_,
                                                  &bn2_}) {
    for (Parameter* p : m->parameters()) out.push_back(p);
  }
  if (proj_conv_) {
    for (Parameter* p : proj_conv_->parameters()) out.push_back(p);
    for (Parameter* p : proj_bn_->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> ResidualBlock::buffers() {
  std::vector<Tensor*> out;
  for (Tensor* b : bn1_.buffers()) out.push_back(b);
  for (Tensor* b : bn2_.buffers()) out.push_back(b);
  if (proj_bn_) {
    for (Tensor* b : proj_bn_->buffers()) out.push_back(b);
  }
  return out;
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  conv1_.set_training(training);
  bn1_.set_training(training);
  relu1_.set_training(training);
  conv2_.set_training(training);
  bn2_.set_training(training);
  if (proj_conv_) {
    proj_conv_->set_training(training);
    proj_bn_->set_training(training);
  }
}

std::unique_ptr<Sequential> make_mini_resnet(std::int64_t in_channels,
                                             std::int64_t num_classes,
                                             std::int64_t base_width,
                                             Rng& rng) {
  FHDNN_CHECK(base_width > 0 && num_classes > 1, "mini_resnet config");
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(in_channels, base_width, 3, 1, 1, rng));
  net->add(std::make_unique<BatchNorm2d>(base_width));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<ResidualBlock>(base_width, base_width, 1, rng));
  net->add(std::make_unique<ResidualBlock>(base_width, 2 * base_width, 2, rng));
  net->add(
      std::make_unique<ResidualBlock>(2 * base_width, 4 * base_width, 2, rng));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(4 * base_width, num_classes, rng));
  return net;
}

std::unique_ptr<Sequential> make_cnn2(std::int64_t in_channels,
                                      std::int64_t image_hw,
                                      std::int64_t num_classes, Rng& rng) {
  FHDNN_CHECK(image_hw % 4 == 0, "cnn2 image size " << image_hw
                                                    << " must be divisible by 4");
  const std::int64_t flat = 32 * (image_hw / 4) * (image_hw / 4);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2d>(in_channels, 16, 3, 1, 1, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2d>(2));
  net->add(std::make_unique<Conv2d>(16, 32, 3, 1, 1, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2d>(2));
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Linear>(flat, 128, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Linear>(128, num_classes, rng));
  return net;
}

}  // namespace fhdnn::nn
