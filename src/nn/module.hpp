// Module abstraction for the from-scratch neural-network library.
//
// Every layer implements forward() and backward() with an explicit cache of
// whatever the backward pass needs (no autograd tape). Layers expose their
// learnable state as `Parameter`s (value + gradient) so optimizers and the
// federated-learning layer can traverse a model generically.
//
// forward()/backward() return `const Tensor&` — a reference to a buffer the
// layer owns and reuses across calls (sized with Tensor::ensure_shape), so a
// steady-state training step performs no heap allocation. The reference is
// valid until the next forward()/backward() on the same module; callers that
// need the value to outlive that bind it to a `Tensor` by value.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fhdnn::nn {

/// A learnable tensor and its accumulated gradient.
struct Parameter {
  explicit Parameter(Tensor v)
      : value(std::move(v)), grad(value.shape()) {}

  Tensor value;
  Tensor grad;

  void zero_grad() { grad.zero(); }
};

/// Base class for all layers and containers.
class Module {
 public:
  virtual ~Module() = default;

  /// Compute outputs; caches activations needed by backward(). The returned
  /// reference points at a module-owned buffer reused by later calls.
  virtual const Tensor& forward(const Tensor& x) = 0;

  /// Propagate gradients. Must be called after forward() with an upstream
  /// gradient matching forward's output shape; accumulates into parameter
  /// grads and returns the gradient w.r.t. the input (same buffer-reuse
  /// contract as forward()).
  virtual const Tensor& backward(const Tensor& grad_out) = 0;

  /// All learnable parameters (depth-first for containers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Non-learnable state that still travels with the model (e.g. BatchNorm
  /// running statistics). The FL layer serializes and averages these
  /// alongside parameters, matching common FedAvg practice.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Toggle training vs. inference behaviour (BatchNorm uses this).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  virtual std::string name() const = 0;

  /// Total learnable scalar count.
  std::int64_t parameter_count();

  /// Zero all parameter gradients.
  void zero_grad();

 protected:
  bool training_ = true;
};

/// Sequential container; owns its children.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> layer);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Tensor*> buffers() override;
  void set_training(bool training) override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i);

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace fhdnn::nn
