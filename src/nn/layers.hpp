// Concrete layers: Linear, Conv2d, ReLU, MaxPool2d, GlobalAvgPool, Flatten.
// BatchNorm2d lives in nn/batchnorm.hpp.
//
// Each layer owns its output buffer `y_` and input-gradient buffer `gx_`,
// resized in place with Tensor::ensure_shape — after the first step at a
// given batch shape, forward/backward touch no heap. Workspace scratch for
// the matmul/conv kernels comes from the calling thread's arena.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/module.hpp"
#include "tensor/conv.hpp"
#include "util/rng.hpp"

namespace fhdnn::nn {

/// Fully connected layer y = x W^T + b with Kaiming-uniform init.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  Tensor cached_input_;
  Tensor y_;
  Tensor gx_;
};

/// 2-d convolution (square kernel) with Kaiming-normal init.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2d"; }

  const ops::Conv2dSpec& spec() const { return spec_; }
  Parameter& weight() { return weight_; }

 private:
  ops::Conv2dSpec spec_;
  Parameter weight_;  // (oc, ic, k, k)
  Parameter bias_;    // (oc)
  Tensor cached_input_;
  Tensor y_;
  Tensor gx_;
};

/// Elementwise ReLU.
class ReLU : public Module {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
  Tensor y_;
  Tensor gx_;
};

/// Non-overlapping max pooling (stride == kernel).
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::int64_t kernel) : kernel_(kernel) {}

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::int64_t kernel_;
  Shape cached_shape_;
  std::vector<std::int64_t> cached_argmax_;
  Tensor y_;
  Tensor gx_;
};

/// (N, C, H, W) -> (N, C) global average pool.
class GlobalAvgPool : public Module {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_shape_;
  Tensor y_;
  Tensor gx_;
};

/// (N, ...) -> (N, prod(...)).
class Flatten : public Module {
 public:
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_shape_;
  Tensor y_;
  Tensor gx_;
};

/// Helpers for building Sequential models tersely.
std::unique_ptr<Linear> make_linear(std::int64_t in, std::int64_t out, Rng& rng);
std::unique_ptr<Conv2d> make_conv(std::int64_t ic, std::int64_t oc,
                                  std::int64_t k, std::int64_t stride,
                                  std::int64_t pad, Rng& rng);

}  // namespace fhdnn::nn
