#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace fhdnn::nn {

double CrossEntropyLoss::forward(const Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  FHDNN_CHECKED_TENSOR(logits);
  FHDNN_CHECK(logits.ndim() == 2, "CrossEntropy expects 2-d logits");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  FHDNN_CHECK(static_cast<std::int64_t>(labels.size()) == n,
              "CrossEntropy labels size " << labels.size() << " != batch " << n);
  cached_probs_.ensure_shape(logits.shape());
  ops::softmax_rows_into(logits, cached_probs_);
  cached_labels_ = labels;
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    FHDNN_CHECK(y >= 0 && y < c, "label " << y << " out of range " << c);
    loss -= std::log(std::max(1e-12F, cached_probs_(i, y)));
  }
  return loss / static_cast<double>(n);
}

const Tensor& CrossEntropyLoss::backward() {
  FHDNN_CHECKED_TENSOR(cached_probs_);
  FHDNN_CHECK(cached_probs_.numel() > 1, "backward before forward");
  const std::int64_t n = cached_probs_.dim(0);
  grad_ = cached_probs_;
  for (std::int64_t i = 0; i < n; ++i) {
    grad_(i, cached_labels_[static_cast<std::size_t>(i)]) -= 1.0F;
  }
  grad_.scale(1.0F / static_cast<float>(n));
  return grad_;
}

double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  const auto preds = ops::argmax_rows(logits);
  FHDNN_CHECK(preds.size() == labels.size(), "accuracy size mismatch");
  if (preds.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace fhdnn::nn
