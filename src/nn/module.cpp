#include "nn/module.hpp"

#include "util/check.hpp"
#include "util/error.hpp"

namespace fhdnn::nn {

std::int64_t Module::parameter_count() {
  std::int64_t n = 0;
  for (const Parameter* p : parameters()) n += p->value.numel();
  return n;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  FHDNN_CHECK(layer != nullptr, "Sequential::add(nullptr)");
  layers_.push_back(std::move(layer));
  return *this;
}

const Tensor& Sequential::forward(const Tensor& x) {
  FHDNN_CHECKED_TENSOR(x);
  // Chain by reference — each layer reads its predecessor's output buffer
  // directly, so the container adds no copies or allocations.
  const Tensor* h = &x;
  for (auto& layer : layers_) h = &layer->forward(*h);
  return *h;
}

const Tensor& Sequential::backward(const Tensor& grad_out) {
  FHDNN_CHECKED_TENSOR(grad_out);
  const Tensor* g = &grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = &(*it)->backward(*g);
  }
  return *g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* b : layer->buffers()) out.push_back(b);
  }
  return out;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

Module& Sequential::layer(std::size_t i) {
  FHDNN_CHECK(i < layers_.size(), "Sequential layer index " << i);
  return *layers_[i];
}

}  // namespace fhdnn::nn
