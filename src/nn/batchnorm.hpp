// BatchNorm2d with full training-mode backward and running statistics.
//
// Running mean/var are exposed as *buffers* (non-learnable state); the
// federated-learning layer averages buffers alongside parameters, matching
// common FedAvg practice for batch-norm statistics.
#pragma once

#include <cstdint>

#include "nn/module.hpp"

namespace fhdnn::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5F,
                       float momentum = 0.1F);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override { return "BatchNorm2d"; }

  /// Non-learnable state synchronized by the FL layer.
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  std::int64_t channels() const { return channels_; }

 private:
  std::int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;  // (C), initialized to 1
  Parameter beta_;   // (C), initialized to 0
  Tensor running_mean_;  // (C)
  Tensor running_var_;   // (C), initialized to 1

  // Backward cache (training mode) and reused output buffers.
  Tensor cached_xhat_;     // normalized input
  Tensor cached_inv_std_;  // (C)
  Shape cached_shape_;
  Tensor y_;
  Tensor gx_;
};

}  // namespace fhdnn::nn
