#include "hdc/id_level_encoder.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::hdc {

IdLevelEncoder::IdLevelEncoder(std::int64_t feature_dim, std::int64_t hd_dim,
                               std::int64_t levels, float lo, float hi,
                               Rng& rng)
    : n_(feature_dim),
      d_(hd_dim),
      q_(levels),
      lo_(lo),
      hi_(hi),
      ids_(Shape{feature_dim, hd_dim}),
      levels_(Shape{levels, hd_dim}) {
  FHDNN_CHECK(n_ > 0 && d_ > 0 && q_ >= 2, "IdLevelEncoder(n=" << n_ << ", d="
                                                               << d_ << ", Q="
                                                               << q_ << ")");
  FHDNN_CHECK(lo_ < hi_, "level range [" << lo_ << ", " << hi_ << ")");
  Rng id_rng = rng.fork("ids");
  for (auto& v : ids_.data()) v = id_rng.bernoulli(0.5) ? 1.0F : -1.0F;

  // L_0 random; each next level flips d/(2(Q-1)) not-yet-flipped positions,
  // so L_0 and L_{Q-1} differ in ~half the positions (~orthogonal).
  Rng lvl_rng = rng.fork("levels");
  for (std::int64_t j = 0; j < d_; ++j) {
    levels_(0, j) = lvl_rng.bernoulli(0.5) ? 1.0F : -1.0F;
  }
  std::vector<std::size_t> order(static_cast<std::size_t>(d_));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  lvl_rng.shuffle(order);
  const std::int64_t flips_per_level =
      std::max<std::int64_t>(1, d_ / (2 * (q_ - 1)));
  std::size_t cursor = 0;
  for (std::int64_t q = 1; q < q_; ++q) {
    for (std::int64_t j = 0; j < d_; ++j) levels_(q, j) = levels_(q - 1, j);
    for (std::int64_t f = 0; f < flips_per_level && cursor < order.size();
         ++f, ++cursor) {
      const auto j = static_cast<std::int64_t>(order[cursor]);
      levels_(q, j) = -levels_(q, j);
    }
  }
}

std::int64_t IdLevelEncoder::quantize(float value) const {
  const float clamped = std::clamp(value, lo_, hi_);
  const double t = (clamped - lo_) / (hi_ - lo_);
  const auto q = static_cast<std::int64_t>(t * static_cast<double>(q_));
  return std::min(q, q_ - 1);
}

Tensor IdLevelEncoder::encode(const Tensor& z) const {
  const bool batched = z.ndim() == 2;
  FHDNN_CHECK(batched || z.ndim() == 1,
              "encode expects (n) or (N, n), got " << shape_to_string(z.shape()));
  const Tensor zz = batched ? z : z.reshaped(Shape{1, n_});
  FHDNN_CHECK(zz.dim(1) == n_, "feature dim " << zz.dim(1) << " != encoder n "
                                              << n_);
  const std::int64_t n_rows = zz.dim(0);
  Tensor h(Shape{n_rows, d_});
  std::vector<double> acc(static_cast<std::size_t>(d_));
  for (std::int64_t r = 0; r < n_rows; ++r) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::int64_t i = 0; i < n_; ++i) {
      const std::int64_t q = quantize(zz(r, i));
      for (std::int64_t j = 0; j < d_; ++j) {
        acc[static_cast<std::size_t>(j)] +=
            static_cast<double>(ids_(i, j)) * levels_(q, j);
      }
    }
    for (std::int64_t j = 0; j < d_; ++j) {
      h(r, j) = acc[static_cast<std::size_t>(j)] >= 0.0 ? 1.0F : -1.0F;
    }
  }
  return batched ? h : h.reshaped(Shape{d_});
}

double IdLevelEncoder::level_similarity(std::int64_t a, std::int64_t b) const {
  FHDNN_CHECK(a >= 0 && a < q_ && b >= 0 && b < q_,
              "level index out of range");
  double dot = 0.0;
  for (std::int64_t j = 0; j < d_; ++j) {
    dot += static_cast<double>(levels_(a, j)) * levels_(b, j);
  }
  return dot / static_cast<double>(d_);
}

}  // namespace fhdnn::hdc
