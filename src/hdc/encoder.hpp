// Hyperdimensional random-projection encoder (paper §3.3).
//
// Embeds an n-dimensional feature vector z into d-dimensional HD space via
//   phi(z) = sign(Phi z)
// where the rows of Phi (d x n) are sampled uniformly from the unit sphere.
// The encoder also exposes:
//   * encode_linear — Phi z without the sign nonlinearity (used by the
//     holographic-reconstruction analysis, paper Eq. 5);
//   * reconstruct — the least-squares readout (n/d) Phi^T h, an unbiased
//     estimator of z from h = Phi z because E[Phi^T Phi] = (d/n) I for
//     unit-sphere rows. (The paper writes the 1/d averaging form; the n
//     factor is the deterministic scale making the estimator unbiased.)
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "tensor/view.hpp"
#include "util/rng.hpp"

namespace fhdnn::hdc {

class RandomProjectionEncoder {
 public:
  /// Build an encoder mapping n-dim features to d-dim hypervectors.
  /// Deterministic in (n, d, rng state) — all FHDnn clients construct an
  /// identical encoder from a shared seed, so Phi is never transmitted.
  RandomProjectionEncoder(std::int64_t feature_dim, std::int64_t hd_dim,
                          Rng& rng);

  std::int64_t feature_dim() const { return n_; }
  std::int64_t hd_dim() const { return d_; }

  /// sign(Phi z). Input (n) or batched (N, n); output matches: (d) or (N, d).
  /// Elements are exactly +1 or -1 (sign(0) := +1, per the paper).
  /// The `_into` forms write into a caller-owned buffer of matching numel
  /// and allocate nothing (1-d inputs are viewed as one-row matrices
  /// instead of reshaped copies — same bytes, same result).
  /// Aliasing: h must not overlap z (delegates to the matmul family, which
  /// throws on overlap).
  Tensor encode(const Tensor& z) const;
  void encode_into(ConstTensorView z, TensorView h) const;

  /// Phi z without the sign (same shapes as encode).
  /// Aliasing: h must not overlap z (throws on overlap).
  Tensor encode_linear(const Tensor& z) const;
  void encode_linear_into(ConstTensorView z, TensorView h) const;

  /// Least-squares readout (n/d) Phi^T h of a (d) or (N, d) hypervector;
  /// inverse of encode_linear in expectation.
  /// Aliasing: z must not overlap h (throws on overlap).
  Tensor reconstruct(const Tensor& h) const;
  void reconstruct_into(ConstTensorView h, TensorView z) const;

  /// Read-only access to the projection matrix (d x n).
  const Tensor& projection() const { return phi_; }

 private:
  std::int64_t n_;
  std::int64_t d_;
  Tensor phi_;  // (d, n), rows on the unit sphere
};

}  // namespace fhdnn::hdc
