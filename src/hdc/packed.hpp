// Bit-packed binary-HD backend (DESIGN.md §11).
//
// A bipolar hypervector (entries ±1) carries one bit of information per
// dimension, so the packed representation stores it as d sign bits in
// ceil(d/64) uint64 words: bit i set <=> element i is +1 (the library's
// sign(0) := +1 convention). On this representation the HD algebra
// collapses to word-wide integer ops:
//   * bind            -> complemented XOR (bit 1 encodes +1, so the
//                        product is +1 exactly when the bits agree: XNOR;
//                        plain XOR is bind only in the bit-encodes-sign
//                        convention)
//   * hamming         -> popcount(XOR)   (differing bits = differing signs)
//   * cosine          -> 1 - 2*hamming/d  (all bipolar vectors have norm
//                        sqrt(d), so cosine is a linear map of hamming)
//   * permute         -> word-level rotate
//   * majority bundle -> per-bit vote counting (bit-sliced adders)
// Every operation here is pinned bit-exact against the float/scalar path
// by tests/test_packed.cpp and tests/test_properties.cpp.
//
// Layout rules:
//   * PackedHV: d bits, little-endian within each word (bit i of word w is
//     element w*64 + i); unused tail bits of the last word are ZERO — all
//     kernels preserve this invariant so popcounts never see garbage.
//   * PackedModel: row-aligned — each of the `rows` hypervectors starts on
//     its own word boundary (words_per_row() words per row), unlike
//     BinaryModel's contiguous rows*d bit blob (a wire format). Bridges to
//     and from BinaryModel re-pack between the two layouts.
//
// Tie rule: majority bundling over an even member count can tie. Ties are
// broken by *index parity* — element i resolves to +1 when i is even, -1
// when i is odd (see bundle_majority in hdc/ops.hpp, which follows the
// same rule). The rule is deterministic, needs no RNG state, and has a
// closed packed form: an alternating 0x5555.../0xAAAA... mask selected by
// the parity of the row's starting flat index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace fhdnn::hdc {

struct BinaryModel;

/// Words needed to hold `nbits` bits (64 per word).
constexpr std::int64_t words_for_bits(std::int64_t nbits) {
  return (nbits + 63) / 64;
}

/// Mask of the valid bits in the last word of an nbits-bit vector
/// (all-ones when nbits is a multiple of 64).
constexpr std::uint64_t tail_mask(std::int64_t nbits) {
  const std::int64_t rem = nbits % 64;
  return rem == 0 ? ~0ULL : (1ULL << rem) - 1ULL;
}

/// One packed bipolar hypervector: d sign bits, zeroed tail.
struct PackedHV {
  std::int64_t d = 0;
  std::vector<std::uint64_t> words;

  PackedHV() = default;
  explicit PackedHV(std::int64_t dim)
      : d(dim), words(static_cast<std::size_t>(words_for_bits(dim)), 0) {}

  /// Sign of element i as ±1 (bit set -> +1).
  float element(std::int64_t i) const {
    return (words[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1ULL
               ? 1.0F
               : -1.0F;
  }
};

/// A row-aligned stack of packed hypervectors (e.g. class prototypes or an
/// encoded query batch): row r occupies words [r*words_per_row(),
/// (r+1)*words_per_row()), each row with its own zeroed tail.
struct PackedModel {
  std::int64_t rows = 0;
  std::int64_t d = 0;
  std::vector<std::uint64_t> words;

  PackedModel() = default;
  PackedModel(std::int64_t num_rows, std::int64_t dim)
      : rows(num_rows),
        d(dim),
        words(static_cast<std::size_t>(num_rows * words_for_bits(dim)), 0) {}

  std::int64_t words_per_row() const { return words_for_bits(d); }

  std::span<std::uint64_t> row(std::int64_t r) {
    return {words.data() + r * words_per_row(),
            static_cast<std::size_t>(words_per_row())};
  }
  std::span<const std::uint64_t> row(std::int64_t r) const {
    return {words.data() + r * words_per_row(),
            static_cast<std::size_t>(words_per_row())};
  }
};

/// Pack a 1-D float hypervector: bit i = (v[i] >= 0), i.e. sign(0) := +1.
PackedHV pack_hv(const Tensor& v);

/// Unpack to a bipolar float hypervector (entries ±1).
Tensor unpack_hv(const PackedHV& v);

/// Pack each row of a (N, d) float matrix into a row-aligned PackedModel.
PackedModel pack_rows(const Tensor& m);

/// Unpack to a bipolar (N, d) float matrix.
Tensor unpack_rows(const PackedModel& m);

/// Packed bind via the word-XOR kernel (complemented to the bit-means-+1
/// convention). Equals pack(bind(unpack(a), unpack(b))) exactly.
PackedHV xor_bind(const PackedHV& a, const PackedHV& b);

/// Packed cyclic rotation by k positions (k may be negative or exceed d);
/// matches hdc::permute: out element (i + k) mod d = in element i.
PackedHV rotate(const PackedHV& v, std::int64_t k);

/// Raw hamming distance: number of differing positions, in [0, d].
std::uint64_t hamming(const PackedHV& a, const PackedHV& b);

/// Normalized hamming distance (fraction of differing positions); equal to
/// hdc::hamming_distance on the unpacked vectors.
double hamming_norm(const PackedHV& a, const PackedHV& b);

/// Cosine similarity of the bipolar vectors: 1 - 2*hamming/d.
double cosine(const PackedHV& a, const PackedHV& b);

/// Exact majority-vote bundle: output bit i is the majority of the input
/// bits i; a tie (even member count) resolves by index parity (+1 when i
/// is even). Matches hdc::bundle_majority on unpacked inputs bit-for-bit.
/// Internally counts votes in bit-sliced adder planes, so cost is
/// O(members * words * log(members)) with no per-bit loop.
PackedHV bundle_majority_packed(const std::vector<PackedHV>& vs);

/// Majority-vote aggregation of row-aligned models (same semantics as
/// hdc::majority_aggregate on BinaryModel: per-bit vote with the index-
/// parity tie rule applied to each row's flat index r*d + j).
PackedModel majority_aggregate_packed(const std::vector<PackedModel>& models);

/// Re-pack a contiguous BinaryModel wire blob into row-aligned form.
PackedModel packed_from_binary(const BinaryModel& m);

/// Flatten a row-aligned PackedModel into the BinaryModel wire layout.
BinaryModel binary_from_packed(const PackedModel& m);

namespace detail {

/// Tie mask for bits whose flat index phase is even at word position 0:
/// bits at even in-word positions (ties -> +1). Flip for odd phase.
constexpr std::uint64_t kEvenPhaseTies = 0x5555555555555555ULL;

/// Bit-sliced vote counter: plane[p] holds bit p of the per-position vote
/// count, so adding one member word is a 64-wide ripple-carry increment.
/// `max_planes` = bit_width(total members) always absorbs the carry.
inline void add_vote_word(std::uint64_t* plane, int max_planes,
                          std::uint64_t v) {
  std::uint64_t carry = v;
  for (int p = 0; p < max_planes && carry != 0ULL; ++p) {
    const std::uint64_t t = plane[p];
    plane[p] = t ^ carry;
    carry = t & carry;
  }
}

/// Majority word from vote-count planes: count > n/2 wins outright; a tie
/// (count == n/2, only possible for even n) resolves via tie_mask. The
/// count-vs-threshold comparison runs bit-sliced from the MSB plane down.
inline std::uint64_t majority_word(const std::uint64_t* plane, int planes,
                                   std::size_t n, std::uint64_t tie_mask) {
  const std::uint64_t threshold = n / 2;
  std::uint64_t gt = 0;
  std::uint64_t eq = ~0ULL;
  for (int p = planes - 1; p >= 0; --p) {
    if ((threshold >> p) & 1ULL) {
      eq &= plane[p];
    } else {
      gt |= eq & plane[p];
      eq &= ~plane[p];
    }
  }
  if (n % 2 == 0) gt |= eq & tie_mask;
  return gt;
}

}  // namespace detail

}  // namespace fhdnn::hdc
