#include "hdc/classifier.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace fhdnn::hdc {

namespace {

void check_batch(const Tensor& h, std::int64_t d) {
  FHDNN_CHECK(h.ndim() == 2 && h.dim(1) == d,
              "expected (N, " << d << ") hypervectors, got "
                              << shape_to_string(h.shape()));
}

}  // namespace

HdClassifier::HdClassifier(std::int64_t num_classes, std::int64_t hd_dim)
    : k_(num_classes), d_(hd_dim), c_(Shape{num_classes, hd_dim}) {
  FHDNN_CHECK(num_classes > 1 && hd_dim > 0,
              "HdClassifier(K=" << num_classes << ", d=" << hd_dim << ")");
}

void HdClassifier::bundle(const Tensor& h,
                          const std::vector<std::int64_t>& labels) {
  check_batch(h, d_);
  FHDNN_CHECK(static_cast<std::int64_t>(labels.size()) == h.dim(0),
              "bundle labels size mismatch");
  for (std::int64_t i = 0; i < h.dim(0); ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    FHDNN_CHECK(y >= 0 && y < k_, "label " << y << " out of range " << k_);
    for (std::int64_t j = 0; j < d_; ++j) c_(y, j) += h(i, j);
  }
}

Tensor HdClassifier::similarities(const Tensor& h) const {
  check_batch(h, d_);
  const std::int64_t n = h.dim(0);
  // Precompute prototype norms.
  std::vector<double> cnorm(static_cast<std::size_t>(k_));
  for (std::int64_t k = 0; k < k_; ++k) {
    double s = 0.0;
    for (std::int64_t j = 0; j < d_; ++j) {
      s += static_cast<double>(c_(k, j)) * c_(k, j);
    }
    cnorm[static_cast<std::size_t>(k)] = std::sqrt(s);
  }
  Tensor sim(Shape{n, k_});
  for (std::int64_t i = 0; i < n; ++i) {
    double hnorm = 0.0;
    for (std::int64_t j = 0; j < d_; ++j) {
      hnorm += static_cast<double>(h(i, j)) * h(i, j);
    }
    hnorm = std::sqrt(hnorm);
    for (std::int64_t k = 0; k < k_; ++k) {
      double dot = 0.0;
      for (std::int64_t j = 0; j < d_; ++j) {
        dot += static_cast<double>(h(i, j)) * c_(k, j);
      }
      const double denom = hnorm * cnorm[static_cast<std::size_t>(k)];
      sim(i, k) = denom > 0.0 ? static_cast<float>(dot / denom) : 0.0F;
    }
  }
  return sim;
}

Tensor HdClassifier::masked_similarities(const Tensor& h,
                                         const std::vector<bool>& mask) const {
  check_batch(h, d_);
  FHDNN_CHECK(static_cast<std::int64_t>(mask.size()) == d_,
              "mask size " << mask.size() << " != d " << d_);
  const std::int64_t n = h.dim(0);
  std::vector<double> cnorm(static_cast<std::size_t>(k_));
  for (std::int64_t k = 0; k < k_; ++k) {
    double s = 0.0;
    for (std::int64_t j = 0; j < d_; ++j) {
      if (!mask[static_cast<std::size_t>(j)]) continue;
      s += static_cast<double>(c_(k, j)) * c_(k, j);
    }
    cnorm[static_cast<std::size_t>(k)] = std::sqrt(s);
  }
  Tensor sim(Shape{n, k_});
  for (std::int64_t i = 0; i < n; ++i) {
    double hnorm = 0.0;
    for (std::int64_t j = 0; j < d_; ++j) {
      if (!mask[static_cast<std::size_t>(j)]) continue;
      hnorm += static_cast<double>(h(i, j)) * h(i, j);
    }
    hnorm = std::sqrt(hnorm);
    for (std::int64_t k = 0; k < k_; ++k) {
      double dot = 0.0;
      for (std::int64_t j = 0; j < d_; ++j) {
        if (!mask[static_cast<std::size_t>(j)]) continue;
        dot += static_cast<double>(h(i, j)) * c_(k, j);
      }
      const double denom = hnorm * cnorm[static_cast<std::size_t>(k)];
      sim(i, k) = denom > 0.0 ? static_cast<float>(dot / denom) : 0.0F;
    }
  }
  return sim;
}

std::vector<std::int64_t> HdClassifier::predict(const Tensor& h) const {
  const Tensor sim = similarities(h);
  std::vector<std::int64_t> out(static_cast<std::size_t>(sim.dim(0)));
  for (std::int64_t i = 0; i < sim.dim(0); ++i) {
    std::int64_t best = 0;
    float best_v = sim(i, 0);
    for (std::int64_t k = 1; k < k_; ++k) {
      if (sim(i, k) > best_v) {
        best_v = sim(i, k);
        best = k;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

std::int64_t HdClassifier::refine_epoch(const Tensor& h,
                                        const std::vector<std::int64_t>& labels,
                                        float lr) {
  check_batch(h, d_);
  FHDNN_CHECK(static_cast<std::int64_t>(labels.size()) == h.dim(0),
              "refine labels size mismatch");
  std::int64_t updates = 0;
  // Sequential (online) refinement: each update immediately affects later
  // predictions, as in standard HD retraining.
  for (std::int64_t i = 0; i < h.dim(0); ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    FHDNN_CHECK(y >= 0 && y < k_, "label " << y << " out of range " << k_);
    // Predict this single row against current prototypes.
    std::int64_t best = 0;
    double best_sim = -2.0;
    for (std::int64_t k = 0; k < k_; ++k) {
      double dot = 0.0, cn = 0.0;
      for (std::int64_t j = 0; j < d_; ++j) {
        dot += static_cast<double>(h(i, j)) * c_(k, j);
        cn += static_cast<double>(c_(k, j)) * c_(k, j);
      }
      const double sim = cn > 0.0 ? dot / std::sqrt(cn) : 0.0;
      if (sim > best_sim) {
        best_sim = sim;
        best = k;
      }
    }
    if (best != y) {
      for (std::int64_t j = 0; j < d_; ++j) {
        const float v = lr * h(i, j);
        c_(y, j) += v;
        c_(best, j) -= v;
      }
      ++updates;
    }
  }
  return updates;
}

std::int64_t HdClassifier::refine_epoch_adaptive(
    const Tensor& h, const std::vector<std::int64_t>& labels, float lr) {
  check_batch(h, d_);
  FHDNN_CHECK(static_cast<std::int64_t>(labels.size()) == h.dim(0),
              "refine labels size mismatch");
  std::int64_t updates = 0;
  for (std::int64_t i = 0; i < h.dim(0); ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    FHDNN_CHECK(y >= 0 && y < k_, "label " << y << " out of range " << k_);
    // Cosine similarity of this row against every prototype.
    double hnorm = 0.0;
    for (std::int64_t j = 0; j < d_; ++j) {
      hnorm += static_cast<double>(h(i, j)) * h(i, j);
    }
    hnorm = std::sqrt(hnorm);
    std::int64_t best = 0;
    double best_sim = -2.0, y_sim = 0.0;
    for (std::int64_t k = 0; k < k_; ++k) {
      double dot = 0.0, cn = 0.0;
      for (std::int64_t j = 0; j < d_; ++j) {
        dot += static_cast<double>(h(i, j)) * c_(k, j);
        cn += static_cast<double>(c_(k, j)) * c_(k, j);
      }
      const double denom = hnorm * std::sqrt(cn);
      const double sim = denom > 0.0 ? dot / denom : 0.0;
      if (sim > best_sim) {
        best_sim = sim;
        best = k;
      }
      if (k == y) y_sim = sim;
    }
    if (best != y) {
      const float gain_y = lr * static_cast<float>(1.0 - y_sim);
      const float gain_b = lr * static_cast<float>(1.0 - best_sim);
      for (std::int64_t j = 0; j < d_; ++j) {
        c_(y, j) += gain_y * h(i, j);
        c_(best, j) -= gain_b * h(i, j);
      }
      ++updates;
    }
  }
  return updates;
}

double HdClassifier::accuracy(const Tensor& h,
                              const std::vector<std::int64_t>& labels) const {
  const auto preds = predict(h);
  FHDNN_CHECK(preds.size() == labels.size(), "accuracy size mismatch");
  if (preds.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

std::vector<std::int64_t> classify_packed(const PackedModel& prototypes,
                                          const PackedModel& queries) {
  FHDNN_CHECK(prototypes.d == queries.d, "classify_packed dim mismatch: "
                                             << prototypes.d << " vs "
                                             << queries.d);
  FHDNN_CHECK(prototypes.rows > 0, "classify_packed with no prototypes");
  const auto& k = simd::kernels();
  const std::int64_t nw = prototypes.words_per_row();
  std::vector<std::int64_t> out(static_cast<std::size_t>(queries.rows));
  for (std::int64_t i = 0; i < queries.rows; ++i) {
    const std::uint64_t* q = queries.row(i).data();
    std::int64_t best = 0;
    std::uint64_t best_h = k.hamming_words(q, prototypes.row(0).data(), nw);
    for (std::int64_t c = 1; c < prototypes.rows; ++c) {
      const std::uint64_t h =
          k.hamming_words(q, prototypes.row(c).data(), nw);
      if (h < best_h) {
        best_h = h;
        best = c;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

void HdClassifier::set_prototypes(Tensor c) {
  FHDNN_CHECK(c.ndim() == 2 && c.dim(0) == k_ && c.dim(1) == d_,
              "set_prototypes shape " << shape_to_string(c.shape()));
  c_ = std::move(c);
}

}  // namespace fhdnn::hdc
