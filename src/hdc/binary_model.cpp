#include "hdc/binary_model.hpp"

#include <algorithm>
#include <bit>

#include "hdc/packed.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace fhdnn::hdc {

BinaryModel binarize(const Tensor& prototypes) {
  FHDNN_CHECK(prototypes.ndim() == 2, "binarize expects (K, d), got "
                                          << shape_to_string(prototypes.shape()));
  BinaryModel m;
  m.classes = prototypes.dim(0);
  m.hd_dim = prototypes.dim(1);
  const std::uint64_t total = m.payload_bits();
  m.bits.resize(static_cast<std::size_t>((total + 63) / 64));
  // The (K, d) floats are contiguous, so the whole payload is one
  // pack_signs call (bit = value >= 0, tail bits zeroed).
  simd::kernels().pack_signs(prototypes.data().data(), m.bits.data(),
                             static_cast<std::int64_t>(total));
  return m;
}

Tensor expand(const BinaryModel& model) {
  FHDNN_CHECK(model.classes > 0 && model.hd_dim > 0, "empty BinaryModel");
  const std::uint64_t total = model.payload_bits();
  FHDNN_CHECK(model.bits.size() == (total + 63) / 64,
              "BinaryModel bit storage inconsistent");
  Tensor out(Shape{model.classes, model.hd_dim});
  simd::kernels().unpack_signs(model.bits.data(), out.data().data(),
                               static_cast<std::int64_t>(total));
  return out;
}

std::size_t flip_binary_model_bits(BinaryModel& model, double ber, Rng& rng) {
  if (ber <= 0.0) return 0;
  // Same edge-case policy as channel::geometric_gap: a deadline-scaled BER
  // may exceed 1.0, which means "flip every bit", not a domain error.
  ber = std::min(ber, 1.0);
  const std::uint64_t total = model.payload_bits();
  std::size_t flips = 0;
  std::uint64_t pos = rng.geometric(ber) - 1;
  while (pos < total) {
    model.bits[static_cast<std::size_t>(pos / 64)] ^= (1ULL << (pos % 64));
    ++flips;
    pos += rng.geometric(ber);
  }
  return flips;
}

BinaryModel majority_aggregate(const std::vector<BinaryModel>& models) {
  FHDNN_CHECK(!models.empty(), "majority_aggregate of nothing");
  const auto& first = models.front();
  for (const auto& m : models) {
    FHDNN_CHECK(m.classes == first.classes && m.hd_dim == first.hd_dim,
                "majority_aggregate shape mismatch");
  }
  BinaryModel out;
  out.classes = first.classes;
  out.hd_dim = first.hd_dim;
  const std::uint64_t total = out.payload_bits();
  out.bits.assign(first.bits.size(), 0);
  // Word-parallel vote counting (see hdc/packed.hpp detail): every word of
  // the contiguous payload starts at an even flat index, so the index-
  // parity tie mask has even phase throughout.
  const std::size_t n = models.size();
  const int planes = std::bit_width(n);
  const std::int64_t nwords = static_cast<std::int64_t>(out.bits.size());
  const std::uint64_t last_mask = tail_mask(static_cast<std::int64_t>(total));
  std::uint64_t plane[64];
  for (std::int64_t w = 0; w < nwords; ++w) {
    for (int p = 0; p < planes; ++p) plane[p] = 0;
    for (const auto& m : models) {
      detail::add_vote_word(plane, planes,
                            m.bits[static_cast<std::size_t>(w)]);
    }
    std::uint64_t r =
        detail::majority_word(plane, planes, n, detail::kEvenPhaseTies);
    if (w == nwords - 1) r &= last_mask;
    out.bits[static_cast<std::size_t>(w)] = r;
  }
  return out;
}

}  // namespace fhdnn::hdc
