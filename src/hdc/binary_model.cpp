#include "hdc/binary_model.hpp"

#include "util/error.hpp"

namespace fhdnn::hdc {

BinaryModel binarize(const Tensor& prototypes) {
  FHDNN_CHECK(prototypes.ndim() == 2, "binarize expects (K, d), got "
                                          << shape_to_string(prototypes.shape()));
  BinaryModel m;
  m.classes = prototypes.dim(0);
  m.hd_dim = prototypes.dim(1);
  const std::uint64_t total = m.payload_bits();
  m.bits.assign(static_cast<std::size_t>((total + 63) / 64), 0);
  const auto data = prototypes.data();
  for (std::uint64_t i = 0; i < total; ++i) {
    if (data[static_cast<std::size_t>(i)] >= 0.0F) {
      m.bits[static_cast<std::size_t>(i / 64)] |= (1ULL << (i % 64));
    }
  }
  return m;
}

Tensor expand(const BinaryModel& model) {
  FHDNN_CHECK(model.classes > 0 && model.hd_dim > 0, "empty BinaryModel");
  const std::uint64_t total = model.payload_bits();
  FHDNN_CHECK(model.bits.size() == (total + 63) / 64,
              "BinaryModel bit storage inconsistent");
  Tensor out(Shape{model.classes, model.hd_dim});
  auto data = out.data();
  for (std::uint64_t i = 0; i < total; ++i) {
    const bool set = model.bits[static_cast<std::size_t>(i / 64)] &
                     (1ULL << (i % 64));
    data[static_cast<std::size_t>(i)] = set ? 1.0F : -1.0F;
  }
  return out;
}

std::size_t flip_binary_model_bits(BinaryModel& model, double ber, Rng& rng) {
  if (ber <= 0.0) return 0;
  const std::uint64_t total = model.payload_bits();
  std::size_t flips = 0;
  std::uint64_t pos = rng.geometric(ber) - 1;
  while (pos < total) {
    model.bits[static_cast<std::size_t>(pos / 64)] ^= (1ULL << (pos % 64));
    ++flips;
    pos += rng.geometric(ber);
  }
  return flips;
}

BinaryModel majority_aggregate(const std::vector<BinaryModel>& models) {
  FHDNN_CHECK(!models.empty(), "majority_aggregate of nothing");
  const auto& first = models.front();
  for (const auto& m : models) {
    FHDNN_CHECK(m.classes == first.classes && m.hd_dim == first.hd_dim,
                "majority_aggregate shape mismatch");
  }
  BinaryModel out;
  out.classes = first.classes;
  out.hd_dim = first.hd_dim;
  const std::uint64_t total = out.payload_bits();
  out.bits.assign(first.bits.size(), 0);
  const std::size_t majority_at = models.size() / 2;  // ties (n even) -> +1
  for (std::uint64_t i = 0; i < total; ++i) {
    std::size_t votes = 0;
    for (const auto& m : models) {
      if (m.bits[static_cast<std::size_t>(i / 64)] & (1ULL << (i % 64))) {
        ++votes;
      }
    }
    // +1 wins on >= half the votes (sign(0) := +1 convention).
    if (votes >= models.size() - majority_at) {
      out.bits[static_cast<std::size_t>(i / 64)] |= (1ULL << (i % 64));
    }
  }
  return out;
}

}  // namespace fhdnn::hdc
