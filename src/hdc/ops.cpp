#include "hdc/ops.hpp"

#include "util/error.hpp"

namespace fhdnn::hdc {

Tensor random_bipolar(std::int64_t d, Rng& rng) {
  FHDNN_CHECK(d > 0, "random_bipolar d=" << d);
  Tensor v(Shape{d});
  for (auto& x : v.data()) x = rng.bernoulli(0.5) ? 1.0F : -1.0F;
  return v;
}

Tensor bind(const Tensor& a, const Tensor& b) {
  FHDNN_CHECK(a.same_shape(b), "bind shape mismatch: "
                                   << shape_to_string(a.shape()) << " vs "
                                   << shape_to_string(b.shape()));
  Tensor c = a;
  auto cd = c.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] *= bd[i];
  return c;
}

Tensor bundle(const std::vector<Tensor>& vs) {
  FHDNN_CHECK(!vs.empty(), "bundle of nothing");
  Tensor acc = vs.front();
  for (std::size_t i = 1; i < vs.size(); ++i) acc.axpy(1.0F, vs[i]);
  return acc;
}

Tensor bundle_majority(const std::vector<Tensor>& vs) {
  Tensor acc = bundle(vs);
  auto d = acc.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] > 0.0F) {
      d[i] = 1.0F;
    } else if (d[i] < 0.0F) {
      d[i] = -1.0F;
    } else {
      // Tied vote: index-parity rule (see header) instead of sign()'s
      // blanket 0 -> +1, which would bias even-count bundles.
      d[i] = (i % 2 == 0) ? 1.0F : -1.0F;
    }
  }
  return acc;
}

Tensor permute(const Tensor& v, std::int64_t k) {
  const std::int64_t d = v.numel();
  FHDNN_CHECK(d > 0, "permute of empty vector");
  std::int64_t shift = k % d;
  if (shift < 0) shift += d;
  Tensor out(v.shape());
  auto src = v.data();
  auto dst = out.data();
  for (std::int64_t i = 0; i < d; ++i) {
    dst[static_cast<std::size_t>((i + shift) % d)] =
        src[static_cast<std::size_t>(i)];
  }
  return out;
}

double hamming_distance(const Tensor& a, const Tensor& b) {
  FHDNN_CHECK(a.same_shape(b), "hamming shape mismatch");
  auto ad = a.data();
  auto bd = b.data();
  FHDNN_CHECK(!ad.empty(), "hamming of empty vectors");
  std::size_t differ = 0;
  for (std::size_t i = 0; i < ad.size(); ++i) {
    FHDNN_CHECK((ad[i] == 1.0F || ad[i] == -1.0F) &&
                    (bd[i] == 1.0F || bd[i] == -1.0F),
                "hamming_distance requires bipolar inputs");
    differ += (ad[i] != bd[i]);
  }
  return static_cast<double>(differ) / static_cast<double>(ad.size());
}

Tensor sign(const Tensor& v) {
  Tensor out = v;
  for (auto& x : out.data()) x = (x >= 0.0F) ? 1.0F : -1.0F;
  return out;
}

}  // namespace fhdnn::hdc
