// Record-based (ID-level) hyperdimensional encoder — the other standard HDC
// encoding family (the paper's encoder of choice is the random projection
// of §3.3; ID-level encoding is the classic alternative from the HDC
// literature it builds on, provided here for completeness and ablation).
//
// Each feature position i gets a random bipolar *ID* hypervector ID_i; the
// feature's value is quantized into one of Q levels, each with a *level*
// hypervector L_q built by progressive bit-flipping so that nearby levels
// are similar (L_0 random; L_{q+1} flips d/(2Q) fresh positions of L_q, so
// L_0 and L_{Q-1} are ~orthogonal). The encoding of a feature vector z is
//   h = sign( sum_i ID_i * L_{quantize(z_i)} ).
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fhdnn::hdc {

class IdLevelEncoder {
 public:
  /// n features -> d dims with Q quantization levels over [lo, hi].
  /// Values outside [lo, hi] clamp to the edge levels.
  IdLevelEncoder(std::int64_t feature_dim, std::int64_t hd_dim,
                 std::int64_t levels, float lo, float hi, Rng& rng);

  std::int64_t feature_dim() const { return n_; }
  std::int64_t hd_dim() const { return d_; }
  std::int64_t levels() const { return q_; }

  /// Quantize one value to a level index in [0, levels).
  std::int64_t quantize(float value) const;

  /// Encode (n) or (N, n) features to bipolar hypervectors (d) / (N, d).
  Tensor encode(const Tensor& z) const;

  /// Similarity of two level hypervectors, for tests: nearby levels are
  /// similar, far levels ~orthogonal.
  double level_similarity(std::int64_t a, std::int64_t b) const;

 private:
  std::int64_t n_;
  std::int64_t d_;
  std::int64_t q_;
  float lo_;
  float hi_;
  Tensor ids_;     // (n, d) bipolar
  Tensor levels_;  // (Q, d) bipolar, progressively flipped
};

}  // namespace fhdnn::hdc
