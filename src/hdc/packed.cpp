#include "hdc/packed.hpp"

#include <bit>

#include "hdc/binary_model.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace fhdnn::hdc {

namespace {

using detail::add_vote_word;
using detail::kEvenPhaseTies;
using detail::majority_word;

/// out[w] = majority over members of word w, for nwords words laid out
/// consecutively, member m's words fetched by `word_of(m, w)`.
template <typename WordOf>
void majority_words(std::uint64_t* out, std::int64_t nwords, std::size_t n,
                    std::uint64_t tie_mask, std::uint64_t last_word_mask,
                    WordOf&& word_of) {
  const int planes = std::bit_width(n);
  std::uint64_t plane[64];
  for (std::int64_t w = 0; w < nwords; ++w) {
    for (int p = 0; p < planes; ++p) plane[p] = 0;
    for (std::size_t m = 0; m < n; ++m) {
      add_vote_word(plane, planes, word_of(m, w));
    }
    std::uint64_t r = majority_word(plane, planes, n, tie_mask);
    if (w == nwords - 1) r &= last_word_mask;
    out[w] = r;
  }
}

}  // namespace

PackedHV pack_hv(const Tensor& v) {
  const std::int64_t d = v.numel();
  FHDNN_CHECK(d > 0, "pack_hv of empty tensor");
  PackedHV out(d);
  simd::kernels().pack_signs(v.data().data(), out.words.data(), d);
  return out;
}

Tensor unpack_hv(const PackedHV& v) {
  FHDNN_CHECK(v.d > 0, "unpack_hv of empty PackedHV");
  FHDNN_CHECK(static_cast<std::int64_t>(v.words.size()) == words_for_bits(v.d),
              "PackedHV word storage inconsistent");
  Tensor out(Shape{v.d});
  simd::kernels().unpack_signs(v.words.data(), out.data().data(), v.d);
  return out;
}

PackedModel pack_rows(const Tensor& m) {
  FHDNN_CHECK(m.ndim() == 2, "pack_rows expects (N, d), got "
                                 << shape_to_string(m.shape()));
  PackedModel out(m.dim(0), m.dim(1));
  const auto& k = simd::kernels();
  const float* src = m.data().data();
  for (std::int64_t r = 0; r < out.rows; ++r) {
    k.pack_signs(src + r * out.d, out.row(r).data(), out.d);
  }
  return out;
}

Tensor unpack_rows(const PackedModel& m) {
  FHDNN_CHECK(m.rows > 0 && m.d > 0, "unpack_rows of empty PackedModel");
  FHDNN_CHECK(static_cast<std::int64_t>(m.words.size()) ==
                  m.rows * m.words_per_row(),
              "PackedModel word storage inconsistent");
  Tensor out(Shape{m.rows, m.d});
  const auto& k = simd::kernels();
  float* dst = out.data().data();
  for (std::int64_t r = 0; r < m.rows; ++r) {
    k.unpack_signs(m.row(r).data(), dst + r * m.d, m.d);
  }
  return out;
}

PackedHV xor_bind(const PackedHV& a, const PackedHV& b) {
  FHDNN_CHECK(a.d == b.d, "xor_bind dim mismatch: " << a.d << " vs " << b.d);
  PackedHV out(a.d);
  const std::int64_t nw = words_for_bits(a.d);
  simd::kernels().xor_words(a.words.data(), b.words.data(), out.words.data(),
                            nw);
  // Bit 1 encodes +1, so equal signs (product +1) must yield a set bit:
  // under this convention bind is the *complement* of the XOR the kernel
  // computes (XNOR). The complement sets the dead tail bits, so re-mask.
  for (std::int64_t w = 0; w < nw; ++w) {
    out.words[static_cast<std::size_t>(w)] =
        ~out.words[static_cast<std::size_t>(w)];
  }
  out.words[static_cast<std::size_t>(nw - 1)] &= tail_mask(a.d);
  return out;
}

PackedHV rotate(const PackedHV& v, std::int64_t k) {
  const std::int64_t d = v.d;
  FHDNN_CHECK(d > 0, "rotate of empty PackedHV");
  std::int64_t s = k % d;
  if (s < 0) s += d;
  PackedHV out(d);
  if (s == 0) {
    out.words = v.words;
    return out;
  }
  // out = ((v << s) | (v >> (d - s))) over the d-bit integer: the rotated
  // vector places input bit i at position (i + s) mod d, matching permute.
  const std::int64_t nw = words_for_bits(d);
  const auto& in = v.words;
  {
    // Left part: v << s.
    const std::int64_t ws = s / 64;
    const int bs = static_cast<int>(s % 64);
    for (std::int64_t w = nw - 1; w >= ws; --w) {
      const std::uint64_t lo = in[static_cast<std::size_t>(w - ws)];
      const std::uint64_t hi =
          (bs != 0 && w - ws - 1 >= 0)
              ? in[static_cast<std::size_t>(w - ws - 1)]
              : 0ULL;
      out.words[static_cast<std::size_t>(w)] =
          bs != 0 ? (lo << bs) | (hi >> (64 - bs)) : lo;
    }
  }
  {
    // Right part: v >> (d - s); the zeroed input tail keeps this exact.
    const std::int64_t t = d - s;
    const std::int64_t ws = t / 64;
    const int bs = static_cast<int>(t % 64);
    for (std::int64_t w = 0; w + ws < nw; ++w) {
      const std::uint64_t lo = in[static_cast<std::size_t>(w + ws)];
      const std::uint64_t hi = (bs != 0 && w + ws + 1 < nw)
                                   ? in[static_cast<std::size_t>(w + ws + 1)]
                                   : 0ULL;
      out.words[static_cast<std::size_t>(w)] |=
          bs != 0 ? (lo >> bs) | (hi << (64 - bs)) : lo;
    }
  }
  out.words[static_cast<std::size_t>(nw - 1)] &= tail_mask(d);
  return out;
}

std::uint64_t hamming(const PackedHV& a, const PackedHV& b) {
  FHDNN_CHECK(a.d == b.d, "hamming dim mismatch: " << a.d << " vs " << b.d);
  return simd::kernels().hamming_words(a.words.data(), b.words.data(),
                                       words_for_bits(a.d));
}

double hamming_norm(const PackedHV& a, const PackedHV& b) {
  return static_cast<double>(hamming(a, b)) / static_cast<double>(a.d);
}

double cosine(const PackedHV& a, const PackedHV& b) {
  return 1.0 - 2.0 * hamming_norm(a, b);
}

PackedHV bundle_majority_packed(const std::vector<PackedHV>& vs) {
  FHDNN_CHECK(!vs.empty(), "bundle_majority_packed of nothing");
  const std::int64_t d = vs.front().d;
  for (const auto& v : vs) {
    FHDNN_CHECK(v.d == d, "bundle_majority_packed dim mismatch");
  }
  PackedHV out(d);
  majority_words(out.words.data(), words_for_bits(d), vs.size(),
                 kEvenPhaseTies, tail_mask(d), [&](std::size_t m,
                                                   std::int64_t w) {
    return vs[m].words[static_cast<std::size_t>(w)];
  });
  return out;
}

PackedModel majority_aggregate_packed(const std::vector<PackedModel>& models) {
  FHDNN_CHECK(!models.empty(), "majority_aggregate_packed of nothing");
  const auto& first = models.front();
  for (const auto& m : models) {
    FHDNN_CHECK(m.rows == first.rows && m.d == first.d,
                "majority_aggregate_packed shape mismatch");
  }
  PackedModel out(first.rows, first.d);
  const std::int64_t wpr = out.words_per_row();
  for (std::int64_t r = 0; r < out.rows; ++r) {
    // Row r starts at flat index r*d: when that is odd, the even/odd
    // phases swap and the tie mask flips.
    const std::uint64_t ties =
        (r * out.d) % 2 == 0 ? kEvenPhaseTies : ~kEvenPhaseTies;
    majority_words(out.row(r).data(), wpr, models.size(), ties,
                   tail_mask(out.d), [&](std::size_t m, std::int64_t w) {
                     return models[m].row(r)[static_cast<std::size_t>(w)];
                   });
  }
  return out;
}

PackedModel packed_from_binary(const BinaryModel& m) {
  FHDNN_CHECK(m.classes > 0 && m.hd_dim > 0, "packed_from_binary of empty");
  FHDNN_CHECK(m.bits.size() == (m.payload_bits() + 63) / 64,
              "BinaryModel bit storage inconsistent");
  PackedModel out(m.classes, m.hd_dim);
  for (std::int64_t r = 0; r < out.rows; ++r) {
    auto row = out.row(r);
    const std::uint64_t base = static_cast<std::uint64_t>(r) *
                               static_cast<std::uint64_t>(m.hd_dim);
    for (std::int64_t j = 0; j < m.hd_dim; ++j) {
      const std::uint64_t i = base + static_cast<std::uint64_t>(j);
      if (m.bits[static_cast<std::size_t>(i / 64)] & (1ULL << (i % 64))) {
        row[static_cast<std::size_t>(j / 64)] |= (1ULL << (j % 64));
      }
    }
  }
  return out;
}

BinaryModel binary_from_packed(const PackedModel& m) {
  FHDNN_CHECK(m.rows > 0 && m.d > 0, "binary_from_packed of empty");
  BinaryModel out;
  out.classes = m.rows;
  out.hd_dim = m.d;
  const std::uint64_t total = out.payload_bits();
  out.bits.assign(static_cast<std::size_t>((total + 63) / 64), 0);
  for (std::int64_t r = 0; r < m.rows; ++r) {
    const auto row = m.row(r);
    const std::uint64_t base = static_cast<std::uint64_t>(r) *
                               static_cast<std::uint64_t>(m.d);
    for (std::int64_t j = 0; j < m.d; ++j) {
      if (row[static_cast<std::size_t>(j / 64)] & (1ULL << (j % 64))) {
        const std::uint64_t i = base + static_cast<std::uint64_t>(j);
        out.bits[static_cast<std::size_t>(i / 64)] |= (1ULL << (i % 64));
      }
    }
  }
  return out;
}

}  // namespace fhdnn::hdc
