#include "hdc/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::hdc {

Quantizer::Quantizer(int bitwidth) : bitwidth_(bitwidth) {
  FHDNN_CHECK(bitwidth >= 2 && bitwidth <= 31, "quantizer bitwidth " << bitwidth);
  max_level_ = static_cast<std::int32_t>((1U << (bitwidth - 1)) - 1U);
}

QuantizedVector Quantizer::quantize(std::span<const float> values) const {
  QuantizedVector q;
  q.bitwidth = bitwidth_;
  q.values.reserve(values.size());
  float max_abs = 0.0F;
  for (const float v : values) {
    // Non-finite values must be rejected up front: an Inf would silently
    // absorb the gain (driving every other element to 0), and either NaN
    // or Inf reaching llround below is undefined behavior.
    FHDNN_CHECK(std::isfinite(v), "quantize of non-finite value " << v);
    max_abs = std::max(max_abs, std::abs(v));
  }
  q.gain = max_abs > 0.0F ? static_cast<double>(max_level_) / max_abs : 1.0;
  for (const float v : values) {
    // llround then clamp: the max element lands exactly on ±max_level.
    const auto scaled = std::llround(static_cast<double>(v) * q.gain);
    const auto clamped = std::clamp<long long>(scaled, -max_level_, max_level_);
    q.values.push_back(static_cast<std::int32_t>(clamped));
  }
  return q;
}

std::vector<float> Quantizer::dequantize(const QuantizedVector& q) const {
  FHDNN_CHECK(q.gain > 0.0, "dequantize gain " << q.gain);
  std::vector<float> out;
  out.reserve(q.values.size());
  for (const std::int32_t v : q.values) {
    out.push_back(static_cast<float>(static_cast<double>(v) / q.gain));
  }
  return out;
}

std::vector<QuantizedVector> Quantizer::quantize_rows(
    const Tensor& prototypes) const {
  FHDNN_CHECK(prototypes.ndim() == 2,
              "quantize_rows expects (K, d), got "
                  << shape_to_string(prototypes.shape()));
  const std::int64_t k = prototypes.dim(0), d = prototypes.dim(1);
  std::vector<QuantizedVector> rows;
  rows.reserve(static_cast<std::size_t>(k));
  const auto data = prototypes.data();
  for (std::int64_t i = 0; i < k; ++i) {
    rows.push_back(quantize(data.subspan(static_cast<std::size_t>(i * d),
                                         static_cast<std::size_t>(d))));
  }
  return rows;
}

Tensor Quantizer::dequantize_rows(const std::vector<QuantizedVector>& rows,
                                  std::int64_t hd_dim) const {
  FHDNN_CHECK(!rows.empty(), "dequantize_rows with no rows");
  Tensor out(Shape{static_cast<std::int64_t>(rows.size()), hd_dim});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    FHDNN_CHECK(static_cast<std::int64_t>(rows[i].values.size()) == hd_dim,
                "row " << i << " has " << rows[i].values.size()
                       << " values, expected " << hd_dim);
    const auto vals = dequantize(rows[i]);
    for (std::int64_t j = 0; j < hd_dim; ++j) {
      out(static_cast<std::int64_t>(i), j) = vals[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

double Quantizer::max_roundtrip_error(double max_abs) const {
  if (max_abs <= 0.0) return 0.0;
  // Half a quantization step + one float32 ulp of the value range (the
  // dequantized result is stored as float).
  return max_abs / (2.0 * static_cast<double>(max_level_)) +
         max_abs * 1.2e-7;
}

}  // namespace fhdnn::hdc
