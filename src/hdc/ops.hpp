// Classic hyperdimensional algebra: bind, bundle, permute, and the
// similarity metrics they rely on (Kanerva 2009, the paper's ref. [11]).
//
// These operate on bipolar hypervectors (entries in {-1, +1}) or general
// real hypervectors:
//   * bind (elementwise multiply)  — associates two hypervectors; for
//     bipolar inputs it is its own inverse and distributes over bundling;
//   * bundle (elementwise sum, optionally sign-thresholded) — superposes a
//     set into one vector similar to each member;
//   * permute (cyclic rotation) — encodes sequence position; preserves
//     distances and is invertible.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fhdnn::hdc {

/// Random bipolar hypervector of dimension d (entries ±1, fair coin).
Tensor random_bipolar(std::int64_t d, Rng& rng);

/// Elementwise product. For bipolar a, b: bind(bind(a,b), b) == a.
Tensor bind(const Tensor& a, const Tensor& b);

/// Elementwise sum of a set of equal-shaped hypervectors.
Tensor bundle(const std::vector<Tensor>& vs);

/// Majority-vote bundle used by binary HD models: elementwise sign of
/// bundle(vs), with a zero sum (a tie, only possible for an even member
/// count) broken by *index parity* — element i resolves to +1 when i is
/// even and -1 when i is odd. A fixed ties-to-+1 rule would push every
/// tied element the same way and bias even-count aggregates toward +1;
/// the parity rule is still deterministic (bit-reproducible, no RNG
/// state) but alternates the tie direction so the net bias cancels. The
/// packed backend reproduces the same rule exactly
/// (hdc::bundle_majority_packed).
Tensor bundle_majority(const std::vector<Tensor>& vs);

/// Cyclic rotation by k positions (k may be negative or exceed d).
Tensor permute(const Tensor& v, std::int64_t k);

/// Normalized Hamming distance between two bipolar hypervectors: fraction
/// of positions that differ, in [0, 1]. Requires entries in {-1, +1}.
double hamming_distance(const Tensor& a, const Tensor& b);

/// Elementwise sign with sign(0) := +1 (the library-wide convention).
Tensor sign(const Tensor& v);

}  // namespace fhdnn::hdc
