// Binarized HD model transmission — an extension in the spirit of the
// paper's communication-efficiency goal.
//
// The full-precision prototype matrix C (K x d float) is the FHDnn update.
// Because inference only compares *directions*, the sign pattern of C
// already carries most of the decision information. Shipping sign(C) costs
// 1 bit per dimension — 32x less than float32 and 16x less than the B=16
// AGC path — and is naturally immune to the magnitude damage of bit flips
// (a flipped bit toggles one ±1, never creates a huge value).
//
// The trade-off is a small accuracy loss (quantified by
// bench/ablation_encoders) and the loss of magnitude information at the
// server, so aggregation becomes majority-vote over client sign patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fhdnn::hdc {

/// A sign-compressed prototype matrix: bits packed 64 per word, row-major.
struct BinaryModel {
  std::int64_t classes = 0;
  std::int64_t hd_dim = 0;
  std::vector<std::uint64_t> bits;  ///< ceil(K*d/64) words; 1 = positive

  std::uint64_t payload_bits() const {
    return static_cast<std::uint64_t>(classes) *
           static_cast<std::uint64_t>(hd_dim);
  }
};

/// sign-compress a (K, d) prototype matrix (sign(0) := +1).
BinaryModel binarize(const Tensor& prototypes);

/// Expand back to a bipolar (K, d) float matrix (entries ±1).
Tensor expand(const BinaryModel& model);

/// Flip each payload bit independently with probability `ber` (BSC).
/// Returns the number of flips.
std::size_t flip_binary_model_bits(BinaryModel& model, double ber, Rng& rng);

/// Majority-vote aggregation of client sign patterns: output bit is the
/// majority across models; a tie (even model count) is broken by the flat
/// bit index's parity — +1 at even indices, -1 at odd — so an even client
/// split adds no net +1 bias (see bundle_majority in hdc/ops.hpp for the
/// same rule on float hypervectors). All models must agree on shape.
BinaryModel majority_aggregate(const std::vector<BinaryModel>& models);

}  // namespace fhdnn::hdc
