// Hyperdimensional classifier (paper §3.4.1).
//
// The model is the matrix C of K class prototype hypervectors (K x d).
// Training:
//   * one-shot: bundle (sum) the hypervectors of each class into its
//     prototype, c_k = sum_i h_i^k;
//   * refinement: for each training hypervector, if the current prediction
//     is wrong, subtract it from the mispredicted prototype and add it to
//     the correct one.
// Inference: cosine similarity against each prototype, argmax.
//
// The prototype matrix is ordinary float storage here; the transmission
// path quantizes it to B-bit integers (hdc/quantizer.hpp), matching the
// paper's integer-represented class hypervectors.
#pragma once

#include <cstdint>
#include <vector>

#include "hdc/packed.hpp"
#include "tensor/tensor.hpp"

namespace fhdnn::hdc {

class HdClassifier {
 public:
  /// K-class classifier over d-dimensional hypervectors, zero-initialized.
  HdClassifier(std::int64_t num_classes, std::int64_t hd_dim);

  std::int64_t num_classes() const { return k_; }
  std::int64_t hd_dim() const { return d_; }

  /// One-shot learning: add each hypervector to its class prototype.
  /// h: (N, d) encoded batch; labels: N entries.
  void bundle(const Tensor& h, const std::vector<std::int64_t>& labels);

  /// One refinement epoch over the batch; returns the number of updates
  /// (mispredictions) performed. `lr` scales the subtract/add step (the
  /// paper uses 1).
  std::int64_t refine_epoch(const Tensor& h,
                            const std::vector<std::int64_t>& labels,
                            float lr = 1.0F);

  /// Margin-scaled ("OnlineHD"-style) refinement: on a mispredict, the
  /// correct prototype gains (1 - sim_correct) * h and the mispredicted one
  /// loses (1 - sim_wrong) * h, so confidently-wrong examples move the
  /// model more and nearly-correct ones barely perturb it. An extension
  /// beyond the paper's fixed-step rule; compare with refine_epoch.
  std::int64_t refine_epoch_adaptive(const Tensor& h,
                                     const std::vector<std::int64_t>& labels,
                                     float lr = 1.0F);

  /// Cosine similarities of each row of h against each prototype: (N, K).
  Tensor similarities(const Tensor& h) const;

  /// Similarities computed on a subset of dimensions (mask[i] == true means
  /// dimension i participates). Models the partial-information / packet-loss
  /// readout of paper Fig. 5.
  Tensor masked_similarities(const Tensor& h,
                             const std::vector<bool>& mask) const;

  /// Argmax class per row of h.
  std::vector<std::int64_t> predict(const Tensor& h) const;

  /// Fraction of rows predicted correctly.
  double accuracy(const Tensor& h, const std::vector<std::int64_t>& labels) const;

  /// The model C (K x d). Mutable access is the federated aggregation and
  /// channel-corruption hook.
  const Tensor& prototypes() const { return c_; }
  Tensor& prototypes() { return c_; }
  void set_prototypes(Tensor c);

 private:
  std::int64_t k_;
  std::int64_t d_;
  Tensor c_;  // (K, d)
};

/// Nearest-prototype classification on the bit-packed representation:
/// for each query row, the class with the minimum hamming distance
/// (strict <, first class wins ties). For bipolar vectors cosine is
/// 1 - 2*hamming/d, so this matches HdClassifier::predict on the
/// unpacked ±1 matrices exactly — pinned by tests/test_packed.cpp —
/// while costing one popcount pass per (query, class) pair instead of a
/// float dot product.
std::vector<std::int64_t> classify_packed(const PackedModel& prototypes,
                                          const PackedModel& queries);

}  // namespace fhdnn::hdc
