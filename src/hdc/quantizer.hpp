// AGC-style quantizer for HD model transmission (paper §3.5.2).
//
// Before uplink transmission each class hypervector is scaled so its largest
// magnitude hits the top of the B-bit signed integer range
// (G = (2^(B-1)-1) / max|c|), rounded to integers, transmitted, and scaled
// back down by the same G at the receiver. Bit errors therefore hit scaled
// integers, bounding the ratio damage a flipped bit can do to the
// similarity dot products.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace fhdnn::hdc {

/// One quantized vector: B-bit signed integers plus the gain used.
struct QuantizedVector {
  std::vector<std::int32_t> values;
  double gain = 1.0;   ///< scale-up factor G
  int bitwidth = 16;   ///< B
};

class Quantizer {
 public:
  /// bitwidth B in [2, 31]; values are stored in int32 but clamped to the
  /// signed B-bit range [-(2^(B-1)-1), 2^(B-1)-1].
  explicit Quantizer(int bitwidth);

  int bitwidth() const { return bitwidth_; }
  std::int32_t max_level() const { return max_level_; }

  /// Scale-up + round. An all-zero input gets gain 1 (nothing to amplify).
  QuantizedVector quantize(std::span<const float> values) const;

  /// Scale-down (receiver side).
  std::vector<float> dequantize(const QuantizedVector& q) const;

  /// Quantize each row of a (K, d) prototype matrix independently — each
  /// class hypervector gets its own gain, per the paper.
  std::vector<QuantizedVector> quantize_rows(const Tensor& prototypes) const;

  /// Rebuild a (K, d) matrix from per-row quantized vectors.
  Tensor dequantize_rows(const std::vector<QuantizedVector>& rows,
                         std::int64_t hd_dim) const;

  /// Worst-case absolute round-trip error for a vector with the given max
  /// magnitude: half a quantization step, max|c| / (2 * (2^(B-1)-1)), plus
  /// the float32 representation error of the dequantized value (relevant
  /// once B exceeds the 24-bit float mantissa).
  double max_roundtrip_error(double max_abs) const;

 private:
  int bitwidth_;
  std::int32_t max_level_;
};

}  // namespace fhdnn::hdc
