#include "hdc/encoder.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace fhdnn::hdc {

RandomProjectionEncoder::RandomProjectionEncoder(std::int64_t feature_dim,
                                                 std::int64_t hd_dim, Rng& rng)
    : n_(feature_dim), d_(hd_dim), phi_(Shape{hd_dim, feature_dim}) {
  FHDNN_CHECK(feature_dim > 0 && hd_dim > 0,
              "encoder dims n=" << feature_dim << " d=" << hd_dim);
  // Rows uniform on the unit sphere: draw Gaussian, normalize each row.
  for (std::int64_t i = 0; i < d_; ++i) {
    double norm_sq = 0.0;
    for (std::int64_t j = 0; j < n_; ++j) {
      const double g = rng.normal();
      phi_(i, j) = static_cast<float>(g);
      norm_sq += g * g;
    }
    // A d-row of exact zeros has probability 0 but guard anyway.
    const double norm = std::sqrt(norm_sq);
    FHDNN_CHECK(norm > 0.0, "degenerate projection row");
    const float inv = static_cast<float>(1.0 / norm);
    for (std::int64_t j = 0; j < n_; ++j) phi_(i, j) *= inv;
  }
}

Tensor RandomProjectionEncoder::encode_linear(const Tensor& z) const {
  const bool batched = z.ndim() == 2;
  FHDNN_CHECK(batched || z.ndim() == 1,
              "encode expects (n) or (N, n), got " << shape_to_string(z.shape()));
  const Tensor zz = batched ? z : z.reshaped(Shape{1, n_});
  FHDNN_CHECK(zz.dim(1) == n_, "feature dim " << zz.dim(1) << " != encoder n "
                                              << n_);
  Tensor h = ops::matmul_bt(zz, phi_);  // (N, d)
  return batched ? h : h.reshaped(Shape{d_});
}

Tensor RandomProjectionEncoder::encode(const Tensor& z) const {
  Tensor h = encode_linear(z);
  for (auto& v : h.data()) v = (v >= 0.0F) ? 1.0F : -1.0F;
  return h;
}

Tensor RandomProjectionEncoder::reconstruct(const Tensor& h) const {
  const bool batched = h.ndim() == 2;
  FHDNN_CHECK(batched || h.ndim() == 1,
              "reconstruct expects (d) or (N, d), got "
                  << shape_to_string(h.shape()));
  const Tensor hh = batched ? h : h.reshaped(Shape{1, d_});
  FHDNN_CHECK(hh.dim(1) == d_, "hd dim " << hh.dim(1) << " != encoder d " << d_);
  // (N, d) x (d, n) -> (N, n); scale by n/d for unbiasedness.
  Tensor z = ops::matmul(hh, phi_);
  z.scale(static_cast<float>(n_) / static_cast<float>(d_));
  return batched ? z : z.reshaped(Shape{n_});
}

}  // namespace fhdnn::hdc
