#include "hdc/encoder.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/error.hpp"

namespace fhdnn::hdc {

RandomProjectionEncoder::RandomProjectionEncoder(std::int64_t feature_dim,
                                                 std::int64_t hd_dim, Rng& rng)
    : n_(feature_dim), d_(hd_dim), phi_(Shape{hd_dim, feature_dim}) {
  FHDNN_CHECK(feature_dim > 0 && hd_dim > 0,
              "encoder dims n=" << feature_dim << " d=" << hd_dim);
  // Rows uniform on the unit sphere: draw Gaussian, normalize each row.
  for (std::int64_t i = 0; i < d_; ++i) {
    double norm_sq = 0.0;
    for (std::int64_t j = 0; j < n_; ++j) {
      const double g = rng.normal();
      phi_(i, j) = static_cast<float>(g);
      norm_sq += g * g;
    }
    // A d-row of exact zeros has probability 0 but guard anyway.
    const double norm = std::sqrt(norm_sq);
    FHDNN_CHECK(norm > 0.0, "degenerate projection row");
    const float inv = static_cast<float>(1.0 / norm);
    for (std::int64_t j = 0; j < n_; ++j) phi_(i, j) *= inv;
  }
}

void RandomProjectionEncoder::encode_linear_into(ConstTensorView z,
                                                 TensorView h) const {
  const bool batched = z.ndim() == 2;
  FHDNN_CHECK(batched || z.ndim() == 1,
              "encode expects (n) or (N, n), got " << z.shape_string());
  const std::int64_t rows = batched ? z.dim(0) : 1;
  FHDNN_CHECK(z.dim(batched ? 1 : 0) == n_,
              "feature dim " << z.dim(batched ? 1 : 0) << " != encoder n "
                             << n_);
  FHDNN_CHECK(h.numel() == rows * d_,
              "encode output shape " << h.shape_string());
  // View both sides as matrices — no reshape copies.
  const ConstTensorView z2(z.data(), {rows, n_});
  ops::matmul_bt_into(z2, phi_, TensorView(h.data(), {rows, d_}));
}

Tensor RandomProjectionEncoder::encode_linear(const Tensor& z) const {
  const bool batched = z.ndim() == 2;
  FHDNN_CHECK(batched || z.ndim() == 1,
              "encode expects (n) or (N, n), got " << shape_to_string(z.shape()));
  Tensor h(batched ? Shape{z.dim(0), d_} : Shape{d_});
  encode_linear_into(z, h);
  return h;
}

void RandomProjectionEncoder::encode_into(ConstTensorView z,
                                          TensorView h) const {
  encode_linear_into(z, h);
  float* ph = h.data();
  for (std::int64_t i = 0; i < h.numel(); ++i) {
    ph[i] = (ph[i] >= 0.0F) ? 1.0F : -1.0F;
  }
}

Tensor RandomProjectionEncoder::encode(const Tensor& z) const {
  const bool batched = z.ndim() == 2;
  FHDNN_CHECK(batched || z.ndim() == 1,
              "encode expects (n) or (N, n), got " << shape_to_string(z.shape()));
  Tensor h(batched ? Shape{z.dim(0), d_} : Shape{d_});
  encode_into(z, h);
  return h;
}

void RandomProjectionEncoder::reconstruct_into(ConstTensorView h,
                                               TensorView z) const {
  const bool batched = h.ndim() == 2;
  FHDNN_CHECK(batched || h.ndim() == 1,
              "reconstruct expects (d) or (N, d), got " << h.shape_string());
  const std::int64_t rows = batched ? h.dim(0) : 1;
  FHDNN_CHECK(h.dim(batched ? 1 : 0) == d_,
              "hd dim " << h.dim(batched ? 1 : 0) << " != encoder d " << d_);
  FHDNN_CHECK(z.numel() == rows * n_,
              "reconstruct output shape " << z.shape_string());
  // (N, d) x (d, n) -> (N, n); scale by n/d for unbiasedness.
  const TensorView z2(z.data(), {rows, n_});
  ops::matmul_into(ConstTensorView(h.data(), {rows, d_}), phi_, z2);
  ops::scale_into(z2, static_cast<float>(n_) / static_cast<float>(d_), z2);
}

Tensor RandomProjectionEncoder::reconstruct(const Tensor& h) const {
  const bool batched = h.ndim() == 2;
  FHDNN_CHECK(batched || h.ndim() == 1,
              "reconstruct expects (d) or (N, d), got "
                  << shape_to_string(h.shape()));
  Tensor z(batched ? Shape{h.dim(0), n_} : Shape{n_});
  reconstruct_into(h, z);
  return z;
}

}  // namespace fhdnn::hdc
