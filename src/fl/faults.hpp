// Per-client fault injection for federated rounds.
//
// Real AIoT fleets fail in ways the plain dropout coin cannot express:
// clients crash mid-round, some devices are persistently slow (stragglers),
// links go down for stretches of rounds (outages), and link quality varies
// per client (a device at the cell edge sees a higher BER than one next to
// the base station). FaultModel draws all of these from named forks of its
// own root stream, so fault outcomes are deterministic in (seed, client,
// round), independent of client execution order and thread count — the
// engine's determinism contract (DESIGN.md §6) extends to the fault layer.
//
// Static traits (straggler slowdown, link-quality multiplier) are drawn
// once per client at construction; dynamic events (crash, outage windows)
// are pure functions of (client, round) computed from order-independent
// forks, so any caller may query any round at any time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <vector>

#include "util/rng.hpp"

namespace fhdnn::fl {

/// Fault injection for the *aggregator itself*: kill the engine after it
/// has processed `at_event` discrete events (1-based, cumulative across
/// rounds — the same counter RoundEngine::total_events() reports). The
/// engine throws AggregatorCrash at that boundary, after any checkpoint
/// due at the same boundary has been committed; tests sweep `at_event`
/// over every boundary and assert resumed runs match the golden history.
struct CrashPlan {
  bool enabled = false;
  std::uint64_t at_event = 0;
};

/// Thrown by RoundEngine when a CrashPlan fires. Deliberately NOT derived
/// from fhdnn::Error: a planned crash is not a contract violation, and
/// callers must be able to catch it specifically.
class AggregatorCrash : public std::exception {
 public:
  explicit AggregatorCrash(std::uint64_t at_event) : at_event_(at_event) {}
  const char* what() const noexcept override {
    return "injected aggregator crash";
  }
  std::uint64_t at_event() const noexcept { return at_event_; }

 private:
  std::uint64_t at_event_;
};

struct FaultConfig {
  /// Per-client per-round probability of crashing after training but before
  /// delivery (power loss, OOM kill). Crashed clients pay local compute but
  /// nothing reaches the server.
  double crash_prob = 0.0;
  /// Fraction of clients that are persistent stragglers, and the factor
  /// their local compute time is multiplied by (>= 1). Only observable
  /// through deadline-based rounds (engine.hpp).
  double straggler_fraction = 0.0;
  double straggler_slowdown = 4.0;
  /// Per-client per-round probability of *entering* an intermittent outage
  /// window; an outage makes the client undeliverable for `outage_rounds`
  /// consecutive rounds (the entering round included).
  double outage_prob = 0.0;
  int outage_rounds = 2;
  /// Per-client link-quality multiplier drawn uniformly from
  /// [1, error_multiplier_max]; channels scale their BER/loss rate up (or
  /// analog SNR down) by it via Channel::apply_scaled. 1.0 disables.
  double error_multiplier_max = 1.0;

  /// True when any fault mechanism is active.
  bool any() const {
    return crash_prob > 0.0 ||
           (straggler_fraction > 0.0 && straggler_slowdown != 1.0) ||
           outage_prob > 0.0 || error_multiplier_max > 1.0;
  }
};

class FaultModel {
 public:
  /// Disabled model: no faults, empty scale table.
  FaultModel() = default;

  /// `root` should be a named fork dedicated to the fault layer (the engine
  /// uses root_rng.fork("faults")); forking it never perturbs the caller.
  FaultModel(FaultConfig config, std::size_t n_clients, const Rng& root);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }
  std::size_t n_clients() const { return slowdown_.size(); }

  /// Static compute-time multiplier of `client` (1.0 = healthy).
  double slowdown(std::size_t client) const;

  /// Static link-quality multiplier of `client` (1.0 = nominal link).
  double error_scale(std::size_t client) const;

  /// The full per-client multiplier table, for
  /// channel::*Transport::set_error_scales. Empty when disabled.
  const std::vector<double>& error_scales() const { return error_scale_; }

  /// Did `client` crash in `round` (1-based)? Pure in (seed, client, round).
  bool crashed(std::size_t client, int round) const;

  /// Is `client` inside an outage window at `round`?
  bool in_outage(std::size_t client, int round) const;

  /// Can `client` deliver an update in `round`? (!crashed && !in_outage)
  bool available(std::size_t client, int round) const;

 private:
  FaultConfig config_;
  Rng root_;
  bool enabled_ = false;
  std::vector<double> slowdown_;
  std::vector<double> error_scale_;
};

}  // namespace fhdnn::fl
