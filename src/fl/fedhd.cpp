#include "fl/fedhd.hpp"

#include <utility>

#include "channel/transport.hpp"
#include "util/error.hpp"
#include "util/exactsum.hpp"

namespace fhdnn::fl {

namespace detail {

/// LocalLearner seam: one-shot bundle on first contact, then E epochs of
/// HD refinement from the round's (possibly downlink-corrupted) broadcast.
class FedHdLearner final : public LocalLearner<Tensor> {
 public:
  FedHdLearner(std::vector<HdClientData> clients, HdClientData test,
               const FedHdConfig& config)
      : clients_(std::move(clients)),
        test_(std::move(test)),
        config_(config),
        global_(config.num_classes, config.hd_dim) {
    FHDNN_CHECK(clients_.size() == config_.n_clients,
                "have " << clients_.size() << " clients, config says "
                        << config_.n_clients);
    FHDNN_CHECK(config_.rounds > 0 && config_.local_epochs > 0,
                "FedHd config rounds/epochs");
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      const auto& c = clients_[i];
      FHDNN_CHECK(c.h.ndim() == 2 && c.h.dim(1) == config_.hd_dim,
                  "client " << i << " hypervectors "
                            << shape_to_string(c.h.shape()));
      FHDNN_CHECK(c.h.dim(0) == static_cast<std::int64_t>(c.labels.size()) &&
                      !c.labels.empty(),
                  "client " << i << " label count");
    }
    FHDNN_CHECK(test_.h.ndim() == 2 && test_.h.dim(1) == config_.hd_dim &&
                    !test_.labels.empty(),
                "test set shape");
  }

  void begin_round(const Rng& round_rng) override {
    global_empty_ = global_.prototypes().l2_norm() == 0.0;
    // Broadcast: clients start from the (possibly corrupted) downlink copy.
    broadcast_ = global_.prototypes();
    if (config_.downlink.mode != channel::HdUplinkMode::Perfect &&
        !global_empty_) {
      Rng down_rng = round_rng.fork("downlink");
      (void)channel::transmit_hd_model(broadcast_, config_.downlink, down_rng);
    }
  }

  TrainResult train(std::size_t client, Rng& /*client_rng*/) override {
    // HD refinement is deterministic given the data order; the client
    // stream stays unused (the channel draws from its own named fork).
    const auto& cdata = clients_[client];
    hdc::HdClassifier local(config_.num_classes, config_.hd_dim);
    local.set_prototypes(broadcast_);
    if (global_empty_) {
      local.bundle(cdata.h, cdata.labels);  // one-shot learning (§3.4.1)
    }
    std::int64_t updates = 0;
    for (int e = 0; e < config_.local_epochs; ++e) {
      updates = config_.adaptive_refine
                    ? local.refine_epoch_adaptive(cdata.h, cdata.labels,
                                                  config_.refine_lr)
                    : local.refine_epoch(cdata.h, cdata.labels,
                                         config_.refine_lr);
    }
    return {local.prototypes(),
            static_cast<double>(updates) /
                static_cast<double>(cdata.labels.size())};
  }

  double evaluate() override { return accuracy(); }

  double accuracy() const { return global_.accuracy(test_.h, test_.labels); }

  hdc::HdClassifier& global() { return global_; }
  const hdc::HdClassifier& global() const { return global_; }

  /// The prototypes are the learner's only load-bearing state across
  /// snapshot boundaries: global_empty_ and the broadcast copy are only
  /// read inside the round prologue (begin_round + train), which runs
  /// entirely before the first event — a mid-round resume never needs
  /// them, and the next round's begin_round re-derives both.
  void save_state(util::SnapshotWriter& w) override {
    w.write_floats(global_.prototypes().vec());
  }

  void load_state(util::SnapshotReader& r) override {
    auto v = r.read_floats();
    if (v.empty()) return;
    FHDNN_CHECK(v.size() == static_cast<std::size_t>(config_.num_classes) *
                                static_cast<std::size_t>(config_.hd_dim),
                "snapshot prototype scalars " << v.size());
    global_.set_prototypes(
        Tensor(Shape{config_.num_classes, config_.hd_dim}, std::move(v)));
  }

 private:
  std::vector<HdClientData> clients_;
  HdClientData test_;
  const FedHdConfig& config_;
  hdc::HdClassifier global_;
  bool global_empty_ = true;
  Tensor broadcast_;
};

/// Aggregator seam: Eq. 1 bundling, serial in fixed participant order;
/// optional division by the delivered count (see the file header).
///
/// With aggregation_fan_in >= 2 the sum runs through an ExactSumVector
/// (fl/hierarchy.hpp): accumulation becomes error-free fixed-point, so the
/// committed prototypes are the correctly-rounded exact sum — identical to
/// hierarchical_sum of the same updates at ANY edge fan-in. That is what
/// lets a deployment put edge aggregators between clients and the server
/// without changing the model by a single bit.
class FedHdAggregator final : public Aggregator<Tensor> {
 public:
  FedHdAggregator(FedHdLearner& learner, const FedHdConfig& config)
      : learner_(learner), config_(config) {}

  void begin_round() override {
    if (hierarchical()) {
      const auto n = static_cast<std::size_t>(config_.num_classes) *
                     static_cast<std::size_t>(config_.hd_dim);
      if (exact_.size() != n) exact_ = util::ExactSumVector(n);
      exact_.clear();
    } else {
      aggregate_ = Tensor(Shape{config_.num_classes, config_.hd_dim});
    }
  }

  void accumulate(std::size_t /*client*/, Tensor&& update) override {
    if (hierarchical()) {
      exact_.add(update.data());
    } else {
      aggregate_.axpy(1.0F, update);
    }
  }

  void accumulate_weighted(std::size_t client, Tensor&& update,
                           double weight) override {
    if (weight == 1.0) {
      accumulate(client, std::move(update));
      return;
    }
    // Stale updates fold in pre-scaled; the exact path then sums the
    // scaled floats exactly, same as any edge aggregator would see them.
    if (hierarchical()) {
      update.scale(static_cast<float>(weight));
      exact_.add(update.data());
    } else {
      aggregate_.axpy(static_cast<float>(weight), update);
    }
  }

  void commit(std::size_t delivered) override {
    commit_scaled(static_cast<double>(delivered));
  }

  void commit_weighted(std::size_t /*n_updates*/,
                       double total_weight) override {
    commit_scaled(total_weight);
  }

  void save_state(util::SnapshotWriter& w) override {
    w.write_u8(hierarchical() ? 1 : 0);
    if (hierarchical()) exact_.save(w);
    // Outside reduce() — the only place checkpoints happen — aggregate_ is
    // either the default 0-d scalar or a moved-from husk, never meaningful
    // state; persist it only when it actually has the round shape.
    const auto n = config_.num_classes * config_.hd_dim;
    if (aggregate_.numel() == n && aggregate_.ndim() == 2) {
      w.write_floats(aggregate_.vec());
    } else {
      w.write_floats({});
    }
  }

  void load_state(util::SnapshotReader& r) override {
    FHDNN_CHECK((r.read_u8() != 0) == hierarchical(),
                "snapshot aggregation mode mismatch");
    if (hierarchical()) exact_.load(r);
    auto v = r.read_floats();
    aggregate_ = v.empty()
                     ? Tensor{}
                     : Tensor(Shape{config_.num_classes, config_.hd_dim},
                              std::move(v));
  }

 private:
  bool hierarchical() const { return config_.aggregation_fan_in >= 2; }

  void commit_scaled(double denom) {
    if (hierarchical()) {
      aggregate_ = Tensor(Shape{config_.num_classes, config_.hd_dim});
      exact_.round_to(aggregate_.data());
    }
    if (config_.average_aggregation) {
      aggregate_.scale(1.0F / static_cast<float>(denom));
    }
    learner_.global().set_prototypes(std::move(aggregate_));
  }

  FedHdLearner& learner_;
  const FedHdConfig& config_;
  Tensor aggregate_;
  util::ExactSumVector exact_;
};

/// Owns the three seams and the adapter gluing them into a RoundProtocol.
class FedHdProtocol {
 public:
  FedHdProtocol(std::vector<HdClientData> clients, HdClientData test,
                FedHdConfig config)
      : config_(std::move(config)),
        transport_(config_.uplink),
        learner_(std::move(clients), std::move(test), config_),
        aggregator_(learner_, config_),
        adapter_(learner_, transport_, aggregator_) {}

  RoundProtocol& protocol() { return adapter_; }
  FedHdLearner& learner() { return learner_; }
  const FedHdLearner& learner() const { return learner_; }
  channel::HdModelTransport& transport() { return transport_; }
  const channel::HdModelTransport& transport() const { return transport_; }
  const FedHdConfig& config() const { return config_; }

 private:
  FedHdConfig config_;
  channel::HdModelTransport transport_;
  FedHdLearner learner_;
  FedHdAggregator aggregator_;
  ProtocolAdapter<Tensor> adapter_;
};

}  // namespace detail

FedHdTrainer::FedHdTrainer(std::vector<HdClientData> clients, HdClientData test,
                           FedHdConfig config)
    : protocol_(std::make_unique<detail::FedHdProtocol>(
          std::move(clients), std::move(test), config)),
      engine_(std::make_unique<RoundEngine>(
          EngineConfig{config.n_clients, config.client_fraction, config.rounds,
                       config.eval_every, config.dropout_prob, config.seed,
                       "fedhd", config.faults, config.deadline,
                       config.population, config.async, config.checkpoint,
                       config.crash},
          protocol_->protocol())) {
  // Registered client ids index the per-client dataset vector here, so a
  // fleet larger than the data is a config error for THIS trainer —
  // million-client fleets drive RoundEngine with a synthetic learner
  // instead (bench/scale_million_clients.cpp).
  FHDNN_CHECK(!config.population.enabled() ||
                  config.population.n_registered <= config.n_clients,
              "FedHdTrainer population: n_registered "
                  << config.population.n_registered << " exceeds datasets "
                  << config.n_clients);
  // The engine's fault layer owns the per-client link-quality multipliers;
  // the transport scales channel error rates by them per delivery.
  protocol_->transport().set_error_scales(&engine_->faults().error_scales());
}

FedHdTrainer::~FedHdTrainer() = default;

TrainingHistory FedHdTrainer::run() { return engine_->run(); }

RoundMetrics FedHdTrainer::round(int round_index) {
  return engine_->round(round_index);
}

void FedHdTrainer::checkpoint(const std::string& path) {
  engine_->checkpoint(path);
}

void FedHdTrainer::resume(const std::string& path) { engine_->resume(path); }

double FedHdTrainer::evaluate() const { return protocol_->learner().accuracy(); }

const hdc::HdClassifier& FedHdTrainer::global() const {
  return protocol_->learner().global();
}

hdc::HdClassifier& FedHdTrainer::global() { return protocol_->learner().global(); }

RoundProtocol& FedHdTrainer::protocol() { return protocol_->protocol(); }

void FedHdTrainer::set_round_driver(RoundDriver* driver) {
  engine_->set_round_driver(driver);
}

std::uint32_t FedHdTrainer::config_fingerprint() const {
  return engine_->config_fingerprint();
}

std::uint64_t FedHdTrainer::update_bytes() const {
  const auto& cfg = protocol_->config();
  return protocol_->transport().update_bytes(
      static_cast<std::uint64_t>(cfg.num_classes) *
      static_cast<std::uint64_t>(cfg.hd_dim));
}

}  // namespace fhdnn::fl
