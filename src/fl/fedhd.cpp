#include "fl/fedhd.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace fhdnn::fl {

FedHdTrainer::FedHdTrainer(std::vector<HdClientData> clients, HdClientData test,
                           FedHdConfig config)
    : clients_(std::move(clients)),
      test_(std::move(test)),
      config_(config),
      root_rng_(config.seed),
      sampler_(config.n_clients, config.client_fraction),
      global_(config.num_classes, config.hd_dim) {
  FHDNN_CHECK(clients_.size() == config_.n_clients,
              "have " << clients_.size() << " clients, config says "
                      << config_.n_clients);
  FHDNN_CHECK(config_.rounds > 0 && config_.local_epochs > 0,
              "FedHd config rounds/epochs");
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const auto& c = clients_[i];
    FHDNN_CHECK(c.h.ndim() == 2 && c.h.dim(1) == config_.hd_dim,
                "client " << i << " hypervectors "
                          << shape_to_string(c.h.shape()));
    FHDNN_CHECK(c.h.dim(0) == static_cast<std::int64_t>(c.labels.size()) &&
                    !c.labels.empty(),
                "client " << i << " label count");
  }
  FHDNN_CHECK(test_.h.ndim() == 2 && test_.h.dim(1) == config_.hd_dim &&
                  !test_.labels.empty(),
              "test set shape");
}

double FedHdTrainer::evaluate() const {
  return global_.accuracy(test_.h, test_.labels);
}

std::uint64_t FedHdTrainer::update_bytes() const {
  const auto scalars = static_cast<std::uint64_t>(config_.num_classes) *
                       static_cast<std::uint64_t>(config_.hd_dim);
  // Binary transport ships 1 bit/scalar, AGC-quantized models B bits,
  // analog/float paths 32.
  const bool digital =
      config_.uplink.mode == channel::HdUplinkMode::BitErrors ||
      config_.uplink.mode == channel::HdUplinkMode::Perfect;
  std::uint64_t bits = 32;
  if (digital && config_.uplink.binary_transport) {
    bits = 1;
  } else if (digital && config_.uplink.use_quantizer) {
    bits = static_cast<std::uint64_t>(config_.uplink.quantizer_bits);
  }
  return (scalars * bits + 7) / 8;
}

RoundMetrics FedHdTrainer::round(int round_index) {
  Rng round_rng = root_rng_.fork("round-" + std::to_string(round_index));
  Rng sample_rng = round_rng.fork("sample");
  const auto participants = sampler_.sample(sample_rng);

  RoundMetrics metrics;
  metrics.round = round_index;
  metrics.clients = participants.size();

  const bool global_empty = global_.prototypes().l2_norm() == 0.0;

  // Broadcast: clients start from the (possibly corrupted) downlink copy.
  Tensor broadcast = global_.prototypes();
  if (config_.downlink.mode != channel::HdUplinkMode::Perfect &&
      !global_empty) {
    Rng down_rng = round_rng.fork("downlink");
    (void)channel::transmit_hd_model(broadcast, config_.downlink, down_rng);
  }

  // Pre-draw delivery outcomes in participant order so the dropout stream
  // never depends on client execution order.
  std::vector<char> delivered_flag(participants.size(), 1);
  Rng dropout_rng = round_rng.fork("dropout");
  if (config_.dropout_prob > 0.0) {
    for (auto& flag : delivered_flag) {
      if (dropout_rng.bernoulli(config_.dropout_prob)) flag = 0;
    }
  }

  // Client-parallel local refinement: each task owns a private classifier
  // and draws only from named forks of the round RNG, so results are
  // bit-identical at every thread count.
  struct ClientOutcome {
    Tensor transmitted;
    double error = 0.0;
    channel::HdUplinkStats stats;
  };
  std::vector<ClientOutcome> outcomes(participants.size());
  parallel::parallel_for(
      0, static_cast<std::int64_t>(participants.size()), 1,
      [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t idx = i0; idx < i1; ++idx) {
      const std::size_t client = participants[static_cast<std::size_t>(idx)];
      ClientOutcome& out = outcomes[static_cast<std::size_t>(idx)];
      const auto& cdata = clients_[client];
      hdc::HdClassifier local(config_.num_classes, config_.hd_dim);
      local.set_prototypes(broadcast);
      if (global_empty) {
        local.bundle(cdata.h, cdata.labels);  // one-shot learning (§3.4.1)
      }
      std::int64_t updates = 0;
      for (int e = 0; e < config_.local_epochs; ++e) {
        updates = config_.adaptive_refine
                      ? local.refine_epoch_adaptive(cdata.h, cdata.labels,
                                                    config_.refine_lr)
                      : local.refine_epoch(cdata.h, cdata.labels,
                                           config_.refine_lr);
      }
      out.error = static_cast<double>(updates) /
                  static_cast<double>(cdata.labels.size());
      if (!delivered_flag[static_cast<std::size_t>(idx)]) {
        // Transmission failure: the client trained but its update never
        // reaches the server; skip the uplink entirely.
        continue;
      }
      // Uplink: possibly corrupt the local prototypes.
      out.transmitted = local.prototypes();
      Rng chan_rng = round_rng.fork("channel-" + std::to_string(client));
      out.stats = channel::transmit_hd_model(out.transmitted, config_.uplink,
                                             chan_rng);
    }
  });

  // Serial reduction in fixed participant order (bit-identical aggregation).
  Tensor aggregate(Shape{config_.num_classes, config_.hd_dim});
  double error_total = 0.0;
  std::size_t delivered = 0;
  for (std::size_t idx = 0; idx < participants.size(); ++idx) {
    if (!delivered_flag[idx]) continue;
    ++delivered;
    const ClientOutcome& out = outcomes[idx];
    error_total += out.error;
    metrics.bits_on_air += out.stats.bits_on_air;
    metrics.bit_flips += out.stats.bit_flips;
    metrics.packets_lost += out.stats.packets_lost;
    metrics.bytes_uplink += update_bytes();
    aggregate.axpy(1.0F, out.transmitted);
  }

  metrics.clients = delivered;
  if (delivered > 0) {
    if (config_.average_aggregation) {
      aggregate.scale(1.0F / static_cast<float>(delivered));
    }
    global_.set_prototypes(std::move(aggregate));
  }

  metrics.train_loss =
      delivered ? error_total / static_cast<double>(delivered) : 0.0;
  if (round_index % std::max(1, config_.eval_every) == 0 ||
      round_index == config_.rounds) {
    metrics.test_accuracy = evaluate();
  } else {
    metrics.test_accuracy =
        history_.empty() ? 0.0 : history_.rounds().back().test_accuracy;
  }
  return metrics;
}

TrainingHistory FedHdTrainer::run() {
  for (int r = 1; r <= config_.rounds; ++r) {
    const RoundMetrics m = round(r);
    history_.add(m);
    log_debug() << "fedhd round " << r << " acc=" << m.test_accuracy
                << " local_err=" << m.train_loss;
  }
  return history_;
}

}  // namespace fhdnn::fl
