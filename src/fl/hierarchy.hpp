// Hierarchical (fan-in tree) aggregation of HD updates (DESIGN.md §12).
//
// In the AIoT deployment FHDnn targets, clients don't upload straight to
// the cloud: edge aggregators (gateways, base stations) bundle the HD
// prototypes of their attached devices and forward one combined update up
// a fan-in tree. The paper's key enabling fact is that HD bundling is
// associative, so tree aggregation can be EXACT — the root result is
// bit-identical to flat (single-server) aggregation regardless of tree
// shape. This header provides the two exact primitives:
//
//   * float path — ExactSumVector per edge aggregator: float32 sums are
//     accumulated in error-free fixed point and rounded once at the root,
//     so any grouping yields the identical correctly-rounded result.
//   * packed binary path — PackedVoteAccumulator: edge aggregators forward
//     bit-sliced per-position VOTE COUNTS (integer addition — associative),
//     and the majority threshold + index-parity tie rule run once at the
//     root via the same detail kernels as `majority_aggregate_packed`, so
//     the tree result is pinned bit-exact against the flat kernel.
//
// The `hierarchical_*` drivers walk the tree depth-first with O(depth)
// live accumulators; tests/test_properties.cpp pins tree == flat for both
// paths at fan-ins {2, 3, 16}.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/packed.hpp"
#include "tensor/tensor.hpp"
#include "util/exactsum.hpp"
#include "util/snapshot.hpp"

namespace fhdnn::fl {

/// An edge aggregator for packed binary-HD models: accumulates per-bit
/// vote counts in bit-sliced planes. Votes are integers, so merging
/// accumulators (a parent absorbing an edge) is exact and associative;
/// finalize() applies the majority threshold + tie rule exactly once.
class PackedVoteAccumulator : public util::Snapshotable {
 public:
  PackedVoteAccumulator() = default;
  PackedVoteAccumulator(std::int64_t rows, std::int64_t d);

  std::int64_t rows() const { return rows_; }
  std::int64_t d() const { return d_; }

  /// Number of models voted in so far (via add() and merge()).
  std::size_t members() const { return members_; }

  /// Count one model's bits into the vote planes (one client's upload
  /// arriving at this edge aggregator).
  void add(const hdc::PackedModel& m);

  /// Absorb another accumulator's vote counts (a child edge aggregator
  /// forwarding its bundle up the tree). Plane-wise full adder — exact.
  void merge(const PackedVoteAccumulator& other);

  /// Apply the majority threshold with the index-parity tie rule (flat
  /// index r*d + j, ties -> +1 on even). Bit-identical to
  /// `majority_aggregate_packed` over the same set of models, however the
  /// adds and merges were grouped. Requires members() > 0.
  hdc::PackedModel finalize() const;

  /// Reset to an empty accumulator, keeping the (rows, d) geometry.
  void clear();

  /// Snapshot geometry, member count, and raw vote planes; a restored
  /// accumulator finalizes to the identical packed model.
  void save(util::SnapshotWriter& w) const override;
  void load(util::SnapshotReader& r) override;

 private:
  std::int64_t rows_ = 0;
  std::int64_t d_ = 0;
  std::size_t total_words_ = 0;
  std::size_t members_ = 0;
  // planes_[p][w] holds bit p of the vote count at word position w; the
  // plane count grows with bit_width(members_).
  std::vector<std::vector<std::uint64_t>> planes_;
};

/// Sum `parts` through a fan-in tree of exact accumulators and round once:
/// bit-identical to flat exact summation for ANY fan_in >= 2. All parts
/// must share the first part's shape; parts must be non-empty.
Tensor hierarchical_sum(const std::vector<Tensor>& parts, std::size_t fan_in);

/// Majority-bundle packed models through a fan-in tree of vote
/// accumulators; bit-identical to `majority_aggregate_packed(models)` for
/// ANY fan_in >= 2. All models must share the first model's geometry.
hdc::PackedModel hierarchical_majority(const std::vector<hdc::PackedModel>& models,
                                       std::size_t fan_in);

}  // namespace fhdnn::fl
