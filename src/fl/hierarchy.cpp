#include "fl/hierarchy.hpp"

#include <bit>
#include <span>

#include "util/error.hpp"

namespace fhdnn::fl {

PackedVoteAccumulator::PackedVoteAccumulator(std::int64_t rows, std::int64_t d)
    : rows_(rows),
      d_(d),
      total_words_(static_cast<std::size_t>(rows * hdc::words_for_bits(d))) {
  FHDNN_CHECK(rows > 0 && d > 0,
              "PackedVoteAccumulator geometry " << rows << "x" << d);
}

void PackedVoteAccumulator::add(const hdc::PackedModel& m) {
  FHDNN_CHECK(m.rows == rows_ && m.d == d_,
              "vote add: model " << m.rows << "x" << m.d << " != accumulator "
                                 << rows_ << "x" << d_);
  // Ripple-carry increment of each word position's vote count by the
  // model's bit. One more member can carry at most into plane
  // bit_width(members_ + 1) - 1.
  const int max_planes =
      std::bit_width(static_cast<unsigned long long>(members_ + 1));
  while (planes_.size() < static_cast<std::size_t>(max_planes)) {
    planes_.emplace_back(total_words_, 0ULL);
  }
  for (std::size_t w = 0; w < total_words_; ++w) {
    std::uint64_t carry = m.words[w];
    for (int p = 0; p < max_planes && carry != 0ULL; ++p) {
      const std::uint64_t t = planes_[p][w];
      planes_[p][w] = t ^ carry;
      carry = t & carry;
    }
  }
  ++members_;
}

void PackedVoteAccumulator::merge(const PackedVoteAccumulator& other) {
  FHDNN_CHECK(other.rows_ == rows_ && other.d_ == d_,
              "vote merge: geometry mismatch");
  const int max_planes = std::bit_width(
      static_cast<unsigned long long>(members_ + other.members_));
  while (planes_.size() < static_cast<std::size_t>(max_planes)) {
    planes_.emplace_back(total_words_, 0ULL);
  }
  // Plane-wise full adder: counts are integers, so this merge is exact
  // and associative — the tree shape cannot change the totals.
  std::vector<std::uint64_t> carry(total_words_, 0ULL);
  for (int p = 0; p < max_planes; ++p) {
    const bool other_has = p < static_cast<int>(other.planes_.size());
    for (std::size_t w = 0; w < total_words_; ++w) {
      const std::uint64_t a = planes_[p][w];
      const std::uint64_t b = other_has ? other.planes_[p][w] : 0ULL;
      const std::uint64_t c = carry[w];
      planes_[p][w] = a ^ b ^ c;
      carry[w] = (a & b) | (c & (a ^ b));
    }
  }
  members_ += other.members_;
}

hdc::PackedModel PackedVoteAccumulator::finalize() const {
  FHDNN_CHECK(members_ > 0, "finalize on empty vote accumulator");
  const int planes = static_cast<int>(planes_.size());
  FHDNN_CHECK(planes <= 64, "vote plane overflow");
  hdc::PackedModel out(rows_, d_);
  const std::int64_t wpr = out.words_per_row();
  const std::uint64_t last_mask = hdc::tail_mask(d_);
  std::uint64_t column[64];
  for (std::int64_t r = 0; r < rows_; ++r) {
    // Every word starts at an even in-row bit offset, so the tie phase of
    // the whole row is the parity of its flat start index r*d (matches
    // majority_aggregate_packed).
    const std::uint64_t tie =
        ((static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(d_)) %
         2) == 0
            ? hdc::detail::kEvenPhaseTies
            : ~hdc::detail::kEvenPhaseTies;
    for (std::int64_t w = 0; w < wpr; ++w) {
      const std::size_t pos = static_cast<std::size_t>(r * wpr + w);
      for (int p = 0; p < planes; ++p) column[p] = planes_[p][pos];
      std::uint64_t word =
          hdc::detail::majority_word(column, planes, members_, tie);
      if (w == wpr - 1) word &= last_mask;
      out.words[pos] = word;
    }
  }
  return out;
}

void PackedVoteAccumulator::clear() {
  members_ = 0;
  for (auto& plane : planes_) {
    for (auto& word : plane) word = 0ULL;
  }
}

namespace {

// Depth-first fan-in tree over [begin, end): leaves feed edge
// accumulators of up to `fan_in` children each, and each internal level
// merges up to `fan_in` child accumulators. O(depth) live accumulators.
// Acc must provide leaf-add via `add_leaf` and merge via `merge`.
template <typename Acc, typename Leaf>
Acc tree_reduce(const std::vector<Leaf>& leaves, std::size_t begin,
                std::size_t end, std::size_t fan_in,
                Acc (*make)(const Leaf&)) {
  const std::size_t n = end - begin;
  if (n <= fan_in) {
    Acc acc = make(leaves[begin]);
    for (std::size_t i = begin + 1; i < end; ++i) acc.add_leaf(leaves[i]);
    return acc;
  }
  // Split into fan_in child subtrees of near-equal size (ceil division
  // keeps every child non-empty).
  const std::size_t per_child = (n + fan_in - 1) / fan_in;
  Acc acc = tree_reduce(leaves, begin, begin + per_child, fan_in, make);
  for (std::size_t b = begin + per_child; b < end; b += per_child) {
    const std::size_t e = b + per_child < end ? b + per_child : end;
    const Acc child = tree_reduce(leaves, b, e, fan_in, make);
    acc.merge(child);
  }
  return acc;
}

// Adapters giving ExactSumVector / PackedVoteAccumulator the uniform
// leaf-add interface tree_reduce expects.
struct SumNode {
  util::ExactSumVector acc;
  void add_leaf(const Tensor& t) { acc.add(t.data()); }
  void merge(const SumNode& other) { acc.add(other.acc); }
};

struct VoteNode {
  PackedVoteAccumulator acc;
  void add_leaf(const hdc::PackedModel& m) { acc.add(m); }
  void merge(const VoteNode& other) { acc.merge(other.acc); }
};

SumNode make_sum_node(const Tensor& t) {
  SumNode node;
  node.acc = util::ExactSumVector(static_cast<std::size_t>(t.numel()));
  node.add_leaf(t);
  return node;
}

VoteNode make_vote_node(const hdc::PackedModel& m) {
  VoteNode node;
  node.acc = PackedVoteAccumulator(m.rows, m.d);
  node.add_leaf(m);
  return node;
}

}  // namespace

Tensor hierarchical_sum(const std::vector<Tensor>& parts, std::size_t fan_in) {
  FHDNN_CHECK(!parts.empty(), "hierarchical_sum: no parts");
  FHDNN_CHECK(fan_in >= 2, "hierarchical_sum: fan_in " << fan_in << " < 2");
  for (const Tensor& p : parts) {
    FHDNN_CHECK(p.shape() == parts.front().shape(),
                "hierarchical_sum: shape mismatch");
  }
  const SumNode root =
      tree_reduce<SumNode, Tensor>(parts, 0, parts.size(), fan_in,
                                   &make_sum_node);
  Tensor out(parts.front().shape());
  root.acc.round_to(out.data());
  return out;
}

void PackedVoteAccumulator::save(util::SnapshotWriter& w) const {
  w.write_i64(rows_);
  w.write_i64(d_);
  w.write_u64(total_words_);
  w.write_u64(members_);
  w.write_u64(planes_.size());
  for (const auto& plane : planes_) {
    w.write_u64s(plane);
  }
}

void PackedVoteAccumulator::load(util::SnapshotReader& r) {
  rows_ = r.read_i64();
  d_ = r.read_i64();
  total_words_ = static_cast<std::size_t>(r.read_u64());
  members_ = static_cast<std::size_t>(r.read_u64());
  const auto n_planes = static_cast<std::size_t>(r.read_u64());
  planes_.assign(n_planes, {});
  for (auto& plane : planes_) {
    plane = r.read_u64s();
    FHDNN_CHECK(plane.size() == total_words_,
                "vote snapshot: plane of " << plane.size() << " words, expected "
                                           << total_words_);
  }
}

hdc::PackedModel hierarchical_majority(
    const std::vector<hdc::PackedModel>& models, std::size_t fan_in) {
  FHDNN_CHECK(!models.empty(), "hierarchical_majority: no models");
  FHDNN_CHECK(fan_in >= 2, "hierarchical_majority: fan_in " << fan_in << " < 2");
  for (const hdc::PackedModel& m : models) {
    FHDNN_CHECK(m.rows == models.front().rows && m.d == models.front().d,
                "hierarchical_majority: geometry mismatch");
  }
  const VoteNode root = tree_reduce<VoteNode, hdc::PackedModel>(
      models, 0, models.size(), fan_in, &make_vote_node);
  return root.acc.finalize();
}

}  // namespace fhdnn::fl
