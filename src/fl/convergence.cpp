#include "fl/convergence.hpp"

#include <cmath>

#include "util/error.hpp"

namespace fhdnn::fl {

PowerLawFit fit_power_law(std::span<const double> values) {
  // Least squares on log(y_t) = log C - p * log t.
  std::vector<double> xs, ys;
  for (std::size_t t = 0; t < values.size(); ++t) {
    if (values[t] <= 0.0) continue;
    xs.push_back(std::log(static_cast<double>(t + 1)));
    ys.push_back(std::log(values[t]));
  }
  FHDNN_CHECK(xs.size() >= 3, "power-law fit needs >= 3 positive points, got "
                                  << xs.size());
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  FHDNN_CHECK(denom > 0.0, "power-law fit with degenerate abscissa");
  const double slope = (n * sxy - sx * sy) / denom;
  PowerLawFit fit;
  fit.exponent = -slope;
  fit.log_c = (sy - slope * sx) / n;
  fit.points = xs.size();
  const double sst = syy - sy * sy / n;
  if (sst > 0.0) {
    double ssr = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double pred = fit.log_c + slope * xs[i];
      ssr += (ys[i] - pred) * (ys[i] - pred);
    }
    fit.r_squared = 1.0 - ssr / sst;
  } else {
    fit.r_squared = 1.0;  // constant series: perfect (degenerate) fit
  }
  return fit;
}

void ModelTrajectory::record(const Tensor& model) {
  snapshots_.push_back(model);
}

std::vector<double> ModelTrajectory::distances_to_final() const {
  FHDNN_CHECK(snapshots_.size() >= 2, "trajectory needs >= 2 snapshots");
  const Tensor& final_model = snapshots_.back();
  std::vector<double> out;
  out.reserve(snapshots_.size() - 1);
  for (std::size_t t = 0; t + 1 < snapshots_.size(); ++t) {
    FHDNN_CHECK(snapshots_[t].same_shape(final_model),
                "trajectory snapshot shape changed");
    double d2 = 0.0;
    const auto a = snapshots_[t].data();
    const auto b = final_model.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      d2 += d * d;
    }
    out.push_back(std::sqrt(d2));
  }
  return out;
}

PowerLawFit ModelTrajectory::fit() const {
  const auto d = distances_to_final();
  return fit_power_law(d);
}

}  // namespace fhdnn::fl
