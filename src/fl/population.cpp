#include "fl/population.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace fhdnn::fl {

ClientPopulation::ClientPopulation(PopulationConfig config, const Rng& root)
    : config_(config), root_(root.fork("population")) {
  FHDNN_CHECK(config_.mean_availability > 0.0 && config_.mean_availability <= 1.0,
              "mean_availability " << config_.mean_availability);
  FHDNN_CHECK(config_.window_seconds > 0.0,
              "window_seconds " << config_.window_seconds);
  FHDNN_CHECK(config_.straggler_fraction >= 0.0 &&
                  config_.straggler_fraction <= 1.0,
              "straggler_fraction " << config_.straggler_fraction);
  FHDNN_CHECK(config_.straggler_slowdown >= 1.0,
              "straggler_slowdown " << config_.straggler_slowdown);
  FHDNN_CHECK(config_.compute_spread >= 0.0,
              "compute_spread " << config_.compute_spread);
  FHDNN_CHECK(config_.link_spread_max >= 1.0,
              "link_spread_max " << config_.link_spread_max);
}

ClientProfile ClientPopulation::profile(std::size_t client) const {
  FHDNN_CHECK(client < config_.n_registered,
              "client " << client << " >= registered " << config_.n_registered);
  // Fixed draw order from the client's named fork — the profile is a pure
  // function of (seed, client) regardless of query order or thread.
  Rng rng = root_.fork("client-" + std::to_string(client));
  ClientProfile p;
  const double a = config_.mean_availability;
  if (a >= 1.0) {
    p.availability = 1.0;
  } else {
    // duty = u^((1-a)/a) for u ~ U(0,1) has E[duty] = 1/((1-a)/a + 1) = a:
    // the fleet-mean awake fraction is exactly `mean_availability`, while
    // individual clients spread across (0, 1] — a few near-always-on
    // devices and a long tail of rarely-awake ones, the shape AIoT fleets
    // actually have.
    p.availability = std::pow(rng.uniform(), (1.0 - a) / a);
  }
  p.period_seconds = config_.window_seconds * rng.uniform(0.5, 1.5);
  p.phase_seconds = rng.uniform(0.0, p.period_seconds);
  p.compute_factor =
      rng.bernoulli(config_.straggler_fraction) ? config_.straggler_slowdown
                                                : 1.0;
  p.compute_factor *= rng.uniform(1.0, 1.0 + config_.compute_spread);
  p.link_factor = rng.uniform(1.0, config_.link_spread_max);
  return p;
}

bool ClientPopulation::available_at(std::size_t client,
                                    double t_seconds) const {
  const ClientProfile p = profile(client);
  if (p.availability >= 1.0) return true;
  const double pos = std::fmod(t_seconds + p.phase_seconds, p.period_seconds);
  return pos < p.availability * p.period_seconds;
}

std::vector<std::size_t> ClientPopulation::sample(Rng& rng,
                                                  std::size_t k) const {
  const std::size_t n = config_.n_registered;
  FHDNN_CHECK(k <= n, "sample k " << k << " > registered " << n);
  std::vector<std::size_t> out;
  if (k == 0) return out;
  out.reserve(k);
  // Rejection sampling with a sorted accept list: O(k) memory, expected
  // O(k log k) draws while k << n (the regime this type exists for; even
  // k == n terminates — the last acceptance needs ~n draws on average,
  // giving O(n log n) total, still without an O(n) scratch vector).
  while (out.size() < k) {
    const auto c = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(n) - 1));
    const auto it = std::lower_bound(out.begin(), out.end(), c);
    if (it != out.end() && *it == c) continue;
    out.insert(it, c);
  }
  return out;
}

}  // namespace fhdnn::fl
