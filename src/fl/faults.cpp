#include "fl/faults.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace fhdnn::fl {

FaultModel::FaultModel(FaultConfig config, std::size_t n_clients,
                       const Rng& root)
    : config_(config), root_(root.fork("fault-root")), enabled_(config.any()) {
  FHDNN_CHECK(config_.crash_prob >= 0.0 && config_.crash_prob < 1.0,
              "crash_prob " << config_.crash_prob);
  FHDNN_CHECK(
      config_.straggler_fraction >= 0.0 && config_.straggler_fraction <= 1.0,
      "straggler_fraction " << config_.straggler_fraction);
  FHDNN_CHECK(config_.straggler_slowdown >= 1.0,
              "straggler_slowdown " << config_.straggler_slowdown);
  FHDNN_CHECK(config_.outage_prob >= 0.0 && config_.outage_prob < 1.0,
              "outage_prob " << config_.outage_prob);
  FHDNN_CHECK(config_.outage_rounds >= 1,
              "outage_rounds " << config_.outage_rounds);
  FHDNN_CHECK(config_.error_multiplier_max >= 1.0,
              "error_multiplier_max " << config_.error_multiplier_max);
  // A disabled model keeps no per-client state: slowdown()/error_scale()
  // fall back to 1.0 for any client, so a sparse million-client engine
  // with faults off stays O(1) here instead of building dense tables.
  if (!enabled_) return;
  slowdown_.reserve(n_clients);
  error_scale_.reserve(n_clients);
  // Static traits, drawn in client order from per-client named forks.
  for (std::size_t c = 0; c < n_clients; ++c) {
    Rng traits = root_.fork("traits-" + std::to_string(c));
    const bool straggler = traits.bernoulli(config_.straggler_fraction);
    slowdown_.push_back(straggler ? config_.straggler_slowdown : 1.0);
    error_scale_.push_back(config_.error_multiplier_max > 1.0
                               ? traits.uniform(1.0,
                                                config_.error_multiplier_max)
                               : 1.0);
  }
}

double FaultModel::slowdown(std::size_t client) const {
  return client < slowdown_.size() ? slowdown_[client] : 1.0;
}

double FaultModel::error_scale(std::size_t client) const {
  return client < error_scale_.size() ? error_scale_[client] : 1.0;
}

bool FaultModel::crashed(std::size_t client, int round) const {
  if (!enabled_ || config_.crash_prob <= 0.0) return false;
  Rng coin = root_.fork("crash-" + std::to_string(client) + "-" +
                        std::to_string(round));
  return coin.bernoulli(config_.crash_prob);
}

bool FaultModel::in_outage(std::size_t client, int round) const {
  if (!enabled_ || config_.outage_prob <= 0.0) return false;
  // In an outage at r iff one *started* in (r - outage_rounds, r]. Start
  // coins are pure functions of (client, round), so the window membership
  // test needs no per-round state.
  const int first = round - config_.outage_rounds + 1;
  for (int r0 = std::max(1, first); r0 <= round; ++r0) {
    Rng coin = root_.fork("outage-" + std::to_string(client) + "-" +
                          std::to_string(r0));
    if (coin.bernoulli(config_.outage_prob)) return true;
  }
  return false;
}

bool FaultModel::available(std::size_t client, int round) const {
  if (!enabled_) return true;
  return !crashed(client, round) && !in_outage(client, round);
}

}  // namespace fhdnn::fl
