// Federated bundling of HD models (paper §3.4.2), expressed as a
// RoundEngine instantiation (fl/engine.hpp):
//   * LocalLearner: set the local model to the round's broadcast prototype
//     matrix C_t (optionally pushed once through a corrupting downlink),
//     one-shot bundle on first contact while the global model is still
//     empty, then E epochs of HD refinement;
//   * Transport: channel::HdModelTransport — the §3.5 unreliable uplink
//     (bit errors / packet loss / analog AWGN, binary or AGC-quantized
//     payloads) with uniform byte/bit accounting;
//   * Aggregator: serial fixed-order bundling (Eq. 1). The paper writes the
//     aggregate as a plain sum; we divide by the participant count by
//     default (average_aggregation = true) because repeated summing grows
//     the prototype norm geometrically across rounds (overflowing float32
//     in long runs) while changing nothing else: cosine inference is
//     scale-invariant and the Eq. 4 SNR bundling gain is a ratio, identical
//     under sum and mean. Set average_aggregation = false for the literal
//     Eq. 1 behaviour in short runs.
// The engine owns sampling, pre-drawn dropout coins, the client-parallel
// schedule, and per-round accounting, so results are bit-identical at
// every FHDNN_THREADS setting (DESIGN.md §6).
#pragma once

#include <memory>
#include <vector>

#include "channel/hd_uplink.hpp"
#include "fl/engine.hpp"
#include "hdc/classifier.hpp"
#include "tensor/tensor.hpp"

namespace fhdnn::fl {

/// One client's (or the test set's) encoded data.
struct HdClientData {
  Tensor h;                          ///< (N, d) hypervectors
  std::vector<std::int64_t> labels;  ///< N labels
};

struct FedHdConfig {
  std::size_t n_clients = 10;
  double client_fraction = 0.2;  ///< C
  int local_epochs = 2;          ///< E
  int rounds = 20;
  std::int64_t num_classes = 10;
  std::int64_t hd_dim = 10'000;
  bool average_aggregation = true;
  /// Use margin-scaled adaptive refinement (HdClassifier::
  /// refine_epoch_adaptive) instead of the paper's fixed-step rule.
  bool adaptive_refine = false;
  float refine_lr = 1.0F;
  int eval_every = 1;
  /// Probability that a sampled participant fails to deliver its update
  /// (straggler / power loss / link outage).
  double dropout_prob = 0.0;
  std::uint64_t seed = 1;
  channel::HdUplinkConfig uplink;  ///< defaults to a perfect channel
  /// Downlink (server -> clients) corruption. The paper assumes the
  /// broadcast is reliable ("error-free at arbitrary rates", §3.5); this
  /// knob drops that assumption: each round the broadcast copy every
  /// participant starts from is pushed through this channel once.
  channel::HdUplinkConfig downlink;  ///< defaults to a perfect channel
  /// Per-client fault injection (crashes, outages, stragglers, link-quality
  /// multipliers) — fl/faults.hpp. All-off by default.
  FaultConfig faults;
  /// Deadline-based rounds with over-selection — fl/engine.hpp. Off by
  /// default.
  DeadlineConfig deadline;
  /// Hierarchical aggregation fan-in (fl/hierarchy.hpp). 0 (default)
  /// keeps the legacy serial float bundling; >= 2 switches the aggregator
  /// to the exact-summation path, whose result is independent of the edge
  /// fan-in tree shape by construction (bundling is associative) — the
  /// committed prototypes equal hierarchical_sum(updates, fan_in) for any
  /// fan_in. Opt-in because the correctly-rounded exact sum can differ
  /// from the legacy left-to-right float sum in the last ulp.
  std::size_t aggregation_fan_in = 0;
  /// Sparse registered-client fleet — fl/population.hpp. Off by default;
  /// requires deadline or async mode.
  PopulationConfig population;
  /// FedBuff-style buffered-async rounds — fl/engine.hpp. Off by default.
  AsyncConfig async;
  /// Crash-consistent snapshots (fl/engine.hpp). Off by default.
  CheckpointConfig checkpoint;
  /// Injected aggregator kill for crash-recovery testing (fl/faults.hpp).
  CrashPlan crash;
};

namespace detail {
class FedHdProtocol;
}  // namespace detail

class FedHdTrainer {
 public:
  FedHdTrainer(std::vector<HdClientData> clients, HdClientData test,
               FedHdConfig config);
  ~FedHdTrainer();

  TrainingHistory run();
  RoundMetrics round(int round_index);
  double evaluate() const;

  /// Snapshot the full engine + protocol state to `path` (atomic commit,
  /// previous generation kept as `<path>.prev`).
  void checkpoint(const std::string& path);

  /// Restore a snapshot into this freshly-constructed trainer (same config
  /// required); run() then continues bit-identically to an uninterrupted
  /// run. Falls back to `<path>.prev` on a torn/corrupt primary.
  void resume(const std::string& path);

  const hdc::HdClassifier& global() const;
  hdc::HdClassifier& global();
  const TrainingHistory& history() const { return engine_->history(); }

  /// Uplink payload size per client per round, bytes — delegated to the
  /// transport so there is exactly one accounting rule (quantized size
  /// when the AGC path is active, 1 bit/scalar for binary transport).
  std::uint64_t update_bytes() const;

  /// The engine driving the rounds (sampling / dropout / schedule state).
  const RoundEngine& engine() const { return *engine_; }

  /// The type-erased protocol stack — the serving seam: fhdnnd workers
  /// drive it directly through fl::WorkerLoop (fl/serving.hpp).
  RoundProtocol& protocol();

  /// Route rounds through a custom driver (fl/serving.hpp's
  /// ServerRoundDriver); nullptr restores the in-process path.
  void set_round_driver(RoundDriver* driver);

  /// The engine's config fingerprint, exchanged in the hello handshake.
  std::uint32_t config_fingerprint() const;

 private:
  std::unique_ptr<detail::FedHdProtocol> protocol_;
  std::unique_ptr<RoundEngine> engine_;
};

}  // namespace fhdnn::fl
