// Federated bundling of HD models (paper §3.4.2).
//
// Each client holds hypervector-encoded local data (the frozen feature
// extractor + random-projection encoder run once, upstream of this class).
// One round:
//   1. broadcast the global prototype matrix C_t (assumed error-free);
//   2. each participant sets its local model to C_t and trains E epochs of
//      HD refinement (plus the one-shot bundle on the very first contact,
//      when the global model is still empty);
//   3. each participant uploads its prototypes through the configured
//      unreliable uplink (channel/hd_uplink.hpp);
//   4. the server aggregates the local models (Eq. 1). The paper writes the
//      aggregate as a plain sum; we divide by the participant count by
//      default (average_aggregation = true) because repeated summing grows
//      the prototype norm geometrically across rounds (overflowing float32
//      in long runs) while changing nothing else: cosine inference is
//      scale-invariant and the Eq. 4 SNR bundling gain is a ratio, identical
//      under sum and mean. Set average_aggregation = false for the literal
//      Eq. 1 behaviour in short runs.
//
// Steps 2–3 run client-parallel on the util/parallel.hpp pool: each
// participant refines a private HdClassifier seeded from a named RNG fork
// and dropout coins are pre-drawn, while step 4 reduces serially in client
// order — so round results are bit-identical at any FHDNN_THREADS setting
// (see DESIGN.md §6).
#pragma once

#include <vector>

#include "channel/hd_uplink.hpp"
#include "fl/history.hpp"
#include "fl/sampler.hpp"
#include "hdc/classifier.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fhdnn::fl {

/// One client's (or the test set's) encoded data.
struct HdClientData {
  Tensor h;                          ///< (N, d) hypervectors
  std::vector<std::int64_t> labels;  ///< N labels
};

struct FedHdConfig {
  std::size_t n_clients = 10;
  double client_fraction = 0.2;  ///< C
  int local_epochs = 2;          ///< E
  int rounds = 20;
  std::int64_t num_classes = 10;
  std::int64_t hd_dim = 10'000;
  bool average_aggregation = true;
  /// Use margin-scaled adaptive refinement (HdClassifier::
  /// refine_epoch_adaptive) instead of the paper's fixed-step rule.
  bool adaptive_refine = false;
  float refine_lr = 1.0F;
  int eval_every = 1;
  /// Probability that a sampled participant fails to deliver its update
  /// (straggler / power loss / link outage).
  double dropout_prob = 0.0;
  std::uint64_t seed = 1;
  channel::HdUplinkConfig uplink;  ///< defaults to a perfect channel
  /// Downlink (server -> clients) corruption. The paper assumes the
  /// broadcast is reliable ("error-free at arbitrary rates", §3.5); this
  /// knob drops that assumption: each round the broadcast copy every
  /// participant starts from is pushed through this channel once.
  channel::HdUplinkConfig downlink;  ///< defaults to a perfect channel
};

class FedHdTrainer {
 public:
  FedHdTrainer(std::vector<HdClientData> clients, HdClientData test,
               FedHdConfig config);

  TrainingHistory run();
  RoundMetrics round(int round_index);
  double evaluate() const;

  const hdc::HdClassifier& global() const { return global_; }
  hdc::HdClassifier& global() { return global_; }
  const TrainingHistory& history() const { return history_; }

  /// Uplink payload size per client per round, bytes (quantized size when
  /// the AGC path is active).
  std::uint64_t update_bytes() const;

 private:
  std::vector<HdClientData> clients_;
  HdClientData test_;
  FedHdConfig config_;
  Rng root_rng_;
  ClientSampler sampler_;
  hdc::HdClassifier global_;
  TrainingHistory history_;
};

}  // namespace fhdnn::fl
