// The generic federated round engine both trainers share.
//
// FedAvg over CNNs and federated bundling over HD models run the *same*
// synchronous protocol (paper §3.4.2 / McMahan et al.); only three seams
// differ:
//   * LocalLearner — how one client trains from the round's broadcast and
//     what its update looks like (flat float state vs. prototype matrix);
//   * channel::Transport — how an update is serialized, corrupted on the
//     uplink, and accounted (channel/transport.hpp);
//   * Aggregator — how delivered updates reduce into the global model
//     (weighted averaging vs. bundling).
//
// RoundEngine owns everything else: client sampling (fraction C),
// pre-drawn dropout coins, client-parallel local updates on the
// util/parallel.hpp pool, serial fixed-order reduction, the evaluation
// schedule, and per-round accounting (wall-clock time, sampled /
// delivered / dropped counts, uplink traffic) — so both trainers report
// identically through RoundMetrics.
//
// Two robustness layers ride on top of the plain dropout coin (ISSUE:
// ARQ + faults + deadlines). A FaultModel (fl/faults.hpp, engine fork
// "faults") injects per-client crashes, outage windows, stragglers, and
// link-quality multipliers; a DeadlineConfig turns rounds deadline-based:
// the engine over-selects participants, simulates each delivery's duration
// from its measured transport stats via FlTimeline (ARQ retransmissions
// and backoff included), and accepts only the first clients_per_round()
// deliveries inside the deadline — late updates are discarded but their
// traffic is charged (RoundMetrics::timed_out). Both layers are off by
// default and change nothing when off.
//
// Timed rounds are DISCRETE-EVENT (DESIGN.md §12): whenever a timeline is
// configured (deadline or buffered-async mode), each delivered
// participant schedules kTrainDone and kUploadArrival events on the
// engine's EventQueue and the server's acceptance decision replays them
// in deterministic simulated-time order — (time, client, seq), never
// insertion or thread order. On top of the event clock sit two opt-in
// scale layers:
//   * PopulationConfig — a sparse ClientPopulation of millions of
//     registered clients (fl/population.hpp) whose availability windows,
//     compute factors, and link quality are pure functions of
//     (seed, client id); only the sampled clients of a round hold any
//     state, so memory is bounded by the round size, not the fleet size.
//     Sampled clients asleep at round start never train (counted as
//     dropped); awake clients' compute/link factors stretch their event
//     times. Requires a timed mode (deadline or async).
//   * AsyncConfig — FedBuff-style buffered-async acceptance: the round
//     commits when the first K uploads have arrived; later arrivals are
//     buffered (RoundMetrics::timed_out in their arrival round) and
//     folded into a later round's aggregate with staleness weight
//     (1 + staleness)^-exponent (RoundMetrics::stale_accepted), or
//     expired past max_staleness. Mutually exclusive with deadline mode.
//
// Determinism contract (DESIGN.md §6): every round forks a named stream
// root.fork("round-<r>"), from which the engine forks "sample", "dropout",
// "jitter" (deadline rounds), and "client-<id>" per participant; seams
// fork their own named streams from those ("mask", "channel",
// "channel-<id>", "downlink"), and the fault layer draws only from forks
// of root.fork("faults") that are pure in (client, round). Forking never
// perturbs the parent, coins are pre-drawn in participant order, and the
// reduction is serial in participant order — histories are bit-identical
// at every FHDNN_THREADS setting (wall_seconds excepted).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "channel/transport.hpp"
#include "fl/events.hpp"
#include "fl/faults.hpp"
#include "fl/history.hpp"
#include "fl/population.hpp"
#include "fl/sampler.hpp"
#include "fl/timeline.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

namespace fhdnn {
class Tensor;  // codec specialization below; engine.cpp sees the full type
}  // namespace fhdnn

namespace fhdnn::fl {

/// How a protocol's Update type crosses a snapshot boundary. The primary
/// template throws at runtime instead of failing to compile: virtual
/// members of a class template are instantiated with its vtable, so a
/// compile-time error here would break every ProtocolAdapter whose update
/// type never checkpoints (synthetic bench seams). Engines whose protocols
/// should checkpoint use the std::vector<float> / Tensor specializations.
template <typename Update>
struct UpdateSnapshotCodec {
  static void save(util::SnapshotWriter& w, const Update& u) {
    (void)w;
    (void)u;
    throw util::SnapshotError(util::SnapshotErrorKind::kState, 0,
                              "update type has no snapshot codec");
  }
  static Update load(util::SnapshotReader& r) {
    (void)r;
    throw util::SnapshotError(util::SnapshotErrorKind::kState, 0,
                              "update type has no snapshot codec");
  }
};

/// Flat float states (FedAvg). Defined in engine.cpp.
template <>
struct UpdateSnapshotCodec<std::vector<float>> {
  static void save(util::SnapshotWriter& w, const std::vector<float>& u);
  static std::vector<float> load(util::SnapshotReader& r);
};

/// Prototype matrices (FedHd). Defined in engine.cpp.
template <>
struct UpdateSnapshotCodec<Tensor> {
  static void save(util::SnapshotWriter& w, const Tensor& u);
  static Tensor load(util::SnapshotReader& r);
};

/// Trains one client from the current broadcast model — the learner seam.
template <typename Update>
class LocalLearner {
 public:
  virtual ~LocalLearner() = default;

  struct TrainResult {
    Update update{};
    double loss = 0.0;  ///< mean local loss (CNN) or error rate (HD)
  };

  /// Serial, once per round before any client runs: refresh the broadcast
  /// copy clients start from (downlink corruption, reference snapshots).
  virtual void begin_round(const Rng& round_rng) { (void)round_rng; }

  /// Train `client` starting from the round's broadcast and return its
  /// update. Called concurrently for distinct clients: implementations may
  /// only read shared state and must draw all randomness from `client_rng`
  /// (the engine-named fork "client-<id>" of the round stream).
  virtual TrainResult train(std::size_t client, Rng& client_rng) = 0;

  /// Test-set accuracy of the current global model.
  virtual double evaluate() = 0;

  /// Snapshot seam: persist / restore whatever learner state feeds future
  /// rounds (the global model, broadcast caches derivable from it may be
  /// skipped). Default: stateless. Non-const because model extraction
  /// (nn::get_state) takes mutable module references.
  virtual void save_state(util::SnapshotWriter& w) { (void)w; }
  virtual void load_state(util::SnapshotReader& r) { (void)r; }
};

/// Folds delivered updates into the global model — the aggregation seam.
/// The engine drives begin_round, then accumulate for each *delivered*
/// participant serially in fixed participant order, then commit once when
/// at least one update was delivered (an all-dropped round leaves the
/// global model untouched).
template <typename Update>
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual void begin_round() = 0;
  virtual void accumulate(std::size_t client, Update&& update) = 0;
  virtual void commit(std::size_t delivered) = 0;

  /// Buffered-async rounds fold updates in with a staleness weight (fresh
  /// arrivals get 1.0). The default ignores the weight — correct only for
  /// aggregators whose commit doesn't normalize by count; weighted
  /// protocols override both weighted hooks together.
  virtual void accumulate_weighted(std::size_t client, Update&& update,
                                   double weight) {
    (void)weight;
    accumulate(client, std::move(update));
  }

  /// Commit `n_updates` accumulated with total weight `total_weight`
  /// (fresh count 1.0 each + staleness-weighted late ones). Default
  /// delegates to commit(n_updates), ignoring the weights.
  virtual void commit_weighted(std::size_t n_updates, double total_weight) {
    (void)total_weight;
    commit(n_updates);
  }

  /// Snapshot seam: persist / restore mid-aggregation accumulator state.
  /// Default: stateless.
  virtual void save_state(util::SnapshotWriter& w) { (void)w; }
  virtual void load_state(util::SnapshotReader& r) { (void)r; }
};

/// What the engine learns about one participant's parallel task.
struct ClientReport {
  double loss = 0.0;
  channel::TransportStats stats;  ///< zeros for dropped participants
};

/// Type-erased face of a (LocalLearner, Transport, Aggregator) triple; the
/// engine drives rounds through it without knowing the update type. Use
/// ProtocolAdapter to assemble one from the typed seams.
class RoundProtocol {
 public:
  virtual ~RoundProtocol() = default;

  /// Serial round prologue; `n_participants` slots will run.
  virtual void begin_round(const Rng& round_rng,
                          std::size_t n_participants) = 0;

  /// Train participant `slot` (client id `client`); when `delivered`, also
  /// push its update through the transport and retain it for reduce().
  /// Thread-safe across distinct slots.
  virtual ClientReport run_client(std::size_t slot, std::size_t client,
                                  const Rng& round_rng, bool delivered) = 0;

  /// Serial fixed-order reduction of the delivered updates into the global
  /// model. `participants[i]` is slot i's client id; `delivered[i]` its
  /// pre-drawn delivery coin.
  virtual void reduce(const std::vector<std::size_t>& participants,
                      const std::vector<char>& delivered) = 0;

  /// What a buffered-async reduction did with the cross-round buffer.
  struct AsyncReduceStats {
    std::size_t stale_applied = 0;  ///< buffered updates folded in (weighted)
    std::size_t stale_expired = 0;  ///< buffered updates dropped (too stale)
    std::size_t buffered = 0;       ///< this round's late arrivals buffered
  };

  /// Buffered-async reduction: fold the `accepted` slots in at weight 1.0
  /// plus any buffered late updates from earlier rounds at
  /// (1 + staleness)^-staleness_exponent, then buffer this round's `late`
  /// slots for a later round (expired past max_staleness). The default
  /// ignores the buffer and reduces the accepted slots synchronously —
  /// protocols that can hold updates across rounds (ProtocolAdapter)
  /// override it.
  virtual AsyncReduceStats reduce_async(
      const std::vector<std::size_t>& participants,
      const std::vector<char>& accepted, const std::vector<char>& late,
      double staleness_exponent, int max_staleness) {
    (void)late;
    (void)staleness_exponent;
    (void)max_staleness;
    reduce(participants, accepted);
    return {};
  }

  virtual double evaluate() = 0;

  /// Snapshot seam driven by RoundEngine checkpoints: persist / restore
  /// everything the protocol carries across or within rounds (per-slot
  /// update buffers, the cross-round staleness backlog, the seams' own
  /// state). Default: stateless, so mocks and synthetic protocols opt out.
  virtual void save_state(util::SnapshotWriter& w) { (void)w; }
  virtual void load_state(util::SnapshotReader& r) { (void)r; }

  /// Wire seam (fhdnnd serving, fl/serving.hpp): serialize the update a
  /// run_client(slot, ...) retained, or install one received over a
  /// connection into that slot. Only meaningful between begin_round and
  /// reduce. Defaults throw — mocks and synthetic protocols never cross a
  /// wire; ProtocolAdapter implements both via UpdateSnapshotCodec.
  virtual void save_update(std::size_t slot, util::SnapshotWriter& w) {
    (void)slot;
    (void)w;
    throw util::SnapshotError(util::SnapshotErrorKind::kState, 0,
                              "protocol has no update wire codec");
  }
  virtual void load_update(std::size_t slot, util::SnapshotReader& r) {
    (void)slot;
    (void)r;
    throw util::SnapshotError(util::SnapshotErrorKind::kState, 0,
                              "protocol has no update wire codec");
  }
};

/// Glues the three typed seams into a RoundProtocol, holding the per-slot
/// update buffer between the parallel section and the serial reduction.
template <typename Update>
class ProtocolAdapter final : public RoundProtocol {
 public:
  /// All three seams must outlive the adapter.
  ProtocolAdapter(LocalLearner<Update>& learner,
                  channel::Transport<Update>& transport,
                  Aggregator<Update>& aggregator)
      : learner_(learner), transport_(transport), aggregator_(aggregator) {}

  void begin_round(const Rng& round_rng, std::size_t n_participants) override {
    learner_.begin_round(round_rng);
    outcomes_.clear();
    outcomes_.resize(n_participants);
  }

  ClientReport run_client(std::size_t slot, std::size_t client,
                          const Rng& round_rng, bool delivered) override {
    Rng client_rng = round_rng.fork("client-" + std::to_string(client));
    auto result = learner_.train(client, client_rng);
    ClientReport report;
    report.loss = result.loss;
    if (delivered) {
      // Dropped participants trained (and paid the compute), but nothing
      // reaches the channel or the server and no traffic is accounted.
      report.stats =
          transport_.transmit(result.update, client, client_rng, round_rng);
      outcomes_[slot] = std::move(result.update);
    }
    return report;
  }

  void reduce(const std::vector<std::size_t>& participants,
              const std::vector<char>& delivered) override {
    aggregator_.begin_round();
    std::size_t n = 0;
    for (std::size_t slot = 0; slot < participants.size(); ++slot) {
      if (!delivered[slot]) continue;
      ++n;
      aggregator_.accumulate(participants[slot], std::move(outcomes_[slot]));
    }
    if (n > 0) aggregator_.commit(n);
    // Canonical end-of-round state: an empty buffer, not a vector of
    // moved-from husks — keeps round-boundary snapshots small and makes
    // snapshot -> restore -> snapshot byte-identical.
    outcomes_.clear();
  }

  /// FedBuff-style buffered reduction. Serial, deterministic order:
  /// surviving buffered updates first (in the order they were buffered),
  /// then this round's accepted slots in slot order; late slots move into
  /// the buffer at staleness 0 and age by one each subsequent round.
  AsyncReduceStats reduce_async(const std::vector<std::size_t>& participants,
                                const std::vector<char>& accepted,
                                const std::vector<char>& late,
                                double staleness_exponent,
                                int max_staleness) override {
    AsyncReduceStats stats;
    aggregator_.begin_round();
    // Age the buffer; expire entries past max_staleness before applying.
    std::vector<StaleUpdate> survivors;
    survivors.reserve(stale_.size());
    for (auto& entry : stale_) {
      ++entry.staleness;
      if (entry.staleness > max_staleness) {
        ++stats.stale_expired;
      } else {
        survivors.push_back(std::move(entry));
      }
    }
    stale_ = std::move(survivors);
    double total_weight = 0.0;
    std::size_t applied = 0;
    for (auto& entry : stale_) {
      const double w =
          std::pow(1.0 + static_cast<double>(entry.staleness),
                   -staleness_exponent);
      aggregator_.accumulate_weighted(entry.client, std::move(entry.update), w);
      total_weight += w;
      ++applied;
      ++stats.stale_applied;
    }
    stale_.clear();
    for (std::size_t slot = 0; slot < participants.size(); ++slot) {
      if (accepted[slot]) {
        aggregator_.accumulate_weighted(participants[slot],
                                        std::move(outcomes_[slot]), 1.0);
        total_weight += 1.0;
        ++applied;
      } else if (late[slot]) {
        stale_.push_back(
            StaleUpdate{participants[slot], 0, std::move(outcomes_[slot])});
        ++stats.buffered;
      }
    }
    if (applied > 0) aggregator_.commit_weighted(applied, total_weight);
    outcomes_.clear();  // canonical end-of-round state (see reduce())
    return stats;
  }

  double evaluate() override { return learner_.evaluate(); }

  void save_update(std::size_t slot, util::SnapshotWriter& w) override {
    FHDNN_CHECK(slot < outcomes_.size(),
                "save_update slot " << slot << " outside the cohort of "
                                    << outcomes_.size());
    UpdateSnapshotCodec<Update>::save(w, outcomes_[slot]);
  }

  void load_update(std::size_t slot, util::SnapshotReader& r) override {
    FHDNN_CHECK(slot < outcomes_.size(),
                "load_update slot " << slot << " outside the cohort of "
                                    << outcomes_.size());
    outcomes_[slot] = UpdateSnapshotCodec<Update>::load(r);
  }

  void save_state(util::SnapshotWriter& w) override {
    w.write_u64(outcomes_.size());
    for (const Update& u : outcomes_) {
      UpdateSnapshotCodec<Update>::save(w, u);
    }
    w.write_u64(stale_.size());
    for (const StaleUpdate& s : stale_) {
      w.write_u64(static_cast<std::uint64_t>(s.client));
      w.write_i64(s.staleness);
      UpdateSnapshotCodec<Update>::save(w, s.update);
    }
    learner_.save_state(w);
    aggregator_.save_state(w);
  }

  void load_state(util::SnapshotReader& r) override {
    const auto n = static_cast<std::size_t>(r.read_u64());
    outcomes_.clear();
    outcomes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      outcomes_.push_back(UpdateSnapshotCodec<Update>::load(r));
    }
    const auto n_stale = static_cast<std::size_t>(r.read_u64());
    stale_.clear();
    stale_.reserve(n_stale);
    for (std::size_t i = 0; i < n_stale; ++i) {
      StaleUpdate s;
      s.client = static_cast<std::size_t>(r.read_u64());
      s.staleness = static_cast<int>(r.read_i64());
      s.update = UpdateSnapshotCodec<Update>::load(r);
      stale_.push_back(std::move(s));
    }
    learner_.load_state(r);
    aggregator_.load_state(r);
  }

 private:
  struct StaleUpdate {
    std::size_t client = 0;
    int staleness = 0;  ///< rounds since arrival (0 = arrived this round)
    Update update{};
  };

  LocalLearner<Update>& learner_;
  channel::Transport<Update>& transport_;
  Aggregator<Update>& aggregator_;
  std::vector<Update> outcomes_;
  std::vector<StaleUpdate> stale_;  ///< cross-round buffered-async backlog
};

/// The execution seam between the aggregation core and whoever runs the
/// round's client work. After the engine's serial prologue (participant
/// sampling, delivery coins, begin_round), drive() must train every
/// participant slot that needs work and fill `reports` — either in process
/// (LocalRoundDriver, the default) or by fanning slots out to connected
/// workers (fl/serving.hpp's ServerRoundDriver). The engine then runs the
/// acceptance/reduction epilogue unchanged, which is why both drivers
/// produce bit-identical histories: the reduction consumes per-slot state
/// in fixed slot order regardless of who computed it, or where.
class RoundDriver {
 public:
  virtual ~RoundDriver() = default;

  /// Run the round's client work. `participants[slot]` is the client id,
  /// `delivered[slot]` its pre-drawn delivery coin, `awake` the population
  /// availability flags (empty when population mode is off — treat every
  /// slot as awake). Must fill `reports[slot]` for every slot it runs and
  /// leave the protocol's retained updates installed for delivered slots.
  virtual void drive(RoundProtocol& protocol, const Rng& round_rng,
                     int round_index,
                     const std::vector<std::size_t>& participants,
                     const std::vector<char>& delivered,
                     const std::vector<char>& awake,
                     std::vector<ClientReport>& reports) = 0;

  /// Called after the round's metrics commit (post-reduce, post-eval);
  /// server drivers broadcast the ack/metrics message here. Default: no-op.
  virtual void round_committed(const RoundMetrics& metrics) { (void)metrics; }
};

/// Default in-process driver: client-parallel local updates on the
/// util/parallel pool, workspace arena reset at each client batch — the
/// engine's historical behavior, bit for bit. Non-delivered slots still
/// train (they paid the compute in the real world; only their uplink is
/// lost), asleep slots are skipped entirely.
class LocalRoundDriver final : public RoundDriver {
 public:
  void drive(RoundProtocol& protocol, const Rng& round_rng, int round_index,
             const std::vector<std::size_t>& participants,
             const std::vector<char>& delivered, const std::vector<char>& awake,
             std::vector<ClientReport>& reports) override;
};

/// Deadline-based round policy (paper §4.4's timing model driving the
/// acceptance decision instead of only post-hoc reporting). When enabled,
/// the engine over-selects ceil(C*N*(1+over_selection)) participants,
/// derives a per-round deadline from the FlTimeline nominal round duration
/// (device compute + one configured-size LTE upload), simulates every
/// delivered participant's round time from its *measured* transport stats
/// (so ARQ retransmissions and backoff lengthen it), and accepts the first
/// clients_per_round() deliveries that finish within the deadline. Later
/// deliveries are discarded — their traffic stays charged, they count as
/// RoundMetrics::timed_out — which is how a synchronous server degrades
/// gracefully instead of stalling on stragglers and retransmit storms.
struct DeadlineConfig {
  bool enabled = false;
  /// Device / LTE model the deadline and per-client times come from;
  /// timeline.update_bits must be set when enabled.
  TimelineConfig timeline;
  double over_selection = 0.25;  ///< eps: extra participants sampled
  double deadline_factor = 1.5;  ///< deadline = factor * nominal round time
};

/// Buffered-async acceptance (FedBuff-style). The round boundary is the
/// Kth upload arrival instead of a deadline: the server aggregates as
/// soon as its buffer fills, and anything still in flight lands in a
/// later round's aggregate, down-weighted by how many rounds it missed.
/// Mutually exclusive with DeadlineConfig.
struct AsyncConfig {
  bool enabled = false;
  /// Device / LTE model the event times come from; timeline.update_bits
  /// must be set when enabled.
  TimelineConfig timeline;
  /// Arrivals that close the round; 0 means clients_per_round().
  std::size_t buffer_size = 0;
  double over_selection = 0.25;     ///< eps: extra participants sampled
  double staleness_exponent = 0.5;  ///< weight = (1+staleness)^-exponent
  int max_staleness = 2;            ///< buffered rounds before expiry
};

/// Crash-consistent checkpointing (DESIGN.md §13). When `path` is set the
/// engine commits a snapshot there after every completed round, and — when
/// `every_n_events` > 0 — additionally after every Nth processed discrete
/// event, so a killed aggregator resumes mid-round. Each commit is atomic
/// and rotates the prior generation to `<path>.prev` for torn-write
/// fallback.
struct CheckpointConfig {
  std::string path;                   ///< empty disables checkpointing
  std::uint64_t every_n_events = 0;   ///< 0: round boundaries only
  bool enabled() const { return !path.empty(); }
};

/// Engine knobs shared by every federated protocol (paper notation).
struct EngineConfig {
  std::size_t n_clients = 0;
  double client_fraction = 0.1;  ///< C
  int rounds = 1;
  int eval_every = 1;            ///< evaluate test accuracy every k rounds
  double dropout_prob = 0.0;     ///< per-participant delivery failure
  std::uint64_t seed = 1;
  std::string name = "engine";   ///< log prefix ("fedavg", "fedhd", ...)
  FaultConfig faults;            ///< per-client fault injection (off by default)
  DeadlineConfig deadline;       ///< deadline-based rounds (off by default)
  /// Sparse registered-client fleet (off by default). When enabled,
  /// n_clients is ignored for sampling: participants are drawn from
  /// population.n_registered ids, and client_fraction applies to the
  /// registered count. Requires deadline or async mode (availability
  /// windows need a simulated clock).
  PopulationConfig population;
  AsyncConfig async;             ///< buffered-async rounds (off by default)
  CheckpointConfig checkpoint;   ///< crash-consistent snapshots (off by default)
  /// Injected aggregator kill for crash-recovery testing (off by default).
  CrashPlan crash;
};

/// The shared synchronous round loop. See the file header for the seam
/// split and the determinism contract.
class RoundEngine {
 public:
  /// `protocol` must outlive the engine.
  RoundEngine(EngineConfig config, RoundProtocol& protocol);

  /// Execute one round. Does not append to history(); run() does.
  RoundMetrics round(int round_index);

  /// Run all configured rounds, appending each to history().
  TrainingHistory run();

  const TrainingHistory& history() const { return history_; }
  const ClientSampler& sampler() const { return sampler_; }
  const EngineConfig& config() const { return config_; }

  /// The per-client fault layer (disabled when config.faults is all-off).
  /// Trainers install faults().error_scales() into their transports.
  const FaultModel& faults() const { return faults_; }

  /// Per-round acceptance deadline in simulated seconds; 0 when deadline
  /// rounds are disabled.
  double deadline_seconds() const;

  /// Simulated campaign clock: total simulated seconds elapsed across the
  /// rounds run so far (0 when no timed mode is configured). Availability
  /// windows of the sparse population are evaluated against this clock.
  double sim_seconds() const { return sim_now_; }

  /// The sparse registered fleet, when population mode is on.
  const ClientPopulation* population() const {
    return population_ ? &*population_ : nullptr;
  }

  /// Discrete events processed across the whole run so far (cumulative
  /// over rounds — the counter CrashPlan::at_event and
  /// CheckpointConfig::every_n_events are expressed in).
  std::uint64_t total_events() const { return total_events_; }

  /// Commit a snapshot of the engine's full deterministic state to `path`
  /// (atomic; rotates the prior generation to `<path>.prev`). Captures
  /// mid-round state when called between events of a timed round.
  void checkpoint(const std::string& path);

  /// Route the round's client work through a custom driver (fl/serving.hpp
  /// ServerRoundDriver); nullptr restores the in-process LocalRoundDriver.
  /// The driver must outlive the engine (or be reset first).
  void set_round_driver(RoundDriver* driver) { driver_ = driver; }

  /// CRC-32 over the determinism-relevant config knobs; stored in snapshot
  /// META chunks and exchanged in the fhdnnd hello handshake, so neither a
  /// resume nor a worker ever silently runs a different experiment.
  std::uint32_t config_fingerprint() const;

  /// Restore a snapshot written by checkpoint() / automatic checkpointing.
  /// Tries `path` first, then `<path>.prev` (torn-write fallback). The
  /// engine must be freshly constructed with the SAME config (fingerprint
  /// checked) — afterwards run() continues from the snapshot and produces
  /// a history bit-identical to the uninterrupted run. Throws
  /// util::SnapshotError when no generation validates or the config does
  /// not match.
  void resume(const std::string& path);

 private:
  /// Everything the event-acceptance loop of a timed round has decided so
  /// far. Populated by the serial+parallel round prologue, consumed by the
  /// post-loop reduction; snapshotting it between two events is what makes
  /// mid-round resume possible. The prologue-only intermediates (awake
  /// flags, jitter draws) are deliberately absent: they are fully spent by
  /// the time the first event pops.
  struct PendingRound {
    bool active = false;
    int round_index = 0;
    std::vector<std::size_t> participants;
    std::vector<char> delivered;
    std::vector<ClientReport> reports;
    std::vector<char> accepted;
    std::vector<char> late;
    bool deadline_passed = false;
    std::size_t taken = 0;
    std::size_t arrivals = 0;
    double last_accept = 0.0;
    double last_arrival = 0.0;
    std::size_t cap = 0;
  };

  void save_snapshot(util::SnapshotWriter& w);
  void write_checkpoint();

  EngineConfig config_;
  RoundProtocol& protocol_;
  LocalRoundDriver local_driver_;
  RoundDriver* driver_ = nullptr;  ///< null: use local_driver_
  Rng root_rng_;
  ClientSampler sampler_;
  FaultModel faults_;
  std::optional<FlTimeline> timeline_;
  std::optional<ClientPopulation> population_;
  EventQueue events_;
  double sim_now_ = 0.0;
  TrainingHistory history_;
  PendingRound pending_;
  std::uint64_t total_events_ = 0;
};

}  // namespace fhdnn::fl
