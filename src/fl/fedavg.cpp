#include "fl/fedavg.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace fhdnn::fl {

namespace {

constexpr std::int64_t kEvalBatch = 128;

/// Everything one client task produces; the server reduces these in
/// participant order after the parallel section.
struct ClientOutcome {
  std::vector<float> state;       ///< post-channel update (delivered only)
  double loss = 0.0;
  std::uint64_t sent_scalars = 0;  ///< scalars actually transmitted
  channel::TransmitStats stats;
};

}  // namespace

FedAvgTrainer::FedAvgTrainer(ModelFactory factory, const data::Dataset& train,
                             data::ClientIndices parts,
                             const data::Dataset& test, FedAvgConfig config,
                             const channel::Channel* uplink)
    : factory_(std::move(factory)),
      train_(train),
      parts_(std::move(parts)),
      test_(test),
      config_(config),
      uplink_(uplink),
      root_rng_(config.seed),
      sampler_(config.n_clients, config.client_fraction),
      test_batch_(test.all()) {
  FHDNN_CHECK(parts_.size() == config_.n_clients,
              "partition has " << parts_.size() << " clients, config says "
                               << config_.n_clients);
  FHDNN_CHECK(config_.rounds > 0 && config_.local_epochs > 0,
              "FedAvg config rounds/epochs");
  FHDNN_CHECK(config_.update_fraction > 0.0 && config_.update_fraction <= 1.0,
              "update_fraction " << config_.update_fraction);
  FHDNN_CHECK(config_.dropout_prob >= 0.0 && config_.dropout_prob < 1.0,
              "dropout_prob " << config_.dropout_prob);
  Rng init_rng = root_rng_.fork("init");
  global_ = factory_(init_rng);
  state_scalars_ = nn::state_size(*global_);
  // Seed the worker pool with one instance and verify the factory produces
  // a matching architecture; further instances are created on demand.
  Rng worker_rng = root_rng_.fork("worker-init");
  auto first_worker = factory_(worker_rng);
  FHDNN_CHECK(nn::state_size(*first_worker) == state_scalars_,
              "factory produced mismatched architectures");
  worker_pool_.push_back(std::move(first_worker));
  workers_created_ = 1;
}

std::unique_ptr<nn::Module> FedAvgTrainer::acquire_worker() {
  {
    const std::lock_guard<std::mutex> lock(worker_mu_);
    if (!worker_pool_.empty()) {
      auto worker = std::move(worker_pool_.back());
      worker_pool_.pop_back();
      return worker;
    }
    ++workers_created_;
  }
  // The instance is fully overwritten by copy_state before training, so the
  // init stream only needs to be unique, not meaningful.
  Rng rng = root_rng_.fork("worker-init-" + std::to_string(workers_created_));
  auto worker = factory_(rng);
  FHDNN_CHECK(nn::state_size(*worker) == state_scalars_,
              "factory produced mismatched architectures");
  return worker;
}

void FedAvgTrainer::release_worker(std::unique_ptr<nn::Module> worker) {
  const std::lock_guard<std::mutex> lock(worker_mu_);
  worker_pool_.push_back(std::move(worker));
}

double FedAvgTrainer::evaluate() {
  global_->set_training(false);
  const std::int64_t n = test_batch_.x.dim(0);
  const std::int64_t per = test_batch_.x.numel() / n;
  std::size_t correct = 0;
  for (std::int64_t begin = 0; begin < n; begin += kEvalBatch) {
    const std::int64_t len = std::min(kEvalBatch, n - begin);
    Shape shape = test_batch_.x.shape();
    shape[0] = len;
    Tensor xb(shape);
    std::copy_n(
        test_batch_.x.data().begin() + static_cast<std::ptrdiff_t>(begin * per),
        len * per, xb.data().begin());
    const Tensor logits = global_->forward(xb);
    // Count correct predictions directly — reconstructing the count from
    // the accuracy ratio can round off by one.
    const auto preds = ops::argmax_rows(logits);
    for (std::int64_t i = 0; i < len; ++i) {
      if (preds[static_cast<std::size_t>(i)] ==
          test_batch_.labels[static_cast<std::size_t>(begin + i)]) {
        ++correct;
      }
    }
  }
  global_->set_training(true);
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::pair<std::vector<float>, double> FedAvgTrainer::local_update(
    std::size_t client, Rng& rng, nn::Module& worker) {
  nn::copy_state(*global_, worker);
  worker.set_training(true);
  nn::Sgd opt(worker, {config_.lr, config_.momentum, config_.weight_decay});
  nn::CrossEntropyLoss loss_fn;
  const auto& indices = parts_[client];
  FHDNN_CHECK(!indices.empty(), "client " << client << " has no data");
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (int e = 0; e < config_.local_epochs; ++e) {
    data::BatchIterator it(indices.size(), config_.batch_size, rng);
    while (!it.done()) {
      const auto local_idx = it.next();
      std::vector<std::size_t> batch_idx;
      batch_idx.reserve(local_idx.size());
      for (const std::size_t i : local_idx) batch_idx.push_back(indices[i]);
      const auto batch = train_.gather(batch_idx);
      opt.zero_grad();
      const Tensor logits = worker.forward(batch.x);
      total_loss += loss_fn.forward(logits, batch.labels);
      worker.backward(loss_fn.backward());
      opt.step();
      ++batches;
    }
  }
  return {nn::get_state(worker),
          batches ? total_loss / static_cast<double>(batches) : 0.0};
}

RoundMetrics FedAvgTrainer::round(int round_index) {
  Rng round_rng = root_rng_.fork("round-" + std::to_string(round_index));
  Rng sample_rng = round_rng.fork("sample");
  const auto participants = sampler_.sample(sample_rng);
  const auto n_participants = static_cast<std::int64_t>(participants.size());

  RoundMetrics metrics;
  metrics.round = round_index;
  metrics.clients = participants.size();

  // Snapshot of the broadcast model; update-subsampling falls back to it.
  const std::vector<float> broadcast_state =
      config_.update_fraction < 1.0 ? nn::get_state(*global_)
                                    : std::vector<float>{};

  // Pre-draw delivery outcomes in participant order so the dropout stream
  // never depends on client execution order.
  std::vector<char> delivered_flag(participants.size(), 1);
  Rng dropout_rng = round_rng.fork("dropout");
  if (config_.dropout_prob > 0.0) {
    for (auto& flag : delivered_flag) {
      if (dropout_rng.bernoulli(config_.dropout_prob)) flag = 0;
    }
  }

  // Client-parallel local updates. Each task draws only from its own named
  // RNG fork and trains a private worker model; `global_` is read-only
  // until the serial reduction below.
  std::vector<ClientOutcome> outcomes(participants.size());
  parallel::parallel_for(0, n_participants, 1,
                         [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t idx = i0; idx < i1; ++idx) {
      const std::size_t client = participants[static_cast<std::size_t>(idx)];
      ClientOutcome& out = outcomes[static_cast<std::size_t>(idx)];
      Rng client_rng = round_rng.fork("client-" + std::to_string(client));
      auto worker = acquire_worker();
      auto [state, loss] = local_update(client, client_rng, *worker);
      release_worker(std::move(worker));
      out.loss = loss;
      if (!delivered_flag[static_cast<std::size_t>(idx)]) {
        // Transmission failure: the client trained (and paid the compute),
        // but its delivery is discarded — nothing reaches the server and no
        // bytes are accounted.
        continue;
      }
      // Update-subsampling compression: untransmitted scalars fall back to
      // the broadcast global value at the server. Uplink accounting counts
      // the scalars the Bernoulli mask actually transmitted, not the
      // expected fraction.
      std::uint64_t sent = state.size();
      if (config_.update_fraction < 1.0) {
        Rng mask_rng = client_rng.fork("mask");
        sent = 0;
        for (std::size_t i = 0; i < state.size(); ++i) {
          if (mask_rng.bernoulli(config_.update_fraction)) {
            ++sent;
          } else {
            state[i] = broadcast_state[i];
          }
        }
      }
      out.sent_scalars = sent;
      if (uplink_ != nullptr) {
        Rng chan_rng = client_rng.fork("channel");
        out.stats = uplink_->apply(state, chan_rng);
      }
      out.state = std::move(state);
    }
  });

  // Serial reduction in fixed participant order: aggregation stays
  // bit-identical to the sequential schedule at any thread count.
  std::vector<float> aggregate(static_cast<std::size_t>(state_scalars_), 0.0F);
  double weight_total = 0.0;
  double loss_total = 0.0;
  std::size_t delivered = 0;
  for (std::size_t idx = 0; idx < participants.size(); ++idx) {
    if (!delivered_flag[idx]) continue;  // trained but never delivered
    ++delivered;
    const std::size_t client = participants[idx];
    ClientOutcome& out = outcomes[idx];
    loss_total += out.loss;
    metrics.bytes_uplink += out.sent_scalars * sizeof(float);
    if (uplink_ != nullptr) {
      metrics.bits_on_air += out.stats.bits_on_air;
      metrics.bit_flips += out.stats.bit_flips;
      metrics.packets_lost += out.stats.packets_lost;
    } else {
      metrics.bits_on_air += out.sent_scalars * 32;
    }
    const double w = static_cast<double>(parts_[client].size());
    for (std::size_t i = 0; i < out.state.size(); ++i) {
      aggregate[i] += static_cast<float>(w) * out.state[i];
    }
    weight_total += w;
  }
  if (delivered > 0) {
    FHDNN_CHECK(weight_total > 0.0, "no data among participants");
    const float inv = static_cast<float>(1.0 / weight_total);
    for (auto& v : aggregate) v *= inv;
    nn::set_state(*global_, aggregate);
  }
  metrics.clients = delivered;

  metrics.train_loss =
      delivered ? loss_total / static_cast<double>(delivered) : 0.0;
  if (round_index % std::max(1, config_.eval_every) == 0 ||
      round_index == config_.rounds) {
    metrics.test_accuracy = evaluate();
  } else {
    metrics.test_accuracy =
        history_.empty() ? 0.0 : history_.rounds().back().test_accuracy;
  }
  return metrics;
}

TrainingHistory FedAvgTrainer::run() {
  for (int r = 1; r <= config_.rounds; ++r) {
    const RoundMetrics m = round(r);
    history_.add(m);
    log_debug() << "fedavg round " << r << " acc=" << m.test_accuracy
                << " loss=" << m.train_loss;
  }
  return history_;
}

}  // namespace fhdnn::fl
