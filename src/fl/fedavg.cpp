#include "fl/fedavg.hpp"

#include <algorithm>
#include <mutex>
#include <utility>
#include <vector>

#include "channel/transport.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/workspace.hpp"

namespace fhdnn::fl {

namespace detail {

namespace {
constexpr std::int64_t kEvalBatch = 128;
}  // namespace

/// LocalLearner seam: E epochs of minibatch SGD from the broadcast state on
/// a private worker model. The worker pool grows to one instance per
/// concurrently-running client task; every instance is fully overwritten by
/// copy_state before use, so reuse is safe.
class FedAvgLearner final : public LocalLearner<std::vector<float>> {
 public:
  FedAvgLearner(ModelFactory factory, const data::Dataset& train,
                data::ClientIndices parts, const data::Dataset& test,
                const FedAvgConfig& config,
                channel::FloatStateTransport& transport)
      : factory_(std::move(factory)),
        train_(train),
        parts_(std::move(parts)),
        test_(test),
        config_(config),
        transport_(transport),
        root_rng_(config.seed),
        test_batch_(test.all()) {
    FHDNN_CHECK(parts_.size() == config_.n_clients,
                "partition has " << parts_.size() << " clients, config says "
                                 << config_.n_clients);
    FHDNN_CHECK(config_.local_epochs > 0,
                "FedAvg local_epochs " << config_.local_epochs);
    Rng init_rng = root_rng_.fork("init");
    global_ = factory_(init_rng);
    state_scalars_ = nn::state_size(*global_);
    // Seed the worker pool with one instance and verify the factory
    // produces a matching architecture; further instances on demand.
    Rng worker_rng = root_rng_.fork("worker-init");
    auto first_worker = factory_(worker_rng);
    FHDNN_CHECK(nn::state_size(*first_worker) == state_scalars_,
                "factory produced mismatched architectures");
    worker_pool_.push_back(std::move(first_worker));
    workers_created_ = 1;
  }

  void begin_round(const Rng& /*round_rng*/) override {
    // Snapshot of the broadcast model; update-subsampling falls back to it.
    if (config_.update_fraction < 1.0) {
      broadcast_state_ = nn::get_state(*global_);
      transport_.set_broadcast(&broadcast_state_);
    }
  }

  TrainResult train(std::size_t client, Rng& client_rng) override {
    auto worker = acquire_worker();
    auto [state, loss] = local_update(client, client_rng, *worker);
    release_worker(std::move(worker));
    return {std::move(state), loss};
  }

  double evaluate() override {
    global_->set_training(false);
    const std::int64_t n = test_batch_.x.dim(0);
    const std::int64_t per = test_batch_.x.numel() / n;
    std::size_t correct = 0;
    for (std::int64_t begin = 0; begin < n; begin += kEvalBatch) {
      const std::int64_t len = std::min(kEvalBatch, n - begin);
      Shape shape = test_batch_.x.shape();
      shape[0] = len;
      Tensor xb(shape);
      std::copy_n(test_batch_.x.data().begin() +
                      static_cast<std::ptrdiff_t>(begin * per),
                  len * per, xb.data().begin());
      const Tensor& logits = global_->forward(xb);
      // Count correct predictions directly — reconstructing the count from
      // the accuracy ratio can round off by one.
      const auto preds = ops::argmax_rows(logits);
      for (std::int64_t i = 0; i < len; ++i) {
        if (preds[static_cast<std::size_t>(i)] ==
            test_batch_.labels[static_cast<std::size_t>(begin + i)]) {
          ++correct;
        }
      }
    }
    global_->set_training(true);
    return static_cast<double>(correct) / static_cast<double>(n);
  }

  nn::Module& global_model() { return *global_; }
  std::int64_t state_scalars() const { return state_scalars_; }
  const data::ClientIndices& parts() const { return parts_; }

  /// The global weights are the learner's only load-bearing state: the
  /// worker pool is overwritten by copy_state before every use, and the
  /// subsampling broadcast snapshot is re-derived by begin_round.
  void save_state(util::SnapshotWriter& w) override {
    w.write_floats(nn::get_state(*global_));
  }

  void load_state(util::SnapshotReader& r) override {
    nn::set_state(*global_, r.read_floats());
  }

 private:
  /// Check out / return a local-training model instance.
  std::unique_ptr<nn::Module> acquire_worker() {
    std::size_t id = 0;
    {
      const std::lock_guard<std::mutex> lock(worker_mu_);
      if (!worker_pool_.empty()) {
        auto worker = std::move(worker_pool_.back());
        worker_pool_.pop_back();
        return worker;
      }
      id = ++workers_created_;
    }
    // The instance is fully overwritten by copy_state before training, so
    // the init stream only needs to be unique, not meaningful.
    Rng rng = root_rng_.fork("worker-init-" + std::to_string(id));
    auto worker = factory_(rng);
    FHDNN_CHECK(nn::state_size(*worker) == state_scalars_,
                "factory produced mismatched architectures");
    return worker;
  }

  void release_worker(std::unique_ptr<nn::Module> worker) {
    const std::lock_guard<std::mutex> lock(worker_mu_);
    worker_pool_.push_back(std::move(worker));
  }

  /// Train `client` locally from the current global state into `worker`;
  /// returns its post-training state and mean loss. Thread-safe given a
  /// private `worker` and `rng`: it only reads `global_`, `train_`, and
  /// `parts_`.
  std::pair<std::vector<float>, double> local_update(std::size_t client,
                                                     Rng& rng,
                                                     nn::Module& worker) {
    nn::copy_state(*global_, worker);
    worker.set_training(true);
    nn::Sgd opt(worker, {config_.lr, config_.momentum, config_.weight_decay});
    nn::CrossEntropyLoss loss_fn;
    const auto& indices = parts_[client];
    FHDNN_CHECK(!indices.empty(), "client " << client << " has no data");
    double total_loss = 0.0;
    std::size_t batches = 0;
    for (int e = 0; e < config_.local_epochs; ++e) {
      data::BatchIterator it(indices.size(), config_.batch_size, rng);
      while (!it.done()) {
        const auto local_idx = it.next();
        std::vector<std::size_t> batch_idx;
        batch_idx.reserve(local_idx.size());
        for (const std::size_t i : local_idx) batch_idx.push_back(indices[i]);
        const auto batch = train_.gather(batch_idx);
        // Steady-state contract: after the first batch at this shape the
        // arena is warm and the whole step below allocates nothing.
        util::tls_workspace().reset();
        opt.zero_grad();
        const Tensor& logits = worker.forward(batch.x);
        total_loss += loss_fn.forward(logits, batch.labels);
        worker.backward(loss_fn.backward());
        opt.step();
        ++batches;
        // Batch boundary: forward/backward/step must leave no Scope open
        // (the reset() above would throw next iteration, but catching it
        // here points at the offending batch).
        FHDNN_CHECKED_ASSERT(util::tls_workspace().scope_depth() == 0,
                             "workspace Scope leaked across a batch");
      }
    }
    return {nn::get_state(worker),
            batches ? total_loss / static_cast<double>(batches) : 0.0};
  }

  ModelFactory factory_;
  const data::Dataset& train_;
  data::ClientIndices parts_;
  const data::Dataset& test_;
  const FedAvgConfig& config_;
  channel::FloatStateTransport& transport_;
  Rng root_rng_;
  std::unique_ptr<nn::Module> global_;
  std::vector<std::unique_ptr<nn::Module>> worker_pool_;
  std::mutex worker_mu_;
  std::size_t workers_created_ = 0;
  std::int64_t state_scalars_ = 0;
  std::vector<float> broadcast_state_;
  data::Dataset::Batch test_batch_;
};

/// Aggregator seam: example-count weighted averaging, serial in fixed
/// participant order.
class FedAvgAggregator final : public Aggregator<std::vector<float>> {
 public:
  explicit FedAvgAggregator(FedAvgLearner& learner) : learner_(learner) {}

  void begin_round() override {
    aggregate_.assign(static_cast<std::size_t>(learner_.state_scalars()),
                      0.0F);
    weight_total_ = 0.0;
  }

  void accumulate(std::size_t client, std::vector<float>&& state) override {
    accumulate_weighted(client, std::move(state), 1.0);
  }

  /// Buffered-async staleness weight multiplies the data-size weight, so a
  /// stale update from a big client still outweighs a fresh tiny one —
  /// and the weight it adds to the normalizer is discounted the same way.
  void accumulate_weighted(std::size_t client, std::vector<float>&& state,
                           double weight) override {
    const double w =
        static_cast<double>(learner_.parts()[client].size()) * weight;
    for (std::size_t i = 0; i < state.size(); ++i) {
      aggregate_[i] += static_cast<float>(w) * state[i];
    }
    weight_total_ += w;
  }

  void commit(std::size_t /*delivered*/) override {
    FHDNN_CHECK(weight_total_ > 0.0, "no data among participants");
    const float inv = static_cast<float>(1.0 / weight_total_);
    for (auto& v : aggregate_) v *= inv;
    nn::set_state(learner_.global_model(), aggregate_);
  }

  void commit_weighted(std::size_t delivered,
                       double /*total_weight*/) override {
    // weight_total_ already folds the staleness discounts in.
    commit(delivered);
  }

  void save_state(util::SnapshotWriter& w) override {
    w.write_floats(aggregate_);
    w.write_f64(weight_total_);
  }

  void load_state(util::SnapshotReader& r) override {
    aggregate_ = r.read_floats();
    weight_total_ = r.read_f64();
  }

 private:
  FedAvgLearner& learner_;
  std::vector<float> aggregate_;
  double weight_total_ = 0.0;
};

/// Owns the three seams and the adapter gluing them into a RoundProtocol.
class FedAvgProtocol {
 public:
  FedAvgProtocol(ModelFactory factory, const data::Dataset& train,
                 data::ClientIndices parts, const data::Dataset& test,
                 FedAvgConfig config, const channel::Channel* uplink)
      : config_(config),
        transport_(config_.update_fraction, uplink),
        learner_(std::move(factory), train, std::move(parts), test, config_,
                 transport_),
        aggregator_(learner_),
        adapter_(learner_, transport_, aggregator_) {}

  RoundProtocol& protocol() { return adapter_; }
  FedAvgLearner& learner() { return learner_; }
  channel::FloatStateTransport& transport() { return transport_; }
  const FedAvgConfig& config() const { return config_; }

 private:
  FedAvgConfig config_;
  channel::FloatStateTransport transport_;
  FedAvgLearner learner_;
  FedAvgAggregator aggregator_;
  ProtocolAdapter<std::vector<float>> adapter_;
};

}  // namespace detail

FedAvgTrainer::FedAvgTrainer(ModelFactory factory, const data::Dataset& train,
                             data::ClientIndices parts,
                             const data::Dataset& test, FedAvgConfig config,
                             const channel::Channel* uplink)
    : protocol_(std::make_unique<detail::FedAvgProtocol>(
          std::move(factory), train, std::move(parts), test, config, uplink)),
      engine_(std::make_unique<RoundEngine>(
          EngineConfig{config.n_clients, config.client_fraction, config.rounds,
                       config.eval_every, config.dropout_prob, config.seed,
                       "fedavg", config.faults, config.deadline, {},
                       config.async, config.checkpoint, config.crash},
          protocol_->protocol())) {
  // The engine's fault layer owns the per-client link-quality multipliers;
  // the transport scales channel error rates by them per delivery.
  protocol_->transport().set_error_scales(&engine_->faults().error_scales());
}

FedAvgTrainer::~FedAvgTrainer() = default;

TrainingHistory FedAvgTrainer::run() { return engine_->run(); }

RoundMetrics FedAvgTrainer::round(int round_index) {
  return engine_->round(round_index);
}

void FedAvgTrainer::checkpoint(const std::string& path) {
  engine_->checkpoint(path);
}

void FedAvgTrainer::resume(const std::string& path) { engine_->resume(path); }

double FedAvgTrainer::evaluate() { return protocol_->learner().evaluate(); }

nn::Module& FedAvgTrainer::global_model() {
  return protocol_->learner().global_model();
}

std::int64_t FedAvgTrainer::update_scalars() const {
  return protocol_->learner().state_scalars();
}

RoundProtocol& FedAvgTrainer::protocol() { return protocol_->protocol(); }

void FedAvgTrainer::set_round_driver(RoundDriver* driver) {
  engine_->set_round_driver(driver);
}

std::uint32_t FedAvgTrainer::config_fingerprint() const {
  return engine_->config_fingerprint();
}

}  // namespace fhdnn::fl
