#include "fl/fedavg.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace fhdnn::fl {

namespace {

constexpr std::int64_t kEvalBatch = 128;

}  // namespace

FedAvgTrainer::FedAvgTrainer(ModelFactory factory, const data::Dataset& train,
                             data::ClientIndices parts,
                             const data::Dataset& test, FedAvgConfig config,
                             const channel::Channel* uplink)
    : factory_(std::move(factory)),
      train_(train),
      parts_(std::move(parts)),
      test_(test),
      config_(config),
      uplink_(uplink),
      root_rng_(config.seed),
      sampler_(config.n_clients, config.client_fraction),
      test_batch_(test.all()) {
  FHDNN_CHECK(parts_.size() == config_.n_clients,
              "partition has " << parts_.size() << " clients, config says "
                               << config_.n_clients);
  FHDNN_CHECK(config_.rounds > 0 && config_.local_epochs > 0,
              "FedAvg config rounds/epochs");
  FHDNN_CHECK(config_.update_fraction > 0.0 && config_.update_fraction <= 1.0,
              "update_fraction " << config_.update_fraction);
  FHDNN_CHECK(config_.dropout_prob >= 0.0 && config_.dropout_prob < 1.0,
              "dropout_prob " << config_.dropout_prob);
  Rng init_rng = root_rng_.fork("init");
  global_ = factory_(init_rng);
  Rng worker_rng = root_rng_.fork("worker-init");
  worker_ = factory_(worker_rng);
  state_scalars_ = nn::state_size(*global_);
  FHDNN_CHECK(nn::state_size(*worker_) == state_scalars_,
              "factory produced mismatched architectures");
}

double FedAvgTrainer::evaluate() {
  global_->set_training(false);
  const std::int64_t n = test_batch_.x.dim(0);
  const std::int64_t per = test_batch_.x.numel() / n;
  std::size_t correct = 0;
  for (std::int64_t begin = 0; begin < n; begin += kEvalBatch) {
    const std::int64_t len = std::min(kEvalBatch, n - begin);
    Shape shape = test_batch_.x.shape();
    shape[0] = len;
    Tensor xb(shape);
    std::copy_n(
        test_batch_.x.data().begin() + static_cast<std::ptrdiff_t>(begin * per),
        len * per, xb.data().begin());
    const Tensor logits = global_->forward(xb);
    std::vector<std::int64_t> labels(
        test_batch_.labels.begin() + static_cast<std::ptrdiff_t>(begin),
        test_batch_.labels.begin() + static_cast<std::ptrdiff_t>(begin + len));
    correct += static_cast<std::size_t>(
        std::llround(nn::accuracy(logits, labels) * static_cast<double>(len)));
  }
  global_->set_training(true);
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::pair<std::vector<float>, double> FedAvgTrainer::local_update(
    std::size_t client, Rng& rng) {
  nn::copy_state(*global_, *worker_);
  worker_->set_training(true);
  nn::Sgd opt(*worker_, {config_.lr, config_.momentum, config_.weight_decay});
  nn::CrossEntropyLoss loss_fn;
  const auto& indices = parts_[client];
  FHDNN_CHECK(!indices.empty(), "client " << client << " has no data");
  double total_loss = 0.0;
  std::size_t batches = 0;
  for (int e = 0; e < config_.local_epochs; ++e) {
    data::BatchIterator it(indices.size(), config_.batch_size, rng);
    while (!it.done()) {
      const auto local_idx = it.next();
      std::vector<std::size_t> batch_idx;
      batch_idx.reserve(local_idx.size());
      for (const std::size_t i : local_idx) batch_idx.push_back(indices[i]);
      const auto batch = train_.gather(batch_idx);
      opt.zero_grad();
      const Tensor logits = worker_->forward(batch.x);
      total_loss += loss_fn.forward(logits, batch.labels);
      worker_->backward(loss_fn.backward());
      opt.step();
      ++batches;
    }
  }
  return {nn::get_state(*worker_),
          batches ? total_loss / static_cast<double>(batches) : 0.0};
}

RoundMetrics FedAvgTrainer::round(int round_index) {
  Rng round_rng = root_rng_.fork("round-" + std::to_string(round_index));
  Rng sample_rng = round_rng.fork("sample");
  const auto participants = sampler_.sample(sample_rng);

  RoundMetrics metrics;
  metrics.round = round_index;
  metrics.clients = participants.size();

  // Snapshot of the broadcast model; update-subsampling falls back to it.
  const std::vector<float> broadcast_state =
      config_.update_fraction < 1.0 ? nn::get_state(*global_)
                                    : std::vector<float>{};

  std::vector<float> aggregate(static_cast<std::size_t>(state_scalars_), 0.0F);
  double weight_total = 0.0;
  double loss_total = 0.0;
  std::size_t delivered = 0;
  Rng dropout_rng = round_rng.fork("dropout");
  for (const std::size_t client : participants) {
    if (config_.dropout_prob > 0.0 &&
        dropout_rng.bernoulli(config_.dropout_prob)) {
      continue;  // client trained but never delivered; nothing reaches the server
    }
    ++delivered;
    Rng client_rng = round_rng.fork("client-" + std::to_string(client));
    auto [state, loss] = local_update(client, client_rng);
    loss_total += loss;
    // Update-subsampling compression: untransmitted scalars fall back to
    // the broadcast global value at the server.
    if (config_.update_fraction < 1.0) {
      Rng mask_rng = client_rng.fork("mask");
      for (std::size_t i = 0; i < state.size(); ++i) {
        if (!mask_rng.bernoulli(config_.update_fraction)) {
          state[i] = broadcast_state[i];
        }
      }
      metrics.bytes_uplink += static_cast<std::uint64_t>(
          config_.update_fraction * static_cast<double>(state.size()) *
          sizeof(float));
    } else {
      metrics.bytes_uplink += state.size() * sizeof(float);
    }
    if (uplink_ != nullptr) {
      Rng chan_rng = client_rng.fork("channel");
      const auto stats = uplink_->apply(state, chan_rng);
      metrics.bits_on_air += stats.bits_on_air;
      metrics.bit_flips += stats.bit_flips;
      metrics.packets_lost += stats.packets_lost;
    } else {
      metrics.bits_on_air += state.size() * 32;
    }
    const double w = static_cast<double>(parts_[client].size());
    for (std::size_t i = 0; i < state.size(); ++i) {
      aggregate[i] += static_cast<float>(w) * state[i];
    }
    weight_total += w;
  }
  if (delivered > 0) {
    FHDNN_CHECK(weight_total > 0.0, "no data among participants");
    const float inv = static_cast<float>(1.0 / weight_total);
    for (auto& v : aggregate) v *= inv;
    nn::set_state(*global_, aggregate);
  }
  metrics.clients = delivered;

  metrics.train_loss =
      delivered ? loss_total / static_cast<double>(delivered) : 0.0;
  if (round_index % std::max(1, config_.eval_every) == 0 ||
      round_index == config_.rounds) {
    metrics.test_accuracy = evaluate();
  } else {
    metrics.test_accuracy =
        history_.empty() ? 0.0 : history_.rounds().back().test_accuracy;
  }
  return metrics;
}

TrainingHistory FedAvgTrainer::run() {
  for (int r = 1; r <= config_.rounds; ++r) {
    const RoundMetrics m = round(r);
    history_.add(m);
    log_debug() << "fedavg round " << r << " acc=" << m.test_accuracy
                << " loss=" << m.train_loss;
  }
  return history_;
}

}  // namespace fhdnn::fl
