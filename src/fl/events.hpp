// Discrete-event scheduling for federated rounds (DESIGN.md §12).
//
// The round engine models client behaviour in *simulated* seconds: a client
// finishes local training at one instant, its upload arrives at the server
// at a later one, and the server's deadline fires at a third. EventQueue is
// the single source of that ordering. It subsumes PR 3's FlTimeline-driven
// acceptance sort: instead of collecting (finish_time, slot) pairs and
// sorting once, the engine schedules kTrainDone / kUploadArrival /
// kDeadline events and pops them in simulated-time order, which is also
// the shape that buffered-async rounds and sparse-population availability
// windows need.
//
// Determinism contract: the pop order is the total order
//     (time, client, seq, kind, slot)
// and NEVER depends on insertion order or on which thread pushed an event.
// (client, seq) is the documented tie-break for simultaneous events —
// callers give each of a client's events within a round distinct seq
// numbers; kind/slot only break ties between pathological fully-identical
// keys so the comparator stays a strict total order. push() is guarded by
// a mutex so parallel workers may publish events concurrently; pop() is
// single-consumer (the engine's serial acceptance loop).
//
// The queue carries its own simulated clock: now() is the timestamp of the
// last popped event, and pushing an event earlier than now() throws —
// simulated time never runs backwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/snapshot.hpp"

namespace fhdnn::fl {

/// What happened at a simulated instant. The engine only acts on
/// kUploadArrival and kDeadline; kTrainDone events advance the clock and
/// make the trace auditable.
enum class EventKind : std::uint8_t {
  kTrainDone = 0,      ///< a client finished local compute
  kUploadArrival = 1,  ///< a client's update fully arrived at the server
  kDeadline = 2,       ///< the round's acceptance deadline fired
};

struct Event {
  double time = 0.0;        ///< simulated seconds
  std::size_t client = 0;   ///< client id (kDeadline uses SIZE_MAX)
  std::uint64_t seq = 0;    ///< per-client tie-break within a round
  EventKind kind = EventKind::kTrainDone;
  std::size_t slot = 0;     ///< engine slot / payload index
};

/// Strict total order: (time, client, seq, kind, slot) ascending. A
/// kDeadline event at client = SIZE_MAX therefore sorts *after* every
/// same-instant arrival — an upload landing exactly at the deadline is
/// accepted, matching the `<=` deadline rule of the pre-event engine.
constexpr bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.client != b.client) return a.client < b.client;
  if (a.seq != b.seq) return a.seq < b.seq;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.slot < b.slot;
}

/// Min-queue over Event under event_before. See the file header for the
/// determinism and clock contracts.
class EventQueue : public util::Snapshotable {
 public:
  EventQueue() = default;

  /// Schedule `e`. Thread-safe; the pop order is independent of push order
  /// and pushing thread. Throws if e.time is non-finite or before now().
  void push(const Event& e);

  /// Remove and return the next event in (time, client, seq, kind, slot)
  /// order, advancing now(). Throws when empty. Single-consumer.
  Event pop();

  bool empty() const;
  std::size_t size() const;

  /// Simulated timestamp of the last popped event (0 before the first pop,
  /// after clear(), or on a fresh queue). Monotone non-decreasing.
  double now() const { return now_; }

  /// Events popped since construction / the last clear().
  std::uint64_t processed() const { return processed_; }

  /// Drop all pending events and rewind now() to `start` (a new round may
  /// legitimately restart the clock at the campaign time).
  void clear(double start = 0.0);

  /// Snapshot the pending events plus the clock and processed counter.
  /// Events are written in event_before order — the *canonical* form, so
  /// snapshot -> restore -> snapshot is byte-identical even though the
  /// in-memory heap layout depends on push order.
  void save(util::SnapshotWriter& w) const override;

  /// Restore a snapshot, rebuilding the heap. Bypasses push()'s
  /// time >= now() guard: pending events are naturally at or after the
  /// snapshotted clock, which save() captured *after* the last pop.
  void load(util::SnapshotReader& r) override;

 private:
  // Binary min-heap under event_before; push locks, pop does not (the
  // consumer is serial by contract).
  std::vector<Event> heap_;
  mutable std::mutex mutex_;
  double now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace fhdnn::fl
