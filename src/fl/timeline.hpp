// Wall-clock simulation of a federated campaign (§4.4's "actual clock time
// of training", as a round-by-round simulation instead of one closed-form
// product).
//
// Each synchronous round costs the server the time of its *slowest*
// participant: local compute (edge-device cost model, with per-client
// heterogeneity jitter) followed by the uplink transfer (LTE link model,
// including the 1/N shared-medium factor). Combined with a TrainingHistory
// this turns rounds-to-accuracy into seconds-to-accuracy — the quantity the
// paper's 1.1 h vs 374.3 h comparison is about.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.hpp"
#include "channel/lte.hpp"
#include "fl/history.hpp"
#include "perf/device_model.hpp"
#include "util/rng.hpp"

namespace fhdnn::fl {

struct TimelineConfig {
  perf::DeviceProfile device = perf::DeviceProfile::raspberry_pi_3b();
  channel::LteLinkModel link;       ///< set link.shared_clients for TDD share
  perf::ClientWorkload workload;    ///< one round of local training
  std::uint64_t update_bits = 0;    ///< uplink payload per client per round
  bool fhdnn = true;                ///< selects compute model & link rate:
                                    ///< FHDnn = forward-only + uncoded link,
                                    ///< CNN = backprop + coded (reliable) link
  double compute_jitter = 0.2;      ///< per-client uniform +-jitter fraction
};

struct RoundTime {
  double compute_seconds = 0;  ///< slowest participant's local training
  double upload_seconds = 0;   ///< slowest participant's uplink transfer
  double total_seconds = 0;
};

class FlTimeline {
 public:
  explicit FlTimeline(TimelineConfig config);

  /// Simulate `rounds` rounds with `participants` clients each; jitter is
  /// drawn per participant per round from `rng`.
  std::vector<RoundTime> simulate(int rounds, std::size_t participants,
                                  Rng& rng) const;

  /// Sum of total_seconds.
  static double campaign_seconds(const std::vector<RoundTime>& rounds);

  /// Seconds until `history` reaches `target` accuracy, pairing round i of
  /// the history with round i of the simulated timeline. Returns a negative
  /// value if the target is never reached.
  double seconds_to_accuracy(const TrainingHistory& history, double target,
                             const std::vector<RoundTime>& rounds) const;

  /// Nominal (jitter-free, healthy-client, retransmission-free) duration of
  /// one round: base local compute + one configured-size upload. The
  /// deadline of a deadline-based round derives from this.
  double nominal_round_seconds() const;

  /// Simulated duration of one client's round from its *measured* delivery:
  /// base compute x slowdown x jitter, plus the LTE upload of the bits the
  /// transport actually put on the air (retransmissions included — when
  /// stats comes from an ARQ channel, every retransmitted frame lengthens
  /// the upload), plus the ARQ backoff/ACK wait the delivery accumulated.
  double client_round_seconds(const channel::TransportStats& stats,
                              double slowdown, double jitter_factor) const;

  /// The local-compute leg of a client's round in isolation — the instant
  /// of its kTrainDone event: base compute x slowdown x jitter. Same
  /// expression (and FP evaluation order) as the compute term inside
  /// client_round_seconds.
  double client_compute_seconds(double slowdown, double jitter_factor) const;

  /// The uplink leg in isolation: LTE upload of the measured on-air bits,
  /// stretched by a per-client link-quality factor (>= 1; sparse
  /// population profiles), plus the delivery's accumulated ARQ backoff.
  double client_upload_seconds(const channel::TransportStats& stats,
                               double link_factor = 1.0) const;

  const TimelineConfig& config() const { return config_; }

 private:
  TimelineConfig config_;
  double base_compute_seconds_ = 0.0;
};

}  // namespace fhdnn::fl
