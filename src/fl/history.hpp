// Per-round metrics of a federated training run.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/snapshot.hpp"

namespace fhdnn::fl {

struct RoundMetrics {
  std::int64_t round = 0;           ///< 1-based round index
  double test_accuracy = 0.0;       ///< global model on the held-out set
  double train_loss = 0.0;          ///< mean local loss (CNN) or error rate (HD)
  std::size_t clients = 0;          ///< participants *accepted* this round
  std::size_t sampled = 0;          ///< participants drawn by the sampler
  std::size_t dropped = 0;          ///< sampled but failed to deliver
  /// Delivered on the air but not folded in this round: rejected by the
  /// round deadline (deadline rounds), or arrived after the Kth
  /// acceptance and buffered for a later round (buffered-async rounds).
  /// Invariant — enforced by an FHDNN_CHECKED assertion at round commit:
  /// clients + dropped + timed_out == sampled.
  std::size_t timed_out = 0;
  /// Buffered-async rounds only: late updates from *earlier* rounds
  /// applied this round with a staleness weight (FedBuff-style). Not part
  /// of the sampled-count invariant — their arrival round already
  /// accounted them as timed_out.
  std::size_t stale_accepted = 0;
  std::uint64_t bytes_uplink = 0;   ///< total client->server payload bytes
  std::uint64_t bits_on_air = 0;    ///< channel-level bits transmitted
  std::uint64_t bit_flips = 0;      ///< corruption events (BSC)
  std::uint64_t packets_lost = 0;   ///< corruption events (packet channel)
  std::uint64_t retransmissions = 0;  ///< ARQ frames retransmitted
  std::uint64_t residual_errors = 0;  ///< ARQ frames delivered corrupted
  /// Simulated duration of the round under the deadline model (device
  /// compute + LTE upload + ARQ backoff); 0 when deadline rounds are off.
  double simulated_round_seconds = 0.0;
  /// Discrete events processed by the round's event queue (train-done,
  /// upload-arrival, deadline); 0 when the engine ran without a timeline.
  std::uint64_t events = 0;
  /// Engine-measured wall-clock time of the round (local training +
  /// transport + reduction + evaluation). The one RoundMetrics field that
  /// is *not* covered by the bit-identical determinism contract.
  double wall_seconds = 0.0;
};

class TrainingHistory : public util::Snapshotable {
 public:
  void add(RoundMetrics m) { rounds_.push_back(m); }
  const std::vector<RoundMetrics>& rounds() const { return rounds_; }
  bool empty() const { return rounds_.empty(); }
  std::size_t size() const { return rounds_.size(); }

  /// Final-round accuracy (0 if no rounds ran).
  double final_accuracy() const;

  /// Best accuracy seen over all rounds.
  double best_accuracy() const;

  /// First (1-based) round whose accuracy reached `target`, if any.
  std::optional<std::int64_t> rounds_to_accuracy(double target) const;

  /// Total uplink traffic across all rounds, bytes.
  std::uint64_t total_uplink_bytes() const;

  /// Total engine-measured wall-clock seconds across all rounds.
  double total_wall_seconds() const;

  /// Total participants sampled / dropped / deadline-rejected across all
  /// rounds.
  std::size_t total_sampled() const;
  std::size_t total_dropped() const;
  std::size_t total_timed_out() const;

  /// Total channel-level traffic and ARQ reliability cost across all rounds.
  std::uint64_t total_bits_on_air() const;
  std::uint64_t total_retransmissions() const;
  std::uint64_t total_residual_errors() const;

  /// Total simulated campaign time under the deadline model, seconds.
  double total_simulated_seconds() const;

  /// Total discrete events processed across all rounds.
  std::uint64_t total_events() const;

  /// Snapshot every RoundMetrics field bit-exactly (doubles as raw IEEE
  /// bits, wall_seconds included — it is state, just not golden-compared).
  void save(util::SnapshotWriter& w) const override;
  void load(util::SnapshotReader& r) override;

 private:
  std::vector<RoundMetrics> rounds_;
};

}  // namespace fhdnn::fl
