// Per-round metrics of a federated training run.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace fhdnn::fl {

struct RoundMetrics {
  std::int64_t round = 0;           ///< 1-based round index
  double test_accuracy = 0.0;       ///< global model on the held-out set
  double train_loss = 0.0;          ///< mean local loss (CNN) or error rate (HD)
  std::size_t clients = 0;          ///< participants this round
  std::uint64_t bytes_uplink = 0;   ///< total client->server payload bytes
  std::uint64_t bits_on_air = 0;    ///< channel-level bits transmitted
  std::uint64_t bit_flips = 0;      ///< corruption events (BSC)
  std::uint64_t packets_lost = 0;   ///< corruption events (packet channel)
};

class TrainingHistory {
 public:
  void add(RoundMetrics m) { rounds_.push_back(m); }
  const std::vector<RoundMetrics>& rounds() const { return rounds_; }
  bool empty() const { return rounds_.empty(); }
  std::size_t size() const { return rounds_.size(); }

  /// Final-round accuracy (0 if no rounds ran).
  double final_accuracy() const;

  /// Best accuracy seen over all rounds.
  double best_accuracy() const;

  /// First (1-based) round whose accuracy reached `target`, if any.
  std::optional<std::int64_t> rounds_to_accuracy(double target) const;

  /// Total uplink traffic across all rounds, bytes.
  std::uint64_t total_uplink_bytes() const;

 private:
  std::vector<RoundMetrics> rounds_;
};

}  // namespace fhdnn::fl
