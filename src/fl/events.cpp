#include "fl/events.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::fl {

namespace {

// std::push_heap/pop_heap build a max-heap under the supplied comparator;
// inverting event_before turns it into a min-heap on the total order.
bool heap_after(const Event& a, const Event& b) { return event_before(b, a); }

}  // namespace

void EventQueue::push(const Event& e) {
  FHDNN_CHECK(std::isfinite(e.time), "EventQueue::push: non-finite event time");
  std::lock_guard<std::mutex> lock(mutex_);
  FHDNN_CHECK(e.time >= now_, "EventQueue::push: event scheduled before now()");
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

Event EventQueue::pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  FHDNN_CHECK(!heap_.empty(), "EventQueue::pop: queue is empty");
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  Event e = heap_.back();
  heap_.pop_back();
  now_ = e.time;
  ++processed_;
  return e;
}

bool EventQueue::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.empty();
}

std::size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

void EventQueue::clear(double start) {
  FHDNN_CHECK(std::isfinite(start), "EventQueue::clear: non-finite start time");
  std::lock_guard<std::mutex> lock(mutex_);
  heap_.clear();
  now_ = start;
  processed_ = 0;
}

}  // namespace fhdnn::fl
