#include "fl/events.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::fl {

namespace {

// std::push_heap/pop_heap build a max-heap under the supplied comparator;
// inverting event_before turns it into a min-heap on the total order.
bool heap_after(const Event& a, const Event& b) { return event_before(b, a); }

}  // namespace

void EventQueue::push(const Event& e) {
  FHDNN_CHECK(std::isfinite(e.time), "EventQueue::push: non-finite event time");
  std::lock_guard<std::mutex> lock(mutex_);
  FHDNN_CHECK(e.time >= now_, "EventQueue::push: event scheduled before now()");
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
}

Event EventQueue::pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  FHDNN_CHECK(!heap_.empty(), "EventQueue::pop: queue is empty");
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  Event e = heap_.back();
  heap_.pop_back();
  now_ = e.time;
  ++processed_;
  return e;
}

bool EventQueue::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.empty();
}

std::size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

void EventQueue::clear(double start) {
  FHDNN_CHECK(std::isfinite(start), "EventQueue::clear: non-finite start time");
  std::lock_guard<std::mutex> lock(mutex_);
  heap_.clear();
  now_ = start;
  processed_ = 0;
}

void EventQueue::save(util::SnapshotWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(), event_before);
  w.write_u64(sorted.size());
  for (const Event& e : sorted) {
    w.write_f64(e.time);
    w.write_u64(static_cast<std::uint64_t>(e.client));
    w.write_u64(e.seq);
    w.write_u8(static_cast<std::uint8_t>(e.kind));
    w.write_u64(static_cast<std::uint64_t>(e.slot));
  }
  w.write_f64(now_);
  w.write_u64(processed_);
}

void EventQueue::load(util::SnapshotReader& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto n = static_cast<std::size_t>(r.read_u64());
  heap_.clear();
  heap_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.time = r.read_f64();
    e.client = static_cast<std::size_t>(r.read_u64());
    e.seq = r.read_u64();
    e.kind = static_cast<EventKind>(r.read_u8());
    e.slot = static_cast<std::size_t>(r.read_u64());
    FHDNN_CHECK(std::isfinite(e.time),
                "EventQueue::load: non-finite event time");
    heap_.push_back(e);
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
  now_ = r.read_f64();
  processed_ = r.read_u64();
}

}  // namespace fhdnn::fl
