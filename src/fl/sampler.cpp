#include "fl/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fhdnn::fl {

ClientSampler::ClientSampler(std::size_t n_clients, double fraction)
    : n_clients_(n_clients) {
  FHDNN_CHECK(n_clients > 0, "sampler needs clients");
  FHDNN_CHECK(fraction > 0.0 && fraction <= 1.0, "client fraction " << fraction);
  per_round_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(fraction * static_cast<double>(n_clients))));
  per_round_ = std::min(per_round_, n_clients_);
}

std::vector<std::size_t> ClientSampler::sample(Rng& rng) const {
  return sample(rng, per_round_);
}

std::vector<std::size_t> ClientSampler::sample(Rng& rng, std::size_t k) const {
  // k == 0 is a legitimate empty draw (e.g. an empty round), not a
  // request for "at least one client" — clamping it up would silently run
  // a participant nobody asked for.
  if (k == 0) return {};
  k = std::min(k, n_clients_);
  auto picks = rng.sample_without_replacement(n_clients_, k);
  std::sort(picks.begin(), picks.end());
  return picks;
}

std::vector<char> draw_delivery_flags(std::size_t n_participants,
                                      double dropout_prob, Rng& rng) {
  std::vector<char> flags(n_participants, 1);
  if (dropout_prob > 0.0) {
    for (auto& flag : flags) {
      if (rng.bernoulli(dropout_prob)) flag = 0;
    }
  }
  return flags;
}

}  // namespace fhdnn::fl
