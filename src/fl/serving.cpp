#include "fl/serving.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/workspace.hpp"

namespace fhdnn::fl {
namespace {

/// Serialize the full protocol state as a snapshot image (PROT chunk) — the
/// broadcast blob every worker reconstructs the round from.
std::vector<std::uint8_t> encode_state(RoundProtocol& protocol) {
  util::SnapshotWriter w;
  w.begin_chunk("PROT");
  protocol.save_state(w);
  w.end_chunk();
  return w.finish();
}

/// Validate + load a state blob produced by encode_state.
void decode_state(RoundProtocol& protocol, std::vector<std::uint8_t> blob) {
  util::SnapshotReader r =
      util::SnapshotReader::from_bytes(std::move(blob), "wire:state");
  r.enter_chunk("PROT");
  protocol.load_state(r);
  r.leave_chunk();
  r.enter_chunk("END ");
  r.leave_chunk();
}

}  // namespace

// ---------------------------------------------------------------------------
// ServerRoundDriver

ServerRoundDriver::ServerRoundDriver(std::uint32_t fingerprint,
                                     std::string protocol_name,
                                     ServingConfig config)
    : fingerprint_(fingerprint),
      protocol_name_(std::move(protocol_name)),
      config_(config) {}

std::uint64_t ServerRoundDriver::add_worker(
    std::unique_ptr<net::Connection> conn) {
  FHDNN_CHECK(conn != nullptr, "add_worker: null connection");
  Worker w;
  w.conn = std::move(conn);
  w.chan = std::make_unique<net::MessageChannel>(*w.conn);

  const wire::Frame frame = w.chan->recv(config_.handshake_timeout_ms);
  const wire::HelloMsg hello = wire::HelloMsg::from_frame(frame);
  if (hello.config_fingerprint != fingerprint_) {
    throw net::NetError("hello from " + w.conn->describe() +
                        " carries config fingerprint " +
                        std::to_string(hello.config_fingerprint) +
                        ", server expects " + std::to_string(fingerprint_));
  }
  if (hello.protocol != protocol_name_) {
    throw net::NetError("hello from " + w.conn->describe() + " speaks \"" +
                        hello.protocol + "\", server runs \"" +
                        protocol_name_ + "\"");
  }

  w.id = next_worker_id_++;
  wire::HelloAckMsg ack;
  ack.config_fingerprint = fingerprint_;
  ack.worker_id = w.id;
  w.chan->send(ack.to_frame());
  int waited_ms = 0;
  while (!w.chan->flush() && waited_ms < config_.handshake_timeout_ms) {
    w.conn->wait_readable(config_.poll_slice_ms);
    waited_ms += config_.poll_slice_ms;
  }

  if (w.conn->fd() >= 0) {
    reactor_.add(w.conn->fd(), w.id, /*want_read=*/true, /*want_write=*/false);
  } else {
    reactor_usable_ = false;  // loopback: fall back to wait_readable slices
  }
  const std::uint64_t id = w.id;
  log_info("fhdnnd") << "worker " << id << " connected ("
                     << w.conn->describe() << ")";
  workers_.push_back(std::move(w));
  return id;
}

void ServerRoundDriver::wait_any(int slice_ms) {
  if (reactor_usable_ && reactor_.watched() > 0) {
    reactor_.wait(slice_ms);
    return;
  }
  // Loopback / mixed transports: round-robin a short wait over the workers
  // so one quiet connection cannot starve the others' readiness.
  if (workers_.empty()) return;
  const int per = slice_ms / static_cast<int>(workers_.size());
  for (Worker& w : workers_) {
    if (w.chan->connection().wait_readable(per > 1 ? per : 1)) return;
  }
}

void ServerRoundDriver::drive(RoundProtocol& protocol, const Rng& round_rng,
                              int round_index,
                              const std::vector<std::size_t>& participants,
                              const std::vector<char>& delivered,
                              const std::vector<char>& awake,
                              std::vector<ClientReport>& reports) {
  (void)awake;  // delivery flags already fold availability in
  FHDNN_CHECK(!workers_.empty(), "ServerRoundDriver has no workers");
  const std::size_t n = participants.size();
  const std::size_t n_workers = workers_.size();

  // Deal the delivered slots over workers round-robin in slot order —
  // deterministic, so the same run assigns the same work regardless of
  // connection arrival order (worker ids are assigned in add_worker order).
  std::vector<std::vector<wire::SlotAssignment>> deal(n_workers);
  std::size_t expected = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!delivered[slot]) continue;
    deal[expected % n_workers].push_back(
        wire::SlotAssignment{slot, participants[slot]});
    ++expected;
  }

  // One RoundAssign per worker — zero-slot workers included, so every
  // worker observes every round and stays in lockstep with the server.
  const std::vector<std::uint8_t> state_blob = encode_state(protocol);
  for (std::size_t wi = 0; wi < n_workers; ++wi) {
    wire::RoundAssignMsg assign;
    assign.round_index = round_index;
    assign.n_participants = n;
    assign.rng = round_rng.state();
    assign.slots = deal[wi];
    assign.state_blob = state_blob;
    workers_[wi].chan->send(assign.to_frame());
    workers_[wi].owed = deal[wi].size();
  }

  // Collect until every delivered slot reported. Updates install into the
  // protocol's per-slot buffer — arrival order cannot matter because the
  // engine's reduction consumes slots serially in slot order afterwards.
  std::vector<char> got(n, 0);
  std::size_t received = 0;
  int waited_ms = 0;
  while (received < expected) {
    bool progress = false;
    for (Worker& w : workers_) {
      if (w.chan->tx_pending() > 0 && w.chan->flush()) progress = true;
      for (;;) {
        std::optional<wire::Frame> frame = w.chan->poll();
        if (!frame) break;
        progress = true;
        wire::UpdateMsg u = wire::UpdateMsg::from_frame(*frame);
        if (u.round_index != round_index) {
          throw net::NetError("worker " + std::to_string(w.id) +
                              " sent an update for round " +
                              std::to_string(u.round_index) + " during round " +
                              std::to_string(round_index));
        }
        if (u.slot >= n || !delivered[u.slot]) {
          throw net::NetError("worker " + std::to_string(w.id) +
                              " sent an update for slot " +
                              std::to_string(u.slot) +
                              ", which is not a delivered slot");
        }
        if (got[u.slot]) {
          throw net::NetError("worker " + std::to_string(w.id) +
                              " sent a duplicate update for slot " +
                              std::to_string(u.slot));
        }
        if (u.client != participants[u.slot]) {
          throw net::NetError("worker " + std::to_string(w.id) +
                              " attributed slot " + std::to_string(u.slot) +
                              " to client " + std::to_string(u.client) +
                              " instead of " +
                              std::to_string(participants[u.slot]));
        }
        util::SnapshotReader r = util::SnapshotReader::from_bytes(
            std::move(u.update_blob),
            "wire:update slot " + std::to_string(u.slot));
        r.enter_chunk("UPDT");
        protocol.load_update(static_cast<std::size_t>(u.slot), r);
        r.leave_chunk();
        r.enter_chunk("END ");
        r.leave_chunk();
        reports[u.slot].loss = u.loss;
        reports[u.slot].stats = u.stats;
        got[u.slot] = 1;
        if (w.owed > 0) --w.owed;
        ++received;
      }
      if (w.conn->peer_closed() && w.owed > 0) {
        throw net::NetError("worker " + std::to_string(w.id) +
                            " disconnected with " + std::to_string(w.owed) +
                            " updates outstanding");
      }
    }
    if (progress) {
      waited_ms = 0;
      continue;
    }
    if (waited_ms >= config_.round_timeout_ms) {
      throw net::NetError("round " + std::to_string(round_index) +
                          " collection timed out with " +
                          std::to_string(expected - received) + " of " +
                          std::to_string(expected) + " updates outstanding");
    }
    wait_any(config_.poll_slice_ms);
    waited_ms += config_.poll_slice_ms;
  }
  log_debug("fhdnnd") << "round " << round_index << ": collected " << received
                      << " updates from " << n_workers << " workers";
}

void ServerRoundDriver::round_committed(const RoundMetrics& metrics) {
  wire::RoundDoneMsg done;
  done.round_index = metrics.round;
  done.accepted = metrics.clients;
  done.bytes_uplink = metrics.bytes_uplink;
  done.test_accuracy = metrics.test_accuracy;
  const wire::Frame frame = done.to_frame();
  for (Worker& w : workers_) {
    if (w.conn->peer_closed()) continue;
    w.chan->send(frame);
  }
}

void ServerRoundDriver::shutdown(std::int64_t rounds_completed) {
  wire::ShutdownMsg msg;
  msg.rounds_completed = rounds_completed;
  const wire::Frame frame = msg.to_frame();
  for (Worker& w : workers_) {
    if (w.conn->peer_closed()) continue;
    try {
      w.chan->send(frame);
      int waited_ms = 0;
      while (!w.chan->flush() && waited_ms < config_.handshake_timeout_ms) {
        w.conn->wait_readable(config_.poll_slice_ms);
        waited_ms += config_.poll_slice_ms;
      }
    } catch (const net::NetError&) {
      // A worker gone at shutdown is not an error; the round data is safe.
    }
    w.conn->close();
  }
}

std::uint64_t ServerRoundDriver::wire_bytes_sent() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers_) total += w.chan->bytes_sent();
  return total;
}

std::uint64_t ServerRoundDriver::wire_bytes_received() const {
  std::uint64_t total = 0;
  for (const Worker& w : workers_) total += w.chan->bytes_received();
  return total;
}

// ---------------------------------------------------------------------------
// WorkerLoop

WorkerLoop::WorkerLoop(net::Connection& conn, RoundProtocol& protocol,
                       std::uint32_t fingerprint, std::string protocol_name,
                       ServingConfig config)
    : chan_(conn),
      protocol_(protocol),
      fingerprint_(fingerprint),
      protocol_name_(std::move(protocol_name)),
      config_(config) {}

void WorkerLoop::handshake() {
  wire::HelloMsg hello;
  hello.config_fingerprint = fingerprint_;
  hello.protocol = protocol_name_;
  hello.capabilities = 0;
  chan_.send(hello.to_frame());
  const wire::Frame frame = chan_.recv(config_.handshake_timeout_ms);
  const wire::HelloAckMsg ack = wire::HelloAckMsg::from_frame(frame);
  if (ack.config_fingerprint != fingerprint_) {
    throw net::NetError("server acknowledged fingerprint " +
                        std::to_string(ack.config_fingerprint) +
                        ", worker has " + std::to_string(fingerprint_));
  }
  worker_id_ = ack.worker_id;
  log_debug("worker-" + std::to_string(worker_id_)) << "handshake complete";
}

bool WorkerLoop::serve() {
  for (;;) {
    wire::Frame frame;
    if (parked_next_ < parked_.size()) {
      frame = std::move(parked_[parked_next_++]);
      if (parked_next_ == parked_.size()) {
        parked_.clear();
        parked_next_ = 0;
      }
    } else {
      try {
        frame = chan_.recv(config_.round_timeout_ms);
      } catch (const net::NetError&) {
        if (chan_.connection().peer_closed()) return false;  // server gone
        throw;
      }
    }
    switch (frame.type) {
      case wire::MsgType::kRoundAssign:
        try {
          serve_round(wire::RoundAssignMsg::from_frame(frame));
        } catch (const net::NetError&) {
          // A server that dies mid-round (kill -9 under test) surfaces
          // here as a send/flush failure; report "connection lost" so the
          // caller reconnects to the restarted server. The round we were
          // serving is re-driven from its checkpoint — nothing to salvage.
          if (chan_.connection().peer_closed()) return false;
          throw;
        }
        break;
      case wire::MsgType::kRoundDone: {
        const auto done = wire::RoundDoneMsg::from_frame(frame);
        log_debug("worker-" + std::to_string(worker_id_))
            << "round " << done.round_index << " committed: accepted "
            << done.accepted << ", acc " << done.test_accuracy;
        break;
      }
      case wire::MsgType::kShutdown:
        shutdown_rounds_ = wire::ShutdownMsg::from_frame(frame).rounds_completed;
        return true;
      default:
        throw wire::WireError(wire::WireErrorKind::kSchema, 0,
                              "unexpected message type " +
                                  std::to_string(static_cast<int>(frame.type)) +
                                  " while serving");
    }
  }
}

void WorkerLoop::serve_round(const wire::RoundAssignMsg& assign) {
  // Reconstruct the server's round context: protocol state, then the round
  // stream at its prologue state — from here every named fork (downlink,
  // client-<id>, channel-<id>, mask) replays exactly as in process.
  Rng round_rng;
  round_rng.set_state(assign.rng);
  decode_state(protocol_, assign.state_blob);
  const auto n = static_cast<std::size_t>(assign.n_participants);
  protocol_.begin_round(round_rng, n);

  // Train assigned slots client-parallel, same schedule contract as
  // LocalRoundDriver (arena reset per batch, scope-leak check per client).
  const std::size_t k = assign.slots.size();
  std::vector<ClientReport> local(k);
  parallel::parallel_for(
      0, static_cast<std::int64_t>(k), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        util::tls_workspace().reset();
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          const wire::SlotAssignment& a = assign.slots[idx];
          local[idx] = protocol_.run_client(
              static_cast<std::size_t>(a.slot),
              static_cast<std::size_t>(a.client), round_rng,
              /*delivered=*/true);
          FHDNN_CHECKED_ASSERT(
              util::tls_workspace().scope_depth() == 0,
              "workspace Scope leaked across client " << a.client
                                                      << " boundary");
        }
      });

  // Ship every slot's retained update back, serially in assignment order.
  for (std::size_t i = 0; i < k; ++i) {
    const wire::SlotAssignment& a = assign.slots[i];
    util::SnapshotWriter w;
    w.begin_chunk("UPDT");
    protocol_.save_update(static_cast<std::size_t>(a.slot), w);
    w.end_chunk();
    wire::UpdateMsg u;
    u.round_index = assign.round_index;
    u.slot = a.slot;
    u.client = a.client;
    u.loss = local[i].loss;
    u.stats = local[i].stats;
    u.update_blob = w.finish();
    chan_.send(u.to_frame());
  }
  flush_blocking();
  ++rounds_served_;
}

void WorkerLoop::flush_blocking() {
  int waited_ms = 0;
  while (!chan_.flush()) {
    // The server may interleave its own frames (e.g. the previous round's
    // RoundDone) while we drain; park them for serve() instead of losing
    // them or spinning on a readable-but-irrelevant connection.
    if (std::optional<wire::Frame> f = chan_.poll()) {
      parked_.push_back(std::move(*f));
      continue;
    }
    if (chan_.connection().peer_closed()) {
      throw net::NetError("server closed while updates were queued");
    }
    if (waited_ms >= config_.round_timeout_ms) {
      throw net::NetError("flushing updates timed out");
    }
    chan_.connection().wait_readable(1);
    waited_ms += 1;
  }
}

}  // namespace fhdnn::fl
