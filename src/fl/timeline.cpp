#include "fl/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fhdnn::fl {

FlTimeline::FlTimeline(TimelineConfig config) : config_(config) {
  FHDNN_CHECK(config_.update_bits > 0, "timeline needs update_bits");
  FHDNN_CHECK(config_.compute_jitter >= 0.0 && config_.compute_jitter < 1.0,
              "compute_jitter " << config_.compute_jitter);
  const perf::CostEstimate base =
      config_.fhdnn ? perf::fhdnn_local_training(config_.device,
                                                 config_.workload)
                    : perf::cnn_local_training(config_.device,
                                               config_.workload);
  base_compute_seconds_ = base.seconds;
}

std::vector<RoundTime> FlTimeline::simulate(int rounds,
                                            std::size_t participants,
                                            Rng& rng) const {
  FHDNN_CHECK(rounds > 0 && participants > 0, "timeline rounds/participants");
  const double upload =
      config_.link.upload_seconds(config_.update_bits, config_.fhdnn);
  std::vector<RoundTime> out;
  out.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    double worst_compute = 0.0;
    for (std::size_t p = 0; p < participants; ++p) {
      const double jitter =
          1.0 + rng.uniform(-config_.compute_jitter, config_.compute_jitter);
      worst_compute = std::max(worst_compute, base_compute_seconds_ * jitter);
    }
    RoundTime rt;
    rt.compute_seconds = worst_compute;
    // Participants share the medium (already folded into the link model via
    // shared_clients); uploads are serialized within the frame structure,
    // so the round's upload phase lasts one shared-medium transfer.
    rt.upload_seconds = upload;
    rt.total_seconds = rt.compute_seconds + rt.upload_seconds;
    out.push_back(rt);
  }
  return out;
}

double FlTimeline::campaign_seconds(const std::vector<RoundTime>& rounds) {
  double s = 0.0;
  for (const auto& r : rounds) s += r.total_seconds;
  return s;
}

double FlTimeline::seconds_to_accuracy(
    const TrainingHistory& history, double target,
    const std::vector<RoundTime>& rounds) const {
  FHDNN_CHECK(rounds.size() >= history.size(),
              "timeline shorter than history (" << rounds.size() << " < "
                                                << history.size() << ")");
  double elapsed = 0.0;
  for (std::size_t i = 0; i < history.size(); ++i) {
    elapsed += rounds[i].total_seconds;
    if (history.rounds()[i].test_accuracy >= target) return elapsed;
  }
  return -1.0;
}

double FlTimeline::nominal_round_seconds() const {
  return base_compute_seconds_ +
         config_.link.upload_seconds(config_.update_bits, config_.fhdnn);
}

double FlTimeline::client_round_seconds(const channel::TransportStats& stats,
                                        double slowdown,
                                        double jitter_factor) const {
  const double compute = client_compute_seconds(slowdown, jitter_factor);
  const double upload =
      stats.bits_on_air > 0
          ? config_.link.upload_seconds(stats.bits_on_air, config_.fhdnn)
          : 0.0;
  return compute + upload + stats.backoff_seconds;
}

double FlTimeline::client_compute_seconds(double slowdown,
                                          double jitter_factor) const {
  FHDNN_CHECK(slowdown >= 1.0, "client slowdown " << slowdown);
  FHDNN_CHECK(jitter_factor > 0.0, "client jitter factor " << jitter_factor);
  return base_compute_seconds_ * slowdown * jitter_factor;
}

double FlTimeline::client_upload_seconds(const channel::TransportStats& stats,
                                         double link_factor) const {
  FHDNN_CHECK(link_factor >= 1.0, "client link factor " << link_factor);
  const double upload =
      stats.bits_on_air > 0
          ? config_.link.upload_seconds(stats.bits_on_air, config_.fhdnn)
          : 0.0;
  return upload * link_factor + stats.backoff_seconds;
}

}  // namespace fhdnn::fl
