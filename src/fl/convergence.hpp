// Convergence diagnostics for the paper's §3.6 claim.
//
// The paper argues FHDnn's federated objective is L-smooth and strongly
// convex, so training converges to the optimum at rate O(1/T), unlike the
// non-convex CNN. These helpers quantify that empirically: record a decay
// series (training error rate, or distance of the per-round global model to
// the final model) and fit a power law  y_t ~ C / t^p  by least squares in
// log-log space. p >= ~1 is consistent with the O(1/T) claim; the CNN
// baseline typically fits a smaller, noisier exponent.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace fhdnn::fl {

struct PowerLawFit {
  double exponent = 0.0;   ///< p in y ~ C / t^p (positive = decaying)
  double log_c = 0.0;      ///< log C
  double r_squared = 0.0;  ///< goodness of the log-log linear fit
  std::size_t points = 0;  ///< samples used (zeros are skipped)
};

/// Fit y_t ~ C / t^p over t = 1..n (values[t-1] = y_t). Non-positive values
/// are skipped (log undefined); requires at least 3 usable points.
PowerLawFit fit_power_law(std::span<const double> values);

/// Records model snapshots along a training run and measures each round's
/// distance to the final model — the standard convergence trajectory.
class ModelTrajectory {
 public:
  /// Append the global model after a round.
  void record(const Tensor& model);

  std::size_t size() const { return snapshots_.size(); }

  /// ||model_t - model_final||_2 for t = 1..n-1 (excludes the final point,
  /// whose distance is trivially 0). Requires >= 2 snapshots.
  std::vector<double> distances_to_final() const;

  /// Power-law fit of the distance decay.
  PowerLawFit fit() const;

 private:
  std::vector<Tensor> snapshots_;
};

}  // namespace fhdnn::fl
