// Sparse million-client population model (DESIGN.md §12).
//
// FHDnn targets AIoT fleets where *millions* of devices are registered
// with the aggregation service but only a few thousand participate in any
// round. Materializing per-client state for the whole fleet (as
// FaultModel's dense trait tables do) caps simulations at hundreds of
// clients. ClientPopulation instead stores O(1) state — a config and one
// forked Rng — and derives every client's profile as a *pure function* of
// (seed, client_id) via `Rng::fork("client-<id>")`. Two calls to
// profile(c) always agree, profiles never depend on query order, and peak
// memory is independent of the registered-population size; only the
// sampled clients of the current round ever hold model state or datasets.
//
// A profile captures the heterogeneity axes the paper's AIoT setting
// cares about:
//   * availability — devices duty-cycle (battery, connectivity, user
//     activity). Each client is awake for a fraction `duty` of its
//     personal period, with a random phase; available_at(c, t) is a pure
//     predicate on simulated time. Duty factors are drawn so the
//     *population mean* equals `mean_availability` (see population.cpp).
//   * compute — stragglers (discrete slowdown tier) plus a continuous
//     per-client compute-speed spread, multiplying local-train seconds.
//   * link quality — a per-client uplink multiplier >= 1 stretching
//     upload seconds (poor RF, congested cells).
//
// Sampling draws k distinct ids from [0, n_registered) in O(k) memory via
// rejection (Rng::sample_without_replacement builds an O(n) index vector,
// which is exactly what this type exists to avoid).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace fhdnn::fl {

/// Knobs for the sparse population. `n_registered == 0` disables the
/// population model (the engine falls back to dense clients).
struct PopulationConfig {
  std::size_t n_registered = 0;

  /// Mean awake fraction across the fleet, in (0, 1]. 1.0 = always on.
  double mean_availability = 1.0;

  /// Mean duty-cycle period in simulated seconds; each client's own
  /// period is uniform in [0.5, 1.5] of this.
  double window_seconds = 600.0;

  /// Fraction of clients that are stragglers, and their compute
  /// slowdown (mirrors FaultConfig's straggler knobs).
  double straggler_fraction = 0.0;
  double straggler_slowdown = 4.0;

  /// Continuous compute heterogeneity: per-client factor uniform in
  /// [1, 1 + compute_spread].
  double compute_spread = 0.0;

  /// Per-client uplink stretch uniform in [1, link_spread_max].
  double link_spread_max = 1.0;

  bool enabled() const { return n_registered > 0; }
};

/// Everything the engine needs to know about one registered client.
/// Recomputable on demand — never stored fleet-wide.
struct ClientProfile {
  double availability = 1.0;     ///< awake duty fraction in (0, 1]
  double period_seconds = 0.0;   ///< duty-cycle period
  double phase_seconds = 0.0;    ///< phase offset within the period
  double compute_factor = 1.0;   ///< local-train seconds multiplier (>= 1)
  double link_factor = 1.0;      ///< upload seconds multiplier (>= 1)
};

class ClientPopulation {
 public:
  /// `root` is forked (label "population"), not consumed: the caller's
  /// stream is unchanged, matching the engine's named-fork discipline.
  ClientPopulation(PopulationConfig config, const Rng& root);

  std::size_t n_registered() const { return config_.n_registered; }
  const PopulationConfig& config() const { return config_; }

  /// Deterministic profile of client `c` — pure in (seed, c).
  ClientProfile profile(std::size_t client) const;

  /// True when client `c` is inside its awake window at simulated time
  /// `t_seconds`. Pure in (seed, c, t).
  bool available_at(std::size_t client, double t_seconds) const;

  /// Draw `k` distinct client ids, sorted ascending, using O(k) memory.
  /// k == 0 returns an empty draw; k must not exceed n_registered().
  /// Consumes `rng` (pass a per-round fork, e.g. round_rng.fork("sample")).
  std::vector<std::size_t> sample(Rng& rng, std::size_t k) const;

 private:
  PopulationConfig config_;
  Rng root_;
};

}  // namespace fhdnn::fl
