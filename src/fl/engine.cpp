#include "fl/engine.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace fhdnn::fl {

RoundEngine::RoundEngine(EngineConfig config, RoundProtocol& protocol)
    : config_(std::move(config)),
      protocol_(protocol),
      root_rng_(config_.seed),
      sampler_(config_.n_clients, config_.client_fraction) {
  FHDNN_CHECK(config_.rounds > 0, "engine rounds " << config_.rounds);
  FHDNN_CHECK(config_.dropout_prob >= 0.0 && config_.dropout_prob < 1.0,
              "dropout_prob " << config_.dropout_prob);
}

RoundMetrics RoundEngine::round(int round_index) {
  const auto start = std::chrono::steady_clock::now();
  Rng round_rng = root_rng_.fork("round-" + std::to_string(round_index));
  Rng sample_rng = round_rng.fork("sample");
  const auto participants = sampler_.sample(sample_rng);
  const std::size_t n = participants.size();

  RoundMetrics metrics;
  metrics.round = round_index;
  metrics.sampled = n;

  // Serial prologue: the protocol refreshes the broadcast copy clients
  // start from and sizes its per-slot update buffer.
  protocol_.begin_round(round_rng, n);

  // Pre-draw delivery outcomes in participant order so the dropout stream
  // never depends on client execution order.
  Rng dropout_rng = round_rng.fork("dropout");
  const auto delivered_flag =
      draw_delivery_flags(n, config_.dropout_prob, dropout_rng);

  // Client-parallel local updates + transport. Each task draws only from
  // named forks of the round stream; global state is read-only until the
  // serial reduction below.
  std::vector<ClientReport> reports(n);
  parallel::parallel_for(
      0, static_cast<std::int64_t>(n), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          reports[slot] = protocol_.run_client(
              slot, participants[slot], round_rng, delivered_flag[slot] != 0);
        }
      });

  // Serial accounting + reduction in fixed participant order: aggregation
  // stays bit-identical to the sequential schedule at any thread count.
  double loss_total = 0.0;
  std::size_t delivered = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!delivered_flag[slot]) continue;
    ++delivered;
    loss_total += reports[slot].loss;
    metrics.bytes_uplink += reports[slot].stats.payload_bytes;
    metrics.bits_on_air += reports[slot].stats.bits_on_air;
    metrics.bit_flips += reports[slot].stats.bit_flips;
    metrics.packets_lost += reports[slot].stats.packets_lost;
  }
  protocol_.reduce(participants, delivered_flag);

  metrics.clients = delivered;
  metrics.dropped = n - delivered;
  metrics.train_loss =
      delivered ? loss_total / static_cast<double>(delivered) : 0.0;
  if (round_index % std::max(1, config_.eval_every) == 0 ||
      round_index == config_.rounds) {
    metrics.test_accuracy = protocol_.evaluate();
  } else {
    metrics.test_accuracy =
        history_.empty() ? 0.0 : history_.rounds().back().test_accuracy;
  }
  metrics.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return metrics;
}

TrainingHistory RoundEngine::run() {
  for (int r = 1; r <= config_.rounds; ++r) {
    const RoundMetrics m = round(r);
    history_.add(m);
    log_debug() << config_.name << " round " << r << " acc=" << m.test_accuracy
                << " loss=" << m.train_loss << " delivered=" << m.clients << "/"
                << m.sampled << " wall=" << m.wall_seconds << "s";
  }
  return history_;
}

}  // namespace fhdnn::fl
