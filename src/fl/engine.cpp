#include "fl/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/workspace.hpp"

namespace fhdnn::fl {

RoundEngine::RoundEngine(EngineConfig config, RoundProtocol& protocol)
    : config_(std::move(config)),
      protocol_(protocol),
      root_rng_(config_.seed),
      sampler_(config_.n_clients, config_.client_fraction),
      faults_(config_.faults, config_.n_clients, root_rng_.fork("faults")) {
  // Contract builds refuse to start training in an FP environment that
  // cannot reproduce the golden histories (FTZ/DAZ/non-nearest rounding).
  util::checked_startup();
  FHDNN_CHECK(config_.rounds > 0, "engine rounds " << config_.rounds);
  FHDNN_CHECK(config_.dropout_prob >= 0.0 && config_.dropout_prob < 1.0,
              "dropout_prob " << config_.dropout_prob);
  if (config_.deadline.enabled) {
    FHDNN_CHECK(config_.deadline.over_selection >= 0.0,
                "deadline over_selection " << config_.deadline.over_selection);
    FHDNN_CHECK(config_.deadline.deadline_factor > 0.0,
                "deadline_factor " << config_.deadline.deadline_factor);
    config_.deadline.timeline.link.validate();
    timeline_.emplace(config_.deadline.timeline);
  }
}

double RoundEngine::deadline_seconds() const {
  if (!timeline_) return 0.0;
  return config_.deadline.deadline_factor * timeline_->nominal_round_seconds();
}

RoundMetrics RoundEngine::round(int round_index) {
  const auto start = std::chrono::steady_clock::now();
  Rng round_rng = root_rng_.fork("round-" + std::to_string(round_index));
  Rng sample_rng = round_rng.fork("sample");

  // Deadline rounds over-select so late/faulty participants can be replaced
  // by faster ones without shrinking the effective round size.
  const bool deadline_on = timeline_.has_value();
  const std::size_t target = sampler_.clients_per_round();
  std::size_t draw = target;
  if (deadline_on) {
    draw = static_cast<std::size_t>(
        std::ceil(static_cast<double>(target) *
                  (1.0 + config_.deadline.over_selection)));
  }
  const auto participants = sampler_.sample(sample_rng, draw);
  const std::size_t n = participants.size();

  RoundMetrics metrics;
  metrics.round = round_index;
  metrics.sampled = n;

  // Serial prologue: the protocol refreshes the broadcast copy clients
  // start from and sizes its per-slot update buffer.
  protocol_.begin_round(round_rng, n);

  // Pre-draw delivery outcomes in participant order so the dropout stream
  // never depends on client execution order; fault-layer crashes and
  // outage windows fold in as additional delivery failures (both are pure
  // functions of (client, round), so the fold is order-independent too).
  Rng dropout_rng = round_rng.fork("dropout");
  auto delivered_flag =
      draw_delivery_flags(n, config_.dropout_prob, dropout_rng);
  if (faults_.enabled()) {
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (delivered_flag[slot] &&
          !faults_.available(participants[slot], round_index)) {
        delivered_flag[slot] = 0;
      }
    }
  }

  // Deadline rounds: pre-draw per-slot compute jitter serially in slot
  // order, same contract as the dropout coins.
  std::vector<double> jitter;
  if (deadline_on) {
    Rng jitter_rng = round_rng.fork("jitter");
    const double j = timeline_->config().compute_jitter;
    jitter.resize(n, 1.0);
    for (auto& factor : jitter) factor = 1.0 + jitter_rng.uniform(-j, j);
  }

  // Client-parallel local updates + transport. Each task draws only from
  // named forks of the round stream; global state is read-only until the
  // serial reduction below.
  std::vector<ClientReport> reports(n);
  parallel::parallel_for(
      0, static_cast<std::int64_t>(n), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        // Coalesce this worker's arena into one block before the batch of
        // clients; scratch is then bump-allocated with no heap traffic.
        util::tls_workspace().reset();
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          reports[slot] = protocol_.run_client(
              slot, participants[slot], round_rng, delivered_flag[slot] != 0);
          // Client boundary: every kernel/layer Scope opened while running
          // this client must have closed again (DESIGN.md §9/§10).
          FHDNN_CHECKED_ASSERT(
              util::tls_workspace().scope_depth() == 0,
              "workspace Scope leaked across client " << participants[slot]
                                                      << " boundary");
        }
      });

  // Deadline acceptance: simulate each delivery's duration from its
  // measured transport stats (retransmitted bits lengthen the upload, ARQ
  // backoff adds directly), then accept the first `target` finishers
  // within the deadline, ties broken by slot — a deterministic order at
  // any thread count. Late deliveries were on the air (traffic charged
  // below) but never reach the aggregator.
  std::vector<char> accepted = delivered_flag;
  double simulated_seconds = 0.0;
  if (deadline_on) {
    const double deadline = deadline_seconds();
    std::vector<std::pair<double, std::size_t>> finishers;
    finishers.reserve(n);
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (!delivered_flag[slot]) continue;
      finishers.emplace_back(
          timeline_->client_round_seconds(reports[slot].stats,
                                          faults_.slowdown(participants[slot]),
                                          jitter[slot]),
          slot);
    }
    std::sort(finishers.begin(), finishers.end());
    std::fill(accepted.begin(), accepted.end(), 0);
    std::size_t taken = 0;
    double slowest_accepted = 0.0;
    for (const auto& [seconds, slot] : finishers) {
      if (taken < target && seconds <= deadline) {
        accepted[slot] = 1;
        slowest_accepted = seconds;
        ++taken;
      }
    }
    // The round ends the moment the server has its target count of
    // updates; short rounds wait out the full deadline.
    simulated_seconds = (taken == target) ? slowest_accepted : deadline;
  }

  // Serial accounting in fixed participant order. Traffic is charged for
  // everything that went on the air (accepted or timed out); loss averages
  // over the accepted participants only — they are the round's effective
  // cohort.
  double loss_total = 0.0;
  std::size_t delivered = 0;
  std::size_t accepted_n = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!delivered_flag[slot]) continue;
    ++delivered;
    const auto& stats = reports[slot].stats;
    metrics.bytes_uplink += stats.payload_bytes;
    metrics.bits_on_air += stats.bits_on_air;
    metrics.bit_flips += stats.bit_flips;
    metrics.packets_lost += stats.packets_lost;
    metrics.retransmissions += stats.retransmissions;
    metrics.residual_errors += stats.residual_errors;
    if (accepted[slot]) {
      ++accepted_n;
      loss_total += reports[slot].loss;
    }
  }
  protocol_.reduce(participants, accepted);

  metrics.clients = accepted_n;
  metrics.dropped = n - delivered;
  metrics.timed_out = delivered - accepted_n;
  metrics.simulated_round_seconds = simulated_seconds;
  metrics.train_loss =
      accepted_n ? loss_total / static_cast<double>(accepted_n) : 0.0;
  if (round_index % std::max(1, config_.eval_every) == 0 ||
      round_index == config_.rounds) {
    metrics.test_accuracy = protocol_.evaluate();
  } else {
    metrics.test_accuracy =
        history_.empty() ? 0.0 : history_.rounds().back().test_accuracy;
  }
  metrics.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return metrics;
}

TrainingHistory RoundEngine::run() {
  for (int r = 1; r <= config_.rounds; ++r) {
    const RoundMetrics m = round(r);
    history_.add(m);
    log_debug() << config_.name << " round " << r << " acc=" << m.test_accuracy
                << " loss=" << m.train_loss << " accepted=" << m.clients << "/"
                << m.sampled << " (dropped=" << m.dropped
                << " timed_out=" << m.timed_out << ") wall=" << m.wall_seconds
                << "s";
  }
  return history_;
}

}  // namespace fhdnn::fl
