#include "fl/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/workspace.hpp"

namespace fhdnn::fl {

void UpdateSnapshotCodec<std::vector<float>>::save(util::SnapshotWriter& w,
                                                   const std::vector<float>& u) {
  w.write_floats(u);
}

std::vector<float> UpdateSnapshotCodec<std::vector<float>>::load(
    util::SnapshotReader& r) {
  return r.read_floats();
}

void UpdateSnapshotCodec<Tensor>::save(util::SnapshotWriter& w,
                                       const Tensor& u) {
  // Moved-from / never-filled slots carry the default (rank-0) tensor;
  // write a presence flag so load() restores exactly that.
  const bool present = u.ndim() > 0;
  w.write_u8(present ? 1 : 0);
  if (!present) return;
  w.write_u64(static_cast<std::uint64_t>(u.ndim()));
  for (std::int64_t d = 0; d < u.ndim(); ++d) {
    w.write_i64(u.dim(d));
  }
  w.write_floats(u.vec());
}

Tensor UpdateSnapshotCodec<Tensor>::load(util::SnapshotReader& r) {
  if (r.read_u8() == 0) return Tensor{};
  const auto ndim = static_cast<std::size_t>(r.read_u64());
  Shape shape(ndim);
  for (auto& d : shape) d = r.read_i64();
  Tensor t(std::move(shape), r.read_floats());
  t.assert_invariant();
  return t;
}

void LocalRoundDriver::drive(RoundProtocol& protocol, const Rng& round_rng,
                             int round_index,
                             const std::vector<std::size_t>& participants,
                             const std::vector<char>& delivered,
                             const std::vector<char>& awake,
                             std::vector<ClientReport>& reports) {
  (void)round_index;
  (void)delivered;  // non-delivered slots still train; run_client handles it
  const std::size_t n = participants.size();
  const bool pop_on = !awake.empty();
  parallel::parallel_for(
      0, static_cast<std::int64_t>(n), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        // Coalesce this worker's arena into one block before the batch
        // of clients; scratch is then bump-allocated with no heap
        // traffic.
        util::tls_workspace().reset();
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          if (pop_on && !awake[slot]) continue;  // asleep: no local work
          reports[slot] = protocol.run_client(slot, participants[slot],
                                              round_rng,
                                              delivered[slot] != 0);
          // Client boundary: every kernel/layer Scope opened while
          // running this client must have closed again (DESIGN.md
          // §9/§10).
          FHDNN_CHECKED_ASSERT(
              util::tls_workspace().scope_depth() == 0,
              "workspace Scope leaked across client " << participants[slot]
                                                      << " boundary");
        }
      });
}

RoundEngine::RoundEngine(EngineConfig config, RoundProtocol& protocol)
    : config_(std::move(config)),
      protocol_(protocol),
      root_rng_(config_.seed),
      sampler_(config_.population.enabled() ? config_.population.n_registered
                                            : config_.n_clients,
               config_.client_fraction),
      faults_(config_.faults, config_.n_clients, root_rng_.fork("faults")) {
  // Contract builds refuse to start training in an FP environment that
  // cannot reproduce the golden histories (FTZ/DAZ/non-nearest rounding).
  util::checked_startup();
  FHDNN_CHECK(config_.rounds > 0, "engine rounds " << config_.rounds);
  FHDNN_CHECK(config_.dropout_prob >= 0.0 && config_.dropout_prob < 1.0,
              "dropout_prob " << config_.dropout_prob);
  FHDNN_CHECK(!(config_.deadline.enabled && config_.async.enabled),
              "deadline and buffered-async rounds are mutually exclusive");
  if (config_.deadline.enabled) {
    FHDNN_CHECK(config_.deadline.over_selection >= 0.0,
                "deadline over_selection " << config_.deadline.over_selection);
    FHDNN_CHECK(config_.deadline.deadline_factor > 0.0,
                "deadline_factor " << config_.deadline.deadline_factor);
    config_.deadline.timeline.link.validate();
    timeline_.emplace(config_.deadline.timeline);
  } else if (config_.async.enabled) {
    FHDNN_CHECK(config_.async.over_selection >= 0.0,
                "async over_selection " << config_.async.over_selection);
    FHDNN_CHECK(config_.async.staleness_exponent >= 0.0,
                "staleness_exponent " << config_.async.staleness_exponent);
    FHDNN_CHECK(config_.async.max_staleness >= 0,
                "max_staleness " << config_.async.max_staleness);
    config_.async.timeline.link.validate();
    timeline_.emplace(config_.async.timeline);
  }
  if (config_.population.enabled()) {
    // Availability windows are predicates on simulated time, so the sparse
    // fleet only makes sense under a timed acceptance mode.
    FHDNN_CHECK(timeline_.has_value(),
                "population mode requires deadline or async rounds");
    population_.emplace(config_.population, root_rng_);
  }
}

double RoundEngine::deadline_seconds() const {
  if (!config_.deadline.enabled || !timeline_) return 0.0;
  return config_.deadline.deadline_factor * timeline_->nominal_round_seconds();
}

RoundMetrics RoundEngine::round(int round_index) {
  // Wall-clock measurement for RoundMetrics::wall_seconds — the one field
  // outside the simulated-time contract, and the one sanctioned wall-clock
  // read in src/fl/ (everything else runs on the event clock).
  // fhdnn-lint: allow(sim-clock, det-effects)
  const auto start = std::chrono::steady_clock::now();

  // Timed rounds over-select so late/faulty participants can be replaced
  // by faster ones without shrinking the effective round size.
  const bool deadline_on = config_.deadline.enabled;
  const bool async_on = config_.async.enabled;
  const bool timed = timeline_.has_value();
  const bool pop_on = population_.has_value();
  const std::size_t target = sampler_.clients_per_round();

  if (pending_.active) {
    // Mid-round resume: the prologue below (sampling, local training,
    // transport, event scheduling) ran before the snapshot was taken; only
    // the event loop and the serial epilogue remain. Everything they need
    // lives in pending_, the restored event queue, and the protocol state.
    FHDNN_CHECK(pending_.round_index == round_index,
                "pending round " << pending_.round_index << " != requested "
                                 << round_index);
  } else {
    Rng round_rng = root_rng_.fork("round-" + std::to_string(round_index));
    Rng sample_rng = round_rng.fork("sample");
    std::size_t draw = target;
    if (deadline_on) {
      draw = static_cast<std::size_t>(
          std::ceil(static_cast<double>(target) *
                    (1.0 + config_.deadline.over_selection)));
    } else if (async_on) {
      draw = static_cast<std::size_t>(
          std::ceil(static_cast<double>(target) *
                    (1.0 + config_.async.over_selection)));
    }
    pending_ = PendingRound{};
    pending_.active = true;
    pending_.round_index = round_index;
    pending_.participants = pop_on ? population_->sample(sample_rng, draw)
                                   : sampler_.sample(sample_rng, draw);
    const std::size_t n = pending_.participants.size();
    const auto& participants = pending_.participants;

    // Serial prologue: the protocol refreshes the broadcast copy clients
    // start from and sizes its per-slot update buffer.
    protocol_.begin_round(round_rng, n);

    // Pre-draw delivery outcomes in participant order so the dropout
    // stream never depends on client execution order; fault-layer crashes
    // and outage windows fold in as additional delivery failures (both are
    // pure functions of (client, round), so the fold is order-independent
    // too).
    Rng dropout_rng = round_rng.fork("dropout");
    pending_.delivered =
        draw_delivery_flags(n, config_.dropout_prob, dropout_rng);
    if (faults_.enabled()) {
      for (std::size_t slot = 0; slot < n; ++slot) {
        if (pending_.delivered[slot] &&
            !faults_.available(participants[slot], round_index)) {
          pending_.delivered[slot] = 0;
        }
      }
    }

    // Sparse population: a sampled client asleep at round start (its
    // availability window is a pure function of (seed, id, sim clock))
    // never trains and never reaches the channel — it just counts dropped.
    // This is also what bounds per-round work by the awake cohort.
    std::vector<char> awake;
    if (pop_on) {
      awake.assign(n, 1);
      for (std::size_t slot = 0; slot < n; ++slot) {
        if (!population_->available_at(participants[slot], sim_now_)) {
          awake[slot] = 0;
          pending_.delivered[slot] = 0;
        }
      }
    }

    // Timed rounds: pre-draw per-slot compute jitter serially in slot
    // order, same contract as the dropout coins. Spent entirely on event
    // scheduling below, so it never needs to survive a checkpoint.
    std::vector<double> jitter;
    if (timed) {
      Rng jitter_rng = round_rng.fork("jitter");
      const double j = timeline_->config().compute_jitter;
      jitter.resize(n, 1.0);
      for (auto& factor : jitter) factor = 1.0 + jitter_rng.uniform(-j, j);
    }

    // Client work through the driver seam: in process (LocalRoundDriver,
    // client-parallel on the util/parallel pool) or fanned out to connected
    // workers (ServerRoundDriver). Each client draws only from named forks
    // of the round stream; global state is read-only until the serial
    // reduction below — so who executes a slot never changes its update.
    pending_.reports.assign(n, ClientReport{});
    RoundDriver& driver = driver_ ? *driver_ : local_driver_;
    driver.drive(protocol_, round_rng, round_index, participants,
                 pending_.delivered, awake, pending_.reports);

    // Schedule the round's events (timed modes): each delivered
    // participant posts its kTrainDone and kUploadArrival instants, and a
    // deadline round posts its kDeadline sentinel.
    pending_.accepted = pending_.delivered;
    pending_.late.assign(n, 0);
    pending_.cap = target;
    if (async_on && config_.async.buffer_size > 0) {
      pending_.cap = config_.async.buffer_size;
    }
    if (timed) {
      events_.clear(0.0);
      for (std::size_t slot = 0; slot < n; ++slot) {
        if (!pending_.delivered[slot]) continue;
        double slowdown = faults_.slowdown(participants[slot]);
        double link_factor = 1.0;
        if (pop_on) {
          const ClientProfile prof = population_->profile(participants[slot]);
          slowdown *= prof.compute_factor;
          link_factor = prof.link_factor;
        }
        const double train_done =
            timeline_->client_compute_seconds(slowdown, jitter[slot]);
        // Dense mode reuses client_round_seconds wholesale so the arrival
        // instant is the exact double the pre-event acceptance sorted on.
        const double arrival =
            pop_on ? train_done + timeline_->client_upload_seconds(
                                      pending_.reports[slot].stats,
                                      link_factor)
                   : timeline_->client_round_seconds(
                         pending_.reports[slot].stats, slowdown, jitter[slot]);
        events_.push(Event{train_done, participants[slot], 0,
                           EventKind::kTrainDone, slot});
        events_.push(Event{arrival, participants[slot], 1,
                           EventKind::kUploadArrival, slot});
      }
      if (deadline_on) {
        events_.push(Event{deadline_seconds(),
                           std::numeric_limits<std::size_t>::max(), 0,
                           EventKind::kDeadline, 0});
      }
      std::fill(pending_.accepted.begin(), pending_.accepted.end(), 0);
    }
  }

  const std::size_t n = pending_.participants.size();
  RoundMetrics metrics;
  metrics.round = round_index;
  metrics.sampled = n;

  // Discrete-event acceptance (timed modes). The server replays the queue
  // in the deterministic (time, client, seq) order and decides acceptance
  // event by event:
  //   * deadline rounds — accept arrivals until the deadline event fires
  //     or `target` are in; bit-identical to the pre-event sort-based
  //     acceptance (the kDeadline event carries client = SIZE_MAX, so an
  //     arrival exactly at the deadline still pops first, matching the
  //     old `seconds <= deadline` rule; ties among arrivals break by
  //     client id, which equals the old slot-order tie-break because
  //     participants are sorted).
  //   * buffered-async rounds — the Kth arrival closes the round; later
  //     arrivals are marked late and handed to the protocol's staleness
  //     buffer instead of being discarded.
  // Every pop is a crash-consistency boundary: a due checkpoint commits
  // first, then a due CrashPlan fires — so a run killed at event k resumes
  // from a snapshot at (or deterministically before) k.
  double simulated_seconds = 0.0;
  if (timed) {
    while (!events_.empty()) {
      const Event e = events_.pop();
      if (e.kind == EventKind::kDeadline) {
        pending_.deadline_passed = true;
      } else if (e.kind == EventKind::kUploadArrival) {
        ++pending_.arrivals;
        pending_.last_arrival = e.time;
        if (!pending_.deadline_passed && pending_.taken < pending_.cap) {
          pending_.accepted[e.slot] = 1;
          pending_.last_accept = e.time;
          ++pending_.taken;
        } else if (async_on) {
          pending_.late[e.slot] = 1;
        }
      }
      ++total_events_;
      if (config_.checkpoint.enabled() &&
          config_.checkpoint.every_n_events > 0 &&
          total_events_ % config_.checkpoint.every_n_events == 0) {
        write_checkpoint();
      }
      if (config_.crash.enabled && total_events_ == config_.crash.at_event) {
        throw AggregatorCrash(total_events_);
      }
    }
    metrics.events = events_.processed();
    if (deadline_on) {
      // The round ends the moment the server has its target count of
      // updates; short rounds wait out the full deadline.
      simulated_seconds = (pending_.taken == pending_.cap)
                              ? pending_.last_accept
                              : deadline_seconds();
    } else {
      // Async: the buffer filling closes the round; a round whose arrivals
      // all fit under the cap ends at the final arrival, and a round with
      // no arrivals at all idles for one nominal round.
      simulated_seconds =
          pending_.arrivals == 0
              ? timeline_->nominal_round_seconds()
              : (pending_.taken == pending_.cap ? pending_.last_accept
                                                : pending_.last_arrival);
    }
  }

  // Serial accounting in fixed participant order. Traffic is charged for
  // everything that went on the air (accepted, buffered late, or timed
  // out); loss averages over the accepted participants only — they are
  // the round's effective cohort.
  double loss_total = 0.0;
  std::size_t delivered = 0;
  std::size_t accepted_n = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!pending_.delivered[slot]) continue;
    ++delivered;
    const auto& stats = pending_.reports[slot].stats;
    metrics.bytes_uplink += stats.payload_bytes;
    metrics.bits_on_air += stats.bits_on_air;
    metrics.bit_flips += stats.bit_flips;
    metrics.packets_lost += stats.packets_lost;
    metrics.retransmissions += stats.retransmissions;
    metrics.residual_errors += stats.residual_errors;
    if (pending_.accepted[slot]) {
      ++accepted_n;
      loss_total += pending_.reports[slot].loss;
    }
  }
  if (async_on) {
    const auto async_stats = protocol_.reduce_async(
        pending_.participants, pending_.accepted, pending_.late,
        config_.async.staleness_exponent, config_.async.max_staleness);
    metrics.stale_accepted = async_stats.stale_applied;
  } else {
    protocol_.reduce(pending_.participants, pending_.accepted);
  }
  pending_ = PendingRound{};  // round committed; nothing mid-round remains

  metrics.clients = accepted_n;
  metrics.dropped = n - delivered;
  metrics.timed_out = delivered - accepted_n;
  metrics.simulated_round_seconds = simulated_seconds;
  sim_now_ += simulated_seconds;
  metrics.train_loss =
      accepted_n ? loss_total / static_cast<double>(accepted_n) : 0.0;
  // The documented RoundMetrics invariant, enforced at round commit:
  // every sampled participant is accounted exactly once.
  FHDNN_CHECKED_ASSERT(
      metrics.clients + metrics.dropped + metrics.timed_out == metrics.sampled,
      "round accounting: clients " << metrics.clients << " + dropped "
                                   << metrics.dropped << " + timed_out "
                                   << metrics.timed_out << " != sampled "
                                   << metrics.sampled);
  if (round_index % std::max(1, config_.eval_every) == 0 ||
      round_index == config_.rounds) {
    metrics.test_accuracy = protocol_.evaluate();
  } else {
    metrics.test_accuracy =
        history_.empty() ? 0.0 : history_.rounds().back().test_accuracy;
  }
  // fhdnn-lint: allow(sim-clock, det-effects)
  const auto wall_end = std::chrono::steady_clock::now();
  metrics.wall_seconds = std::chrono::duration<double>(wall_end - start).count();
  // Ack/metrics hook: server drivers broadcast the committed round to their
  // workers; the in-process driver ignores it.
  RoundDriver& driver = driver_ ? *driver_ : local_driver_;
  driver.round_committed(metrics);
  return metrics;
}

TrainingHistory RoundEngine::run() {
  // history_.size() rounds are already committed (zero on a fresh engine,
  // more after resume()); continue from the next one.
  for (int r = static_cast<int>(history_.size()) + 1; r <= config_.rounds;
       ++r) {
    const RoundMetrics m = round(r);
    history_.add(m);
    if (config_.checkpoint.enabled()) {
      // Round-boundary checkpoint: a crash between rounds resumes here.
      write_checkpoint();
    }
    log_debug() << config_.name << " round " << r << " acc=" << m.test_accuracy
                << " loss=" << m.train_loss << " accepted=" << m.clients << "/"
                << m.sampled << " (dropped=" << m.dropped
                << " timed_out=" << m.timed_out << ") wall=" << m.wall_seconds
                << "s";
  }
  return history_;
}

std::uint32_t RoundEngine::config_fingerprint() const {
  // Canonical serialization of every knob the deterministic trajectory
  // depends on. FaultModel / ClientPopulation / FlTimeline / ClientSampler
  // are pure in (seed, config), so fingerprinting the config covers them —
  // no derived tables need snapshotting.
  std::vector<std::uint8_t> buf;
  const auto put = [&buf](const void* p, std::size_t len) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + len);
  };
  const auto put_u64 = [&put](std::uint64_t v) { put(&v, sizeof(v)); };
  const auto put_f64 = [&put](double v) { put(&v, sizeof(v)); };
  const EngineConfig& c = config_;
  put_u64(c.n_clients);
  put_f64(c.client_fraction);
  put_u64(static_cast<std::uint64_t>(c.rounds));
  put_u64(static_cast<std::uint64_t>(c.eval_every));
  put_f64(c.dropout_prob);
  put_u64(c.seed);
  put(c.name.data(), c.name.size());
  put_f64(c.faults.crash_prob);
  put_f64(c.faults.straggler_fraction);
  put_f64(c.faults.straggler_slowdown);
  put_f64(c.faults.outage_prob);
  put_u64(static_cast<std::uint64_t>(c.faults.outage_rounds));
  put_f64(c.faults.error_multiplier_max);
  put_u64(c.deadline.enabled ? 1 : 0);
  put_f64(c.deadline.over_selection);
  put_f64(c.deadline.deadline_factor);
  put_u64(c.deadline.timeline.update_bits);
  put_u64(c.deadline.timeline.fhdnn ? 1 : 0);
  put_f64(c.deadline.timeline.compute_jitter);
  put_u64(c.async.enabled ? 1 : 0);
  put_u64(c.async.buffer_size);
  put_f64(c.async.over_selection);
  put_f64(c.async.staleness_exponent);
  put_u64(static_cast<std::uint64_t>(c.async.max_staleness));
  put_u64(c.async.timeline.update_bits);
  put_u64(c.async.timeline.fhdnn ? 1 : 0);
  put_f64(c.async.timeline.compute_jitter);
  put_u64(c.population.n_registered);
  put_f64(c.population.mean_availability);
  put_f64(c.population.window_seconds);
  put_f64(c.population.straggler_fraction);
  put_f64(c.population.straggler_slowdown);
  put_f64(c.population.compute_spread);
  put_f64(c.population.link_spread_max);
  // One derived double folds the device/link/workload profiles in without
  // enumerating every field of the active timeline.
  put_f64(timeline_ ? timeline_->nominal_round_seconds() : 0.0);
  return util::crc32(buf.data(), buf.size());
}

void RoundEngine::save_snapshot(util::SnapshotWriter& w) {
  w.begin_chunk("META");
  w.write_u32(config_fingerprint());
  w.write_u8(pending_.active ? 1 : 0);
  w.write_i64(pending_.active
                  ? static_cast<std::int64_t>(pending_.round_index)
                  : static_cast<std::int64_t>(history_.size()));
  w.write_u64(total_events_);
  w.end_chunk();

  w.begin_chunk("RNGS");
  const RngState rng = root_rng_.state();
  for (const std::uint64_t word : rng.s) w.write_u64(word);
  w.write_u8(rng.has_cached_normal ? 1 : 0);
  w.write_f64(rng.cached_normal);
  w.end_chunk();

  w.begin_chunk("CLCK");
  w.write_f64(sim_now_);
  w.end_chunk();

  w.begin_chunk("HIST");
  history_.save(w);
  w.end_chunk();

  w.begin_chunk("PROT");
  protocol_.save_state(w);
  w.end_chunk();

  if (pending_.active) {
    w.begin_chunk("PEND");
    w.write_i64(pending_.round_index);
    w.write_sizes(pending_.participants);
    w.write_flags(pending_.delivered);
    w.write_u64(pending_.reports.size());
    for (const ClientReport& rep : pending_.reports) {
      w.write_f64(rep.loss);
      const channel::TransportStats& s = rep.stats;
      w.write_u64(s.payload_scalars);
      w.write_u64(s.payload_bytes);
      w.write_u64(s.bits_on_air);
      w.write_u64(s.bit_flips);
      w.write_u64(s.packets_total);
      w.write_u64(s.packets_lost);
      w.write_u64(s.retransmissions);
      w.write_u64(s.residual_errors);
      w.write_f64(s.backoff_seconds);
      w.write_f64(s.noise_power);
    }
    w.write_flags(pending_.accepted);
    w.write_flags(pending_.late);
    w.write_u8(pending_.deadline_passed ? 1 : 0);
    w.write_u64(pending_.taken);
    w.write_u64(pending_.arrivals);
    w.write_f64(pending_.last_accept);
    w.write_f64(pending_.last_arrival);
    w.write_u64(pending_.cap);
    w.end_chunk();

    w.begin_chunk("EVTQ");
    events_.save(w);
    w.end_chunk();
  }
}

void RoundEngine::write_checkpoint() { checkpoint(config_.checkpoint.path); }

void RoundEngine::checkpoint(const std::string& path) {
  FHDNN_CHECK(!path.empty(), "checkpoint path is empty");
  util::SnapshotWriter w;
  save_snapshot(w);
  w.commit(path);
}

void RoundEngine::resume(const std::string& path) {
  util::SnapshotReader r = util::SnapshotReader::open_with_fallback(path);

  r.enter_chunk("META");
  const std::uint32_t fingerprint = r.read_u32();
  if (fingerprint != config_fingerprint()) {
    throw util::SnapshotError(
        util::SnapshotErrorKind::kState, 0,
        "snapshot was written under a different engine config (" +
            r.source_path() + ")");
  }
  const bool mid_round = r.read_u8() != 0;
  const std::int64_t snap_round = r.read_i64();
  total_events_ = r.read_u64();
  r.leave_chunk();

  r.enter_chunk("RNGS");
  RngState rng;
  for (std::uint64_t& word : rng.s) word = r.read_u64();
  rng.has_cached_normal = r.read_u8() != 0;
  rng.cached_normal = r.read_f64();
  root_rng_.set_state(rng);
  r.leave_chunk();

  r.enter_chunk("CLCK");
  sim_now_ = r.read_f64();
  r.leave_chunk();

  r.enter_chunk("HIST");
  history_.load(r);
  r.leave_chunk();

  r.enter_chunk("PROT");
  protocol_.load_state(r);
  r.leave_chunk();

  pending_ = PendingRound{};
  if (mid_round) {
    r.enter_chunk("PEND");
    pending_.active = true;
    pending_.round_index = static_cast<int>(r.read_i64());
    pending_.participants = r.read_sizes();
    pending_.delivered = r.read_flags();
    const auto n_reports = static_cast<std::size_t>(r.read_u64());
    pending_.reports.assign(n_reports, ClientReport{});
    for (ClientReport& rep : pending_.reports) {
      rep.loss = r.read_f64();
      channel::TransportStats& s = rep.stats;
      s.payload_scalars = r.read_u64();
      s.payload_bytes = r.read_u64();
      s.bits_on_air = r.read_u64();
      s.bit_flips = r.read_u64();
      s.packets_total = r.read_u64();
      s.packets_lost = r.read_u64();
      s.retransmissions = r.read_u64();
      s.residual_errors = r.read_u64();
      s.backoff_seconds = r.read_f64();
      s.noise_power = r.read_f64();
    }
    pending_.accepted = r.read_flags();
    pending_.late = r.read_flags();
    pending_.deadline_passed = r.read_u8() != 0;
    pending_.taken = static_cast<std::size_t>(r.read_u64());
    pending_.arrivals = static_cast<std::size_t>(r.read_u64());
    pending_.last_accept = r.read_f64();
    pending_.last_arrival = r.read_f64();
    pending_.cap = static_cast<std::size_t>(r.read_u64());
    r.leave_chunk();

    const std::size_t n = pending_.participants.size();
    FHDNN_CHECK(pending_.round_index == static_cast<int>(snap_round) &&
                    pending_.delivered.size() == n &&
                    pending_.reports.size() == n &&
                    pending_.accepted.size() == n && pending_.late.size() == n,
                "snapshot pending-round state is inconsistent");
    FHDNN_CHECK(pending_.round_index == static_cast<int>(history_.size()) + 1,
                "snapshot pending round " << pending_.round_index
                                          << " does not follow its history of "
                                          << history_.size() << " rounds");
    FHDNN_CHECK(timeline_.has_value(),
                "mid-round snapshot requires a timed engine config");

    r.enter_chunk("EVTQ");
    events_.load(r);
    r.leave_chunk();
  } else {
    FHDNN_CHECK(snap_round == static_cast<std::int64_t>(history_.size()),
                "snapshot round index " << snap_round
                                        << " != restored history size "
                                        << history_.size());
  }
  r.enter_chunk("END ");
  r.leave_chunk();
}

}  // namespace fhdnn::fl
