#include "fl/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/workspace.hpp"

namespace fhdnn::fl {

RoundEngine::RoundEngine(EngineConfig config, RoundProtocol& protocol)
    : config_(std::move(config)),
      protocol_(protocol),
      root_rng_(config_.seed),
      sampler_(config_.population.enabled() ? config_.population.n_registered
                                            : config_.n_clients,
               config_.client_fraction),
      faults_(config_.faults, config_.n_clients, root_rng_.fork("faults")) {
  // Contract builds refuse to start training in an FP environment that
  // cannot reproduce the golden histories (FTZ/DAZ/non-nearest rounding).
  util::checked_startup();
  FHDNN_CHECK(config_.rounds > 0, "engine rounds " << config_.rounds);
  FHDNN_CHECK(config_.dropout_prob >= 0.0 && config_.dropout_prob < 1.0,
              "dropout_prob " << config_.dropout_prob);
  FHDNN_CHECK(!(config_.deadline.enabled && config_.async.enabled),
              "deadline and buffered-async rounds are mutually exclusive");
  if (config_.deadline.enabled) {
    FHDNN_CHECK(config_.deadline.over_selection >= 0.0,
                "deadline over_selection " << config_.deadline.over_selection);
    FHDNN_CHECK(config_.deadline.deadline_factor > 0.0,
                "deadline_factor " << config_.deadline.deadline_factor);
    config_.deadline.timeline.link.validate();
    timeline_.emplace(config_.deadline.timeline);
  } else if (config_.async.enabled) {
    FHDNN_CHECK(config_.async.over_selection >= 0.0,
                "async over_selection " << config_.async.over_selection);
    FHDNN_CHECK(config_.async.staleness_exponent >= 0.0,
                "staleness_exponent " << config_.async.staleness_exponent);
    FHDNN_CHECK(config_.async.max_staleness >= 0,
                "max_staleness " << config_.async.max_staleness);
    config_.async.timeline.link.validate();
    timeline_.emplace(config_.async.timeline);
  }
  if (config_.population.enabled()) {
    // Availability windows are predicates on simulated time, so the sparse
    // fleet only makes sense under a timed acceptance mode.
    FHDNN_CHECK(timeline_.has_value(),
                "population mode requires deadline or async rounds");
    population_.emplace(config_.population, root_rng_);
  }
}

double RoundEngine::deadline_seconds() const {
  if (!config_.deadline.enabled || !timeline_) return 0.0;
  return config_.deadline.deadline_factor * timeline_->nominal_round_seconds();
}

RoundMetrics RoundEngine::round(int round_index) {
  // Wall-clock measurement for RoundMetrics::wall_seconds — the one field
  // outside the simulated-time contract, and the one sanctioned wall-clock
  // read in src/fl/ (everything else runs on the event clock).
  // fhdnn-lint: allow(sim-clock)
  const auto start = std::chrono::steady_clock::now();
  Rng round_rng = root_rng_.fork("round-" + std::to_string(round_index));
  Rng sample_rng = round_rng.fork("sample");

  // Timed rounds over-select so late/faulty participants can be replaced
  // by faster ones without shrinking the effective round size.
  const bool deadline_on = config_.deadline.enabled;
  const bool async_on = config_.async.enabled;
  const bool timed = timeline_.has_value();
  const bool pop_on = population_.has_value();
  const std::size_t target = sampler_.clients_per_round();
  std::size_t draw = target;
  if (deadline_on) {
    draw = static_cast<std::size_t>(
        std::ceil(static_cast<double>(target) *
                  (1.0 + config_.deadline.over_selection)));
  } else if (async_on) {
    draw = static_cast<std::size_t>(
        std::ceil(static_cast<double>(target) *
                  (1.0 + config_.async.over_selection)));
  }
  const auto participants = pop_on ? population_->sample(sample_rng, draw)
                                   : sampler_.sample(sample_rng, draw);
  const std::size_t n = participants.size();

  RoundMetrics metrics;
  metrics.round = round_index;
  metrics.sampled = n;

  // Serial prologue: the protocol refreshes the broadcast copy clients
  // start from and sizes its per-slot update buffer.
  protocol_.begin_round(round_rng, n);

  // Pre-draw delivery outcomes in participant order so the dropout stream
  // never depends on client execution order; fault-layer crashes and
  // outage windows fold in as additional delivery failures (both are pure
  // functions of (client, round), so the fold is order-independent too).
  Rng dropout_rng = round_rng.fork("dropout");
  auto delivered_flag =
      draw_delivery_flags(n, config_.dropout_prob, dropout_rng);
  if (faults_.enabled()) {
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (delivered_flag[slot] &&
          !faults_.available(participants[slot], round_index)) {
        delivered_flag[slot] = 0;
      }
    }
  }

  // Sparse population: a sampled client asleep at round start (its
  // availability window is a pure function of (seed, id, sim clock))
  // never trains and never reaches the channel — it just counts dropped.
  // This is also what bounds per-round work by the awake cohort.
  std::vector<char> awake;
  if (pop_on) {
    awake.assign(n, 1);
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (!population_->available_at(participants[slot], sim_now_)) {
        awake[slot] = 0;
        delivered_flag[slot] = 0;
      }
    }
  }

  // Timed rounds: pre-draw per-slot compute jitter serially in slot
  // order, same contract as the dropout coins.
  std::vector<double> jitter;
  if (timed) {
    Rng jitter_rng = round_rng.fork("jitter");
    const double j = timeline_->config().compute_jitter;
    jitter.resize(n, 1.0);
    for (auto& factor : jitter) factor = 1.0 + jitter_rng.uniform(-j, j);
  }

  // Client-parallel local updates + transport. Each task draws only from
  // named forks of the round stream; global state is read-only until the
  // serial reduction below.
  std::vector<ClientReport> reports(n);
  parallel::parallel_for(
      0, static_cast<std::int64_t>(n), 1,
      [&](std::int64_t i0, std::int64_t i1) {
        // Coalesce this worker's arena into one block before the batch of
        // clients; scratch is then bump-allocated with no heap traffic.
        util::tls_workspace().reset();
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto slot = static_cast<std::size_t>(i);
          if (pop_on && !awake[slot]) continue;  // asleep: no local work
          reports[slot] = protocol_.run_client(
              slot, participants[slot], round_rng, delivered_flag[slot] != 0);
          // Client boundary: every kernel/layer Scope opened while running
          // this client must have closed again (DESIGN.md §9/§10).
          FHDNN_CHECKED_ASSERT(
              util::tls_workspace().scope_depth() == 0,
              "workspace Scope leaked across client " << participants[slot]
                                                      << " boundary");
        }
      });

  // Discrete-event acceptance (timed modes). Each delivered participant
  // schedules its kTrainDone and kUploadArrival instants; the server
  // replays the queue in the deterministic (time, client, seq) order and
  // decides acceptance event by event:
  //   * deadline rounds — accept arrivals until the deadline event fires
  //     or `target` are in; bit-identical to the pre-event sort-based
  //     acceptance (the kDeadline event carries client = SIZE_MAX, so an
  //     arrival exactly at the deadline still pops first, matching the
  //     old `seconds <= deadline` rule; ties among arrivals break by
  //     client id, which equals the old slot-order tie-break because
  //     participants are sorted).
  //   * buffered-async rounds — the Kth arrival closes the round; later
  //     arrivals are marked late and handed to the protocol's staleness
  //     buffer instead of being discarded.
  std::vector<char> accepted = delivered_flag;
  std::vector<char> late(n, 0);
  double simulated_seconds = 0.0;
  if (timed) {
    const double deadline = deadline_seconds();
    std::size_t cap = target;
    if (async_on && config_.async.buffer_size > 0) {
      cap = config_.async.buffer_size;
    }
    events_.clear(0.0);
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (!delivered_flag[slot]) continue;
      double slowdown = faults_.slowdown(participants[slot]);
      double link_factor = 1.0;
      if (pop_on) {
        const ClientProfile prof = population_->profile(participants[slot]);
        slowdown *= prof.compute_factor;
        link_factor = prof.link_factor;
      }
      const double train_done =
          timeline_->client_compute_seconds(slowdown, jitter[slot]);
      // Dense mode reuses client_round_seconds wholesale so the arrival
      // instant is the exact double the pre-event acceptance sorted on.
      const double arrival =
          pop_on ? train_done + timeline_->client_upload_seconds(
                                    reports[slot].stats, link_factor)
                 : timeline_->client_round_seconds(reports[slot].stats,
                                                   slowdown, jitter[slot]);
      events_.push(Event{train_done, participants[slot], 0,
                         EventKind::kTrainDone, slot});
      events_.push(Event{arrival, participants[slot], 1,
                         EventKind::kUploadArrival, slot});
    }
    if (deadline_on) {
      events_.push(Event{deadline, std::numeric_limits<std::size_t>::max(), 0,
                         EventKind::kDeadline, 0});
    }
    std::fill(accepted.begin(), accepted.end(), 0);
    bool deadline_passed = false;
    std::size_t taken = 0;
    std::size_t arrivals = 0;
    double last_accept = 0.0;
    double last_arrival = 0.0;
    while (!events_.empty()) {
      const Event e = events_.pop();
      if (e.kind == EventKind::kDeadline) {
        deadline_passed = true;
        continue;
      }
      if (e.kind != EventKind::kUploadArrival) continue;
      ++arrivals;
      last_arrival = e.time;
      if (!deadline_passed && taken < cap) {
        accepted[e.slot] = 1;
        last_accept = e.time;
        ++taken;
      } else if (async_on) {
        late[e.slot] = 1;
      }
    }
    metrics.events = events_.processed();
    if (deadline_on) {
      // The round ends the moment the server has its target count of
      // updates; short rounds wait out the full deadline.
      simulated_seconds = (taken == cap) ? last_accept : deadline;
    } else {
      // Async: the buffer filling closes the round; a round whose arrivals
      // all fit under the cap ends at the final arrival, and a round with
      // no arrivals at all idles for one nominal round.
      simulated_seconds = arrivals == 0
                              ? timeline_->nominal_round_seconds()
                              : (taken == cap ? last_accept : last_arrival);
    }
  }

  // Serial accounting in fixed participant order. Traffic is charged for
  // everything that went on the air (accepted, buffered late, or timed
  // out); loss averages over the accepted participants only — they are
  // the round's effective cohort.
  double loss_total = 0.0;
  std::size_t delivered = 0;
  std::size_t accepted_n = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!delivered_flag[slot]) continue;
    ++delivered;
    const auto& stats = reports[slot].stats;
    metrics.bytes_uplink += stats.payload_bytes;
    metrics.bits_on_air += stats.bits_on_air;
    metrics.bit_flips += stats.bit_flips;
    metrics.packets_lost += stats.packets_lost;
    metrics.retransmissions += stats.retransmissions;
    metrics.residual_errors += stats.residual_errors;
    if (accepted[slot]) {
      ++accepted_n;
      loss_total += reports[slot].loss;
    }
  }
  if (async_on) {
    const auto async_stats = protocol_.reduce_async(
        participants, accepted, late, config_.async.staleness_exponent,
        config_.async.max_staleness);
    metrics.stale_accepted = async_stats.stale_applied;
  } else {
    protocol_.reduce(participants, accepted);
  }

  metrics.clients = accepted_n;
  metrics.dropped = n - delivered;
  metrics.timed_out = delivered - accepted_n;
  metrics.simulated_round_seconds = simulated_seconds;
  sim_now_ += simulated_seconds;
  metrics.train_loss =
      accepted_n ? loss_total / static_cast<double>(accepted_n) : 0.0;
  // The documented RoundMetrics invariant, enforced at round commit:
  // every sampled participant is accounted exactly once.
  FHDNN_CHECKED_ASSERT(
      metrics.clients + metrics.dropped + metrics.timed_out == metrics.sampled,
      "round accounting: clients " << metrics.clients << " + dropped "
                                   << metrics.dropped << " + timed_out "
                                   << metrics.timed_out << " != sampled "
                                   << metrics.sampled);
  if (round_index % std::max(1, config_.eval_every) == 0 ||
      round_index == config_.rounds) {
    metrics.test_accuracy = protocol_.evaluate();
  } else {
    metrics.test_accuracy =
        history_.empty() ? 0.0 : history_.rounds().back().test_accuracy;
  }
  // fhdnn-lint: allow(sim-clock)
  const auto wall_end = std::chrono::steady_clock::now();
  metrics.wall_seconds = std::chrono::duration<double>(wall_end - start).count();
  return metrics;
}

TrainingHistory RoundEngine::run() {
  for (int r = 1; r <= config_.rounds; ++r) {
    const RoundMetrics m = round(r);
    history_.add(m);
    log_debug() << config_.name << " round " << r << " acc=" << m.test_accuracy
                << " loss=" << m.train_loss << " accepted=" << m.clients << "/"
                << m.sampled << " (dropped=" << m.dropped
                << " timed_out=" << m.timed_out << ") wall=" << m.wall_seconds
                << "s";
  }
  return history_;
}

}  // namespace fhdnn::fl
