// Client participation sampling (the C hyperparameter).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace fhdnn::fl {

/// Samples max(1, round(C * N)) distinct clients uniformly each round.
class ClientSampler {
 public:
  ClientSampler(std::size_t n_clients, double fraction);

  std::size_t clients_per_round() const { return per_round_; }
  std::size_t n_clients() const { return n_clients_; }

  /// Indices of this round's participants (sorted for determinism of the
  /// aggregation order).
  std::vector<std::size_t> sample(Rng& rng) const;

 private:
  std::size_t n_clients_;
  std::size_t per_round_;
};

}  // namespace fhdnn::fl
