// Client participation sampling (the C hyperparameter).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace fhdnn::fl {

/// Samples max(1, round(C * N)) distinct clients uniformly each round.
class ClientSampler {
 public:
  ClientSampler(std::size_t n_clients, double fraction);

  std::size_t clients_per_round() const { return per_round_; }
  std::size_t n_clients() const { return n_clients_; }

  /// Indices of this round's participants (sorted for determinism of the
  /// aggregation order).
  std::vector<std::size_t> sample(Rng& rng) const;

  /// Same, but drawing `k` participants instead of clients_per_round() —
  /// the engine's deadline rounds over-select with k = ceil(C*N*(1+eps)).
  /// k == 0 returns an empty draw (no clamping to 1); otherwise k is
  /// clamped to n_clients. k == clients_per_round() draws the exact same
  /// stream as sample(rng).
  std::vector<std::size_t> sample(Rng& rng, std::size_t k) const;

 private:
  std::size_t n_clients_;
  std::size_t per_round_;
};

/// Pre-draw per-participant delivery coins in participant order: entry i is
/// 0 when participant i fails to deliver its update (straggler / power loss
/// / link outage). Drawing every coin serially before any client task runs
/// keeps the dropout stream independent of client execution order — the
/// engine's determinism contract (DESIGN.md §6).
std::vector<char> draw_delivery_flags(std::size_t n_participants,
                                      double dropout_prob, Rng& rng);

}  // namespace fhdnn::fl
