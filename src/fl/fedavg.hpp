// Federated Averaging over CNN models (McMahan et al.) — the paper's
// baseline, expressed as a RoundEngine instantiation (fl/engine.hpp):
//   * LocalLearner: E epochs of minibatch SGD from the broadcast state on a
//     per-task worker model (pooled, one instance per concurrent client);
//   * Transport: channel::FloatStateTransport — optional update
//     subsampling, then the float32 channel path of paper §3.5 (a null
//     channel is a perfect link);
//   * Aggregator: example-count weighted averaging in fixed client order.
// The engine owns sampling, pre-drawn dropout coins, the client-parallel
// schedule, and per-round accounting, so results are bit-identical at
// every FHDNN_THREADS setting (DESIGN.md §6).
#pragma once

#include <functional>
#include <memory>

#include "channel/channel.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "fl/engine.hpp"
#include "nn/module.hpp"

namespace fhdnn::fl {

/// Builds a fresh instance of the model architecture. All instances must
/// have identical state layouts; the Rng seeds the initial weights.
using ModelFactory = std::function<std::unique_ptr<nn::Module>(Rng&)>;

struct FedAvgConfig {
  std::size_t n_clients = 10;
  double client_fraction = 0.2;  ///< C
  int local_epochs = 2;          ///< E
  std::size_t batch_size = 10;   ///< B
  int rounds = 20;
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
  int eval_every = 1;            ///< evaluate test accuracy every k rounds
  /// Probability that a sampled participant fails to deliver its update
  /// (straggler / power loss / link outage). A round where every
  /// participant drops leaves the global model unchanged.
  double dropout_prob = 0.0;
  /// Update-subsampling compression (the federated-dropout family of
  /// baselines the paper cites, refs [4][5]): each client transmits only
  /// this fraction of its state scalars (random mask, fresh per client per
  /// round); the server keeps the previous global value for the rest.
  /// 1.0 = full updates. Uplink byte accounting scales accordingly.
  double update_fraction = 1.0;
  std::uint64_t seed = 1;
  /// Per-client fault injection (crashes, outages, stragglers, link-quality
  /// multipliers) — fl/faults.hpp. All-off by default.
  FaultConfig faults;
  /// Deadline-based rounds with over-selection — fl/engine.hpp. Off by
  /// default.
  DeadlineConfig deadline;
  /// Buffered-async (FedBuff-style) rounds — fl/engine.hpp. Off by
  /// default; mutually exclusive with deadline rounds.
  AsyncConfig async;
  /// Crash-consistent snapshots (fl/engine.hpp). Off by default.
  CheckpointConfig checkpoint;
  /// Injected aggregator kill for crash-recovery testing (fl/faults.hpp).
  CrashPlan crash;
};

namespace detail {
class FedAvgProtocol;
}  // namespace detail

class FedAvgTrainer {
 public:
  /// `parts` assigns training examples to clients (see data/partition.hpp);
  /// `uplink` may be null for a perfect channel. The channel and datasets
  /// must outlive the trainer.
  FedAvgTrainer(ModelFactory factory, const data::Dataset& train,
                data::ClientIndices parts, const data::Dataset& test,
                FedAvgConfig config, const channel::Channel* uplink = nullptr);
  ~FedAvgTrainer();

  /// Run all configured rounds; returns the per-round history.
  TrainingHistory run();

  /// Execute a single round (exposed for tests and custom loops).
  RoundMetrics round(int round_index);

  /// Snapshot the full engine + protocol state to `path` (atomic commit,
  /// previous generation kept as `<path>.prev`).
  void checkpoint(const std::string& path);

  /// Restore a snapshot into this freshly-constructed trainer (same config
  /// required); run() then continues bit-identically to an uninterrupted
  /// run. Falls back to `<path>.prev` on a torn/corrupt primary.
  void resume(const std::string& path);

  /// Accuracy of the current global model on the test set.
  double evaluate();

  nn::Module& global_model();
  const TrainingHistory& history() const { return engine_->history(); }
  std::int64_t update_scalars() const;

  /// The engine driving the rounds (sampling / dropout / schedule state).
  const RoundEngine& engine() const { return *engine_; }

  /// The type-erased protocol stack — the serving seam: fhdnnd workers
  /// drive it directly through fl::WorkerLoop (fl/serving.hpp).
  RoundProtocol& protocol();

  /// Route rounds through a custom driver (fl/serving.hpp's
  /// ServerRoundDriver); nullptr restores the in-process path.
  void set_round_driver(RoundDriver* driver);

  /// The engine's config fingerprint, exchanged in the hello handshake.
  std::uint32_t config_fingerprint() const;

 private:
  std::unique_ptr<detail::FedAvgProtocol> protocol_;
  std::unique_ptr<RoundEngine> engine_;
};

}  // namespace fhdnn::fl
