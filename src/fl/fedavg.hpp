// Federated Averaging over CNN models (McMahan et al.) — the paper's
// baseline. Supports an unreliable uplink: each participating client's
// serialized model state is pushed through a channel::Channel before the
// server averages, exactly the corruption model of paper §3.5.
//
// Client local updates run in parallel (util/parallel.hpp): every client's
// randomness comes from a named fork of the round RNG, each task trains a
// private worker model, and the server reduces the collected updates in
// fixed participant order — so round results are bit-identical at every
// FHDNN_THREADS setting.
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "channel/channel.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "fl/history.hpp"
#include "fl/sampler.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"

namespace fhdnn::fl {

/// Builds a fresh instance of the model architecture. All instances must
/// have identical state layouts; the Rng seeds the initial weights.
using ModelFactory = std::function<std::unique_ptr<nn::Module>(Rng&)>;

struct FedAvgConfig {
  std::size_t n_clients = 10;
  double client_fraction = 0.2;  ///< C
  int local_epochs = 2;          ///< E
  std::size_t batch_size = 10;   ///< B
  int rounds = 20;
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
  int eval_every = 1;            ///< evaluate test accuracy every k rounds
  /// Probability that a sampled participant fails to deliver its update
  /// (straggler / power loss / link outage). A round where every
  /// participant drops leaves the global model unchanged.
  double dropout_prob = 0.0;
  /// Update-subsampling compression (the federated-dropout family of
  /// baselines the paper cites, refs [4][5]): each client transmits only
  /// this fraction of its state scalars (random mask, fresh per client per
  /// round); the server keeps the previous global value for the rest.
  /// 1.0 = full updates. Uplink byte accounting scales accordingly.
  double update_fraction = 1.0;
  std::uint64_t seed = 1;
};

class FedAvgTrainer {
 public:
  /// `parts` assigns training examples to clients (see data/partition.hpp);
  /// `uplink` may be null for a perfect channel. The channel and datasets
  /// must outlive the trainer.
  FedAvgTrainer(ModelFactory factory, const data::Dataset& train,
                data::ClientIndices parts, const data::Dataset& test,
                FedAvgConfig config, const channel::Channel* uplink = nullptr);

  /// Run all configured rounds; returns the per-round history.
  TrainingHistory run();

  /// Execute a single round (exposed for tests and custom loops).
  RoundMetrics round(int round_index);

  /// Accuracy of the current global model on the test set.
  double evaluate();

  nn::Module& global_model() { return *global_; }
  const TrainingHistory& history() const { return history_; }
  std::int64_t update_scalars() const { return state_scalars_; }

 private:
  /// Train `client` locally from the current global state into `worker`;
  /// returns its post-training state and mean loss. Thread-safe given a
  /// private `worker` and `rng`: it only reads `global_`, `train_`, and
  /// `parts_`.
  std::pair<std::vector<float>, double> local_update(std::size_t client,
                                                     Rng& rng,
                                                     nn::Module& worker);

  /// Check out / return a local-training model instance. The pool grows to
  /// one instance per concurrently-running client task; every instance is
  /// fully overwritten by copy_state before use, so reuse is safe.
  std::unique_ptr<nn::Module> acquire_worker();
  void release_worker(std::unique_ptr<nn::Module> worker);

  ModelFactory factory_;
  const data::Dataset& train_;
  data::ClientIndices parts_;
  const data::Dataset& test_;
  FedAvgConfig config_;
  const channel::Channel* uplink_;

  Rng root_rng_;
  std::unique_ptr<nn::Module> global_;
  std::vector<std::unique_ptr<nn::Module>> worker_pool_;
  std::mutex worker_mu_;
  std::size_t workers_created_ = 0;
  std::int64_t state_scalars_ = 0;
  ClientSampler sampler_;
  TrainingHistory history_;
  data::Dataset::Batch test_batch_;
};

}  // namespace fhdnn::fl
