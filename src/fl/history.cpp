#include "fl/history.hpp"

#include <algorithm>

namespace fhdnn::fl {

double TrainingHistory::final_accuracy() const {
  return rounds_.empty() ? 0.0 : rounds_.back().test_accuracy;
}

double TrainingHistory::best_accuracy() const {
  double best = 0.0;
  for (const auto& m : rounds_) best = std::max(best, m.test_accuracy);
  return best;
}

std::optional<std::int64_t> TrainingHistory::rounds_to_accuracy(
    double target) const {
  for (const auto& m : rounds_) {
    if (m.test_accuracy >= target) return m.round;
  }
  return std::nullopt;
}

std::uint64_t TrainingHistory::total_uplink_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.bytes_uplink;
  return total;
}

double TrainingHistory::total_wall_seconds() const {
  double total = 0.0;
  for (const auto& m : rounds_) total += m.wall_seconds;
  return total;
}

std::size_t TrainingHistory::total_sampled() const {
  std::size_t total = 0;
  for (const auto& m : rounds_) total += m.sampled;
  return total;
}

std::size_t TrainingHistory::total_dropped() const {
  std::size_t total = 0;
  for (const auto& m : rounds_) total += m.dropped;
  return total;
}

std::size_t TrainingHistory::total_timed_out() const {
  std::size_t total = 0;
  for (const auto& m : rounds_) total += m.timed_out;
  return total;
}

std::uint64_t TrainingHistory::total_bits_on_air() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.bits_on_air;
  return total;
}

std::uint64_t TrainingHistory::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.retransmissions;
  return total;
}

std::uint64_t TrainingHistory::total_residual_errors() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.residual_errors;
  return total;
}

std::uint64_t TrainingHistory::total_events() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.events;
  return total;
}

double TrainingHistory::total_simulated_seconds() const {
  double total = 0.0;
  for (const auto& m : rounds_) total += m.simulated_round_seconds;
  return total;
}

}  // namespace fhdnn::fl
