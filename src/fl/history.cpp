#include "fl/history.hpp"

#include <algorithm>

namespace fhdnn::fl {

double TrainingHistory::final_accuracy() const {
  return rounds_.empty() ? 0.0 : rounds_.back().test_accuracy;
}

double TrainingHistory::best_accuracy() const {
  double best = 0.0;
  for (const auto& m : rounds_) best = std::max(best, m.test_accuracy);
  return best;
}

std::optional<std::int64_t> TrainingHistory::rounds_to_accuracy(
    double target) const {
  for (const auto& m : rounds_) {
    if (m.test_accuracy >= target) return m.round;
  }
  return std::nullopt;
}

std::uint64_t TrainingHistory::total_uplink_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.bytes_uplink;
  return total;
}

double TrainingHistory::total_wall_seconds() const {
  double total = 0.0;
  for (const auto& m : rounds_) total += m.wall_seconds;
  return total;
}

std::size_t TrainingHistory::total_sampled() const {
  std::size_t total = 0;
  for (const auto& m : rounds_) total += m.sampled;
  return total;
}

std::size_t TrainingHistory::total_dropped() const {
  std::size_t total = 0;
  for (const auto& m : rounds_) total += m.dropped;
  return total;
}

std::size_t TrainingHistory::total_timed_out() const {
  std::size_t total = 0;
  for (const auto& m : rounds_) total += m.timed_out;
  return total;
}

std::uint64_t TrainingHistory::total_bits_on_air() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.bits_on_air;
  return total;
}

std::uint64_t TrainingHistory::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.retransmissions;
  return total;
}

std::uint64_t TrainingHistory::total_residual_errors() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.residual_errors;
  return total;
}

std::uint64_t TrainingHistory::total_events() const {
  std::uint64_t total = 0;
  for (const auto& m : rounds_) total += m.events;
  return total;
}

double TrainingHistory::total_simulated_seconds() const {
  double total = 0.0;
  for (const auto& m : rounds_) total += m.simulated_round_seconds;
  return total;
}

void TrainingHistory::save(util::SnapshotWriter& w) const {
  w.write_u64(rounds_.size());
  for (const RoundMetrics& m : rounds_) {
    w.write_i64(m.round);
    w.write_f64(m.test_accuracy);
    w.write_f64(m.train_loss);
    w.write_u64(m.clients);
    w.write_u64(m.sampled);
    w.write_u64(m.dropped);
    w.write_u64(m.timed_out);
    w.write_u64(m.stale_accepted);
    w.write_u64(m.bytes_uplink);
    w.write_u64(m.bits_on_air);
    w.write_u64(m.bit_flips);
    w.write_u64(m.packets_lost);
    w.write_u64(m.retransmissions);
    w.write_u64(m.residual_errors);
    w.write_f64(m.simulated_round_seconds);
    w.write_u64(m.events);
    w.write_f64(m.wall_seconds);
  }
}

void TrainingHistory::load(util::SnapshotReader& r) {
  const auto n = static_cast<std::size_t>(r.read_u64());
  rounds_.clear();
  rounds_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RoundMetrics m;
    m.round = r.read_i64();
    m.test_accuracy = r.read_f64();
    m.train_loss = r.read_f64();
    m.clients = static_cast<std::size_t>(r.read_u64());
    m.sampled = static_cast<std::size_t>(r.read_u64());
    m.dropped = static_cast<std::size_t>(r.read_u64());
    m.timed_out = static_cast<std::size_t>(r.read_u64());
    m.stale_accepted = static_cast<std::size_t>(r.read_u64());
    m.bytes_uplink = r.read_u64();
    m.bits_on_air = r.read_u64();
    m.bit_flips = r.read_u64();
    m.packets_lost = r.read_u64();
    m.retransmissions = r.read_u64();
    m.residual_errors = r.read_u64();
    m.simulated_round_seconds = r.read_f64();
    m.events = r.read_u64();
    m.wall_seconds = r.read_f64();
    rounds_.push_back(m);
  }
}

}  // namespace fhdnn::fl
