// The fhdnnd serving seam: federated rounds over wire connections.
//
// ServerRoundDriver plugs into RoundEngine::set_round_driver and replaces
// the in-process client loop with connected workers: each round it
// serializes the protocol state (a util/snapshot image), deals the round's
// delivered slots over the workers round-robin in slot order, ships each
// worker a RoundAssign (round RNG state + slot list + state blob), and
// collects one Update per slot — installing updates through
// RoundProtocol::load_update and the reports the engine's epilogue
// consumes. WorkerLoop is the other half: it reconstructs the protocol
// state and round stream from a RoundAssign, trains its slots through the
// SAME RoundProtocol::run_client code path (transport corruption and
// traffic accounting run on the worker, drawing from the same named RNG
// forks), and ships the retained updates back.
//
// Bit-identity across deployments follows from the engine's determinism
// contract (DESIGN.md §6): every client draws only from named forks of the
// round stream, updates are installed per slot, and the reduction is serial
// in slot order on the server — so run histories through loopback pipes,
// TCP sockets, or the in-process LocalRoundDriver are byte-for-byte equal.
// Worker scheduling, collection order, and thread counts cannot matter.
//
// Blocking discipline: drive() is called from the engine thread and blocks
// until the round's updates are in (or round_timeout_ms passes). Readiness
// comes from the epoll Reactor when every worker is a socket, and from
// round-robin Connection::wait_readable slices otherwise (loopback).
// Timeouts are accumulated wait-slice milliseconds — the driver never reads
// a wall clock, keeping src/fl/ inside the sim-clock lint contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fl/engine.hpp"
#include "net/connection.hpp"
#include "net/reactor.hpp"
#include "wire/messages.hpp"

namespace fhdnn::fl {

struct ServingConfig {
  int handshake_timeout_ms = 30000;
  int round_timeout_ms = 120000;  ///< cap on one round's collection wait
  int poll_slice_ms = 20;         ///< readiness wait granularity
};

/// Server side: owns the worker connections and drives rounds over them.
class ServerRoundDriver final : public RoundDriver {
 public:
  /// `fingerprint` is the engine's config_fingerprint(); `protocol_name`
  /// the trainer name ("fedavg", "fedhd") — both are validated against
  /// every worker's Hello.
  ServerRoundDriver(std::uint32_t fingerprint, std::string protocol_name,
                    ServingConfig config = {});

  /// Handshake a freshly-accepted connection and register it as a worker
  /// (takes ownership). Throws WireError on version skew, NetError on
  /// fingerprint/protocol mismatch or timeout. Returns the worker id.
  std::uint64_t add_worker(std::unique_ptr<net::Connection> conn);

  [[nodiscard]] std::size_t n_workers() const noexcept {
    return workers_.size();
  }

  void drive(RoundProtocol& protocol, const Rng& round_rng, int round_index,
             const std::vector<std::size_t>& participants,
             const std::vector<char>& delivered, const std::vector<char>& awake,
             std::vector<ClientReport>& reports) override;

  /// Broadcast the committed round's metrics (ack) to every worker.
  void round_committed(const RoundMetrics& metrics) override;

  /// Broadcast Shutdown, flush, and close every worker connection.
  void shutdown(std::int64_t rounds_completed);

  /// Framed bytes moved over all worker connections so far (serving
  /// accounting; the model-level traffic accounting stays TransportStats).
  [[nodiscard]] std::uint64_t wire_bytes_sent() const;
  [[nodiscard]] std::uint64_t wire_bytes_received() const;

 private:
  struct Worker {
    std::unique_ptr<net::Connection> conn;
    std::unique_ptr<net::MessageChannel> chan;
    std::uint64_t id = 0;
    std::size_t owed = 0;  ///< updates outstanding in the current round
  };

  /// Wait up to `slice_ms` for readability on any worker.
  void wait_any(int slice_ms);

  std::uint32_t fingerprint_;
  std::string protocol_name_;
  ServingConfig config_;
  std::vector<Worker> workers_;
  net::Reactor reactor_;
  bool reactor_usable_ = true;  ///< false once any worker lacks an fd
  std::uint64_t next_worker_id_ = 1;
};

/// Worker side: serves rounds from a server connection until Shutdown.
class WorkerLoop {
 public:
  /// `conn` and `protocol` must outlive the loop. `fingerprint` and
  /// `protocol_name` must be computed from a trainer constructed with the
  /// exact same config as the server's (the handshake enforces it).
  WorkerLoop(net::Connection& conn, RoundProtocol& protocol,
             std::uint32_t fingerprint, std::string protocol_name,
             ServingConfig config = {});

  /// Send Hello, await HelloAck. Throws on mismatch/timeout.
  void handshake();

  /// Serve rounds until the server sends Shutdown (returns true) or closes
  /// the connection (returns false — callers reconnect and retry, which is
  /// how workers ride out a kill -9'd server restarting from checkpoint).
  bool serve();

  [[nodiscard]] std::uint64_t worker_id() const noexcept { return worker_id_; }
  [[nodiscard]] std::int64_t rounds_served() const noexcept {
    return rounds_served_;
  }
  /// rounds_completed from the ShutdownMsg; -1 before shutdown.
  [[nodiscard]] std::int64_t shutdown_rounds() const noexcept {
    return shutdown_rounds_;
  }

 private:
  void serve_round(const wire::RoundAssignMsg& assign);
  /// Flush queued updates, parking any frames that arrive meanwhile.
  void flush_blocking();

  net::MessageChannel chan_;
  RoundProtocol& protocol_;
  std::uint32_t fingerprint_;
  std::string protocol_name_;
  ServingConfig config_;
  std::uint64_t worker_id_ = 0;
  std::int64_t rounds_served_ = 0;
  std::int64_t shutdown_rounds_ = -1;
  std::vector<wire::Frame> parked_;  ///< frames received while flushing
  std::size_t parked_next_ = 0;
};

}  // namespace fhdnn::fl
