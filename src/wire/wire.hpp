// Versioned, CRC-32-framed binary wire format for the fhdnnd serving seam.
//
// Every message that crosses a Connection (src/net/) is one frame:
//
//   [4]  magic "FHDW"
//   [2]  wire version (u16) — readers reject other versions (kVersion)
//   [2]  message type  (u16) — unknown types rejected (kType)
//   [8]  payload length (u64)
//   [4]  CRC-32 of the payload (util/snapshot's reflected IEEE CRC-32,
//        the same function the ARQ channel frames use)
//   [n]  payload
//
// All integers and IEEE-754 floats travel in native byte order
// (little-endian on every supported target, matching tensor/io and
// util/snapshot) and floats/doubles as raw bit patterns, so a payload
// round-trip is bit-exact — the property the engine's golden-history
// equality over the wire depends on.
//
// Validation is eager and strict: decode_frame() rejects trailing bytes,
// PayloadReader::finish() rejects unconsumed payload, and every defect
// surfaces as a typed WireError carrying the kind and the byte offset where
// validation stopped.  Large nested blobs (protocol state, per-slot
// updates) are snapshot images — util/snapshot's chunk discipline validated
// by SnapshotReader::from_bytes — embedded as length-prefixed byte strings,
// so they carry their own per-chunk CRCs in addition to the frame CRC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace fhdnn::wire {

/// Current wire-format version.  Bump on any layout change; both sides
/// reject mismatches during the hello handshake rather than guessing.
inline constexpr std::uint16_t kWireVersion = 1;

/// Refuse to buffer frames larger than this (a corrupt or hostile length
/// prefix must not allocate unbounded memory).
inline constexpr std::uint64_t kMaxFrameBytes = 1ULL << 30;

enum class MsgType : std::uint16_t {
  kHello = 1,        ///< worker -> server: version/capabilities/fingerprint
  kHelloAck = 2,     ///< server -> worker: accept + worker id
  kRoundAssign = 3,  ///< server -> worker: round RNG, slots, state blob
  kUpdate = 4,       ///< worker -> server: one slot's trained update + stats
  kRoundDone = 5,    ///< server -> worker: committed round metrics (ack)
  kShutdown = 6,     ///< server -> worker: training finished, disconnect
  kArqFrame = 7,     ///< standalone ARQ frame (channel/arq payload chunk)
};

/// True when `t` is a defined MsgType value.
[[nodiscard]] bool msg_type_known(std::uint16_t t);

enum class WireErrorKind {
  kFormat,     ///< bad magic or malformed framing / field encoding
  kVersion,    ///< wire version mismatch
  kType,       ///< unknown message type
  kCrc,        ///< payload failed its CRC-32
  kTruncated,  ///< fewer bytes than the framing claims
  kSchema,     ///< payload decoded but fields are inconsistent / trailing
};

/// Typed wire failure carrying the byte offset (within the frame or payload
/// being decoded) where validation stopped.
class WireError : public Error {
 public:
  WireError(WireErrorKind kind, std::size_t byte_offset,
            const std::string& message);

  [[nodiscard]] WireErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t byte_offset() const noexcept {
    return byte_offset_;
  }

 private:
  WireErrorKind kind_;
  std::size_t byte_offset_;
};

/// A decoded frame: type + validated payload bytes.
struct Frame {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> payload;
};

/// Frame header size in bytes (magic + version + type + length + CRC).
inline constexpr std::size_t kFrameHeaderSize = 4 + 2 + 2 + 8 + 4;

/// Encode one frame (header + payload) ready to write to a Connection.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload);

/// Strict one-shot decode: `data` must hold exactly one valid frame —
/// trailing bytes are rejected (kSchema).  Throws WireError on any defect.
[[nodiscard]] Frame decode_frame(const std::uint8_t* data, std::size_t len);

/// Incremental frame decoder for a byte stream.  feed() appends received
/// bytes; next() validates eagerly (header fields as soon as the header is
/// buffered, CRC once the payload is complete) and returns the next frame,
/// or nullopt when more bytes are needed.  Throws WireError on any defect;
/// after a throw the stream is unrecoverable by design (no resync — a
/// corrupt stream means a broken or hostile peer).
class FrameAssembler {
 public:
  void feed(const std::uint8_t* data, std::size_t len);
  [[nodiscard]] std::optional<Frame> next();
  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t buffered() const noexcept;

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // start of the undecoded region within buf_
};

/// Serializes payload fields in wire order.  Same primitive encodings as
/// util/snapshot (native-endian, raw IEEE bits, u64 length prefixes).
class PayloadWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f32(float v);   ///< raw IEEE bits
  void f64(double v);  ///< raw IEEE bits
  void str(std::string_view s);                 ///< u64 length + bytes
  void blob(const std::vector<std::uint8_t>& b);  ///< u64 length + bytes
  void floats(const std::vector<float>& v);       ///< u64 count + raw bits

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Deserializes payload fields in wire order with eager bounds checks;
/// finish() rejects trailing bytes (kSchema).  Offsets in thrown WireErrors
/// are relative to the payload start.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}
  PayloadReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  float f32();
  double f64();
  std::string str();
  std::vector<std::uint8_t> blob();
  std::vector<float> floats();

  /// Asserts the payload was fully consumed.
  void finish() const;
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fhdnn::wire
