#include "wire/messages.hpp"

namespace fhdnn::wire {
namespace {

// Shared decode prologue: assert the frame type, hand back a strict reader.
PayloadReader open(const Frame& f, MsgType want, const char* name) {
  if (f.type != want) {
    throw WireError(WireErrorKind::kSchema, 0,
                    std::string("frame is not a ") + name + " message");
  }
  return PayloadReader(f.payload);
}

}  // namespace

void put_rng_state(PayloadWriter& w, const RngState& s) {
  for (const std::uint64_t word : s.s) w.u64(word);
  w.u8(s.has_cached_normal ? 1 : 0);
  w.f64(s.cached_normal);
}

RngState get_rng_state(PayloadReader& r) {
  RngState s;
  for (std::uint64_t& word : s.s) word = r.u64();
  const std::uint8_t flag = r.u8();
  if (flag > 1) {
    throw WireError(WireErrorKind::kSchema, r.offset(),
                    "rng cached-normal flag must be 0 or 1");
  }
  s.has_cached_normal = flag != 0;
  s.cached_normal = r.f64();
  return s;
}

void put_transport_stats(PayloadWriter& w, const channel::TransportStats& s) {
  w.u64(s.payload_scalars);
  w.u64(s.payload_bytes);
  w.u64(s.bits_on_air);
  w.u64(s.bit_flips);
  w.u64(s.packets_total);
  w.u64(s.packets_lost);
  w.u64(s.retransmissions);
  w.u64(s.residual_errors);
  w.f64(s.backoff_seconds);
  w.f64(s.noise_power);
}

channel::TransportStats get_transport_stats(PayloadReader& r) {
  channel::TransportStats s;
  s.payload_scalars = r.u64();
  s.payload_bytes = r.u64();
  s.bits_on_air = r.u64();
  s.bit_flips = r.u64();
  s.packets_total = r.u64();
  s.packets_lost = r.u64();
  s.retransmissions = r.u64();
  s.residual_errors = r.u64();
  s.backoff_seconds = r.f64();
  s.noise_power = r.f64();
  return s;
}

// ---------------------------------------------------------------------------
// Hello / HelloAck

Frame HelloMsg::to_frame() const {
  PayloadWriter w;
  w.u32(config_fingerprint);
  w.str(protocol);
  w.u64(capabilities);
  return Frame{MsgType::kHello, w.take()};
}

HelloMsg HelloMsg::from_frame(const Frame& f) {
  PayloadReader r = open(f, MsgType::kHello, "Hello");
  HelloMsg m;
  m.config_fingerprint = r.u32();
  m.protocol = r.str();
  m.capabilities = r.u64();
  r.finish();
  return m;
}

Frame HelloAckMsg::to_frame() const {
  PayloadWriter w;
  w.u32(config_fingerprint);
  w.u64(worker_id);
  return Frame{MsgType::kHelloAck, w.take()};
}

HelloAckMsg HelloAckMsg::from_frame(const Frame& f) {
  PayloadReader r = open(f, MsgType::kHelloAck, "HelloAck");
  HelloAckMsg m;
  m.config_fingerprint = r.u32();
  m.worker_id = r.u64();
  r.finish();
  return m;
}

// ---------------------------------------------------------------------------
// RoundAssign

Frame RoundAssignMsg::to_frame() const {
  PayloadWriter w;
  w.i64(round_index);
  w.u64(n_participants);
  put_rng_state(w, rng);
  w.u64(slots.size());
  for (const SlotAssignment& a : slots) {
    w.u64(a.slot);
    w.u64(a.client);
  }
  w.blob(state_blob);
  return Frame{MsgType::kRoundAssign, w.take()};
}

RoundAssignMsg RoundAssignMsg::from_frame(const Frame& f) {
  PayloadReader r = open(f, MsgType::kRoundAssign, "RoundAssign");
  RoundAssignMsg m;
  m.round_index = r.i64();
  m.n_participants = r.u64();
  m.rng = get_rng_state(r);
  const std::uint64_t n_slots = r.u64();
  if (n_slots > m.n_participants) {
    throw WireError(WireErrorKind::kSchema, r.offset(),
                    "more slot assignments than cohort participants");
  }
  m.slots.reserve(static_cast<std::size_t>(n_slots));
  for (std::uint64_t i = 0; i < n_slots; ++i) {
    SlotAssignment a;
    a.slot = r.u64();
    a.client = r.u64();
    if (a.slot >= m.n_participants) {
      throw WireError(WireErrorKind::kSchema, r.offset(),
                      "slot index beyond the cohort size");
    }
    m.slots.push_back(a);
  }
  m.state_blob = r.blob();
  r.finish();
  return m;
}

// ---------------------------------------------------------------------------
// Update

Frame UpdateMsg::to_frame() const {
  PayloadWriter w;
  w.i64(round_index);
  w.u64(slot);
  w.u64(client);
  w.f64(loss);
  put_transport_stats(w, stats);
  w.blob(update_blob);
  return Frame{MsgType::kUpdate, w.take()};
}

UpdateMsg UpdateMsg::from_frame(const Frame& f) {
  PayloadReader r = open(f, MsgType::kUpdate, "Update");
  UpdateMsg m;
  m.round_index = r.i64();
  m.slot = r.u64();
  m.client = r.u64();
  m.loss = r.f64();
  m.stats = get_transport_stats(r);
  m.update_blob = r.blob();
  r.finish();
  return m;
}

// ---------------------------------------------------------------------------
// RoundDone / Shutdown

Frame RoundDoneMsg::to_frame() const {
  PayloadWriter w;
  w.i64(round_index);
  w.u64(accepted);
  w.u64(bytes_uplink);
  w.f64(test_accuracy);
  return Frame{MsgType::kRoundDone, w.take()};
}

RoundDoneMsg RoundDoneMsg::from_frame(const Frame& f) {
  PayloadReader r = open(f, MsgType::kRoundDone, "RoundDone");
  RoundDoneMsg m;
  m.round_index = r.i64();
  m.accepted = r.u64();
  m.bytes_uplink = r.u64();
  m.test_accuracy = r.f64();
  r.finish();
  return m;
}

Frame ShutdownMsg::to_frame() const {
  PayloadWriter w;
  w.i64(rounds_completed);
  return Frame{MsgType::kShutdown, w.take()};
}

ShutdownMsg ShutdownMsg::from_frame(const Frame& f) {
  PayloadReader r = open(f, MsgType::kShutdown, "Shutdown");
  ShutdownMsg m;
  m.rounds_completed = r.i64();
  r.finish();
  return m;
}

// ---------------------------------------------------------------------------
// ArqFrame

Frame ArqFrameMsg::to_frame() const {
  PayloadWriter w;
  w.u64(seq);
  w.u8(is_last);
  w.u32(payload_crc);
  w.floats(payload);
  return Frame{MsgType::kArqFrame, w.take()};
}

ArqFrameMsg ArqFrameMsg::from_frame(const Frame& f) {
  PayloadReader r = open(f, MsgType::kArqFrame, "ArqFrame");
  ArqFrameMsg m;
  m.seq = r.u64();
  m.is_last = r.u8();
  if (m.is_last > 1) {
    throw WireError(WireErrorKind::kSchema, r.offset(),
                    "is_last flag must be 0 or 1");
  }
  m.payload_crc = r.u32();
  m.payload = r.floats();
  r.finish();
  return m;
}

}  // namespace fhdnn::wire
