// Typed messages of the fhdnnd serving protocol, layered on wire framing.
//
// Conversation (one worker, W workers total; the server multiplexes):
//
//   worker                         server
//     | -- Hello {ver, proto, fp} -> |   fingerprint must match the
//     | <- HelloAck {worker id} ---- |   server's EngineConfig fingerprint
//     | <- RoundAssign {rng, slots,  |   one per round; slots round-robin
//     |      state blob} ----------- |   over delivered participants
//     | -- Update {slot, loss,       |   one per assigned slot; update blob
//     |      stats, update blob} --> |   is a snapshot image (UPDT chunk)
//     | <- RoundDone {metrics} ----- |   committed-round ack + accounting
//     |            ...               |
//     | <- Shutdown {rounds} ------- |   training complete
//
// Every message is `X::to_frame()` / `X::from_frame(f)`; from_frame
// validates the frame type, decodes strictly in field order, and rejects
// trailing payload bytes.  State/update blobs are util/snapshot images
// (their own chunk CRCs) validated on receipt by SnapshotReader::from_bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/channel.hpp"  // TransportStats
#include "util/rng.hpp"         // RngState
#include "wire/wire.hpp"

namespace fhdnn::wire {

/// RngState <-> payload (exact stream position: 4 state words + the cached
/// Box-Muller normal, so a worker-side fork sequence replays bit-identically).
void put_rng_state(PayloadWriter& w, const RngState& s);
[[nodiscard]] RngState get_rng_state(PayloadReader& r);

/// TransportStats <-> payload.  All ten fields travel (doubles as raw IEEE
/// bits) so server-side accounting equals the in-process rule exactly.
void put_transport_stats(PayloadWriter& w, const channel::TransportStats& s);
[[nodiscard]] channel::TransportStats get_transport_stats(PayloadReader& r);

/// Worker -> server greeting.  The server rejects version skew (the frame
/// layer already did, for the frame header) and fingerprint mismatches —
/// a worker built from a different EngineConfig would silently diverge.
struct HelloMsg {
  std::uint32_t config_fingerprint = 0;
  std::string protocol;             ///< "fedavg" | "fedhd" | ...
  std::uint64_t capabilities = 0;   ///< reserved bitmask (must echo 0 today)

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static HelloMsg from_frame(const Frame& f);
};

/// Server -> worker: handshake accepted.
struct HelloAckMsg {
  std::uint32_t config_fingerprint = 0;
  std::uint64_t worker_id = 0;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static HelloAckMsg from_frame(const Frame& f);
};

struct SlotAssignment {
  std::uint64_t slot = 0;    ///< cohort slot index (reduction order key)
  std::uint64_t client = 0;  ///< global client id for that slot
};

/// Server -> worker: drive these slots for one round.  `state_blob` is the
/// full protocol state (global model / prototypes, PROT chunk) and `rng` the
/// round stream, so the worker replays exactly what the in-process driver
/// would have computed for the same slots.
struct RoundAssignMsg {
  std::int64_t round_index = 0;
  std::uint64_t n_participants = 0;  ///< cohort size (begin_round arg)
  RngState rng;                      ///< round stream at prologue state
  std::vector<SlotAssignment> slots;
  std::vector<std::uint8_t> state_blob;  ///< snapshot image, PROT chunk

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static RoundAssignMsg from_frame(const Frame& f);
};

/// Worker -> server: one trained slot.  `update_blob` is a snapshot image
/// (UPDT chunk) holding the protocol-specific update (subsampled float
/// state for FedAvg, HD prototype tensor for FedHd) exactly as the
/// client-side transport emitted it — corruption and accounting already
/// applied on the worker, so the server installs it verbatim.
struct UpdateMsg {
  std::int64_t round_index = 0;
  std::uint64_t slot = 0;
  std::uint64_t client = 0;
  double loss = 0.0;
  channel::TransportStats stats;
  std::vector<std::uint8_t> update_blob;  ///< snapshot image, UPDT chunk

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static UpdateMsg from_frame(const Frame& f);
};

/// Server -> worker: the round committed (ack + metrics echo).
struct RoundDoneMsg {
  std::int64_t round_index = 0;
  std::uint64_t accepted = 0;
  std::uint64_t bytes_uplink = 0;  ///< channel::hd_update_bytes accounting
  double test_accuracy = 0.0;      ///< NaN when the round skipped eval

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static RoundDoneMsg from_frame(const Frame& f);
};

/// Server -> worker: training finished; the worker should disconnect.
struct ShutdownMsg {
  std::int64_t rounds_completed = 0;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ShutdownMsg from_frame(const Frame& f);
};

/// A single reliable-delivery frame (channel/arq payload chunk) framed for
/// the wire: sequence number + float payload whose CRC-32 the receiver
/// checks exactly like ReliableChannel does in process.
struct ArqFrameMsg {
  std::uint64_t seq = 0;
  std::uint8_t is_last = 0;
  std::uint32_t payload_crc = 0;  ///< channel::crc32 over the float bits
  std::vector<float> payload;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ArqFrameMsg from_frame(const Frame& f);
};

}  // namespace fhdnn::wire
