#include "wire/wire.hpp"

#include <cstring>
#include <sstream>

#include "util/snapshot.hpp"  // util::crc32

namespace fhdnn::wire {
namespace {

constexpr char kMagic[4] = {'F', 'H', 'D', 'W'};

const char* kind_name(WireErrorKind kind) {
  switch (kind) {
    case WireErrorKind::kFormat: return "format";
    case WireErrorKind::kVersion: return "version";
    case WireErrorKind::kType: return "type";
    case WireErrorKind::kCrc: return "crc";
    case WireErrorKind::kTruncated: return "truncated";
    case WireErrorKind::kSchema: return "schema";
  }
  return "?";
}

[[noreturn]] void fail(WireErrorKind kind, std::size_t offset,
                       const std::string& message) {
  throw WireError(kind, offset, message);
}

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const auto old = out.size();
  out.resize(old + sizeof(T));
  std::memcpy(out.data() + old, &v, sizeof(T));
}

// Validates a frame header at `data` (which must hold >= kFrameHeaderSize
// bytes) and returns the payload length.  `base` offsets error positions
// for streaming callers.
std::uint64_t check_header(const std::uint8_t* data, std::size_t base) {
  if (std::memcmp(data, kMagic, 4) != 0) {
    fail(WireErrorKind::kFormat, base, "bad frame magic (want \"FHDW\")");
  }
  std::uint16_t version = 0;
  std::memcpy(&version, data + 4, 2);
  if (version != kWireVersion) {
    std::ostringstream os;
    os << "wire version " << version << " (want " << kWireVersion << ")";
    fail(WireErrorKind::kVersion, base + 4, os.str());
  }
  std::uint16_t type = 0;
  std::memcpy(&type, data + 6, 2);
  if (!msg_type_known(type)) {
    std::ostringstream os;
    os << "unknown message type " << type;
    fail(WireErrorKind::kType, base + 6, os.str());
  }
  std::uint64_t len = 0;
  std::memcpy(&len, data + 8, 8);
  if (len > kMaxFrameBytes) {
    std::ostringstream os;
    os << "frame payload of " << len << " bytes exceeds the " << kMaxFrameBytes
       << "-byte cap";
    fail(WireErrorKind::kFormat, base + 8, os.str());
  }
  return len;
}

// Decodes the frame at `data` after check_header passed; `len` is the
// payload length; the caller guarantees the payload is fully buffered.
Frame take_frame(const std::uint8_t* data, std::uint64_t len,
                 std::size_t base) {
  std::uint16_t type = 0;
  std::memcpy(&type, data + 6, 2);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data + 16, 4);
  const std::uint8_t* payload = data + kFrameHeaderSize;
  const std::uint32_t actual_crc =
      util::crc32(payload, static_cast<std::size_t>(len));
  if (actual_crc != stored_crc) {
    fail(WireErrorKind::kCrc, base + 16, "frame payload failed CRC-32");
  }
  Frame f;
  f.type = static_cast<MsgType>(type);
  f.payload.assign(payload, payload + len);
  return f;
}

}  // namespace

bool msg_type_known(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(MsgType::kHello) &&
         t <= static_cast<std::uint16_t>(MsgType::kArqFrame);
}

WireError::WireError(WireErrorKind kind, std::size_t byte_offset,
                     const std::string& message)
    : Error("wire error (" + std::string(kind_name(kind)) + ") at byte " +
            std::to_string(byte_offset) + ": " + message),
      kind_(kind),
      byte_offset_(byte_offset) {}

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  FHDNN_CHECK(payload.size() <= kMaxFrameBytes,
              "frame payload of " << payload.size() << " bytes exceeds cap");
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  put<std::uint16_t>(out, kWireVersion);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(type));
  put<std::uint64_t>(out, payload.size());
  put<std::uint32_t>(out, util::crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Frame decode_frame(const std::uint8_t* data, std::size_t len) {
  if (len < kFrameHeaderSize) {
    fail(WireErrorKind::kTruncated, len,
         "frame shorter than the " + std::to_string(kFrameHeaderSize) +
             "-byte header");
  }
  const std::uint64_t payload_len = check_header(data, 0);
  const std::size_t total = kFrameHeaderSize + payload_len;
  if (len < total) {
    fail(WireErrorKind::kTruncated, len,
         "frame truncated: header claims " + std::to_string(total) +
             " bytes, got " + std::to_string(len));
  }
  if (len > total) {
    fail(WireErrorKind::kSchema, total,
         std::to_string(len - total) + " trailing bytes after the frame");
  }
  return take_frame(data, payload_len, 0);
}

// ---------------------------------------------------------------------------
// FrameAssembler

void FrameAssembler::feed(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Frame> FrameAssembler::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* head = buf_.data() + pos_;
  const std::uint64_t payload_len = check_header(head, pos_);
  if (avail < kFrameHeaderSize + payload_len) return std::nullopt;
  Frame f = take_frame(head, payload_len, pos_);
  pos_ += kFrameHeaderSize + static_cast<std::size_t>(payload_len);
  compact();
  return f;
}

std::size_t FrameAssembler::buffered() const noexcept {
  return buf_.size() - pos_;
}

void FrameAssembler::compact() {
  // Drop consumed bytes once they dominate the buffer, keeping feed()
  // amortized O(1) without re-shifting after every frame.
  if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

// ---------------------------------------------------------------------------
// PayloadWriter

void PayloadWriter::u8(std::uint8_t v) { put(out_, v); }
void PayloadWriter::u16(std::uint16_t v) { put(out_, v); }
void PayloadWriter::u32(std::uint32_t v) { put(out_, v); }
void PayloadWriter::u64(std::uint64_t v) { put(out_, v); }
void PayloadWriter::i64(std::int64_t v) { put(out_, v); }

void PayloadWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  put(out_, bits);
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put(out_, bits);
}

void PayloadWriter::str(std::string_view s) {
  u64(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void PayloadWriter::blob(const std::vector<std::uint8_t>& b) {
  u64(b.size());
  out_.insert(out_.end(), b.begin(), b.end());
}

void PayloadWriter::floats(const std::vector<float>& v) {
  u64(v.size());
  const auto old = out_.size();
  out_.resize(old + v.size() * 4);
  if (!v.empty()) std::memcpy(out_.data() + old, v.data(), v.size() * 4);
}

// ---------------------------------------------------------------------------
// PayloadReader

void PayloadReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    fail(WireErrorKind::kTruncated, pos_,
         "payload needs " + std::to_string(n) + " more bytes, has " +
             std::to_string(size_ - pos_));
  }
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t PayloadReader::u16() {
  need(2);
  std::uint16_t v = 0;
  std::memcpy(&v, data_ + pos_, 2);
  pos_ += 2;
  return v;
}

std::uint32_t PayloadReader::u32() {
  need(4);
  std::uint32_t v = 0;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  std::uint64_t v = 0;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

std::int64_t PayloadReader::i64() {
  return static_cast<std::int64_t>(u64());
}

float PayloadReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0F;
  std::memcpy(&v, &bits, 4);
  return v;
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string PayloadReader::str() {
  const std::uint64_t n = u64();
  need(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<std::uint8_t> PayloadReader::blob() {
  const std::uint64_t n = u64();
  need(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
  pos_ += static_cast<std::size_t>(n);
  return b;
}

std::vector<float> PayloadReader::floats() {
  const std::uint64_t n = u64();
  if (n > (size_ - pos_) / 4) {  // overflow-safe form of need(n * 4)
    fail(WireErrorKind::kTruncated, pos_,
         "float array claims " + std::to_string(n) + " elements, only " +
             std::to_string((size_ - pos_) / 4) + " fit");
  }
  std::vector<float> v(static_cast<std::size_t>(n));
  if (n > 0) std::memcpy(v.data(), data_ + pos_, v.size() * 4);
  pos_ += static_cast<std::size_t>(n) * 4;
  return v;
}

void PayloadReader::finish() const {
  if (pos_ != size_) {
    fail(WireErrorKind::kSchema, pos_,
         std::to_string(size_ - pos_) + " trailing payload bytes");
  }
}

}  // namespace fhdnn::wire
