#include "util/table.hpp"

#include <algorithm>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace fhdnn {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  FHDNN_CHECK(!columns_.empty(), "table needs at least one column");
}

std::string TextTable::cell(double v) { return format_double(v); }

void TextTable::add_row(std::vector<std::string> cells) {
  FHDNN_CHECK(cells.size() == columns_.size(),
              "row has " << cells.size() << " cells, expected "
                         << columns_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace fhdnn
