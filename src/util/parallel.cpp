#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fhdnn::parallel {

namespace {

thread_local bool tl_in_parallel = false;

int clamp_threads(long long n) {
  return static_cast<int>(std::clamp<long long>(n, 1, kMaxThreads));
}

int initial_threads() {
  if (const char* s = std::getenv("FHDNN_THREADS")) {
    char* end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (end != s && *end == '\0' && v > 0) return clamp_threads(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : clamp_threads(hw);
}

std::atomic<int>& configured_threads() {
  static std::atomic<int> count{initial_threads()};
  return count;
}

/// One dispatched parallel_for. Chunks are claimed via an atomic counter;
/// which thread runs a chunk never affects the result (chunks are disjoint
/// and the body owns its output region), so work stealing is free.
struct Job {
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t nchunks = 0;
  const ChunkFn* fn = nullptr;
  std::atomic<std::int64_t> next_chunk{0};
  std::atomic<int> helper_slots{0};  ///< workers allowed beyond the caller
  std::mutex error_mu;
  std::exception_ptr error;

  void work() {
    for (;;) {
      const std::int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const std::int64_t b = begin + c * grain;
      const std::int64_t e = std::min(end, b + grain);
      try {
        (*fn)(b, e);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        // Drain remaining chunks so every thread stops promptly.
        next_chunk.store(nchunks, std::memory_order_relaxed);
        return;
      }
    }
  }
};

/// Lazily-created process-global pool. One job in flight at a time
/// (dispatch_mu_); nested parallel_for calls never reach the pool.
class Pool {
 public:
  static Pool& instance() {
    // One-time lazy init, not per-round allocation; leaked so workers may
    // outlive static destruction order.
    // fhdnn-lint: allow(det-effects)
    static Pool* pool = new Pool();
    return *pool;
  }

  void run(Job& job, int helpers) {
    const std::lock_guard<std::mutex> dispatch(dispatch_mu_);
    ensure_workers(helpers);
    int expected_acks = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      ++seq_;
      expected_acks = static_cast<int>(workers_.size());
      pending_acks_ = expected_acks;
    }
    cv_.notify_all();
    // The caller is one of the workers for its own job.
    const bool was_in_parallel = tl_in_parallel;
    tl_in_parallel = true;
    job.work();
    tl_in_parallel = was_in_parallel;
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_acks_ == 0; });
      job_ = nullptr;
    }
  }

 private:
  Pool() = default;

  void ensure_workers(int n) {
    const std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < n &&
           static_cast<int>(workers_.size()) < kMaxThreads - 1) {
      // A fresh worker must not ack jobs dispatched before it existed.
      const std::uint64_t start_seq = seq_;
      workers_.emplace_back([this, start_seq] { worker_loop(start_seq); });
    }
  }

  void worker_loop(std::uint64_t seen) {
    tl_in_parallel = true;  // workers never dispatch nested jobs
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return seq_ != seen; });
        seen = seq_;
        job = job_;
      }
      // Every worker wakes for every job; only those that win a helper slot
      // touch chunks, so `set_num_threads` genuinely bounds concurrency.
      if (job != nullptr &&
          job->helper_slots.fetch_sub(1, std::memory_order_relaxed) > 0) {
        job->work();
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (--pending_acks_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex dispatch_mu_;  ///< serializes concurrent top-level dispatches

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;  // detached-by-leak; see instance()
  Job* job_ = nullptr;
  std::uint64_t seq_ = 0;
  int pending_acks_ = 0;
};

}  // namespace

int num_threads() { return configured_threads().load(std::memory_order_relaxed); }

void set_num_threads(int n) {
  configured_threads().store(clamp_threads(n), std::memory_order_relaxed);
}

bool in_parallel_region() { return tl_in_parallel; }

std::int64_t grain_for(std::int64_t work_per_item, std::int64_t min_work) {
  return std::max<std::int64_t>(1, min_work / std::max<std::int64_t>(
                                                  1, work_per_item));
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  ChunkFn fn) {
  if (end <= begin) return;
  FHDNN_CHECK(grain >= 1, "parallel_for grain " << grain);
  const std::int64_t n = end - begin;
  const std::int64_t nchunks = (n + grain - 1) / grain;
  const int threads = num_threads();
  if (threads <= 1 || nchunks <= 1 || tl_in_parallel) {
    fn(begin, end);
    return;
  }
  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.nchunks = nchunks;
  job.fn = &fn;
  const int helpers = static_cast<int>(
      std::min<std::int64_t>(threads - 1, nchunks - 1));
  job.helper_slots.store(helpers, std::memory_order_relaxed);
  Pool::instance().run(job, helpers);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace fhdnn::parallel
