#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fhdnn {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

// Serializes whole-line emission.  A function-local static (not a namespace
// global) so logging from static destructors during shutdown stays safe.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?    ";
}

void emit(const std::string& line) {
  const std::scoped_lock lock(sink_mutex());
  // One fwrite per line: even if stderr is unbuffered (the default), the
  // line reaches the fd in a single call and cannot interleave mid-line
  // with another thread's write.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line;
  line.reserve(msg.size() + 10);
  line += '[';
  line += level_tag(level);
  line += "] ";
  line += msg;
  line += '\n';
  emit(line);
}

void log_message(LogLevel level, const std::string& source,
                 const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line;
  line.reserve(source.size() + msg.size() + 13);
  line += '[';
  line += level_tag(level);
  line += "] [";
  line += source;
  line += "] ";
  line += msg;
  line += '\n';
  emit(line);
}

}  // namespace fhdnn
