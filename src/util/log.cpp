#include "util/log.hpp"

#include <cstdio>

namespace fhdnn {
namespace {

LogLevel g_level = LogLevel::Info;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?    ";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace fhdnn
