#include "util/simd.hpp"

#include <array>
#include <bit>

namespace fhdnn::simd {

namespace {

// ---- scalar tier: the golden oracle ------------------------------------
// Deliberately plain loops: this is the reference semantics every wider
// tier must reproduce bit-for-bit, and the fallback on CPUs (or build
// configurations) without vector units.

void axpy_scalar(float* y, float a, const float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void scale_scalar(float* out, const float* x, float a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = x[i] * a;
}

void add_scalar(float* out, const float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void sub_scalar(float* out, const float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void mul_scalar(float* out, const float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void pack_signs_scalar(const float* src, std::uint64_t* dst,
                       std::int64_t nbits) {
  const std::int64_t nwords = (nbits + 63) / 64;
  for (std::int64_t w = 0; w < nwords; ++w) dst[w] = 0;
  for (std::int64_t i = 0; i < nbits; ++i) {
    if (src[i] >= 0.0F) {
      dst[i / 64] |= (1ULL << (i % 64));
    }
  }
}

void unpack_signs_scalar(const std::uint64_t* src, float* dst,
                         std::int64_t nbits) {
  for (std::int64_t i = 0; i < nbits; ++i) {
    dst[i] = (src[i / 64] >> (i % 64)) & 1ULL ? 1.0F : -1.0F;
  }
}

void xor_words_scalar(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* out, std::int64_t nwords) {
  for (std::int64_t w = 0; w < nwords; ++w) out[w] = a[w] ^ b[w];
}

std::uint64_t popcount_words_scalar(const std::uint64_t* a,
                                    std::int64_t nwords) {
  std::uint64_t total = 0;
  for (std::int64_t w = 0; w < nwords; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w]));
  }
  return total;
}

std::uint64_t hamming_words_scalar(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::int64_t nwords) {
  std::uint64_t total = 0;
  for (std::int64_t w = 0; w < nwords; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

constexpr Kernels kScalar = {
    axpy_scalar,         scale_scalar,        add_scalar,
    sub_scalar,          mul_scalar,          pack_signs_scalar,
    unpack_signs_scalar, xor_words_scalar,    popcount_words_scalar,
    hamming_words_scalar,
};

/// Overlay `tier` onto `base`: non-null tier entries win.
Kernels overlay(const Kernels& base, const Kernels* tier) {
  if (tier == nullptr) return base;
  Kernels out = base;
  if (tier->axpy_f32 != nullptr) out.axpy_f32 = tier->axpy_f32;
  if (tier->scale_f32 != nullptr) out.scale_f32 = tier->scale_f32;
  if (tier->add_f32 != nullptr) out.add_f32 = tier->add_f32;
  if (tier->sub_f32 != nullptr) out.sub_f32 = tier->sub_f32;
  if (tier->mul_f32 != nullptr) out.mul_f32 = tier->mul_f32;
  if (tier->pack_signs != nullptr) out.pack_signs = tier->pack_signs;
  if (tier->unpack_signs != nullptr) out.unpack_signs = tier->unpack_signs;
  if (tier->xor_words != nullptr) out.xor_words = tier->xor_words;
  if (tier->popcount_words != nullptr) {
    out.popcount_words = tier->popcount_words;
  }
  if (tier->hamming_words != nullptr) out.hamming_words = tier->hamming_words;
  return out;
}

/// Fully-resolved table per tier. Higher tiers inherit everything a lower
/// tier accelerates that they do not override (e.g. AVX-512 reuses the AVX2
/// bit kernels — an AVX-512 CPU always supports AVX2).
std::array<Kernels, 4> build_tables() {
  std::array<Kernels, 4> t{};
  t[static_cast<std::size_t>(util::SimdTier::Scalar)] = kScalar;
  t[static_cast<std::size_t>(util::SimdTier::Neon)] =
      overlay(kScalar, detail::neon_table());
  const Kernels avx2 = overlay(kScalar, detail::avx2_table());
  t[static_cast<std::size_t>(util::SimdTier::Avx2)] = avx2;
  t[static_cast<std::size_t>(util::SimdTier::Avx512)] =
      overlay(avx2, detail::avx512_table());
  return t;
}

const std::array<Kernels, 4>& tables() {
  static const std::array<Kernels, 4> t = build_tables();
  return t;
}

}  // namespace

const Kernels& detail::scalar_table() { return kScalar; }

const Kernels& kernels() { return kernels_for(util::active_simd()); }

const Kernels& kernels_for(util::SimdTier tier) {
  // Tier values normally come from util::active_simd()/set_simd_tier(),
  // which clamp to detected support. An explicit request for a tier whose
  // TU was compiled without the ISA still resolves to a valid (scalar-
  // backed) table; executing a wider table than the CPU supports is the
  // caller's bug — always force tiers through util::set_simd_tier().
  return tables()[static_cast<std::size_t>(tier)];
}

}  // namespace fhdnn::simd
