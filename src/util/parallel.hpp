// Deterministic thread-pool parallelism for the tensor kernels and the FL
// client simulation.
//
// Design rules that make every parallel path bit-identical to the serial
// schedule (`FHDNN_THREADS=1`):
//   * `parallel_for` splits [begin, end) into contiguous chunks whose
//     boundaries depend only on (begin, end, grain) — never on the thread
//     count or on which worker picks a chunk up;
//   * each index belongs to exactly one chunk, so a body that writes a
//     private output region per index (a matmul row, an im2col row, a
//     client slot) races with nobody and produces the same bits at every
//     thread count;
//   * cross-item reductions (FedAvg aggregation, loss averaging) are NOT
//     parallelized — callers collect per-item results and reduce serially
//     in fixed index order.
// Nested calls from inside a parallel region run inline (one level of
// parallelism): client-level parallelism in the FL trainers wins over
// row-level parallelism in the kernels underneath it.
//
// The pool is process-global, lazily created, and sized by the
// `FHDNN_THREADS` environment variable (default: hardware concurrency).
// `set_num_threads` overrides the count at runtime (used by tests and the
// scaling bench); `FHDNN_THREADS=1` disables the pool entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace fhdnn::parallel {

/// Hard ceiling on pool size (a backstop, far above any sane setting).
inline constexpr int kMaxThreads = 256;

/// Non-owning reference to a `void(chunk_begin, chunk_end)` callable.
/// Replaces std::function in the dispatch path: kernel lambdas capture more
/// than the small-buffer optimization holds, so std::function would heap-
/// allocate on every parallel_for call — a per-step leak in the otherwise
/// allocation-free steady state (DESIGN.md §9). The referenced callable
/// must outlive the parallel_for call (always true for the lambda-argument
/// idiom every call site uses: a temporary lives to the end of the full
/// expression).
class ChunkFn {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ChunkFn>>>
  ChunkFn(F&& f)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* ctx, std::int64_t b, std::int64_t e) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(b, e);
        }) {}

  void operator()(std::int64_t b, std::int64_t e) const { call_(ctx_, b, e); }

 private:
  void* ctx_;
  void (*call_)(void*, std::int64_t, std::int64_t);
};

/// Configured thread count. Initialized on first use from `FHDNN_THREADS`
/// (falling back to std::thread::hardware_concurrency()); always >= 1.
int num_threads();

/// Override the configured count, clamped to [1, kMaxThreads]. Takes effect
/// on the next parallel_for; already-spawned workers stay alive.
void set_num_threads(int n);

/// Run `fn(chunk_begin, chunk_end)` over contiguous chunks of at most
/// `grain` indices covering [begin, end), on up to num_threads() threads
/// (the calling thread participates). Runs `fn(begin, end)` inline when the
/// range is empty-or-single-chunk, the pool is configured serial, or the
/// caller is already inside a parallel region. The first exception thrown
/// by any chunk is rethrown on the calling thread after all chunks stop.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  ChunkFn fn);

/// True while the current thread executes inside a parallel_for body —
/// nested parallel_for calls from such a context run inline.
bool in_parallel_region();

/// Grain size that puts at least `min_work` scalar operations into each
/// chunk when one item costs `work_per_item` ops — keeps small loops serial
/// and bounds per-chunk dispatch overhead.
std::int64_t grain_for(std::int64_t work_per_item,
                       std::int64_t min_work = 1 << 15);

}  // namespace fhdnn::parallel
