#pragma once
// Crash-consistent binary snapshots.
//
// A snapshot is a single file:
//
//   [8]  magic "FHDNSNAP"
//   [4]  format version (u32)
//   ...  chunks, each:  [4] tag  [8] payload length (u64)
//                       [4] CRC-32 of the payload  [len] payload
//   final chunk has tag "END " and an empty payload.
//
// All integers and IEEE-754 floats are stored in native byte order
// (little-endian on every supported target, matching tensor/io).  Floats
// and doubles are written as their raw bit patterns so a save/load
// round-trip is bit-exact — the property the engine's hexfloat golden
// histories depend on.
//
// Durability protocol (SnapshotWriter::commit / atomic_write_file):
//   1. write the full image to `<path>.tmp` and fsync it,
//   2. rename the current `<path>` (if any) to `<path>.prev`,
//   3. rename `<path>.tmp` over `<path>`,
//   4. fsync the parent directory.
// A crash at any point leaves either the new generation, the previous
// generation, or both on disk; SnapshotReader::open_with_fallback tries
// `<path>` first and falls back to `<path>.prev` when the primary is
// missing, truncated, or fails CRC validation.
//
// SnapshotReader validates the whole file eagerly at open: magic, version,
// every chunk's length and CRC, and the END terminator.  Typed reads can
// therefore only fail on logical-schema mismatches, which surface as
// SnapshotError with the offending byte offset.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace fhdnn::util {

/// Reflected CRC-32 (polynomial 0xEDB88320), the same function the ARQ
/// channel frames use; channel::crc32 delegates here.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len);

/// Current snapshot format version.  Bump on any layout change; readers
/// reject other versions (kVersion) rather than guessing.
inline constexpr std::uint32_t kSnapshotVersion = 1;

enum class SnapshotErrorKind {
  kIo,         ///< open/read/write/rename/fsync failure
  kFormat,     ///< bad magic, malformed framing, trailing bytes
  kVersion,    ///< format version mismatch
  kCrc,        ///< chunk payload failed its CRC-32
  kTruncated,  ///< file or chunk shorter than its framing claims
  kState,      ///< schema mismatch: wrong chunk tag, unconsumed payload,
               ///< or state incompatible with the running config
};

/// Typed snapshot failure carrying the byte offset where validation or
/// decoding stopped (0 when no file position applies, e.g. I/O errors).
class SnapshotError : public Error {
 public:
  SnapshotError(SnapshotErrorKind kind, std::size_t byte_offset,
                const std::string& message);

  [[nodiscard]] SnapshotErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t byte_offset() const noexcept {
    return byte_offset_;
  }

 private:
  SnapshotErrorKind kind_;
  std::size_t byte_offset_;
};

/// Builds a snapshot image in memory chunk by chunk, then commits it
/// atomically.  Typed writes are only legal between begin_chunk/end_chunk.
/// A writer is single-use: after commit() it must be discarded.
class SnapshotWriter {
 public:
  SnapshotWriter();

  void begin_chunk(std::string_view tag);  ///< tag must be exactly 4 bytes
  void end_chunk();

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);   ///< raw IEEE bits
  void write_f64(double v);  ///< raw IEEE bits
  void write_str(std::string_view s);
  void write_bytes(const void* data, std::size_t len);

  // Length-prefixed (u64 count) vector helpers.
  void write_floats(const std::vector<float>& v);
  void write_doubles(const std::vector<double>& v);
  void write_u64s(const std::vector<std::uint64_t>& v);
  void write_sizes(const std::vector<std::size_t>& v);
  void write_flags(const std::vector<char>& v);

  /// Bytes accumulated so far (header + closed chunks + open chunk).
  [[nodiscard]] std::size_t byte_size() const noexcept;

  /// Appends the END chunk and durably replaces `path` (see the protocol
  /// note above).  Returns the committed image size in bytes.
  std::size_t commit(const std::string& path);

  /// Appends the END chunk and returns the completed image in memory —
  /// the wire-transfer counterpart of commit() (state/update blobs embedded
  /// in fhdnnd frames, see src/wire/).  Single-use, like commit().
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  void chunk_bytes(const void* data, std::size_t len);

  std::vector<std::uint8_t> out_;    // header + completed chunks
  std::vector<std::uint8_t> chunk_;  // payload of the open chunk
  std::string tag_;
  bool in_chunk_ = false;
  bool committed_ = false;
};

/// Reads a snapshot image validated eagerly at open.  Chunks are consumed
/// strictly in file order: enter_chunk(tag) asserts the next chunk carries
/// the expected tag, leave_chunk() asserts the payload was fully consumed.
class SnapshotReader {
 public:
  /// Loads and validates `path`; throws SnapshotError on any defect.
  static SnapshotReader from_file(const std::string& path);

  /// from_file(path), falling back to `<path>.prev` when the primary
  /// snapshot is missing or fails validation (torn/corrupted write).
  static SnapshotReader open_with_fallback(const std::string& path);

  /// Validates an in-memory image (e.g. a state/update blob received over
  /// the fhdnnd wire).  `origin` labels error messages in place of a path.
  static SnapshotReader from_bytes(std::vector<std::uint8_t> image,
                                   std::string origin = "<memory>");

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  /// The file actually loaded (primary or `.prev` fallback).
  [[nodiscard]] const std::string& source_path() const noexcept {
    return path_;
  }

  /// Tag of the next unconsumed chunk ("END " at the terminator).
  [[nodiscard]] std::string peek_tag() const;
  void enter_chunk(std::string_view tag);
  void leave_chunk();

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_str();
  void read_bytes(void* out, std::size_t len);

  std::vector<float> read_floats();
  std::vector<double> read_doubles();
  std::vector<std::uint64_t> read_u64s();
  std::vector<std::size_t> read_sizes();
  std::vector<char> read_flags();

 private:
  SnapshotReader() = default;
  void validate();
  [[noreturn]] void fail(SnapshotErrorKind kind, std::size_t offset,
                         const std::string& message) const;
  void need(std::size_t len);  // bounds check inside the open chunk

  std::vector<std::uint8_t> data_;
  std::string path_;
  std::uint32_t version_ = 0;
  std::size_t cursor_ = 0;     // absolute offset of the next read
  std::size_t chunk_end_ = 0;  // absolute end of the open chunk's payload
  bool in_chunk_ = false;
};

/// Anything that can round-trip its full deterministic state through a
/// snapshot.  load() must leave the object bit-identical to the instance
/// that produced save() — including derived caches that feed FP results.
class Snapshotable {
 public:
  virtual ~Snapshotable() = default;
  virtual void save(SnapshotWriter& w) const = 0;
  virtual void load(SnapshotReader& r) = 0;
};

/// Durable whole-file replace: write `<path>.tmp`, fsync, rename over
/// `path` (keeping `<path>.prev` only when keep_previous is set), fsync the
/// parent directory.  Readers never observe a torn file.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t len, bool keep_previous);

/// atomic_write_file for text artifacts (bench JSON): no `.prev` rotation.
void atomic_write_text(const std::string& path, std::string_view text);

}  // namespace fhdnn::util
